//===- tools/jz-ruled.cpp - Rule-file daemon ---------------------------------===//
///
/// Serves pre-analyzed rule files to a fleet of Janitizer guests over a
/// unix-domain socket (DESIGN.md §5f). Rule files are content-addressed
/// by (module content hash, tool name, rule-format version), so any
/// number of machines' worth of guests analyzing the same shared
/// libraries hit the same entries: a library is analyzed once, ever —
/// per *fleet*, not per process.
///
///   jz-ruled --socket=PATH [--shards=N] [--disk=DIR] [--selftest]
///
/// --socket=PATH   unix-domain socket to listen on (required)
/// --shards=N      internal store shards (default 8); requests are
///                 routed by module hash, so shards only bound lock
///                 contention, never affect results
/// --disk=DIR      persist entries through per-shard RuleCaches under
///                 DIR/shard-<i>; a restarted daemon rehydrates lazily
/// --selftest      start, publish one synthetic entry through the full
///                 socket round trip, verify it fetches back, and exit —
///                 used by the CI smoke test
///
/// The daemon runs until SIGINT/SIGTERM, then prints its lifetime stats.
/// It holds no client state: guests that lose it mid-conversation fall
/// back to local analysis (see rules/RuleClient.h), so killing it is
/// always safe.
///
//===----------------------------------------------------------------------===//

#include "rules/RuleClient.h"
#include "support/Cli.h"
#include "rules/RuleServer.h"
#include "support/Hash.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include <unistd.h>

using namespace janitizer;

namespace {

std::atomic<bool> GotSignal{false};

void onSignal(int) { GotSignal.store(true); }

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--shards=N] [--disk=DIR] "
               "[--selftest]\n",
               Argv0);
  return 2;
}

/// One publish + fetch through a real client connection; exercises the
/// whole stack (framing, sharding, validation) in a few milliseconds.
int selftest(RuleServer &Srv, const std::string &Socket) {
  RuleFile RF;
  RF.ModuleName = "selftest";
  RF.ToolName = "jasan";
  std::vector<uint8_t> Bytes = RF.serialize();
  uint64_t Hash = hashBytes(Bytes);

  RuleClient C(RuleClientOptions{Socket, 2000});
  if (Error E = C.publish({{{Hash, RF.ToolName}, &RF}})) {
    std::fprintf(stderr, "selftest publish failed: %s\n",
                 E.message().c_str());
    return 1;
  }
  ErrorOr<std::vector<std::optional<RuleFile>>> Got =
      C.fetch({{Hash, RF.ToolName}});
  if (!Got || Got->size() != 1 || !(*Got)[0] ||
      (*Got)[0]->ModuleName != "selftest") {
    std::fprintf(stderr, "selftest fetch failed\n");
    return 1;
  }
  if (Srv.entryCount() != 1) {
    std::fprintf(stderr, "selftest: expected 1 entry, have %zu\n",
                 Srv.entryCount());
    return 1;
  }
  std::printf("selftest ok: published and fetched 1 rule file via %s\n",
              Socket.c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  RuleServerOptions Opts;
  bool SelfTest = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--socket=", 0) == 0)
      Opts.SocketPath = Arg.substr(std::strlen("--socket="));
    else if (Arg.rfind("--shards=", 0) == 0) {
      std::optional<unsigned> V = parseCliUnsigned(Arg.substr(9), 1, 1024);
      if (!V) {
        std::fprintf(stderr,
                     "jz-ruled: invalid --shards value '%s' (expected an "
                     "integer in [1, 1024])\n",
                     Arg.c_str() + 9);
        return 2;
      }
      Opts.Shards = *V;
    }
    else if (Arg.rfind("--disk=", 0) == 0)
      Opts.DiskDir = Arg.substr(std::strlen("--disk="));
    else if (Arg == "--selftest")
      SelfTest = true;
    else
      return usage(argv[0]);
  }
  if (Opts.SocketPath.empty())
    return usage(argv[0]);

  RuleServer Srv;
  if (Error E = Srv.start(Opts)) {
    std::fprintf(stderr, "jz-ruled: %s\n", E.message().c_str());
    return 1;
  }
  std::printf("jz-ruled: serving on %s (%u shards%s%s)\n",
              Opts.SocketPath.c_str(), Opts.Shards,
              Opts.DiskDir.empty() ? "" : ", disk ",
              Opts.DiskDir.c_str());
  std::fflush(stdout);

  if (SelfTest) {
    int Rc = selftest(Srv, Opts.SocketPath);
    Srv.stop();
    return Rc;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  while (!GotSignal.load())
    ::usleep(100 * 1000);

  Srv.stop();
  const RuleServerStats &S = Srv.stats();
  std::printf("jz-ruled: %zu entries, %llu connections, %llu fetches "
              "(%llu hits), %llu publishes (%llu rejected)\n",
              Srv.entryCount(),
              static_cast<unsigned long long>(S.Connections.load()),
              static_cast<unsigned long long>(S.Fetches.load()),
              static_cast<unsigned long long>(S.Hits.load()),
              static_cast<unsigned long long>(S.Publishes.load()),
              static_cast<unsigned long long>(S.Rejects.load()));
  return 0;
}
