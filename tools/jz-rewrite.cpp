//===- tools/jz-rewrite.cpp - AOT static rewriter driver --------------------===//
///
/// Statically rewrites a generated benchmark (or one of the §6.2.1
/// torture cases) with inline JASan instrumentation and prints what the
/// rewrite proved per module: how much code was laid out natively, how
/// many unproven heads got trap stubs, and where the new region landed.
///
///   jz-rewrite <benchmark|torture-case> [--run] [--scale=N]
///
///   <benchmark>     a spec profile name (see jz-bench) or one of the
///                   torture cases: overlap-entry data-in-text
///                   computed-goto
///   --run           execute the rewritten program under the tiered
///                   native/DBI runner and print the tier accounting
///   --scale=N       workload scale for spec profiles (default 1)
///
//===----------------------------------------------------------------------===//

#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"
#include "rewrite/AotRewriter.h"
#include "rewrite/AotRunner.h"
#include "support/Cli.h"
#include "workloads/RewriterTorture.h"
#include "workloads/WorkloadGen.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace janitizer;

int main(int argc, char **argv) {
  std::string Name;
  bool Run = false;
  unsigned Scale = 1;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--run") {
      Run = true;
    } else if (Arg.rfind("--scale=", 0) == 0) {
      std::optional<unsigned> V =
          parseCliUnsigned(Arg.substr(std::strlen("--scale=")), 1, 1u << 20);
      if (!V) {
        std::fprintf(stderr, "%s: invalid --scale value\n", argv[0]);
        return 2;
      }
      Scale = *V;
    } else if (Name.empty()) {
      Name = Arg;
    } else {
      std::fprintf(stderr, "usage: %s <benchmark|torture-case> [--run] "
                           "[--scale=N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (Name.empty()) {
    std::fprintf(stderr, "usage: %s <benchmark|torture-case> [--run] "
                         "[--scale=N]\n",
                 argv[0]);
    return 2;
  }

  // Build the workload: torture case by name first, spec profile otherwise.
  ErrorOr<WorkloadBuild> WE = makeError("unset");
  if (Name == "overlap-entry")
    WE = buildTortureWorkload(TortureKind::OverlapEntry);
  else if (Name == "data-in-text")
    WE = buildTortureWorkload(TortureKind::DataInText);
  else if (Name == "computed-goto")
    WE = buildTortureWorkload(TortureKind::ComputedGoto);
  else if (const BenchProfile *P = findProfile(Name)) {
    WorkloadOptions Opts;
    Opts.WorkScale = Scale;
    WE = buildWorkload(*P, Opts);
  } else {
    std::fprintf(stderr, "unknown benchmark or torture case '%s'\n",
                 Name.c_str());
    return 2;
  }
  if (!WE) {
    std::fprintf(stderr, "%s: %s\n", Name.c_str(), WE.message().c_str());
    return 1;
  }
  WorkloadBuild W = WE.takeValue();
  RunResult NR;
  std::string Ref = nativeReference(W, &NR);

  RuleStore Rules;
  StaticAnalyzer SA;
  JASanTool StaticTool;
  Error AE = SA.analyzeProgram(W.Store, W.ExeName, StaticTool, Rules,
                               W.DlopenOnly);
  (void)AE; // uncovered modules degrade to trap stubs, never refuse

  ModuleStore Rewritten;
  AotManifest Manifest;
  if (Error E = aotRewriteProgram(W.Store, W.ExeName, Rules, "jasan",
                                  Rewritten, Manifest)) {
    std::fprintf(stderr, "rewrite failed: %s\n", E.message().c_str());
    return 1;
  }
  for (const std::string &P : W.DlopenOnly)
    if (const Module *M = W.Store.find(P)) {
      ErrorOr<AotModuleResult> R = aotRewriteModule(*M, nullptr, "jasan");
      if (!R) {
        std::fprintf(stderr, "rewrite failed: %s\n", R.message().c_str());
        return 1;
      }
      Manifest.Modules[M->Name] = std::move(R->Manifest);
      Rewritten.add(std::move(R->NewMod));
    }

  std::printf("%s: %zu modules rewritten\n", W.ExeName.c_str(),
              Manifest.Modules.size());
  for (const auto &[Mod, MM] : Manifest.Modules) {
    uint64_t OrigBytes = 0;
    for (const auto &[Lo, Hi] : MM.OrigCodeRanges)
      OrigBytes += Hi - Lo;
    std::printf("  %-20s %6zu instrs, %5zu blocks proven, %4zu trap stubs, "
                "%3zu check sites, %s, region 0x%llx..0x%llx "
                "(%llu orig code bytes retained)\n",
                Mod.c_str(), MM.Instructions, MM.CoveredBlocks,
                MM.TierEnterStubs.size(), MM.TrapSites.size(),
                MM.HadRules ? "rule-guided" : "all-stubbed",
                static_cast<unsigned long long>(MM.NewRegionStart),
                static_cast<unsigned long long>(MM.NewRegionEnd),
                static_cast<unsigned long long>(OrigBytes));
  }

  if (!Run)
    return 0;

  JASanTool Tool;
  AotRun R = runUnderJanitizerAot(Rewritten, W.ExeName, Tool, Rules,
                                  Manifest);
  bool Correct =
      R.Result.St == RunResult::Status::Exited && R.Output == Ref;
  std::printf("tiered run: %s (output \"%s\", native \"%s\")\n",
              Correct ? "correct" : "WRONG", R.Output.c_str(), Ref.c_str());
  std::printf("  legs: %llu native, %llu dbi\n",
              static_cast<unsigned long long>(R.NativeLegs),
              static_cast<unsigned long long>(R.DbiLegs));
  std::printf("  transitions: %llu tier-enter stubs, %llu vacated-exec, "
              "%llu allocator intercepts, %llu check replays\n",
              static_cast<unsigned long long>(R.TierEnters),
              static_cast<unsigned long long>(R.VacatedEnters),
              static_cast<unsigned long long>(R.Intercepts),
              static_cast<unsigned long long>(R.AotChecks));
  std::printf("  dbi: %llu dispatch entries; %zu violations; "
              "%.3fx slowdown vs native\n",
              static_cast<unsigned long long>(R.Dbi.DispatchEntries),
              R.Violations.size(),
              NR.Cycles ? static_cast<double>(R.Result.Cycles) / NR.Cycles
                        : 0.0);
  return Correct ? 0 : 1;
}
