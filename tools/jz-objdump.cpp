//===- tools/jz-objdump.cpp - Module inspection tool -----------------------===//
///
/// objdump-style inspector for generated modules. Since modules live in
/// in-process stores, the tool operates on the built-in inputs:
///
///   jz-objdump libjz | libjfortran | bench:<name> [--cfg] [--analysis]
///                                                 [--rules <tool>]
///
///   (default)    section table, symbols, PLT/GOT, disassembly
///   --cfg        basic blocks, edges and functions
///   --analysis   liveness/canary/loop/code-pointer summaries
///   --rules T    the rewrite rules the static analyzer emits for tool T
///                (jasan or jcfi)
///
//===----------------------------------------------------------------------===//

#include "analysis/Canary.h"
#include "analysis/CodeScan.h"
#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "core/StaticAnalyzer.h"
#include "isa/Printer.h"
#include "jasan/JASan.h"
#include "jcfi/JCFI.h"
#include "runtime/Jlibc.h"
#include "workloads/WorkloadGen.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace janitizer;

namespace {

void dumpSections(const Module &M) {
  std::printf("module %s  %s%s  link base 0x%llx  entry 0x%llx\n",
              M.Name.c_str(), M.IsPIC ? "PIC" : "non-PIC",
              M.IsSharedObject ? " shared" : "",
              static_cast<unsigned long long>(M.LinkBase),
              static_cast<unsigned long long>(M.Entry));
  std::printf("\nSections:\n");
  for (const Section &S : M.Sections)
    std::printf("  %-8s 0x%08llx  %6llu bytes%s\n", sectionKindName(S.Kind),
                static_cast<unsigned long long>(S.Addr),
                static_cast<unsigned long long>(S.size()),
                isExecutableSection(S.Kind) ? "  [exec]" : "");
  if (!M.Symbols.empty()) {
    std::printf("\nSymbols:\n");
    for (const Symbol &S : M.Symbols)
      std::printf("  0x%08llx %6llu %s%s %s\n",
                  static_cast<unsigned long long>(S.Value),
                  static_cast<unsigned long long>(S.Size),
                  S.IsFunction ? "F" : " ", S.Exported ? "G" : "L",
                  S.Name.c_str());
  }
  if (!M.Plt.empty()) {
    std::printf("\nPLT:\n");
    for (const PltEntry &P : M.Plt)
      std::printf("  stub 0x%08llx  got 0x%08llx  lazy 0x%08llx  %s\n",
                  static_cast<unsigned long long>(P.StubVA),
                  static_cast<unsigned long long>(P.GotSlotVA),
                  static_cast<unsigned long long>(P.LazyVA),
                  P.SymbolName.c_str());
  }
  if (!M.Islands.empty()) {
    std::printf("\nData islands:\n");
    for (const DataIsland &D : M.Islands)
      std::printf("  0x%08llx  %llu bytes\n",
                  static_cast<unsigned long long>(D.Addr),
                  static_cast<unsigned long long>(D.Size));
  }
}

void dumpDisassembly(const Module &M, const ModuleCFG &CFG) {
  std::printf("\nDisassembly:\n");
  for (const auto &[Addr, BB] : CFG.Blocks) {
    const CfgFunction *Owner =
        BB.FuncIdx < CFG.Functions.size() ? &CFG.Functions[BB.FuncIdx]
                                          : nullptr;
    if (Owner && Owner->Entry == Addr)
      std::printf("\n<%s>:\n", Owner->Name.c_str());
    for (const DecodedInstr &DI : BB.Instrs)
      std::printf("  %08llx:  %s\n",
                  static_cast<unsigned long long>(DI.Addr),
                  printInstruction(DI.I).c_str());
  }
}

void dumpCfg(const ModuleCFG &CFG) {
  std::printf("\nFunctions (%zu):\n", CFG.Functions.size());
  for (const CfgFunction &F : CFG.Functions)
    std::printf("  0x%08llx %-24s %3zu blocks%s%s\n",
                static_cast<unsigned long long>(F.Entry), F.Name.c_str(),
                F.Blocks.size(), F.FromSymbol ? "  [sym]" : "",
                F.Synthetic ? "  [synthetic]" : "");
  std::printf("\nBlocks (%zu):\n", CFG.Blocks.size());
  for (const auto &[Addr, BB] : CFG.Blocks) {
    std::printf("  0x%08llx..0x%08llx  %2zu instrs  ->",
                static_cast<unsigned long long>(Addr),
                static_cast<unsigned long long>(BB.End), BB.Instrs.size());
    for (uint64_t S : BB.Succs)
      std::printf(" 0x%llx", static_cast<unsigned long long>(S));
    if (BB.CallTarget)
      std::printf("  (calls 0x%llx)",
                  static_cast<unsigned long long>(BB.CallTarget));
    if (BB.endsInIndirect())
      std::printf("  (indirect)");
    std::printf("\n");
  }
}

void dumpAnalysis(const Module &M, const ModuleCFG &CFG) {
  LivenessInfo LV = computeLiveness(CFG);
  LoopAnalysis LA = analyzeLoops(CFG);
  CanaryAnalysis CA = analyzeCanaries(CFG);
  std::set<uint64_t> Taken = addressTakenFunctions(M, CFG);

  std::printf("\nAnalysis summary:\n");
  std::printf("  convention breakers: %zu\n", LV.ConventionBreakers.size());
  for (uint64_t F : LV.ConventionBreakers)
    if (const Symbol *S = M.functionContaining(F))
      std::printf("    0x%llx %s\n", static_cast<unsigned long long>(F),
                  S->Name.c_str());
  std::printf("  natural loops: %zu (%zu SCEV-elidable accesses)\n",
              LA.Loops.size(), LA.Elidable.size());
  std::printf("  canary-protected functions: %zu\n", CA.Sites.size());
  for (const CanarySite &S : CA.Sites)
    std::printf("    func 0x%llx  spill 0x%llx [sp%+d]  %zu checks\n",
                static_cast<unsigned long long>(S.FuncEntry),
                static_cast<unsigned long long>(S.StoreInstr), S.SlotOffset,
                S.CheckLoads.size());
  std::printf("  address-taken functions: %zu\n", Taken.size());
}

void dumpRules(const Module &M, const std::string &ToolName) {
  StaticAnalyzer SA;
  RuleFile RF;
  if (ToolName == "jasan") {
    JASanTool T;
    RF = cantFail(SA.analyzeModule(M, T));
  } else {
    JcfiDatabase Db;
    JCFITool T(Db);
    RF = cantFail(SA.analyzeModule(M, T));
  }
  std::printf("\nRewrite rules (%s): %zu\n", ToolName.c_str(),
              RF.Rules.size());
  size_t Shown = 0;
  for (const RewriteRule &R : RF.Rules) {
    if (R.Id == RuleId::NoOp)
      continue;
    std::printf("  %-16s bb=0x%08llx instr=0x%08llx data={%llu,%llu,%llu,"
                "%llu}\n",
                ruleIdName(R.Id), static_cast<unsigned long long>(R.BBAddr),
                static_cast<unsigned long long>(R.InstrAddr),
                static_cast<unsigned long long>(R.Data[0]),
                static_cast<unsigned long long>(R.Data[1]),
                static_cast<unsigned long long>(R.Data[2]),
                static_cast<unsigned long long>(R.Data[3]));
    if (++Shown >= 200) {
      std::printf("  ... (truncated)\n");
      break;
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s libjz|libjfortran|bench:<name> [--cfg] "
                 "[--analysis] [--rules jasan|jcfi]\n",
                 argv[0]);
    return 2;
  }
  std::string What = argv[1];
  Module M;
  if (What == "libjz") {
    M = cantFail(buildJlibc());
  } else if (What == "libjfortran") {
    M = cantFail(buildJfortran());
  } else if (What.rfind("bench:", 0) == 0) {
    const BenchProfile *P = findProfile(What.substr(6));
    if (!P) {
      std::fprintf(stderr, "unknown benchmark '%s'\n", What.c_str() + 6);
      return 2;
    }
    WorkloadOptions Opts;
    Opts.WorkScale = 1;
    WorkloadBuild W = cantFail(buildWorkload(*P, Opts));
    M = *W.Store.find(P->Name);
  } else {
    std::fprintf(stderr, "unknown input '%s'\n", What.c_str());
    return 2;
  }

  bool WantCfg = false, WantAnalysis = false;
  std::string RulesTool;
  for (int I = 2; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--cfg"))
      WantCfg = true;
    else if (!std::strcmp(argv[I], "--analysis"))
      WantAnalysis = true;
    else if (!std::strcmp(argv[I], "--rules") && I + 1 < argc)
      RulesTool = argv[++I];
  }

  ModuleCFG CFG = buildCFG(M);
  dumpSections(M);
  if (WantCfg)
    dumpCfg(CFG);
  if (WantAnalysis)
    dumpAnalysis(M, CFG);
  if (!RulesTool.empty())
    dumpRules(M, RulesTool);
  if (!WantCfg && !WantAnalysis && RulesTool.empty())
    dumpDisassembly(M, CFG);
  return 0;
}
