//===- tools/jz-bench.cpp - Single-workload runner --------------------------===//
///
/// Runs one generated benchmark under one tool configuration and prints
/// the cycle counts, slowdown and coverage — handy for iterating on a
/// single data point without a whole figure sweep.
///
///   jz-bench <benchmark> <config> [scale]
///
/// configs: native null jasan-dyn jasan-base jasan-hybrid valgrind
///          retrowrite jcfi-dyn jcfi-hybrid jcfi-fwd bincfi
///          lockdown-s lockdown-w
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace janitizer;
using namespace janitizer::bench;

int main(int argc, char **argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <benchmark> <config> [scale]\n",
                 argv[0]);
    std::fprintf(stderr, "benchmarks:");
    for (const BenchProfile &P : specProfiles())
      std::fprintf(stderr, " %s", P.Name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  const BenchProfile *P = findProfile(argv[1]);
  if (!P) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", argv[1]);
    return 2;
  }
  std::string Cfg = argv[2];
  unsigned Scale = argc > 3 ? static_cast<unsigned>(atoi(argv[3])) : 4;

  bool NeedPic = Cfg == "retrowrite";
  PreparedWorkload PW = prepare(*P, Scale, NeedPic);
  std::printf("%s: native %llu cycles, checksum \"%s\"\n", P->Name.c_str(),
              static_cast<unsigned long long>(PW.NativeCycles),
              PW.Checksum.c_str());
  if (Cfg == "native")
    return 0;

  ConfigResult R;
  if (Cfg == "null")
    R = runNullClient(PW);
  else if (Cfg == "jasan-dyn")
    R = runJasanDyn(PW);
  else if (Cfg == "jasan-base")
    R = runJasanHybrid(PW, false);
  else if (Cfg == "jasan-hybrid")
    R = runJasanHybrid(PW, true);
  else if (Cfg == "valgrind")
    R = runValgrindCfg(PW);
  else if (Cfg == "retrowrite")
    R = runRetroWriteCfg(PW);
  else if (Cfg == "jcfi-dyn")
    R = runJcfiDyn(PW);
  else if (Cfg == "jcfi-hybrid")
    R = runJcfiHybrid(PW);
  else if (Cfg == "jcfi-fwd")
    R = runJcfiHybrid(PW, true, false);
  else if (Cfg == "bincfi")
    R = runBinCfiCfg(PW);
  else if (Cfg == "lockdown-s")
    R = runLockdownCfg(PW, true);
  else if (Cfg == "lockdown-w")
    R = runLockdownCfg(PW, false);
  else {
    std::fprintf(stderr, "unknown config '%s'\n", Cfg.c_str());
    return 2;
  }

  if (!R.Ok) {
    std::printf("%s/%s: x (%s)\n", P->Name.c_str(), Cfg.c_str(),
                R.Note.c_str());
    return 1;
  }
  std::printf("%s/%s: %.3fx slowdown\n", P->Name.c_str(), Cfg.c_str(),
              R.Slowdown);
  if (R.HasCoverage) {
    const CoverageStats &Cov = R.Coverage;
    std::printf("  blocks: %llu static, %llu dynamic (%.2f%% dynamic)\n",
                static_cast<unsigned long long>(Cov.StaticBlocks),
                static_cast<unsigned long long>(Cov.DynamicBlocks),
                Cov.dynamicFraction() * 100.0);
    std::printf("  rule dispatch: %llu lookups, %llu hits, %llu fallbacks\n",
                static_cast<unsigned long long>(Cov.RuleLookups),
                static_cast<unsigned long long>(Cov.RuleHits),
                static_cast<unsigned long long>(Cov.RuleFallbacks));
    for (const CoverageStats::ModuleRuleInfo &MI : Cov.Modules)
      std::printf("  module %u %-16s %llu blocks, %llu rules\n", MI.Id,
                  MI.Name.c_str(),
                  static_cast<unsigned long long>(MI.Blocks),
                  static_cast<unsigned long long>(MI.Rules));
  }
  return 0;
}
