//===- tools/jz-bench.cpp - Single-workload runner --------------------------===//
///
/// Runs one generated benchmark under one tool configuration and prints
/// the cycle counts, slowdown and coverage — handy for iterating on a
/// single data point without a whole figure sweep.
///
///   jz-bench <benchmark> <config> [scale] [--jobs=N] [--rule-cache=DIR]
///   jz-bench rewrite [--json=FILE]
///
/// configs: native null jasan-dyn jasan-base jasan-hybrid jasan-aot
///          valgrind retrowrite jcfi-dyn jcfi-hybrid jcfi-fwd bincfi
///          lockdown-s lockdown-w
///
/// The `rewrite` benchmark runs the static-rewriting soundness sweep
/// instead of a spec profile: the §6.2.1 torture cases scored per rewriter
/// (Janitizer-AOT vs RetroWrite vs BinCFI) plus the AOT-vs-hybrid
/// differential (byte-identical violation tuples, zero dispatcher
/// entries). --json=FILE writes the results (results/BENCH_rewrite.json).
///
/// --jobs=N        static-analysis worker threads (0 = one per hardware
///                 thread); hybrid configurations only
/// --rule-cache=D  persist rule files under directory D keyed by module
///                 content hash — a second run reuses them (cache hit)
///                 instead of re-analyzing
/// --degradation   print the run's degradation report: every module that
///                 was quarantined or partially covered (static-analysis
///                 faults, budget exhaustion, rule-validation failures),
///                 with stage and cause. Pairs with JZ_FAULTS=... fault
///                 injection (see DESIGN.md §5c)
/// --trace=FILE    arm the trace collector for the whole run and write a
///                 Chrome trace_event JSON to FILE (load it in
///                 chrome://tracing or ui.perfetto.dev). See DESIGN.md §5d
/// --metrics       print every registered jz.<layer>.<name> metric after
///                 the run (deterministic, name-sorted)
/// --metrics-json=FILE
///                 write the metrics registry as a JSON object to FILE
/// --ruled=SOCK    consult a jz-ruled rule daemon at unix socket SOCK
///                 between the local cache and local analysis (hybrid
///                 configurations only; also honored via the
///                 JZ_RULED_SOCKET environment variable)
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Cli.h"
#include "support/Format.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace janitizer;
using namespace janitizer::bench;

namespace {

void printStaticStats(const StaticAnalyzerStats &S) {
  std::printf("  static analysis: %zu analyzed, %zu skipped, %zu degraded, "
              "%u threads, %zu prelim-CFG reuses\n",
              S.ModulesAnalyzed, S.ModulesSkipped, S.ModulesDegraded,
              S.ThreadsUsed, S.PrelimCfgReused);
  std::printf("  rule cache: %zu hits, %zu misses, %zu evictions\n",
              S.CacheHits, S.CacheMisses, S.CacheEvictions);
  if (S.ServerHits || S.ServerMisses || S.ServerErrors || S.ServerPublished)
    std::printf("  rule server: %zu hits, %zu misses, %zu published, "
                "%zu errors\n",
                S.ServerHits, S.ServerMisses, S.ServerPublished,
                S.ServerErrors);
  for (const ModuleAnalysisTiming &T : S.Timings)
    std::printf("  analyze %-16s %8llu us%s%s%s\n", T.Name.c_str(),
                static_cast<unsigned long long>(T.Micros),
                T.FromCache ? "  (cached)" : "",
                T.FromServer ? "  (served)" : "",
                T.Degraded ? "  (degraded)" : "");
}

/// Prints one DegradationReport section; returns the number of events so
/// the caller can summarize.
size_t printReport(const char *Label, const DegradationReport &Rep) {
  for (const DegradationEvent &E : Rep.Events)
    std::printf("  [%s] module %-16s stage %-15s %s\n", Label,
                E.Module.c_str(), E.Stage.c_str(), E.Cause.c_str());
  return Rep.size();
}

void printDegradation(const ConfigResult &R) {
  std::printf("degradation report:\n");
  size_t N = 0;
  if (R.HasStatic)
    N += printReport("static", R.Static.Degradation);
  if (R.HasCoverage)
    N += printReport("dynamic", R.Coverage.Degradation);
  if (!N)
    std::printf("  none: every module fully covered\n");
  else
    std::printf("  %zu degradation event(s); run completed degraded, not "
                "aborted\n",
                N);
}

/// The `rewrite` benchmark: torture table + AOT differential. Returns the
/// process exit code (0 only when Janitizer-AOT is correct on every case
/// and the differential holds).
int runRewriteBench(const std::string &JsonPath) {
  std::printf("== rewriter torture: functional correctness per rewriter ==\n");
  std::vector<TortureRow> Rows = runRewriterTorture();
  std::printf("%-15s %-22s %-14s %-12s %-12s\n", "case", "native-checksum",
              "janitizer-aot", "retrowrite", "bincfi");
  bool AotAllCorrect = true;
  for (const TortureRow &R : Rows) {
    std::printf("%-15s %-22s %-14s %-12s %-12s\n", tortureKindName(R.Kind),
                R.Ref.c_str(), rewriteVerdictName(R.Aot.Verdict),
                rewriteVerdictName(R.Retro.Verdict),
                rewriteVerdictName(R.BinCfi.Verdict));
    auto Note = [](const char *Who, const TortureScore &S) {
      if (!S.Note.empty())
        std::printf("    %s: %s\n", Who, S.Note.c_str());
    };
    Note("janitizer-aot", R.Aot);
    Note("retrowrite", R.Retro);
    Note("bincfi", R.BinCfi);
    AotAllCorrect &= R.Aot.Verdict == RewriteVerdict::Correct;
  }

  std::printf("\n== AOT-vs-hybrid differential (Juliet CWE-122) ==\n");
  AotDifferential D = runAotDifferential();
  if (D.Ok)
    std::printf("%zu variants: outputs identical, %zu violation tuples "
                "byte-identical, %llu DBI dispatch entries, "
                "%llu allocator intercepts\n",
                D.CasesRun, D.Violations,
                static_cast<unsigned long long>(D.AotDispatchEntries),
                static_cast<unsigned long long>(D.Intercepts));
  else
    std::printf("FAILED after %zu variants: %s\n", D.CasesRun,
                D.Note.c_str());

  if (!JsonPath.empty()) {
    std::string J = "{\n";
    for (const TortureRow &R : Rows) {
      std::string Key = tortureKindName(R.Kind);
      for (char &C : Key)
        if (C == '-')
          C = '_';
      J += formatString("  \"torture_%s_janitizer_aot\": \"%s\",\n",
                        Key.c_str(), rewriteVerdictName(R.Aot.Verdict));
      J += formatString("  \"torture_%s_retrowrite\": \"%s\",\n", Key.c_str(),
                        rewriteVerdictName(R.Retro.Verdict));
      J += formatString("  \"torture_%s_bincfi\": \"%s\",\n", Key.c_str(),
                        rewriteVerdictName(R.BinCfi.Verdict));
    }
    J += formatString("  \"differential_variants\": %zu,\n", D.CasesRun);
    J += formatString("  \"differential_violation_tuples\": %zu,\n",
                      D.Violations);
    J += formatString("  \"differential_aot_dispatch_entries\": %llu,\n",
                      static_cast<unsigned long long>(D.AotDispatchEntries));
    J += formatString("  \"differential_allocator_intercepts\": %llu,\n",
                      static_cast<unsigned long long>(D.Intercepts));
    J += formatString("  \"differential_identical\": %s\n",
                      D.Ok ? "true" : "false");
    J += "}\n";
    std::FILE *F = std::fopen(JsonPath.c_str(), "wb");
    if (!F) {
      std::fprintf(stderr, "warning: cannot open '%s'\n", JsonPath.c_str());
    } else {
      std::fwrite(J.data(), 1, J.size(), F);
      std::fclose(F);
      std::printf("wrote %s\n", JsonPath.c_str());
    }
  }
  return AotAllCorrect && D.Ok ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Positional;
  StaticAnalyzerOptions AOpts;
  bool ShowDegradation = false;
  bool ShowMetrics = false;
  std::string TracePath, MetricsJsonPath, JsonPath;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--jobs=", 0) == 0) {
      std::optional<unsigned> Jobs = parseCliUnsigned(Arg.substr(7));
      if (!Jobs) {
        std::fprintf(stderr,
                     "%s: invalid --jobs value '%s' (expected a "
                     "non-negative integer)\n",
                     argv[0], Arg.c_str() + 7);
        return 2;
      }
      AOpts.Jobs = *Jobs;
    } else if (Arg.rfind("--rule-cache=", 0) == 0) {
      AOpts.CacheDir = Arg.substr(std::strlen("--rule-cache="));
    } else if (Arg.rfind("--ruled=", 0) == 0) {
      AOpts.RuledSocket = Arg.substr(std::strlen("--ruled="));
    } else if (Arg == "--degradation") {
      ShowDegradation = true;
    } else if (Arg.rfind("--trace=", 0) == 0) {
      TracePath = Arg.substr(std::strlen("--trace="));
    } else if (Arg == "--metrics") {
      ShowMetrics = true;
    } else if (Arg.rfind("--metrics-json=", 0) == 0) {
      MetricsJsonPath = Arg.substr(std::strlen("--metrics-json="));
    } else if (Arg.rfind("--json=", 0) == 0) {
      JsonPath = Arg.substr(std::strlen("--json="));
    } else {
      Positional.push_back(Arg);
    }
  }

  if (!Positional.empty() && Positional[0] == "rewrite")
    return runRewriteBench(JsonPath);

  if (Positional.size() < 2) {
    std::fprintf(stderr,
                 "usage: %s <benchmark> <config> [scale] [--jobs=N] "
                 "[--rule-cache=DIR] [--ruled=SOCK] [--degradation] "
                 "[--trace=FILE] [--metrics] [--metrics-json=FILE]\n"
                 "       %s rewrite [--json=FILE]\n",
                 argv[0], argv[0]);
    std::fprintf(stderr, "benchmarks:");
    for (const BenchProfile &P : specProfiles())
      std::fprintf(stderr, " %s", P.Name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  const BenchProfile *P = findProfile(Positional[0]);
  if (!P) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", Positional[0].c_str());
    return 2;
  }

  if (!TracePath.empty())
    TraceCollector::instance().start();
  // Exports the trace and prints/writes metrics; called on every exit
  // path that ran any part of the pipeline.
  auto FinishObservability = [&] {
    if (!TracePath.empty()) {
      TraceCollector &C = TraceCollector::instance();
      C.stop();
      MetricsRegistry::instance().counter("jz.trace.events")
          .set(C.eventCount());
      MetricsRegistry::instance().counter("jz.trace.dropped")
          .set(C.droppedCount());
      if (Error E = C.writeJson(TracePath))
        std::fprintf(stderr, "warning: --trace export failed: %s\n",
                     E.message().c_str());
      else
        std::printf("trace: %zu events -> %s\n", C.eventCount(),
                    TracePath.c_str());
    }
    if (ShowMetrics) {
      std::printf("metrics:\n%s",
                  MetricsRegistry::instance().toText().c_str());
    }
    if (!MetricsJsonPath.empty()) {
      std::string Json = MetricsRegistry::instance().toJson();
      std::FILE *F = std::fopen(MetricsJsonPath.c_str(), "wb");
      if (!F) {
        std::fprintf(stderr, "warning: cannot open '%s'\n",
                     MetricsJsonPath.c_str());
      } else {
        std::fwrite(Json.data(), 1, Json.size(), F);
        std::fclose(F);
      }
    }
  };
  std::string Cfg = Positional[1];
  unsigned Scale = 4;
  if (Positional.size() > 2) {
    std::optional<unsigned> V = parseCliUnsigned(Positional[2], 1, 1u << 20);
    if (!V) {
      std::fprintf(stderr,
                   "%s: invalid scale '%s' (expected a positive integer)\n",
                   argv[0], Positional[2].c_str());
      return 2;
    }
    Scale = *V;
  }

  bool NeedPic = Cfg == "retrowrite";
  PreparedWorkload PW = prepare(*P, Scale, NeedPic);
  std::printf("%s: native %llu cycles, checksum \"%s\"\n", P->Name.c_str(),
              static_cast<unsigned long long>(PW.NativeCycles),
              PW.Checksum.c_str());
  if (Cfg == "native") {
    FinishObservability();
    return 0;
  }

  ConfigResult R;
  if (Cfg == "null")
    R = runNullClient(PW);
  else if (Cfg == "jasan-dyn")
    R = runJasanDyn(PW);
  else if (Cfg == "jasan-base")
    R = runJasanHybrid(PW, false, AOpts);
  else if (Cfg == "jasan-hybrid")
    R = runJasanHybrid(PW, true, AOpts);
  else if (Cfg == "jasan-aot")
    R = runJanitizerAotCfg(PW, true, AOpts);
  else if (Cfg == "valgrind")
    R = runValgrindCfg(PW);
  else if (Cfg == "retrowrite")
    R = runRetroWriteCfg(PW);
  else if (Cfg == "jcfi-dyn")
    R = runJcfiDyn(PW);
  else if (Cfg == "jcfi-hybrid")
    R = runJcfiHybrid(PW, true, true, AOpts);
  else if (Cfg == "jcfi-fwd")
    R = runJcfiHybrid(PW, true, false, AOpts);
  else if (Cfg == "bincfi")
    R = runBinCfiCfg(PW);
  else if (Cfg == "lockdown-s")
    R = runLockdownCfg(PW, true);
  else if (Cfg == "lockdown-w")
    R = runLockdownCfg(PW, false);
  else {
    std::fprintf(stderr, "unknown config '%s'\n", Cfg.c_str());
    return 2;
  }

  if (!R.Ok) {
    std::printf("%s/%s: x (%s)\n", P->Name.c_str(), Cfg.c_str(),
                R.Note.c_str());
    if (ShowDegradation)
      printDegradation(R);
    FinishObservability();
    return 1;
  }
  std::printf("%s/%s: %.3fx slowdown\n", P->Name.c_str(), Cfg.c_str(),
              R.Slowdown);
  if (R.HasStatic)
    printStaticStats(R.Static);
  if (R.HasCoverage) {
    const CoverageStats &Cov = R.Coverage;
    std::printf("  blocks: %llu static, %llu dynamic (%.2f%% dynamic)\n",
                static_cast<unsigned long long>(Cov.StaticBlocks),
                static_cast<unsigned long long>(Cov.DynamicBlocks),
                Cov.dynamicFraction() * 100.0);
    std::printf("  rule dispatch: %llu lookups, %llu hits, %llu fallbacks\n",
                static_cast<unsigned long long>(Cov.RuleLookups),
                static_cast<unsigned long long>(Cov.RuleHits),
                static_cast<unsigned long long>(Cov.RuleFallbacks));
    for (const CoverageStats::ModuleRuleInfo &MI : Cov.Modules)
      std::printf("  module %u %-16s %llu blocks, %llu rules%s\n", MI.Id,
                  MI.Name.c_str(),
                  static_cast<unsigned long long>(MI.Blocks),
                  static_cast<unsigned long long>(MI.Rules),
                  MI.Degraded ? "  (degraded)" : "");
  }
  if (R.HasDbi) {
    const DbiStats &D = R.Dbi;
    std::printf("  dispatch: %llu entries, %llu links followed, "
                "%llu/%llu ibl hits/misses, %llu traces built\n",
                static_cast<unsigned long long>(D.DispatchEntries),
                static_cast<unsigned long long>(D.LinksFollowed),
                static_cast<unsigned long long>(D.IblHits),
                static_cast<unsigned long long>(D.IblMisses),
                static_cast<unsigned long long>(D.TracesBuilt));
    std::printf("  jit: %llu compiled, %llu stencil execs, %llu refused, "
                "%llu arena bytes\n",
                static_cast<unsigned long long>(D.JitCompiled),
                static_cast<unsigned long long>(D.JitExecs),
                static_cast<unsigned long long>(D.JitRefused),
                static_cast<unsigned long long>(D.JitArenaBytes));
  }
  if (ShowDegradation)
    printDegradation(R);
  FinishObservability();
  return 0;
}
