//===- tools/jz-run.cpp - Supervised guest runner and fork server ----------===//
///
/// Runs one generated benchmark under a Janitizer tool with crash
/// containment: execution budgets (watchdogs) bound runaway guests, and a
/// fork-server mode amortizes process setup across repeated executions by
/// restoring a post-initialization StateFile snapshot instead of paying
/// static analysis + program load on every run (DESIGN.md §5h).
///
///   jz-run [BENCH] [TOOL] [--serve=N] [--snapshot=FILE] [--scale=S]
///          [--max-steps=N] [--max-cycles=N] [--max-wall-ms=MS]
///          [--hostile=runaway|deadlock] [--check]
///          [--metrics-json=FILE] [--bench-json=FILE]
///
/// BENCH            workload profile name (see jz-bench; default mcf)
/// TOOL             jasan (default) | jcfi | valgrind | none
/// --serve=N        fork-server mode: take one post-init snapshot, then
///                  serve N executions by restoring it. A run that
///                  faults, trips a watchdog, or reports violations is
///                  contained and reported; the server keeps serving. A
///                  snapshot that fails to read back (bit rot, injected
///                  faults) degrades that run to a cold start — never an
///                  abort.
/// --snapshot=FILE  state-file path (default: under /tmp, removed after)
/// --scale=S        workload WorkScale (default 2)
/// --max-steps / --max-cycles / --max-wall-ms
///                  execution budgets; defaults come from
///                  JZ_MAX_GUEST_STEPS / JZ_MAX_GUEST_CYCLES /
///                  JZ_MAX_WALL_MS
/// --hostile=K      run a built-in hostile guest instead of BENCH:
///                  `runaway` (unbounded spin loop, must trip the cycle
///                  watchdog) or `deadlock` (futex deadlock, must fault
///                  with the per-thread diagnostic). Exit 0 iff the guest
///                  was contained with a structured diagnostic.
/// --check          CI mode (with --serve): exit nonzero unless every
///                  served run reproduced the reference output, exit code
///                  and violation tuples byte-identically AND the warm
///                  restore setup was >= 3x faster than cold setup.
/// --metrics-json=FILE   dump jz.* metrics as JSON
/// --bench-json=FILE     dump the serve-phase measurements as JSON
///                       (results/BENCH_snapshot.json)
///
//===----------------------------------------------------------------------===//

#include "baselines/ValgrindASan.h"
#include "core/JanitizerDynamic.h"
#include "core/StaticAnalyzer.h"
#include "dbi/NullClient.h"
#include "jasan/JASan.h"
#include "jasm/AsmBuilder.h"
#include "jasm/Assembler.h"
#include "jcfi/JCFI.h"
#include "runtime/Jlibc.h"
#include "support/Cli.h"
#include "support/Metrics.h"
#include "vm/Process.h"
#include "vm/StateFile.h"
#include "workloads/WorkloadGen.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include <unistd.h>

using namespace janitizer;
using Clock = std::chrono::steady_clock;

namespace {

uint64_t microsBetween(Clock::time_point A, Clock::time_point B) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(B - A).count());
}

enum class ToolKind { Jasan, Jcfi, Valgrind, None };

const char *toolName(ToolKind K) {
  switch (K) {
  case ToolKind::Jasan:
    return "jasan";
  case ToolKind::Jcfi:
    return "jcfi";
  case ToolKind::Valgrind:
    return "valgrind";
  case ToolKind::None:
    return "none";
  }
  return "?";
}

std::optional<ToolKind> parseTool(const std::string &S) {
  if (S == "jasan")
    return ToolKind::Jasan;
  if (S == "jcfi")
    return ToolKind::Jcfi;
  if (S == "valgrind")
    return ToolKind::Valgrind;
  if (S == "none" || S == "null")
    return ToolKind::None;
  return std::nullopt;
}

/// The full (code, pc, detail, message) violation tuple; served runs must
/// reproduce the reference list exactly.
std::vector<std::tuple<uint8_t, uint64_t, uint64_t, std::string>>
fullTuples(const std::vector<Violation> &Vs) {
  std::vector<std::tuple<uint8_t, uint64_t, uint64_t, std::string>> T;
  for (const Violation &V : Vs)
    T.emplace_back(V.Code, V.PC, V.Detail, V.What);
  return T;
}

//===----------------------------------------------------------------------===//
// One supervised guest instance
//===----------------------------------------------------------------------===//

/// Everything a single execution owns: process, tool, dynamic client,
/// engine. Fresh per run — the fork-server analogue of the child after
/// fork(). The shared RuleStore / JcfiDatabase play the role of the
/// server's resident analysis results.
struct Instance {
  std::unique_ptr<Process> P;
  std::unique_ptr<JASanTool> Jasan;
  std::unique_ptr<JCFITool> Jcfi;
  std::unique_ptr<ValgrindASanTool> Valgrind;
  std::unique_ptr<NullClient> Null;
  std::unique_ptr<JanitizerDynamic> D;
  std::unique_ptr<DbiEngine> E;

  std::vector<ToolStateImage> captureImages() {
    if (D)
      return {{D->name(), D->captureState()}};
    if (Valgrind)
      return {{Valgrind->name(), Valgrind->captureState()}};
    return {};
  }

  Error restoreImages(const std::vector<ToolStateImage> &Imgs) {
    for (const ToolStateImage &I : Imgs) {
      if (D && I.Name == D->name())
        return D->restoreState(I.Bytes);
      if (Valgrind && I.Name == Valgrind->name())
        return Valgrind->restoreState(I.Bytes);
    }
    // No image for this tool: cold-start tool state is the right default.
    return Error::success();
  }
};

/// Constructs process + tool + engine (the engine registers itself as a
/// process observer, so it must exist before StateFile::restore replays
/// module loads). Does NOT load the program.
Instance makeInstance(const ModuleStore &Store, ToolKind K,
                      const RuleStore &Rules, JcfiDatabase &Db) {
  Instance I;
  I.P = std::make_unique<Process>(Store);
  switch (K) {
  case ToolKind::Jasan:
    I.Jasan = std::make_unique<JASanTool>();
    I.D = std::make_unique<JanitizerDynamic>(*I.Jasan, Rules);
    I.E = std::make_unique<DbiEngine>(*I.P, *I.D);
    break;
  case ToolKind::Jcfi:
    I.Jcfi = std::make_unique<JCFITool>(Db);
    I.D = std::make_unique<JanitizerDynamic>(*I.Jcfi, Rules);
    I.E = std::make_unique<DbiEngine>(*I.P, *I.D);
    break;
  case ToolKind::Valgrind:
    I.Valgrind = std::make_unique<ValgrindASanTool>();
    I.E = std::make_unique<DbiEngine>(*I.P, *I.Valgrind, valgrindCostModel());
    break;
  case ToolKind::None:
    I.Null = std::make_unique<NullClient>();
    I.E = std::make_unique<DbiEngine>(*I.P, *I.Null);
    break;
  }
  return I;
}

/// Runs the tool's static pass over the program — the expensive part of a
/// cold start that a fork-server restore skips entirely.
void analyzeFor(ToolKind K, const WorkloadBuild &W, RuleStore &Rules,
                JcfiDatabase &Db) {
  if (K != ToolKind::Jasan && K != ToolKind::Jcfi)
    return;
  StaticAnalyzer SA;
  if (K == ToolKind::Jasan) {
    JASanTool StaticTool;
    Error E = SA.analyzeProgram(W.Store, W.ExeName, StaticTool, Rules,
                                W.DlopenOnly);
    (void)E; // degraded analysis falls back to dynamic instrumentation
  } else {
    JCFITool StaticTool(Db);
    StaticTool.setStaticOutput(&Db);
    Error E = SA.analyzeProgram(W.Store, W.ExeName, StaticTool, Rules,
                                W.DlopenOnly);
    (void)E;
  }
}

/// Full cold start: static analysis + process/tool/engine construction +
/// program load, timed. Returns the ready-to-run instance.
Instance coldSetup(const WorkloadBuild &W, ToolKind K, RuleStore &Rules,
                   JcfiDatabase &Db, uint64_t *MicrosOut) {
  Clock::time_point T0 = Clock::now();
  analyzeFor(K, W, Rules, Db);
  Instance I = makeInstance(W.Store, K, Rules, Db);
  if (Error E = I.P->loadProgram(W.ExeName)) {
    std::fprintf(stderr, "jz-run: load failed: %s\n", E.message().c_str());
    std::exit(1);
  }
  if (MicrosOut)
    *MicrosOut = microsBetween(T0, Clock::now());
  return I;
}

//===----------------------------------------------------------------------===//
// Hostile guests (CI fixtures for the watchdogs)
//===----------------------------------------------------------------------===//

Module mustAssemble(const std::string &Src) {
  ErrorOr<Module> M = assembleModule(Src);
  if (!M) {
    std::fprintf(stderr, "jz-run: assembly failed: %s\n",
                 M.message().c_str());
    std::exit(1);
  }
  return *M;
}

/// Unbounded spin loop: never exits, never blocks. Only a cycle / step /
/// wall budget gets the host its CPU back.
ModuleStore runawayStore() {
  AsmBuilder B;
  B.line(".module spin");
  B.line(".entry main");
  B.func("main", /*Exported=*/true);
  B.line("main:");
  B.line("movi r0, 0");
  B.label("loop");
  B.line("addi r0, 1");
  B.line("jmp loop");
  B.endfunc();
  ModuleStore Store;
  Store.add(mustAssemble(B.str()));
  return Store;
}

/// Classic futex deadlock: main holds the lock forever and joins a worker
/// that blocks acquiring it. The scheduler must fault with the per-thread
/// diagnostic, not spin or hang.
ModuleStore deadlockStore() {
  AsmBuilder B;
  B.line(".module mtdead");
  B.line(".entry main");
  B.line(".needed libjz.so");
  B.line(".extern thread_create");
  B.line(".extern thread_join");
  B.line(".extern mutex_lock");
  B.section("bss");
  B.line("lock: .zero 8");
  B.section("text");
  B.func("stuckworker");
  B.label("stuckworker");
  B.line("la r0, lock");
  B.line("call mutex_lock"); // held by main forever
  B.line("movi r0, 0");
  B.line("ret");
  B.endfunc();
  B.func("main", /*Exported=*/true);
  B.line("main:");
  B.line("la r0, lock");
  B.line("call mutex_lock");
  B.line("la r0, stuckworker");
  B.line("movi r1, 0");
  B.line("call thread_create");
  B.line("call thread_join"); // r0 = worker tid from thread_create
  B.line("movi r0, 0");
  B.line("syscall 0");
  B.endfunc();
  ModuleStore Store;
  ErrorOr<Module> Jlibc = buildJlibc();
  if (!Jlibc) {
    std::fprintf(stderr, "jz-run: jlibc build failed: %s\n",
                 Jlibc.message().c_str());
    std::exit(1);
  }
  Store.add(*Jlibc);
  Store.add(mustAssemble(B.str()));
  return Store;
}

/// Runs one hostile guest under budgets and checks that the engine
/// contained it with the expected structured diagnostic. Exit 0 =
/// contained, 1 = escaped (ran to completion, hung past budget, or the
/// diagnostic is missing its structure).
int runHostile(const std::string &Kind, RunBudget Budget) {
  ModuleStore Store;
  std::string Exe;
  std::vector<const char *> WantTokens;
  if (Kind == "runaway") {
    Store = runawayStore();
    Exe = "spin";
    if (!Budget.MaxCycles && !Budget.MaxWallMs)
      Budget.MaxCycles = 200000; // default guard for the spin loop
    Budget.MaxSteps = std::min<uint64_t>(Budget.MaxSteps, 1ull << 24);
    WantTokens = {"watchdog:", "tid=", "pc=0x"};
  } else if (Kind == "deadlock") {
    Store = deadlockStore();
    Exe = "mtdead";
    WantTokens = {"deadlock:", "futex@", "join(tid=", "pc=0x"};
  } else {
    std::fprintf(stderr, "jz-run: unknown --hostile kind '%s'\n",
                 Kind.c_str());
    return 2;
  }

  Process P(Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  if (Error Err = P.loadProgram(Exe)) {
    std::fprintf(stderr, "jz-run: load failed: %s\n", Err.message().c_str());
    return 1;
  }
  RunResult R = E.run(Budget);
  if (R.St != RunResult::Status::Faulted) {
    std::printf("HOSTILE FAIL: %s guest was not contained (status %d)\n",
                Kind.c_str(), static_cast<int>(R.St));
    return 1;
  }
  for (const char *Tok : WantTokens)
    if (R.FaultMsg.find(Tok) == std::string::npos) {
      std::printf("HOSTILE FAIL: diagnostic lacks '%s': %s\n", Tok,
                  R.FaultMsg.c_str());
      return 1;
    }
  std::printf("HOSTILE ok: %s contained: %s\n", Kind.c_str(),
              R.FaultMsg.c_str());
  return 0;
}

//===----------------------------------------------------------------------===//
// Fork-server mode
//===----------------------------------------------------------------------===//

struct ServeStats {
  unsigned Runs = 0;
  unsigned Identical = 0;
  unsigned ContainedFaults = 0;
  unsigned ColdFallbacks = 0;
  std::vector<uint64_t> ColdMicros;
  std::vector<uint64_t> WarmMicros;
  uint64_t SnapshotBytes = 0;

  static uint64_t mean(const std::vector<uint64_t> &V) {
    if (V.empty())
      return 0;
    return std::accumulate(V.begin(), V.end(), uint64_t{0}) / V.size();
  }
  double speedup() const {
    uint64_t W = mean(WarmMicros);
    return W ? static_cast<double>(mean(ColdMicros)) / W : 0.0;
  }
};

int serve(const WorkloadBuild &W, ToolKind K, unsigned N,
          std::string SnapshotPath, RunBudget Budget, bool Check,
          const std::string &BenchJsonPath) {
  bool TempSnapshot = SnapshotPath.empty();
  if (TempSnapshot)
    SnapshotPath =
        "/tmp/jz-run-" + std::to_string(::getpid()) + ".state";

  // Resident analysis results: the fork-server analyzes once, every
  // served execution reuses the rules (exactly what the snapshot buys).
  RuleStore SeedRules;
  JcfiDatabase SeedDb;
  ServeStats S;

  // Seed: one cold start, snapshot post-init (before the first guest
  // instruction), then run to completion for the reference result.
  uint64_t SeedMicros = 0;
  Instance Seed = coldSetup(W, K, SeedRules, SeedDb, &SeedMicros);
  std::vector<uint8_t> Blob = StateFile::capture(*Seed.P,
                                                 Seed.captureImages());
  S.SnapshotBytes = Blob.size();
  if (Error E = StateFile::writeFile(SnapshotPath, Blob)) {
    // A snapshot is an optimization, never a correctness dependency:
    // serve cold if the disk refuses it.
    std::fprintf(stderr, "jz-run: snapshot write failed (%s); serving "
                         "cold\n",
                 E.message().c_str());
  }
  RunResult SeedR = Seed.E->run(Budget);
  if (SeedR.St != RunResult::Status::Exited) {
    std::fprintf(stderr, "jz-run: seed run did not exit: %s\n",
                 SeedR.FaultMsg.c_str());
    return 1;
  }
  std::string RefOutput = Seed.P->output();
  auto RefExit = SeedR.ExitCode;
  auto RefViolations = fullTuples(Seed.E->violations());
  std::printf("jz-run: seed cold setup %.2f ms, snapshot %zu bytes, "
              "%zu violation(s)\n",
              SeedMicros / 1e3, Blob.size(), RefViolations.size());

  MetricsRegistry &MR = MetricsRegistry::instance();
  for (unsigned I = 0; I < N; ++I) {
    // Cold baseline: measure the setup a fresh process would pay, with
    // nothing carried over (fresh rule store, fresh JCFI database).
    {
      RuleStore ColdRules;
      JcfiDatabase ColdDb;
      uint64_t Micros = 0;
      Instance C = coldSetup(W, K, ColdRules, ColdDb, &Micros);
      S.ColdMicros.push_back(Micros);
    }

    // Served run: restore the snapshot into a fresh instance. Any
    // failure along the way degrades this run to a cold start.
    Clock::time_point T0 = Clock::now();
    Instance R = makeInstance(W.Store, K, SeedRules, SeedDb);
    bool Warm = false;
    ErrorOr<std::vector<uint8_t>> Back = StateFile::readFile(SnapshotPath);
    if (Back) {
      std::vector<ToolStateImage> Imgs;
      Error RE = StateFile::restore(*R.P, *Back, &Imgs);
      if (!RE)
        RE = R.restoreImages(Imgs);
      if (RE)
        std::fprintf(stderr, "jz-run: run %u restore failed (%s); cold "
                             "start\n",
                     I, RE.message().c_str());
      else
        Warm = true;
    } else {
      std::fprintf(stderr, "jz-run: run %u snapshot unreadable (%s); "
                           "cold start\n",
                   I, Back.takeError().message().c_str());
    }
    if (!Warm) {
      // Degraded path: load the program the cold way into the same
      // fresh instance (the resident SeedRules/SeedDb it references
      // stay valid). The run still happens — a bad snapshot costs
      // time, never correctness.
      ++S.ColdFallbacks;
      MR.counter("jz.serve.cold_fallbacks").inc();
      if (Error LE = R.P->loadProgram(W.ExeName)) {
        std::fprintf(stderr, "jz-run: cold fallback load failed: %s\n",
                     LE.message().c_str());
        return 1;
      }
    }
    S.WarmMicros.push_back(microsBetween(T0, Clock::now()));

    RunResult RR = R.E->run(Budget);
    ++S.Runs;
    MR.counter("jz.serve.runs").inc();
    if (RR.St != RunResult::Status::Exited) {
      // Contained: report and keep serving — this is the point of the
      // supervisor.
      ++S.ContainedFaults;
      MR.counter("jz.serve.contained_faults").inc();
      std::printf("jz-run: run %u contained: %s\n", I,
                  RR.FaultMsg.c_str());
      continue;
    }
    bool Same = R.P->output() == RefOutput && RR.ExitCode == RefExit &&
                fullTuples(R.E->violations()) == RefViolations;
    if (Same)
      ++S.Identical;
    else
      std::printf("jz-run: run %u DIVERGED from reference\n", I);
  }

  double Speedup = S.speedup();
  std::printf("jz-run: served %u/%u identical, %u contained, %u cold "
              "fallbacks\n",
              S.Identical, S.Runs, S.ContainedFaults, S.ColdFallbacks);
  std::printf("jz-run: cold setup %.2f ms vs warm restore %.2f ms -> "
              "%.2fx\n",
              ServeStats::mean(S.ColdMicros) / 1e3,
              ServeStats::mean(S.WarmMicros) / 1e3, Speedup);

  MR.counter("jz.serve.cold_setup_micros")
      .set(ServeStats::mean(S.ColdMicros));
  MR.counter("jz.serve.warm_setup_micros")
      .set(ServeStats::mean(S.WarmMicros));
  MR.counter("jz.serve.speedup_millis")
      .set(static_cast<uint64_t>(Speedup * 1000));
  MR.counter("jz.serve.snapshot_bytes").set(S.SnapshotBytes);

  if (!BenchJsonPath.empty()) {
    std::FILE *F = std::fopen(BenchJsonPath.c_str(), "wb");
    if (!F) {
      std::fprintf(stderr, "jz-run: cannot open '%s'\n",
                   BenchJsonPath.c_str());
    } else {
      std::fprintf(F,
                   "{\n"
                   "  \"tool\": \"%s\",\n"
                   "  \"runs\": %u,\n"
                   "  \"identical\": %u,\n"
                   "  \"contained_faults\": %u,\n"
                   "  \"cold_fallbacks\": %u,\n"
                   "  \"snapshot_bytes\": %llu,\n"
                   "  \"cold_setup_micros_mean\": %llu,\n"
                   "  \"warm_restore_micros_mean\": %llu,\n"
                   "  \"speedup\": %.2f\n"
                   "}\n",
                   toolName(K), S.Runs, S.Identical, S.ContainedFaults,
                   S.ColdFallbacks,
                   static_cast<unsigned long long>(S.SnapshotBytes),
                   static_cast<unsigned long long>(
                       ServeStats::mean(S.ColdMicros)),
                   static_cast<unsigned long long>(
                       ServeStats::mean(S.WarmMicros)),
                   Speedup);
      std::fclose(F);
      std::printf("jz-run: bench -> %s\n", BenchJsonPath.c_str());
    }
  }

  if (TempSnapshot)
    ::unlink(SnapshotPath.c_str());

  if (Check) {
    bool Ok = true;
    if (S.Identical != S.Runs) {
      std::printf("CHECK FAIL: %u/%u served runs reproduced the "
                  "reference\n",
                  S.Identical, S.Runs);
      Ok = false;
    }
    if (S.ColdFallbacks) {
      std::printf("CHECK FAIL: %u served runs fell back to cold start\n",
                  S.ColdFallbacks);
      Ok = false;
    }
    if (Speedup < 3.0) {
      std::printf("CHECK FAIL: warm restore only %.2fx faster than cold "
                  "setup (want >= 3x)\n",
                  Speedup);
      Ok = false;
    }
    if (Ok)
      std::printf("CHECK ok: %u byte-identical served runs, restore "
                  "%.2fx faster than cold setup\n",
                  S.Runs, Speedup);
    return Ok ? 0 : 1;
  }
  return S.Identical == S.Runs ? 0 : 1;
}

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [BENCH] [TOOL] [--serve=N] [--snapshot=FILE] [--scale=S]\n"
      "       [--max-steps=N] [--max-cycles=N] [--max-wall-ms=MS]\n"
      "       [--hostile=runaway|deadlock] [--check]\n"
      "       [--metrics-json=FILE] [--bench-json=FILE]\n"
      "TOOL: jasan (default) | jcfi | valgrind | none\n",
      Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string Bench = "mcf";
  ToolKind Tool = ToolKind::Jasan;
  unsigned Serve = 0;
  unsigned Scale = 2;
  bool Check = false;
  std::string SnapshotPath, Hostile, MetricsJsonPath, BenchJsonPath;
  RunBudget Budget = RunBudget::fromEnv();
  unsigned Positionals = 0;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto ParseOr = [&](const std::string &Val,
                       const char *What) -> std::optional<unsigned> {
      std::optional<unsigned> V = parseCliUnsigned(Val, 1, 0xFFFFFFFEu);
      if (!V)
        std::fprintf(stderr,
                     "jz-run: invalid %s '%s' (expected a positive "
                     "integer)\n",
                     What, Val.c_str());
      return V;
    };
    if (Arg.rfind("--serve=", 0) == 0) {
      std::optional<unsigned> V = ParseOr(Arg.substr(8), "--serve value");
      if (!V)
        return 2;
      Serve = *V;
    } else if (Arg.rfind("--scale=", 0) == 0) {
      std::optional<unsigned> V =
          parseCliUnsigned(Arg.substr(8), 1, 1u << 10);
      if (!V)
        return usage(argv[0]);
      Scale = *V;
    } else if (Arg.rfind("--snapshot=", 0) == 0) {
      SnapshotPath = Arg.substr(std::strlen("--snapshot="));
    } else if (Arg.rfind("--max-steps=", 0) == 0) {
      std::optional<unsigned> V = ParseOr(Arg.substr(12), "--max-steps");
      if (!V)
        return 2;
      Budget.MaxSteps = *V;
    } else if (Arg.rfind("--max-cycles=", 0) == 0) {
      std::optional<unsigned> V = ParseOr(Arg.substr(13), "--max-cycles");
      if (!V)
        return 2;
      Budget.MaxCycles = *V;
    } else if (Arg.rfind("--max-wall-ms=", 0) == 0) {
      std::optional<unsigned> V = ParseOr(Arg.substr(14), "--max-wall-ms");
      if (!V)
        return 2;
      Budget.MaxWallMs = *V;
    } else if (Arg.rfind("--hostile=", 0) == 0) {
      Hostile = Arg.substr(std::strlen("--hostile="));
    } else if (Arg == "--check") {
      Check = true;
    } else if (Arg.rfind("--metrics-json=", 0) == 0) {
      MetricsJsonPath = Arg.substr(std::strlen("--metrics-json="));
    } else if (Arg.rfind("--bench-json=", 0) == 0) {
      BenchJsonPath = Arg.substr(std::strlen("--bench-json="));
    } else if (!Arg.empty() && Arg[0] != '-') {
      if (Positionals == 0) {
        Bench = Arg;
      } else if (Positionals == 1) {
        std::optional<ToolKind> K = parseTool(Arg);
        if (!K) {
          std::fprintf(stderr, "jz-run: unknown tool '%s'\n", Arg.c_str());
          return 2;
        }
        Tool = *K;
      } else {
        return usage(argv[0]);
      }
      ++Positionals;
    } else {
      return usage(argv[0]);
    }
  }

  int Rc = 0;
  if (!Hostile.empty()) {
    Rc = runHostile(Hostile, Budget);
  } else {
    const BenchProfile *Prof = findProfile(Bench);
    if (!Prof) {
      std::fprintf(stderr, "jz-run: unknown benchmark '%s'\n",
                   Bench.c_str());
      return 2;
    }
    WorkloadOptions WOpts;
    WOpts.WorkScale = Scale;
    ErrorOr<WorkloadBuild> WB = buildWorkload(*Prof, WOpts);
    if (!WB) {
      std::fprintf(stderr, "jz-run: workload build failed: %s\n",
                   WB.takeError().message().c_str());
      return 1;
    }

    if (Serve) {
      Rc = serve(*WB, Tool, Serve, SnapshotPath, Budget, Check,
                 BenchJsonPath);
    } else {
      // Single supervised run: cold start under budgets.
      RuleStore Rules;
      JcfiDatabase Db;
      uint64_t Micros = 0;
      Instance I = coldSetup(*WB, Tool, Rules, Db, &Micros);
      RunResult R = I.E->run(Budget);
      if (R.St == RunResult::Status::Exited) {
        std::printf("jz-run: %s/%s exited %llu (setup %.2f ms, %zu "
                    "violation(s))\n",
                    Bench.c_str(), toolName(Tool),
                    static_cast<unsigned long long>(R.ExitCode),
                    Micros / 1e3, I.E->violations().size());
        Rc = 0;
      } else {
        std::printf("jz-run: %s/%s contained: %s\n", Bench.c_str(),
                    toolName(Tool),
                    R.FaultMsg.empty() ? "did not finish"
                                       : R.FaultMsg.c_str());
        Rc = 3;
      }
    }
  }

  if (!MetricsJsonPath.empty()) {
    std::string Json = MetricsRegistry::instance().toJson();
    std::FILE *F = std::fopen(MetricsJsonPath.c_str(), "wb");
    if (!F) {
      std::fprintf(stderr, "jz-run: cannot open '%s'\n",
                   MetricsJsonPath.c_str());
    } else {
      std::fwrite(Json.data(), 1, Json.size(), F);
      std::fclose(F);
      std::printf("jz-run: metrics -> %s\n", MetricsJsonPath.c_str());
    }
  }
  return Rc;
}
