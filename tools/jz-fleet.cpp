//===- tools/jz-fleet.cpp - Fleet benchmark for the rule service -------------===//
///
/// Measures what jz-ruled buys a *fleet*: N guest processes that all need
/// rule files for the same program. Two configurations run back to back
/// over an identical wave schedule:
///
///   cold-local   every process runs the full static analysis itself
///                (no cache, no daemon) — the status quo ante;
///   warm-server  an in-process RuleServer is pre-seeded with the
///                program's rule files and every process fetches them in
///                one batched round trip instead of analyzing.
///
/// The orchestrator builds the workload once, serializes its modules to a
/// scratch directory, and spawns `argv[0] --worker` processes in waves of
/// W; each worker deserializes the modules, runs
/// StaticAnalyzer::analyzeProgram, and reports its stats through a result
/// file. Reported per phase: aggregate wall time, throughput in rule
/// files per second, and p50/p99 per-process latency; the headline number
/// is the aggregate cold/warm speedup.
///
///   jz-fleet [N] [--wave=W] [--funcs=F] [--check] [--metrics-json=FILE]
///
/// N               fleet size in processes (default 32)
/// --wave=W        processes spawned concurrently (default: hardware
///                 threads, capped at N)
/// --funcs=F       kernel functions in the generated executable — scales
///                 per-process analysis cost (default 384)
/// --check         CI mode: exit nonzero unless every worker succeeded in
///                 both phases AND the warm-server phase analyzed zero
///                 modules locally (i.e. the daemon served everything)
/// --metrics-json=FILE
///                 write jz.fleet.* metrics as JSON (BENCH_fleet.json)
///
/// Internal: `jz-fleet --worker MANIFEST RESULT [--ruled=SOCK]` is the
/// per-process entry point; not for interactive use.
///
//===----------------------------------------------------------------------===//

#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"
#include "rules/RuleServer.h"
#include "support/Cli.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "workloads/WorkloadGen.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace janitizer;
using Clock = std::chrono::steady_clock;

namespace {

uint64_t microsBetween(Clock::time_point A, Clock::time_point B) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(B - A).count());
}

bool writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = Bytes.empty() ||
            std::fwrite(Bytes.data(), 1, Bytes.size(), F) == Bytes.size();
  std::fclose(F);
  return Ok;
}

bool readFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::fseek(F, 0, SEEK_END);
  long Len = std::ftell(F);
  std::fseek(F, 0, SEEK_SET);
  Out.resize(Len < 0 ? 0 : static_cast<size_t>(Len));
  bool Ok = Out.empty() || std::fread(Out.data(), 1, Out.size(), F) ==
                               Out.size();
  std::fclose(F);
  return Ok;
}

//===----------------------------------------------------------------------===//
// Worker mode
//===----------------------------------------------------------------------===//

/// Runs one guest's static pipeline from a serialized module set and
/// writes `ok <analyzed> <server_hits> <degraded> <micros>` (or
/// `fail <reason>`) to the result file.
int workerMain(const std::string &ManifestPath, const std::string &ResultPath,
               const std::string &RuledSocket) {
  auto Fail = [&](const std::string &Why) {
    std::ofstream R(ResultPath);
    R << "fail " << Why << "\n";
    return 1;
  };

  Clock::time_point T0 = Clock::now();
  std::ifstream M(ManifestPath);
  if (!M)
    return Fail("cannot open manifest");
  ModuleStore Store;
  std::string ExeName;
  std::vector<std::string> Skip;
  std::string Kind, Value;
  while (M >> Kind && std::getline(M >> std::ws, Value)) {
    if (Kind == "exe") {
      ExeName = Value;
    } else if (Kind == "skip") {
      Skip.push_back(Value);
    } else if (Kind == "mod") {
      std::vector<uint8_t> Bytes;
      if (!readFile(Value, Bytes))
        return Fail("cannot read module " + Value);
      ErrorOr<Module> Mod = Module::deserialize(Bytes);
      if (!Mod)
        return Fail("bad module blob " + Value);
      Store.add(Mod.takeValue());
    } else {
      return Fail("bad manifest line '" + Kind + "'");
    }
  }
  if (ExeName.empty())
    return Fail("manifest names no exe");

  StaticAnalyzerOptions AOpts;
  AOpts.Jobs = 1; // one process == one guest; parallelism is the fleet
  AOpts.RuledSocket = RuledSocket;
  StaticAnalyzer SA(AOpts);
  JASanTool Tool;
  RuleStore Rules;
  if (Error E = SA.analyzeProgram(Store, ExeName, Tool, Rules, Skip))
    return Fail(E.message());

  const StaticAnalyzerStats &S = SA.stats();
  std::ofstream R(ResultPath);
  R << "ok " << S.ModulesAnalyzed << " " << S.ServerHits << " "
    << S.ModulesDegraded << " " << microsBetween(T0, Clock::now()) << "\n";
  return 0;
}

//===----------------------------------------------------------------------===//
// Orchestrator
//===----------------------------------------------------------------------===//

struct WorkerResult {
  bool Ok = false;
  uint64_t Analyzed = 0;
  uint64_t ServerHits = 0;
  uint64_t Degraded = 0;
  uint64_t SelfMicros = 0; ///< worker-measured (excludes exec)
  uint64_t LatMicros = 0;  ///< orchestrator-measured fork-to-reap
  std::string FailWhy;
};

struct PhaseResult {
  std::string Label;
  uint64_t WallMicros = 0;
  std::vector<WorkerResult> Workers;

  uint64_t totalAnalyzed() const {
    uint64_t N = 0;
    for (const WorkerResult &W : Workers)
      N += W.Analyzed;
    return N;
  }
  uint64_t totalServerHits() const {
    uint64_t N = 0;
    for (const WorkerResult &W : Workers)
      N += W.ServerHits;
    return N;
  }
  unsigned failures() const {
    unsigned N = 0;
    for (const WorkerResult &W : Workers)
      N += !W.Ok;
    return N;
  }
  uint64_t latPercentile(unsigned Pct) const {
    std::vector<uint64_t> L;
    for (const WorkerResult &W : Workers)
      L.push_back(W.LatMicros);
    if (L.empty())
      return 0;
    std::sort(L.begin(), L.end());
    size_t I = std::min(L.size() - 1, L.size() * Pct / 100);
    return L[I];
  }
};

std::string selfExePath() {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return "";
  Buf[N] = 0;
  return Buf;
}

/// Spawns \p N workers in waves of \p Wave and reaps each wave before
/// starting the next — the schedule every phase shares, so wall times are
/// comparable.
PhaseResult runPhase(const std::string &Label, const std::string &Self,
                     const std::string &Dir, const std::string &Manifest,
                     unsigned N, unsigned Wave,
                     const std::string &RuledSocket) {
  PhaseResult PR;
  PR.Label = Label;
  PR.Workers.resize(N);
  std::string RuledArg =
      RuledSocket.empty() ? "" : ("--ruled=" + RuledSocket);

  Clock::time_point PhaseStart = Clock::now();
  for (unsigned Base = 0; Base < N; Base += Wave) {
    unsigned End = std::min(N, Base + Wave);
    std::map<pid_t, unsigned> Live;
    std::vector<Clock::time_point> Starts(End - Base);
    for (unsigned I = Base; I < End; ++I) {
      std::string Result =
          Dir + "/result-" + Label + "-" + std::to_string(I) + ".txt";
      Starts[I - Base] = Clock::now();
      pid_t Pid = ::fork();
      if (Pid == 0) {
        std::vector<const char *> Args = {Self.c_str(), "--worker",
                                          Manifest.c_str(), Result.c_str()};
        if (!RuledArg.empty())
          Args.push_back(RuledArg.c_str());
        Args.push_back(nullptr);
        ::execv(Self.c_str(),
                const_cast<char *const *>(
                    const_cast<char **>(Args.data())));
        _exit(127);
      }
      if (Pid < 0) {
        PR.Workers[I].FailWhy = "fork failed";
        continue;
      }
      Live[Pid] = I;
    }
    while (!Live.empty()) {
      int St = 0;
      pid_t Pid = ::waitpid(-1, &St, 0);
      auto It = Live.find(Pid);
      if (It == Live.end())
        continue;
      unsigned I = It->second;
      WorkerResult &W = PR.Workers[I];
      W.LatMicros = microsBetween(Starts[I - Base], Clock::now());
      bool Exited0 = WIFEXITED(St) && WEXITSTATUS(St) == 0;
      std::ifstream R(Dir + "/result-" + Label + "-" + std::to_string(I) +
                      ".txt");
      std::string Tag;
      if (Exited0 && R >> Tag && Tag == "ok" && R >> W.Analyzed >>
                                                    W.ServerHits >>
                                                    W.Degraded >>
                                                    W.SelfMicros) {
        W.Ok = true;
      } else if (!Exited0) {
        W.FailWhy = WIFSIGNALED(St) ? "killed by signal "
                                          + std::to_string(WTERMSIG(St))
                                    : "exit " + std::to_string(
                                          WIFEXITED(St) ? WEXITSTATUS(St)
                                                        : -1);
      } else {
        std::getline(R, W.FailWhy);
        if (W.FailWhy.empty())
          W.FailWhy = "unreadable result file";
      }
      Live.erase(It);
    }
  }
  PR.WallMicros = microsBetween(PhaseStart, Clock::now());
  return PR;
}

void printPhase(const PhaseResult &P, size_t RuleFiles) {
  double WallSec = static_cast<double>(P.WallMicros) / 1e6;
  double Throughput =
      WallSec > 0 ? static_cast<double>(RuleFiles * P.Workers.size()) /
                        WallSec
                  : 0;
  std::printf("%-12s %4zu procs  wall %8.1f ms  %7.1f rule-files/s  "
              "p50 %6.1f ms  p99 %6.1f ms  analyzed %llu  served %llu",
              P.Label.c_str(), P.Workers.size(), WallSec * 1e3, Throughput,
              static_cast<double>(P.latPercentile(50)) / 1e3,
              static_cast<double>(P.latPercentile(99)) / 1e3,
              static_cast<unsigned long long>(P.totalAnalyzed()),
              static_cast<unsigned long long>(P.totalServerHits()));
  if (unsigned F = P.failures())
    std::printf("  FAILURES %u", F);
  std::printf("\n");
  for (const WorkerResult &W : P.Workers)
    if (!W.Ok)
      std::printf("    worker failed: %s\n", W.FailWhy.c_str());
}

void publishPhaseMetrics(const std::string &Label, const PhaseResult &P) {
  MetricsRegistry &MR = MetricsRegistry::instance();
  std::string Pfx = "jz.fleet." + Label + ".";
  MR.counter(Pfx + "wall_micros").set(P.WallMicros);
  MR.counter(Pfx + "p50_micros").set(P.latPercentile(50));
  MR.counter(Pfx + "p99_micros").set(P.latPercentile(99));
  MR.counter(Pfx + "modules_analyzed").set(P.totalAnalyzed());
  MR.counter(Pfx + "server_hits").set(P.totalServerHits());
  MR.counter(Pfx + "failures").set(P.failures());
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [N] [--wave=W] [--funcs=F] [--check] "
               "[--metrics-json=FILE]\n"
               "       %s --worker MANIFEST RESULT [--ruled=SOCK]\n",
               Argv0, Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  // Worker mode first: must not parse orchestrator flags.
  if (argc >= 2 && std::strcmp(argv[1], "--worker") == 0) {
    if (argc < 4)
      return usage(argv[0]);
    std::string Ruled;
    for (int I = 4; I < argc; ++I)
      if (std::strncmp(argv[I], "--ruled=", 8) == 0)
        Ruled = argv[I] + 8;
    return workerMain(argv[2], argv[3], Ruled);
  }

  unsigned N = 32;
  unsigned Wave = std::max(1u, std::thread::hardware_concurrency());
  unsigned Funcs = 384;
  bool Check = false;
  std::string MetricsJsonPath;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto ParseOr = [&](const std::string &Val,
                       const char *What) -> std::optional<unsigned> {
      std::optional<unsigned> V = parseCliUnsigned(Val, 1, 1u << 20);
      if (!V)
        std::fprintf(stderr,
                     "jz-fleet: invalid %s '%s' (expected a positive "
                     "integer)\n",
                     What, Val.c_str());
      return V;
    };
    if (Arg.rfind("--wave=", 0) == 0) {
      std::optional<unsigned> V = ParseOr(Arg.substr(7), "--wave value");
      if (!V)
        return 2;
      Wave = *V;
    } else if (Arg.rfind("--funcs=", 0) == 0) {
      std::optional<unsigned> V = ParseOr(Arg.substr(8), "--funcs value");
      if (!V)
        return 2;
      Funcs = *V;
    } else if (Arg == "--check")
      Check = true;
    else if (Arg.rfind("--metrics-json=", 0) == 0)
      MetricsJsonPath = Arg.substr(std::strlen("--metrics-json="));
    else if (!Arg.empty() && Arg[0] != '-') {
      std::optional<unsigned> V = ParseOr(Arg, "process count");
      if (!V)
        return 2;
      N = *V;
    } else
      return usage(argv[0]);
  }
  Wave = std::min(Wave, N);

  std::string Self = selfExePath();
  if (Self.empty()) {
    std::fprintf(stderr, "jz-fleet: cannot resolve own executable path\n");
    return 1;
  }

  // An analysis-heavy, execution-light profile: the fleet never *runs*
  // the program, so all cost sits in the static pipeline the daemon is
  // meant to amortize.
  BenchProfile Prof;
  Prof.Name = "fleet";
  Prof.Funcs = Funcs;
  Prof.OuterIters = 1;
  Prof.InnerIters = 1;
  WorkloadOptions WOpts;
  WOpts.WorkScale = 1;
  std::printf("jz-fleet: building workload (%u kernel funcs)...\n", Funcs);
  std::fflush(stdout);
  ErrorOr<WorkloadBuild> WB = buildWorkload(Prof, WOpts);
  if (!WB) {
    std::fprintf(stderr, "jz-fleet: workload build failed: %s\n",
                 WB.takeError().message().c_str());
    return 1;
  }

  char DirTmpl[] = "/tmp/jz-fleet-XXXXXX";
  if (!::mkdtemp(DirTmpl)) {
    std::fprintf(stderr, "jz-fleet: mkdtemp failed\n");
    return 1;
  }
  std::string Dir = DirTmpl;

  // Ship the module store to the workers as serialized blobs + manifest.
  std::vector<const Module *> Mods = WB->Store.all();
  {
    std::ofstream Man(Dir + "/manifest.txt");
    Man << "exe " << WB->ExeName << "\n";
    for (const std::string &S : WB->DlopenOnly)
      Man << "skip " << S << "\n";
    for (size_t I = 0; I < Mods.size(); ++I) {
      std::string Path = Dir + "/mod-" + std::to_string(I) + ".jmod";
      if (!writeFile(Path, Mods[I]->serialize())) {
        std::fprintf(stderr, "jz-fleet: cannot write %s\n", Path.c_str());
        return 1;
      }
      Man << "mod " << Path << "\n";
    }
  }
  std::string Manifest = Dir + "/manifest.txt";
  // Rule files one analysis produces (analyzed modules = all minus the
  // dlopen-only skips); the throughput unit.
  size_t RuleFiles = Mods.size() - WB->DlopenOnly.size();
  std::printf("jz-fleet: %zu modules (%zu analyzed per process), "
              "%u procs in waves of %u\n",
              Mods.size(), RuleFiles, N, Wave);
  std::fflush(stdout);

  // Phase 1: cold-local.
  PhaseResult Cold =
      runPhase("cold-local", Self, Dir, Manifest, N, Wave, "");
  printPhase(Cold, RuleFiles);

  // Phase 2: warm-server. Seed by analyzing once in-process with the
  // client tier pointed at the server: the pipeline's publish step fills
  // the daemon exactly as a first guest on a real fleet would.
  std::string Socket = Dir + "/ruled.sock";
  RuleServer Srv;
  RuleServerOptions SrvOpts;
  SrvOpts.SocketPath = Socket;
  if (Error E = Srv.start(SrvOpts)) {
    std::fprintf(stderr, "jz-fleet: rule server: %s\n",
                 E.message().c_str());
    return 1;
  }
  {
    StaticAnalyzerOptions AOpts;
    AOpts.Jobs = 0; // the seeding analysis may use every core
    AOpts.RuledSocket = Socket;
    StaticAnalyzer SA(AOpts);
    JASanTool Tool;
    RuleStore Rules;
    if (Error E = SA.analyzeProgram(WB->Store, WB->ExeName, Tool, Rules,
                                    WB->DlopenOnly)) {
      std::fprintf(stderr, "jz-fleet: warm-up analysis failed: %s\n",
                   E.message().c_str());
      return 1;
    }
  }
  std::printf("jz-fleet: server warmed with %zu rule files\n",
              Srv.entryCount());
  std::fflush(stdout);

  PhaseResult Warm =
      runPhase("warm-server", Self, Dir, Manifest, N, Wave, Socket);
  printPhase(Warm, RuleFiles);
  Srv.stop();

  double Speedup =
      Warm.WallMicros
          ? static_cast<double>(Cold.WallMicros) / Warm.WallMicros
          : 0;
  std::printf("jz-fleet: aggregate speedup %.2fx (cold %.1f ms -> warm "
              "%.1f ms)\n",
              Speedup, static_cast<double>(Cold.WallMicros) / 1e3,
              static_cast<double>(Warm.WallMicros) / 1e3);

  MetricsRegistry &MR = MetricsRegistry::instance();
  MR.counter("jz.fleet.procs").set(N);
  MR.counter("jz.fleet.wave").set(Wave);
  MR.counter("jz.fleet.funcs").set(Funcs);
  MR.counter("jz.fleet.rule_files_per_proc").set(RuleFiles);
  MR.counter("jz.fleet.speedup_millis")
      .set(static_cast<uint64_t>(Speedup * 1000));
  publishPhaseMetrics("cold", Cold);
  publishPhaseMetrics("warm", Warm);

  if (!MetricsJsonPath.empty()) {
    std::string Json = MR.toJson();
    std::FILE *F = std::fopen(MetricsJsonPath.c_str(), "wb");
    if (!F) {
      std::fprintf(stderr, "jz-fleet: cannot open '%s'\n",
                   MetricsJsonPath.c_str());
    } else {
      std::fwrite(Json.data(), 1, Json.size(), F);
      std::fclose(F);
      std::printf("jz-fleet: metrics -> %s\n", MetricsJsonPath.c_str());
    }
  }

  if (Check) {
    bool Ok = true;
    if (Cold.failures() || Warm.failures()) {
      std::printf("CHECK FAIL: %u cold / %u warm worker failures\n",
                  Cold.failures(), Warm.failures());
      Ok = false;
    }
    if (Warm.totalAnalyzed() != 0) {
      std::printf("CHECK FAIL: warm-server phase analyzed %llu modules "
                  "locally (want 0)\n",
                  static_cast<unsigned long long>(Warm.totalAnalyzed()));
      Ok = false;
    }
    if (Warm.totalServerHits() != RuleFiles * N) {
      std::printf("CHECK FAIL: warm-server hits %llu != expected %zu\n",
                  static_cast<unsigned long long>(Warm.totalServerHits()),
                  RuleFiles * N);
      Ok = false;
    }
    if (Ok)
      std::printf("CHECK ok: all %u workers succeeded twice; warm phase "
                  "analyzed 0 modules locally\n",
                  N);
    return Ok ? 0 : 1;
  }
  return (Cold.failures() || Warm.failures()) ? 1 : 0;
}
