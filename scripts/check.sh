#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
# This is the single entry point CI should invoke.
#
#   scripts/check.sh [build-dir]
#
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
