#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
# This is the single entry point CI should invoke.
#
#   scripts/check.sh [build-dir]
#
# Tier-2 (opt-in): JZ_SANITIZE=1 scripts/check.sh
#   Additionally builds the host tests with AddressSanitizer +
#   UndefinedBehaviorSanitizer into <build-dir>-asan and runs ctest there.
#   This catches host-side memory errors in the analyzer, cache and VM
#   code paths that the plain build cannot see. The default flow is
#   unchanged when JZ_SANITIZE is unset.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

if [ "${JZ_SANITIZE:-0}" = "1" ]; then
  SAN_DIR="${BUILD_DIR}-asan"
  SAN_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -g"
  echo "== tier-2: ASan+UBSan build in $SAN_DIR =="
  cmake -B "$SAN_DIR" -S "$REPO_ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
  cmake --build "$SAN_DIR" -j "$JOBS"
  # halt_on_error: any sanitizer report fails the test that triggered it.
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=0" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --test-dir "$SAN_DIR" --output-on-failure -j "$JOBS"
fi
