#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
# This is the single entry point CI should invoke.
#
#   scripts/check.sh [build-dir]
#
# Tier-2 (opt-in): JZ_SANITIZE=1 scripts/check.sh
#   Additionally builds the host tests with AddressSanitizer +
#   UndefinedBehaviorSanitizer into <build-dir>-asan and runs ctest there.
#   This catches host-side memory errors in the analyzer, cache and VM
#   code paths that the plain build cannot see. The default flow is
#   unchanged when JZ_SANITIZE is unset.
#
# Tier-2 (opt-in): JZ_FAULT_MATRIX=1 scripts/check.sh
#   Re-runs the integration suite under three randomized-seed JZ_FAULTS
#   profiles (see support/FaultInjector.h and DESIGN.md §5c). Degraded
#   coverage may legitimately fail individual expectations; what this
#   stage enforces is the hard failure-model invariant: no fault
#   combination may ever *abort* the process (signal / crash). Set
#   JZ_FAULT_SEED=N for a reproducible matrix.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

if [ "${JZ_SANITIZE:-0}" = "1" ]; then
  SAN_DIR="${BUILD_DIR}-asan"
  SAN_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -g"
  echo "== tier-2: ASan+UBSan build in $SAN_DIR =="
  cmake -B "$SAN_DIR" -S "$REPO_ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
  cmake --build "$SAN_DIR" -j "$JOBS"
  # halt_on_error: any sanitizer report fails the test that triggered it.
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=0" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --test-dir "$SAN_DIR" --output-on-failure -j "$JOBS"
fi

if [ "${JZ_FAULT_MATRIX:-0}" = "1" ]; then
  echo "== tier-2: JZ_FAULTS fault matrix =="
  SEED="${JZ_FAULT_SEED:-$RANDOM}"
  echo "   base seed: $SEED (set JZ_FAULT_SEED=$SEED to reproduce)"
  # Three profiles spanning the pipeline: analysis-layer faults,
  # rules/cache-layer faults, budget + load-time validation faults.
  PROFILES=(
    "static.analyze:p=0.3:seed=$((SEED + 1)),pool.task:p=0.2:seed=$((SEED + 2)),dynamic.moduleload:p=0.2:seed=$((SEED + 3))"
    "rules.parse:p=0.5:seed=$((SEED + 4)),cache.read.corrupt:p=0.5:seed=$((SEED + 5)),cache.write.enospc:p=0.5:seed=$((SEED + 6)),cache.rename:p=0.5:seed=$((SEED + 7))"
    "static.budget:p=0.4:seed=$((SEED + 8)),dynamic.rules.validate:p=0.3:seed=$((SEED + 9))"
  )
  for PROFILE in "${PROFILES[@]}"; do
    echo "-- fault profile: $PROFILE"
    set +e
    JZ_FAULTS="$PROFILE" "$BUILD_DIR/tests/integration_test" \
      >"$BUILD_DIR/fault_matrix.log" 2>&1
    RC=$?
    set -e
    # A gtest expectation failing under degraded coverage is acceptable;
    # a process abort (rc >= 128: signal/crash) violates the
    # degrade-don't-die contract and fails the stage.
    if [ "$RC" -ge 128 ]; then
      echo "FATAL: integration suite aborted (rc=$RC) under JZ_FAULTS=$PROFILE"
      tail -n 40 "$BUILD_DIR/fault_matrix.log"
      exit 1
    fi
    echo "   rc=$RC (no abort; degraded runs are acceptable)"
  done
fi
