#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the test suite.
# This is the single entry point CI should invoke.
#
#   scripts/check.sh [build-dir]
#
# Tests are tiered by ctest label (tests/CMakeLists.txt): the default
# tier-1 run is the fast `unit` label. JZ_FULL=1 runs every registered
# test (unit + integration + bench) exactly as before the labels existed.
#
# Tier-2 (opt-in): JZ_SANITIZE=1 scripts/check.sh
#   Additionally builds the host tests with AddressSanitizer +
#   UndefinedBehaviorSanitizer into <build-dir>-asan and runs ctest there.
#   This catches host-side memory errors in the analyzer, cache and VM
#   code paths that the plain build cannot see. The default flow is
#   unchanged when JZ_SANITIZE is unset.
#
# Tier-2 (opt-in): JZ_TSAN=1 scripts/check.sh
#   Additionally builds the host tests with ThreadSanitizer into
#   <build-dir>-tsan and runs the `mt` and `jit` ctest labels there —
#   the suites that drive multi-threaded guests through the shared DBI
#   engine (epoch reclamation, shared cache, cross-thread JASan) and the
#   template-JIT tier (concurrent tier-up CAS, stencil publication).
#   Any data race TSan reports fails the stage. The default flow is
#   unchanged when JZ_TSAN is unset.
#
# Tier-2 (opt-in): JZ_FAULT_MATRIX=1 scripts/check.sh
#   Re-runs the integration suite under three randomized-seed JZ_FAULTS
#   profiles (see support/FaultInjector.h and DESIGN.md §5c). Degraded
#   coverage may legitimately fail individual expectations; what this
#   stage enforces is the hard failure-model invariant: no fault
#   combination may ever *abort* the process (signal / crash). Set
#   JZ_FAULT_SEED=N for a reproducible matrix.
#
# Tier-2 (opt-in): JZ_TRACE_CHECK=1 scripts/check.sh
#   Runs a traced jz-bench workload plus the integration suite under
#   JZ_TRACE=<file> (see support/Trace.h and DESIGN.md §5d) and validates
#   the emitted Chrome trace_event JSON: parseable, and spanning the
#   static, pool, cache, dispatch and tool layers. Requires python3 for
#   the JSON validation; the stage is skipped with a notice without it.
#
# Tier-2 (opt-in): JZ_FLEET_CHECK=1 scripts/check.sh
#   Runs a 16-process jz-fleet in --check mode against the rule service
#   (DESIGN.md §5f): every worker must succeed in both the cold-local
#   and warm-server phases, and the warm-server phase must analyze zero
#   modules locally — the daemon served every rule file.
#
# Tier-2 (opt-in): JZ_LINK_CHECK=1 scripts/check.sh
#   Validates block linking + trace formation (DESIGN.md §5e): the
#   linked-vs-unlinked micro-benchmark must show execution-identical runs
#   with dispatcher entries + indirect lookups reduced >= 5x, and the
#   differential suite must pass under each of the three dispatcher
#   configurations {default, JZ_NO_LINK=1, JZ_NO_TRACE=1}.
#
# Tier-2 (opt-in): JZ_JIT_CHECK=1 scripts/check.sh
#   Validates the template-JIT execution tier (DESIGN.md §5i): the `jit`
#   ctest label (emitter self-test, seeded stencil-vs-interpreter property
#   sweep, tier-down regressions, cold-restore snapshots), the jit
#   micro-benchmark's >= 2x wall-clock bound with bit-identical execution,
#   and the differential suite pinned under JZ_NO_JIT=1 — every
#   differential must be insensitive to the execution tier.
#
# Tier-2 (opt-in): JZ_SNAPSHOT_CHECK=1 scripts/check.sh
#   Validates guest crash containment (DESIGN.md §5h): the `snapshot`
#   ctest label (state-file round trips, watchdogs, fault injection),
#   a 16-run jz-run fork server in --check mode (byte-identical served
#   runs, warm restore >= 3x faster than cold setup), both hostile
#   guests contained with structured diagnostics, and a served batch
#   under injected snapshot corruption that must degrade to cold starts
#   without aborting.
#
# Tier-2 (opt-in): JZ_REWRITE_CHECK=1 scripts/check.sh
#   Validates the AOT static-rewriting tier (DESIGN.md §5j): the
#   `rewrite` ctest label (hybrid-vs-AOT differentials, the all-stubbed
#   DBI fallback, the no-exec carpet), then `jz-bench rewrite` — the
#   §6.2.1 rewriter-torture matrix (Janitizer-AOT must be functionally
#   correct on every case the baselines refuse or silently corrupt) and
#   the Juliet differential (byte-identical violation tuples with zero
#   DBI dispatch entries), asserted from the emitted JSON.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
cmake --build "$BUILD_DIR" -j "$JOBS"
if [ "${JZ_FULL:-0}" = "1" ]; then
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
else
  echo "== tier-1: unit label (JZ_FULL=1 for integration + bench tiers) =="
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L unit
fi

if [ "${JZ_SANITIZE:-0}" = "1" ]; then
  SAN_DIR="${BUILD_DIR}-asan"
  SAN_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -g"
  echo "== tier-2: ASan+UBSan build in $SAN_DIR =="
  cmake -B "$SAN_DIR" -S "$REPO_ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
  cmake --build "$SAN_DIR" -j "$JOBS"
  # halt_on_error: any sanitizer report fails the test that triggered it.
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=0" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --test-dir "$SAN_DIR" --output-on-failure -j "$JOBS"
fi

if [ "${JZ_TSAN:-0}" = "1" ]; then
  TSAN_DIR="${BUILD_DIR}-tsan"
  TSAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer -g"
  echo "== tier-2: TSan build in $TSAN_DIR (mt + jit labels) =="
  cmake -B "$TSAN_DIR" -S "$REPO_ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="$TSAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$TSAN_FLAGS"
  cmake --build "$TSAN_DIR" -j "$JOBS"
  # halt_on_error: any reported race fails the test that triggered it.
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$JOBS" -L 'mt|jit'
fi

if [ "${JZ_FAULT_MATRIX:-0}" = "1" ]; then
  echo "== tier-2: JZ_FAULTS fault matrix =="
  SEED="${JZ_FAULT_SEED:-$RANDOM}"
  echo "   base seed: $SEED (set JZ_FAULT_SEED=$SEED to reproduce)"
  # Three profiles spanning the pipeline: analysis-layer faults,
  # rules/cache-layer faults, budget + load-time validation faults.
  PROFILES=(
    "static.analyze:p=0.3:seed=$((SEED + 1)),pool.task:p=0.2:seed=$((SEED + 2)),dynamic.moduleload:p=0.2:seed=$((SEED + 3))"
    "rules.parse:p=0.5:seed=$((SEED + 4)),cache.read.corrupt:p=0.5:seed=$((SEED + 5)),cache.write.enospc:p=0.5:seed=$((SEED + 6)),cache.rename:p=0.5:seed=$((SEED + 7))"
    "static.budget:p=0.4:seed=$((SEED + 8)),dynamic.rules.validate:p=0.3:seed=$((SEED + 9))"
  )
  for PROFILE in "${PROFILES[@]}"; do
    echo "-- fault profile: $PROFILE"
    set +e
    JZ_FAULTS="$PROFILE" "$BUILD_DIR/tests/integration_test" \
      >"$BUILD_DIR/fault_matrix.log" 2>&1
    RC=$?
    set -e
    # A gtest expectation failing under degraded coverage is acceptable;
    # a process abort (rc >= 128: signal/crash) violates the
    # degrade-don't-die contract and fails the stage.
    if [ "$RC" -ge 128 ]; then
      echo "FATAL: integration suite aborted (rc=$RC) under JZ_FAULTS=$PROFILE"
      tail -n 40 "$BUILD_DIR/fault_matrix.log"
      exit 1
    fi
    echo "   rc=$RC (no abort; degraded runs are acceptable)"
  done
fi

if [ "${JZ_LINK_CHECK:-0}" = "1" ]; then
  echo "== tier-2: block linking + trace formation =="
  # Self-checking micro-benchmark: identical execution, >= 5x fewer
  # dispatcher entries + indirect lookups with links and traces on.
  "$BUILD_DIR/bench/microbench_dispatch" --links 20000
  # The full differential suite under each dispatcher configuration.
  # The suite's own sweep tests exercise the per-run env flip; running
  # the whole binary under a pinned kill-switch additionally proves every
  # other differential is insensitive to the dispatcher configuration.
  for CFG in "" "JZ_NO_LINK=1" "JZ_NO_TRACE=1"; do
    echo "-- differential suite under config: ${CFG:-default}"
    env $CFG "$BUILD_DIR/tests/differential_test" \
      >"$BUILD_DIR/link_check.log" 2>&1 || {
      echo "FATAL: differential suite failed under ${CFG:-default}"
      tail -n 40 "$BUILD_DIR/link_check.log"
      exit 1
    }
  done
  echo "   link/trace differential sweep ok"
fi

if [ "${JZ_TRACE_CHECK:-0}" = "1" ]; then
  echo "== tier-2: trace export validation =="
  if ! command -v python3 >/dev/null 2>&1; then
    echo "   python3 not found; skipping trace JSON validation"
  else
    # One representative hybrid workload traced end to end via the
    # jz-bench flag: the JSON must parse and must contain spans from
    # every pipeline layer of the acceptance contract. The rule cache
    # starts cold — a warm cache would (correctly) skip the analysis
    # fan-out and leave no pool/tool spans to validate.
    TRACE_JSON="$BUILD_DIR/trace_check.json"
    rm -rf "$BUILD_DIR/trace_check_cache"
    "$BUILD_DIR/tools/jz-bench" bzip2 jasan-hybrid 1 --jobs=2 \
      --rule-cache="$BUILD_DIR/trace_check_cache" \
      --trace="$TRACE_JSON" --metrics-json="$BUILD_DIR/trace_check_metrics.json" \
      >"$BUILD_DIR/trace_check.log" 2>&1
    python3 - "$TRACE_JSON" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
layers = {e["cat"] for e in events}
need = {"static", "pool", "cache", "dispatch", "tool"}
missing = need - layers
assert events, "trace contains no events"
assert not missing, f"trace missing layers: {sorted(missing)} (have {sorted(layers)})"
print(f"   jz-bench trace ok: {len(events)} events, layers {sorted(layers)}")
PYEOF
    python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
      "$BUILD_DIR/trace_check_metrics.json"
    echo "   jz-bench metrics JSON ok"
    # The environmental arming path: any binary under JZ_TRACE=<path>
    # writes a trace at exit with no new flags — validated on the
    # integration suite.
    ENV_JSON="$BUILD_DIR/trace_check_env.json"
    JZ_TRACE="$ENV_JSON" "$BUILD_DIR/tests/integration_test" \
      --gtest_filter='Matrix/ToolMatrix.*bzip2_jasan_hybrid*' \
      >>"$BUILD_DIR/trace_check.log" 2>&1
    python3 -c 'import json,sys; t=json.load(open(sys.argv[1])); assert t["traceEvents"], "empty env trace"' \
      "$ENV_JSON"
    echo "   JZ_TRACE env export ok"
  fi
fi

if [ "${JZ_FLEET_CHECK:-0}" = "1" ]; then
  echo "== tier-2: rule-service fleet check =="
  # A 16-process fleet through jz-fleet --check: every worker must
  # succeed in both phases, and the warm-server phase must analyze zero
  # modules locally (the daemon served every rule file). The speedup
  # itself is reported but not asserted here — CI machines are too
  # noisy for a wall-clock gate; results/BENCH_fleet.json records the
  # reference numbers (see EXPERIMENTS.md).
  "$BUILD_DIR/tools/jz-fleet" 16 --funcs=48 --check \
    --metrics-json="$BUILD_DIR/fleet_check_metrics.json"
  if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json,sys; m=json.load(open(sys.argv[1])); \
assert m["jz.fleet.warm.modules_analyzed"] == 0; \
assert m["jz.fleet.warm.failures"] == 0 and m["jz.fleet.cold.failures"] == 0' \
      "$BUILD_DIR/fleet_check_metrics.json"
    echo "   fleet metrics JSON ok"
  fi
fi

if [ "${JZ_JIT_CHECK:-0}" = "1" ]; then
  echo "== tier-2: template-JIT execution tier =="
  # The jit-labeled unit tests: emitter encodings, the seeded property
  # sweep (full machine-state compare per seed), kill-switch and arena
  # degradation, stencil eviction, snapshots restoring cold.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L jit
  # Self-checking micro-benchmark: execution bit-identical and >= 2x
  # faster in host wall-clock with the jit tier on.
  "$BUILD_DIR/bench/microbench_dispatch" --jit 200000
  # The full differential suite with the tier killed: every differential
  # must hold on the pure interpreter too.
  JZ_NO_JIT=1 "$BUILD_DIR/tests/differential_test" \
    >"$BUILD_DIR/jit_check.log" 2>&1 || {
    echo "FATAL: differential suite failed under JZ_NO_JIT=1"
    tail -n 40 "$BUILD_DIR/jit_check.log"
    exit 1
  }
  echo "   jit differential sweep ok"
fi

if [ "${JZ_REWRITE_CHECK:-0}" = "1" ]; then
  echo "== tier-2: AOT static-rewriting tier =="
  # The rewrite-labeled unit tests: full-coverage zero-dispatch
  # differential, all-stubbed fallback, vacated-exec carpet.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L rewrite
  # The torture matrix + Juliet differential; the subcommand exits
  # non-zero unless Janitizer-AOT is correct on every torture case and
  # the differential holds (results/BENCH_rewrite.json records the
  # committed reference table; see EXPERIMENTS.md).
  "$BUILD_DIR/tools/jz-bench" rewrite \
    --json="$BUILD_DIR/rewrite_check.json"
  if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json,sys; m=json.load(open(sys.argv[1])); \
assert all(m["torture_%s_janitizer_aot" % c] == "correct" \
           for c in ("overlap_entry", "data_in_text", "computed_goto")); \
assert m["differential_identical"] is True; \
assert m["differential_aot_dispatch_entries"] == 0' \
      "$BUILD_DIR/rewrite_check.json"
    echo "   rewrite JSON gates ok"
  fi
fi

if [ "${JZ_SNAPSHOT_CHECK:-0}" = "1" ]; then
  echo "== tier-2: guest crash containment =="
  # The snapshot-labeled unit tests: state-file round trips for every
  # tool, watchdog budgets, and snapshot fault injection.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L snapshot
  # A 16-run fork server in --check mode: every served run must
  # reproduce the reference byte-identically and the warm restore must
  # beat cold setup by >= 3x (results/BENCH_snapshot.json records the
  # committed reference numbers; see EXPERIMENTS.md).
  "$BUILD_DIR/tools/jz-run" mcf jasan --serve=16 --check \
    --metrics-json="$BUILD_DIR/snapshot_check_metrics.json"
  # Hostile guests: the watchdog and the deadlock detector must contain
  # them with structured diagnostics (never a host hang).
  "$BUILD_DIR/tools/jz-run" --hostile=runaway
  "$BUILD_DIR/tools/jz-run" --hostile=deadlock
  # Degrade-don't-die: a corrupt snapshot forces cold fallbacks but the
  # served batch must still complete byte-identically (exit 0).
  JZ_FAULTS="snapshot.read.corrupt:always" \
    "$BUILD_DIR/tools/jz-run" mcf jasan --serve=4
  if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json,sys; m=json.load(open(sys.argv[1])); \
assert m["jz.serve.runs"] == 16; \
assert m.get("jz.serve.contained_faults", 0) == 0; \
assert m.get("jz.serve.cold_fallbacks", 0) == 0; \
assert m["jz.serve.speedup_millis"] >= 3000' \
      "$BUILD_DIR/snapshot_check_metrics.json"
    echo "   snapshot metrics JSON ok"
  fi
fi
