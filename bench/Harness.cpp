//===- bench/Harness.cpp ---------------------------------------------------==//

#include "Harness.h"

#include "baselines/BinCFI.h"
#include "baselines/Lockdown.h"
#include "baselines/RetroWrite.h"
#include "baselines/ValgrindASan.h"
#include "core/StaticAnalyzer.h"
#include "dbi/NullClient.h"
#include "jasan/JASan.h"
#include "jcfi/JCFI.h"
#include "support/Format.h"

#include <cmath>
#include <cstdio>

using namespace janitizer;
using namespace janitizer::bench;

PreparedWorkload janitizer::bench::prepare(const BenchProfile &P,
                                           unsigned WorkScale, bool NeedPic) {
  PreparedWorkload PW;
  WorkloadOptions Opts;
  Opts.WorkScale = WorkScale;
  PW.W = cantFail(buildWorkload(P, Opts), "workload generation");
  RunResult R;
  PW.Checksum = nativeReference(PW.W, &R);
  PW.NativeCycles = R.Cycles;
  if (NeedPic) {
    WorkloadOptions PicOpts = Opts;
    PicOpts.PicExe = true;
    PW.PicW = cantFail(buildWorkload(P, PicOpts), "PIC workload generation");
    RunResult PR;
    PW.PicChecksum = nativeReference(*PW.PicW, &PR);
    PW.PicNativeCycles = PR.Cycles;
  }
  return PW;
}

namespace {

ConfigResult finish(const RunResult &R, const std::string &Output,
                    const std::string &Checksum, uint64_t NativeCycles,
                    size_t NumViolations = 0) {
  ConfigResult C;
  if (R.St != RunResult::Status::Exited) {
    C.Note = R.FaultMsg.empty() ? "did not finish" : R.FaultMsg;
    return C;
  }
  if (Output != Checksum) {
    C.Note = "wrong result";
    return C;
  }
  if (NumViolations) {
    C.Note = formatString("%zu false positives", NumViolations);
    return C;
  }
  C.Ok = true;
  C.Slowdown = NativeCycles ? static_cast<double>(R.Cycles) / NativeCycles
                            : 0.0;
  return C;
}

RuleStore jasanRules(const PreparedWorkload &PW,
                     const StaticAnalyzerOptions &AOpts,
                     StaticAnalyzerStats *StatsOut) {
  RuleStore Rules;
  StaticAnalyzer SA(AOpts);
  JASanTool StaticTool;
  Error E = SA.analyzeProgram(PW.W.Store, PW.W.ExeName, StaticTool, Rules,
                              PW.W.DlopenOnly);
  (void)E;
  if (StatsOut)
    *StatsOut = SA.stats();
  return Rules;
}

} // namespace

ConfigResult janitizer::bench::runNullClient(const PreparedWorkload &PW) {
  Process P(PW.W.Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  if (Error Err = P.loadProgram(PW.W.ExeName))
    return {false, 0.0, Err.message()};
  RunResult R = E.run(1ull << 31);
  ConfigResult C = finish(R, P.output(), PW.Checksum, PW.NativeCycles);
  C.HasDbi = true;
  C.Dbi = E.stats();
  return C;
}

ConfigResult janitizer::bench::runJasanDyn(const PreparedWorkload &PW) {
  RuleStore Empty;
  JASanTool Tool;
  JanitizerRun R =
      runUnderJanitizer(PW.W.Store, PW.W.ExeName, Tool, Empty, 1ull << 31);
  ConfigResult C = finish(R.Result, R.Output, PW.Checksum, PW.NativeCycles,
                          R.Violations.size());
  C.HasCoverage = true;
  C.Coverage = R.Coverage;
  C.HasDbi = true;
  C.Dbi = R.Dbi;
  return C;
}

ConfigResult janitizer::bench::runJasanHybrid(
    const PreparedWorkload &PW, bool UseLiveness,
    const StaticAnalyzerOptions &AOpts) {
  StaticAnalyzerStats SAStats;
  RuleStore Rules = jasanRules(PW, AOpts, &SAStats);
  JASanOptions Opts;
  Opts.UseLiveness = UseLiveness;
  JASanTool Tool(Opts);
  JanitizerRun R =
      runUnderJanitizer(PW.W.Store, PW.W.ExeName, Tool, Rules, 1ull << 31);
  ConfigResult C = finish(R.Result, R.Output, PW.Checksum, PW.NativeCycles,
                          R.Violations.size());
  C.HasCoverage = true;
  C.Coverage = R.Coverage;
  C.HasDbi = true;
  C.Dbi = R.Dbi;
  C.HasStatic = true;
  C.Static = std::move(SAStats);
  return C;
}

ConfigResult janitizer::bench::runValgrindCfg(const PreparedWorkload &PW) {
  BaselineRun R = runUnderValgrind(PW.W.Store, PW.W.ExeName, 1ull << 31);
  ConfigResult C = finish(R.Result, R.Output, PW.Checksum, PW.NativeCycles,
                          R.Violations.size());
  C.HasDbi = true;
  C.Dbi = R.Dbi;
  return C;
}

ConfigResult janitizer::bench::runRetroWriteCfg(const PreparedWorkload &PW) {
  if (!PW.PicW)
    return {false, 0.0, "no PIC build"};
  ModuleStore Rewritten;
  Error E = retroWriteProgram(PW.PicW->Store, PW.PicW->ExeName, Rewritten);
  if (E)
    return {false, 0.0, E.message()};
  // dlopened plugins are invisible to the rewriter; ship them as-is (they
  // run uninstrumented, exactly RetroWrite's coverage gap).
  for (const std::string &Name : PW.PicW->DlopenOnly)
    if (const Module *M = PW.PicW->Store.find(Name))
      Rewritten.add(*M);
  Process P(Rewritten);
  if (Error L = P.loadProgram(PW.PicW->ExeName))
    return {false, 0.0, L.message()};
  RunResult R = P.runNative(1ull << 31);
  return finish(R, P.output(), PW.PicChecksum, PW.PicNativeCycles);
}

namespace {

ConfigResult runJcfi(const PreparedWorkload &PW, bool Hybrid, bool Forward,
                     bool Backward, const StaticAnalyzerOptions &AOpts = {}) {
  JcfiDatabase Db;
  RuleStore Rules;
  JCFIOptions Opts;
  Opts.ForwardEdges = Forward;
  Opts.BackwardEdges = Backward;
  StaticAnalyzerStats SAStats;
  if (Hybrid) {
    StaticAnalyzer SA(AOpts);
    JCFITool StaticTool(Db, Opts);
    StaticTool.setStaticOutput(&Db);
    Error E = SA.analyzeProgram(PW.W.Store, PW.W.ExeName, StaticTool, Rules,
                                PW.W.DlopenOnly);
    (void)E;
    SAStats = SA.stats();
  }
  JCFITool Tool(Db, Opts);
  JanitizerRun R =
      runUnderJanitizer(PW.W.Store, PW.W.ExeName, Tool, Rules, 1ull << 31);
  ConfigResult C = finish(R.Result, R.Output, PW.Checksum, PW.NativeCycles,
                          R.Violations.size());
  C.HasCoverage = true;
  C.Coverage = R.Coverage;
  C.HasDbi = true;
  C.Dbi = R.Dbi;
  if (Hybrid) {
    C.HasStatic = true;
    C.Static = std::move(SAStats);
  }
  return C;
}

} // namespace

ConfigResult janitizer::bench::runJcfiDyn(const PreparedWorkload &PW) {
  return runJcfi(PW, false, true, true);
}

ConfigResult janitizer::bench::runJcfiHybrid(const PreparedWorkload &PW,
                                             bool Forward, bool Backward,
                                             const StaticAnalyzerOptions &AOpts) {
  return runJcfi(PW, true, Forward, Backward, AOpts);
}

ConfigResult janitizer::bench::runBinCfiCfg(const PreparedWorkload &PW) {
  ModuleStore Rewritten;
  Error E = binCfiProgram(PW.W.Store, PW.W.ExeName, Rewritten);
  if (E)
    return {false, 0.0, E.message()};
  // Plugins are dlopened at run time; ship them unrewritten (BinCFI only
  // rewrites what it is given).
  for (const std::string &Name : PW.W.DlopenOnly)
    if (const Module *M = PW.W.Store.find(Name))
      Rewritten.add(*M);
  Process P(Rewritten);
  if (Error L = P.loadProgram(PW.W.ExeName))
    return {false, 0.0, L.message()};
  RunResult R = P.runNative(1ull << 31);
  return finish(R, P.output(), PW.Checksum, PW.NativeCycles);
}

ConfigResult janitizer::bench::runLockdownCfg(const PreparedWorkload &PW,
                                              bool Strong) {
  LockdownOptions Opts;
  Opts.StrongPolicy = Strong;
  LockdownRun R =
      runUnderLockdown(PW.W.Store, PW.W.ExeName, Opts, 1ull << 31);
  // Lockdown records policy violations and continues; a run only counts
  // as failed when it could not finish correctly (shadow-stack
  // inconsistency aborts it). False positives are a soundness issue, not
  // a performance one (Figure 12 reports them separately).
  return finish(R.Result, R.Output, PW.Checksum, PW.NativeCycles);
}

//===----------------------------------------------------------------------===//
// Table printing
//===----------------------------------------------------------------------===//

Table::Table(std::string Title, std::vector<std::string> Columns)
    : Title(std::move(Title)), Columns(std::move(Columns)) {}

void Table::addRow(const std::string &Name,
                   const std::vector<ConfigResult> &Cells) {
  Rows.push_back({Name, Cells});
}

void Table::print() const {
  std::printf("\n== %s ==\n", Title.c_str());
  std::printf("%-12s", "benchmark");
  for (const std::string &C : Columns)
    std::printf(" %14s", C.c_str());
  std::printf("\n");

  for (const Row &R : Rows) {
    std::printf("%-12s", R.Name.c_str());
    for (const ConfigResult &C : R.Cells) {
      if (C.Ok)
        std::printf(" %14.2f", C.Slowdown);
      else
        std::printf(" %14s", "x");
    }
    std::printf("\n");
  }

  // geomean per column over its own successful rows.
  std::printf("%-12s", "geomean");
  for (size_t CI = 0; CI < Columns.size(); ++CI) {
    double LogSum = 0;
    unsigned N = 0;
    for (const Row &R : Rows)
      if (CI < R.Cells.size() && R.Cells[CI].Ok) {
        LogSum += std::log(R.Cells[CI].Slowdown);
        ++N;
      }
    if (N)
      std::printf(" %14.2f", std::exp(LogSum / N));
    else
      std::printf(" %14s", "x");
  }
  std::printf("\n");

  // geomean-x: only rows where every column succeeded.
  std::printf("%-12s", "geomean-x");
  for (size_t CI = 0; CI < Columns.size(); ++CI) {
    double LogSum = 0;
    unsigned N = 0;
    for (const Row &R : Rows) {
      bool AllOk = true;
      for (const ConfigResult &C : R.Cells)
        AllOk = AllOk && C.Ok;
      if (AllOk && CI < R.Cells.size()) {
        LogSum += std::log(R.Cells[CI].Slowdown);
        ++N;
      }
    }
    if (N)
      std::printf(" %14.2f", std::exp(LogSum / N));
    else
      std::printf(" %14s", "x");
  }
  std::printf("\n");

  // Failure notes.
  for (const Row &R : Rows)
    for (size_t CI = 0; CI < R.Cells.size(); ++CI)
      if (!R.Cells[CI].Ok)
        std::printf("note: %s/%s: %s\n", R.Name.c_str(),
                    Columns[CI].c_str(), R.Cells[CI].Note.c_str());
}
