//===- bench/Harness.cpp ---------------------------------------------------==//

#include "Harness.h"

#include "baselines/BinCFI.h"
#include "baselines/Lockdown.h"
#include "baselines/RetroWrite.h"
#include "baselines/ValgrindASan.h"
#include "core/StaticAnalyzer.h"
#include "dbi/NullClient.h"
#include "jasm/Assembler.h"
#include "rewrite/AotRewriter.h"
#include "runtime/Jlibc.h"
#include "workloads/JulietGen.h"
#include "jasan/JASan.h"
#include "jcfi/JCFI.h"
#include "support/Format.h"

#include <cmath>
#include <cstdio>

using namespace janitizer;
using namespace janitizer::bench;

PreparedWorkload janitizer::bench::prepare(const BenchProfile &P,
                                           unsigned WorkScale, bool NeedPic) {
  PreparedWorkload PW;
  WorkloadOptions Opts;
  Opts.WorkScale = WorkScale;
  PW.W = cantFail(buildWorkload(P, Opts), "workload generation");
  RunResult R;
  PW.Checksum = nativeReference(PW.W, &R);
  PW.NativeCycles = R.Cycles;
  if (NeedPic) {
    WorkloadOptions PicOpts = Opts;
    PicOpts.PicExe = true;
    PW.PicW = cantFail(buildWorkload(P, PicOpts), "PIC workload generation");
    RunResult PR;
    PW.PicChecksum = nativeReference(*PW.PicW, &PR);
    PW.PicNativeCycles = PR.Cycles;
  }
  return PW;
}

namespace {

ConfigResult finish(const RunResult &R, const std::string &Output,
                    const std::string &Checksum, uint64_t NativeCycles,
                    size_t NumViolations = 0) {
  ConfigResult C;
  if (R.St != RunResult::Status::Exited) {
    C.Note = R.FaultMsg.empty() ? "did not finish" : R.FaultMsg;
    return C;
  }
  if (Output != Checksum) {
    C.Note = "wrong result";
    return C;
  }
  if (NumViolations) {
    C.Note = formatString("%zu false positives", NumViolations);
    return C;
  }
  C.Ok = true;
  C.Slowdown = NativeCycles ? static_cast<double>(R.Cycles) / NativeCycles
                            : 0.0;
  return C;
}

RuleStore jasanRules(const PreparedWorkload &PW,
                     const StaticAnalyzerOptions &AOpts,
                     StaticAnalyzerStats *StatsOut) {
  RuleStore Rules;
  StaticAnalyzer SA(AOpts);
  JASanTool StaticTool;
  Error E = SA.analyzeProgram(PW.W.Store, PW.W.ExeName, StaticTool, Rules,
                              PW.W.DlopenOnly);
  (void)E;
  if (StatsOut)
    *StatsOut = SA.stats();
  return Rules;
}

} // namespace

ConfigResult janitizer::bench::runNullClient(const PreparedWorkload &PW) {
  Process P(PW.W.Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  if (Error Err = P.loadProgram(PW.W.ExeName))
    return {false, 0.0, Err.message()};
  RunResult R = E.run(1ull << 31);
  ConfigResult C = finish(R, P.output(), PW.Checksum, PW.NativeCycles);
  C.HasDbi = true;
  C.Dbi = E.stats();
  return C;
}

ConfigResult janitizer::bench::runJasanDyn(const PreparedWorkload &PW) {
  RuleStore Empty;
  JASanTool Tool;
  JanitizerRun R =
      runUnderJanitizer(PW.W.Store, PW.W.ExeName, Tool, Empty, 1ull << 31);
  ConfigResult C = finish(R.Result, R.Output, PW.Checksum, PW.NativeCycles,
                          R.Violations.size());
  C.HasCoverage = true;
  C.Coverage = R.Coverage;
  C.HasDbi = true;
  C.Dbi = R.Dbi;
  return C;
}

ConfigResult janitizer::bench::runJasanHybrid(
    const PreparedWorkload &PW, bool UseLiveness,
    const StaticAnalyzerOptions &AOpts) {
  StaticAnalyzerStats SAStats;
  RuleStore Rules = jasanRules(PW, AOpts, &SAStats);
  JASanOptions Opts;
  Opts.UseLiveness = UseLiveness;
  JASanTool Tool(Opts);
  JanitizerRun R =
      runUnderJanitizer(PW.W.Store, PW.W.ExeName, Tool, Rules, 1ull << 31);
  ConfigResult C = finish(R.Result, R.Output, PW.Checksum, PW.NativeCycles,
                          R.Violations.size());
  C.HasCoverage = true;
  C.Coverage = R.Coverage;
  C.HasDbi = true;
  C.Dbi = R.Dbi;
  C.HasStatic = true;
  C.Static = std::move(SAStats);
  return C;
}

ConfigResult janitizer::bench::runValgrindCfg(const PreparedWorkload &PW) {
  BaselineRun R = runUnderValgrind(PW.W.Store, PW.W.ExeName, 1ull << 31);
  ConfigResult C = finish(R.Result, R.Output, PW.Checksum, PW.NativeCycles,
                          R.Violations.size());
  C.HasDbi = true;
  C.Dbi = R.Dbi;
  return C;
}

ConfigResult janitizer::bench::runRetroWriteCfg(const PreparedWorkload &PW) {
  if (!PW.PicW)
    return {false, 0.0, "no PIC build"};
  ModuleStore Rewritten;
  Error E = retroWriteProgram(PW.PicW->Store, PW.PicW->ExeName, Rewritten);
  if (E)
    return {false, 0.0, E.message()};
  // dlopened plugins are invisible to the rewriter; ship them as-is (they
  // run uninstrumented, exactly RetroWrite's coverage gap).
  for (const std::string &Name : PW.PicW->DlopenOnly)
    if (const Module *M = PW.PicW->Store.find(Name))
      Rewritten.add(*M);
  Process P(Rewritten);
  if (Error L = P.loadProgram(PW.PicW->ExeName))
    return {false, 0.0, L.message()};
  RunResult R = P.runNative(1ull << 31);
  return finish(R, P.output(), PW.PicChecksum, PW.PicNativeCycles);
}

namespace {

ConfigResult runJcfi(const PreparedWorkload &PW, bool Hybrid, bool Forward,
                     bool Backward, const StaticAnalyzerOptions &AOpts = {}) {
  JcfiDatabase Db;
  RuleStore Rules;
  JCFIOptions Opts;
  Opts.ForwardEdges = Forward;
  Opts.BackwardEdges = Backward;
  StaticAnalyzerStats SAStats;
  if (Hybrid) {
    StaticAnalyzer SA(AOpts);
    JCFITool StaticTool(Db, Opts);
    StaticTool.setStaticOutput(&Db);
    Error E = SA.analyzeProgram(PW.W.Store, PW.W.ExeName, StaticTool, Rules,
                                PW.W.DlopenOnly);
    (void)E;
    SAStats = SA.stats();
  }
  JCFITool Tool(Db, Opts);
  JanitizerRun R =
      runUnderJanitizer(PW.W.Store, PW.W.ExeName, Tool, Rules, 1ull << 31);
  ConfigResult C = finish(R.Result, R.Output, PW.Checksum, PW.NativeCycles,
                          R.Violations.size());
  C.HasCoverage = true;
  C.Coverage = R.Coverage;
  C.HasDbi = true;
  C.Dbi = R.Dbi;
  if (Hybrid) {
    C.HasStatic = true;
    C.Static = std::move(SAStats);
  }
  return C;
}

} // namespace

ConfigResult janitizer::bench::runJcfiDyn(const PreparedWorkload &PW) {
  return runJcfi(PW, false, true, true);
}

ConfigResult janitizer::bench::runJcfiHybrid(const PreparedWorkload &PW,
                                             bool Forward, bool Backward,
                                             const StaticAnalyzerOptions &AOpts) {
  return runJcfi(PW, true, Forward, Backward, AOpts);
}

ConfigResult janitizer::bench::runBinCfiCfg(const PreparedWorkload &PW) {
  ModuleStore Rewritten;
  Error E = binCfiProgram(PW.W.Store, PW.W.ExeName, Rewritten);
  if (E)
    return {false, 0.0, E.message()};
  // Plugins are dlopened at run time; ship them unrewritten (BinCFI only
  // rewrites what it is given).
  for (const std::string &Name : PW.W.DlopenOnly)
    if (const Module *M = PW.W.Store.find(Name))
      Rewritten.add(*M);
  Process P(Rewritten);
  if (Error L = P.loadProgram(PW.W.ExeName))
    return {false, 0.0, L.message()};
  RunResult R = P.runNative(1ull << 31);
  return finish(R, P.output(), PW.Checksum, PW.NativeCycles);
}

ConfigResult janitizer::bench::runLockdownCfg(const PreparedWorkload &PW,
                                              bool Strong) {
  LockdownOptions Opts;
  Opts.StrongPolicy = Strong;
  LockdownRun R =
      runUnderLockdown(PW.W.Store, PW.W.ExeName, Opts, 1ull << 31);
  // Lockdown records policy violations and continues; a run only counts
  // as failed when it could not finish correctly (shadow-stack
  // inconsistency aborts it). False positives are a soundness issue, not
  // a performance one (Figure 12 reports them separately).
  return finish(R.Result, R.Output, PW.Checksum, PW.NativeCycles);
}

ConfigResult janitizer::bench::runJanitizerAotCfg(
    const PreparedWorkload &PW, bool UseLiveness,
    const StaticAnalyzerOptions &AOpts) {
  StaticAnalyzerStats SAStats;
  RuleStore Rules = jasanRules(PW, AOpts, &SAStats);
  AotRewriteOptions ROpts;
  ROpts.UseLiveness = UseLiveness;
  ModuleStore Rewritten;
  AotManifest Manifest;
  if (Error E = aotRewriteProgram(PW.W.Store, PW.W.ExeName, Rules, "jasan",
                                  Rewritten, Manifest, ROpts))
    return {false, 0.0, E.message()};
  // dlopened plugins sit outside the static dependency walk, so they have
  // no rules; rewrite them all-stubbed and let the DBI fallback discover
  // their code at run time, exactly like the hybrid tier.
  for (const std::string &Name : PW.W.DlopenOnly)
    if (const Module *M = PW.W.Store.find(Name)) {
      ErrorOr<AotModuleResult> R = aotRewriteModule(*M, nullptr, "jasan",
                                                    ROpts);
      if (!R)
        return {false, 0.0, R.takeError().message()};
      Manifest.Modules[M->Name] = std::move(R->Manifest);
      Rewritten.add(std::move(R->NewMod));
    }
  JASanOptions JOpts;
  JOpts.UseLiveness = UseLiveness;
  JASanTool Tool(JOpts);
  AotRun R = runUnderJanitizerAot(Rewritten, PW.W.ExeName, Tool, Rules,
                                  Manifest);
  ConfigResult C = finish(R.Result, R.Output, PW.Checksum, PW.NativeCycles,
                          R.Violations.size());
  C.HasCoverage = true;
  C.Coverage = R.Coverage;
  C.HasDbi = true;
  C.Dbi = R.Dbi;
  C.HasStatic = true;
  C.Static = std::move(SAStats);
  return C;
}

//===----------------------------------------------------------------------===//
// Rewriter torture (§6.2.1)
//===----------------------------------------------------------------------===//

const char *janitizer::bench::rewriteVerdictName(RewriteVerdict V) {
  switch (V) {
  case RewriteVerdict::Correct: return "correct";
  case RewriteVerdict::Refused: return "refused";
  case RewriteVerdict::Wrong:   return "wrong";
  }
  return "?";
}

namespace {

TortureScore scoreTortureRun(const RunResult &R, const std::string &Out,
                             const std::string &Ref) {
  TortureScore S;
  if (R.St != RunResult::Status::Exited) {
    S.Verdict = RewriteVerdict::Wrong;
    S.Note = R.FaultMsg.empty() ? "did not finish" : R.FaultMsg;
  } else if (Out != Ref) {
    S.Verdict = RewriteVerdict::Wrong;
    S.Note = "checksum '" + Out + "' != native '" + Ref + "'";
  } else {
    S.Verdict = RewriteVerdict::Correct;
  }
  return S;
}

/// Runs a baseline-rewritten store natively and scores it.
TortureScore scoreTortureStore(const ModuleStore &Store,
                               const std::string &Exe,
                               const std::string &Ref) {
  Process P(Store);
  if (Error L = P.loadProgram(Exe))
    return {RewriteVerdict::Wrong, L.message()};
  RunResult R = P.runNative(1ull << 31);
  return scoreTortureRun(R, P.output(), Ref);
}

} // namespace

std::vector<TortureRow> janitizer::bench::runRewriterTorture() {
  std::vector<TortureRow> Rows;
  for (TortureKind K : {TortureKind::OverlapEntry, TortureKind::DataInText,
                        TortureKind::ComputedGoto}) {
    TortureRow Row;
    Row.Kind = K;
    ErrorOr<WorkloadBuild> WE = buildTortureWorkload(K);
    if (!WE) {
      TortureScore Gen{RewriteVerdict::Wrong,
                       "generator: " + WE.takeError().message()};
      Row.Aot = Row.Retro = Row.BinCfi = Gen;
      Rows.push_back(std::move(Row));
      continue;
    }
    WorkloadBuild W = WE.takeValue();
    Row.Ref = nativeReference(W);

    {
      ModuleStore Out;
      if (Error E = retroWriteProgram(W.Store, W.ExeName, Out))
        Row.Retro = {RewriteVerdict::Refused, E.message()};
      else
        Row.Retro = scoreTortureStore(Out, W.ExeName, Row.Ref);
    }
    {
      ModuleStore Out;
      if (Error E = binCfiProgram(W.Store, W.ExeName, Out))
        Row.BinCfi = {RewriteVerdict::Refused, E.message()};
      else
        Row.BinCfi = scoreTortureStore(Out, W.ExeName, Row.Ref);
    }
    {
      RuleStore Rules;
      StaticAnalyzer SA;
      JASanTool StaticTool;
      Error AE = SA.analyzeProgram(W.Store, W.ExeName, StaticTool, Rules, {});
      (void)AE; // partial rules degrade to trap stubs, never refuse
      ModuleStore Out;
      AotManifest Manifest;
      if (Error E = aotRewriteProgram(W.Store, W.ExeName, Rules, "jasan", Out,
                                      Manifest)) {
        Row.Aot = {RewriteVerdict::Refused, E.message()};
      } else {
        JASanTool Tool;
        AotRun R = runUnderJanitizerAot(Out, W.ExeName, Tool, Rules, Manifest);
        Row.Aot = scoreTortureRun(R.Result, R.Output, Row.Ref);
        if (Row.Aot.Verdict == RewriteVerdict::Correct && !R.Violations.empty())
          Row.Aot = {RewriteVerdict::Wrong,
                     formatString("%zu false positives", R.Violations.size())};
      }
    }
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

AotDifferential janitizer::bench::runAotDifferential(unsigned CasesPerFamily) {
  AotDifferential D;
  ErrorOr<Module> Libc = buildJlibc();
  if (!Libc) {
    D.Note = Libc.takeError().message();
    return D;
  }

  // One (good, bad) pair per requested family slot, spread across the
  // suite's four families.
  std::vector<JulietCase> Suite = julietCwe122Suite();
  std::map<JulietCase::Family, unsigned> Taken;
  std::vector<const JulietCase *> Picked;
  for (const JulietCase &C : Suite)
    if (Taken[C.Kind]++ < CasesPerFamily)
      Picked.push_back(&C);

  for (const JulietCase *C : Picked) {
    for (const std::string *Src : {&C->GoodSource, &C->BadSource}) {
      bool Bad = Src == &C->BadSource;
      auto Tag = [&](const char *What) {
        return formatString("%s/%s: %s", C->Name.c_str(),
                            Bad ? "bad" : "good", What);
      };
      ModuleStore Store;
      Store.add(*Libc);
      ErrorOr<Module> M = assembleModule(*Src);
      if (!M) {
        D.Note = Tag(M.message().c_str());
        return D;
      }
      Store.add(M.takeValue());

      RuleStore Rules;
      StaticAnalyzer SA;
      JASanTool StaticTool;
      Error AE = SA.analyzeProgram(Store, "prog", StaticTool, Rules);
      (void)AE;

      JASanTool HybridTool;
      JanitizerRun H =
          runUnderJanitizer(Store, "prog", HybridTool, Rules, 1 << 24);

      ModuleStore Rewritten;
      AotManifest Manifest;
      if (Error E = aotRewriteProgram(Store, "prog", Rules, "jasan",
                                      Rewritten, Manifest)) {
        D.Note = Tag(E.message().c_str());
        return D;
      }
      JASanTool AotTool;
      AotRun A =
          runUnderJanitizerAot(Rewritten, "prog", AotTool, Rules, Manifest);

      if (A.Output != H.Output) {
        D.Note = Tag(formatString("output '%s' != hybrid '%s'",
                                  A.Output.c_str(), H.Output.c_str())
                         .c_str());
        return D;
      }
      if (A.Violations.size() != H.Violations.size()) {
        D.Note = Tag(formatString("%zu violations != hybrid %zu",
                                  A.Violations.size(), H.Violations.size())
                         .c_str());
        return D;
      }
      for (size_t I = 0; I < A.Violations.size(); ++I) {
        const Violation &AV = A.Violations[I];
        const Violation &HV = H.Violations[I];
        if (AV.Code != HV.Code || AV.PC != HV.PC || AV.Detail != HV.Detail ||
            AV.What != HV.What) {
          D.Note = Tag(formatString("violation %zu differs: "
                                    "(%u, 0x%llx, 0x%llx, '%s') vs hybrid "
                                    "(%u, 0x%llx, 0x%llx, '%s')",
                                    I, AV.Code,
                                    static_cast<unsigned long long>(AV.PC),
                                    static_cast<unsigned long long>(AV.Detail),
                                    AV.What.c_str(), HV.Code,
                                    static_cast<unsigned long long>(HV.PC),
                                    static_cast<unsigned long long>(HV.Detail),
                                    HV.What.c_str())
                           .c_str());
          return D;
        }
      }
      if (A.Dbi.DispatchEntries != 0) {
        D.Note = Tag(formatString("%llu DBI dispatch entries (want 0)",
                                  static_cast<unsigned long long>(
                                      A.Dbi.DispatchEntries))
                         .c_str());
        return D;
      }
      ++D.CasesRun;
      D.Violations += A.Violations.size();
      D.AotDispatchEntries += A.Dbi.DispatchEntries;
      D.TierEnters += A.TierEnters;
      D.Intercepts += A.Intercepts;
      D.AotChecks += A.AotChecks;
      D.VacatedEnters += A.VacatedEnters;
    }
  }
  D.Ok = true;
  return D;
}

//===----------------------------------------------------------------------===//
// Table printing
//===----------------------------------------------------------------------===//

Table::Table(std::string Title, std::vector<std::string> Columns)
    : Title(std::move(Title)), Columns(std::move(Columns)) {}

void Table::addRow(const std::string &Name,
                   const std::vector<ConfigResult> &Cells) {
  Rows.push_back({Name, Cells});
}

void Table::print() const {
  std::printf("\n== %s ==\n", Title.c_str());
  std::printf("%-12s", "benchmark");
  for (const std::string &C : Columns)
    std::printf(" %14s", C.c_str());
  std::printf("\n");

  for (const Row &R : Rows) {
    std::printf("%-12s", R.Name.c_str());
    for (const ConfigResult &C : R.Cells) {
      if (C.Ok)
        std::printf(" %14.2f", C.Slowdown);
      else
        std::printf(" %14s", "x");
    }
    std::printf("\n");
  }

  // geomean per column over its own successful rows.
  std::printf("%-12s", "geomean");
  for (size_t CI = 0; CI < Columns.size(); ++CI) {
    double LogSum = 0;
    unsigned N = 0;
    for (const Row &R : Rows)
      if (CI < R.Cells.size() && R.Cells[CI].Ok) {
        LogSum += std::log(R.Cells[CI].Slowdown);
        ++N;
      }
    if (N)
      std::printf(" %14.2f", std::exp(LogSum / N));
    else
      std::printf(" %14s", "x");
  }
  std::printf("\n");

  // geomean-x: only rows where every column succeeded.
  std::printf("%-12s", "geomean-x");
  for (size_t CI = 0; CI < Columns.size(); ++CI) {
    double LogSum = 0;
    unsigned N = 0;
    for (const Row &R : Rows) {
      bool AllOk = true;
      for (const ConfigResult &C : R.Cells)
        AllOk = AllOk && C.Ok;
      if (AllOk && CI < R.Cells.size()) {
        LogSum += std::log(R.Cells[CI].Slowdown);
        ++N;
      }
    }
    if (N)
      std::printf(" %14.2f", std::exp(LogSum / N));
    else
      std::printf(" %14s", "x");
  }
  std::printf("\n");

  // Failure notes.
  for (const Row &R : Rows)
    for (size_t CI = 0; CI < R.Cells.size(); ++CI)
      if (!R.Cells[CI].Ok)
        std::printf("note: %s/%s: %s\n", R.Name.c_str(),
                    Columns[CI].c_str(), R.Cells[CI].Note.c_str());
}
