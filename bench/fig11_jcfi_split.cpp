//===- bench/fig11_jcfi_split.cpp - Paper Figure 11 ------------------------===//
///
/// Regenerates Figure 11: the forward/backward split of JCFI-hybrid's
/// overhead — the null client alone, plus forward-edge checks, plus the
/// shadow stack (the full configuration). The forward-only column is the
/// BinCFI-comparable configuration §6.2.1 uses for its fair comparison.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>

using namespace janitizer;
using namespace janitizer::bench;

int main(int argc, char **argv) {
  unsigned Scale = argc > 1 ? static_cast<unsigned>(atoi(argv[1])) : 8;
  Table T("Figure 11: JCFI-hybrid overhead split (slowdown vs native)",
          {"Null client", "+Forward CFI", "+Backward CFI"});
  for (const BenchProfile &P : specProfiles()) {
    std::fprintf(stderr, "[fig11] %s...\n", P.Name.c_str());
    PreparedWorkload PW = prepare(P, Scale);
    T.addRow(P.Name, {
                         runNullClient(PW),
                         runJcfiHybrid(PW, /*Forward=*/true,
                                       /*Backward=*/false),
                         runJcfiHybrid(PW, /*Forward=*/true,
                                       /*Backward=*/true),
                     });
  }
  T.print();
  return 0;
}
