//===- bench/fig13_static_air.cpp - Paper Figure 13 ------------------------===//
///
/// Regenerates Figure 13: static AIR (computed offline over every indirect
/// CTI site the analysis can see) for JCFI-hybrid vs BinCFI. JCFI wins on
/// both edges: forward targets are function entries rather than any
/// scanned constant at an instruction boundary, and returns have exactly
/// one valid target (shadow stack) rather than every call-preceded
/// instruction.
///
//===----------------------------------------------------------------------===//

#include "baselines/BinCFI.h"
#include "jcfi/Air.h"
#include "workloads/WorkloadGen.h"

#include <cstdio>

using namespace janitizer;

int main() {
  std::printf("\n== Figure 13: static AIR (%% of indirect targets removed; "
              "higher is better) ==\n");
  std::printf("%-12s %12s %12s\n", "benchmark", "JCFI", "BinCFI");
  double SumJ = 0, SumB = 0;
  unsigned N = 0;
  for (const BenchProfile &P : specProfiles()) {
    std::fprintf(stderr, "[fig13] %s...\n", P.Name.c_str());
    WorkloadOptions Opts;
    Opts.WorkScale = 1; // static analysis only; run length is irrelevant
    WorkloadBuild W = cantFail(buildWorkload(P, Opts));
    std::vector<const Module *> Mods;
    Mods.push_back(W.Store.find(P.Name));
    Mods.push_back(W.Store.find("libjz.so"));
    if (P.usesFortranLib())
      Mods.push_back(W.Store.find("libjfortran.so"));
    AirResult J = jcfiStaticAir(Mods);
    AirResult B = binCfiStaticAir(Mods);
    std::printf("%-12s %11.3f%% %11.3f%%\n", P.Name.c_str(), J.Air * 100.0,
                B.Air * 100.0);
    SumJ += J.Air * 100.0;
    SumB += B.Air * 100.0;
    ++N;
  }
  std::printf("%-12s %11.3f%% %11.3f%%\n", "mean", SumJ / N, SumB / N);
  return 0;
}
