//===- bench/ablation_cleancall.cpp - Inline vs clean-call ablation --------===//
///
/// Ablation for the §4.1.1 design choice: JASan inlines its
/// instrumentation with hand-written meta-instructions instead of
/// DynamoRIO clean-calls. Here the same per-access counting tool is
/// implemented both ways; guest cycles show the clean-call context-switch
/// cost dominating.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"
#include "dbi/Dbi.h"

#include <benchmark/benchmark.h>

using namespace janitizer;
using namespace janitizer::bench;

namespace {

constexpr uint64_t CounterAddr = 0x300000;

/// Counts memory accesses with inlined meta-instructions (push/pushf,
/// load-add-store on a counter cell, popf/pop).
class InlineCounter : public DbiTool {
public:
  std::string name() const override { return "inline-counter"; }
  void instrumentBlock(DbiEngine &E, CacheBlock &Block, BlockBuilder &B,
                       const std::vector<DecodedInstrRT> &Instrs) override {
    for (const DecodedInstrRT &DI : Instrs) {
      if (isDataMemAccess(DI.I.Op)) {
        auto Meta = [&](Opcode Op, Reg R, int64_t Imm, bool Mem) {
          Instruction I;
          I.Op = Op;
          I.Rd = R;
          I.Imm = Imm;
          if (Mem)
            I.Mem.Disp = static_cast<int32_t>(CounterAddr);
          B.meta(I);
        };
        Meta(Opcode::PUSH, Reg::R1, 0, false);
        Meta(Opcode::PUSHF, Reg::R0, 0, false);
        Meta(Opcode::LD8, Reg::R1, 0, true);
        Meta(Opcode::ADDI, Reg::R1, 1, false);
        Meta(Opcode::ST8, Reg::R1, 0, true);
        Meta(Opcode::POPF, Reg::R0, 0, false);
        Meta(Opcode::POP, Reg::R1, 0, false);
      }
      B.app(DI.I, DI.Addr);
    }
  }
};

/// The same tool as a clean-call per access.
class CleanCallCounter : public DbiTool {
public:
  uint64_t Count = 0;
  std::string name() const override { return "cleancall-counter"; }
  void instrumentBlock(DbiEngine &E, CacheBlock &Block, BlockBuilder &B,
                       const std::vector<DecodedInstrRT> &Instrs) override {
    for (const DecodedInstrRT &DI : Instrs) {
      if (isDataMemAccess(DI.I.Op))
        B.hook(1, DI.Addr); // clean-call cost model
      B.app(DI.I, DI.Addr);
    }
  }
  HookAction onHook(DbiEngine &E, const CacheOp &Op) override {
    ++Count;
    return HookAction::Continue;
  }
};

const PreparedWorkload &workload() {
  static PreparedWorkload PW = prepare(*findProfile("milc"), 2);
  return PW;
}

template <typename ToolT> void runTool(benchmark::State &State) {
  const PreparedWorkload &PW = workload();
  uint64_t Cycles = 0;
  for (auto _ : State) {
    Process P(PW.W.Store);
    ToolT Tool;
    DbiEngine E(P, Tool);
    if (P.loadProgram(PW.W.ExeName))
      State.SkipWithError("load failed");
    RunResult R = E.run(1u << 30);
    Cycles = R.Cycles;
    benchmark::DoNotOptimize(Cycles);
  }
  State.counters["guest_cycles"] = static_cast<double>(Cycles);
  State.counters["slowdown"] =
      static_cast<double>(Cycles) / workload().NativeCycles;
}

void BM_InlineInstrumentation(benchmark::State &State) {
  runTool<InlineCounter>(State);
}
void BM_CleanCallInstrumentation(benchmark::State &State) {
  runTool<CleanCallCounter>(State);
}

BENCHMARK(BM_InlineInstrumentation)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CleanCallInstrumentation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
