//===- bench/fig14_dynamic_coverage.cpp - Paper Figure 14 ------------------===//
///
/// Regenerates Figure 14: the fraction of executed basic blocks that only
/// appear dynamically — i.e. were missed by (or invisible to) the static
/// analyzer and fell back to Janitizer's per-block dynamic analysis.
/// Dynamic code here comes from dlopened plugins no ldd walk can see,
/// JIT-generated kernels, loader startup code, and blocks reachable only
/// through statically unresolved indirect control flow (the Fortran
/// computed-goto cases).
///
//===----------------------------------------------------------------------===//

#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"
#include "workloads/WorkloadGen.h"

#include <cstdio>

using namespace janitizer;

int main(int argc, char **argv) {
  unsigned Scale = argc > 1 ? static_cast<unsigned>(atoi(argv[1])) : 2;
  std::printf("\n== Figure 14: basic blocks identified and analyzed only "
              "dynamically ==\n");
  std::printf("%-12s %10s %10s %10s\n", "benchmark", "static", "dynamic",
              "dyn %");
  double Sum = 0;
  unsigned N = 0;
  for (const BenchProfile &P : specProfiles()) {
    std::fprintf(stderr, "[fig14] %s...\n", P.Name.c_str());
    WorkloadOptions Opts;
    Opts.WorkScale = Scale;
    WorkloadBuild W = cantFail(buildWorkload(P, Opts));
    RuleStore Rules;
    StaticAnalyzer SA;
    JASanTool StaticTool;
    Error E =
        SA.analyzeProgram(W.Store, W.ExeName, StaticTool, Rules, W.DlopenOnly);
    (void)E;
    JASanTool Tool;
    JanitizerRun R =
        runUnderJanitizer(W.Store, W.ExeName, Tool, Rules, 1u << 30);
    if (R.Result.St != RunResult::Status::Exited) {
      std::printf("%-12s %10s %10s %10s\n", P.Name.c_str(), "x", "x", "x");
      continue;
    }
    double Pct = R.Coverage.dynamicFraction() * 100.0;
    std::printf("%-12s %10llu %10llu %9.2f%%\n", P.Name.c_str(),
                static_cast<unsigned long long>(R.Coverage.StaticBlocks),
                static_cast<unsigned long long>(R.Coverage.DynamicBlocks),
                Pct);
    Sum += Pct;
    ++N;
  }
  std::printf("%-12s %10s %10s %9.2f%%\n", "mean", "", "", Sum / N);
  return 0;
}
