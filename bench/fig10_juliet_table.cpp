//===- bench/fig10_juliet_table.cpp - Paper Figure 10 (table) --------------===//
///
/// Regenerates the Figure 10 table: security properties of Valgrind and
/// JASan over the 624 Juliet-style CWE-122 cases. For each case the good
/// (well-behaving) and bad (violating) variants run under both tools:
///
///   good variant:  FP (violations reported) / TN (silent)
///   bad variant:   TP (>= expected distinct violations) / FN (fewer)
///
//===----------------------------------------------------------------------===//

#include "baselines/ValgrindASan.h"
#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"
#include "workloads/JulietGen.h"

#include <cstdio>
#include <set>

using namespace janitizer;

namespace {

struct Tally {
  unsigned FP = 0, TN = 0, TP = 0, FN = 0;
};

size_t distinctViolations(const std::vector<Violation> &Vs) {
  std::set<std::pair<uint64_t, std::string>> D;
  for (const Violation &V : Vs)
    D.insert({V.PC, V.What});
  return D.size();
}

ModuleStore makeStore(const Module &Libc, const std::string &Src) {
  ModuleStore Store;
  Store.add(Libc);
  auto M = assembleModule(Src);
  if (!M)
    JZ_UNREACHABLE(M.message().c_str());
  Store.add(*M);
  return Store;
}

size_t runJasanCase(const Module &Libc, const std::string &Src) {
  ModuleStore Store = makeStore(Libc, Src);
  RuleStore Rules;
  StaticAnalyzer SA;
  JASanTool StaticTool;
  Error E = SA.analyzeProgram(Store, "prog", StaticTool, Rules);
  (void)E;
  JASanTool Tool;
  JanitizerRun R = runUnderJanitizer(Store, "prog", Tool, Rules, 1 << 24);
  return distinctViolations(R.Violations);
}

size_t runValgrindCase(const Module &Libc, const std::string &Src) {
  ModuleStore Store = makeStore(Libc, Src);
  BaselineRun R = runUnderValgrind(Store, "prog", 1 << 24);
  return distinctViolations(R.Violations);
}

} // namespace

int main() {
  Module Libc = cantFail(buildJlibc());
  std::vector<JulietCase> Suite = julietCwe122Suite();
  Tally Valgrind, Jasan;

  unsigned Done = 0;
  for (const JulietCase &C : Suite) {
    // Good variants.
    (runValgrindCase(Libc, C.GoodSource) ? Valgrind.FP : Valgrind.TN) += 1;
    (runJasanCase(Libc, C.GoodSource) ? Jasan.FP : Jasan.TN) += 1;
    // Bad variants: TP when at least the expected number of distinct
    // violations is reported, FN when fewer than actual (§6.1.2).
    (runValgrindCase(Libc, C.BadSource) >= C.ExpectedViolations
         ? Valgrind.TP
         : Valgrind.FN) += 1;
    (runJasanCase(Libc, C.BadSource) >= C.ExpectedViolations ? Jasan.TP
                                                             : Jasan.FN) += 1;
    if (++Done % 100 == 0)
      std::fprintf(stderr, "[fig10] %u/%zu cases...\n", Done, Suite.size());
  }

  std::printf("\n== Figure 10: security properties across %zu Juliet NIST "
              "CWE-122 test cases ==\n",
              Suite.size());
  std::printf("%-28s %12s %12s\n", "", "Valgrind", "JASan");
  std::printf("good  %-22s %12u %12u\n", "False Positives", Valgrind.FP,
              Jasan.FP);
  std::printf("good  %-22s %12u %12u\n", "True Negatives", Valgrind.TN,
              Jasan.TN);
  std::printf("bad   %-22s %12u %12u\n", "True Positives", Valgrind.TP,
              Jasan.TP);
  std::printf("bad   %-22s %12u %12u\n", "False Negatives", Valgrind.FN,
              Jasan.FN);
  return 0;
}
