//===- bench/ablation_liveness.cpp - Liveness save/restore ablation --------===//
///
/// Ablation for the §3.3.2/§6.1.1 design choice: precomputed register and
/// arithmetic-flag liveness lets the inline instrumentation skip dead
/// saves/restores. Measured as guest cycles on a fixed memory-heavy
/// workload across three configurations: hybrid-full (liveness), hybrid-
/// base (conservative), and dyn-only (conservative + no eliding).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"
#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"

#include <benchmark/benchmark.h>

using namespace janitizer;
using namespace janitizer::bench;

namespace {

const PreparedWorkload &workload() {
  static PreparedWorkload PW = prepare(*findProfile("hmmer"), 2);
  return PW;
}

void runConfig(benchmark::State &State, bool Hybrid, bool UseLiveness) {
  const PreparedWorkload &PW = workload();
  RuleStore Rules;
  if (Hybrid) {
    StaticAnalyzer SA;
    JASanTool StaticTool;
    Error E = SA.analyzeProgram(PW.W.Store, PW.W.ExeName, StaticTool, Rules,
                                PW.W.DlopenOnly);
    (void)E;
  }
  uint64_t Cycles = 0;
  for (auto _ : State) {
    JASanOptions Opts;
    Opts.UseLiveness = UseLiveness;
    JASanTool Tool(Opts);
    JanitizerRun R =
        runUnderJanitizer(PW.W.Store, PW.W.ExeName, Tool, Rules, 1u << 30);
    Cycles = R.Result.Cycles;
    benchmark::DoNotOptimize(Cycles);
  }
  State.counters["guest_cycles"] = static_cast<double>(Cycles);
  State.counters["slowdown"] =
      static_cast<double>(Cycles) / workload().NativeCycles;
}

void BM_JasanHybridFull(benchmark::State &State) {
  runConfig(State, true, true);
}
void BM_JasanHybridBase(benchmark::State &State) {
  runConfig(State, true, false);
}
void BM_JasanDynOnly(benchmark::State &State) {
  runConfig(State, false, false);
}

BENCHMARK(BM_JasanHybridFull)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JasanHybridBase)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JasanDynOnly)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
