//===- bench/microbench_dispatch.cpp - Rule-dispatch micro-benchmark -------===//
///
/// Measures the host-side cost of the dynamic modifier's hot path — block
/// classification (staticallySeen) and per-instruction rule lookup
/// (rulesForInstr) — as the number of loaded modules grows. With the
/// module address-interval index the cost is one binary search over the
/// module ranges plus one hash probe, i.e. O(log M) with a tiny constant,
/// where the previous implementation scanned every module's table (O(M)).
///
///   microbench_dispatch [lookups-per-config]
///
/// Prints ns/lookup for 1..256 loaded modules; the column should stay
/// essentially flat. Exits non-zero if lookups that must hit (or miss)
/// misbehave, so the binary doubles as a smoke test.
///
//===----------------------------------------------------------------------===//

#include "core/JanitizerDynamic.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>

using namespace janitizer;

namespace {

/// The benchmark measures dispatch only; instrumentation is a pass-through.
class StubTool : public SecurityTool {
public:
  std::string name() const override { return "stub"; }
  void runStaticPass(const StaticContext &, RuleFile &) override {}
  void instrumentWithRules(
      JanitizerDynamic &, CacheBlock &, BlockBuilder &B,
      const std::vector<DecodedInstrRT> &Instrs,
      const std::unordered_map<uint64_t, std::vector<RewriteRule>> &) override {
    for (const DecodedInstrRT &DI : Instrs)
      B.app(DI.I, DI.Addr);
  }
  void instrumentFallback(JanitizerDynamic &, CacheBlock &, BlockBuilder &B,
                          const std::vector<DecodedInstrRT> &Instrs) override {
    for (const DecodedInstrRT &DI : Instrs)
      B.app(DI.I, DI.Addr);
  }
};

/// Total rules are held constant and split across the modules, so the
/// hash working set is identical in every configuration and the column
/// isolates the module-count dependence of the index itself.
constexpr unsigned TotalBlocks = 16384;
constexpr uint64_t ModuleSpan = 0x100000;
constexpr uint64_t FirstBase = 0x40000000;

} // namespace

int main(int argc, char **argv) {
  uint64_t Lookups = 2'000'000;
  if (argc > 1) {
    char *End = nullptr;
    Lookups = strtoull(argv[1], &End, 10);
    if (End == argv[1] || *End != '\0' || Lookups == 0) {
      std::fprintf(stderr, "usage: %s [lookups-per-config > 0]\n", argv[0]);
      return 2;
    }
  }

  std::printf("\n== rule-dispatch micro-benchmark: block classification vs "
              "loaded-module count ==\n");
  std::printf("%8s %12s %14s %14s\n", "modules", "rules", "ns/lookup",
              "hit rate");

  bool Bad = false;
  double First = 0.0, Last = 0.0;
  for (unsigned NumModules : {1u, 4u, 16u, 64u, 256u}) {
    unsigned BlocksPerModule = TotalBlocks / NumModules;
    // Fabricate NumModules rule-carrying modules: every module links at VA 0
    // (overlapping link-time addresses, like any two PIC shared objects) and
    // is "loaded" at its own slide.
    std::deque<Module> Mods; // deque: stable addresses for LoadedModule::Mod
    RuleStore Rules;
    StubTool Tool;
    ModuleStore Empty;
    Process P(Empty);
    JanitizerDynamic Dyn(Tool, Rules);
    DbiEngine E(P, Dyn);

    for (unsigned I = 0; I < NumModules; ++I) {
      Mods.emplace_back();
      Module &M = Mods.back();
      M.Name = "m" + std::to_string(I) + ".so";
      M.IsPIC = M.IsSharedObject = true;
      RuleFile RF;
      RF.ModuleName = M.Name;
      RF.ToolName = Tool.name();
      for (unsigned B = 0; B < BlocksPerModule; ++B) {
        RewriteRule R;
        R.Id = RuleId::AsanCheck;
        R.BBAddr = B * 64;
        R.InstrAddr = B * 64 + 8;
        RF.Rules.push_back(R);
      }
      Rules.add(std::move(RF));

      LoadedModule LM;
      LM.Mod = &M;
      LM.Id = I;
      LM.LoadBase = FirstBase + I * ModuleSpan;
      LM.LoadEnd = LM.LoadBase + ModuleSpan;
      LM.Slide = static_cast<int64_t>(LM.LoadBase);
      Dyn.onModuleLoad(E, LM);
    }

    // Deterministic pseudo-random query stream spread over every module:
    // half the queries hit a block head, half probe mid-block (miss).
    uint64_t Hits = 0;
    auto T0 = std::chrono::steady_clock::now();
    uint64_t State = 0x9E3779B97F4A7C15ull;
    for (uint64_t Q = 0; Q < Lookups; ++Q) {
      State = State * 6364136223846793005ull + 1442695040888963407ull;
      uint64_t ModIdx = (State >> 33) % NumModules;
      uint64_t Block = (State >> 17) % BlocksPerModule;
      uint64_t Addr = FirstBase + ModIdx * ModuleSpan + Block * 64 +
                      ((Q & 1) ? 32 : 0); // odd queries probe mid-block
      Hits += Dyn.staticallySeen(Addr) ? 1 : 0;
    }
    auto T1 = std::chrono::steady_clock::now();
    double Ns =
        std::chrono::duration<double, std::nano>(T1 - T0).count() / Lookups;
    double HitRate = static_cast<double>(Hits) / Lookups;

    std::printf("%8u %12llu %14.1f %13.1f%%\n", NumModules,
                static_cast<unsigned long long>(NumModules * BlocksPerModule),
                Ns, HitRate * 100.0);
    if (NumModules == 1)
      First = Ns;
    Last = Ns;
    // Exactly the even queries must hit.
    if (Hits != Lookups / 2)
      Bad = true;
  }

  std::printf("1->256 modules cost ratio: %.2fx (flat = module-count "
              "independent)\n", First > 0 ? Last / First : 0.0);
  if (Bad) {
    std::fprintf(stderr, "FAIL: hit/miss classification incorrect\n");
    return 1;
  }
  return 0;
}
