//===- bench/microbench_dispatch.cpp - Rule-dispatch micro-benchmark -------===//
///
/// Measures the host-side cost of the dynamic modifier's hot path — block
/// classification (staticallySeen) and per-instruction rule lookup
/// (rulesForInstr) — as the number of loaded modules grows. With the
/// module address-interval index the cost is one binary search over the
/// module ranges plus one hash probe, i.e. O(log M) with a tiny constant,
/// where the previous implementation scanned every module's table (O(M)).
///
///   microbench_dispatch [lookups-per-config]
///   microbench_dispatch --links [iterations]
///   microbench_dispatch --jit [iterations] [json-path]
///
/// Default mode prints ns/lookup for 1..256 loaded modules; the column
/// should stay essentially flat. Exits non-zero if lookups that must hit
/// (or miss) misbehave, so the binary doubles as a smoke test.
///
/// --links runs a hot guest loop (direct back-edge + indirect call +
/// return per iteration) under the null client twice — once with block
/// linking and trace formation, once with the dispatch-every-block cost
/// model — and verifies both that execution is bit-identical (exit code,
/// retired instructions) and that links+traces cut dispatcher entries
/// plus indirect lookups by at least 5x (the ISSUE 5 acceptance bound).
///
/// --jit runs a compute-dense hot loop twice — once with the template-JIT
/// tier, once interpreter-only — verifies bit-identical execution (exit
/// code, retired instructions, simulated cycles) and a >= 2x host
/// wall-clock speedup (the ISSUE 9 acceptance bound), and optionally
/// records the measurement as a JSON object at json-path
/// (results/BENCH_jit.json in the committed tree).
///
//===----------------------------------------------------------------------===//

#include "core/JanitizerDynamic.h"
#include "dbi/NullClient.h"
#include "jasm/Assembler.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>

using namespace janitizer;

namespace {

/// The benchmark measures dispatch only; instrumentation is a pass-through.
class StubTool : public SecurityTool {
public:
  std::string name() const override { return "stub"; }
  void runStaticPass(const StaticContext &, RuleFile &) override {}
  void instrumentWithRules(
      JanitizerDynamic &, CacheBlock &, BlockBuilder &B,
      const std::vector<DecodedInstrRT> &Instrs,
      const std::unordered_map<uint64_t, std::vector<RewriteRule>> &) override {
    for (const DecodedInstrRT &DI : Instrs)
      B.app(DI.I, DI.Addr);
  }
  void instrumentFallback(JanitizerDynamic &, CacheBlock &, BlockBuilder &B,
                          const std::vector<DecodedInstrRT> &Instrs) override {
    for (const DecodedInstrRT &DI : Instrs)
      B.app(DI.I, DI.Addr);
  }
};

/// Total rules are held constant and split across the modules, so the
/// hash working set is identical in every configuration and the column
/// isolates the module-count dependence of the index itself.
constexpr unsigned TotalBlocks = 16384;
constexpr uint64_t ModuleSpan = 0x100000;
constexpr uint64_t FirstBase = 0x40000000;

/// One run of the hot-loop workload under the null client with \p Costs.
struct LinkRun {
  int ExitCode = -1;
  uint64_t Retired = 0;
  uint64_t Cycles = 0;
  uint64_t WallMicros = 0; ///< host wall clock around E.run() only
  DbiStats Stats;
};

bool runHotLoop(const std::string &Src, DbiCostModel Costs, LinkRun &Out) {
  auto M = assembleModule(Src);
  if (!M) {
    std::fprintf(stderr, "FAIL: assemble: %s\n", M.message().c_str());
    return false;
  }
  ModuleStore Store;
  Store.add(*M);
  Process P(Store);
  NullClient Tool;
  DbiEngine E(P, Tool, Costs);
  if (Error Err = P.loadProgram("hot")) {
    std::fprintf(stderr, "FAIL: load: %s\n", Err.message().c_str());
    return false;
  }
  auto T0 = std::chrono::steady_clock::now();
  RunResult R = E.run();
  auto T1 = std::chrono::steady_clock::now();
  if (R.St != RunResult::Status::Exited) {
    std::fprintf(stderr, "FAIL: hot loop did not exit cleanly\n");
    return false;
  }
  Out.ExitCode = R.ExitCode;
  Out.Retired = R.Retired;
  Out.Cycles = R.Cycles;
  Out.WallMicros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0).count());
  Out.Stats = E.stats();
  return true;
}

int runLinkBench(uint64_t Iters) {
  // The comparison is programmatic (cost-model capability bits), so the
  // ambient kill-switches must not skew the "linked" engine.
  unsetenv("JZ_NO_LINK");
  unsetenv("JZ_NO_TRACE");

  // Per iteration: one taken direct back-edge, one indirect call, one
  // return — the transition mix whose dispatcher cost linking targets.
  std::string Src = ".module hot\n"
                    ".entry main\n"
                    ".section text\n"
                    ".func work\n"
                    "work:\n"
                    "  addi r0, 1\n"
                    "  ret\n"
                    ".endfunc\n"
                    ".func main\n"
                    "main:\n"
                    "  movi r10, 0\n"
                    "  movi r11, 0\n"
                    "  la r9, work\n"
                    "loop:\n"
                    "  mov r0, r10\n"
                    "  callr r9\n"
                    "  mov r10, r0\n"
                    "  addi r11, 1\n"
                    "  cmpi r11, " +
                    std::to_string(Iters) +
                    "\n"
                    "  jl loop\n"
                    "  mov r0, r10\n"
                    "  andi r0, 255\n"
                    "  syscall 0\n"
                    ".endfunc\n";

  LinkRun Linked, Unlinked;
  DbiCostModel LinkedCosts; // defaults: LinkBlocks + BuildTraces on
  DbiCostModel UnlinkedCosts;
  UnlinkedCosts.LinkBlocks = false;
  UnlinkedCosts.BuildTraces = false;
  if (!runHotLoop(Src, LinkedCosts, Linked) ||
      !runHotLoop(Src, UnlinkedCosts, Unlinked))
    return 1;

  std::printf("\n== dispatch micro-benchmark: linked vs unlinked hot loop "
              "(%llu iterations) ==\n",
              static_cast<unsigned long long>(Iters));
  std::printf("%-28s %14s %14s\n", "", "linked", "unlinked");
  auto Row = [](const char *Name, uint64_t A, uint64_t B) {
    std::printf("%-28s %14llu %14llu\n", Name,
                static_cast<unsigned long long>(A),
                static_cast<unsigned long long>(B));
  };
  Row("jz.dbi.dispatch_entries", Linked.Stats.DispatchEntries,
      Unlinked.Stats.DispatchEntries);
  Row("jz.dbi.indirect_lookups", Linked.Stats.IndirectLookups,
      Unlinked.Stats.IndirectLookups);
  Row("jz.dbi.links_followed", Linked.Stats.LinksFollowed,
      Unlinked.Stats.LinksFollowed);
  Row("jz.dbi.ibl_hits", Linked.Stats.IblHits, Unlinked.Stats.IblHits);
  Row("jz.dbi.traces_built", Linked.Stats.TracesBuilt,
      Unlinked.Stats.TracesBuilt);
  Row("jz.dbi.trace_transitions", Linked.Stats.TraceTransitions,
      Unlinked.Stats.TraceTransitions);
  Row("guest cycles", Linked.Cycles, Unlinked.Cycles);

  bool Ok = true;
  if (Linked.ExitCode != Unlinked.ExitCode ||
      Linked.Retired != Unlinked.Retired) {
    std::fprintf(stderr,
                 "FAIL: linking changed execution (exit %d vs %d, retired "
                 "%llu vs %llu)\n",
                 Linked.ExitCode, Unlinked.ExitCode,
                 static_cast<unsigned long long>(Linked.Retired),
                 static_cast<unsigned long long>(Unlinked.Retired));
    Ok = false;
  }
  if (Linked.Stats.LinksFollowed == 0 || Linked.Stats.IblHits == 0 ||
      Linked.Stats.TracesBuilt == 0) {
    std::fprintf(stderr, "FAIL: linked run followed no links / IBL hits / "
                         "traces — the fast paths never engaged\n");
    Ok = false;
  }
  uint64_t HotLinked =
      Linked.Stats.DispatchEntries + Linked.Stats.IndirectLookups;
  uint64_t HotUnlinked =
      Unlinked.Stats.DispatchEntries + Unlinked.Stats.IndirectLookups;
  double Ratio = HotLinked ? static_cast<double>(HotUnlinked) /
                                 static_cast<double>(HotLinked)
                           : 0.0;
  std::printf("dispatcher entries + indirect lookups reduced %.1fx "
              "(acceptance: >= 5x)\n",
              Ratio);
  if (Ratio < 5.0) {
    std::fprintf(stderr, "FAIL: reduction %.1fx below the 5x bound\n", Ratio);
    Ok = false;
  }
  return Ok ? 0 : 1;
}

int runJitBench(uint64_t Iters, const char *JsonPath) {
  // The comparison is programmatic (JitBlocks capability bit); ambient
  // kill-switches and tuning knobs must not skew either side.
  unsetenv("JZ_NO_JIT");
  unsetenv("JZ_NO_LINK");
  unsetenv("JZ_NO_TRACE");
  unsetenv("JZ_JIT_THRESHOLD");
  unsetenv("JZ_JIT_ARENA_MAX");

  // Compute-dense hot loop: a long straight-line body (ALU mix plus a
  // store/load round trip) so per-instruction interpreter dispatch is the
  // dominant cost the stencils remove. The back-edge keeps the block hot
  // enough to tier up and to stitch into a trace.
  std::string Src = ".module hot\n"
                    ".entry main\n"
                    ".section bss\n"
                    "buf: .zero 64\n"
                    ".section text\n"
                    ".func main\n"
                    "main:\n"
                    "  movi r11, 0\n"
                    "  movi r0, 1\n"
                    "  movi r1, 2\n"
                    "  la r9, buf\n"
                    "loop:\n";
  // Unrolled 4x: one stencil invocation covers ~80 application
  // instructions, so the measurement reflects translated-code throughput
  // rather than per-invocation frame setup.
  for (int U = 0; U < 4; ++U)
    Src += "  add r0, r1\n"
           "  xor r1, r0\n"
           "  addi r0, 3\n"
           "  shli r1, 1\n"
           "  shri r1, 1\n"
           "  sub r1, r0\n"
           "  muli r0, 3\n"
           "  or r0, r1\n"
           "  andi r1, 65535\n"
           "  st8 [r9 + 8], r0\n"
           "  ld8 r2, [r9 + 8]\n"
           "  add r1, r2\n"
           "  mov r3, r0\n"
           "  shli r3, 2\n"
           "  xor r0, r3\n"
           "  subi r1, 7\n"
           "  add r0, r1\n"
           "  xori r0, 129\n";
  Src += "  addi r11, 1\n"
         "  cmpi r11, " +
         std::to_string(Iters) +
         "\n"
         "  jl loop\n"
         "  andi r0, 255\n"
         "  syscall 0\n"
         ".endfunc\n";

  LinkRun Jit, Interp;
  DbiCostModel JitCosts; // defaults: jit + links + traces on
  DbiCostModel InterpCosts;
  InterpCosts.JitBlocks = false;
  if (!runHotLoop(Src, InterpCosts, Interp) ||
      !runHotLoop(Src, JitCosts, Jit))
    return 1;

  std::printf("\n== dispatch micro-benchmark: jit vs interpreter hot loop "
              "(%llu iterations) ==\n",
              static_cast<unsigned long long>(Iters));
  std::printf("%-28s %14s %14s\n", "", "jit", "interp");
  auto Row = [](const char *Name, uint64_t A, uint64_t B) {
    std::printf("%-28s %14llu %14llu\n", Name,
                static_cast<unsigned long long>(A),
                static_cast<unsigned long long>(B));
  };
  Row("host wall micros", Jit.WallMicros, Interp.WallMicros);
  Row("retired app instructions", Jit.Retired, Interp.Retired);
  Row("guest cycles", Jit.Cycles, Interp.Cycles);
  Row("jz.dbi.jit.compiled", Jit.Stats.JitCompiled, Interp.Stats.JitCompiled);
  Row("jz.dbi.jit.execs", Jit.Stats.JitExecs, Interp.Stats.JitExecs);
  Row("jz.dbi.jit.refused", Jit.Stats.JitRefused, Interp.Stats.JitRefused);
  Row("jz.dbi.jit.arena_bytes", Jit.Stats.JitArenaBytes,
      Interp.Stats.JitArenaBytes);

  bool Ok = true;
  if (Jit.ExitCode != Interp.ExitCode || Jit.Retired != Interp.Retired ||
      Jit.Cycles != Interp.Cycles) {
    std::fprintf(stderr,
                 "FAIL: jit changed execution (exit %d vs %d, retired %llu "
                 "vs %llu, cycles %llu vs %llu)\n",
                 Jit.ExitCode, Interp.ExitCode,
                 static_cast<unsigned long long>(Jit.Retired),
                 static_cast<unsigned long long>(Interp.Retired),
                 static_cast<unsigned long long>(Jit.Cycles),
                 static_cast<unsigned long long>(Interp.Cycles));
    Ok = false;
  }
  if (Jit.Stats.JitCompiled == 0 || Jit.Stats.JitExecs == 0) {
    std::fprintf(stderr, "FAIL: jit run never tiered up — the measurement "
                         "is vacuous\n");
    Ok = false;
  }
  if (Interp.Stats.JitExecs != 0) {
    std::fprintf(stderr, "FAIL: interpreter-only run executed stencils\n");
    Ok = false;
  }
  double Speedup = Jit.WallMicros
                       ? static_cast<double>(Interp.WallMicros) /
                             static_cast<double>(Jit.WallMicros)
                       : 0.0;
  std::printf("host wall-clock speedup %.2fx (acceptance: >= 2x)\n", Speedup);
  if (Speedup < 2.0) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below the 2x bound\n", Speedup);
    Ok = false;
  }

  if (JsonPath) {
    std::FILE *F = std::fopen(JsonPath, "w");
    if (!F) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", JsonPath);
      return 1;
    }
    std::fprintf(
        F,
        "{\n"
        "  \"iterations\": %llu,\n"
        "  \"retired\": %llu,\n"
        "  \"cycles\": %llu,\n"
        "  \"interp_wall_micros\": %llu,\n"
        "  \"jit_wall_micros\": %llu,\n"
        "  \"speedup\": %.2f,\n"
        "  \"jit_compiled\": %llu,\n"
        "  \"jit_execs\": %llu,\n"
        "  \"jit_refused\": %llu,\n"
        "  \"jit_arena_bytes\": %llu,\n"
        "  \"execution_identical\": %s\n"
        "}\n",
        static_cast<unsigned long long>(Iters),
        static_cast<unsigned long long>(Jit.Retired),
        static_cast<unsigned long long>(Jit.Cycles),
        static_cast<unsigned long long>(Interp.WallMicros),
        static_cast<unsigned long long>(Jit.WallMicros), Speedup,
        static_cast<unsigned long long>(Jit.Stats.JitCompiled),
        static_cast<unsigned long long>(Jit.Stats.JitExecs),
        static_cast<unsigned long long>(Jit.Stats.JitRefused),
        static_cast<unsigned long long>(Jit.Stats.JitArenaBytes),
        (Jit.ExitCode == Interp.ExitCode && Jit.Retired == Interp.Retired &&
         Jit.Cycles == Interp.Cycles)
            ? "true"
            : "false");
    std::fclose(F);
    std::printf("recorded %s\n", JsonPath);
  }
  return Ok ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  if (argc > 1 && std::strcmp(argv[1], "--jit") == 0) {
    uint64_t Iters = 200'000;
    if (argc > 2) {
      char *End = nullptr;
      Iters = strtoull(argv[2], &End, 10);
      if (End == argv[2] || *End != '\0' || Iters == 0) {
        std::fprintf(stderr, "usage: %s --jit [iterations > 0] [json-path]\n",
                     argv[0]);
        return 2;
      }
    }
    return runJitBench(Iters, argc > 3 ? argv[3] : nullptr);
  }
  if (argc > 1 && std::strcmp(argv[1], "--links") == 0) {
    uint64_t Iters = 20'000;
    if (argc > 2) {
      char *End = nullptr;
      Iters = strtoull(argv[2], &End, 10);
      if (End == argv[2] || *End != '\0' || Iters == 0) {
        std::fprintf(stderr, "usage: %s --links [iterations > 0]\n", argv[0]);
        return 2;
      }
    }
    return runLinkBench(Iters);
  }

  uint64_t Lookups = 2'000'000;
  if (argc > 1) {
    char *End = nullptr;
    Lookups = strtoull(argv[1], &End, 10);
    if (End == argv[1] || *End != '\0' || Lookups == 0) {
      std::fprintf(stderr, "usage: %s [lookups-per-config > 0]\n", argv[0]);
      return 2;
    }
  }

  std::printf("\n== rule-dispatch micro-benchmark: block classification vs "
              "loaded-module count ==\n");
  std::printf("%8s %12s %14s %14s\n", "modules", "rules", "ns/lookup",
              "hit rate");

  bool Bad = false;
  double First = 0.0, Last = 0.0;
  for (unsigned NumModules : {1u, 4u, 16u, 64u, 256u}) {
    unsigned BlocksPerModule = TotalBlocks / NumModules;
    // Fabricate NumModules rule-carrying modules: every module links at VA 0
    // (overlapping link-time addresses, like any two PIC shared objects) and
    // is "loaded" at its own slide.
    std::deque<Module> Mods; // deque: stable addresses for LoadedModule::Mod
    RuleStore Rules;
    StubTool Tool;
    ModuleStore Empty;
    Process P(Empty);
    JanitizerDynamic Dyn(Tool, Rules);
    DbiEngine E(P, Dyn);

    for (unsigned I = 0; I < NumModules; ++I) {
      Mods.emplace_back();
      Module &M = Mods.back();
      M.Name = "m" + std::to_string(I) + ".so";
      M.IsPIC = M.IsSharedObject = true;
      RuleFile RF;
      RF.ModuleName = M.Name;
      RF.ToolName = Tool.name();
      for (unsigned B = 0; B < BlocksPerModule; ++B) {
        RewriteRule R;
        R.Id = RuleId::AsanCheck;
        R.BBAddr = B * 64;
        R.InstrAddr = B * 64 + 8;
        RF.Rules.push_back(R);
      }
      Rules.add(std::move(RF));

      LoadedModule LM;
      LM.Mod = &M;
      LM.Id = I;
      LM.LoadBase = FirstBase + I * ModuleSpan;
      LM.LoadEnd = LM.LoadBase + ModuleSpan;
      LM.Slide = static_cast<int64_t>(LM.LoadBase);
      Dyn.onModuleLoad(E, LM);
    }

    // Deterministic pseudo-random query stream spread over every module:
    // half the queries hit a block head, half probe mid-block (miss).
    uint64_t Hits = 0;
    auto T0 = std::chrono::steady_clock::now();
    uint64_t State = 0x9E3779B97F4A7C15ull;
    for (uint64_t Q = 0; Q < Lookups; ++Q) {
      State = State * 6364136223846793005ull + 1442695040888963407ull;
      uint64_t ModIdx = (State >> 33) % NumModules;
      uint64_t Block = (State >> 17) % BlocksPerModule;
      uint64_t Addr = FirstBase + ModIdx * ModuleSpan + Block * 64 +
                      ((Q & 1) ? 32 : 0); // odd queries probe mid-block
      Hits += Dyn.staticallySeen(Addr) ? 1 : 0;
    }
    auto T1 = std::chrono::steady_clock::now();
    double Ns =
        std::chrono::duration<double, std::nano>(T1 - T0).count() / Lookups;
    double HitRate = static_cast<double>(Hits) / Lookups;

    std::printf("%8u %12llu %14.1f %13.1f%%\n", NumModules,
                static_cast<unsigned long long>(NumModules * BlocksPerModule),
                Ns, HitRate * 100.0);
    if (NumModules == 1)
      First = Ns;
    Last = Ns;
    // Exactly the even queries must hit.
    if (Hits != Lookups / 2)
      Bad = true;
  }

  std::printf("1->256 modules cost ratio: %.2fx (flat = module-count "
              "independent)\n", First > 0 ? Last / First : 0.0);
  if (Bad) {
    std::fprintf(stderr, "FAIL: hit/miss classification incorrect\n");
    return 1;
  }
  return 0;
}
