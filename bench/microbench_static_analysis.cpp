//===- bench/microbench_static_analysis.cpp - Analysis-pipeline bench ------===//
///
/// Measures the static-analysis pipeline over the full SPEC-like closure
/// (all 28 workloads and their shared libraries):
///
///  1. thread scaling — wall clock of analyzing every workload at 1, 2
///     and 4 worker threads (no cache);
///  2. cache behaviour — a cold run that populates a fresh rule cache
///     (shared modules like libjz.so already hit after the first
///     workload: one analysis serves every program, §3.3.1) and a warm
///     run that must perform zero analyses.
///
///   microbench_static_analysis [scale]
///
/// Wall-clock numbers are informational (they depend on host load and
/// core count — on a single-core host the thread column is flat); the
/// *checked* properties are deterministic and the binary doubles as a
/// regression test, exiting non-zero when any fails:
///
///  - rule files are byte-identical across thread counts and cache
///    states;
///  - the warm-cache run performs zero analyzeModule calls;
///  - no rule file contains a duplicate no-op rule (a block carrying
///    both a real rule and a no-op).
///
//===----------------------------------------------------------------------===//

#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"
#include "support/Hash.h"
#include "workloads/WorkloadGen.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace janitizer;

namespace {

double seconds(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// Stable fingerprint of every rule file an analysis run produced:
/// serialized bytes of each module's rule file, folded in sorted module
/// order. Byte-identical runs have equal fingerprints.
uint64_t fingerprint(const std::vector<WorkloadBuild> &Workloads,
                     const std::vector<RuleStore> &Stores,
                     const std::string &ToolName) {
  uint64_t H = Fnv1aOffset;
  for (size_t I = 0; I < Workloads.size(); ++I) {
    std::vector<const Module *> Mods = Workloads[I].Store.all();
    std::sort(Mods.begin(), Mods.end(),
              [](const Module *A, const Module *B) { return A->Name < B->Name; });
    for (const Module *M : Mods)
      if (const RuleFile *RF = Stores[I].find(M->Name, ToolName))
        H = hashBytes(RF->serialize(), H);
  }
  return H;
}

/// True when some block address carries both a real rule and a no-op.
bool hasDuplicateNoOp(const RuleFile &RF) {
  std::set<uint64_t> Real, NoOp;
  for (const RewriteRule &R : RF.Rules)
    (R.Id == RuleId::NoOp ? NoOp : Real).insert(R.BBAddr);
  for (uint64_t A : NoOp)
    if (Real.count(A))
      return true;
  return false;
}

struct RunOutcome {
  std::vector<RuleStore> Stores;
  double Seconds = 0;
  StaticAnalyzerStats Stats; ///< accumulated over all workloads
};

RunOutcome analyzeAll(const std::vector<WorkloadBuild> &Workloads,
                      unsigned Jobs, const std::string &CacheDir) {
  RunOutcome Out;
  Out.Stores.resize(Workloads.size());
  StaticAnalyzerOptions Opts;
  Opts.Jobs = Jobs;
  Opts.CacheDir = CacheDir;
  auto T0 = std::chrono::steady_clock::now();
  for (size_t I = 0; I < Workloads.size(); ++I) {
    StaticAnalyzer SA(Opts);
    JASanTool Tool;
    Error E = SA.analyzeProgram(Workloads[I].Store, Workloads[I].ExeName, Tool,
                                Out.Stores[I], Workloads[I].DlopenOnly);
    (void)E;
    const StaticAnalyzerStats &S = SA.stats();
    Out.Stats.ModulesAnalyzed += S.ModulesAnalyzed;
    Out.Stats.ModulesSkipped += S.ModulesSkipped;
    Out.Stats.PrelimCfgReused += S.PrelimCfgReused;
    Out.Stats.CacheHits += S.CacheHits;
    Out.Stats.CacheMisses += S.CacheMisses;
    Out.Stats.CacheEvictions += S.CacheEvictions;
    Out.Stats.RulesEmitted += S.RulesEmitted;
  }
  Out.Seconds = seconds(T0);
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Scale = argc > 1 ? static_cast<unsigned>(atoi(argv[1])) : 2;

  std::printf("\n== static-analysis pipeline micro-benchmark "
              "(28-workload closure, scale %u) ==\n", Scale);
  std::vector<WorkloadBuild> Workloads;
  for (const BenchProfile &P : specProfiles()) {
    WorkloadOptions Opts;
    Opts.WorkScale = Scale;
    Workloads.push_back(cantFail(buildWorkload(P, Opts)));
  }
  const std::string Tool = "jasan";
  bool Bad = false;

  // --- 1. thread scaling (no cache) ---------------------------------------
  std::printf("%8s %12s %12s %10s\n", "threads", "modules", "wall (s)",
              "speedup");
  double Base = 0;
  uint64_t RefFp = 0;
  for (unsigned Jobs : {1u, 2u, 4u}) {
    RunOutcome R = analyzeAll(Workloads, Jobs, "");
    uint64_t Fp = fingerprint(Workloads, R.Stores, Tool);
    if (Jobs == 1) {
      Base = R.Seconds;
      RefFp = Fp;
    } else if (Fp != RefFp) {
      std::fprintf(stderr,
                   "FAIL: rule files differ between 1 and %u threads\n", Jobs);
      Bad = true;
    }
    std::printf("%8u %12zu %12.3f %9.2fx\n", Jobs, R.Stats.ModulesAnalyzed,
                R.Seconds, R.Seconds > 0 ? Base / R.Seconds : 0.0);
  }

  // --- 2. rule-cache cold vs warm -----------------------------------------
  std::string CacheDir =
      (std::filesystem::temp_directory_path() /
       ("jz-rulecache-" + std::to_string(
#if defined(__unix__) || defined(__APPLE__)
                              ::getpid()
#else
                              0
#endif
                                  )))
          .string();
  std::filesystem::remove_all(CacheDir);

  RunOutcome Cold = analyzeAll(Workloads, 4, CacheDir);
  uint64_t ColdFp = fingerprint(Workloads, Cold.Stores, Tool);
  RunOutcome Warm = analyzeAll(Workloads, 4, CacheDir);
  uint64_t WarmFp = fingerprint(Workloads, Warm.Stores, Tool);
  std::filesystem::remove_all(CacheDir);

  std::printf("%8s %12s %12s %10s  (hits/misses)\n", "cache", "analyzed",
              "wall (s)", "speedup");
  std::printf("%8s %12zu %12.3f %9.2fx  (%zu/%zu)\n", "cold",
              Cold.Stats.ModulesAnalyzed, Cold.Seconds,
              Cold.Seconds > 0 ? Base / Cold.Seconds : 0.0,
              Cold.Stats.CacheHits, Cold.Stats.CacheMisses);
  std::printf("%8s %12zu %12.3f %9.2fx  (%zu/%zu)\n", "warm",
              Warm.Stats.ModulesAnalyzed, Warm.Seconds,
              Warm.Seconds > 0 ? Cold.Seconds / Warm.Seconds : 0.0,
              Warm.Stats.CacheHits, Warm.Stats.CacheMisses);

  if (ColdFp != RefFp || WarmFp != RefFp) {
    std::fprintf(stderr, "FAIL: cached rule files differ from uncached\n");
    Bad = true;
  }
  if (Warm.Stats.ModulesAnalyzed != 0) {
    std::fprintf(stderr, "FAIL: warm-cache run analyzed %zu modules "
                 "(expected 0)\n", Warm.Stats.ModulesAnalyzed);
    Bad = true;
  }
  if (Cold.Stats.CacheHits == 0) {
    std::fprintf(stderr, "FAIL: no cross-program cache reuse on the cold "
                 "run (shared libraries should hit)\n");
    Bad = true;
  }

  // --- 3. no duplicate no-op rules ----------------------------------------
  size_t DupFiles = 0;
  for (size_t I = 0; I < Workloads.size(); ++I)
    for (const Module *M : Workloads[I].Store.all())
      if (const RuleFile *RF = Warm.Stores[I].find(M->Name, Tool))
        if (hasDuplicateNoOp(*RF))
          ++DupFiles;
  if (DupFiles) {
    std::fprintf(stderr, "FAIL: %zu rule files contain duplicate no-op "
                 "rules\n", DupFiles);
    Bad = true;
  }

  if (Bad)
    return 1;
  std::printf("rule files byte-identical across thread counts and cache "
              "states; warm cache analyzed 0 modules\n");
  return 0;
}
