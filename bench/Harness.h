//===- bench/Harness.h - Shared experiment harness -------------------------===//
///
/// \file
/// Runs a generated workload under every tool configuration of the paper's
/// evaluation and reports slowdowns relative to native execution.
/// Correctness is enforced: an instrumented run whose printed checksum
/// differs from the native run (or that fails to finish) is reported as
/// "x" — exactly how the paper marks benchmarks a tool cannot handle.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_BENCH_HARNESS_H
#define JANITIZER_BENCH_HARNESS_H

#include "core/JanitizerDynamic.h"
#include "core/StaticAnalyzer.h"
#include "rewrite/AotRunner.h"
#include "workloads/RewriterTorture.h"
#include "workloads/WorkloadGen.h"

#include <optional>
#include <string>
#include <vector>

namespace janitizer {
namespace bench {

struct ConfigResult {
  bool Ok = false;
  double Slowdown = 0.0;
  std::string Note; ///< failure reason when !Ok
  /// Classification + rule-dispatch counters; only meaningful for
  /// Janitizer configurations (HasCoverage set).
  bool HasCoverage = false;
  CoverageStats Coverage;
  /// Static-analysis pipeline observability (per-module timings, cache
  /// hits/misses, thread count); only for hybrid configurations
  /// (HasStatic set).
  bool HasStatic = false;
  StaticAnalyzerStats Static;
  /// Dispatcher fast-path counters (links followed, IBL hits, traces);
  /// set for every configuration that ran under the DBI engine.
  bool HasDbi = false;
  DbiStats Dbi;
};

/// One fully built workload plus its native reference numbers.
struct PreparedWorkload {
  WorkloadBuild W;
  uint64_t NativeCycles = 0;
  std::string Checksum;
  /// PIC build (for RetroWrite) with its own native baseline.
  std::optional<WorkloadBuild> PicW;
  uint64_t PicNativeCycles = 0;
  std::string PicChecksum;
};

/// Builds and measures the native baselines for one profile.
PreparedWorkload prepare(const BenchProfile &P, unsigned WorkScale = 8,
                         bool NeedPic = false);

// --- tool configurations ---------------------------------------------------
// Hybrid configurations accept static-analyzer options (--jobs /
// --rule-cache in jz-bench) and report the pipeline stats in the result.
ConfigResult runNullClient(const PreparedWorkload &PW);
ConfigResult runJasanDyn(const PreparedWorkload &PW);
ConfigResult runJasanHybrid(const PreparedWorkload &PW, bool UseLiveness,
                            const StaticAnalyzerOptions &AOpts = {});
ConfigResult runValgrindCfg(const PreparedWorkload &PW);
ConfigResult runRetroWriteCfg(const PreparedWorkload &PW);
ConfigResult runJcfiDyn(const PreparedWorkload &PW);
ConfigResult runJcfiHybrid(const PreparedWorkload &PW, bool Forward = true,
                           bool Backward = true,
                           const StaticAnalyzerOptions &AOpts = {});
ConfigResult runBinCfiCfg(const PreparedWorkload &PW);
ConfigResult runLockdownCfg(const PreparedWorkload &PW, bool Strong);
/// Janitizer's AOT static-rewriting tier: analyze, rewrite every module in
/// the dependency closure (dlopen-only modules are rewritten all-stubbed,
/// so the DBI fallback discovers them like the hybrid tier would), then
/// run the rewritten program natively with trap-to-DBI fallback.
ConfigResult runJanitizerAotCfg(const PreparedWorkload &PW,
                                bool UseLiveness = true,
                                const StaticAnalyzerOptions &AOpts = {});

// --- rewriter torture (§6.2.1) ----------------------------------------------
/// Per-rewriter functional-correctness verdict on one torture case.
enum class RewriteVerdict { Correct, Refused, Wrong };

const char *rewriteVerdictName(RewriteVerdict V);

struct TortureScore {
  RewriteVerdict Verdict = RewriteVerdict::Wrong;
  std::string Note; ///< refusal message / mismatch description
};

struct TortureRow {
  TortureKind Kind;
  std::string Ref; ///< native checksum
  TortureScore Aot, Retro, BinCfi;
};

/// Builds every torture case and scores the three static rewriters
/// (Janitizer-AOT under JASan rules, RetroWrite, BinCFI) on each.
std::vector<TortureRow> runRewriterTorture();

/// AOT-vs-hybrid differential over Juliet CWE-122 variants: for each case
/// the fully analyzed program must (a) run its AOT rewrite with zero DBI
/// dispatch entries, and (b) produce byte-identical output and violation
/// tuples (Code, PC, Detail, What — original addresses in both tiers)
/// against the hybrid DBI run. Any divergence fails with a Note naming
/// the case and field.
struct AotDifferential {
  bool Ok = false;
  std::string Note;
  size_t CasesRun = 0;          ///< variants compared (good + bad)
  size_t Violations = 0;        ///< total tuples compared
  uint64_t AotDispatchEntries = 0; ///< summed over AOT runs (must be 0)
  uint64_t TierEnters = 0, Intercepts = 0, AotChecks = 0, VacatedEnters = 0;
};
AotDifferential runAotDifferential(unsigned CasesPerFamily = 1);

// --- reporting ---------------------------------------------------------------
/// Prints an aligned table: rows = benchmark names (+ geomean rows),
/// columns = configurations. Failed cells print "x".
class Table {
public:
  Table(std::string Title, std::vector<std::string> Columns);
  void addRow(const std::string &Name, const std::vector<ConfigResult> &Cells);
  /// Prints all rows plus "geomean" (per column over its successful rows)
  /// and "geomean-x" (over rows where *every* column succeeded).
  void print() const;

private:
  std::string Title;
  std::vector<std::string> Columns;
  struct Row {
    std::string Name;
    std::vector<ConfigResult> Cells;
  };
  std::vector<Row> Rows;
};

} // namespace bench
} // namespace janitizer

#endif // JANITIZER_BENCH_HARNESS_H
