//===- bench/fig07_jasan_overhead.cpp - Paper Figure 7 ---------------------===//
///
/// Regenerates Figure 7: slowdown of the binary sanitizers over native
/// execution, per SPEC-like benchmark — Valgrind (dynamic-only),
/// JASan-dyn (Janitizer without static analysis), RetroWrite (static-only,
/// on the PIC build, "x" where rewriting is refused), JASan-hybrid.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>

using namespace janitizer;
using namespace janitizer::bench;

int main(int argc, char **argv) {
  unsigned Scale = argc > 1 ? static_cast<unsigned>(atoi(argv[1])) : 8;
  Table T("Figure 7: JASan overhead vs native (slowdown factors)",
          {"Valgrind", "JASan-dyn", "Retrowrite", "JASan-hybrid"});
  for (const BenchProfile &P : specProfiles()) {
    std::fprintf(stderr, "[fig07] %s...\n", P.Name.c_str());
    PreparedWorkload PW = prepare(P, Scale, /*NeedPic=*/true);
    T.addRow(P.Name, {
                         runValgrindCfg(PW),
                         runJasanDyn(PW),
                         runRetroWriteCfg(PW),
                         runJasanHybrid(PW, /*UseLiveness=*/true),
                     });
  }
  T.print();
  return 0;
}
