//===- bench/fig09_jcfi_overhead.cpp - Paper Figure 9 ----------------------===//
///
/// Regenerates Figure 9: CFI slowdowns — Lockdown (dynamic-only, its own
/// lean DBT), JCFI-dyn (Janitizer without static analysis), JCFI-hybrid,
/// and BinCFI (static-only rewriting). Lockdown cannot run the nonlocal-
/// unwinding benchmarks (omnetpp, dealII); BinCFI's rewritten binaries
/// break on the data-island benchmarks (gamess, zeusmp) — both are "x".
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>

using namespace janitizer;
using namespace janitizer::bench;

int main(int argc, char **argv) {
  unsigned Scale = argc > 1 ? static_cast<unsigned>(atoi(argv[1])) : 8;
  Table T("Figure 9: JCFI overhead vs native (slowdown factors)",
          {"Lockdown", "JCFI-dyn", "JCFI-hybrid", "BinCFI"});
  for (const BenchProfile &P : specProfiles()) {
    std::fprintf(stderr, "[fig09] %s...\n", P.Name.c_str());
    PreparedWorkload PW = prepare(P, Scale);
    T.addRow(P.Name, {
                         runLockdownCfg(PW, /*Strong=*/true),
                         runJcfiDyn(PW),
                         runJcfiHybrid(PW),
                         runBinCfiCfg(PW),
                     });
  }
  T.print();
  return 0;
}
