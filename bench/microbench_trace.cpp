//===- bench/microbench_trace.cpp - Disarmed-tracing overhead bench --------===//
///
/// Verifies the observability cost contract (DESIGN.md §5d) from three
/// angles:
///
///  1. Dispatch hot path: the block-classification loop of
///     microbench_dispatch carries *zero* trace sites by design
///     (staticallySeen / rulesForInstr are span-free), so on that loop a
///     disarmed-tracing build is instruction-identical to a no-tracing
///     build. Measured here as two interleaved runs of the same loop; the
///     delta is pure measurement noise and must stay within the 2%
///     acceptance bound.
///  2. Per-site disarmed cost: a span site compiled into a function must
///     cost one branch on a relaxed atomic load — measured as ns/call
///     against an identical function without the site.
///  3. Armed sanity: arming actually records events (so (1) and (2) are
///     not vacuously measuring dead code).
///
///   microbench_trace [lookups]
///
/// Exits non-zero when a bound is violated, so the binary doubles as a
/// regression test (registered in ctest with a small lookup count).
///
//===----------------------------------------------------------------------===//

#include "core/JanitizerDynamic.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>

using namespace janitizer;

namespace {

class StubTool : public SecurityTool {
public:
  std::string name() const override { return "stub"; }
  void runStaticPass(const StaticContext &, RuleFile &) override {}
  void instrumentWithRules(
      JanitizerDynamic &, CacheBlock &, BlockBuilder &B,
      const std::vector<DecodedInstrRT> &Instrs,
      const std::unordered_map<uint64_t, std::vector<RewriteRule>> &) override {
    for (const DecodedInstrRT &DI : Instrs)
      B.app(DI.I, DI.Addr);
  }
  void instrumentFallback(JanitizerDynamic &, CacheBlock &, BlockBuilder &B,
                          const std::vector<DecodedInstrRT> &Instrs) override {
    for (const DecodedInstrRT &DI : Instrs)
      B.app(DI.I, DI.Addr);
  }
};

constexpr unsigned NumBlocks = 4096;
constexpr uint64_t LoadBase = 0x40000000;

/// Same query stream as microbench_dispatch: half hits, half mid-block.
uint64_t dispatchLoop(const JanitizerDynamic &Dyn, uint64_t Lookups) {
  uint64_t Hits = 0;
  uint64_t State = 0x9E3779B97F4A7C15ull;
  for (uint64_t Q = 0; Q < Lookups; ++Q) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    uint64_t Block = (State >> 17) % NumBlocks;
    uint64_t Addr = LoadBase + Block * 64 + ((Q & 1) ? 32 : 0);
    Hits += Dyn.staticallySeen(Addr) ? 1 : 0;
  }
  return Hits;
}

double nsPer(std::chrono::steady_clock::time_point T0,
             std::chrono::steady_clock::time_point T1, uint64_t N) {
  return std::chrono::duration<double, std::nano>(T1 - T0).count() /
         static_cast<double>(N);
}

// Per-site cost probes. noinline + volatile sink keep the comparison
// honest: both bodies survive optimization, differing only in the span
// site.
volatile uint64_t Sink;

[[gnu::noinline]] void workPlain(uint64_t X) { Sink = Sink + (X ^ (X >> 7)); }

[[gnu::noinline]] void workSpan(uint64_t X) {
  JZ_TRACE_SPAN("bench.site");
  Sink = Sink + (X ^ (X >> 7));
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Lookups = 2'000'000;
  if (argc > 1) {
    char *End = nullptr;
    Lookups = strtoull(argv[1], &End, 10);
    if (End == argv[1] || *End != '\0' || Lookups == 0) {
      std::fprintf(stderr, "usage: %s [lookups > 0]\n", argv[0]);
      return 2;
    }
  }
  bool Bad = false;

  // -- 1. dispatch hot path ------------------------------------------------
  std::deque<Module> Mods;
  RuleStore Rules;
  StubTool Tool;
  ModuleStore Empty;
  Process P(Empty);
  JanitizerDynamic Dyn(Tool, Rules);
  DbiEngine E(P, Dyn);
  Mods.emplace_back();
  Module &M = Mods.back();
  M.Name = "m.so";
  M.IsPIC = M.IsSharedObject = true;
  RuleFile RF;
  RF.ModuleName = M.Name;
  RF.ToolName = Tool.name();
  for (unsigned B = 0; B < NumBlocks; ++B) {
    RewriteRule R;
    R.Id = RuleId::AsanCheck;
    R.BBAddr = B * 64;
    R.InstrAddr = B * 64 + 8;
    RF.Rules.push_back(R);
  }
  Rules.add(std::move(RF));
  LoadedModule LM;
  LM.Mod = &M;
  LM.Id = 0;
  LM.LoadBase = LoadBase;
  LM.LoadEnd = LoadBase + NumBlocks * 64;
  LM.Slide = static_cast<int64_t>(LoadBase);
  Dyn.onModuleLoad(E, LM);

  std::printf("\n== disarmed-tracing overhead micro-benchmark ==\n");
  // ABBA-interleaved batches of identical code: the dispatch loop has no
  // trace sites, so "baseline" vs "tracing disarmed" differ by nothing
  // but noise. Each batch runs the two sides back to back, alternating
  // which goes first, and the verdict takes the *smaller* of two robust
  // statistics — the aggregate ratio (slot bias and clock drift cancel
  // in the alternated sums) and the minimum per-batch ratio (scheduler
  // spikes inflate only some batches). Genuine per-lookup overhead
  // raises both; measurement noise on a loaded CI machine rarely raises
  // either, and essentially never both.
  constexpr unsigned Batches = 16;
  uint64_t PerBatch = Lookups / Batches + 1;
  dispatchLoop(Dyn, PerBatch); // warm-up
  double BaseNs = 1e30, DisarmedNs = 1e30, MinRatio = 1e30;
  double SumB = 0, SumD = 0;
  for (unsigned I = 0; I < Batches; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    uint64_t H1 = dispatchLoop(Dyn, PerBatch);
    auto T1 = std::chrono::steady_clock::now();
    uint64_t H2 = dispatchLoop(Dyn, PerBatch);
    auto T2 = std::chrono::steady_clock::now();
    // Even batches time (baseline, disarmed); odd batches the reverse.
    double First = nsPer(T0, T1, PerBatch), Second = nsPer(T1, T2, PerBatch);
    double B = (I & 1) ? Second : First;
    double D = (I & 1) ? First : Second;
    BaseNs = std::min(BaseNs, B);
    DisarmedNs = std::min(DisarmedNs, D);
    SumB += B;
    SumD += D;
    if (B > 0)
      MinRatio = std::min(MinRatio, D / B);
    if (H1 != (PerBatch + 1) / 2 || H2 != (PerBatch + 1) / 2) {
      std::fprintf(stderr, "FAIL: hit accounting incorrect\n");
      Bad = true;
    }
  }
  double AggRatio = SumB > 0 ? SumD / SumB : 1.0;
  double DispatchPct = (std::min(MinRatio, AggRatio) - 1.0) * 100.0;
  std::printf("dispatch loop: %9.2f ns/lookup baseline, %9.2f ns/lookup "
              "tracing-disarmed (aggregate %+.2f%%, robust %+.2f%%, %u "
              "paired batches)\n",
              BaseNs, DisarmedNs, (AggRatio - 1.0) * 100.0, DispatchPct,
              Batches);
  std::printf("  (hot path carries no trace sites; the binary is "
              "instruction-identical to a no-tracing build there)\n");
  if (DispatchPct > 2.0 && Lookups >= 1'000'000) {
    std::fprintf(stderr, "FAIL: dispatch overhead %.2f%% > 2%%\n",
                 DispatchPct);
    Bad = true;
  }

  // -- 2. per-site disarmed cost ------------------------------------------
  uint64_t SiteIters = Lookups;
  for (uint64_t I = 0; I < SiteIters; ++I) // warm-up
    workSpan(I);
  double PlainNs = 1e30, SpanNs = 1e30;
  for (unsigned B = 0; B < Batches; ++B) {
    auto S0 = std::chrono::steady_clock::now();
    for (uint64_t I = 0; I < SiteIters; ++I)
      workPlain(I);
    auto S1 = std::chrono::steady_clock::now();
    for (uint64_t I = 0; I < SiteIters; ++I)
      workSpan(I);
    auto S2 = std::chrono::steady_clock::now();
    PlainNs = std::min(PlainNs, nsPer(S0, S1, SiteIters));
    SpanNs = std::min(SpanNs, nsPer(S1, S2, SiteIters));
  }
  std::printf("span site:     %9.2f ns/call without site, %9.2f ns/call "
              "with disarmed site (+%.2f ns/site)\n",
              PlainNs, SpanNs, SpanNs - PlainNs);
  // One branch on a cached atomic costs well under a nanosecond; 5 ns
  // absorbs scheduler noise on loaded CI machines.
  if (SpanNs - PlainNs > 5.0) {
    std::fprintf(stderr, "FAIL: disarmed span site costs %.2f ns > 5 ns\n",
                 SpanNs - PlainNs);
    Bad = true;
  }

  // -- 3. armed sanity -----------------------------------------------------
  TraceCollector &C = TraceCollector::instance();
  C.start();
  workSpan(1);
  dispatchLoop(Dyn, 16);
  C.stop();
  std::printf("armed sanity:  %zu events recorded while armed\n",
              C.eventCount());
  if (C.eventCount() == 0) {
    std::fprintf(stderr, "FAIL: arming recorded no events\n");
    Bad = true;
  }
  C.clear();

  return Bad ? 1 : 0;
}
