//===- bench/microbench_mt.cpp - Multi-thread scaling micro-benchmark ------===//
///
/// Measures guest-thread scaling of the concurrent DBI engine on the
/// racing-allocation workload (1 → 8 worker threads) and certifies the
/// ISSUE 7 acceptance bounds:
///
///   microbench_mt [per-worker-iters] [--json FILE]
///
/// Throughput is measured in the simulated-cycle domain: total retired
/// guest instructions divided by the *makespan* (the maximum per-thread
/// cycle count), which is the simulator's analogue of wall-clock on a
/// sufficiently parallel host — each guest thread runs on its own host
/// thread, so the slowest thread bounds completion. Host wall-clock is
/// reported as an informational column (it only shows parallelism when
/// the host has that many cores; CI containers often pin one).
///
/// Self-checks (non-zero exit on failure):
///  - every configuration's checksum matches the native reference;
///  - 4-thread throughput >= 2.5x the 1-thread throughput;
///  - the planted cross-thread UAF yields the identical violation tuple
///    (code, PC, message) at 4 threads and under JZ_MAX_GUEST_THREADS=1.
///
/// --json writes the numbers in the flat BENCH_fleet.json style for
/// results/BENCH_mt.json.
///
//===----------------------------------------------------------------------===//

#include "core/JanitizerDynamic.h"
#include "dbi/NullClient.h"
#include "jasan/JASan.h"
#include "workloads/WorkloadGen.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

using namespace janitizer;

namespace {

struct MtRun {
  bool Ok = false;
  std::string Output;
  uint64_t Retired = 0;
  uint64_t Makespan = 0; ///< max per-thread guest cycles
  double WallMicros = 0.0;
};

MtRun runConfig(unsigned Workers, unsigned Iters) {
  MtRun Out;
  MtWorkloadOptions O;
  O.Workers = Workers;
  O.Iters = Iters;
  O.ComputeIters = 256;
  auto W = buildMtWorkload(MtWorkloadKind::RaceAlloc, O);
  if (!W) {
    std::fprintf(stderr, "FAIL: build: %s\n", W.message().c_str());
    return Out;
  }
  std::string Native = nativeReference(*W);
  if (Native.empty()) {
    std::fprintf(stderr, "FAIL: native reference did not complete\n");
    return Out;
  }

  Process P(W->Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  if (Error Err = P.loadProgram(W->ExeName)) {
    std::fprintf(stderr, "FAIL: load: %s\n", Err.message().c_str());
    return Out;
  }
  auto T0 = std::chrono::steady_clock::now();
  RunResult R = E.run();
  auto T1 = std::chrono::steady_clock::now();
  if (R.St != RunResult::Status::Exited) {
    std::fprintf(stderr, "FAIL: %u workers: %s\n", Workers,
                 R.FaultMsg.c_str());
    return Out;
  }
  if (P.output() != Native) {
    std::fprintf(stderr,
                 "FAIL: %u workers: checksum '%s' != native '%s'\n", Workers,
                 P.output().c_str(), Native.c_str());
    return Out;
  }
  Out.Ok = true;
  Out.Output = P.output();
  Out.Retired = R.Retired;
  for (uint32_t Tid = 0; Tid < P.threadCount(); ++Tid)
    Out.Makespan = std::max(Out.Makespan, P.machineForTid(Tid).Cycles);
  Out.WallMicros =
      std::chrono::duration<double, std::micro>(T1 - T0).count();
  return Out;
}

std::vector<std::tuple<uint8_t, uint64_t, std::string>>
uafTuple(bool KillSwitch, bool &Ok) {
  if (KillSwitch)
    setenv("JZ_MAX_GUEST_THREADS", "1", 1);
  MtWorkloadOptions O;
  O.Workers = 4;
  auto W = buildMtWorkload(MtWorkloadKind::PlantedUaf, O);
  std::vector<std::tuple<uint8_t, uint64_t, std::string>> T;
  if (!W) {
    Ok = false;
  } else {
    RuleStore NoRules;
    JASanTool Tool;
    JanitizerRun R =
        runUnderJanitizer(W->Store, W->ExeName, Tool, NoRules, 1ull << 31);
    Ok = R.Result.St == RunResult::Status::Exited;
    for (const Violation &V : R.Violations)
      T.emplace_back(V.Code, V.PC, V.What);
    std::sort(T.begin(), T.end());
  }
  if (KillSwitch)
    unsetenv("JZ_MAX_GUEST_THREADS");
  return T;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Iters = 64;
  std::string JsonPath;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--json=", 0) == 0) {
      JsonPath = Arg.substr(std::strlen("--json="));
    } else {
      char *End = nullptr;
      unsigned long V = std::strtoul(argv[I], &End, 10);
      if (End == argv[I] || *End != '\0' || V == 0) {
        std::fprintf(stderr,
                     "usage: %s [per-worker-iters > 0] [--json=FILE]\n",
                     argv[0]);
        return 2;
      }
      Iters = static_cast<unsigned>(V);
    }
  }
  // The scaling claim is about the engine itself, not the ambient
  // kill-switches.
  unsetenv("JZ_MAX_GUEST_THREADS");
  unsetenv("JZ_NO_LINK");
  unsetenv("JZ_NO_TRACE");

  std::printf("\n== mt scaling micro-benchmark: racing-alloc workload "
              "(%u iters/worker) ==\n",
              Iters);
  std::printf("%8s %14s %16s %16s %12s %10s\n", "threads", "retired",
              "makespan cyc", "retired/cyc", "wall ms", "scaling");

  const unsigned Threads[] = {1, 2, 4, 8};
  double Base = 0.0, Scaling4 = 0.0;
  std::vector<std::pair<unsigned, MtRun>> Runs;
  for (unsigned T : Threads) {
    MtRun R = runConfig(T, Iters);
    if (!R.Ok)
      return 1;
    double Thr = R.Makespan
                     ? static_cast<double>(R.Retired) /
                           static_cast<double>(R.Makespan)
                     : 0.0;
    if (T == 1)
      Base = Thr;
    double Scale = Base > 0 ? Thr / Base : 0.0;
    if (T == 4)
      Scaling4 = Scale;
    std::printf("%8u %14llu %16llu %16.3f %12.2f %9.2fx\n", T,
                static_cast<unsigned long long>(R.Retired),
                static_cast<unsigned long long>(R.Makespan), Thr,
                R.WallMicros / 1000.0, Scale);
    Runs.emplace_back(T, R);
  }

  bool Ok = true;
  std::printf("4-thread throughput scaling: %.2fx (acceptance: >= 2.5x)\n",
              Scaling4);
  if (Scaling4 < 2.5) {
    std::fprintf(stderr, "FAIL: scaling %.2fx below the 2.5x bound\n",
                 Scaling4);
    Ok = false;
  }

  // Identical violation tuples: the planted UAF must be reported the same
  // with 4 host threads and with the engine forced single-threaded.
  bool OkMt = false, OkSt = false;
  auto TupMt = uafTuple(/*KillSwitch=*/false, OkMt);
  auto TupSt = uafTuple(/*KillSwitch=*/true, OkSt);
  if (!OkMt || !OkSt || TupMt.empty() || TupMt != TupSt) {
    std::fprintf(stderr,
                 "FAIL: UAF violation tuples differ (mt %zu vs st %zu)\n",
                 TupMt.size(), TupSt.size());
    Ok = false;
  } else {
    std::printf("planted UAF: %zu violations, tuple identical at 4 threads "
                "and under JZ_MAX_GUEST_THREADS=1\n",
                TupMt.size());
  }

  if (!JsonPath.empty()) {
    FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    std::fprintf(F, "{");
    bool FirstField = true;
    for (const auto &[T, R] : Runs) {
      double Thr = R.Makespan ? static_cast<double>(R.Retired) /
                                    static_cast<double>(R.Makespan)
                              : 0.0;
      std::fprintf(F,
                   "%s\"jz.mt.%u.retired\":%llu,"
                   "\"jz.mt.%u.makespan_cycles\":%llu,"
                   "\"jz.mt.%u.retired_per_cycle\":%.4f,"
                   "\"jz.mt.%u.wall_micros\":%.0f",
                   FirstField ? "" : ",", T,
                   static_cast<unsigned long long>(R.Retired), T,
                   static_cast<unsigned long long>(R.Makespan), T, Thr, T,
                   R.WallMicros);
      FirstField = false;
    }
    std::fprintf(F,
                 ",\"jz.mt.iters_per_worker\":%u"
                 ",\"jz.mt.scaling_4\":%.3f"
                 ",\"jz.mt.uaf.violations\":%zu"
                 ",\"jz.mt.uaf.tuple_match\":%d}",
                 Iters, Scaling4, TupMt.size(),
                 (OkMt && OkSt && !TupMt.empty() && TupMt == TupSt) ? 1 : 0);
    std::fprintf(F, "\n");
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath.c_str());
  }
  return Ok ? 0 : 1;
}
