//===- bench/fig08_jasan_breakdown.cpp - Paper Figure 8 --------------------===//
///
/// Regenerates Figure 8: where JASan's overhead comes from — the null
/// client (pure DynamoRIO-style translation cost), JASan-hybrid with full
/// liveness optimization, JASan-hybrid "base" (conservative save/restore
/// of every register and flag the instrumentation touches), and JASan-dyn
/// (no static analysis at all). The full-vs-base delta is the §6.1.1
/// "27% improvement" effect.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>

using namespace janitizer;
using namespace janitizer::bench;

int main(int argc, char **argv) {
  unsigned Scale = argc > 1 ? static_cast<unsigned>(atoi(argv[1])) : 8;
  Table T("Figure 8: JASan overhead breakdown (slowdown vs native)",
          {"JASan-dyn", "hybrid-base", "hybrid-full", "Null client"});
  for (const BenchProfile &P : specProfiles()) {
    std::fprintf(stderr, "[fig08] %s...\n", P.Name.c_str());
    PreparedWorkload PW = prepare(P, Scale);
    T.addRow(P.Name, {
                         runJasanDyn(PW),
                         runJasanHybrid(PW, /*UseLiveness=*/false),
                         runJasanHybrid(PW, /*UseLiveness=*/true),
                         runNullClient(PW),
                     });
  }
  T.print();
  return 0;
}
