//===- bench/fig12_dynamic_air.cpp - Paper Figure 12 -----------------------===//
///
/// Regenerates Figure 12: dynamic AIR (average indirect-target reduction
/// over the indirect CTI sites actually executed, computed at program
/// termination) for Lockdown-Strong, JCFI-dyn, JCFI-hybrid and
/// Lockdown-Weak, plus the soundness side of §6.2.2: false positives per
/// configuration (Lockdown-Strong flags the register-passed qsort
/// comparators of gcc, h264ref and cactusADM).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"
#include "baselines/Lockdown.h"
#include "core/StaticAnalyzer.h"
#include "jcfi/Air.h"

#include <cstdio>

using namespace janitizer;
using namespace janitizer::bench;

namespace {

struct AirCell {
  bool Ok = false;
  double AirPct = 0.0;
  unsigned FalsePositives = 0;
};

AirCell lockdownAir(const PreparedWorkload &PW, bool Strong) {
  LockdownOptions Opts;
  Opts.StrongPolicy = Strong;
  LockdownRun R = runUnderLockdown(PW.W.Store, PW.W.ExeName, Opts, 1u << 30);
  AirCell C;
  if (R.Result.St != RunResult::Status::Exited)
    return C;
  C.Ok = true;
  C.AirPct = R.Air.Air * 100.0;
  C.FalsePositives = static_cast<unsigned>(R.Violations.size());
  return C;
}

AirCell jcfiAir(const PreparedWorkload &PW, bool Hybrid) {
  JcfiDatabase Db;
  RuleStore Rules;
  if (Hybrid) {
    StaticAnalyzer SA;
    JCFITool StaticTool(Db);
    StaticTool.setStaticOutput(&Db);
    Error E = SA.analyzeProgram(PW.W.Store, PW.W.ExeName, StaticTool, Rules,
                                PW.W.DlopenOnly);
    (void)E;
  }
  JCFITool Tool(Db);
  Process P(PW.W.Store);
  JanitizerDynamic Dyn(Tool, Rules);
  DbiEngine E(P, Dyn);
  AirCell C;
  if (P.loadProgram(PW.W.ExeName))
    return C;
  RunResult R = E.run(1u << 30);
  if (R.St != RunResult::Status::Exited)
    return C;
  AirResult Air = jcfiDynamicAir(Tool);
  C.Ok = true;
  C.AirPct = Air.Air * 100.0;
  C.FalsePositives = static_cast<unsigned>(E.violations().size());
  return C;
}

void printCell(const AirCell &C) {
  if (C.Ok)
    std::printf(" %11.3f%%", C.AirPct);
  else
    std::printf(" %12s", "x");
}

} // namespace

int main(int argc, char **argv) {
  unsigned Scale = argc > 1 ? static_cast<unsigned>(atoi(argv[1])) : 4;
  std::printf("\n== Figure 12: dynamic AIR (%% of indirect targets removed; "
              "higher is better) ==\n");
  std::printf("%-12s %12s %12s %12s %12s %6s\n", "benchmark", "Lockdown(S)",
              "JCFI-dyn", "JCFI-hybrid", "Lockdown(W)", "FPs(S)");
  double Sum[4] = {0, 0, 0, 0};
  unsigned N[4] = {0, 0, 0, 0};
  for (const BenchProfile &P : specProfiles()) {
    std::fprintf(stderr, "[fig12] %s...\n", P.Name.c_str());
    PreparedWorkload PW = prepare(P, Scale);
    AirCell Cells[4] = {
        lockdownAir(PW, /*Strong=*/true),
        jcfiAir(PW, /*Hybrid=*/false),
        jcfiAir(PW, /*Hybrid=*/true),
        lockdownAir(PW, /*Strong=*/false),
    };
    std::printf("%-12s", P.Name.c_str());
    for (unsigned K = 0; K < 4; ++K) {
      printCell(Cells[K]);
      if (Cells[K].Ok) {
        Sum[K] += Cells[K].AirPct;
        ++N[K];
      }
    }
    std::printf(" %6u\n", Cells[0].FalsePositives);
  }
  std::printf("%-12s", "mean");
  for (unsigned K = 0; K < 4; ++K) {
    if (N[K])
      std::printf(" %11.3f%%", Sum[K] / N[K]);
    else
      std::printf(" %12s", "x");
  }
  std::printf("\n(Lockdown-Strong false positives are the §6.2.2 qsort "
              "callback cases; its AIR is computed over the sites it could "
              "execute.)\n");
  return 0;
}
