//===- tests/jelf_torture_test.cpp - Hostile JELF input corpus -------------===//
///
/// \file
/// The module deserializer is the trust boundary for everything read from
/// disk or served over the rule-daemon wire, so it gets the fuzz-shaped
/// treatment: a seeded corpus of truncated, bit-flipped, stomped and
/// hand-crafted hostile blobs derived from real modules. Every mutation
/// must yield a clean ErrorOr error or a well-formed Module — never a
/// crash, hang, or count-driven allocation past the bytes that actually
/// follow (the ByteReader per-loop ok() idiom). The JZ_SANITIZE stage of
/// scripts/check.sh re-runs this file under ASan/UBSan, which is where
/// the "never crash" claim gets teeth.
///
//===----------------------------------------------------------------------===//

#include "TestWorkloads.h"

#include "jelf/Module.h"
#include "rewrite/AotRewriter.h"
#include "support/Endian.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace janitizer;
using namespace janitizer::testutil;

namespace {

/// A realistic module blob: the jlibc shared object carries sections,
/// exported symbols, and enough structure to make mutations interesting.
std::vector<uint8_t> jlibcBlob() {
  static const std::vector<uint8_t> Blob = cantFail(buildJlibc()).serialize();
  return Blob;
}

/// A program blob with imports/needed entries (the other record shapes).
std::vector<uint8_t> programBlob() {
  static const std::vector<uint8_t> Blob =
      mustAssemble(CanaryFrameProg).serialize();
  return Blob;
}

/// An AOT-rewriter output blob: tier-enter stubs, retained original code
/// demoted to rodata, remapped symbols — the shapes a rewritten module
/// ships to disk, which the deserializer must survive mutated too.
std::vector<uint8_t> aotBlob() {
  static const std::vector<uint8_t> Blob = [] {
    Module Libc = cantFail(buildJlibc());
    return cantFail(aotRewriteModule(Libc, nullptr, "jasan"))
        .NewMod.serialize();
  }();
  return Blob;
}

/// One hostile-input probe: deserialize must return — the assertions on
/// the result are secondary to simply surviving the call.
void expectCleanError(const std::vector<uint8_t> &Blob, const char *What) {
  ErrorOr<Module> M = Module::deserialize(Blob);
  EXPECT_FALSE(static_cast<bool>(M)) << What;
  if (!M)
    EXPECT_FALSE(M.takeError().message().empty()) << What;
}

} // namespace

TEST(JelfTorture, SaneBaselineRoundTrips) {
  // The corpus generator is only meaningful if the unmutated blobs parse.
  ErrorOr<Module> L = Module::deserialize(jlibcBlob());
  ASSERT_TRUE(static_cast<bool>(L)) << L.message();
  ErrorOr<Module> P = Module::deserialize(programBlob());
  ASSERT_TRUE(static_cast<bool>(P)) << P.message();
  ErrorOr<Module> A = Module::deserialize(aotBlob());
  ASSERT_TRUE(static_cast<bool>(A)) << A.message();
  EXPECT_EQ(L->serialize(), jlibcBlob());
  EXPECT_EQ(P->serialize(), programBlob());
  EXPECT_EQ(A->serialize(), aotBlob());
}

TEST(JelfTorture, TruncationSweepAlwaysCleanError) {
  // Every proper prefix of a valid blob must be rejected: the format has
  // no trailing slack, so a truncation always cuts a field in half or
  // starves a count-driven loop.
  for (const auto &Blob : {jlibcBlob(), programBlob(), aotBlob()}) {
    // Exhaustive over the header region, strided over the bulk.
    for (size_t Len = 0; Len < Blob.size();
         Len += (Len < 256 ? 1 : 7)) {
      std::vector<uint8_t> Cut(Blob.begin(), Blob.begin() + Len);
      expectCleanError(Cut, "truncation");
    }
  }
}

TEST(JelfTorture, SeededBitFlipsNeverCrash) {
  // ~2000 single-bit flips per blob. A flip may still parse (a bit in a
  // string or section byte is semantically inert) — the contract is no
  // crash, no hang, no wild allocation; errors must carry a message.
  for (const auto &Blob : {jlibcBlob(), programBlob(), aotBlob()}) {
    SplitMix64 Rng(0x6a656c66746f7274ull); // "jelftort"
    for (int I = 0; I < 2000; ++I) {
      std::vector<uint8_t> Mut = Blob;
      size_t Byte = Rng.below(Mut.size());
      Mut[Byte] ^= static_cast<uint8_t>(1u << Rng.below(8));
      ErrorOr<Module> M = Module::deserialize(Mut);
      if (!M)
        EXPECT_FALSE(M.takeError().message().empty()) << "flip " << I;
    }
  }
}

TEST(JelfTorture, StompedRegionsNeverCrash) {
  // 16-byte 0xFF stomps at every strided offset: maximal length/count
  // fields wherever they land. 0xFFFFFFFF counts must die on the
  // per-iteration ok() guard, not allocate 4 G records.
  for (const auto &Blob : {jlibcBlob(), programBlob(), aotBlob()}) {
    for (size_t Off = 0; Off + 16 <= Blob.size(); Off += 11) {
      std::vector<uint8_t> Mut = Blob;
      std::fill(Mut.begin() + Off, Mut.begin() + Off + 16, 0xFF);
      ErrorOr<Module> M = Module::deserialize(Mut);
      if (!M)
        EXPECT_FALSE(M.takeError().message().empty()) << "stomp @" << Off;
    }
  }
}

TEST(JelfTorture, HostileNameLengthRejected) {
  // The module-name length field sits at payload offset 8 (after magic
  // and version). A 4 GiB claim with no bytes behind it must fail the
  // bounds check, never reserve the claimed size.
  std::vector<uint8_t> Mut = jlibcBlob();
  ASSERT_GE(Mut.size(), 12u);
  patchLE32(Mut, 8, 0xFFFFFFFFu);
  expectCleanError(Mut, "hostile name length");

  // Same claim as the whole blob: magic + version + lying length.
  std::vector<uint8_t> Tiny;
  Tiny.resize(12);
  patchLE32(Tiny, 0, 0x464C454Au);
  patchLE32(Tiny, 4, 1u);
  patchLE32(Tiny, 8, 0x7FFFFFFFu);
  expectCleanError(Tiny, "lying tiny blob");
}

TEST(JelfTorture, WrongMagicAndVersionRejected) {
  std::vector<uint8_t> BadMagic = jlibcBlob();
  BadMagic[0] ^= 0xFF;
  ErrorOr<Module> M1 = Module::deserialize(BadMagic);
  ASSERT_FALSE(static_cast<bool>(M1));
  EXPECT_NE(M1.takeError().message().find("magic"), std::string::npos);

  std::vector<uint8_t> BadVersion = jlibcBlob();
  patchLE32(BadVersion, 4, 0xDEADu);
  ErrorOr<Module> M2 = Module::deserialize(BadVersion);
  ASSERT_FALSE(static_cast<bool>(M2));
  EXPECT_NE(M2.takeError().message().find("version"), std::string::npos);
}

TEST(JelfTorture, EmptyAndMicroscopicBlobsRejected) {
  expectCleanError({}, "empty");
  expectCleanError({0x4A}, "one byte");
  expectCleanError({0x4A, 0x45, 0x4C, 0x46}, "magic only (wrong order)");
  std::vector<uint8_t> MagicOnly(4);
  patchLE32(MagicOnly, 0, 0x464C454Au);
  expectCleanError(MagicOnly, "magic, nothing else");
}
