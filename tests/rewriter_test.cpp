//===- tests/rewriter_test.cpp - Static rewriting engine tests ------------===//

#include "baselines/StaticRewriter.h"
#include "core/JanitizerDynamic.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"
#include "support/Endian.h"
#include "vm/Process.h"

#include <gtest/gtest.h>

using namespace janitizer;

namespace {

Module mustAssemble(const std::string &Src) {
  auto M = assembleModule(Src);
  if (!M) {
    ADD_FAILURE() << M.message();
    return Module();
  }
  return *M;
}

/// A client that inserts nothing: rewriting must be behaviour preserving
/// (all the address fix-up machinery, none of the instrumentation).
class IdentityClient : public RewriteClient {
public:
  explicit IdentityClient(DisasmMode M) : Mode(M) {}
  DisasmMode disasmMode() const override { return Mode; }

private:
  DisasmMode Mode;
};

/// A client that pads every instruction with NOPs, forcing all addresses
/// to move (stress for branch/pcrel/table fix-ups).
class PaddingClient : public RewriteClient {
public:
  explicit PaddingClient(DisasmMode M) : Mode(M) {}
  DisasmMode disasmMode() const override { return Mode; }
  InsertSeq instrumentBefore(const Module &, const Instruction &,
                             uint64_t) override {
    InsertSeq Seq;
    for (int K = 0; K < 3; ++K) {
      SeqInstr S;
      S.I.Op = Opcode::NOP;
      Seq.push_back(S);
    }
    return Seq;
  }

private:
  DisasmMode Mode;
};

const char *RichProgram = R"(
  .module prog
  .entry main
  .needed libjz.so
  .extern malloc
  .extern free
  .extern qsort
  .extern print_u64
  .section data
  arr:
    .word8 7
    .word8 3
    .word8 5
  ftable:
    .quad op_a
    .quad op_b
  .section rodata
  jt:
    .quad case0
    .quad case1
  .section text
  .func cmp_asc
  cmp_asc:
    sub r0, r1
    ret
  .endfunc
  .func op_a
  op_a:
    addi r0, 2
    ret
  .endfunc
  .func op_b
  op_b:
    muli r0, 2
    ret
  .endfunc
  .func dispatch
  dispatch:
    andi r0, 1
    la r1, jt
    jmpm [r1 + r0*8]
  case0:
    movi r0, 100
    jmp dend
  case1:
    movi r0, 200
  dend:
    ret
  .endfunc
  .func main
  main:
    la r0, arr
    movi r1, 3
    movi r2, 8
    la r3, cmp_asc
    call qsort
    la r5, arr
    ld8 r9, [r5]         ; 3
    la r5, ftable
    ld8 r6, [r5 + 8]
    movi r0, 4
    callr r6             ; op_b: 8
    add r9, r0
    movi r0, 1
    call dispatch        ; 200
    add r9, r0
    movi r0, 16
    call malloc
    mov r10, r0
    st8 [r10], r9
    ld8 r0, [r10]
    call free?           ; (typo guard: not used)
    syscall 0
  .endfunc
)";

std::string fixedProgram() {
  std::string S = RichProgram;
  // remove the deliberate syntax marker line
  size_t P = S.find("call free?");
  S.replace(P, std::string("call free?           ; (typo guard: not used)")
                   .size(),
            "");
  return S;
}

int runStore(ModuleStore &Store, const std::string &Exe, std::string *Out) {
  Process P(Store);
  Error E = P.loadProgram(Exe);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  RunResult R = P.runNative(100'000'000);
  EXPECT_EQ(R.St, RunResult::Status::Exited) << R.FaultMsg;
  if (Out)
    *Out = P.output();
  return R.ExitCode;
}

class RewriteModes : public ::testing::TestWithParam<DisasmMode> {};

TEST_P(RewriteModes, IdentityRewritePreservesBehaviour) {
  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  Store.add(mustAssemble(fixedProgram()));
  int Ref = runStore(Store, "prog", nullptr);

  IdentityClient Client(GetParam());
  auto RW = rewriteModule(*Store.find("prog"), Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  ModuleStore Store2;
  Store2.add(cantFail(buildJlibc()));
  Store2.add(RW->NewMod);
  EXPECT_EQ(runStore(Store2, "prog", nullptr), Ref);
}

TEST_P(RewriteModes, PaddedRewritePreservesBehaviour) {
  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  Store.add(mustAssemble(fixedProgram()));
  int Ref = runStore(Store, "prog", nullptr);

  PaddingClient Client(GetParam());
  auto RW = rewriteModule(*Store.find("prog"), Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  EXPECT_GT(RW->Instructions, 30u);
  ModuleStore Store2;
  Store2.add(cantFail(buildJlibc()));
  Store2.add(RW->NewMod);
  EXPECT_EQ(runStore(Store2, "prog", nullptr), Ref)
      << "3x NOP padding must not change behaviour";
}

INSTANTIATE_TEST_SUITE_P(Modes, RewriteModes,
                         ::testing::Values(DisasmMode::LinearSweep),
                         [](const ::testing::TestParamInfo<DisasmMode> &) {
                           return std::string("sweep");
                         });

TEST(Rewriter, RecursiveIdentityOnPicModule) {
  // Recursive mode needs relocation-guided coverage: the PIC build carries
  // Rebase64 relocs for its tables.
  Module Libc = cantFail(buildJlibc());
  IdentityClient Client(DisasmMode::Recursive);
  auto RW = rewriteModule(Libc, Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  // Symbols moved into the fresh region.
  const Symbol *Malloc = RW->NewMod.findExported("malloc");
  ASSERT_NE(Malloc, nullptr);
  EXPECT_GT(Malloc->Value, Libc.linkEnd());
  EXPECT_TRUE(RW->OldToNew.count(Libc.findExported("malloc")->Value));

  // The rewritten libc still works.
  ModuleStore Store;
  Store.add(RW->NewMod);
  Store.add(mustAssemble(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern print_u64
    .func main
    main:
      movi r0, 8
      call malloc
      mov r9, r0
      movi r1, 4242
      st8 [r9], r1
      ld8 r0, [r9]
      call print_u64
      movi r0, 0
      syscall 0
    .endfunc
  )"));
  std::string Out;
  EXPECT_EQ(runStore(Store, "prog", &Out), 0);
  EXPECT_EQ(Out, "4242");
}

TEST(Rewriter, EntryAndRelocRemapping) {
  Module M = mustAssemble(R"(
    .module m.so
    .pic
    .shared
    .entry start
    .section data
    fp: .quad start
    .section text
    .global start
    .func start
    start:
      movi r0, 1
      ret
    .endfunc
  )");
  IdentityClient Client(DisasmMode::Recursive);
  auto RW = rewriteModule(M, Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  EXPECT_NE(RW->NewMod.Entry, M.Entry);
  EXPECT_EQ(RW->NewMod.Entry, RW->OldToNew.at(M.Entry));
  // The data-held function pointer's rebase reloc was remapped.
  bool Found = false;
  for (const Relocation &R : RW->NewMod.DynRelocs)
    if (R.Kind == RelocKind::Rebase64 &&
        static_cast<uint64_t>(R.Addend) == RW->NewMod.Entry)
      Found = true;
  EXPECT_TRUE(Found) << "function-pointer reloc must follow the move";
}

TEST(Rewriter, SweepRoutesUnmappedTargetsToTrapStub) {
  // An island ending in a long-opcode byte desynchronizes the sweep; the
  // branch into the swallowed code gets routed to the trap stub.
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      jmp after
    .endfunc
    .island 16 3
    .func after
    after:
      movi r0, 5
      syscall 0
    .endfunc
  )");
  IdentityClient Client(DisasmMode::LinearSweep);
  auto RW = rewriteModule(M, Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  EXPECT_TRUE(RW->SweepResynced);
  // Depending on where the island desynchronizes, 'after' may or may not
  // decode at its true boundary; the contract is just: the rewrite always
  // produces *something* and TrapStubVA exists in the module.
  EXPECT_TRUE(RW->NewMod.isCodeAddress(RW->TrapStubVA));
}

//===----------------------------------------------------------------------===//
// Rule-file loading robustness
//===----------------------------------------------------------------------===//

RuleFile sampleRuleFile() {
  RuleFile RF;
  RF.ModuleName = "m.so";
  RF.ToolName = "jasan";
  RewriteRule R1;
  R1.Id = RuleId::AsanCheck;
  R1.BBAddr = 0x100;
  R1.InstrAddr = 0x108;
  RewriteRule R2;
  R2.Id = RuleId::NoOp;
  R2.BBAddr = 0x200;
  R2.InstrAddr = 0x200;
  RF.Rules = {R1, R2};
  return RF;
}

TEST(RuleFileRobustness, ZeroRuleRoundTrip) {
  RuleFile RF;
  RF.ModuleName = "empty.so";
  RF.ToolName = "jcfi";
  auto Back = RuleFile::deserialize(RF.serialize());
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(Back->ModuleName, "empty.so");
  EXPECT_EQ(Back->ToolName, "jcfi");
  EXPECT_TRUE(Back->Rules.empty());
}

TEST(RuleFileRobustness, BadMagicRejected) {
  std::vector<uint8_t> Blob = sampleRuleFile().serialize();
  Blob[0] ^= 0xFF;
  EXPECT_FALSE(static_cast<bool>(RuleFile::deserialize(Blob)));
  EXPECT_FALSE(static_cast<bool>(RuleFile::deserialize({})));
}

TEST(RuleFileRobustness, EveryTruncationRejected) {
  std::vector<uint8_t> Blob = sampleRuleFile().serialize();
  for (size_t Cut = 0; Cut < Blob.size(); ++Cut) {
    std::vector<uint8_t> Short(Blob.begin(), Blob.begin() + Cut);
    EXPECT_FALSE(static_cast<bool>(RuleFile::deserialize(Short)))
        << "truncation at " << Cut << " must be rejected";
  }
}

TEST(RuleFileRobustness, OutOfRangeRuleIdRejected) {
  RuleFile RF = sampleRuleFile();
  std::vector<uint8_t> Blob = RF.serialize();
  // The first rule record starts after magic + the two length-prefixed
  // strings + the rule count; its leading uint16 is the rule id.
  size_t IdOff = 4 + 4 + RF.ModuleName.size() + 4 + RF.ToolName.size() + 4;
  ASSERT_EQ(readLE16(Blob.data() + IdOff),
            static_cast<uint16_t>(RuleId::AsanCheck));
  Blob[IdOff] = 0xE7; // id 999
  Blob[IdOff + 1] = 0x03;
  auto Bad = RuleFile::deserialize(Blob);
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_NE(Bad.message().find("invalid rule id 999"), std::string::npos)
      << Bad.message();

  // The largest defined id must still load.
  Blob[IdOff] = static_cast<uint8_t>(MaxRuleIdValue);
  Blob[IdOff + 1] = 0;
  EXPECT_TRUE(static_cast<bool>(RuleFile::deserialize(Blob)));
}

//===----------------------------------------------------------------------===//
// Module-indexed rule dispatch
//===----------------------------------------------------------------------===//

/// Instrumentation-free plug-in: the dispatch tests only exercise
/// classification and rule lookup.
class StubSecurityTool : public SecurityTool {
public:
  std::string name() const override { return "stub"; }
  void runStaticPass(const StaticContext &, RuleFile &) override {}
  void instrumentWithRules(
      JanitizerDynamic &, CacheBlock &, BlockBuilder &B,
      const std::vector<DecodedInstrRT> &Instrs,
      const std::unordered_map<uint64_t, std::vector<RewriteRule>> &) override {
    for (const DecodedInstrRT &DI : Instrs)
      B.app(DI.I, DI.Addr);
  }
  void instrumentFallback(JanitizerDynamic &, CacheBlock &, BlockBuilder &B,
                          const std::vector<DecodedInstrRT> &Instrs) override {
    for (const DecodedInstrRT &DI : Instrs)
      B.app(DI.I, DI.Addr);
  }
};

/// Two PIC shared objects with identical link-time layout (both link at
/// base 0) plus a host executable calling into both: the classic case the
/// per-module tables exist for — the same link-time rule address means
/// different things in different modules once slides are applied.
struct TwoModuleFixture {
  ModuleStore Store;
  RuleStore Rules;
  StubSecurityTool Tool;
  uint64_t FnLinkVA = 0; ///< link VA of fa == link VA of fb

  TwoModuleFixture() {
    auto Lib = [](char Tag, int Ret) {
      std::string S = R"(
        .module X.so
        .pic
        .shared
        .global fX
        .func fX
        fX:
          movi r0, RET
          ret
        .endfunc
      )";
      for (size_t P = S.find('X'); P != std::string::npos; P = S.find('X'))
        S[P] = Tag;
      S.replace(S.find("RET"), 3, std::to_string(Ret));
      return S;
    };
    Store.add(mustAssemble(Lib('a', 10)));
    Store.add(mustAssemble(Lib('b', 20)));
    Store.add(mustAssemble(R"(
      .module host
      .entry main
      .needed a.so
      .needed b.so
      .extern fa
      .extern fb
      .func main
      main:
        call fa
        mov r9, r0
        call fb
        add r9, r0
        mov r0, r9
        syscall 0
      .endfunc
    )"));

    uint64_t FaVA = Store.find("a.so")->findExported("fa")->Value;
    uint64_t FbVA = Store.find("b.so")->findExported("fb")->Value;
    EXPECT_EQ(FaVA, FbVA) << "fixture wants overlapping link-time addresses";
    FnLinkVA = FaVA;

    Rules.add(ruleFileFor("a.so", 0xAA));
    Rules.add(ruleFileFor("b.so", 0xBB));
  }

  RuleFile ruleFileFor(const std::string &Mod, uint64_t Payload) const {
    RuleFile RF;
    RF.ModuleName = Mod;
    RF.ToolName = "stub";
    RewriteRule R;
    R.Id = RuleId::AsanCheck;
    R.BBAddr = FnLinkVA;
    R.InstrAddr = FnLinkVA;
    R.Data[0] = Payload;
    RF.Rules.push_back(R);
    return RF;
  }
};

TEST(ModuleIndexedDispatch, ClassifiesAcrossOverlappingModules) {
  TwoModuleFixture F;
  Process P(F.Store);
  JanitizerDynamic Dyn(F.Tool, F.Rules);
  DbiEngine E(P, Dyn);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("host")));

  const LoadedModule *A = P.moduleByName("a.so");
  const LoadedModule *B = P.moduleByName("b.so");
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  ASSERT_NE(A->Slide, B->Slide) << "PIC modules must get distinct slides";
  uint64_t ART = A->toRuntime(F.FnLinkVA);
  uint64_t BRT = B->toRuntime(F.FnLinkVA);
  ASSERT_NE(ART, BRT);

  // Exact-start hits resolve to the owning module's table.
  EXPECT_TRUE(Dyn.staticallySeen(ART));
  EXPECT_TRUE(Dyn.staticallySeen(BRT));
  const std::vector<RewriteRule> *AR = Dyn.rulesForInstr(ART);
  ASSERT_NE(AR, nullptr);
  EXPECT_EQ((*AR)[0].Data[0], 0xAAu);
  const std::vector<RewriteRule> *BR = Dyn.rulesForInstr(BRT);
  ASSERT_NE(BR, nullptr);
  EXPECT_EQ((*BR)[0].Data[0], 0xBBu);

  // Mid-block and rule-less-module addresses classify as dynamic.
  EXPECT_FALSE(Dyn.staticallySeen(ART + 1));
  uint64_t HostMain = P.moduleByName("host")->toRuntime(
      F.Store.find("host")->findExported("main") != nullptr
          ? F.Store.find("host")->findExported("main")->Value
          : F.Store.find("host")->Entry);
  EXPECT_FALSE(Dyn.staticallySeen(HostMain));

  // Counters saw all of the above (coverage() returns a snapshot).
  CoverageStats Cov = Dyn.coverage();
  EXPECT_EQ(Cov.RuleLookups, 6u);
  EXPECT_EQ(Cov.RuleHits, 4u);
  EXPECT_EQ(Cov.RuleFallbacks, 2u);
  ASSERT_EQ(Cov.Modules.size(), 2u);
  EXPECT_EQ(Cov.Modules[0].Rules, 1u);
  EXPECT_EQ(Cov.Modules[1].Rules, 1u);

  // End-to-end: the statically seen blocks take the rule path, everything
  // else (host, trampoline, PLT) falls back.
  RunResult R = E.run();
  ASSERT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 30);
  Cov = Dyn.coverage();
  EXPECT_GE(Cov.StaticBlocks, 2u);
  EXPECT_GE(Cov.DynamicBlocks, 1u);
}

TEST(ModuleIndexedDispatch, ReloadReplacesRulesAtomically) {
  TwoModuleFixture F;
  Process P(F.Store);
  JanitizerDynamic Dyn(F.Tool, F.Rules);
  DbiEngine E(P, Dyn);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("host")));

  const LoadedModule *A = P.moduleByName("a.so");
  ASSERT_NE(A, nullptr);
  const RuleTable *T = Dyn.moduleTable(A->Id);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->ruleCount(), 1u);

  // Re-delivering the load event must replace, not append.
  Dyn.onModuleLoad(E, *A);
  Dyn.onModuleLoad(E, *A);
  T = Dyn.moduleTable(A->Id);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->ruleCount(), 1u);
  unsigned Entries = 0;
  for (const CoverageStats::ModuleRuleInfo &MI : Dyn.coverage().Modules)
    if (MI.Id == A->Id)
      ++Entries;
  EXPECT_EQ(Entries, 1u);
  EXPECT_TRUE(Dyn.staticallySeen(A->toRuntime(F.FnLinkVA)));
}

TEST(ModuleIndexedDispatch, UnloadStopsRulesFromMatching) {
  TwoModuleFixture F;
  Process P(F.Store);
  JanitizerDynamic Dyn(F.Tool, F.Rules);
  DbiEngine E(P, Dyn);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("host")));

  RunResult R = E.run();
  ASSERT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 30);

  const LoadedModule *A = P.moduleByName("a.so");
  const LoadedModule *B = P.moduleByName("b.so");
  uint64_t ART = A->toRuntime(F.FnLinkVA);
  uint64_t BRT = B->toRuntime(F.FnLinkVA);
  unsigned BId = B->Id;
  ASSERT_TRUE(Dyn.staticallySeen(BRT));

  ASSERT_FALSE(static_cast<bool>(P.unloadModule("b.so")));
  EXPECT_FALSE(Dyn.staticallySeen(BRT))
      << "an unloaded module's rules must stop matching";
  EXPECT_EQ(Dyn.rulesForInstr(BRT), nullptr);
  EXPECT_EQ(Dyn.moduleTable(BId), nullptr);
  EXPECT_TRUE(Dyn.staticallySeen(ART)) << "other modules are unaffected";
  ASSERT_EQ(Dyn.coverage().Modules.size(), 1u);
  EXPECT_EQ(Dyn.coverage().Modules[0].Name, "a.so");
}

TEST(Rewriter, ImmediateSymbolizationHeuristic) {
  // A movq materializing a code address is remapped by the sweep-mode
  // heuristic (and a data value that happens to match is too — the
  // §2.1 undecidability, exercised but not "fixed").
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func target
    target:
      movi r0, 77
      ret
    .endfunc
    .func main
    main:
      movq r1, =target
      callr r1
      syscall 0
    .endfunc
  )");
  IdentityClient Client(DisasmMode::LinearSweep);
  auto RW = rewriteModule(M, Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  ModuleStore Store;
  Store.add(RW->NewMod);
  Process P(Store);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("m")));
  RunResult R = P.runNative(1'000'000);
  ASSERT_EQ(R.St, RunResult::Status::Exited) << R.FaultMsg;
  EXPECT_EQ(R.ExitCode, 77);
}

} // namespace
