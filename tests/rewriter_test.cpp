//===- tests/rewriter_test.cpp - Static rewriting engine tests ------------===//

#include "baselines/StaticRewriter.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"
#include "vm/Process.h"

#include <gtest/gtest.h>

using namespace janitizer;

namespace {

Module mustAssemble(const std::string &Src) {
  auto M = assembleModule(Src);
  if (!M) {
    ADD_FAILURE() << M.message();
    return Module();
  }
  return *M;
}

/// A client that inserts nothing: rewriting must be behaviour preserving
/// (all the address fix-up machinery, none of the instrumentation).
class IdentityClient : public RewriteClient {
public:
  explicit IdentityClient(DisasmMode M) : Mode(M) {}
  DisasmMode disasmMode() const override { return Mode; }

private:
  DisasmMode Mode;
};

/// A client that pads every instruction with NOPs, forcing all addresses
/// to move (stress for branch/pcrel/table fix-ups).
class PaddingClient : public RewriteClient {
public:
  explicit PaddingClient(DisasmMode M) : Mode(M) {}
  DisasmMode disasmMode() const override { return Mode; }
  InsertSeq instrumentBefore(const Module &, const Instruction &,
                             uint64_t) override {
    InsertSeq Seq;
    for (int K = 0; K < 3; ++K) {
      SeqInstr S;
      S.I.Op = Opcode::NOP;
      Seq.push_back(S);
    }
    return Seq;
  }

private:
  DisasmMode Mode;
};

const char *RichProgram = R"(
  .module prog
  .entry main
  .needed libjz.so
  .extern malloc
  .extern free
  .extern qsort
  .extern print_u64
  .section data
  arr:
    .word8 7
    .word8 3
    .word8 5
  ftable:
    .quad op_a
    .quad op_b
  .section rodata
  jt:
    .quad case0
    .quad case1
  .section text
  .func cmp_asc
  cmp_asc:
    sub r0, r1
    ret
  .endfunc
  .func op_a
  op_a:
    addi r0, 2
    ret
  .endfunc
  .func op_b
  op_b:
    muli r0, 2
    ret
  .endfunc
  .func dispatch
  dispatch:
    andi r0, 1
    la r1, jt
    jmpm [r1 + r0*8]
  case0:
    movi r0, 100
    jmp dend
  case1:
    movi r0, 200
  dend:
    ret
  .endfunc
  .func main
  main:
    la r0, arr
    movi r1, 3
    movi r2, 8
    la r3, cmp_asc
    call qsort
    la r5, arr
    ld8 r9, [r5]         ; 3
    la r5, ftable
    ld8 r6, [r5 + 8]
    movi r0, 4
    callr r6             ; op_b: 8
    add r9, r0
    movi r0, 1
    call dispatch        ; 200
    add r9, r0
    movi r0, 16
    call malloc
    mov r10, r0
    st8 [r10], r9
    ld8 r0, [r10]
    call free?           ; (typo guard: not used)
    syscall 0
  .endfunc
)";

std::string fixedProgram() {
  std::string S = RichProgram;
  // remove the deliberate syntax marker line
  size_t P = S.find("call free?");
  S.replace(P, std::string("call free?           ; (typo guard: not used)")
                   .size(),
            "");
  return S;
}

int runStore(ModuleStore &Store, const std::string &Exe, std::string *Out) {
  Process P(Store);
  Error E = P.loadProgram(Exe);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  RunResult R = P.runNative(100'000'000);
  EXPECT_EQ(R.St, RunResult::Status::Exited) << R.FaultMsg;
  if (Out)
    *Out = P.output();
  return R.ExitCode;
}

class RewriteModes : public ::testing::TestWithParam<DisasmMode> {};

TEST_P(RewriteModes, IdentityRewritePreservesBehaviour) {
  ModuleStore Store;
  Store.add(buildJlibc());
  Store.add(mustAssemble(fixedProgram()));
  int Ref = runStore(Store, "prog", nullptr);

  IdentityClient Client(GetParam());
  auto RW = rewriteModule(*Store.find("prog"), Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  ModuleStore Store2;
  Store2.add(buildJlibc());
  Store2.add(RW->NewMod);
  EXPECT_EQ(runStore(Store2, "prog", nullptr), Ref);
}

TEST_P(RewriteModes, PaddedRewritePreservesBehaviour) {
  ModuleStore Store;
  Store.add(buildJlibc());
  Store.add(mustAssemble(fixedProgram()));
  int Ref = runStore(Store, "prog", nullptr);

  PaddingClient Client(GetParam());
  auto RW = rewriteModule(*Store.find("prog"), Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  EXPECT_GT(RW->Instructions, 30u);
  ModuleStore Store2;
  Store2.add(buildJlibc());
  Store2.add(RW->NewMod);
  EXPECT_EQ(runStore(Store2, "prog", nullptr), Ref)
      << "3x NOP padding must not change behaviour";
}

INSTANTIATE_TEST_SUITE_P(Modes, RewriteModes,
                         ::testing::Values(DisasmMode::LinearSweep),
                         [](const ::testing::TestParamInfo<DisasmMode> &) {
                           return std::string("sweep");
                         });

TEST(Rewriter, RecursiveIdentityOnPicModule) {
  // Recursive mode needs relocation-guided coverage: the PIC build carries
  // Rebase64 relocs for its tables.
  Module Libc = buildJlibc();
  IdentityClient Client(DisasmMode::Recursive);
  auto RW = rewriteModule(Libc, Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  // Symbols moved into the fresh region.
  const Symbol *Malloc = RW->NewMod.findExported("malloc");
  ASSERT_NE(Malloc, nullptr);
  EXPECT_GT(Malloc->Value, Libc.linkEnd());
  EXPECT_TRUE(RW->OldToNew.count(Libc.findExported("malloc")->Value));

  // The rewritten libc still works.
  ModuleStore Store;
  Store.add(RW->NewMod);
  Store.add(mustAssemble(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern print_u64
    .func main
    main:
      movi r0, 8
      call malloc
      mov r9, r0
      movi r1, 4242
      st8 [r9], r1
      ld8 r0, [r9]
      call print_u64
      movi r0, 0
      syscall 0
    .endfunc
  )"));
  std::string Out;
  EXPECT_EQ(runStore(Store, "prog", &Out), 0);
  EXPECT_EQ(Out, "4242");
}

TEST(Rewriter, EntryAndRelocRemapping) {
  Module M = mustAssemble(R"(
    .module m.so
    .pic
    .shared
    .entry start
    .section data
    fp: .quad start
    .section text
    .global start
    .func start
    start:
      movi r0, 1
      ret
    .endfunc
  )");
  IdentityClient Client(DisasmMode::Recursive);
  auto RW = rewriteModule(M, Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  EXPECT_NE(RW->NewMod.Entry, M.Entry);
  EXPECT_EQ(RW->NewMod.Entry, RW->OldToNew.at(M.Entry));
  // The data-held function pointer's rebase reloc was remapped.
  bool Found = false;
  for (const Relocation &R : RW->NewMod.DynRelocs)
    if (R.Kind == RelocKind::Rebase64 &&
        static_cast<uint64_t>(R.Addend) == RW->NewMod.Entry)
      Found = true;
  EXPECT_TRUE(Found) << "function-pointer reloc must follow the move";
}

TEST(Rewriter, SweepRoutesUnmappedTargetsToTrapStub) {
  // An island ending in a long-opcode byte desynchronizes the sweep; the
  // branch into the swallowed code gets routed to the trap stub.
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      jmp after
    .endfunc
    .island 16 3
    .func after
    after:
      movi r0, 5
      syscall 0
    .endfunc
  )");
  IdentityClient Client(DisasmMode::LinearSweep);
  auto RW = rewriteModule(M, Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  EXPECT_TRUE(RW->SweepResynced);
  // Depending on where the island desynchronizes, 'after' may or may not
  // decode at its true boundary; the contract is just: the rewrite always
  // produces *something* and TrapStubVA exists in the module.
  EXPECT_TRUE(RW->NewMod.isCodeAddress(RW->TrapStubVA));
}

TEST(Rewriter, ImmediateSymbolizationHeuristic) {
  // A movq materializing a code address is remapped by the sweep-mode
  // heuristic (and a data value that happens to match is too — the
  // §2.1 undecidability, exercised but not "fixed").
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func target
    target:
      movi r0, 77
      ret
    .endfunc
    .func main
    main:
      movq r1, =target
      callr r1
      syscall 0
    .endfunc
  )");
  IdentityClient Client(DisasmMode::LinearSweep);
  auto RW = rewriteModule(M, Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  ModuleStore Store;
  Store.add(RW->NewMod);
  Process P(Store);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("m")));
  RunResult R = P.runNative(1'000'000);
  ASSERT_EQ(R.St, RunResult::Status::Exited) << R.FaultMsg;
  EXPECT_EQ(R.ExitCode, 77);
}

} // namespace
