//===- tests/rewriter_test.cpp - Static rewriting engine tests ------------===//

#include "baselines/StaticRewriter.h"
#include "core/JanitizerDynamic.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"
#include "support/Endian.h"
#include "vm/Process.h"

#include <gtest/gtest.h>

using namespace janitizer;

namespace {

Module mustAssemble(const std::string &Src) {
  auto M = assembleModule(Src);
  if (!M) {
    ADD_FAILURE() << M.message();
    return Module();
  }
  return *M;
}

/// A client that inserts nothing: rewriting must be behaviour preserving
/// (all the address fix-up machinery, none of the instrumentation).
class IdentityClient : public RewriteClient {
public:
  explicit IdentityClient(DisasmMode M) : Mode(M) {}
  DisasmMode disasmMode() const override { return Mode; }

private:
  DisasmMode Mode;
};

/// A client that pads every instruction with NOPs, forcing all addresses
/// to move (stress for branch/pcrel/table fix-ups).
class PaddingClient : public RewriteClient {
public:
  explicit PaddingClient(DisasmMode M) : Mode(M) {}
  DisasmMode disasmMode() const override { return Mode; }
  InsertSeq instrumentBefore(const Module &, const Instruction &,
                             uint64_t) override {
    InsertSeq Seq;
    for (int K = 0; K < 3; ++K) {
      SeqInstr S;
      S.I.Op = Opcode::NOP;
      Seq.push_back(S);
    }
    return Seq;
  }

private:
  DisasmMode Mode;
};

const char *RichProgram = R"(
  .module prog
  .entry main
  .needed libjz.so
  .extern malloc
  .extern free
  .extern qsort
  .extern print_u64
  .section data
  arr:
    .word8 7
    .word8 3
    .word8 5
  ftable:
    .quad op_a
    .quad op_b
  .section rodata
  jt:
    .quad case0
    .quad case1
  .section text
  .func cmp_asc
  cmp_asc:
    sub r0, r1
    ret
  .endfunc
  .func op_a
  op_a:
    addi r0, 2
    ret
  .endfunc
  .func op_b
  op_b:
    muli r0, 2
    ret
  .endfunc
  .func dispatch
  dispatch:
    andi r0, 1
    la r1, jt
    jmpm [r1 + r0*8]
  case0:
    movi r0, 100
    jmp dend
  case1:
    movi r0, 200
  dend:
    ret
  .endfunc
  .func main
  main:
    la r0, arr
    movi r1, 3
    movi r2, 8
    la r3, cmp_asc
    call qsort
    la r5, arr
    ld8 r9, [r5]         ; 3
    la r5, ftable
    ld8 r6, [r5 + 8]
    movi r0, 4
    callr r6             ; op_b: 8
    add r9, r0
    movi r0, 1
    call dispatch        ; 200
    add r9, r0
    movi r0, 16
    call malloc
    mov r10, r0
    st8 [r10], r9
    ld8 r0, [r10]
    call free?           ; (typo guard: not used)
    syscall 0
  .endfunc
)";

std::string fixedProgram() {
  std::string S = RichProgram;
  // remove the deliberate syntax marker line
  size_t P = S.find("call free?");
  S.replace(P, std::string("call free?           ; (typo guard: not used)")
                   .size(),
            "");
  return S;
}

int runStore(ModuleStore &Store, const std::string &Exe, std::string *Out) {
  Process P(Store);
  Error E = P.loadProgram(Exe);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  RunResult R = P.runNative(100'000'000);
  EXPECT_EQ(R.St, RunResult::Status::Exited) << R.FaultMsg;
  if (Out)
    *Out = P.output();
  return R.ExitCode;
}

class RewriteModes : public ::testing::TestWithParam<DisasmMode> {};

TEST_P(RewriteModes, IdentityRewritePreservesBehaviour) {
  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  Store.add(mustAssemble(fixedProgram()));
  int Ref = runStore(Store, "prog", nullptr);

  IdentityClient Client(GetParam());
  auto RW = rewriteModule(*Store.find("prog"), Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  ModuleStore Store2;
  Store2.add(cantFail(buildJlibc()));
  Store2.add(RW->NewMod);
  EXPECT_EQ(runStore(Store2, "prog", nullptr), Ref);
}

TEST_P(RewriteModes, PaddedRewritePreservesBehaviour) {
  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  Store.add(mustAssemble(fixedProgram()));
  int Ref = runStore(Store, "prog", nullptr);

  PaddingClient Client(GetParam());
  auto RW = rewriteModule(*Store.find("prog"), Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  EXPECT_GT(RW->Instructions, 30u);
  ModuleStore Store2;
  Store2.add(cantFail(buildJlibc()));
  Store2.add(RW->NewMod);
  EXPECT_EQ(runStore(Store2, "prog", nullptr), Ref)
      << "3x NOP padding must not change behaviour";
}

INSTANTIATE_TEST_SUITE_P(Modes, RewriteModes,
                         ::testing::Values(DisasmMode::LinearSweep),
                         [](const ::testing::TestParamInfo<DisasmMode> &) {
                           return std::string("sweep");
                         });

TEST(Rewriter, RecursiveIdentityOnPicModule) {
  // Recursive mode needs relocation-guided coverage: the PIC build carries
  // Rebase64 relocs for its tables.
  Module Libc = cantFail(buildJlibc());
  IdentityClient Client(DisasmMode::Recursive);
  auto RW = rewriteModule(Libc, Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  // Symbols moved into the fresh region.
  const Symbol *Malloc = RW->NewMod.findExported("malloc");
  ASSERT_NE(Malloc, nullptr);
  EXPECT_GT(Malloc->Value, Libc.linkEnd());
  EXPECT_TRUE(RW->OldToNew.count(Libc.findExported("malloc")->Value));

  // The rewritten libc still works.
  ModuleStore Store;
  Store.add(RW->NewMod);
  Store.add(mustAssemble(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern print_u64
    .func main
    main:
      movi r0, 8
      call malloc
      mov r9, r0
      movi r1, 4242
      st8 [r9], r1
      ld8 r0, [r9]
      call print_u64
      movi r0, 0
      syscall 0
    .endfunc
  )"));
  std::string Out;
  EXPECT_EQ(runStore(Store, "prog", &Out), 0);
  EXPECT_EQ(Out, "4242");
}

TEST(Rewriter, EntryAndRelocRemapping) {
  Module M = mustAssemble(R"(
    .module m.so
    .pic
    .shared
    .entry start
    .section data
    fp: .quad start
    .section text
    .global start
    .func start
    start:
      movi r0, 1
      ret
    .endfunc
  )");
  IdentityClient Client(DisasmMode::Recursive);
  auto RW = rewriteModule(M, Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  EXPECT_NE(RW->NewMod.Entry, M.Entry);
  EXPECT_EQ(RW->NewMod.Entry, RW->OldToNew.at(M.Entry));
  // The data-held function pointer's rebase reloc was remapped.
  bool Found = false;
  for (const Relocation &R : RW->NewMod.DynRelocs)
    if (R.Kind == RelocKind::Rebase64 &&
        static_cast<uint64_t>(R.Addend) == RW->NewMod.Entry)
      Found = true;
  EXPECT_TRUE(Found) << "function-pointer reloc must follow the move";
}

TEST(Rewriter, SweepRoutesUnmappedTargetsToTrapStub) {
  // An island ending in a long-opcode byte desynchronizes the sweep; the
  // branch into the swallowed code gets routed to the trap stub.
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      jmp after
    .endfunc
    .island 16 3
    .func after
    after:
      movi r0, 5
      syscall 0
    .endfunc
  )");
  IdentityClient Client(DisasmMode::LinearSweep);
  auto RW = rewriteModule(M, Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  EXPECT_TRUE(RW->SweepResynced);
  // Depending on where the island desynchronizes, 'after' may or may not
  // decode at its true boundary; the contract is just: the rewrite always
  // produces *something* and TrapStubVA exists in the module.
  EXPECT_TRUE(RW->NewMod.isCodeAddress(RW->TrapStubVA));
}

//===----------------------------------------------------------------------===//
// Emission-corruption regressions: each of these produced a silently
// wrong binary before the fix (truncated metadata, stale symbol sizes,
// an entry point left in the vacated region).
//===----------------------------------------------------------------------===//

/// Declares an 8-byte extra section but builds 16 bytes of content — the
/// shape of a client whose shadow-table size estimate went stale.
class OverflowingExtraClient : public RewriteClient {
public:
  DisasmMode disasmMode() const override { return DisasmMode::LinearSweep; }
  unsigned extraSectionCount() const override { return 1; }
  uint64_t extraSectionSize(unsigned, const Module &) override { return 8; }
  std::vector<uint8_t>
  buildExtraSection(unsigned, const Module &, const Module &,
                    const std::map<uint64_t, uint64_t> &) override {
    return std::vector<uint8_t>(16, 0xAB);
  }
};

TEST(Rewriter, ExtraSectionOverflowIsRefusedNotTruncated) {
  // Used to be silently truncated to the declared size: the lost tail is
  // live metadata (shadow bytes, CFI bitmaps) and the rewritten binary
  // would misbehave only when the dropped entries were consulted.
  Module M = mustAssemble(fixedProgram());
  OverflowingExtraClient Client;
  auto RW = rewriteModule(M, Client);
  ASSERT_FALSE(static_cast<bool>(RW))
      << "oversized extra-section content must refuse, not truncate";
  EXPECT_NE(RW.message().find("refusing to truncate"), std::string::npos)
      << RW.message();
}

TEST(Rewriter, RemappedSymbolSizeTracksNewExtent) {
  // Symbols used to keep their old-layout Size after their Value was
  // remapped; with instrumentation inflating every function, the stale
  // size made each symbol span unrelated code.
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func f
    f:
      addi r0, 1
      addi r0, 2
      addi r0, 3
      ret
    .endfunc
    .func main
    main:
      movi r0, 4
      call f
      syscall 0
    .endfunc
  )");
  const Symbol *OldF = M.findSymbol("f");
  const Symbol *OldMain = M.findSymbol("main");
  ASSERT_NE(OldF, nullptr);
  ASSERT_NE(OldMain, nullptr);
  ASSERT_GT(OldF->Size, 0u);

  PaddingClient Client(DisasmMode::LinearSweep);
  auto RW = rewriteModule(M, Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  const Symbol *NewF = RW->NewMod.findSymbol("f");
  const Symbol *NewMain = RW->NewMod.findSymbol("main");
  ASSERT_NE(NewF, nullptr);
  ASSERT_NE(NewMain, nullptr);

  // 3 NOPs per instruction: the new extent is strictly larger than the
  // old one (the stale-size bug kept them equal) ...
  EXPECT_GT(NewF->Size, OldF->Size);
  EXPECT_GT(NewMain->Size, OldMain->Size);
  // ... covers f's last remapped instruction (its ret, the last old
  // address inside the old extent) ...
  auto LastIt = RW->OldToNew.upper_bound(OldF->Value + OldF->Size - 1);
  ASSERT_NE(LastIt, RW->OldToNew.begin());
  --LastIt;
  ASSERT_GE(LastIt->first, OldF->Value);
  EXPECT_GT(NewF->Value + NewF->Size, LastIt->second);
  // ... and never runs into the next function.
  EXPECT_LE(NewF->Value + NewF->Size, NewMain->Value);
}

TEST(Rewriter, PicEntryAtLinkZeroIsRemapped) {
  // Link VA 0 is a legal PIC entry; the remap used to treat a zero entry
  // as "absent", keep the stale original, and the loader jumped into the
  // vacated region.
  Module M = mustAssemble(R"(
    .module prog
    .pic
    .entry main
    .func main
    main:
      movi r0, 23
      syscall 0
    .endfunc
  )");
  ASSERT_EQ(M.Entry, 0u) << "fixture wants the entry at link VA 0";
  IdentityClient Client(DisasmMode::LinearSweep);
  auto RW = rewriteModule(M, Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  ASSERT_TRUE(RW->OldToNew.count(0));
  EXPECT_EQ(RW->NewMod.Entry, RW->OldToNew.at(0));
  EXPECT_NE(RW->NewMod.Entry, 0u);

  ModuleStore Store;
  Store.add(RW->NewMod);
  EXPECT_EQ(runStore(Store, "prog", nullptr), 23);
}

TEST(Rewriter, EntrySwallowedBySweepIsAHardError) {
  // An island directly before the entry function can desynchronize the
  // sweep across the entry head. Whatever the island bytes decode to, the
  // invariant is: the rewrite either maps the entry into the fresh region
  // or refuses — it never emits a module whose entry still points at the
  // vacated original code (that was the silent-corruption bug).
  bool SawRefusal = false;
  for (unsigned Seed = 1; Seed <= 12 && !SawRefusal; ++Seed) {
    Module M = mustAssemble(R"(
      .module m
      .entry main
      .func pre
      pre:
        movi r0, 1
        ret
      .endfunc
      .island 16 )" + std::to_string(Seed) + R"(
      .func main
      main:
        movi r0, 5
        syscall 0
      .endfunc
    )");
    IdentityClient Client(DisasmMode::LinearSweep);
    auto RW = rewriteModule(M, Client);
    if (!RW) {
      EXPECT_NE(RW.message().find("vacated"), std::string::npos)
          << RW.message();
      SawRefusal = true;
      continue;
    }
    ASSERT_TRUE(RW->OldToNew.count(M.Entry))
        << "a successful rewrite must have remapped the entry";
    EXPECT_EQ(RW->NewMod.Entry, RW->OldToNew.at(M.Entry));
  }
  EXPECT_TRUE(SawRefusal)
      << "no island seed desynchronized the sweep across the entry; the "
         "refusal path was not exercised";
}

//===----------------------------------------------------------------------===//
// Rule-file loading robustness
//===----------------------------------------------------------------------===//

RuleFile sampleRuleFile() {
  RuleFile RF;
  RF.ModuleName = "m.so";
  RF.ToolName = "jasan";
  RewriteRule R1;
  R1.Id = RuleId::AsanCheck;
  R1.BBAddr = 0x100;
  R1.InstrAddr = 0x108;
  RewriteRule R2;
  R2.Id = RuleId::NoOp;
  R2.BBAddr = 0x200;
  R2.InstrAddr = 0x200;
  RF.Rules = {R1, R2};
  return RF;
}

TEST(RuleFileRobustness, ZeroRuleRoundTrip) {
  RuleFile RF;
  RF.ModuleName = "empty.so";
  RF.ToolName = "jcfi";
  auto Back = RuleFile::deserialize(RF.serialize());
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(Back->ModuleName, "empty.so");
  EXPECT_EQ(Back->ToolName, "jcfi");
  EXPECT_TRUE(Back->Rules.empty());
}

TEST(RuleFileRobustness, BadMagicRejected) {
  std::vector<uint8_t> Blob = sampleRuleFile().serialize();
  Blob[0] ^= 0xFF;
  EXPECT_FALSE(static_cast<bool>(RuleFile::deserialize(Blob)));
  EXPECT_FALSE(static_cast<bool>(RuleFile::deserialize({})));
}

TEST(RuleFileRobustness, EveryTruncationRejected) {
  std::vector<uint8_t> Blob = sampleRuleFile().serialize();
  for (size_t Cut = 0; Cut < Blob.size(); ++Cut) {
    std::vector<uint8_t> Short(Blob.begin(), Blob.begin() + Cut);
    EXPECT_FALSE(static_cast<bool>(RuleFile::deserialize(Short)))
        << "truncation at " << Cut << " must be rejected";
  }
}

TEST(RuleFileRobustness, OutOfRangeRuleIdRejected) {
  RuleFile RF = sampleRuleFile();
  std::vector<uint8_t> Blob = RF.serialize();
  // The first rule record starts after magic + the two length-prefixed
  // strings + the rule count; its leading uint16 is the rule id.
  size_t IdOff = 4 + 4 + RF.ModuleName.size() + 4 + RF.ToolName.size() + 4;
  ASSERT_EQ(readLE16(Blob.data() + IdOff),
            static_cast<uint16_t>(RuleId::AsanCheck));
  Blob[IdOff] = 0xE7; // id 999
  Blob[IdOff + 1] = 0x03;
  auto Bad = RuleFile::deserialize(Blob);
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_NE(Bad.message().find("invalid rule id 999"), std::string::npos)
      << Bad.message();

  // The largest defined id must still load.
  Blob[IdOff] = static_cast<uint8_t>(MaxRuleIdValue);
  Blob[IdOff + 1] = 0;
  EXPECT_TRUE(static_cast<bool>(RuleFile::deserialize(Blob)));
}

//===----------------------------------------------------------------------===//
// Module-indexed rule dispatch
//===----------------------------------------------------------------------===//

/// Instrumentation-free plug-in: the dispatch tests only exercise
/// classification and rule lookup.
class StubSecurityTool : public SecurityTool {
public:
  std::string name() const override { return "stub"; }
  void runStaticPass(const StaticContext &, RuleFile &) override {}
  void instrumentWithRules(
      JanitizerDynamic &, CacheBlock &, BlockBuilder &B,
      const std::vector<DecodedInstrRT> &Instrs,
      const std::unordered_map<uint64_t, std::vector<RewriteRule>> &) override {
    for (const DecodedInstrRT &DI : Instrs)
      B.app(DI.I, DI.Addr);
  }
  void instrumentFallback(JanitizerDynamic &, CacheBlock &, BlockBuilder &B,
                          const std::vector<DecodedInstrRT> &Instrs) override {
    for (const DecodedInstrRT &DI : Instrs)
      B.app(DI.I, DI.Addr);
  }
};

/// Two PIC shared objects with identical link-time layout (both link at
/// base 0) plus a host executable calling into both: the classic case the
/// per-module tables exist for — the same link-time rule address means
/// different things in different modules once slides are applied.
struct TwoModuleFixture {
  ModuleStore Store;
  RuleStore Rules;
  StubSecurityTool Tool;
  uint64_t FnLinkVA = 0; ///< link VA of fa == link VA of fb

  TwoModuleFixture() {
    auto Lib = [](char Tag, int Ret) {
      std::string S = R"(
        .module X.so
        .pic
        .shared
        .global fX
        .func fX
        fX:
          movi r0, RET
          ret
        .endfunc
      )";
      for (size_t P = S.find('X'); P != std::string::npos; P = S.find('X'))
        S[P] = Tag;
      S.replace(S.find("RET"), 3, std::to_string(Ret));
      return S;
    };
    Store.add(mustAssemble(Lib('a', 10)));
    Store.add(mustAssemble(Lib('b', 20)));
    Store.add(mustAssemble(R"(
      .module host
      .entry main
      .needed a.so
      .needed b.so
      .extern fa
      .extern fb
      .func main
      main:
        call fa
        mov r9, r0
        call fb
        add r9, r0
        mov r0, r9
        syscall 0
      .endfunc
    )"));

    uint64_t FaVA = Store.find("a.so")->findExported("fa")->Value;
    uint64_t FbVA = Store.find("b.so")->findExported("fb")->Value;
    EXPECT_EQ(FaVA, FbVA) << "fixture wants overlapping link-time addresses";
    FnLinkVA = FaVA;

    Rules.add(ruleFileFor("a.so", 0xAA));
    Rules.add(ruleFileFor("b.so", 0xBB));
  }

  RuleFile ruleFileFor(const std::string &Mod, uint64_t Payload) const {
    RuleFile RF;
    RF.ModuleName = Mod;
    RF.ToolName = "stub";
    RewriteRule R;
    R.Id = RuleId::AsanCheck;
    R.BBAddr = FnLinkVA;
    R.InstrAddr = FnLinkVA;
    R.Data[0] = Payload;
    RF.Rules.push_back(R);
    return RF;
  }
};

TEST(ModuleIndexedDispatch, ClassifiesAcrossOverlappingModules) {
  TwoModuleFixture F;
  Process P(F.Store);
  JanitizerDynamic Dyn(F.Tool, F.Rules);
  DbiEngine E(P, Dyn);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("host")));

  const LoadedModule *A = P.moduleByName("a.so");
  const LoadedModule *B = P.moduleByName("b.so");
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  ASSERT_NE(A->Slide, B->Slide) << "PIC modules must get distinct slides";
  uint64_t ART = A->toRuntime(F.FnLinkVA);
  uint64_t BRT = B->toRuntime(F.FnLinkVA);
  ASSERT_NE(ART, BRT);

  // Exact-start hits resolve to the owning module's table.
  EXPECT_TRUE(Dyn.staticallySeen(ART));
  EXPECT_TRUE(Dyn.staticallySeen(BRT));
  const std::vector<RewriteRule> *AR = Dyn.rulesForInstr(ART);
  ASSERT_NE(AR, nullptr);
  EXPECT_EQ((*AR)[0].Data[0], 0xAAu);
  const std::vector<RewriteRule> *BR = Dyn.rulesForInstr(BRT);
  ASSERT_NE(BR, nullptr);
  EXPECT_EQ((*BR)[0].Data[0], 0xBBu);

  // Mid-block and rule-less-module addresses classify as dynamic.
  EXPECT_FALSE(Dyn.staticallySeen(ART + 1));
  uint64_t HostMain = P.moduleByName("host")->toRuntime(
      F.Store.find("host")->findExported("main") != nullptr
          ? F.Store.find("host")->findExported("main")->Value
          : F.Store.find("host")->Entry);
  EXPECT_FALSE(Dyn.staticallySeen(HostMain));

  // Counters saw all of the above (coverage() returns a snapshot).
  CoverageStats Cov = Dyn.coverage();
  EXPECT_EQ(Cov.RuleLookups, 6u);
  EXPECT_EQ(Cov.RuleHits, 4u);
  EXPECT_EQ(Cov.RuleFallbacks, 2u);
  ASSERT_EQ(Cov.Modules.size(), 2u);
  EXPECT_EQ(Cov.Modules[0].Rules, 1u);
  EXPECT_EQ(Cov.Modules[1].Rules, 1u);

  // End-to-end: the statically seen blocks take the rule path, everything
  // else (host, trampoline, PLT) falls back.
  RunResult R = E.run();
  ASSERT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 30);
  Cov = Dyn.coverage();
  EXPECT_GE(Cov.StaticBlocks, 2u);
  EXPECT_GE(Cov.DynamicBlocks, 1u);
}

TEST(ModuleIndexedDispatch, ReloadReplacesRulesAtomically) {
  TwoModuleFixture F;
  Process P(F.Store);
  JanitizerDynamic Dyn(F.Tool, F.Rules);
  DbiEngine E(P, Dyn);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("host")));

  const LoadedModule *A = P.moduleByName("a.so");
  ASSERT_NE(A, nullptr);
  const RuleTable *T = Dyn.moduleTable(A->Id);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->ruleCount(), 1u);

  // Re-delivering the load event must replace, not append.
  Dyn.onModuleLoad(E, *A);
  Dyn.onModuleLoad(E, *A);
  T = Dyn.moduleTable(A->Id);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->ruleCount(), 1u);
  unsigned Entries = 0;
  for (const CoverageStats::ModuleRuleInfo &MI : Dyn.coverage().Modules)
    if (MI.Id == A->Id)
      ++Entries;
  EXPECT_EQ(Entries, 1u);
  EXPECT_TRUE(Dyn.staticallySeen(A->toRuntime(F.FnLinkVA)));
}

TEST(ModuleIndexedDispatch, UnloadStopsRulesFromMatching) {
  TwoModuleFixture F;
  Process P(F.Store);
  JanitizerDynamic Dyn(F.Tool, F.Rules);
  DbiEngine E(P, Dyn);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("host")));

  RunResult R = E.run();
  ASSERT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 30);

  const LoadedModule *A = P.moduleByName("a.so");
  const LoadedModule *B = P.moduleByName("b.so");
  uint64_t ART = A->toRuntime(F.FnLinkVA);
  uint64_t BRT = B->toRuntime(F.FnLinkVA);
  unsigned BId = B->Id;
  ASSERT_TRUE(Dyn.staticallySeen(BRT));

  ASSERT_FALSE(static_cast<bool>(P.unloadModule("b.so")));
  EXPECT_FALSE(Dyn.staticallySeen(BRT))
      << "an unloaded module's rules must stop matching";
  EXPECT_EQ(Dyn.rulesForInstr(BRT), nullptr);
  EXPECT_EQ(Dyn.moduleTable(BId), nullptr);
  EXPECT_TRUE(Dyn.staticallySeen(ART)) << "other modules are unaffected";
  ASSERT_EQ(Dyn.coverage().Modules.size(), 1u);
  EXPECT_EQ(Dyn.coverage().Modules[0].Name, "a.so");
}

TEST(Rewriter, ImmediateSymbolizationHeuristic) {
  // A movq materializing a code address is remapped by the sweep-mode
  // heuristic (and a data value that happens to match is too — the
  // §2.1 undecidability, exercised but not "fixed").
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func target
    target:
      movi r0, 77
      ret
    .endfunc
    .func main
    main:
      movq r1, =target
      callr r1
      syscall 0
    .endfunc
  )");
  IdentityClient Client(DisasmMode::LinearSweep);
  auto RW = rewriteModule(M, Client);
  ASSERT_TRUE(static_cast<bool>(RW)) << RW.message();
  ModuleStore Store;
  Store.add(RW->NewMod);
  Process P(Store);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("m")));
  RunResult R = P.runNative(1'000'000);
  ASSERT_EQ(R.St, RunResult::Status::Exited) << R.FaultMsg;
  EXPECT_EQ(R.ExitCode, 77);
}

} // namespace
