//===- tests/property_test.cpp - Property-based invariants ----------------===//
///
/// Parameterized sweeps over randomized inputs:
///  - printer->assembler->encoder round trips on random instructions;
///  - shadow-memory poison/unpoison algebra for every size;
///  - instrumentation transparency: random generated programs compute the
///    same result natively and under every Janitizer configuration;
///  - AIR results stay inside [0, 1].
///
//===----------------------------------------------------------------------===//

#include "core/StaticAnalyzer.h"
#include "isa/Encoding.h"
#include "isa/Printer.h"
#include "jasan/JASan.h"
#include "jasan/Shadow.h"
#include "jasm/AsmBuilder.h"
#include "jasm/Assembler.h"
#include "jcfi/Air.h"
#include "runtime/Jlibc.h"
#include "support/Random.h"

#include "TestWorkloads.h"

#include <gtest/gtest.h>

using namespace janitizer;
using testutil::randomProgram;

namespace {

//===--------------------------------------------------------------------===//
// Printer/assembler round trip
//===--------------------------------------------------------------------===//

class PrintParseRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(PrintParseRoundTrip, NonBranchInstructions) {
  SplitMix64 Rng(GetParam() * 40487 + 7);
  static const Opcode Ops[] = {
      Opcode::NOP,     Opcode::MOV_RR,  Opcode::MOV_RI32, Opcode::LEA,
      Opcode::LD1,     Opcode::LD2,     Opcode::LD4,      Opcode::LD8,
      Opcode::ST1,     Opcode::ST2,     Opcode::ST4,      Opcode::ST8,
      Opcode::ADD,     Opcode::SUB,     Opcode::AND,      Opcode::OR,
      Opcode::XOR,     Opcode::SHL,     Opcode::SHR,      Opcode::MUL,
      Opcode::DIV,     Opcode::CMP,     Opcode::TEST,     Opcode::ADDI,
      Opcode::SUBI,    Opcode::ANDI,    Opcode::ORI,      Opcode::XORI,
      Opcode::SHLI,    Opcode::SHRI,    Opcode::MULI,     Opcode::CMPI,
      Opcode::TESTI,   Opcode::CALLR,   Opcode::JMPR,     Opcode::RET,
      Opcode::PUSH,    Opcode::POP,     Opcode::PUSHF,    Opcode::POPF,
      Opcode::SYSCALL, Opcode::PUSHI64, Opcode::TRAP,     Opcode::CALLM,
      Opcode::JMPM,    Opcode::MOV_RI64};
  for (int K = 0; K < 200; ++K) {
    Instruction I;
    I.Op = Ops[Rng.below(sizeof(Ops) / sizeof(Ops[0]))];
    I.Rd = static_cast<Reg>(Rng.below(16));
    I.Rs = static_cast<Reg>(Rng.below(16));
    switch (I.Op) {
    case Opcode::MOV_RI64:
    case Opcode::PUSHI64:
      I.Imm = static_cast<int64_t>(Rng.next());
      break;
    case Opcode::SYSCALL:
    case Opcode::TRAP:
      I.Imm = static_cast<int64_t>(Rng.below(256));
      break;
    default:
      I.Imm = static_cast<int32_t>(Rng.next());
      break;
    }
    if (hasMemOperand(I.Op)) {
      I.Imm = 0;
      I.Mem.HasBase = Rng.chancePercent(70);
      I.Mem.Base = static_cast<Reg>(Rng.below(16));
      I.Mem.HasIndex = Rng.chancePercent(40);
      I.Mem.Index = static_cast<Reg>(Rng.below(16));
      I.Mem.ScaleLog2 =
          I.Mem.HasIndex ? static_cast<uint8_t>(Rng.below(4)) : 0;
      I.Mem.PCRel = !I.Mem.HasBase && !I.Mem.HasIndex;
      // The assembler accepts plain absolute displacements only when
      // non-negative (addresses); register forms accept any int32.
      I.Mem.Disp = (I.Mem.HasBase || I.Mem.HasIndex || I.Mem.PCRel)
                       ? static_cast<int32_t>(Rng.next())
                       : static_cast<int32_t>(Rng.below(1 << 30));
    }

    std::string Text = printInstruction(I);
    std::string Src = ".module m\n.func f\nf:\n  " + Text + "\n.endfunc\n";
    auto M = assembleModule(Src);
    ASSERT_TRUE(static_cast<bool>(M)) << Text << ": " << M.message();
    const Section *S = M->section(SectionKind::Text);
    ASSERT_NE(S, nullptr);
    Instruction D;
    ASSERT_TRUE(decode(S->Bytes.data(), S->Bytes.size(), D)) << Text;
    EXPECT_EQ(printInstruction(D), Text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrintParseRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

//===--------------------------------------------------------------------===//
// Shadow-memory algebra
//===--------------------------------------------------------------------===//

class ShadowSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShadowSizes, PreciseUnpoisonBoundary) {
  unsigned Len = GetParam();
  GuestMemory Mem;
  ShadowManager Shadow(Mem);
  uint64_t Base = 0x8000100; // 8-aligned heap address
  // Poison a wide region, then open exactly [Base, Base+Len).
  Shadow.poison(Base - 64, Len + 128, shadowval::HeapRedzone);
  Shadow.unpoison(Base, Len);

  // Every single byte inside is addressable.
  for (uint64_t A = Base; A < Base + Len; ++A)
    EXPECT_FALSE(Shadow.isInvalidAccess(A, 1)) << "byte " << (A - Base);
  // The byte immediately past the end is not.
  EXPECT_TRUE(Shadow.isInvalidAccess(Base + Len, 1));
  // The byte immediately before is not.
  EXPECT_TRUE(Shadow.isInvalidAccess(Base - 1, 1));
  // An 8-byte access straddling the end: ASan's check consults only the
  // *first* granule's shadow byte, so the straddle is caught exactly when
  // the access starts inside the partial final granule (Len % 8 >= 5) —
  // the documented ASan unaligned-access false-negative class.
  if (Len >= 8) {
    EXPECT_EQ(Shadow.isInvalidAccess(Base + Len - 4, 8), (Len % 8) >= 5);
  }
  // Re-poisoning closes it again.
  Shadow.poison(Base, Len, shadowval::HeapFreed);
  EXPECT_TRUE(Shadow.isInvalidAccess(Base, 1));
}

INSTANTIATE_TEST_SUITE_P(Lens, ShadowSizes,
                         ::testing::Values(1u, 2u, 3u, 7u, 8u, 9u, 13u, 16u,
                                           24u, 31u, 32u, 33u, 48u, 63u,
                                           64u));

TEST(ShadowZeroLength, PoisonAndUnpoisonAreNoOps) {
  GuestMemory Mem;
  ShadowManager Shadow(Mem);
  // Zero-length poison at an unaligned address used to compute the granule
  // range as [Addr>>3, (Addr-1)>>3] and wrongly poison the enclosing
  // granule; at Addr == 0 the end underflowed to the top of the address
  // space and the loop walked (effectively) the whole shadow.
  Shadow.poison(0x8000105, 0, shadowval::HeapRedzone);
  EXPECT_FALSE(Shadow.isInvalidAccess(0x8000100, 8));
  Shadow.poison(0, 0, shadowval::HeapRedzone);
  Shadow.unpoison(0, 0);
  EXPECT_FALSE(Shadow.isInvalidAccess(0x8000100, 8));
  // Zero-length reads are vacuously valid; neighbouring poison is kept.
  Shadow.poison(0x8000200, 8, shadowval::HeapFreed);
  Shadow.unpoison(0x8000200, 0);
  EXPECT_TRUE(Shadow.isInvalidAccess(0x8000200, 1));
}

//===--------------------------------------------------------------------===//
// Instrumentation transparency fuzzing
//===--------------------------------------------------------------------===//

// randomProgram lives in TestWorkloads.h so the differential tests can
// replay the exact same generated programs.

class Transparency : public ::testing::TestWithParam<unsigned> {};

TEST_P(Transparency, RandomProgramsUnchangedUnderInstrumentation) {
  std::string Src = randomProgram(GetParam() * 2654435761u + 17);
  ModuleStore Store;
  testutil::addProgramWithJlibc(Store, Src);

  Process Native(Store);
  ASSERT_FALSE(static_cast<bool>(Native.loadProgram("fuzz")));
  RunResult Ref = Native.runNative(50'000'000);
  ASSERT_EQ(Ref.St, RunResult::Status::Exited);

  RuleStore Rules;
  StaticAnalyzer SA;
  JASanTool StaticTool;
  ASSERT_FALSE(static_cast<bool>(
      SA.analyzeProgram(Store, "fuzz", StaticTool, Rules)));

  for (bool Liveness : {true, false}) {
    JASanOptions Opts;
    Opts.UseLiveness = Liveness;
    JASanTool Tool(Opts);
    JanitizerRun R = runUnderJanitizer(Store, "fuzz", Tool, Rules);
    ASSERT_EQ(R.Result.St, RunResult::Status::Exited)
        << "liveness=" << Liveness << ": " << R.Result.FaultMsg;
    EXPECT_EQ(R.Result.ExitCode, Ref.ExitCode)
        << "seed " << GetParam() << " liveness=" << Liveness;
    EXPECT_TRUE(R.Violations.empty())
        << "false positive on seed " << GetParam() << ": "
        << R.Violations[0].What;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Transparency, ::testing::Range(1u, 17u));

//===--------------------------------------------------------------------===//
// AIR bounds
//===--------------------------------------------------------------------===//

TEST(AirBounds, AlwaysWithinUnitInterval) {
  for (unsigned Seed = 1; Seed <= 4; ++Seed) {
    std::string Src = randomProgram(Seed * 977);
    ModuleStore Store;
    testutil::addProgramWithJlibc(Store, Src);
    std::vector<const Module *> Mods = {Store.find("fuzz"),
                                        Store.find("libjz.so")};
    AirResult R = jcfiStaticAir(Mods);
    EXPECT_GE(R.Air, 0.0);
    EXPECT_LE(R.Air, 1.0);
    EXPECT_GT(R.Sites, 0u);
  }
}

} // namespace
