//===- tests/jasan_test.cpp - JASan end-to-end tests -----------------------===//

#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"

#include <gtest/gtest.h>

using namespace janitizer;

namespace {

Module mustAssemble(const std::string &Src) {
  auto M = assembleModule(Src);
  if (!M) {
    ADD_FAILURE() << M.message();
    return Module();
  }
  return *M;
}

struct JasanHarness {
  ModuleStore Store;
  RuleStore Rules;

  explicit JasanHarness(const std::string &ExeSrc, bool Hybrid = true,
                        JASanOptions Opts = {}) {
    Store.add(cantFail(buildJlibc()));
    Store.add(mustAssemble(ExeSrc));
    if (Hybrid) {
      StaticAnalyzer SA;
      JASanTool StaticTool(Opts);
      Error E = SA.analyzeProgram(Store, "prog", StaticTool, Rules);
      EXPECT_FALSE(static_cast<bool>(E)) << E.message();
    }
    this->Opts = Opts;
  }

  JanitizerRun run() {
    JASanTool Tool(Opts);
    return runUnderJanitizer(Store, "prog", Tool, Rules, 100'000'000);
  }

  JASanOptions Opts;
};

//===--------------------------------------------------------------------===//
// Correct programs must stay correct under instrumentation.
//===--------------------------------------------------------------------===//

const char *WellBehaved = R"(
  .module prog
  .entry main
  .needed libjz.so
  .extern malloc
  .extern free
  .extern memset
  .extern qsort
  .section data
  arr:
    .word8 4
    .word8 2
    .word8 3
    .word8 1
  .section text
  .func cmp_asc
  cmp_asc:
    sub r0, r1
    ret
  .endfunc
  .func main
  main:
    ; heap round trip
    movi r0, 64
    call malloc
    mov r9, r0
    movi r1, 0xAB
    movi r2, 64
    call memset
    ld1 r10, [r9 + 63]     ; last valid byte
    mov r0, r9
    call free
    ; sort with a callback
    la r0, arr
    movi r1, 4
    movi r2, 8
    la r3, cmp_asc
    call qsort
    la r5, arr
    ld8 r0, [r5]           ; 1
    add r0, r10            ; + 0xAB = 172
    syscall 0
  .endfunc
)";

TEST(JASan, HybridPreservesCorrectPrograms) {
  JasanHarness H(WellBehaved);
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  EXPECT_EQ(R.Result.ExitCode, 172);
  EXPECT_TRUE(R.Violations.empty())
      << "false positive: " << R.Violations[0].What;
}

TEST(JASan, DynOnlyPreservesCorrectPrograms) {
  JasanHarness H(WellBehaved, /*Hybrid=*/false);
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  EXPECT_EQ(R.Result.ExitCode, 172);
  EXPECT_TRUE(R.Violations.empty());
}

TEST(JASan, HybridFasterThanDynOnly) {
  JasanHarness Hybrid(WellBehaved, true);
  JasanHarness Dyn(WellBehaved, false);
  JanitizerRun RH = Hybrid.run();
  JanitizerRun RD = Dyn.run();
  ASSERT_EQ(RH.Result.St, RunResult::Status::Exited);
  ASSERT_EQ(RD.Result.St, RunResult::Status::Exited);
  EXPECT_LT(RH.Result.Cycles, RD.Result.Cycles)
      << "static liveness + eliding must reduce overhead";
  // Coverage: the hybrid run sees nearly everything statically.
  EXPECT_GT(RH.Coverage.StaticBlocks, 0u);
  EXPECT_LT(RH.Coverage.dynamicFraction(), 0.2);
  // The dyn-only run classifies everything as dynamic.
  EXPECT_EQ(RD.Coverage.StaticBlocks, 0u);
}

//===--------------------------------------------------------------------===//
// Detection
//===--------------------------------------------------------------------===//

TEST(JASan, DetectsHeapOverflowRead) {
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .func main
    main:
      movi r0, 32
      call malloc
      ld8 r1, [r0 + 32]    ; one past the end -> red zone
      movi r0, 0
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited);
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "heap-redzone");
}

TEST(JASan, DetectsHeapOverflowWrite) {
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .func main
    main:
      movi r0, 16
      call malloc
      movi r1, 7
      st8 [r0 + 24], r1    ; past the end
      movi r0, 0
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "heap-redzone");
}

TEST(JASan, DetectsHeapUnderflow) {
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .func main
    main:
      movi r0, 16
      call malloc
      ld8 r1, [r0 - 8]
      movi r0, 0
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "heap-redzone");
}

TEST(JASan, DetectsUseAfterFree) {
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern free
    .func main
    main:
      movi r0, 32
      call malloc
      mov r9, r0
      call free
      ld8 r1, [r9]         ; UAF
      movi r0, 0
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "heap-use-after-free");
}

TEST(JASan, OverlappingMemmoveIsCleanAndCorrect) {
  // The interposed memmove performs a buffered copy, so an overlapping
  // in-bounds move must neither trip the shadow check nor corrupt data.
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern memmove
    .func main
    main:
      push r9
      movi r0, 64
      call malloc
      mov r9, r0
      movi r5, 0
    init:
      cmpi r5, 10
      je init_done
      mov r6, r5
      addi r6, 1
      st1 [r9 + r5], r6
      addi r5, 1
      jmp init
    init_done:
      mov r0, r9
      addi r0, 4
      mov r1, r9
      movi r2, 10
      call memmove        ; dst above src, ranges overlap
      ld1 r5, [r9 + 8]    ; a forward copy would leave 1 here, not 5
      ld1 r6, [r9 + 13]
      add r5, r6          ; 5 + 10
      mov r0, r5
      pop r9
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  EXPECT_EQ(R.Result.ExitCode, 15);
  EXPECT_TRUE(R.Violations.empty())
      << "false positive: " << R.Violations[0].What;
}

TEST(JASan, DetectsMemmoveSourceOverflow) {
  // Reading past the end of the source chunk through memmove must be
  // flagged even though the guest never issues the loads itself — the
  // interposed copy validates both ranges against shadow first.
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern memmove
    .func main
    main:
      push r9
      movi r0, 16
      call malloc
      mov r9, r0
      movi r0, 64
      call malloc
      mov r1, r9          ; src: 16-byte chunk
      movi r2, 32         ; ...read 32 bytes from it
      call memmove
      pop r9
      movi r0, 0
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "memmove-src-oob");
}

TEST(JASan, DetectsMemmoveDestOverflow) {
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern memmove
    .func main
    main:
      push r9
      movi r0, 64
      call malloc
      mov r9, r0
      movi r0, 16
      call malloc
      mov r1, r9          ; src: 64-byte chunk, fully valid
      movi r2, 32         ; ...but dst only holds 16
      call memmove
      pop r9
      movi r0, 0
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "memmove-dst-oob");
}

TEST(JASan, ReallocPreservesDataAndGrownRegionIsAddressable) {
  // Growth past the old chunk's red zone must hand back a chunk where the
  // whole new size is addressable and old contents are preserved.
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern realloc
    .func main
    main:
      movi r0, 16
      call malloc
      movi r5, 123
      st8 [r0], r5
      movi r1, 64
      call realloc          ; grow 16 -> 64
      movi r5, 7
      st8 [r0 + 56], r5     ; past the old size: fine in the new chunk
      ld8 r1, [r0]          ; preserved contents
      mov r0, r1
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  EXPECT_EQ(R.Result.ExitCode, 123);
  EXPECT_TRUE(R.Violations.empty())
      << "false positive: " << R.Violations[0].What;
}

TEST(JASan, DetectsStoreThroughStalePointerPastOldSizeAfterRealloc) {
  // p = malloc(16); q = realloc(p, 64). Writing through the STALE p past
  // the old 16 bytes lands in the old chunk's right red zone — growth is
  // never in place under the red-zone discipline, so this catches code
  // that assumed it was. Failed before realloc existed end-to-end (the
  // program could not even resolve the symbol).
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern realloc
    .func main
    main:
      movi r0, 16
      call malloc
      mov r9, r0
      movi r1, 64
      call realloc
      movi r5, 7
      st8 [r9 + 24], r5    ; stale pointer, past old size -> red zone
      movi r0, 0
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited);
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "heap-redzone");
}

TEST(JASan, DetectsUseAfterRealloc) {
  // Reading through the old pointer after realloc moved the chunk is a
  // use-after-free: the old user bytes are poisoned HeapFreed.
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern realloc
    .func main
    main:
      movi r0, 32
      call malloc
      mov r9, r0
      movi r1, 64
      call realloc
      ld8 r1, [r9]         ; stale pointer into the freed old chunk
      movi r0, 0
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited);
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "heap-use-after-free");
}

TEST(JASan, ReallocZeroFreesAndInvalidReallocIsReported) {
  // realloc(p, 0) frees p (subsequent use is UAF); realloc of a never-
  // allocated pointer is flagged without corrupting allocator state.
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern realloc
    .func main
    main:
      movi r0, 32
      call malloc
      mov r9, r0
      movi r1, 0
      call realloc         ; frees the chunk, returns NULL
      cmpi r0, 0
      jne bad
      ld8 r1, [r9]         ; UAF through the freed pointer
      mov r0, r9
      movi r1, 16
      call realloc         ; invalid: r9 already freed
      movi r0, 0
      syscall 0
    bad:
      movi r0, 1
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited);
  EXPECT_EQ(R.Result.ExitCode, 0);
  ASSERT_EQ(R.Violations.size(), 2u);
  EXPECT_EQ(R.Violations[0].What, "heap-use-after-free");
  EXPECT_EQ(R.Violations[1].What, "invalid-realloc");
}

TEST(JASan, DetectsPartialGranuleOverflow) {
  // 13-byte allocation: granule 1 is partial (5 valid bytes). Reading
  // byte 13 is only one byte past the end, within the same granule.
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .func main
    main:
      movi r0, 13
      call malloc
      ld1 r1, [r0 + 12]    ; last valid byte: fine
      ld1 r1, [r0 + 13]    ; one past: partial-granule violation
      movi r0, 0
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "partial-oob");
}

TEST(JASan, MallocZeroFreeRoundTripIsClean) {
  // Regression: freeing a zero-size chunk poisons Len==0 bytes, which
  // used to underflow the shadow granule range. The round trip must be
  // violation-free and later allocations must stay usable.
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern free
    .func main
    main:
      movi r0, 0
      call malloc
      mov r9, r0           ; zero-size chunk (non-null, unique)
      mov r0, r9
      call free
      movi r0, 8           ; the heap still works afterwards
      call malloc
      movi r1, 7
      st8 [r0], r1
      ld8 r2, [r0]
      mov r0, r2
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  EXPECT_EQ(R.Result.ExitCode, 7);
  EXPECT_TRUE(R.Violations.empty())
      << "false positive: " << R.Violations[0].What;
}

TEST(JASan, CallocOverflowReturnsNull) {
  // Regression: interceptTarget computed calloc's R0 * R1 in 64 bits
  // unchecked, so (SIZE_MAX/8 + 2) * 16 wrapped to a small value and the
  // allocator handed back an undersized chunk.  A wrapping product must
  // return NULL without recording an allocation; a sane calloc afterwards
  // must still work and come back zeroed.
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern calloc
    .extern free
    .func main
    main:
      movi r0, 1           ; n = (SIZE_MAX/8 + 2) = 2^61 + 1
      shli r0, 61
      addi r0, 1
      movi r1, 16          ; n * 16 wraps to 16
      call calloc
      mov r9, r0           ; must be NULL
      movi r0, 4           ; sane calloc still works: calloc(4, 8)
      movi r1, 8
      call calloc
      mov r10, r0
      ld8 r11, [r10 + 24]  ; zero-initialised last element
      mov r0, r10
      call free
      mov r0, r9
      add r0, r11          ; NULL + 0 = 0
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  EXPECT_EQ(R.Result.ExitCode, 0)
      << "wrapping calloc must return NULL, sane calloc must be zeroed";
  EXPECT_TRUE(R.Violations.empty())
      << "unexpected violation: " << R.Violations[0].What;
}

TEST(JASan, MallocZeroHasNoAccessibleBytes) {
  // malloc(0) returns a pointer with zero usable bytes: reading the first
  // byte lands in the trailing red zone.
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .func main
    main:
      movi r0, 0
      call malloc
      ld1 r1, [r0]         ; no byte of a 0-size chunk is addressable
      movi r0, 0
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited);
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "heap-redzone");
}

TEST(JASan, DetectsInvalidFree) {
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern free
    .func main
    main:
      movi r0, 32
      call malloc
      mov r9, r0
      call free
      mov r0, r9
      call free            ; double free
      movi r0, 0
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "invalid-free");
}

TEST(JASan, DetectsCanarySmashHeapToStack) {
  // A heap-sourced copy overruns a stack buffer and tramples the canary
  // granule; JASan reports the canary-slot write (stack-frame-granularity
  // protection, §4.1.1).
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .func main
    main:
      subi sp, 48
      mov r1, tp
      st8 [sp + 32], r1     ; canary above a 32-byte buffer
      movi r0, 64
      call malloc
      mov r9, r0            ; heap source
      movi r5, 0            ; copy 40 bytes: 8 past the buffer
    copy:
      ld1 r6, [r9 + r5]
      st1 [sp + r5], r6     ; writes [sp+32..39] => canary granule
      addi r5, 1
      cmpi r5, 40
      jl copy
      ld8 r1, [sp + 32]
      cmp r1, tp
      jne smashed
      addi sp, 48
      movi r0, 0
      syscall 0
    smashed:
      movi r0, 9
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited);
  ASSERT_GE(R.Violations.size(), 1u);
  bool SawCanary = false;
  for (const Violation &V : R.Violations)
    if (V.What == "stack-canary")
      SawCanary = true;
  EXPECT_TRUE(SawCanary);
}

TEST(JASan, CanaryEpilogueDoesNotFalsePositive) {
  // A well-behaved canary function: the prologue poison / epilogue
  // unpoison cycle must produce zero violations over many calls.
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .func worker
    worker:
      subi sp, 32
      mov r1, tp
      st8 [sp + 24], r1
      st8 [sp], r0
      ld8 r0, [sp]
      addi r0, 1
      ld8 r1, [sp + 24]
      cmp r1, tp
      jne bad
      addi sp, 32
      ret
    bad:
      trap 0
    .endfunc
    .func main
    main:
      movi r0, 0
      movi r9, 0
    loop:
      call worker
      addi r9, 1
      cmpi r9, 50
      jl loop
      syscall 0            ; exit(50)
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  EXPECT_EQ(R.Result.ExitCode, 50);
  EXPECT_TRUE(R.Violations.empty())
      << "false positive: " << R.Violations[0].What;
}

TEST(JASan, DynamicFallbackCoversJitCode) {
  // JIT code performing a heap overflow is still caught: only the dynamic
  // fallback can instrument it (§3.4.3).
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .func main
    main:
      movi r0, 32
      call malloc
      mov r9, r0           ; heap buffer
      movi r0, 64
      syscall 2            ; sbrk scratch for code
      mov r10, r0
      ; emit: ld8 r1, [r9 + 40] ; ret  -- an OOB read against r9.
      ; ld8 r1, [mem]: opcode 0x09, reg byte 0x01, mem: base r9 no index
      movi r1, 0x0109
      st2 [r10], r1
      ; mem bytes: base<<4|index = 0x90, flags hasBase=0x10, disp 40
      movi r1, 0x1090
      st2 [r10 + 2], r1
      movi r1, 40
      st4 [r10 + 4], r1
      movi r1, 0x45        ; ret
      st1 [r10 + 8], r1
      mov r0, r10
      movi r1, 9
      syscall 3            ; map as code
      callr r10            ; run the JIT block -> violation
      movi r0, 0
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "heap-redzone");
  EXPECT_GT(R.Coverage.DynamicBlocks, 0u);
}

TEST(JASan, AbortOnViolationStops) {
  JASanOptions Opts;
  Opts.AbortOnViolation = true;
  JasanHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .func main
    main:
      movi r0, 8
      call malloc
      ld8 r1, [r0 + 16]
      movi r0, 77
      syscall 0
    .endfunc
  )", true, Opts);
  JanitizerRun R = H.run();
  EXPECT_EQ(R.Result.St, RunResult::Status::Trapped);
  EXPECT_EQ(R.Result.TrapCode,
            static_cast<uint8_t>(TrapCode::AsanViolation));
}

TEST(JASan, LivenessOptimizationReducesCycles) {
  // hybrid-full (liveness) vs hybrid-base (conservative save/restore):
  // same behaviour, fewer cycles (the 27% effect of §6.1.1).
  const char *Prog = R"(
    .module prog
    .entry main
    .section bss
    buf: .zero 4096
    .section text
    .func main
    main:
      la r2, buf
      movi r3, 0
    outer:
      movi r1, 0
    inner:
      ld8 r4, [r2 + r1*8]
      addi r4, 3
      st8 [r2 + r1*8], r4
      addi r1, 1
      cmpi r1, 64
      jl inner
      addi r3, 1
      cmpi r3, 20
      jl outer
      la r2, buf
      ld8 r0, [r2]         ; 60
      syscall 0
    .endfunc
  )";
  JASanOptions Full;
  Full.UseLiveness = true;
  JASanOptions Base;
  Base.UseLiveness = false;
  JasanHarness HF(Prog, true, Full);
  JasanHarness HB(Prog, true, Base);
  JanitizerRun RF = HF.run();
  JanitizerRun RB = HB.run();
  ASSERT_EQ(RF.Result.St, RunResult::Status::Exited) << RF.Result.FaultMsg;
  ASSERT_EQ(RB.Result.St, RunResult::Status::Exited);
  EXPECT_EQ(RF.Result.ExitCode, 60);
  EXPECT_EQ(RB.Result.ExitCode, 60);
  EXPECT_LT(RF.Result.Cycles, RB.Result.Cycles);
  EXPECT_TRUE(RF.Violations.empty());
  EXPECT_TRUE(RB.Violations.empty());
}

TEST(JASan, StaticPassEmitsExpectedRuleKinds) {
  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  Module Prog = mustAssemble(R"(
    .module prog
    .entry main
    .section bss
    buf: .zero 800
    .section text
    .func main
    main:
      subi sp, 32
      mov r1, tp
      st8 [sp + 24], r1
      la r2, buf
      movi r1, 0
    loop:
      st8 [r2 + r1*8], r1
      addi r1, 1
      cmpi r1, 100
      jl loop
      ld8 r1, [sp + 24]
      cmp r1, tp
      jne bad
      addi sp, 32
      movi r0, 0
      syscall 0
    bad:
      trap 0
    .endfunc
  )");
  Store.add(Prog);
  StaticAnalyzer SA;
  JASanTool Tool;
  RuleFile RF = cantFail(SA.analyzeModule(Prog, Tool));
  unsigned Checks = 0, Elides = 0, Hoisted = 0, Poison = 0, Unpoison = 0,
           NoOps = 0;
  for (const RewriteRule &R : RF.Rules) {
    switch (R.Id) {
    case RuleId::AsanCheck: ++Checks; break;
    case RuleId::AsanElide: ++Elides; break;
    case RuleId::AsanHoistedCheck: ++Hoisted; break;
    case RuleId::AsanPoisonCanary: ++Poison; break;
    case RuleId::AsanUnpoisonCanary: ++Unpoison; break;
    case RuleId::NoOp: ++NoOps; break;
    default: break;
    }
  }
  EXPECT_EQ(Elides, 1u) << "the strided store is SCEV-elidable";
  EXPECT_EQ(Hoisted, 1u);
  EXPECT_EQ(Poison, 1u);
  EXPECT_EQ(Unpoison, 1u);
  EXPECT_GE(Checks, 2u) << "canary store + epilogue load";
  EXPECT_GT(NoOps, 0u);
}

TEST(JASan, ScevElidingIsSoundAndFaster) {
  // The elided loop still detects an overflow at its endpoints: bound
  // exceeds the allocation -> the hoisted last-element check fires.
  JasanHarness Bad(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .func main
    main:
      movi r0, 256
      call malloc
      mov r2, r0
      movi r1, 0
    loop:
      st8 [r2 + r1*8], r1    ; 40 iterations x 8 = 320 > 256
      addi r1, 1
      cmpi r1, 40
      jl loop
      movi r0, 0
      syscall 0
    .endfunc
  )");
  JanitizerRun R = Bad.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  ASSERT_GE(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "heap-redzone");
}

TEST(JASan, ConventionBreakerForcesConservativeInstrumentation) {
  // Programs calling into libjfortran's convention-breaking code keep
  // working under instrumentation (§4.1.2).
  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  Store.add(cantFail(buildJfortran()));
  Store.add(mustAssemble(R"(
    .module prog
    .entry main
    .needed libjz.so
    .needed libjfortran.so
    .extern vsum_scaled
    .section data
    v:
      .word8 5
      .word8 6
      .word8 7
    .section text
    .func main
    main:
      la r0, v
      movi r1, 3
      call vsum_scaled     ; 4*(5+6+7) = 72
      syscall 0
    .endfunc
  )"));
  RuleStore Rules;
  StaticAnalyzer SA;
  JASanTool StaticTool;
  ASSERT_FALSE(static_cast<bool>(
      SA.analyzeProgram(Store, "prog", StaticTool, Rules)));
  JASanTool Tool;
  JanitizerRun R = runUnderJanitizer(Store, "prog", Tool, Rules);
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  EXPECT_EQ(R.Result.ExitCode, 72);
  EXPECT_TRUE(R.Violations.empty());
}

} // namespace
