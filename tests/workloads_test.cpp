//===- tests/workloads_test.cpp - Workload generator tests ----------------===//

#include "core/StaticAnalyzer.h"
#include "baselines/ValgrindASan.h"
#include "jasan/JASan.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"
#include "workloads/JulietGen.h"
#include "workloads/WorkloadGen.h"

#include <gtest/gtest.h>
#include <set>

using namespace janitizer;

namespace {

WorkloadOptions smallScale() {
  WorkloadOptions O;
  O.WorkScale = 1;
  return O;
}

TEST(Profiles, TwentySevenBenchmarks) {
  EXPECT_EQ(specProfiles().size(), 28u);
  EXPECT_NE(findProfile("perlbench"), nullptr);
  EXPECT_NE(findProfile("cactusADM"), nullptr);
  EXPECT_EQ(findProfile("nonsense"), nullptr);
  // The paper's structural attributes.
  EXPECT_TRUE(findProfile("h264ref")->UsesQsortCallback);
  EXPECT_TRUE(findProfile("cactusADM")->UsesQsortCallback);
  EXPECT_TRUE(findProfile("gcc")->UsesQsortCallback);
  EXPECT_TRUE(findProfile("omnetpp")->NonlocalUnwind);
  EXPECT_TRUE(findProfile("dealII")->NonlocalUnwind);
  EXPECT_TRUE(findProfile("gamess")->DataIslands);
  EXPECT_TRUE(findProfile("zeusmp")->DataIslands);
  EXPECT_GE(findProfile("cactusADM")->PluginWorkPercent, 100u);
}

/// Every benchmark must build and run natively, deterministically.
class AllBenchmarks : public ::testing::TestWithParam<unsigned> {};

TEST_P(AllBenchmarks, BuildsAndRunsNatively) {
  const BenchProfile &P = specProfiles()[GetParam()];
  WorkloadBuild W = cantFail(buildWorkload(P, smallScale()));
  RunResult R;
  std::string Ref = nativeReference(W, &R);
  ASSERT_EQ(R.St, RunResult::Status::Exited)
      << P.Name << ": " << R.FaultMsg;
  EXPECT_FALSE(Ref.empty()) << P.Name << " printed no checksum";
  EXPECT_GT(R.Retired, 5000u) << P.Name << " does too little work";

  // Determinism.
  std::string Ref2 = nativeReference(W);
  EXPECT_EQ(Ref, Ref2);
}

INSTANTIATE_TEST_SUITE_P(
    Spec, AllBenchmarks,
    ::testing::Range(0u, 28u),
    [](const ::testing::TestParamInfo<unsigned> &Info) {
      return specProfiles()[Info.param].Name;
    });

/// Instrumented runs must preserve the checksum (JASan-hybrid, end to
/// end, over a representative subset).
class InstrumentedCorrectness : public ::testing::TestWithParam<const char *> {
};

TEST_P(InstrumentedCorrectness, JasanHybridPreservesChecksum) {
  const BenchProfile *P = findProfile(GetParam());
  ASSERT_NE(P, nullptr);
  WorkloadBuild W = cantFail(buildWorkload(*P, smallScale()));
  std::string Ref = nativeReference(W);
  ASSERT_FALSE(Ref.empty());

  RuleStore Rules;
  StaticAnalyzer SA;
  JASanTool StaticTool;
  ASSERT_FALSE(static_cast<bool>(SA.analyzeProgram(
      W.Store, W.ExeName, StaticTool, Rules, W.DlopenOnly)));
  JASanTool Tool;
  JanitizerRun R = runUnderJanitizer(W.Store, W.ExeName, Tool, Rules,
                                     1ull << 31);
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited)
      << GetParam() << ": " << R.Result.FaultMsg;
  EXPECT_EQ(R.Output, Ref) << GetParam() << ": checksum diverged";
  EXPECT_TRUE(R.Violations.empty())
      << GetParam() << ": false positive " << R.Violations[0].What;
}

INSTANTIATE_TEST_SUITE_P(Subset, InstrumentedCorrectness,
                         ::testing::Values("bzip2", "gcc", "mcf",
                                           "cactusADM", "gamess", "omnetpp",
                                           "lbm", "xalancbmk"));

TEST(Workloads, PicVariantBuildsAndMatches) {
  const BenchProfile *P = findProfile("bzip2");
  WorkloadOptions Pic = smallScale();
  Pic.PicExe = true;
  WorkloadBuild WPic = cantFail(buildWorkload(*P, Pic));
  WorkloadBuild WStd = cantFail(buildWorkload(*P, smallScale()));
  EXPECT_TRUE(WPic.Store.find("bzip2")->IsPIC);
  EXPECT_FALSE(WStd.Store.find("bzip2")->IsPIC);
  EXPECT_EQ(nativeReference(WPic), nativeReference(WStd))
      << "PIC and non-PIC builds must compute the same checksum";
}

TEST(Workloads, DlopenPluginInvisibleToLdd) {
  const BenchProfile *P = findProfile("cactusADM");
  WorkloadBuild W = cantFail(buildWorkload(*P, smallScale()));
  ASSERT_EQ(W.DlopenOnly.size(), 1u);
  const Module *Exe = W.Store.find("cactusADM");
  ASSERT_NE(Exe, nullptr);
  for (const std::string &Dep : Exe->Needed)
    EXPECT_NE(Dep, W.DlopenOnly[0])
        << "the plugin must not appear in DT_NEEDED";
}

//===--------------------------------------------------------------------===//
// Juliet suite
//===--------------------------------------------------------------------===//

TEST(Juliet, SuiteSizeAndFamilies) {
  std::vector<JulietCase> Suite = julietCwe122Suite();
  EXPECT_EQ(Suite.size(), 624u);
  unsigned H2H = 0, S2H = 0, H2S = 0, Stride = 0;
  for (const JulietCase &C : Suite) {
    switch (C.Kind) {
    case JulietCase::Family::HeapToHeap: ++H2H; break;
    case JulietCase::Family::StackToHeap: ++S2H; break;
    case JulietCase::Family::HeapToStack:
      ++H2S;
      EXPECT_EQ(C.ExpectedViolations, 2u);
      break;
    case JulietCase::Family::HeapLongStride: ++Stride; break;
    }
  }
  EXPECT_EQ(H2H, 252u);
  EXPECT_EQ(S2H, 252u);
  EXPECT_EQ(H2S, 96u);
  EXPECT_EQ(Stride, 24u);
}

TEST(Juliet, AllSourcesAssemble) {
  for (const JulietCase &C : julietCwe122Suite()) {
    auto G = assembleModule(C.GoodSource);
    ASSERT_TRUE(static_cast<bool>(G)) << C.Name << ": " << G.message();
    auto B = assembleModule(C.BadSource);
    ASSERT_TRUE(static_cast<bool>(B)) << C.Name << ": " << B.message();
  }
}

/// One representative case per family behaves as the Figure 10 accounting
/// requires.
struct FamilyExpect {
  JulietCase::Family Kind;
  bool JasanDetects;   // detected >= expected
  bool ValgrindDetects;
};

class JulietFamily : public ::testing::TestWithParam<FamilyExpect> {};

TEST_P(JulietFamily, DetectionMatrix) {
  const FamilyExpect &FE = GetParam();
  std::vector<JulietCase> Suite = julietCwe122Suite();
  const JulietCase *C = nullptr;
  for (const JulietCase &K : Suite)
    if (K.Kind == FE.Kind) {
      C = &K;
      break;
    }
  ASSERT_NE(C, nullptr);

  auto MakeStore = [&](const std::string &Src) {
    ModuleStore Store;
    Store.add(cantFail(buildJlibc()));
    auto M = assembleModule(Src);
    EXPECT_TRUE(static_cast<bool>(M)) << M.message();
    Store.add(*M);
    return Store;
  };

  auto CountDistinct = [](const std::vector<Violation> &Vs) {
    std::set<std::pair<uint64_t, std::string>> D;
    for (const Violation &V : Vs)
      D.insert({V.PC, V.What});
    return D.size();
  };

  // Bad variant under JASan.
  {
    ModuleStore Store = MakeStore(C->BadSource);
    RuleStore Rules;
    StaticAnalyzer SA;
    JASanTool StaticTool;
    ASSERT_FALSE(static_cast<bool>(
        SA.analyzeProgram(Store, "prog", StaticTool, Rules)));
    JASanTool Tool;
    JanitizerRun R = runUnderJanitizer(Store, "prog", Tool, Rules);
    EXPECT_EQ(CountDistinct(R.Violations) >= C->ExpectedViolations,
              FE.JasanDetects)
        << C->Name << " JASan distinct=" << CountDistinct(R.Violations);
  }
  // Bad variant under Valgrind.
  {
    ModuleStore Store = MakeStore(C->BadSource);
    BaselineRun R = runUnderValgrind(Store, "prog");
    EXPECT_EQ(CountDistinct(R.Violations) >= C->ExpectedViolations,
              FE.ValgrindDetects)
        << C->Name << " Valgrind distinct=" << CountDistinct(R.Violations);
  }
  // Good variants: zero false positives for both.
  {
    ModuleStore Store = MakeStore(C->GoodSource);
    RuleStore Rules;
    StaticAnalyzer SA;
    JASanTool StaticTool;
    ASSERT_FALSE(static_cast<bool>(
        SA.analyzeProgram(Store, "prog", StaticTool, Rules)));
    JASanTool Tool;
    JanitizerRun R = runUnderJanitizer(Store, "prog", Tool, Rules);
    EXPECT_TRUE(R.Violations.empty())
        << C->Name << " JASan FP: " << R.Violations[0].What;
    ASSERT_EQ(R.Result.St, RunResult::Status::Exited);
    EXPECT_EQ(R.Result.ExitCode, 0);
  }
  {
    ModuleStore Store = MakeStore(C->GoodSource);
    BaselineRun R = runUnderValgrind(Store, "prog");
    EXPECT_TRUE(R.Violations.empty()) << C->Name << " Valgrind FP";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, JulietFamily,
    ::testing::Values(
        FamilyExpect{JulietCase::Family::HeapToHeap, true, true},
        FamilyExpect{JulietCase::Family::StackToHeap, true, true},
        FamilyExpect{JulietCase::Family::HeapToStack, false, false},
        FamilyExpect{JulietCase::Family::HeapLongStride, true, false}),
    [](const ::testing::TestParamInfo<FamilyExpect> &Info) {
      switch (Info.param.Kind) {
      case JulietCase::Family::HeapToHeap: return "HeapToHeap";
      case JulietCase::Family::StackToHeap: return "StackToHeap";
      case JulietCase::Family::HeapToStack: return "HeapToStack";
      default: return "HeapLongStride";
      }
    });

} // namespace
