//===- tests/isa_test.cpp - Encoder/decoder and property tests ------------===//

#include "isa/Encoding.h"
#include "isa/Printer.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace janitizer;

namespace {

TEST(Opcodes, ValidityTable) {
  unsigned Count = 0;
  for (unsigned B = 0; B < 256; ++B)
    if (isValidOpcode(static_cast<uint8_t>(B)))
      ++Count;
  // 16 (0x00-0x0F) + 11 (ALU rr) + 10 (ALU ri) + 9 (branches) + 12 (0x40-4B)
  EXPECT_EQ(Count, 16u + 11u + 10u + 9u + 12u);
}

TEST(Opcodes, CTIClassification) {
  EXPECT_EQ(ctiKind(Opcode::JMP), CTIKind::DirectJump);
  EXPECT_EQ(ctiKind(Opcode::JE), CTIKind::CondJump);
  EXPECT_EQ(ctiKind(Opcode::CALL), CTIKind::DirectCall);
  EXPECT_EQ(ctiKind(Opcode::CALLR), CTIKind::IndirectCall);
  EXPECT_EQ(ctiKind(Opcode::CALLM), CTIKind::IndirectCall);
  EXPECT_EQ(ctiKind(Opcode::JMPR), CTIKind::IndirectJump);
  EXPECT_EQ(ctiKind(Opcode::JMPM), CTIKind::IndirectJump);
  EXPECT_EQ(ctiKind(Opcode::RET), CTIKind::Return);
  EXPECT_EQ(ctiKind(Opcode::ADD), CTIKind::None);
  EXPECT_EQ(ctiKind(Opcode::SYSCALL), CTIKind::None);
}

TEST(Opcodes, FlagProperties) {
  EXPECT_TRUE(writesFlags(Opcode::ADD));
  EXPECT_TRUE(writesFlags(Opcode::CMPI));
  EXPECT_TRUE(writesFlags(Opcode::POPF));
  EXPECT_FALSE(writesFlags(Opcode::LEA));
  EXPECT_FALSE(writesFlags(Opcode::MOV_RR));
  EXPECT_FALSE(writesFlags(Opcode::LD8));
  EXPECT_FALSE(writesFlags(Opcode::PUSH));
  EXPECT_TRUE(readsFlags(Opcode::JE));
  EXPECT_TRUE(readsFlags(Opcode::PUSHF));
  EXPECT_FALSE(readsFlags(Opcode::JMP));
}

TEST(Opcodes, MemAccessProperties) {
  EXPECT_EQ(memAccessSize(Opcode::LD1), 1u);
  EXPECT_EQ(memAccessSize(Opcode::ST8), 8u);
  EXPECT_EQ(memAccessSize(Opcode::PUSH), 0u);
  EXPECT_TRUE(isDataMemAccess(Opcode::LD4));
  EXPECT_FALSE(isDataMemAccess(Opcode::CALLM));
  EXPECT_TRUE(isStore(Opcode::ST2));
  EXPECT_FALSE(isStore(Opcode::LD2));
}

TEST(Encoding, RoundTripSimple) {
  Instruction I;
  I.Op = Opcode::ADDI;
  I.Rd = Reg::R3;
  I.Imm = -42;
  std::vector<uint8_t> Buf;
  unsigned Len = encode(I, Buf);
  EXPECT_EQ(Len, 6u);
  Instruction D;
  ASSERT_TRUE(decode(Buf.data(), Buf.size(), D));
  EXPECT_EQ(D, I);
  EXPECT_EQ(D.Size, 6u);
}

TEST(Encoding, TruncatedFails) {
  Instruction I;
  I.Op = Opcode::MOV_RI64;
  I.Rd = Reg::R1;
  I.Imm = 0x1234567890ll;
  std::vector<uint8_t> Buf;
  encode(I, Buf);
  Instruction D;
  EXPECT_FALSE(decode(Buf.data(), Buf.size() - 1, D));
  EXPECT_TRUE(decode(Buf.data(), Buf.size(), D));
}

TEST(Encoding, InvalidOpcodeFails) {
  uint8_t Bad[4] = {0xFF, 0, 0, 0};
  Instruction D;
  EXPECT_FALSE(decode(Bad, sizeof(Bad), D));
}

TEST(Encoding, BranchTarget) {
  Instruction I;
  I.Op = Opcode::JMP;
  I.Imm = -20;
  std::vector<uint8_t> Buf;
  encode(I, Buf);
  EXPECT_EQ(I.branchTarget(100), 100 + 5 - 20u);
}

/// Property test: random instructions over all layouts round-trip through
/// encode/decode and through the printer's canonical text form.
class EncodingRoundTrip : public ::testing::TestWithParam<unsigned> {};

Instruction randomInstruction(SplitMix64 &Rng) {
  static const Opcode All[] = {
      Opcode::NOP,    Opcode::HLT,    Opcode::MOV_RR, Opcode::MOV_RI64,
      Opcode::MOV_RI32, Opcode::LEA,  Opcode::LD1,    Opcode::LD2,
      Opcode::LD4,    Opcode::LD8,    Opcode::ST1,    Opcode::ST2,
      Opcode::ST4,    Opcode::ST8,    Opcode::PUSHF,  Opcode::POPF,
      Opcode::ADD,    Opcode::SUB,    Opcode::AND,    Opcode::OR,
      Opcode::XOR,    Opcode::SHL,    Opcode::SHR,    Opcode::MUL,
      Opcode::DIV,    Opcode::CMP,    Opcode::TEST,   Opcode::ADDI,
      Opcode::SUBI,   Opcode::ANDI,   Opcode::ORI,    Opcode::XORI,
      Opcode::SHLI,   Opcode::SHRI,   Opcode::MULI,   Opcode::CMPI,
      Opcode::TESTI,  Opcode::JMP,    Opcode::JE,     Opcode::JNE,
      Opcode::JL,     Opcode::JLE,    Opcode::JG,     Opcode::JGE,
      Opcode::JB,     Opcode::JAE,    Opcode::CALL,   Opcode::CALLR,
      Opcode::CALLM,  Opcode::JMPR,   Opcode::JMPM,   Opcode::RET,
      Opcode::PUSH,   Opcode::POP,    Opcode::SYSCALL, Opcode::PUSHI64,
      Opcode::TRAP};
  Instruction I;
  I.Op = All[Rng.below(sizeof(All) / sizeof(All[0]))];
  I.Rd = static_cast<Reg>(Rng.below(16));
  switch (I.Op) {
  case Opcode::MOV_RR:
  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::SHL:
  case Opcode::SHR:
  case Opcode::MUL:
  case Opcode::DIV:
  case Opcode::CMP:
  case Opcode::TEST:
    I.Rs = static_cast<Reg>(Rng.below(16));
    break;
  case Opcode::MOV_RI64:
  case Opcode::PUSHI64:
    I.Imm = static_cast<int64_t>(Rng.next());
    break;
  case Opcode::SYSCALL:
  case Opcode::TRAP:
    I.Imm = static_cast<int64_t>(Rng.below(256));
    break;
  default:
    I.Imm = static_cast<int32_t>(Rng.next());
    break;
  }
  if (hasMemOperand(I.Op)) {
    I.Imm = 0;
    I.Mem.HasBase = Rng.chancePercent(70);
    I.Mem.Base = static_cast<Reg>(Rng.below(16));
    I.Mem.HasIndex = Rng.chancePercent(40);
    I.Mem.Index = static_cast<Reg>(Rng.below(16));
    I.Mem.ScaleLog2 = static_cast<uint8_t>(Rng.below(4));
    if (!I.Mem.HasIndex)
      I.Mem.ScaleLog2 = 0;
    I.Mem.PCRel = !I.Mem.HasBase && Rng.chancePercent(30);
    I.Mem.Disp = static_cast<int32_t>(Rng.next());
  }
  return I;
}

TEST_P(EncodingRoundTrip, RandomInstructions) {
  SplitMix64 Rng(GetParam() * 7919 + 13);
  for (int K = 0; K < 500; ++K) {
    Instruction I = randomInstruction(Rng);
    std::vector<uint8_t> Buf;
    unsigned Len = encode(I, Buf);
    ASSERT_EQ(Len, Buf.size());
    ASSERT_EQ(Len, encodedLength(I));
    Instruction D;
    ASSERT_TRUE(decode(Buf.data(), Buf.size(), D))
        << printInstruction(I);
    // Canonical round-trip property: re-encoding the decoded instruction
    // reproduces the exact byte sequence (fields the layout does not encode
    // are normalized away by the decode).
    std::vector<uint8_t> Buf2;
    encode(D, Buf2);
    EXPECT_EQ(Buf, Buf2) << printInstruction(I) << " vs "
                         << printInstruction(D);
    EXPECT_EQ(printInstruction(I), printInstruction(D));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Printer, Samples) {
  Instruction I;
  I.Op = Opcode::LD8;
  I.Rd = Reg::R2;
  I.Mem.HasBase = true;
  I.Mem.Base = Reg::SP;
  I.Mem.Disp = 16;
  EXPECT_EQ(printInstruction(I), "ld8 r2, [sp + 16]");

  Instruction S;
  S.Op = Opcode::ST4;
  S.Rd = Reg::R1;
  S.Mem.HasBase = true;
  S.Mem.Base = Reg::R9;
  S.Mem.HasIndex = true;
  S.Mem.Index = Reg::R2;
  S.Mem.ScaleLog2 = 3;
  S.Mem.Disp = -8;
  EXPECT_EQ(printInstruction(S), "st4 [r9 + r2*8 - 8], r1");

  Instruction L;
  L.Op = Opcode::LEA;
  L.Rd = Reg::R0;
  L.Mem.PCRel = true;
  L.Mem.Disp = 64;
  EXPECT_EQ(printInstruction(L), "lea r0, [pc + 64]");
}

TEST(RegisterSets, ReadWriteMasks) {
  Instruction I;
  I.Op = Opcode::ST8;
  I.Rd = Reg::R3; // stored value
  I.Mem.HasBase = true;
  I.Mem.Base = Reg::R4;
  I.Mem.HasIndex = true;
  I.Mem.Index = Reg::R5;
  uint16_t Reads = regsRead(I);
  EXPECT_TRUE(Reads & regBit(Reg::R3));
  EXPECT_TRUE(Reads & regBit(Reg::R4));
  EXPECT_TRUE(Reads & regBit(Reg::R5));
  EXPECT_EQ(regsWritten(I), 0u);

  Instruction C;
  C.Op = Opcode::CALLR;
  C.Rd = Reg::R7;
  EXPECT_TRUE(regsRead(C) & regBit(Reg::R7));
  EXPECT_TRUE(regsRead(C) & regBit(Reg::SP));
  EXPECT_TRUE(regsWritten(C) & regBit(Reg::SP));

  Instruction P;
  P.Op = Opcode::POP;
  P.Rd = Reg::R6;
  EXPECT_TRUE(regsWritten(P) & regBit(Reg::R6));
}

TEST(RegisterNames, ParseAndPrint) {
  for (unsigned I = 0; I < NumRegs; ++I) {
    Reg R = static_cast<Reg>(I);
    Reg Parsed;
    ASSERT_TRUE(parseRegName(regName(R), Parsed));
    EXPECT_EQ(Parsed, R);
  }
  Reg R;
  EXPECT_TRUE(parseRegName("fp", R));
  EXPECT_EQ(R, FP);
  EXPECT_FALSE(parseRegName("r16", R));
  EXPECT_FALSE(parseRegName("", R));
}

} // namespace
