//===- tests/rule_server_test.cpp - Rule service tests ---------------------===//
///
/// The rule daemon stack (DESIGN.md §5f), bottom up: wire-protocol
/// encode/decode (including hostile input), framed socket I/O, the
/// server store (publish/fetch, validation, disk persistence), and the
/// StaticAnalyzer client tier — served rules must be byte-identical to
/// local analysis, and a dead or faulted daemon must degrade every
/// client to local analysis with zero aborts and identical violations.
///
//===----------------------------------------------------------------------===//

#include "core/JanitizerDynamic.h"
#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"
#include "rules/RuleClient.h"
#include "rules/RuleProtocol.h"
#include "rules/RuleServer.h"
#include "support/FaultInjector.h"
#include "support/Hash.h"
#include "support/Metrics.h"

#include "TestWorkloads.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

using namespace janitizer;
using namespace janitizer::testutil;

namespace {

std::string freshSocket(const std::string &Name) {
  std::string Path = ::testing::TempDir() + "jz-" + Name + ".sock";
  std::filesystem::remove(Path);
  return Path;
}

RuleFile sampleRuleFile(const std::string &ModName) {
  RuleFile RF;
  RF.ModuleName = ModName;
  RF.ToolName = "jasan";
  return RF;
}

//===----------------------------------------------------------------------===//
// Protocol payloads
//===----------------------------------------------------------------------===//

TEST(RuleProtocol, FetchRequestRoundTrips) {
  RuleRequest Req;
  Req.Op = ruleproto::Opcode::Fetch;
  Req.Entries.push_back({0x1234'5678'9abc'def0ull, "jasan", {}});
  Req.Entries.push_back({42, "jcfi", {}});

  ErrorOr<RuleRequest> Back = decodeRuleRequest(encodeRuleRequest(Req));
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(Back->Op, ruleproto::Opcode::Fetch);
  ASSERT_EQ(Back->Entries.size(), 2u);
  EXPECT_EQ(Back->Entries[0].ModuleHash, 0x1234'5678'9abc'def0ull);
  EXPECT_EQ(Back->Entries[0].Tool, "jasan");
  EXPECT_EQ(Back->Entries[1].ModuleHash, 42u);
  EXPECT_EQ(Back->Entries[1].Tool, "jcfi");
}

TEST(RuleProtocol, PublishRequestCarriesRuleBytes) {
  RuleFile RF = sampleRuleFile("libfoo.so");
  RuleRequest Req;
  Req.Op = ruleproto::Opcode::Publish;
  Req.Entries.push_back({7, "jasan", RF.serialize()});

  ErrorOr<RuleRequest> Back = decodeRuleRequest(encodeRuleRequest(Req));
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(Back->Op, ruleproto::Opcode::Publish);
  ASSERT_EQ(Back->Entries.size(), 1u);
  EXPECT_EQ(Back->Entries[0].Bytes, RF.serialize());
  ErrorOr<RuleFile> Decoded = RuleFile::deserialize(Back->Entries[0].Bytes);
  ASSERT_TRUE(static_cast<bool>(Decoded));
  EXPECT_EQ(Decoded->ModuleName, "libfoo.so");
}

TEST(RuleProtocol, ResponseRoundTrips) {
  RuleResponse Resp;
  Resp.Entries.push_back({ruleproto::Status::Hit, sampleRuleFile("m").serialize()});
  Resp.Entries.push_back({ruleproto::Status::Miss, {}});

  ErrorOr<RuleResponse> Back = decodeRuleResponse(encodeRuleResponse(Resp));
  ASSERT_TRUE(static_cast<bool>(Back));
  ASSERT_EQ(Back->Entries.size(), 2u);
  EXPECT_EQ(Back->Entries[0].St, ruleproto::Status::Hit);
  EXPECT_EQ(Back->Entries[0].Bytes, Resp.Entries[0].Bytes);
  EXPECT_EQ(Back->Entries[1].St, ruleproto::Status::Miss);
  EXPECT_TRUE(Back->Entries[1].Bytes.empty());
}

TEST(RuleProtocol, RejectsHostileInput) {
  // A valid request to mutate.
  RuleRequest Req;
  Req.Op = ruleproto::Opcode::Fetch;
  Req.Entries.push_back({1, "jasan", {}});
  std::vector<uint8_t> Good = encodeRuleRequest(Req);

  EXPECT_FALSE(static_cast<bool>(decodeRuleRequest({})));
  EXPECT_FALSE(static_cast<bool>(decodeRuleRequest({1, 2, 3})));

  std::vector<uint8_t> BadMagic = Good;
  BadMagic[0] ^= 0xff;
  EXPECT_FALSE(static_cast<bool>(decodeRuleRequest(BadMagic)));

  // Response magic on a request decoder and vice versa.
  EXPECT_FALSE(static_cast<bool>(decodeRuleRequest(
      encodeRuleResponse(RuleResponse{}))));
  EXPECT_FALSE(static_cast<bool>(decodeRuleResponse(Good)));

  std::vector<uint8_t> BadVersion = Good;
  BadVersion[4] = 0x7f; // version field follows the magic
  EXPECT_FALSE(static_cast<bool>(decodeRuleRequest(BadVersion)));

  std::vector<uint8_t> Truncated = Good;
  Truncated.resize(Truncated.size() - 3);
  EXPECT_FALSE(static_cast<bool>(decodeRuleRequest(Truncated)));

  // Count larger than the bytes that follow.
  std::vector<uint8_t> BigCount = Good;
  BigCount[Good.size() - Req.Entries[0].Tool.size() - 2 - 8 - 2] = 0xff;
  EXPECT_FALSE(static_cast<bool>(decodeRuleRequest(BigCount)));

  // Trailing garbage after a well-formed body.
  std::vector<uint8_t> Trailing = Good;
  Trailing.push_back(0);
  EXPECT_FALSE(static_cast<bool>(decodeRuleRequest(Trailing)));

  // Every single-byte truncation must be rejected, never crash.
  for (size_t Len = 0; Len < Good.size(); ++Len) {
    std::vector<uint8_t> Cut(Good.begin(), Good.begin() + Len);
    EXPECT_FALSE(static_cast<bool>(decodeRuleRequest(Cut)));
  }
}

TEST(RuleProtocol, FramingRoundTripsAndDetectsEof) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);

  std::vector<uint8_t> Payload = {1, 2, 3, 4, 5};
  ASSERT_FALSE(writeFrame(Fds[0], Payload));
  ErrorOr<std::vector<uint8_t>> Back = readFrame(Fds[1]);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(*Back, Payload);

  // Peer closes between frames: clean EOF = empty payload, no error.
  ::close(Fds[0]);
  ErrorOr<std::vector<uint8_t>> Eof = readFrame(Fds[1]);
  ASSERT_TRUE(static_cast<bool>(Eof));
  EXPECT_TRUE(Eof->empty());
  ::close(Fds[1]);
}

TEST(RuleProtocol, FramingRejectsOversizeLength) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  // A length prefix over ruleproto::MaxFrameBytes must be rejected before any
  // allocation of that size happens.
  uint32_t Huge = ruleproto::MaxFrameBytes + 1;
  uint8_t Hdr[4] = {static_cast<uint8_t>(Huge), static_cast<uint8_t>(Huge >> 8),
                    static_cast<uint8_t>(Huge >> 16),
                    static_cast<uint8_t>(Huge >> 24)};
  ASSERT_EQ(::write(Fds[0], Hdr, 4), 4);
  EXPECT_FALSE(static_cast<bool>(readFrame(Fds[1])));
  ::close(Fds[0]);
  ::close(Fds[1]);
}

//===----------------------------------------------------------------------===//
// Server + client
//===----------------------------------------------------------------------===//

TEST(RuleServer, PublishThenFetchRoundTrips) {
  std::string Sock = freshSocket("roundtrip");
  RuleServer Srv;
  RuleServerOptions Opts;
  Opts.SocketPath = Sock;
  ASSERT_FALSE(Srv.start(Opts));

  RuleFile RF = sampleRuleFile("libx.so");
  uint64_t Hash = hashBytes(RF.serialize());

  RuleClient C(RuleClientOptions{Sock, 2000});
  // Miss before publish.
  ErrorOr<std::vector<std::optional<RuleFile>>> R1 =
      C.fetch({{Hash, "jasan"}});
  ASSERT_TRUE(static_cast<bool>(R1));
  EXPECT_FALSE((*R1)[0].has_value());

  ASSERT_FALSE(C.publish({{{Hash, "jasan"}, &RF}}));
  EXPECT_EQ(Srv.entryCount(), 1u);

  ErrorOr<std::vector<std::optional<RuleFile>>> R2 =
      C.fetch({{Hash, "jasan"}});
  ASSERT_TRUE(static_cast<bool>(R2));
  ASSERT_TRUE((*R2)[0].has_value());
  EXPECT_EQ((*R2)[0]->ModuleName, "libx.so");
  // Same hash, different tool: still a miss (the tool is part of the key).
  ErrorOr<std::vector<std::optional<RuleFile>>> R3 =
      C.fetch({{Hash, "jcfi"}});
  ASSERT_TRUE(static_cast<bool>(R3));
  EXPECT_FALSE((*R3)[0].has_value());

  EXPECT_EQ(C.stats().Hits, 1u);
  EXPECT_EQ(C.stats().Misses, 2u);
  EXPECT_EQ(C.stats().Published, 1u);
  Srv.stop();
}

TEST(RuleServer, RejectsInvalidAndDegradedPublishes) {
  std::string Sock = freshSocket("reject");
  RuleServer Srv;
  RuleServerOptions Opts;
  Opts.SocketPath = Sock;
  ASSERT_FALSE(Srv.start(Opts));

  // Garbage bytes never enter the store.
  EXPECT_FALSE(Srv.publishLocal(1, "jasan", {0xde, 0xad, 0xbe, 0xef}));
  EXPECT_EQ(Srv.entryCount(), 0u);

  // Degraded rule files are per-process state, never fleet state: a
  // budget-starved guest must not poison every other guest's coverage.
  // The Degraded flag is not serialized, so the client screens them out
  // before they ever reach the wire.
  RuleFile Degraded = sampleRuleFile("libd.so");
  Degraded.Degraded = true;
  RuleClient C(RuleClientOptions{Sock, 2000});
  ASSERT_FALSE(C.publish({{{2, "jasan"}, &Degraded}}));
  EXPECT_EQ(Srv.entryCount(), 0u);
  EXPECT_EQ(C.stats().Published, 0u);
  EXPECT_EQ(Srv.stats().Publishes.load(), 0u)
      << "degraded file never left the client";
  Srv.stop();
}

TEST(RuleServer, DiskStoreSurvivesRestart) {
  std::string Sock = freshSocket("disk");
  std::string Dir = freshCacheDir("ruled-disk");

  RuleFile RF = sampleRuleFile("libpersist.so");
  uint64_t Hash = hashBytes(RF.serialize());
  {
    RuleServer Srv;
    RuleServerOptions Opts;
    Opts.SocketPath = Sock;
    Opts.DiskDir = Dir;
    ASSERT_FALSE(Srv.start(Opts));
    ASSERT_TRUE(Srv.publishLocal(Hash, "jasan", RF.serialize()));
    Srv.stop();
  }
  {
    RuleServer Srv;
    RuleServerOptions Opts;
    Opts.SocketPath = Sock;
    Opts.DiskDir = Dir;
    ASSERT_FALSE(Srv.start(Opts));
    EXPECT_EQ(Srv.entryCount(), 0u) << "memory store starts empty";
    RuleClient C(RuleClientOptions{Sock, 2000});
    ErrorOr<std::vector<std::optional<RuleFile>>> R =
        C.fetch({{Hash, "jasan"}});
    ASSERT_TRUE(static_cast<bool>(R));
    ASSERT_TRUE((*R)[0].has_value()) << "rehydrated from disk";
    EXPECT_EQ((*R)[0]->ModuleName, "libpersist.so");
    Srv.stop();
  }
}

//===----------------------------------------------------------------------===//
// StaticAnalyzer client tier
//===----------------------------------------------------------------------===//

struct AnalyzedProgram {
  RuleStore Rules;
  StaticAnalyzerStats Stats;
};

AnalyzedProgram analyze(const ModuleStore &Store,
                        const std::string &Socket = "") {
  AnalyzedProgram Out;
  StaticAnalyzerOptions Opts;
  Opts.RuledSocket = Socket;
  StaticAnalyzer SA(Opts);
  JASanTool Tool;
  EXPECT_FALSE(SA.analyzeProgram(Store, "prog", Tool, Out.Rules));
  Out.Stats = SA.stats();
  return Out;
}

TEST(RuleService, ServedRulesAreByteIdenticalToLocalAnalysis) {
  ModuleStore Store;
  addProgramWithJlibc(Store, CanaryFrameProg);

  // Reference: pure local analysis, no daemon anywhere.
  AnalyzedProgram Local = analyze(Store);
  EXPECT_EQ(Local.Stats.ModulesAnalyzed, 2u);

  std::string Sock = freshSocket("differential");
  RuleServer Srv;
  RuleServerOptions SOpts;
  SOpts.SocketPath = Sock;
  ASSERT_FALSE(Srv.start(SOpts));

  // First guest analyzes locally and publishes to the daemon.
  AnalyzedProgram Seeder = analyze(Store, Sock);
  EXPECT_EQ(Seeder.Stats.ModulesAnalyzed, 2u);
  EXPECT_EQ(Seeder.Stats.ServerPublished, 2u);
  EXPECT_EQ(Srv.entryCount(), 2u);

  // Second guest is served everything.
  AnalyzedProgram Served = analyze(Store, Sock);
  EXPECT_EQ(Served.Stats.ModulesAnalyzed, 0u);
  EXPECT_EQ(Served.Stats.ServerHits, 2u);
  for (const ModuleAnalysisTiming &T : Served.Stats.Timings)
    EXPECT_TRUE(T.FromServer) << T.Name;

  // Served rule files must be byte-identical to local analysis — the
  // daemon is a pure cache, never a semantic actor.
  auto LocalBytes = ruleBytes(Store, Local.Rules, "jasan");
  auto ServedBytes = ruleBytes(Store, Served.Rules, "jasan");
  ASSERT_EQ(LocalBytes.size(), 2u);
  EXPECT_EQ(LocalBytes, ServedBytes);
  Srv.stop();
}

TEST(RuleService, DeadDaemonDegradesToLocalWithIdenticalViolations) {
  ModuleStore Store;
  addProgramWithJlibc(Store, HeapOverflowProg);

  // Reference run: local analysis, then execute under JASan.
  AnalyzedProgram Local = analyze(Store);
  JASanOptions JOpts;
  JASanTool LocalTool(JOpts);
  JanitizerRun LocalRun =
      runUnderJanitizer(Store, "prog", LocalTool, Local.Rules);
  ASSERT_EQ(LocalRun.Violations.size(), 1u);
  EXPECT_EQ(LocalRun.Violations[0].What, "heap-redzone");

  // A daemon that was alive (and warmed) but died before this guest's
  // fetch: the client times out / fails to connect and the analyzer
  // falls back to local analysis for every module — no abort, no error.
  std::string Sock = freshSocket("deadd");
  {
    RuleServer Srv;
    RuleServerOptions SOpts;
    SOpts.SocketPath = Sock;
    ASSERT_FALSE(Srv.start(SOpts));
    analyze(Store, Sock); // warm it — then the daemon dies
    Srv.stop();
  }
  AnalyzedProgram Degraded = analyze(Store, Sock);
  EXPECT_EQ(Degraded.Stats.ModulesAnalyzed, 2u)
      << "every module analyzed locally after daemon death";
  EXPECT_GE(Degraded.Stats.ServerErrors, 1u);
  EXPECT_EQ(Degraded.Stats.ModulesDegraded, 0u)
      << "daemon loss is not module degradation";

  // The run under the fallback-analyzed rules reports the identical
  // violation tuple.
  JASanTool DegradedTool(JOpts);
  JanitizerRun DegradedRun =
      runUnderJanitizer(Store, "prog", DegradedTool, Degraded.Rules);
  EXPECT_EQ(DegradedRun.Result.ExitCode, LocalRun.Result.ExitCode);
  ASSERT_EQ(DegradedRun.Violations.size(), LocalRun.Violations.size());
  for (size_t I = 0; I < LocalRun.Violations.size(); ++I) {
    EXPECT_EQ(DegradedRun.Violations[I].Code, LocalRun.Violations[I].Code);
    EXPECT_EQ(DegradedRun.Violations[I].PC, LocalRun.Violations[I].PC);
    EXPECT_EQ(DegradedRun.Violations[I].Detail,
              LocalRun.Violations[I].Detail);
    EXPECT_EQ(DegradedRun.Violations[I].What, LocalRun.Violations[I].What);
  }

  // Rule bytes also match the pure-local reference.
  EXPECT_EQ(ruleBytes(Store, Local.Rules, "jasan"),
            ruleBytes(Store, Degraded.Rules, "jasan"));
}

/// A guest whose transport faults (via the named injection point) must
/// degrade to local analysis with byte-identical rule files.
void expectFaultedTransportFallsBack(const char *Point) {
  ModuleStore Store;
  addProgramWithJlibc(Store, CanaryFrameProg);
  AnalyzedProgram Local = analyze(Store);

  std::string Sock = freshSocket(std::string("fault-") +
                                 (Point + std::strlen("ruled.")));
  RuleServer Srv;
  RuleServerOptions SOpts;
  SOpts.SocketPath = Sock;
  ASSERT_FALSE(Srv.start(SOpts));
  {
    ScopedFaultPlan Plan({{Point, FaultTrigger::always()}});
    AnalyzedProgram Faulted = analyze(Store, Sock);
    EXPECT_EQ(Faulted.Stats.ModulesAnalyzed, 2u) << Point;
    EXPECT_GE(Faulted.Stats.ServerErrors, 1u) << Point;
    EXPECT_EQ(ruleBytes(Store, Local.Rules, "jasan"),
              ruleBytes(Store, Faulted.Rules, "jasan"))
        << Point;
  }
  Srv.stop();
}

TEST(RuleService, AcceptFaultFallsBackToLocal) {
  expectFaultedTransportFallsBack("ruled.accept");
}

TEST(RuleService, WriteFaultFallsBackToLocal) {
  expectFaultedTransportFallsBack("ruled.write");
}

TEST(RuleService, ReadFaultFallsBackToLocal) {
  expectFaultedTransportFallsBack("ruled.read");
}

TEST(RuleService, ClientFailsFastAfterDeath) {
  // A permanently dead daemon costs one bounded backoff sequence; every
  // later fetch fails immediately without touching the socket.
  RuleClientOptions CO;
  CO.SocketPath = "/nonexistent/ruled.sock";
  CO.TimeoutMs = 100;
  CO.MaxAttempts = 3;
  CO.BackoffBaseMs = 1;
  CO.BackoffCapMs = 2;
  RuleClient C(std::move(CO));
  EXPECT_FALSE(static_cast<bool>(C.fetch({{1, "jasan"}})));
  EXPECT_TRUE(C.dead());
  EXPECT_FALSE(static_cast<bool>(C.fetch({{2, "jasan"}})));
  EXPECT_EQ(C.stats().Errors, 1u) << "fail-fast: no second transport error";
}

TEST(RuleService, FlakyReadEveryNRetriesToSuccess) {
  // A transport that drops every 2nd response (every=2 schedule) must be
  // ridden out by the backoff loop: every round trip still succeeds, the
  // client never dies, and the retry counter records the recoveries.
  std::string Sock = freshSocket("flaky-read");
  RuleServer Srv;
  RuleServerOptions SOpts;
  SOpts.SocketPath = Sock;
  ASSERT_FALSE(Srv.start(SOpts));

  RuleClientOptions CO;
  CO.SocketPath = Sock;
  CO.BackoffBaseMs = 1;
  CO.BackoffCapMs = 2;
  RuleClient C(std::move(CO));
  uint64_t RetriesBefore =
      MetricsRegistry::instance().counter("jz.ruled.client.retries").value();
  {
    ScopedFaultPlan Plan({{"ruled.read", FaultTrigger::everyN(2)}});
    for (uint64_t I = 0; I < 6; ++I) {
      auto R = C.fetch({{I + 1, "jasan"}});
      ASSERT_TRUE(static_cast<bool>(R)) << "round trip " << I;
      ASSERT_EQ(R->size(), 1u);
      EXPECT_FALSE((*R)[0].has_value()) << "empty server: miss expected";
    }
  }
  EXPECT_FALSE(C.dead());
  EXPECT_EQ(C.stats().Errors, 0u) << "flakiness absorbed by retries";
  EXPECT_GE(
      MetricsRegistry::instance().counter("jz.ruled.client.retries").value(),
      RetriesBefore + 3)
      << "every=2 over 6 round trips forces at least 3 recoveries";
  Srv.stop();
}

TEST(RuleService, FlakyAcceptReconnectsAndServesByteIdentical) {
  // The daemon drops the first connection on the floor (ruled.accept
  // fault): the client must reconnect on retry and the served rules must
  // stay byte-identical to local analysis.
  ModuleStore Store;
  addProgramWithJlibc(Store, CanaryFrameProg);
  AnalyzedProgram Local = analyze(Store);

  std::string Sock = freshSocket("flaky-accept");
  RuleServer Srv;
  RuleServerOptions SOpts;
  SOpts.SocketPath = Sock;
  ASSERT_FALSE(Srv.start(SOpts));
  analyze(Store, Sock); // warm the daemon
  {
    ScopedFaultPlan Plan({{"ruled.accept", FaultTrigger::nthHit(1)}});
    AnalyzedProgram Served = analyze(Store, Sock);
    EXPECT_EQ(Served.Stats.ModulesAnalyzed, 0u)
        << "dropped first connection absorbed by reconnect";
    EXPECT_EQ(Served.Stats.ServerHits, 2u);
    EXPECT_EQ(ruleBytes(Store, Local.Rules, "jasan"),
              ruleBytes(Store, Served.Rules, "jasan"));
  }
  Srv.stop();
}

TEST(RuleService, FlakyReadFallbackStaysByteIdentical) {
  // When flakiness exceeds the retry budget mid-pipeline the analyzer
  // must still degrade to local analysis with byte-identical rules — the
  // backoff loop changes availability, never semantics.
  ModuleStore Store;
  addProgramWithJlibc(Store, CanaryFrameProg);
  AnalyzedProgram Local = analyze(Store);

  std::string Sock = freshSocket("flaky-exhaust");
  RuleServer Srv;
  RuleServerOptions SOpts;
  SOpts.SocketPath = Sock;
  ASSERT_FALSE(Srv.start(SOpts));
  {
    ScopedFaultPlan Plan({{"ruled.read", FaultTrigger::always()}});
    AnalyzedProgram Faulted = analyze(Store, Sock);
    EXPECT_EQ(Faulted.Stats.ModulesAnalyzed, 2u);
    EXPECT_GE(Faulted.Stats.ServerErrors, 1u);
    EXPECT_EQ(ruleBytes(Store, Local.Rules, "jasan"),
              ruleBytes(Store, Faulted.Rules, "jasan"));
  }
  Srv.stop();
}

} // namespace
