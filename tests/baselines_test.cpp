//===- tests/baselines_test.cpp - Baseline tool tests ----------------------===//

#include "baselines/BinCFI.h"
#include "baselines/Lockdown.h"
#include "baselines/RetroWrite.h"
#include "baselines/ValgrindASan.h"
#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"
#include "jcfi/JCFI.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"

#include <gtest/gtest.h>

using namespace janitizer;

namespace {

Module mustAssemble(const std::string &Src) {
  auto M = assembleModule(Src);
  if (!M) {
    ADD_FAILURE() << M.message();
    return Module();
  }
  return *M;
}

ModuleStore storeWith(const std::string &ExeSrc, bool WithFortran = false) {
  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  if (WithFortran)
    Store.add(cantFail(buildJfortran()));
  Store.add(mustAssemble(ExeSrc));
  return Store;
}

//===--------------------------------------------------------------------===//
// Valgrind-style dynamic-only sanitizer
//===--------------------------------------------------------------------===//

TEST(Valgrind, PreservesBenignProgram) {
  ModuleStore Store = storeWith(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern memset
    .func main
    main:
      movi r0, 64
      call malloc
      mov r9, r0
      movi r1, 3
      movi r2, 64
      call memset
      ld1 r0, [r9 + 63]
      syscall 0
    .endfunc
  )");
  BaselineRun R = runUnderValgrind(Store, "prog");
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  EXPECT_EQ(R.Result.ExitCode, 3);
  EXPECT_TRUE(R.Violations.empty());
}

TEST(Valgrind, DetectsHeapOverflow) {
  ModuleStore Store = storeWith(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .func main
    main:
      movi r0, 32
      call malloc
      ld8 r1, [r0 + 32]      ; first red-zone byte
      movi r0, 0
      syscall 0
    .endfunc
  )");
  BaselineRun R = runUnderValgrind(Store, "prog");
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "heap-redzone");
}

TEST(Valgrind, DetectsUseAfterRealloc) {
  // realloc is interposed like malloc/free: the old chunk is freed, so a
  // read through the stale pointer hits HeapFreed shadow.
  ModuleStore Store = storeWith(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern realloc
    .func main
    main:
      movi r0, 32
      call malloc
      mov r9, r0
      movi r1, 64
      call realloc
      ld8 r1, [r9]
      movi r0, 0
      syscall 0
    .endfunc
  )");
  BaselineRun R = runUnderValgrind(Store, "prog");
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "heap-use-after-free");
}

TEST(Valgrind, MissesHeapToStackButJasanCatchesIt) {
  // The §6.1.2 FN class: writes past a stack buffer into the canary
  // granule. Valgrind has no stack poisoning; JASan reports the canary.
  const char *Prog = R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .func main
    main:
      subi sp, 48
      mov r1, tp
      st8 [sp + 32], r1
      movi r0, 64
      call malloc
      mov r9, r0
      movi r5, 0
    copy:
      ld1 r6, [r9 + r5]
      st1 [sp + r5], r6
      addi r5, 1
      cmpi r5, 40
      jl copy
      ld8 r1, [sp + 32]
      cmp r1, tp
      jne smashed
      addi sp, 48
      movi r0, 0
      syscall 0
    smashed:
      movi r0, 9
      syscall 0
    .endfunc
  )";
  ModuleStore Store = storeWith(Prog);
  BaselineRun RV = runUnderValgrind(Store, "prog");
  ASSERT_EQ(RV.Result.St, RunResult::Status::Exited);
  EXPECT_TRUE(RV.Violations.empty()) << "Valgrind cannot see stack smashes";

  RuleStore Rules;
  StaticAnalyzer SA;
  JASanTool StaticTool;
  ASSERT_FALSE(static_cast<bool>(
      SA.analyzeProgram(Store, "prog", StaticTool, Rules)));
  JASanTool Tool;
  JanitizerRun RJ = runUnderJanitizer(Store, "prog", Tool, Rules);
  bool SawCanary = false;
  for (const Violation &V : RJ.Violations)
    if (V.What == "stack-canary")
      SawCanary = true;
  EXPECT_TRUE(SawCanary);
}

TEST(Valgrind, MissesLongStrideOverflowButJasanCatchesIt) {
  // §6.1.2's other FN class: a 64-byte-offset overflow leaps Valgrind's
  // 16-byte red zone into the next allocation's body, but lands inside
  // JASan's 64-byte red zone.
  const char *Prog = R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .func main
    main:
      movi r0, 32
      call malloc
      mov r9, r0
      movi r0, 32
      call malloc           ; adjacent chunk
      movi r1, 7
      st8 [r9 + 64], r1     ; 64 past the first allocation
      movi r0, 0
      syscall 0
    .endfunc
  )";
  ModuleStore Store = storeWith(Prog);
  BaselineRun RV = runUnderValgrind(Store, "prog");
  ASSERT_EQ(RV.Result.St, RunResult::Status::Exited);
  EXPECT_TRUE(RV.Violations.empty())
      << "offset 64 lands in the second allocation's valid bytes";

  RuleStore Rules;
  StaticAnalyzer SA;
  JASanTool StaticTool;
  ASSERT_FALSE(static_cast<bool>(
      SA.analyzeProgram(Store, "prog", StaticTool, Rules)));
  JASanTool Tool;
  JanitizerRun RJ = runUnderJanitizer(Store, "prog", Tool, Rules);
  ASSERT_GE(RJ.Violations.size(), 1u);
  EXPECT_EQ(RJ.Violations[0].What, "heap-redzone");
}

//===--------------------------------------------------------------------===//
// RetroWrite-style static rewriting
//===--------------------------------------------------------------------===//

const char *PicProg = R"(
  .module prog
  .pic
  .entry main
  .needed libjz.so
  .extern malloc
  .extern free
  .extern qsort
  .section data
  arr:
    .word8 5
    .word8 2
    .word8 9
  .section text
  .func cmp_asc
  cmp_asc:
    sub r0, r1
    ret
  .endfunc
  .func main
  main:
    movi r0, 48
    call malloc
    mov r9, r0
    movi r1, 11
    st8 [r9 + 40], r1
    ld8 r10, [r9 + 40]
    mov r0, r9
    call free
    la r0, arr
    movi r1, 3
    movi r2, 8
    la r3, cmp_asc
    call qsort
    la r5, arr
    ld8 r0, [r5]        ; 2
    add r0, r10         ; 13
    syscall 0
  .endfunc
)";

TEST(RetroWrite, RewritesAndRunsPicProgram) {
  ModuleStore Store = storeWith(PicProg);
  ModuleStore Rewritten;
  Error E = retroWriteProgram(Store, "prog", Rewritten);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();

  Process P(Rewritten);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  RunResult R = P.runNative(100'000'000);
  ASSERT_EQ(R.St, RunResult::Status::Exited) << R.FaultMsg;
  EXPECT_EQ(R.ExitCode, 13);
}

TEST(RetroWrite, RewrittenBinaryDetectsOverflow) {
  ModuleStore Store = storeWith(R"(
    .module prog
    .pic
    .entry main
    .needed libjz.so
    .extern malloc
    .func main
    main:
      movi r0, 32
      call malloc
      ld8 r1, [r0 + 40]   ; red zone
      movi r0, 0
      syscall 0
    .endfunc
  )");
  ModuleStore Rewritten;
  ASSERT_FALSE(static_cast<bool>(retroWriteProgram(Store, "prog", Rewritten)));
  Process P(Rewritten);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  RunResult R = P.runNative(100'000'000);
  EXPECT_EQ(R.St, RunResult::Status::Trapped);
  EXPECT_EQ(R.TrapCode, static_cast<uint8_t>(TrapCode::AsanViolation));
}

TEST(RetroWrite, RefusesNonPic) {
  Module M = mustAssemble(R"(
    .module plain
    .entry main
    .func main
    main:
      movi r0, 0
      syscall 0
    .endfunc
  )");
  auto R = retroWriteModule(M);
  EXPECT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.message().find("not position independent"), std::string::npos);
}

TEST(RetroWrite, RefusesEhMetadata) {
  Module M = mustAssemble(R"(
    .module cxx.so
    .pic
    .shared
    .ehmetadata
    .global f
    .func f
    f:
      ret
    .endfunc
  )");
  auto R = retroWriteModule(M);
  EXPECT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.message().find("exception metadata"), std::string::npos);
}

TEST(RetroWrite, RefusesDataIslands) {
  // A constant pool inside .text: relocation-guided recursive disassembly
  // cannot tile the section.
  Module M = mustAssemble(R"(
    .module islands.so
    .pic
    .shared
    .global f
    .func f
    f:
      movi r0, 1
      ret
    .endfunc
    .island 24 7
    .global g
    .func g
    g:
      movi r0, 2
      ret
    .endfunc
  )");
  auto R = retroWriteModule(M);
  EXPECT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.message().find("coverage gap"), std::string::npos);
}

TEST(RetroWrite, NoRuntimeTranslationOverheadVsJasan) {
  // RetroWrite (static) has no DBI cost; JASan-hybrid pays it but elides
  // more checks. Both must be in the same ballpark (§6.1.1: both 2.98x in
  // the paper). Here we just require the same detection and that
  // RetroWrite is not slower than JASan-dyn.
  ModuleStore Store = storeWith(PicProg);
  ModuleStore Rewritten;
  ASSERT_FALSE(static_cast<bool>(retroWriteProgram(Store, "prog", Rewritten)));
  Process P(Rewritten);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  RunResult RRetro = P.runNative(100'000'000);
  ASSERT_EQ(RRetro.St, RunResult::Status::Exited);

  JASanTool DynTool;
  RuleStore NoRules;
  JanitizerRun RDyn = runUnderJanitizer(Store, "prog", DynTool, NoRules);
  ASSERT_EQ(RDyn.Result.St, RunResult::Status::Exited);
  EXPECT_LT(RRetro.Cycles, RDyn.Result.Cycles);
}

//===--------------------------------------------------------------------===//
// BinCFI
//===--------------------------------------------------------------------===//

const char *CfiProg = R"(
  .module prog
  .entry main
  .needed libjz.so
  .extern qsort
  .section data
  arr:
    .word8 4
    .word8 1
  ftable:
    .quad op_a
    .quad op_b
  .section text
  .func cmp_asc
  cmp_asc:
    sub r0, r1
    ret
  .endfunc
  .func op_a
  op_a:
    addi r0, 10
    ret
  .endfunc
  .func op_b
  op_b:
    addi r0, 20
    ret
  .endfunc
  .func main
  main:
    la r0, arr
    movi r1, 2
    movi r2, 8
    la r3, cmp_asc
    call qsort
    la r5, ftable
    ld8 r6, [r5 + 8]
    movi r0, 1
    callr r6            ; op_b: 21
    la r5, arr
    ld8 r1, [r5]        ; 1
    add r0, r1          ; 22
    syscall 0
  .endfunc
)";

TEST(BinCFI, RewritesAndRunsCleanProgram) {
  ModuleStore Store = storeWith(CfiProg);
  ModuleStore Rewritten;
  Error E = binCfiProgram(Store, "prog", Rewritten);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  Process P(Rewritten);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  RunResult R = P.runNative(100'000'000);
  ASSERT_EQ(R.St, RunResult::Status::Exited) << R.FaultMsg;
  EXPECT_EQ(R.ExitCode, 22);
}

TEST(BinCFI, DetectsReturnToNonCallPreceded) {
  ModuleStore Store = storeWith(R"(
    .module prog
    .entry main
    .needed libjz.so
    .func evil
    evil:
      movi r0, 66
      syscall 0
    .endfunc
    .func victim
    victim:
      subi sp, 16
      la r1, evil
      st8 [sp + 16], r1
      addi sp, 16
      ret                  ; evil's entry is not call-preceded
    .endfunc
    .func main
    main:
      call victim
      movi r0, 1
      syscall 0
    .endfunc
  )");
  ModuleStore Rewritten;
  ASSERT_FALSE(static_cast<bool>(binCfiProgram(Store, "prog", Rewritten)));
  Process P(Rewritten);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  RunResult R = P.runNative(100'000'000);
  EXPECT_EQ(R.St, RunResult::Status::Trapped);
  EXPECT_EQ(R.TrapCode, static_cast<uint8_t>(TrapCode::CfiViolation));
}

TEST(BinCFI, AllowsReturnToAnyCallPrecededSite) {
  // The weak backward policy: a hijacked return onto a *call-preceded*
  // instruction in another function passes BinCFI (it would fail JCFI's
  // shadow stack).
  ModuleStore Store = storeWith(R"(
    .module prog
    .entry main
    .needed libjz.so
    .func leaf
    leaf:
      ret
    .endfunc
    .func other
    other:
      call leaf
    gadget:                ; call-preceded
      movi r0, 66
      syscall 0
    .endfunc
    .func victim
    victim:
      subi sp, 16
      la r1, gadget
      st8 [sp + 16], r1
      addi sp, 16
      ret
    .endfunc
    .func main
    main:
      call victim
      movi r0, 1
      syscall 0
    .endfunc
  )");
  ModuleStore Rewritten;
  ASSERT_FALSE(static_cast<bool>(binCfiProgram(Store, "prog", Rewritten)));
  Process P(Rewritten);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  RunResult R = P.runNative(100'000'000);
  ASSERT_EQ(R.St, RunResult::Status::Exited) << R.FaultMsg;
  EXPECT_EQ(R.ExitCode, 66) << "BinCFI's weak policy lets the ROP gadget run";
}

TEST(BinCFI, BreaksOnDataIslands) {
  // An in-code constant pool desynchronizes the sweep; the rewritten
  // program does not run correctly (gamess/zeusmp, §6.2.1).
  ModuleStore Store = storeWith(R"(
    .module prog
    .entry main
    .needed libjz.so
    .section data
    v:
      .word8 1
      .word8 2
      .word8 3
      .word8 4
    out: .zero 32
    .section text
    .island 24 5
    .func sum3
    sum3:
      movi r5, 1
      mov r6, r1
      subi r6, 1
      movi r0, 0
    s_loop:
      cmp r5, r6
      jae s_done
      ld8 r7, [r2 + r5*8]
      add r0, r7
      addi r5, 1
      jmp s_loop
    s_done:
      ret
    .endfunc
    .func main
    main:
      la r2, v
      movi r1, 4
      call sum3
      syscall 0
    .endfunc
  )");
  ModuleStore Rewritten;
  ASSERT_FALSE(static_cast<bool>(binCfiProgram(Store, "prog", Rewritten)));
  auto RW = binCfiModule(*Store.find("prog"));
  ASSERT_TRUE(static_cast<bool>(RW));
  EXPECT_TRUE(RW->SweepResynced) << "the sweep must have lost sync";
  Process P(Rewritten);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  RunResult R = P.runNative(100'000'000);
  bool Broken = R.St != RunResult::Status::Exited ||
                (R.St == RunResult::Status::Exited && R.ExitCode != 5);
  EXPECT_TRUE(Broken) << "mis-disassembled module should not run correctly";
}

TEST(BinCFI, StaticAirWeakerThanJcfi) {
  ModuleStore Store = storeWith(CfiProg);
  std::vector<const Module *> Mods = {Store.find("prog"),
                                      Store.find("libjz.so")};
  AirResult Jcfi = jcfiStaticAir(Mods);
  AirResult Bin = binCfiStaticAir(Mods);
  EXPECT_GT(Jcfi.Air, Bin.Air)
      << "JCFI's policy must dominate BinCFI's (Figure 13)";
  EXPECT_GT(Bin.Air, 0.5);
}

//===--------------------------------------------------------------------===//
// Lockdown
//===--------------------------------------------------------------------===//

TEST(Lockdown, BenignDataTableCallbacksPass) {
  ModuleStore Store = storeWith(CfiProg);
  LockdownRun R = runUnderLockdown(Store, "prog");
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  EXPECT_EQ(R.Result.ExitCode, 22);
  // ftable lives in data: the heuristic finds op_a/op_b. But the qsort
  // comparator travels only through registers: false positive (§6.2.2).
  ASSERT_EQ(R.Violations.size(), 1u)
      << "exactly the qsort callback should be flagged";
  EXPECT_EQ(R.Violations[0].What, "lockdown-icall");
}

TEST(Lockdown, WeakPolicyHasNoFalsePositives) {
  ModuleStore Store = storeWith(CfiProg);
  LockdownOptions Weak;
  Weak.StrongPolicy = false;
  LockdownRun R = runUnderLockdown(Store, "prog", Weak);
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited);
  EXPECT_EQ(R.Result.ExitCode, 22);
  EXPECT_TRUE(R.Violations.empty());
}

TEST(Lockdown, StrongAirHigherThanWeak) {
  ModuleStore Store = storeWith(CfiProg);
  LockdownOptions Strong;
  LockdownOptions Weak;
  Weak.StrongPolicy = false;
  LockdownRun RS = runUnderLockdown(Store, "prog", Strong);
  LockdownRun RW = runUnderLockdown(Store, "prog", Weak);
  EXPECT_GT(RS.Air.Air, RW.Air.Air);
}

TEST(Lockdown, DetectsReturnHijack) {
  ModuleStore Store = storeWith(R"(
    .module prog
    .entry main
    .needed libjz.so
    .func evil
    evil:
      movi r0, 66
      syscall 0
    .endfunc
    .func victim
    victim:
      subi sp, 16
      la r1, evil
      st8 [sp + 16], r1
      addi sp, 16
      ret
    .endfunc
    .func main
    main:
      call victim
      movi r0, 1
      syscall 0
    .endfunc
  )");
  LockdownRun R = runUnderLockdown(Store, "prog");
  EXPECT_EQ(R.Result.St, RunResult::Status::Trapped);
  EXPECT_TRUE(R.StackInconsistency);
}

TEST(Lockdown, NonlocalUnwindBreaksLockdownButNotJcfi) {
  // A longjmp-style unwind: inner returns straight to main, skipping
  // outer's frame. JCFI's shadow stack resynchronizes; Lockdown dies with
  // an inconsistency (the omnetpp/dealII failure mode).
  const char *Prog = R"(
    .module prog
    .entry main
    .needed libjz.so
    .func inner
    inner:
      mov sp, r9
      subi sp, 8
      ret                 ; directly back to main
    .endfunc
    .func outer
    outer:
      call inner
      trap 0              ; never reached
    .endfunc
    .func main
    main:
      mov r9, sp
      call outer
      movi r0, 42
      syscall 0
    .endfunc
  )";
  ModuleStore Store = storeWith(Prog);

  LockdownRun RL = runUnderLockdown(Store, "prog");
  EXPECT_TRUE(RL.StackInconsistency) << "Lockdown cannot run this program";
  EXPECT_NE(RL.Result.ExitCode, 42);

  // JCFI-hybrid handles it.
  RuleStore Rules;
  JcfiDatabase Db;
  StaticAnalyzer SA;
  JCFITool StaticTool(Db);
  StaticTool.setStaticOutput(&Db);
  ASSERT_FALSE(static_cast<bool>(
      SA.analyzeProgram(Store, "prog", StaticTool, Rules)));
  JCFITool Tool(Db);
  JanitizerRun RJ = runUnderJanitizer(Store, "prog", Tool, Rules);
  ASSERT_EQ(RJ.Result.St, RunResult::Status::Exited) << RJ.Result.FaultMsg;
  EXPECT_EQ(RJ.Result.ExitCode, 42);
  EXPECT_TRUE(RJ.Violations.empty());
}

} // namespace
