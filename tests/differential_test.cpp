//===- tests/differential_test.cpp - Cross-configuration differentials ----===//
///
/// Differential testing across instrumentation configurations: the same
/// workload runs (a) under JASan with static rules plus dynamic fallback,
/// (b) under JASan dynamic-only (no rule files at all), and (c)
/// uninstrumented. Program-visible output must be identical everywhere,
/// and the security verdicts of (a) and (b) must agree — the hybrid
/// pipeline may only be *faster* than the dynamic-only one, never differ
/// in what it computes or detects.
///
/// The second half proves observability is passive: arming the trace
/// collector and the metrics registry perturbs neither the rule files the
/// static analyzer emits (byte-identical across re-runs) nor a run's
/// verdicts and coverage.
///
//===----------------------------------------------------------------------===//

#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"
#include "runtime/Jlibc.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include "TestWorkloads.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

using namespace janitizer;
using testutil::addProgramWithJlibc;
using testutil::CanaryFrameProg;
using testutil::HeapOverflowProg;
using testutil::mustAssemble;
using testutil::randomProgram;
using testutil::ruleBytes;

namespace {

/// Collapses a run's security verdict into a comparable value.
std::vector<std::string> verdicts(const JanitizerRun &R) {
  std::vector<std::string> Out;
  for (const Violation &V : R.Violations)
    Out.push_back(V.What);
  return Out;
}

struct Differential {
  RunResult Native;
  JanitizerRun Hybrid;  ///< static rules + dynamic fallback
  JanitizerRun DynOnly; ///< empty RuleStore: everything on the fallback path
};

/// Runs \p Src (module \p Prog) under all three configurations.
Differential runAllConfigs(const std::string &Src, const std::string &Prog) {
  Differential D;
  ModuleStore Store;
  addProgramWithJlibc(Store, Src);

  Process Native(Store);
  EXPECT_FALSE(static_cast<bool>(Native.loadProgram(Prog)));
  D.Native = Native.runNative(100'000'000);

  RuleStore Rules;
  StaticAnalyzer SA;
  JASanTool StaticTool;
  EXPECT_FALSE(
      static_cast<bool>(SA.analyzeProgram(Store, Prog, StaticTool, Rules)));
  {
    JASanTool Tool;
    D.Hybrid = runUnderJanitizer(Store, Prog, Tool, Rules, 100'000'000);
  }
  {
    RuleStore NoRules;
    JASanTool Tool;
    D.DynOnly = runUnderJanitizer(Store, Prog, Tool, NoRules, 100'000'000);
  }
  return D;
}

/// Fixture: observability fully quiesced on entry and exit, so the
/// "unperturbed" halves of the differentials really run untraced.
class DifferentialTest : public ::testing::Test {
protected:
  void SetUp() override {
    TraceCollector::instance().stop();
    TraceCollector::instance().clear();
  }
  void TearDown() override {
    TraceCollector::instance().stop();
    TraceCollector::instance().clear();
  }
};

//===--------------------------------------------------------------------===//
// Static+dynamic vs dynamic-only vs uninstrumented
//===--------------------------------------------------------------------===//

TEST_F(DifferentialTest, PlantedBugVerdictIdenticalAcrossPipelines) {
  Differential D = runAllConfigs(HeapOverflowProg, "prog");
  // Output identical in all three configurations: the overflow read is
  // never consumed, so the program exits 0 everywhere.
  ASSERT_EQ(D.Native.St, RunResult::Status::Exited);
  ASSERT_EQ(D.Hybrid.Result.St, RunResult::Status::Exited)
      << D.Hybrid.Result.FaultMsg;
  ASSERT_EQ(D.DynOnly.Result.St, RunResult::Status::Exited)
      << D.DynOnly.Result.FaultMsg;
  EXPECT_EQ(D.Hybrid.Result.ExitCode, D.Native.ExitCode);
  EXPECT_EQ(D.DynOnly.Result.ExitCode, D.Native.ExitCode);

  // Verdicts identical between the hybrid and dynamic-only pipelines:
  // exactly the planted redzone read, found either way.
  EXPECT_EQ(verdicts(D.Hybrid),
            (std::vector<std::string>{"heap-redzone"}));
  EXPECT_EQ(verdicts(D.Hybrid), verdicts(D.DynOnly));

  // The pipelines must actually have taken different paths — otherwise
  // this differential is vacuous.
  EXPECT_GT(D.Hybrid.Coverage.StaticBlocks, 0u)
      << "hybrid run must execute statically-covered blocks";
  EXPECT_EQ(D.DynOnly.Coverage.StaticBlocks, 0u)
      << "dynamic-only run must have no static coverage";
  EXPECT_GT(D.DynOnly.Coverage.DynamicBlocks, 0u);
}

TEST_F(DifferentialTest, CleanProgramsIdenticalAcrossPipelines) {
  for (unsigned Seed : {11u, 12u, 13u, 14u}) {
    Differential D = runAllConfigs(randomProgram(Seed * 40503u + 9), "fuzz");
    ASSERT_EQ(D.Native.St, RunResult::Status::Exited) << "seed " << Seed;
    ASSERT_EQ(D.Hybrid.Result.St, RunResult::Status::Exited)
        << "seed " << Seed << ": " << D.Hybrid.Result.FaultMsg;
    ASSERT_EQ(D.DynOnly.Result.St, RunResult::Status::Exited)
        << "seed " << Seed << ": " << D.DynOnly.Result.FaultMsg;
    EXPECT_EQ(D.Hybrid.Result.ExitCode, D.Native.ExitCode) << "seed " << Seed;
    EXPECT_EQ(D.DynOnly.Result.ExitCode, D.Native.ExitCode) << "seed " << Seed;
    EXPECT_TRUE(D.Hybrid.Violations.empty())
        << "seed " << Seed << ": " << D.Hybrid.Violations[0].What;
    EXPECT_TRUE(D.DynOnly.Violations.empty())
        << "seed " << Seed << ": " << D.DynOnly.Violations[0].What;
  }
}

//===--------------------------------------------------------------------===//
// Block linking and trace formation are transparent
//===--------------------------------------------------------------------===//

/// A violation as a fully comparable tuple — Code, PC, Detail, What.  The
/// PC component is the trap-attribution differential: a violation raised
/// from inside a linked chain or a stitched trace must report the same
/// original application address as one raised block-by-block through the
/// dispatcher.
std::vector<std::tuple<uint8_t, uint64_t, uint64_t, std::string>>
violationTuples(const JanitizerRun &R) {
  std::vector<std::tuple<uint8_t, uint64_t, uint64_t, std::string>> Out;
  for (const Violation &V : R.Violations)
    Out.emplace_back(V.Code, V.PC, V.Detail, V.What);
  return Out;
}

/// The three dispatcher configurations of the link/trace sweep.  Var is
/// the kill-switch set for the run (nullptr = everything enabled).
struct LinkConfig {
  const char *Name;
  const char *Var;
};
constexpr LinkConfig LinkSweep[] = {
    {"default", nullptr},
    {"no-link", "JZ_NO_LINK"},
    {"no-trace", "JZ_NO_TRACE"},
};

/// Runs the hybrid JASan pipeline once per sweep configuration.  The
/// kill-switch is read at engine construction, so setenv around the run
/// is sufficient.
std::vector<JanitizerRun> runLinkSweep(const ModuleStore &Store,
                                       const std::string &Prog,
                                       const RuleStore &Rules) {
  std::vector<JanitizerRun> Out;
  for (const LinkConfig &C : LinkSweep) {
    if (C.Var)
      setenv(C.Var, "1", 1);
    JASanTool Tool;
    Out.push_back(runUnderJanitizer(Store, Prog, Tool, Rules, 100'000'000));
    if (C.Var)
      unsetenv(C.Var);
  }
  return Out;
}

/// Asserts that all sweep runs are observationally identical and that the
/// sweep is non-vacuous (the default configuration really linked and the
/// no-link configuration really did not).
void expectSweepIdentical(const std::vector<JanitizerRun> &Runs,
                          const std::string &Label) {
  const JanitizerRun &Ref = Runs[0];
  for (size_t I = 0; I < Runs.size(); ++I) {
    const JanitizerRun &R = Runs[I];
    const char *Cfg = LinkSweep[I].Name;
    ASSERT_EQ(R.Result.St, Ref.Result.St)
        << Label << " [" << Cfg << "]: " << R.Result.FaultMsg;
    EXPECT_EQ(R.Result.ExitCode, Ref.Result.ExitCode) << Label << " " << Cfg;
    EXPECT_EQ(R.Output, Ref.Output) << Label << " " << Cfg;
    EXPECT_EQ(violationTuples(R), violationTuples(Ref))
        << Label << " [" << Cfg << "]: verdicts (incl. trap PCs) must be "
        << "identical with and without linking/tracing";
    // Retired app instructions are the execution-shape invariant; block
    // *entries* are not (one trace entry covers several constituents).
    EXPECT_EQ(R.Result.Retired, Ref.Result.Retired) << Label << " " << Cfg;
  }
  // no-link must have taken the slow path everywhere; no-trace links but
  // never stitches.
  const JanitizerRun &NoLink = Runs[1], &NoTrace = Runs[2];
  EXPECT_EQ(NoLink.Dbi.LinksFollowed, 0u) << Label;
  EXPECT_EQ(NoLink.Dbi.IblHits, 0u) << Label;
  EXPECT_EQ(NoLink.Dbi.TracesBuilt, 0u) << Label;
  EXPECT_EQ(NoTrace.Dbi.TracesBuilt, 0u) << Label;
}

TEST_F(DifferentialTest, LinkSweepIdenticalAcrossWorkloads) {
  uint64_t DefaultLinks = 0;
  std::vector<std::pair<std::string, std::string>> Workloads = {
      {HeapOverflowProg, "prog"},
      {CanaryFrameProg, "prog"},
      {randomProgram(17u * 40503u + 9), "fuzz"},
      {randomProgram(18u * 40503u + 9), "fuzz"},
  };
  for (const auto &[Src, Prog] : Workloads) {
    ModuleStore Store;
    addProgramWithJlibc(Store, Src);
    RuleStore Rules;
    StaticAnalyzer SA;
    JASanTool StaticTool;
    ASSERT_FALSE(
        static_cast<bool>(SA.analyzeProgram(Store, Prog, StaticTool, Rules)));
    std::vector<JanitizerRun> Runs = runLinkSweep(Store, Prog, Rules);
    expectSweepIdentical(Runs, Prog);
    DefaultLinks += Runs[0].Dbi.LinksFollowed + Runs[0].Dbi.IblHits;
  }
  EXPECT_GT(DefaultLinks, 0u)
      << "sweep is vacuous: the default configuration never followed a link";
}

/// Plugin/host pair for the unload-mid-run differentials: the host
/// dlopens the plugin, hammers an indirect call into it (hot enough for
/// links, traces and jit stencils to exist), then dlcloses it mid-run —
/// three times over.  Exit code is 3 * 20 = 60.
constexpr const char *UnloadPluginProg = R"(
    .module plugin.so
    .pic
    .shared
    .global work
    .func work
    work:
      addi r0, 1
      ret
    .endfunc
)";
constexpr const char *UnloadHostProg = R"(
    .module host
    .entry main
    .section rodata
    pname: .string "plugin.so"
    wname: .string "work"
    .func main
    main:
      movi r9, 0         ; accumulator
      movi r11, 0        ; outer counter
    outer:
      la r0, pname
      syscall 4          ; dlopen -> handle
      mov r8, r0
      la r1, wname
      syscall 5          ; dlsym -> work
      mov r10, r0
      movi r12, 0
    inner:
      mov r0, r9
      callr r10          ; hot indirect call into the plugin
      mov r9, r0
      addi r12, 1
      cmpi r12, 20
      jl inner
      mov r0, r8
      syscall 8          ; dlclose mid-run: plugin code evicted
      addi r11, 1
      cmpi r11, 3
      jl outer
      mov r0, r9         ; 3 * 20 = 60
      syscall 0
    .endfunc
)";

TEST_F(DifferentialTest, LinkSweepSurvivesModuleUnloadMidRun) {
  // dlclose evicts linked and traced code mid-run; the re-dlopened module
  // may land at a different base.  A stale link or inline-cache entry
  // surviving the unload would either fault or silently run the old code.
  // The inner loop is hot enough (20 iterations > trace threshold) that
  // links into the plugin *and* a trace over the loop exist when the
  // unload happens.
  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  Store.add(mustAssemble(UnloadPluginProg));
  Store.add(mustAssemble(UnloadHostProg));
  RuleStore NoRules; // dynamic-only: every block on the fallback path
  std::vector<JanitizerRun> Runs = runLinkSweep(Store, "host", NoRules);
  expectSweepIdentical(Runs, "unload-mid-run");
  ASSERT_EQ(Runs[0].Result.St, RunResult::Status::Exited)
      << Runs[0].Result.FaultMsg;
  EXPECT_EQ(Runs[0].Result.ExitCode, 60);
  EXPECT_TRUE(Runs[0].Violations.empty());
  // Non-vacuity: the default run linked, hit the indirect-branch cache and
  // stitched at least one trace before/after the unloads.
  EXPECT_GT(Runs[0].Dbi.LinksFollowed, 0u);
  EXPECT_GT(Runs[0].Dbi.IblHits, 0u);
  EXPECT_GT(Runs[0].Dbi.TracesBuilt, 0u);
}

//===--------------------------------------------------------------------===//
// The template-JIT tier is transparent
//===--------------------------------------------------------------------===//

/// Kill-switch combinations of the jit-vs-interpreter sweep.  The first
/// row runs everything (jit on by default); the others knock out the jit,
/// the dispatcher optimizations it composes with, or both.  Indices are
/// load-bearing: expectJitSweepIdentical checks per-config non-vacuity by
/// position.
struct JitConfig {
  const char *Name;
  const char *Var;  ///< first kill-switch (nullptr = none)
  const char *Var2; ///< second kill-switch (nullptr = none)
};
constexpr JitConfig JitSweep[] = {
    {"jit", nullptr, nullptr},
    {"no-jit", "JZ_NO_JIT", nullptr},
    {"no-link+jit", "JZ_NO_LINK", nullptr},
    {"no-link+no-jit", "JZ_NO_LINK", "JZ_NO_JIT"},
    {"no-trace+jit", "JZ_NO_TRACE", nullptr},
};

/// Runs the JASan pipeline once per jit-sweep configuration with the
/// tier-up threshold forced to 1, so even short workloads reach the jit
/// tier.  All switches are read at engine construction; setenv around the
/// run is sufficient.
std::vector<JanitizerRun> runJitSweep(const ModuleStore &Store,
                                      const std::string &Prog,
                                      const RuleStore &Rules) {
  std::vector<JanitizerRun> Out;
  // The sweep owns these variables per-configuration; an ambient value
  // (e.g. the JZ_NO_JIT=1 re-run of this suite in check.sh's jit stage)
  // would silently kill-switch every configuration and make the
  // non-vacuity assertions below fail.
  for (const char *Ambient : {"JZ_NO_JIT", "JZ_NO_LINK", "JZ_NO_TRACE"})
    unsetenv(Ambient);
  setenv("JZ_JIT_THRESHOLD", "1", 1);
  for (const JitConfig &C : JitSweep) {
    if (C.Var)
      setenv(C.Var, "1", 1);
    if (C.Var2)
      setenv(C.Var2, "1", 1);
    JASanTool Tool;
    Out.push_back(runUnderJanitizer(Store, Prog, Tool, Rules, 100'000'000));
    if (C.Var)
      unsetenv(C.Var);
    if (C.Var2)
      unsetenv(C.Var2);
  }
  unsetenv("JZ_JIT_THRESHOLD");
  return Out;
}

/// Asserts every jit-sweep run is observationally identical to the first
/// and that the sweep is non-vacuous: jitted configurations executed
/// stencils, kill-switched ones did not.  \p Deterministic gates the
/// exact-count comparisons (Retired, Cycles) that only hold for
/// single-threaded workloads — with host threads, how often a blocked
/// join retries is scheduling-dependent.
void expectJitSweepIdentical(const std::vector<JanitizerRun> &Runs,
                             const std::string &Label,
                             bool Deterministic = true) {
  const JanitizerRun &Ref = Runs[0];
  for (size_t I = 0; I < Runs.size(); ++I) {
    const JanitizerRun &R = Runs[I];
    const char *Cfg = JitSweep[I].Name;
    ASSERT_EQ(R.Result.St, Ref.Result.St)
        << Label << " [" << Cfg << "]: " << R.Result.FaultMsg;
    EXPECT_EQ(R.Result.ExitCode, Ref.Result.ExitCode) << Label << " " << Cfg;
    EXPECT_EQ(R.Output, Ref.Output) << Label << " " << Cfg;
    EXPECT_EQ(violationTuples(R), violationTuples(Ref))
        << Label << " [" << Cfg << "]: verdicts (incl. trap PCs) must be "
        << "identical under the jit tier and the interpreter";
    if (Deterministic) {
      EXPECT_EQ(R.Result.Retired, Ref.Result.Retired) << Label << " " << Cfg;
    }
  }
  if (Deterministic) {
    // The jit tier is cycle-transparent: pairs that differ only in the
    // jit switch must agree on the simulated-cycle total too.
    EXPECT_EQ(Runs[0].Result.Cycles, Runs[1].Result.Cycles) << Label;
    EXPECT_EQ(Runs[2].Result.Cycles, Runs[3].Result.Cycles) << Label;
  }
  // Non-vacuity, by sweep position.
  EXPECT_GT(Runs[0].Dbi.JitCompiled, 0u) << Label;
  EXPECT_GT(Runs[0].Dbi.JitExecs, 0u) << Label;
  EXPECT_GT(Runs[0].Dbi.JitArenaBytes, 0u) << Label;
  EXPECT_EQ(Runs[1].Dbi.JitCompiled, 0u) << Label;
  EXPECT_EQ(Runs[1].Dbi.JitExecs, 0u) << Label;
  EXPECT_GT(Runs[2].Dbi.JitExecs, 0u) << Label;
  EXPECT_EQ(Runs[2].Dbi.LinksFollowed, 0u) << Label;
  EXPECT_EQ(Runs[3].Dbi.JitExecs, 0u) << Label;
  EXPECT_EQ(Runs[3].Dbi.LinksFollowed, 0u) << Label;
  EXPECT_GT(Runs[4].Dbi.JitExecs, 0u) << Label;
  EXPECT_EQ(Runs[4].Dbi.TracesBuilt, 0u) << Label;
}

TEST_F(DifferentialTest, JitSweepIdenticalAcrossWorkloads) {
  // Planted-violation and clean workloads, all via the hybrid pipeline
  // (static rules + dynamic fallback) so jitted blocks carry real
  // instrumentation, not just bare translation.
  std::vector<std::pair<std::string, std::string>> Workloads = {
      {HeapOverflowProg, "prog"},
      {CanaryFrameProg, "prog"},
      {randomProgram(21u * 40503u + 9), "fuzz"},
      {randomProgram(22u * 40503u + 9), "fuzz"},
  };
  for (const auto &[Src, Prog] : Workloads) {
    ModuleStore Store;
    addProgramWithJlibc(Store, Src);
    RuleStore Rules;
    StaticAnalyzer SA;
    JASanTool StaticTool;
    ASSERT_FALSE(
        static_cast<bool>(SA.analyzeProgram(Store, Prog, StaticTool, Rules)));
    std::vector<JanitizerRun> Runs = runJitSweep(Store, Prog, Rules);
    expectJitSweepIdentical(Runs, Prog);
  }
}

TEST_F(DifferentialTest, JitSweepSurvivesModuleUnloadMidRun) {
  // The dlclose-mid-run workload from the link sweep, now with stencils:
  // dlclose evicts jitted plugin code while the loop around it is hot.  A
  // stale stencil surviving the flush would run the old plugin code (or
  // worse); the sweep proves the jitted run still computes 3*20=60.
  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  Store.add(mustAssemble(UnloadPluginProg));
  Store.add(mustAssemble(UnloadHostProg));
  RuleStore NoRules; // dynamic-only: every block on the fallback path
  std::vector<JanitizerRun> Runs = runJitSweep(Store, "host", NoRules);
  expectJitSweepIdentical(Runs, "jit-unload-mid-run");
  ASSERT_EQ(Runs[0].Result.St, RunResult::Status::Exited)
      << Runs[0].Result.FaultMsg;
  EXPECT_EQ(Runs[0].Result.ExitCode, 60);
  EXPECT_TRUE(Runs[0].Violations.empty());
}

TEST_F(DifferentialTest, JitSweepMultithreadedWorkload) {
  // Contention-free multi-threaded workload: three workers fill private
  // slots, main joins and prints the sum.  Output/exit/verdicts must be
  // identical across the sweep; exact Retired/Cycles are excluded (join
  // retry counts are host-scheduling-dependent, jit or not).
  ModuleStore Store;
  addProgramWithJlibc(Store, R"(
    .module mtjit
    .entry main
    .needed libjz.so
    .extern thread_create
    .extern thread_join
    .extern print_u64
    .section bss
    slots: .zero 32
    tids: .zero 32
    .section text
    .func worker
    worker:
      mov r7, r0         ; slot index
      movi r9, 0
      movi r8, 0
    w_loop:
      addi r8, 3
      addi r9, 1
      cmpi r9, 64
      jl w_loop          ; hot: crosses the (forced) jit threshold
      la r5, slots
      st8 [r5 + r7*8], r8
      movi r0, 0
      ret
    .endfunc
    .func main
    main:
      movi r12, 0
    m_spawn:
      la r0, worker
      mov r1, r12
      call thread_create
      la r5, tids
      st8 [r5 + r12*8], r0
      addi r12, 1
      cmpi r12, 3
      jl m_spawn
      movi r12, 0
    m_join:
      la r5, tids
      ld8 r0, [r5 + r12*8]
      cmpi r0, -1
      jne m_dojoin
      mov r0, r12        ; spawn failed: run the worker inline
      call worker
      jmp m_next
    m_dojoin:
      call thread_join
    m_next:
      addi r12, 1
      cmpi r12, 3
      jl m_join
      movi r10, 0
      movi r12, 0
    m_sum:
      la r5, slots
      ld8 r4, [r5 + r12*8]
      add r10, r4
      addi r12, 1
      cmpi r12, 3
      jl m_sum
      mov r0, r10
      call print_u64     ; 3 slots * 64 * 3 = 576
      movi r0, 0
      syscall 0
    .endfunc
  )");
  RuleStore NoRules;
  std::vector<JanitizerRun> Runs = runJitSweep(Store, "mtjit", NoRules);
  expectJitSweepIdentical(Runs, "mt-jit", /*Deterministic=*/false);
  ASSERT_EQ(Runs[0].Result.St, RunResult::Status::Exited)
      << Runs[0].Result.FaultMsg;
  EXPECT_EQ(Runs[0].Output, "576");
  EXPECT_TRUE(Runs[0].Violations.empty());
}

//===--------------------------------------------------------------------===//
// Observability is passive
//===--------------------------------------------------------------------===//

TEST_F(DifferentialTest, TracingDoesNotPerturbEmittedRules) {
  ModuleStore Store;
  addProgramWithJlibc(Store, HeapOverflowProg);
  JASanTool Tool;

  // Reference: untraced analysis.
  RuleStore RulesPlain;
  {
    StaticAnalyzer SA;
    ASSERT_FALSE(static_cast<bool>(
        SA.analyzeProgram(Store, "prog", Tool, RulesPlain)));
  }
  auto Plain = ruleBytes(Store, RulesPlain, Tool.name());
  ASSERT_FALSE(Plain.empty());

  // Same analysis with the full observability surface armed.
  TraceCollector::instance().start();
  RuleStore RulesTraced;
  {
    StaticAnalyzer SA;
    ASSERT_FALSE(static_cast<bool>(
        SA.analyzeProgram(Store, "prog", Tool, RulesTraced)));
  }
  TraceCollector::instance().stop();
  EXPECT_GT(TraceCollector::instance().eventCount(), 0u)
      << "the traced run must actually have recorded spans";
  auto Traced = ruleBytes(Store, RulesTraced, Tool.name());
  EXPECT_EQ(Plain, Traced)
      << "tracing an analysis must not change its rule files";

  // And a second untraced re-run is byte-identical too (determinism).
  RuleStore RulesAgain;
  {
    StaticAnalyzer SA;
    ASSERT_FALSE(static_cast<bool>(
        SA.analyzeProgram(Store, "prog", Tool, RulesAgain)));
  }
  EXPECT_EQ(Plain, ruleBytes(Store, RulesAgain, Tool.name()));
}

TEST_F(DifferentialTest, TracingDoesNotPerturbExecution) {
  ModuleStore Store;
  addProgramWithJlibc(Store, HeapOverflowProg);
  RuleStore Rules;
  StaticAnalyzer SA;
  JASanTool StaticTool;
  ASSERT_FALSE(
      static_cast<bool>(SA.analyzeProgram(Store, "prog", StaticTool, Rules)));

  JanitizerRun Plain;
  {
    JASanTool Tool;
    Plain = runUnderJanitizer(Store, "prog", Tool, Rules, 100'000'000);
  }
  TraceCollector::instance().start();
  JanitizerRun Traced;
  {
    JASanTool Tool;
    Traced = runUnderJanitizer(Store, "prog", Tool, Rules, 100'000'000);
  }
  TraceCollector::instance().stop();
  EXPECT_GT(TraceCollector::instance().eventCount(), 0u);

  ASSERT_EQ(Plain.Result.St, RunResult::Status::Exited);
  ASSERT_EQ(Traced.Result.St, RunResult::Status::Exited);
  EXPECT_EQ(Traced.Result.ExitCode, Plain.Result.ExitCode);
  EXPECT_EQ(verdicts(Traced), verdicts(Plain));
  // Coverage accounting — block classification, dispatch hits, fallbacks
  // — is part of what must not move under tracing.
  EXPECT_EQ(Traced.Coverage.StaticBlocks, Plain.Coverage.StaticBlocks);
  EXPECT_EQ(Traced.Coverage.DynamicBlocks, Plain.Coverage.DynamicBlocks);
  EXPECT_EQ(Traced.Coverage.RuleLookups, Plain.Coverage.RuleLookups);
  EXPECT_EQ(Traced.Coverage.RuleHits, Plain.Coverage.RuleHits);
  EXPECT_EQ(Traced.Coverage.RuleFallbacks, Plain.Coverage.RuleFallbacks);
}

} // namespace
