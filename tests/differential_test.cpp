//===- tests/differential_test.cpp - Cross-configuration differentials ----===//
///
/// Differential testing across instrumentation configurations: the same
/// workload runs (a) under JASan with static rules plus dynamic fallback,
/// (b) under JASan dynamic-only (no rule files at all), and (c)
/// uninstrumented. Program-visible output must be identical everywhere,
/// and the security verdicts of (a) and (b) must agree — the hybrid
/// pipeline may only be *faster* than the dynamic-only one, never differ
/// in what it computes or detects.
///
/// The second half proves observability is passive: arming the trace
/// collector and the metrics registry perturbs neither the rule files the
/// static analyzer emits (byte-identical across re-runs) nor a run's
/// verdicts and coverage.
///
//===----------------------------------------------------------------------===//

#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"
#include "runtime/Jlibc.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include "TestWorkloads.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace janitizer;
using testutil::addProgramWithJlibc;
using testutil::HeapOverflowProg;
using testutil::randomProgram;
using testutil::ruleBytes;

namespace {

/// Collapses a run's security verdict into a comparable value.
std::vector<std::string> verdicts(const JanitizerRun &R) {
  std::vector<std::string> Out;
  for (const Violation &V : R.Violations)
    Out.push_back(V.What);
  return Out;
}

struct Differential {
  RunResult Native;
  JanitizerRun Hybrid;  ///< static rules + dynamic fallback
  JanitizerRun DynOnly; ///< empty RuleStore: everything on the fallback path
};

/// Runs \p Src (module \p Prog) under all three configurations.
Differential runAllConfigs(const std::string &Src, const std::string &Prog) {
  Differential D;
  ModuleStore Store;
  addProgramWithJlibc(Store, Src);

  Process Native(Store);
  EXPECT_FALSE(static_cast<bool>(Native.loadProgram(Prog)));
  D.Native = Native.runNative(100'000'000);

  RuleStore Rules;
  StaticAnalyzer SA;
  JASanTool StaticTool;
  EXPECT_FALSE(
      static_cast<bool>(SA.analyzeProgram(Store, Prog, StaticTool, Rules)));
  {
    JASanTool Tool;
    D.Hybrid = runUnderJanitizer(Store, Prog, Tool, Rules, 100'000'000);
  }
  {
    RuleStore NoRules;
    JASanTool Tool;
    D.DynOnly = runUnderJanitizer(Store, Prog, Tool, NoRules, 100'000'000);
  }
  return D;
}

/// Fixture: observability fully quiesced on entry and exit, so the
/// "unperturbed" halves of the differentials really run untraced.
class DifferentialTest : public ::testing::Test {
protected:
  void SetUp() override {
    TraceCollector::instance().stop();
    TraceCollector::instance().clear();
  }
  void TearDown() override {
    TraceCollector::instance().stop();
    TraceCollector::instance().clear();
  }
};

//===--------------------------------------------------------------------===//
// Static+dynamic vs dynamic-only vs uninstrumented
//===--------------------------------------------------------------------===//

TEST_F(DifferentialTest, PlantedBugVerdictIdenticalAcrossPipelines) {
  Differential D = runAllConfigs(HeapOverflowProg, "prog");
  // Output identical in all three configurations: the overflow read is
  // never consumed, so the program exits 0 everywhere.
  ASSERT_EQ(D.Native.St, RunResult::Status::Exited);
  ASSERT_EQ(D.Hybrid.Result.St, RunResult::Status::Exited)
      << D.Hybrid.Result.FaultMsg;
  ASSERT_EQ(D.DynOnly.Result.St, RunResult::Status::Exited)
      << D.DynOnly.Result.FaultMsg;
  EXPECT_EQ(D.Hybrid.Result.ExitCode, D.Native.ExitCode);
  EXPECT_EQ(D.DynOnly.Result.ExitCode, D.Native.ExitCode);

  // Verdicts identical between the hybrid and dynamic-only pipelines:
  // exactly the planted redzone read, found either way.
  EXPECT_EQ(verdicts(D.Hybrid),
            (std::vector<std::string>{"heap-redzone"}));
  EXPECT_EQ(verdicts(D.Hybrid), verdicts(D.DynOnly));

  // The pipelines must actually have taken different paths — otherwise
  // this differential is vacuous.
  EXPECT_GT(D.Hybrid.Coverage.StaticBlocks, 0u)
      << "hybrid run must execute statically-covered blocks";
  EXPECT_EQ(D.DynOnly.Coverage.StaticBlocks, 0u)
      << "dynamic-only run must have no static coverage";
  EXPECT_GT(D.DynOnly.Coverage.DynamicBlocks, 0u);
}

TEST_F(DifferentialTest, CleanProgramsIdenticalAcrossPipelines) {
  for (unsigned Seed : {11u, 12u, 13u, 14u}) {
    Differential D = runAllConfigs(randomProgram(Seed * 40503u + 9), "fuzz");
    ASSERT_EQ(D.Native.St, RunResult::Status::Exited) << "seed " << Seed;
    ASSERT_EQ(D.Hybrid.Result.St, RunResult::Status::Exited)
        << "seed " << Seed << ": " << D.Hybrid.Result.FaultMsg;
    ASSERT_EQ(D.DynOnly.Result.St, RunResult::Status::Exited)
        << "seed " << Seed << ": " << D.DynOnly.Result.FaultMsg;
    EXPECT_EQ(D.Hybrid.Result.ExitCode, D.Native.ExitCode) << "seed " << Seed;
    EXPECT_EQ(D.DynOnly.Result.ExitCode, D.Native.ExitCode) << "seed " << Seed;
    EXPECT_TRUE(D.Hybrid.Violations.empty())
        << "seed " << Seed << ": " << D.Hybrid.Violations[0].What;
    EXPECT_TRUE(D.DynOnly.Violations.empty())
        << "seed " << Seed << ": " << D.DynOnly.Violations[0].What;
  }
}

//===--------------------------------------------------------------------===//
// Observability is passive
//===--------------------------------------------------------------------===//

TEST_F(DifferentialTest, TracingDoesNotPerturbEmittedRules) {
  ModuleStore Store;
  addProgramWithJlibc(Store, HeapOverflowProg);
  JASanTool Tool;

  // Reference: untraced analysis.
  RuleStore RulesPlain;
  {
    StaticAnalyzer SA;
    ASSERT_FALSE(static_cast<bool>(
        SA.analyzeProgram(Store, "prog", Tool, RulesPlain)));
  }
  auto Plain = ruleBytes(Store, RulesPlain, Tool.name());
  ASSERT_FALSE(Plain.empty());

  // Same analysis with the full observability surface armed.
  TraceCollector::instance().start();
  RuleStore RulesTraced;
  {
    StaticAnalyzer SA;
    ASSERT_FALSE(static_cast<bool>(
        SA.analyzeProgram(Store, "prog", Tool, RulesTraced)));
  }
  TraceCollector::instance().stop();
  EXPECT_GT(TraceCollector::instance().eventCount(), 0u)
      << "the traced run must actually have recorded spans";
  auto Traced = ruleBytes(Store, RulesTraced, Tool.name());
  EXPECT_EQ(Plain, Traced)
      << "tracing an analysis must not change its rule files";

  // And a second untraced re-run is byte-identical too (determinism).
  RuleStore RulesAgain;
  {
    StaticAnalyzer SA;
    ASSERT_FALSE(static_cast<bool>(
        SA.analyzeProgram(Store, "prog", Tool, RulesAgain)));
  }
  EXPECT_EQ(Plain, ruleBytes(Store, RulesAgain, Tool.name()));
}

TEST_F(DifferentialTest, TracingDoesNotPerturbExecution) {
  ModuleStore Store;
  addProgramWithJlibc(Store, HeapOverflowProg);
  RuleStore Rules;
  StaticAnalyzer SA;
  JASanTool StaticTool;
  ASSERT_FALSE(
      static_cast<bool>(SA.analyzeProgram(Store, "prog", StaticTool, Rules)));

  JanitizerRun Plain;
  {
    JASanTool Tool;
    Plain = runUnderJanitizer(Store, "prog", Tool, Rules, 100'000'000);
  }
  TraceCollector::instance().start();
  JanitizerRun Traced;
  {
    JASanTool Tool;
    Traced = runUnderJanitizer(Store, "prog", Tool, Rules, 100'000'000);
  }
  TraceCollector::instance().stop();
  EXPECT_GT(TraceCollector::instance().eventCount(), 0u);

  ASSERT_EQ(Plain.Result.St, RunResult::Status::Exited);
  ASSERT_EQ(Traced.Result.St, RunResult::Status::Exited);
  EXPECT_EQ(Traced.Result.ExitCode, Plain.Result.ExitCode);
  EXPECT_EQ(verdicts(Traced), verdicts(Plain));
  // Coverage accounting — block classification, dispatch hits, fallbacks
  // — is part of what must not move under tracing.
  EXPECT_EQ(Traced.Coverage.StaticBlocks, Plain.Coverage.StaticBlocks);
  EXPECT_EQ(Traced.Coverage.DynamicBlocks, Plain.Coverage.DynamicBlocks);
  EXPECT_EQ(Traced.Coverage.RuleLookups, Plain.Coverage.RuleLookups);
  EXPECT_EQ(Traced.Coverage.RuleHits, Plain.Coverage.RuleHits);
  EXPECT_EQ(Traced.Coverage.RuleFallbacks, Plain.Coverage.RuleFallbacks);
}

} // namespace
