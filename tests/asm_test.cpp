//===- tests/asm_test.cpp - Assembler and linker edge cases ----------------===//

#include "jasm/Assembler.h"
#include "isa/Encoding.h"
#include "vm/Syscalls.h"

#include <gtest/gtest.h>

using namespace janitizer;

namespace {

Module mustAssemble(const std::string &Src) {
  auto M = assembleModule(Src);
  if (!M) {
    ADD_FAILURE() << M.message();
    return Module();
  }
  return *M;
}

void expectError(const std::string &Src, const char *Needle) {
  auto M = assembleModule(Src);
  ASSERT_FALSE(static_cast<bool>(M)) << "expected failure: " << Needle;
  EXPECT_NE(M.message().find(Needle), std::string::npos) << M.message();
}

TEST(AsmErrors, Diagnostics) {
  expectError("frobnicate r1\n", "unknown mnemonic");
  expectError("add r1\n", "expects 2 operand");
  expectError("add r1, r99\n", "expected register");
  expectError("addi r1, zzz\n", "bad immediate");
  expectError("addi r1, 99999999999\n", "32-bit range");
  expectError("jmp nowhere\n", "undefined label");
  expectError(".func f\n ret\n", "unterminated .func");
  expectError(".section bogus\n", "unknown section");
  expectError(".bogusdir\n", "unknown directive");
  expectError("a:\nnop\na:\n", "duplicate label");
  expectError("ld8 r1, [r2 + r3 + r4]\n", "too many registers");
  expectError("ld8 r1, [r2*16]\n", "scale must be");
  expectError("syscall 999\n", "out of range");
  expectError(".quad missing\n.entry missing\n", "undefined");
}

TEST(AsmErrors, ErrorsCarryLineNumbers) {
  auto M = assembleModule("nop\nnop\nnop\nbroken!\n");
  ASSERT_FALSE(static_cast<bool>(M));
  EXPECT_NE(M.message().find("line 4"), std::string::npos) << M.message();
}

TEST(AsmErrors, PicRestrictions) {
  expectError(".pic\n.func f\nf:\nld8 r1, [f]\nret\n.endfunc\n",
              "not position independent");
  expectError(".pic\n.func f\nf:\nmovq r1, =f\nret\n.endfunc\n",
              "not position independent");
}

TEST(AsmLayout, SectionOrderAndAlignment) {
  Module M = mustAssemble(R"(
    .module layout
    .section init
    i: ret
    .section text
    .func t
    t: ret
    .endfunc
    .section fini
    f: ret
    .section rodata
    ro: .word8 1
    .section data
    d: .word8 2
    .section bss
    b: .zero 32
  )");
  uint64_t Last = 0;
  for (SectionKind K :
       {SectionKind::Init, SectionKind::Text, SectionKind::Fini,
        SectionKind::Rodata, SectionKind::Data, SectionKind::Bss}) {
    const Section *S = M.section(K);
    ASSERT_NE(S, nullptr) << sectionKindName(K);
    EXPECT_GE(S->Addr, Last) << sectionKindName(K);
    EXPECT_EQ(S->Addr % 16, 0u) << sectionKindName(K);
    Last = S->Addr + S->size();
  }
  EXPECT_EQ(M.section(SectionKind::Bss)->BssSize, 32u);
}

TEST(AsmLinker, PltAndGotSynthesis) {
  Module M = mustAssemble(R"(
    .module uses
    .extern alpha
    .extern beta
    .extern gamma_data
    .func f
    f:
      call alpha
      call beta
      call alpha          ; reused stub, not a second one
      gotld r1, gamma_data
      ret
    .endfunc
  )");
  ASSERT_EQ(M.Plt.size(), 2u);
  const Section *Plt = M.section(SectionKind::Plt);
  const Section *Got = M.section(SectionKind::Got);
  ASSERT_NE(Plt, nullptr);
  ASSERT_NE(Got, nullptr);
  // GOT: one slot per imported function + one per imported datum.
  EXPECT_EQ(Got->size(), 8u * 3);
  // plt0 (3 bytes) + 21 per entry.
  EXPECT_EQ(Plt->size(), 3u + 21 * 2);
  // Stub layout invariants.
  for (const PltEntry &P : M.Plt) {
    EXPECT_TRUE(Plt->contains(P.StubVA));
    EXPECT_TRUE(Plt->contains(P.LazyVA));
    EXPECT_TRUE(Got->contains(P.GotSlotVA));
    EXPECT_EQ(P.LazyVA, P.StubVA + 7);
  }
  // Each function slot starts out pointing at its lazy stub via a rebase
  // relocation.
  unsigned LazyRelocs = 0;
  for (const Relocation &R : M.DynRelocs)
    for (const PltEntry &P : M.Plt)
      if (R.Kind == RelocKind::Rebase64 && R.Site == P.GotSlotVA &&
          static_cast<uint64_t>(R.Addend) == P.LazyVA)
        ++LazyRelocs;
  EXPECT_EQ(LazyRelocs, 2u);
  // The imported datum gets a symbol-absolute relocation.
  bool DataReloc = false;
  for (const Relocation &R : M.DynRelocs)
    if (R.Kind == RelocKind::SymAbs64 && R.SymbolName == "gamma_data")
      DataReloc = true;
  EXPECT_TRUE(DataReloc);
  // plt0 begins with the Resolve service call followed by the
  // RET-to-function idiom.
  Instruction I;
  ASSERT_TRUE(decode(Plt->Bytes.data(), Plt->Bytes.size(), I));
  EXPECT_EQ(I.Op, Opcode::SYSCALL);
  EXPECT_EQ(I.Imm, static_cast<int64_t>(SyscallNum::Resolve));
  ASSERT_TRUE(decode(Plt->Bytes.data() + I.Size, 8, I));
  EXPECT_EQ(I.Op, Opcode::RET);
}

TEST(AsmSymbols, StrippedKeepsOnlyExports) {
  Module M = mustAssemble(R"(
    .module s
    .stripped
    .global pub
    .func pub
    pub: ret
    .endfunc
    .func priv
    priv: ret
    .endfunc
  )");
  EXPECT_FALSE(M.HasFullSymbols);
  EXPECT_NE(M.findSymbol("pub"), nullptr);
  EXPECT_EQ(M.findSymbol("priv"), nullptr);
}

TEST(AsmSymbols, FunctionSizes) {
  Module M = mustAssemble(R"(
    .module m
    .func a
    a:
      nop
      nop
      ret
    .endfunc
    .func b
    b:
      movq r1, 5
      ret
    .endfunc
  )");
  EXPECT_EQ(M.findSymbol("a")->Size, 3u);
  EXPECT_EQ(M.findSymbol("b")->Size, 11u);
  EXPECT_EQ(M.findSymbol("b")->Value, M.findSymbol("a")->Value + 3);
}

TEST(AsmData, QuadAndOffsetTables) {
  Module M = mustAssemble(R"(
    .module m
    .section rodata
    t8: .quad f
    t4: .offset32 f
    .section text
    .func f
    f: ret
    .endfunc
  )");
  const Symbol *F = M.findSymbol("f");
  const Section *Ro = M.section(SectionKind::Rodata);
  ASSERT_NE(F, nullptr);
  ASSERT_NE(Ro, nullptr);
  // Non-PIC: .quad holds the absolute VA statically.
  uint64_t Q = 0;
  for (int K = 7; K >= 0; --K)
    Q = (Q << 8) | Ro->Bytes[static_cast<size_t>(K)];
  EXPECT_EQ(Q, F->Value);
  // .offset32 holds the module-relative offset.
  uint32_t Off = 0;
  for (int K = 3; K >= 0; --K)
    Off = (Off << 8) | Ro->Bytes[8 + static_cast<size_t>(K)];
  EXPECT_EQ(Off, F->Value - M.LinkBase);
}

TEST(AsmData, PicQuadGetsRebaseReloc) {
  Module M = mustAssemble(R"(
    .module m.so
    .pic
    .shared
    .section data
    t: .quad f
    .section text
    .global f
    .func f
    f: ret
    .endfunc
  )");
  bool Found = false;
  for (const Relocation &R : M.DynRelocs)
    if (R.Kind == RelocKind::Rebase64 &&
        static_cast<uint64_t>(R.Addend) == M.findSymbol("f")->Value)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(AsmData, IslandEndsWithDesyncByte) {
  Module M = mustAssemble(R"(
    .module m
    .func f
    f: ret
    .endfunc
    .island 12 9
    .func g
    g: ret
    .endfunc
  )");
  ASSERT_EQ(M.Islands.size(), 1u);
  const Section *T = M.section(SectionKind::Text);
  uint64_t Off = M.Islands[0].Addr - T->Addr + M.Islands[0].Size - 1;
  EXPECT_EQ(T->Bytes[Off], static_cast<uint8_t>(Opcode::MOV_RI64))
      << "island must end with a long-opcode byte to desync linear sweeps";
}

TEST(AsmPseudo, LaExpandsPerPicMode) {
  Module NonPic = mustAssemble(
      ".module a\n.func f\nf:\n la r1, f\n ret\n.endfunc\n");
  const Section *T1 = NonPic.section(SectionKind::Text);
  Instruction I;
  ASSERT_TRUE(decode(T1->Bytes.data(), T1->Bytes.size(), I));
  EXPECT_EQ(I.Op, Opcode::MOV_RI64);
  EXPECT_EQ(static_cast<uint64_t>(I.Imm), NonPic.findSymbol("f")->Value);

  Module Pic = mustAssemble(
      ".module b\n.pic\n.func f\nf:\n la r1, f\n ret\n.endfunc\n");
  const Section *T2 = Pic.section(SectionKind::Text);
  ASSERT_TRUE(decode(T2->Bytes.data(), T2->Bytes.size(), I));
  EXPECT_EQ(I.Op, Opcode::LEA);
  EXPECT_TRUE(I.Mem.PCRel);
}

TEST(AsmJelf, CorruptBlobsRejected) {
  Module M = mustAssemble(".module m\n.func f\nf: ret\n.endfunc\n");
  std::vector<uint8_t> Blob = M.serialize();
  // Magic corruption.
  std::vector<uint8_t> Bad = Blob;
  Bad[0] ^= 0xFF;
  EXPECT_FALSE(static_cast<bool>(Module::deserialize(Bad)));
  // Truncations at every eighth byte must fail cleanly, never crash.
  for (size_t Len = 0; Len + 8 < Blob.size(); Len += 8) {
    std::vector<uint8_t> Cut(Blob.begin(), Blob.begin() + Len);
    auto R = Module::deserialize(Cut);
    EXPECT_FALSE(static_cast<bool>(R)) << "length " << Len;
  }
}

} // namespace
