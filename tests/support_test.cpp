//===- tests/support_test.cpp - support/ regression tests -------------------===//
///
/// Regression tests for the shared support layer fixes that ride along
/// with the MT PR:
///
///  - Json: \u surrogate pairs must decode to one 4-byte UTF-8 code
///    point (the old decoder emitted each half as a lone 3-byte CESU-8
///    sequence), and unpaired halves must be rejected.
///  - Cli: parseCliUnsigned must reject everything atoi silently
///    accepted (negative numbers, trailing junk, empty strings).
///
//===----------------------------------------------------------------------===//

#include "support/Cli.h"
#include "support/Json.h"

#include "gtest/gtest.h"

using namespace janitizer;

namespace {

std::string parsedString(const std::string &Doc) {
  ErrorOr<JsonValue> V = parseJson(Doc);
  EXPECT_TRUE(bool(V)) << V.message();
  if (!V)
    return {};
  EXPECT_EQ(V->K, JsonValue::Kind::String);
  return V->Str;
}

TEST(JsonSurrogates, PairDecodesToFourByteUtf8) {
  // U+1F600 (GRINNING FACE) = \uD83D\uDE00 = F0 9F 98 80.
  std::string S = parsedString("\"\\uD83D\\uDE00\"");
  ASSERT_EQ(S.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(S[0]), 0xF0);
  EXPECT_EQ(static_cast<unsigned char>(S[1]), 0x9F);
  EXPECT_EQ(static_cast<unsigned char>(S[2]), 0x98);
  EXPECT_EQ(static_cast<unsigned char>(S[3]), 0x80);
}

TEST(JsonSurrogates, MaxCodePointDecodes) {
  // U+10FFFF = \uDBFF\uDFFF = F4 8F BF BF.
  std::string S = parsedString("\"\\uDBFF\\uDFFF\"");
  ASSERT_EQ(S.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(S[0]), 0xF4);
  EXPECT_EQ(static_cast<unsigned char>(S[1]), 0x8F);
  EXPECT_EQ(static_cast<unsigned char>(S[2]), 0xBF);
  EXPECT_EQ(static_cast<unsigned char>(S[3]), 0xBF);
}

TEST(JsonSurrogates, AstralStringRoundTrips) {
  // A raw UTF-8 astral string must survive write -> parse unchanged,
  // and the escaped spelling must parse to the same bytes.
  std::string Emoji = "mod-\xF0\x9F\x98\x80.so";
  std::string Doc;
  appendJsonString(Doc, Emoji);
  EXPECT_EQ(parsedString(Doc), Emoji);
  EXPECT_EQ(parsedString("\"mod-\\uD83D\\uDE00.so\""), Emoji);
}

TEST(JsonSurrogates, BmpEscapesStillDecode) {
  EXPECT_EQ(parsedString("\"\\u0041\""), "A");
  EXPECT_EQ(parsedString("\"\\u00e9\""), "\xC3\xA9");   // U+00E9
  EXPECT_EQ(parsedString("\"\\u20AC\""), "\xE2\x82\xAC"); // U+20AC
  EXPECT_EQ(parsedString("\"\\u0000\""), std::string(1, '\0'));
}

TEST(JsonSurrogates, UnpairedHighSurrogateRejected) {
  EXPECT_FALSE(bool(parseJson("\"\\uD800\"")));
  EXPECT_FALSE(bool(parseJson("\"\\uD800x\"")));
  EXPECT_FALSE(bool(parseJson("\"\\uD800\\n\"")));
  // High surrogate followed by another high surrogate is also unpaired.
  EXPECT_FALSE(bool(parseJson("\"\\uD800\\uD800\"")));
}

TEST(JsonSurrogates, LoneLowSurrogateRejected) {
  EXPECT_FALSE(bool(parseJson("\"\\uDC00\"")));
  EXPECT_FALSE(bool(parseJson("\"\\uDFFF abc\"")));
}

TEST(JsonSurrogates, TruncatedPairRejected) {
  EXPECT_FALSE(bool(parseJson("\"\\uD83D\\uDE\"")));
  EXPECT_FALSE(bool(parseJson("\"\\uD83D\\u\"")));
  EXPECT_FALSE(bool(parseJson("\"\\uD83D")));
}

TEST(JsonSurrogates, SurrogateInObjectValue) {
  ErrorOr<JsonValue> V = parseJson("{\"name\": \"\\uD83D\\uDE00\"}");
  ASSERT_TRUE(bool(V)) << V.message();
  const JsonValue *Name = V->find("name");
  ASSERT_NE(Name, nullptr);
  EXPECT_EQ(Name->Str, "\xF0\x9F\x98\x80");
}

TEST(CliParse, AcceptsPlainDecimal) {
  EXPECT_EQ(parseCliUnsigned("0"), 0u);
  EXPECT_EQ(parseCliUnsigned("7"), 7u);
  EXPECT_EQ(parseCliUnsigned("4294967295"), 4294967295u);
}

TEST(CliParse, RejectsWhatAtoiAccepted) {
  // atoi("abc") == 0, atoi("-1") wraps to UINT_MAX workers, atoi("12x")
  // == 12; all of these must now be hard errors.
  EXPECT_FALSE(parseCliUnsigned("abc").has_value());
  EXPECT_FALSE(parseCliUnsigned("-1").has_value());
  EXPECT_FALSE(parseCliUnsigned("+1").has_value());
  EXPECT_FALSE(parseCliUnsigned("12x").has_value());
  EXPECT_FALSE(parseCliUnsigned(" 5").has_value());
  EXPECT_FALSE(parseCliUnsigned("5 ").has_value());
  EXPECT_FALSE(parseCliUnsigned("").has_value());
  EXPECT_FALSE(parseCliUnsigned("0x10").has_value());
}

TEST(CliParse, RejectsOverflow) {
  EXPECT_FALSE(parseCliUnsigned("4294967296").has_value());
  EXPECT_FALSE(parseCliUnsigned("99999999999999999999").has_value());
}

TEST(CliParse, RangeOverloadClamps) {
  EXPECT_EQ(parseCliUnsigned("8", 1, 1024), 8u);
  EXPECT_FALSE(parseCliUnsigned("0", 1, 1024).has_value());
  EXPECT_FALSE(parseCliUnsigned("1025", 1, 1024).has_value());
}

} // namespace
