//===- tests/golden_rules_test.cpp - Rule-file golden snapshots -----------===//
///
/// Byte-level golden tests for the persistent rule-file format: two fixed
/// workloads are analyzed and the serialized rule file of the program
/// module is compared against a checked-in snapshot. Any change to the
/// serializer, the rule layout, or the analyses that decide which rules
/// are emitted shows up here as a byte diff — which is exactly the point:
/// the format is part of the rule-cache's persistent contract
/// (RuleFormatVersion), so drift must be a conscious, versioned decision.
///
/// To regenerate after an intentional change:
///
///     JZ_UPDATE_GOLDEN=1 ./build/tests/golden_rules_test
///
/// then commit the rewritten tests/golden/*.rules alongside a
/// RuleFormatVersion bump when the wire layout itself changed.
///
//===----------------------------------------------------------------------===//

#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"
#include "jcfi/JCFI.h"
#include "rules/RewriteRules.h"
#include "runtime/Jlibc.h"

#include "TestWorkloads.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace janitizer;
using testutil::addProgramWithJlibc;
using testutil::CanaryFrameProg;
using testutil::HeapOverflowProg;

namespace {

#ifndef JZ_GOLDEN_DIR
#error "JZ_GOLDEN_DIR must point at tests/golden (set by tests/CMakeLists.txt)"
#endif

std::string goldenPath(const std::string &Name) {
  return std::string(JZ_GOLDEN_DIR) + "/" + Name;
}

std::vector<uint8_t> readFile(const std::string &Path, bool &Found) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Found = false;
    return {};
  }
  Found = true;
  std::vector<uint8_t> Out;
  uint8_t Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.insert(Out.end(), Buf, Buf + N);
  std::fclose(F);
  return Out;
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr) << "cannot write golden " << Path;
  std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  std::fclose(F);
}

/// Analyzes \p Src under \p Tool and returns the program module's
/// serialized rule file.
std::vector<uint8_t> analyzeToBytes(const char *Src, SecurityTool &Tool) {
  ModuleStore Store;
  addProgramWithJlibc(Store, Src);
  RuleStore Rules;
  StaticAnalyzer SA;
  Error E = SA.analyzeProgram(Store, "prog", Tool, Rules);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  const RuleFile *RF = Rules.find("prog", Tool.name());
  if (!RF) {
    ADD_FAILURE() << "no rule file emitted for prog/" << Tool.name();
    return {};
  }
  return RF->serialize();
}

/// Compares \p Bytes against the checked-in golden \p Name; under
/// JZ_UPDATE_GOLDEN=1 rewrites the golden instead.
void expectMatchesGolden(const std::vector<uint8_t> &Bytes,
                         const std::string &Name) {
  ASSERT_FALSE(Bytes.empty());
  std::string Path = goldenPath(Name);
  if (std::getenv("JZ_UPDATE_GOLDEN")) {
    writeFile(Path, Bytes);
    std::printf("updated golden %s (%zu bytes)\n", Path.c_str(), Bytes.size());
    return;
  }
  bool Found = false;
  std::vector<uint8_t> Golden = readFile(Path, Found);
  ASSERT_TRUE(Found) << "missing golden " << Path
                     << " — run with JZ_UPDATE_GOLDEN=1 to create it";
  if (Bytes == Golden)
    return;
  size_t FirstDiff = 0;
  while (FirstDiff < Bytes.size() && FirstDiff < Golden.size() &&
         Bytes[FirstDiff] == Golden[FirstDiff])
    ++FirstDiff;
  ADD_FAILURE() << "rule file drifted from golden " << Name << ": got "
                << Bytes.size() << " bytes, golden " << Golden.size()
                << ", first difference at offset " << FirstDiff
                << ". If the change is intentional, regenerate with "
                   "JZ_UPDATE_GOLDEN=1 (and bump RuleFormatVersion if the "
                   "wire layout changed).";
}

//===--------------------------------------------------------------------===//
// Format version pin
//===--------------------------------------------------------------------===//

TEST(GoldenRules, FormatVersionIsPinned) {
  // The goldens below encode format version 1. Bumping RuleFormatVersion
  // invalidates every persisted cache entry and every golden — update
  // this pin and regenerate the snapshots in the same change.
  EXPECT_EQ(RuleFormatVersion, 1u);
}

//===--------------------------------------------------------------------===//
// Snapshots: two fixed workloads, two tools
//===--------------------------------------------------------------------===//

TEST(GoldenRules, JasanHeapOverflowSnapshot) {
  JASanTool Tool;
  std::vector<uint8_t> Bytes = analyzeToBytes(HeapOverflowProg, Tool);
  expectMatchesGolden(Bytes, "heap_overflow.jasan.rules");
}

TEST(GoldenRules, JcfiCanaryFrameSnapshot) {
  JcfiDatabase Db;
  JCFITool Tool(Db);
  std::vector<uint8_t> Bytes = analyzeToBytes(CanaryFrameProg, Tool);
  expectMatchesGolden(Bytes, "canary_frame.jcfi.rules");
}

//===--------------------------------------------------------------------===//
// Round trips
//===--------------------------------------------------------------------===//

TEST(GoldenRules, SerializeDeserializeRoundTrip) {
  JASanTool Jasan;
  JcfiDatabase Db;
  JCFITool Jcfi(Db);
  const std::pair<const char *, SecurityTool *> Cases[] = {
      {HeapOverflowProg, &Jasan}, {CanaryFrameProg, &Jcfi}};
  for (const auto &[Src, Tool] : Cases) {
    std::vector<uint8_t> Bytes = analyzeToBytes(Src, *Tool);
    ASSERT_FALSE(Bytes.empty());
    ErrorOr<RuleFile> RT = RuleFile::deserialize(Bytes);
    ASSERT_TRUE(static_cast<bool>(RT)) << RT.message();
    EXPECT_EQ(RT->serialize(), Bytes)
        << "deserialize → reserialize must be the identity";
  }
}

TEST(GoldenRules, ReanalysisIsByteIdentical) {
  JASanTool ToolA, ToolB;
  std::vector<uint8_t> A = analyzeToBytes(HeapOverflowProg, ToolA);
  std::vector<uint8_t> B = analyzeToBytes(HeapOverflowProg, ToolB);
  EXPECT_EQ(A, B) << "static analysis must be deterministic";
}

} // namespace
