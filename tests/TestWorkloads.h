//===- tests/TestWorkloads.h - Shared test workloads and helpers ----------===//
///
/// \file
/// Workloads and boilerplate shared by the test binaries, extracted so
/// that property, fault-injection, differential, golden and integration
/// tests all exercise the *same* programs instead of near-identical
/// copies:
///
///  - mustAssemble / addProgramWithJlibc: assemble micro-programs into a
///    ModuleStore next to the runtime;
///  - HeapOverflowProg / CanaryFrameProg: fixed programs with known
///    behaviour (a planted heap overflow, a canary-framed loop);
///  - randomProgram(Seed): the transparency-fuzzing program generator;
///  - freshCacheDir / ruleBytes: rule-cache and rule-file plumbing for
///    byte-level determinism assertions;
///  - prepared(Name): the per-benchmark PreparedWorkload cache, available
///    only to binaries that link jz_bench_harness (define
///    JZ_TEST_HAVE_HARNESS).
///
/// Everything lives in namespace janitizer::testutil and is inline —
/// header-only on purpose, so test binaries that link different library
/// subsets can still share it.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_TESTS_TESTWORKLOADS_H
#define JANITIZER_TESTS_TESTWORKLOADS_H

#include "jasm/AsmBuilder.h"
#include "jasm/Assembler.h"
#include "rules/RewriteRules.h"
#include "runtime/Jlibc.h"
#include "support/Random.h"
#include "vm/Process.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#ifdef JZ_TEST_HAVE_HARNESS
#include "Harness.h"
#endif

namespace janitizer {
namespace testutil {

/// Assembles \p Src, reporting a test failure (not an abort) on error so
/// the enclosing test shows the assembler message.
inline Module mustAssemble(const std::string &Src) {
  auto M = assembleModule(Src);
  if (!M) {
    ADD_FAILURE() << M.message();
    return Module();
  }
  return *M;
}

/// Populates \p Store with the runtime (libjz.so) plus the assembled
/// \p Src program — the standard two-module test process image.
inline void addProgramWithJlibc(ModuleStore &Store, const std::string &Src) {
  Store.add(cantFail(buildJlibc()));
  Store.add(mustAssemble(Src));
}

/// A unique empty rule-cache directory under the test temp dir; any
/// leftover from a previous run is removed first.
inline std::string freshCacheDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "jz-testcache-" + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

/// Serialized rule-file bytes for every module of \p Store that has rules
/// for \p Tool, keyed by module name — the unit of byte-level determinism
/// assertions.
inline std::map<std::string, std::vector<uint8_t>>
ruleBytes(const ModuleStore &Store, const RuleStore &Rules,
          const std::string &Tool) {
  std::map<std::string, std::vector<uint8_t>> Out;
  for (const Module *M : Store.all())
    if (const RuleFile *RF = Rules.find(M->Name, Tool))
      Out[M->Name] = RF->serialize();
  return Out;
}

/// Fixed program with a planted heap overflow: malloc(32) then an 8-byte
/// load at offset 32 — one byte past the allocation, inside the redzone.
/// JASan (static rules or dynamic fallback) reports exactly one
/// "heap-redzone" violation; natively the load reads garbage the program
/// never uses, so the exit code is 0 either way.
inline constexpr const char *HeapOverflowProg = R"(
  .module prog
  .entry main
  .needed libjz.so
  .extern malloc
  .func main
  main:
    movi r0, 32
    call malloc
    ld8 r1, [r0 + 32]
    movi r0, 0
    syscall 0
  .endfunc
)";

/// Fixed clean program: a canary-framed helper called in a loop plus a
/// malloc/free round trip. No violations under any tool; exit code is the
/// accumulated checksum's low byte. Deterministic input for golden
/// rule-file snapshots (canary frames give JASan real spill rules, the
/// call/ret structure gives JCFI real edge rules).
inline constexpr const char *CanaryFrameProg = R"(
  .module prog
  .entry main
  .needed libjz.so
  .extern malloc
  .extern free
  .section bss
  buf: .zero 256
  .section text
  .func helper
  helper:
    subi sp, 32
    mov r5, tp
    st8 [sp + 24], r5
    la r2, buf
    movi r1, 0
  h_loop:
    st8 [r2 + r1*8], r0
    ld8 r4, [r2 + r1*8]
    add r0, r4
    addi r1, 1
    cmpi r1, 8
    jl h_loop
    ld8 r5, [sp + 24]
    cmp r5, tp
    jne h_bad
    addi sp, 32
    ret
  h_bad:
    trap 0
  .endfunc
  .func main
  main:
    movi r10, 0
    movi r12, 0
  m_loop:
    mov r0, r12
    call helper
    add r10, r0
    movi r0, 64
    call malloc
    mov r11, r0
    st8 [r11 + 16], r10
    ld8 r1, [r11 + 16]
    add r10, r1
    mov r0, r11
    call free
    addi r12, 1
    cmpi r12, 3
    jl m_loop
    mov r0, r10
    andi r0, 255
    syscall 0
  .endfunc
)";

/// Generates a small random-but-valid program: arithmetic over arrays,
/// nested control flow, calls, canary frames. Module name is "fuzz".
inline std::string randomProgram(uint64_t Seed) {
  SplitMix64 Rng(Seed);
  AsmBuilder B;
  B.line(".module fuzz");
  B.line(".entry main");
  B.line(".needed libjz.so");
  B.line(".extern malloc");
  B.line(".extern free");
  B.line(".section bss");
  B.line("buf: .zero 512");
  B.line(".section text");

  unsigned NumFns = 2 + Rng.below(3);
  for (unsigned F = 0; F < NumFns; ++F) {
    B.fmt(".func fn_%u", F);
    B.fmt("fn_%u:", F);
    bool Canary = Rng.chancePercent(50);
    if (Canary) {
      B.line("subi sp, 32");
      B.line("mov r5, tp");
      B.line("st8 [sp + 24], r5");
    }
    B.line("la r2, buf");
    B.line("movi r1, 0");
    B.fmt("f%u_loop:", F);
    unsigned Body = 1 + Rng.below(5);
    for (unsigned K = 0; K < Body; ++K) {
      switch (Rng.below(6)) {
      case 0: B.line("ld8 r4, [r2 + r1*8]"); break;
      case 1: B.line("st8 [r2 + r1*8], r0"); break;
      case 2: B.fmt("addi r0, %u", unsigned(Rng.below(9) + 1)); break;
      case 3: B.line("xor r0, r1"); break;
      case 4: B.line("muli r0, 3"); break;
      default: B.line("add r0, r4"); break;
      }
    }
    B.line("addi r1, 1");
    B.fmt("cmpi r1, %u", unsigned(8 + Rng.below(24)));
    B.fmt("jl f%u_loop", F);
    if (Canary) {
      B.line("ld8 r5, [sp + 24]");
      B.line("cmp r5, tp");
      B.fmt("jne f%u_bad", F);
      B.line("addi sp, 32");
      B.line("ret");
      B.fmt("f%u_bad:", F);
      B.line("trap 0");
    } else {
      B.line("ret");
    }
    B.line(".endfunc");
  }

  B.line(".func main");
  B.line("main:");
  B.line("movi r10, 0");
  B.line("movi r12, 0");
  B.line("m_loop:");
  for (unsigned F = 0; F < NumFns; ++F) {
    B.line("mov r0, r12");
    B.fmt("call fn_%u", F);
    B.line("add r10, r0");
  }
  if (Rng.chancePercent(60)) {
    B.line("movi r0, 64");
    B.line("call malloc");
    B.line("mov r11, r0");
    B.line("st8 [r11 + 16], r10");
    B.line("ld8 r1, [r11 + 16]");
    B.line("add r10, r1");
    B.line("mov r0, r11");
    B.line("call free");
  }
  B.line("addi r12, 1");
  B.fmt("cmpi r12, %u", unsigned(2 + Rng.below(4)));
  B.line("jl m_loop");
  B.line("mov r0, r10");
  B.line("andi r0, 255");
  B.line("syscall 0");
  B.line(".endfunc");
  return B.str();
}

#ifdef JZ_TEST_HAVE_HARNESS
/// Prepares a benchmark workload once per process and caches it — the
/// prepare step (assemble + native reference run) dominates matrix-style
/// tests that revisit the same benchmark under many tools.
inline const bench::PreparedWorkload &prepared(const std::string &Name) {
  static std::map<std::string, bench::PreparedWorkload> Cache;
  auto It = Cache.find(Name);
  if (It == Cache.end())
    It = Cache
             .emplace(Name, bench::prepare(*findProfile(Name), 1,
                                           /*NeedPic=*/true))
             .first;
  return It->second;
}
#endif // JZ_TEST_HAVE_HARNESS

} // namespace testutil
} // namespace janitizer

#endif // JANITIZER_TESTS_TESTWORKLOADS_H
