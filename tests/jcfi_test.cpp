//===- tests/jcfi_test.cpp - JCFI end-to-end tests -------------------------===//

#include "core/StaticAnalyzer.h"
#include "jcfi/Air.h"
#include "jcfi/JCFI.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace janitizer;

namespace {

Module mustAssemble(const std::string &Src) {
  auto M = assembleModule(Src);
  if (!M) {
    ADD_FAILURE() << M.message();
    return Module();
  }
  return *M;
}

struct JcfiHarness {
  ModuleStore Store;
  RuleStore Rules;
  JcfiDatabase Db;
  JCFIOptions Opts;

  explicit JcfiHarness(const std::string &ExeSrc, bool Hybrid = true,
                       JCFIOptions Opts = {}, bool WithFortran = false)
      : Opts(Opts) {
    Store.add(cantFail(buildJlibc()));
    if (WithFortran)
      Store.add(cantFail(buildJfortran()));
    Store.add(mustAssemble(ExeSrc));
    if (Hybrid) {
      StaticAnalyzer SA;
      JCFITool StaticTool(Db, Opts);
      StaticTool.setStaticOutput(&Db);
      Error E = SA.analyzeProgram(Store, "prog", StaticTool, Rules);
      EXPECT_FALSE(static_cast<bool>(E)) << E.message();
    }
  }

  JanitizerRun run(JCFITool **ToolOut = nullptr) {
    static thread_local std::unique_ptr<JCFITool> Tool;
    Tool = std::make_unique<JCFITool>(Db, Opts);
    if (ToolOut)
      *ToolOut = Tool.get();
    return runUnderJanitizer(Store, "prog", *Tool, Rules, 100'000'000);
  }
};

const char *BenignProg = R"(
  .module prog
  .entry main
  .needed libjz.so
  .extern qsort
  .extern print_u64
  .section data
  arr:
    .word8 3
    .word8 1
    .word8 2
  ftable:
    .quad op_inc
    .quad op_dec
  .section text
  .func cmp_asc
  cmp_asc:
    sub r0, r1
    ret
  .endfunc
  .func op_inc
  op_inc:
    addi r0, 1
    ret
  .endfunc
  .func op_dec
  op_dec:
    subi r0, 1
    ret
  .endfunc
  .func dispatch
  dispatch:
    ; jump-table indirect jump within the same function
    la r2, jt
    ld8 r3, [r2 + r1*8]
    jmpr r3
  case0:
    movi r0, 10
    jmp done
  case1:
    movi r0, 20
  done:
    ret
  .endfunc
  .section rodata
  jt:
    .quad case0
    .quad case1
  .section text
  .func main
  main:
    ; callback into libjz's qsort (inter-module, not exported)
    la r0, arr
    movi r1, 3
    movi r2, 8
    la r3, cmp_asc
    call qsort
    ; indirect call through a function-pointer table
    la r5, ftable
    movi r6, 0
    ld8 r7, [r5 + r6*8]
    movi r0, 5
    callr r7            ; op_inc -> 6
    mov r9, r0
    ; indirect jump dispatch
    movi r1, 1
    call dispatch       ; 20
    add r0, r9          ; 26
    la r5, arr
    ld8 r1, [r5]        ; sorted: 1
    add r0, r1          ; 27
    syscall 0
  .endfunc
)";

TEST(JCFI, BenignProgramNoViolations) {
  JcfiHarness H(BenignProg);
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  EXPECT_EQ(R.Result.ExitCode, 27);
  for (const Violation &V : R.Violations)
    ADD_FAILURE() << "false positive: " << V.What << " at " << std::hex
                  << V.PC << " -> " << V.Detail;
}

TEST(JCFI, DynOnlyBenignNoViolations) {
  JcfiHarness H(BenignProg, /*Hybrid=*/false);
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  EXPECT_EQ(R.Result.ExitCode, 27);
  EXPECT_TRUE(R.Violations.empty())
      << "false positive: " << R.Violations[0].What;
}

TEST(JCFI, LazyBindingRetIsNotAViolation) {
  // The first PLT call resolves lazily via the RET-to-function idiom; JCFI
  // must treat it as a forward edge (§4.2.3), not a shadow-stack breach.
  JcfiHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern print_u64
    .func main
    main:
      movi r0, 7
      call print_u64   ; first call: lazy binding
      movi r0, 8
      call print_u64   ; second call: straight through the GOT
      movi r0, 0
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  EXPECT_EQ(R.Output, "78");
  EXPECT_TRUE(R.Violations.empty())
      << "false positive: " << R.Violations[0].What;
}

TEST(JCFI, DetectsReturnAddressOverwrite) {
  JcfiHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .func evil
    evil:
      movi r0, 66
      syscall 0
    .endfunc
    .func victim
    victim:
      subi sp, 16
      la r1, evil
      st8 [sp + 16], r1   ; smash the return address
      addi sp, 16
      ret
    .endfunc
    .func main
    main:
      call victim
      movi r0, 1
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run();
  // Execution continues (record mode) into evil, exiting 66.
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited);
  EXPECT_EQ(R.Result.ExitCode, 66);
  ASSERT_GE(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "cfi-return");
}

TEST(JCFI, DetectsForwardHijackToNonFunction) {
  JCFIOptions Opts;
  Opts.AbortOnViolation = true;
  JcfiHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .func helper
    helper:
      movi r0, 1
      ret
    .endfunc
    .func main
    main:
      la r1, helper
      addi r1, 2         ; mid-function, not an entry
      callr r1
      movi r0, 0
      syscall 0
    .endfunc
  )", true, Opts);
  JanitizerRun R = H.run();
  EXPECT_EQ(R.Result.St, RunResult::Status::Trapped);
  ASSERT_GE(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "cfi-icall");
}

TEST(JCFI, DetectsJumpOutsideFunction) {
  JCFIOptions Opts;
  Opts.AbortOnViolation = true;
  JcfiHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .func other
    other:
      movi r0, 3
    other_mid:
      addi r0, 4
      ret
    .endfunc
    .func main
    main:
      la r1, other_mid   ; middle of another function
      jmpr r1
      movi r0, 0
      syscall 0
    .endfunc
  )", true, Opts);
  JanitizerRun R = H.run();
  EXPECT_EQ(R.Result.St, RunResult::Status::Trapped);
  ASSERT_GE(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "cfi-ijump");
}

TEST(JCFI, MidFunctionCallAllowList) {
  // libjfortran's kernel_entry calls into the middle of kernel_core; the
  // §4.2.3 allow list must accept it (it is a direct call, but its RET
  // then returns across the unusual frame — the shadow stack handles it).
  JcfiHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .needed libjfortran.so
    .extern kernel_entry
    .extern vsum_scaled
    .section data
    v:
      .word8 10
      .word8 20
      .word8 12
    .section text
    .func main
    main:
      ; vsum_scaled clobbers r9 (the documented convention breaker), so it
      ; runs first and its result moves into r9 afterwards.
      la r0, v
      movi r1, 3
      call vsum_scaled    ; 4*42 = 168
      mov r9, r0
      la r0, v
      movi r1, 3
      call kernel_entry   ; 42
      add r0, r9          ; 210
      syscall 0
    .endfunc
  )", true, {}, /*WithFortran=*/true);
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  EXPECT_EQ(R.Result.ExitCode, 210);
  EXPECT_TRUE(R.Violations.empty())
      << "false positive: " << R.Violations[0].What;
}

TEST(JCFI, JitEntryAllowedMidRegionCallRejected) {
  JCFIOptions Opts;
  Opts.AbortOnViolation = true;
  JcfiHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .func main
    main:
      movi r0, 64
      syscall 2
      mov r9, r0
      ; movi r0, 91 ; ret
      movi r1, 0x0004
      st2 [r9], r1
      movi r1, 91
      st4 [r9 + 2], r1
      movi r1, 0x45
      st1 [r9 + 6], r1
      mov r0, r9
      movi r1, 7
      syscall 3
      callr r9           ; entry point: allowed
      mov r8, r0
      mov r1, r9
      addi r1, 2
      callr r1           ; middle of the region: violation
      mov r0, r8
      syscall 0
    .endfunc
  )", true, Opts);
  JanitizerRun R = H.run();
  // The legal entry-point call went through (r8 = 91); the mid-region call
  // aborted the process.
  EXPECT_EQ(R.Result.St, RunResult::Status::Trapped) << R.Result.FaultMsg;
  ASSERT_EQ(R.Violations.size(), 1u) << "the entry-point call is legal";
  EXPECT_EQ(R.Violations[0].What, "cfi-icall");
}

TEST(JCFI, ShadowStackBalancedAcrossDeepRecursion) {
  JCFITool *Tool = nullptr;
  JcfiHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .func fib
    fib:
      cmpi r0, 2
      jl base
      push r9
      push r10
      mov r9, r0
      subi r0, 1
      call fib
      mov r10, r0
      mov r0, r9
      subi r0, 2
      call fib
      add r0, r10
      pop r10
      pop r9
      ret
    base:
      movi r0, 1
      ret
    .endfunc
    .func main
    main:
      movi r0, 12
      call fib         ; fib(12) = 233
      syscall 0
    .endfunc
  )");
  JanitizerRun R = H.run(&Tool);
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  EXPECT_EQ(R.Result.ExitCode, 233);
  EXPECT_TRUE(R.Violations.empty());
  ASSERT_NE(Tool, nullptr);
  EXPECT_EQ(Tool->shadowStackDepth(), 0u) << "pushes and pops must balance";
}

TEST(JCFI, ForwardOnlyConfigSkipsReturnChecks) {
  JCFIOptions FwdOnly;
  FwdOnly.BackwardEdges = false;
  JcfiHarness H(R"(
    .module prog
    .entry main
    .needed libjz.so
    .func evil
    evil:
      movi r0, 66
      syscall 0
    .endfunc
    .func victim
    victim:
      subi sp, 16
      la r1, evil
      st8 [sp + 16], r1
      addi sp, 16
      ret
    .endfunc
    .func main
    main:
      call victim
      movi r0, 1
      syscall 0
    .endfunc
  )", true, FwdOnly);
  JanitizerRun R = H.run();
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited);
  EXPECT_EQ(R.Result.ExitCode, 66) << "hijack goes through";
  EXPECT_TRUE(R.Violations.empty()) << "no backward checks in this config";
}

TEST(JCFI, HybridCheaperThanDynOnly) {
  JcfiHarness Hybrid(BenignProg, true);
  JcfiHarness Dyn(BenignProg, false);
  JanitizerRun RH = Hybrid.run();
  JanitizerRun RD = Dyn.run();
  ASSERT_EQ(RH.Result.St, RunResult::Status::Exited);
  ASSERT_EQ(RD.Result.St, RunResult::Status::Exited);
  EXPECT_LT(RH.Result.Cycles, RD.Result.Cycles)
      << "load-time scanning should make dyn-only slower";
}

TEST(JCFI, DynamicAirHighReduction) {
  JCFITool *Tool = nullptr;
  JcfiHarness H(BenignProg);
  JanitizerRun R = H.run(&Tool);
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited);
  ASSERT_NE(Tool, nullptr);
  AirResult Air = jcfiDynamicAir(*Tool);
  EXPECT_GT(Air.Sites, 3u) << "returns + icalls + ijumps executed";
  EXPECT_GT(Air.Air, 0.99) << "JCFI should remove >99% of targets";
  EXPECT_LE(Air.Air, 1.0);
}

TEST(JCFI, StaticAirBeatsWeakPolicies) {
  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  Module Prog = mustAssemble(BenignProg);
  Store.add(Prog);
  std::vector<const Module *> Mods = {Store.find("prog"),
                                      Store.find("libjz.so")};
  AirResult Air = jcfiStaticAir(Mods);
  EXPECT_GT(Air.Sites, 5u);
  EXPECT_GT(Air.Air, 0.97);
  EXPECT_LE(Air.Air, 1.0);
}

TEST(JCFI, StaticPassEmitsRules) {
  JcfiDatabase Db;
  Module Prog = mustAssemble(BenignProg);
  StaticAnalyzer SA;
  JCFITool Tool(Db);
  Tool.setStaticOutput(&Db);
  RuleFile RF = cantFail(SA.analyzeModule(Prog, Tool));
  unsigned Push = 0, Call = 0, Jump = 0, Ret = 0;
  for (const RewriteRule &R : RF.Rules) {
    switch (R.Id) {
    case RuleId::CfiPushRet: ++Push; break;
    case RuleId::CfiCheckCall: ++Call; break;
    case RuleId::CfiCheckJump: ++Jump; break;
    case RuleId::CfiCheckReturn: ++Ret; break;
    default: break;
    }
  }
  EXPECT_GE(Push, 3u) << "every call site pushes the shadow return";
  EXPECT_GE(Call, 1u);
  EXPECT_GE(Jump, 1u);
  EXPECT_GE(Ret, 4u);
  const ModuleTargetInfo *Info = Db.find("prog");
  ASSERT_NE(Info, nullptr);
  const Symbol *CmpAsc = Prog.findSymbol("cmp_asc");
  ASSERT_NE(CmpAsc, nullptr);
  EXPECT_TRUE(Info->AddressTaken.count(CmpAsc->Value))
      << "callback target must be discovered as address-taken";
  EXPECT_TRUE(Info->FunctionEntries.count(Prog.Entry));
}

TEST(JCFI, EdgeChecksIdenticalUnderLinkingAndTraces) {
  // JCFI's forward/backward-edge checks are inline hooks emitted into the
  // block body *before* the transfer, so a linked entry or an IBL hit can
  // never skip them.  Prove it: the benign program and a hijack program
  // behave identically across {default, JZ_NO_LINK, JZ_NO_TRACE}, and the
  // default benign run actually hit the indirect-branch cache (so the
  // checks demonstrably fired on IBL-served transfers).
  struct Cfg {
    const char *Var;
  };
  const Cfg Sweep[] = {{nullptr}, {"JZ_NO_LINK"}, {"JZ_NO_TRACE"}};

  auto runSwept = [&](const char *Src, JCFIOptions Opts) {
    std::vector<JanitizerRun> Runs;
    for (const Cfg &C : Sweep) {
      if (C.Var)
        setenv(C.Var, "1", 1);
      JcfiHarness H(Src, true, Opts);
      Runs.push_back(H.run());
      if (C.Var)
        unsetenv(C.Var);
    }
    return Runs;
  };

  auto Benign = runSwept(BenignProg, {});
  for (const JanitizerRun &R : Benign) {
    ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
    EXPECT_EQ(R.Result.ExitCode, 27);
    EXPECT_TRUE(R.Violations.empty()) << R.Violations[0].What;
    EXPECT_EQ(R.Result.Retired, Benign[0].Result.Retired);
  }
  EXPECT_GT(Benign[0].Dbi.IblHits, 0u)
      << "vacuous: no indirect transfer was served from the IBL cache";
  EXPECT_EQ(Benign[1].Dbi.IblHits, 0u);

  JCFIOptions Abort;
  Abort.AbortOnViolation = true;
  auto Hijack = runSwept(R"(
    .module prog
    .entry main
    .needed libjz.so
    .func helper
    helper:
      movi r0, 1
      ret
    .endfunc
    .func main
    main:
      movi r9, 0
    loop:
      la r1, helper
      callr r1           ; hot, legal: gets linked / IBL-cached / traced
      add r9, r0
      cmpi r9, 40
      jl loop
      la r1, helper
      addi r1, 2         ; mid-function: must trap even after 40 warm calls
      callr r1
      movi r0, 0
      syscall 0
    .endfunc
  )",
                         Abort);
  for (const JanitizerRun &R : Hijack) {
    EXPECT_EQ(R.Result.St, RunResult::Status::Trapped);
    ASSERT_GE(R.Violations.size(), 1u);
    EXPECT_EQ(R.Violations[0].What, "cfi-icall");
    // Identical attribution: same violation PC and detail in every config.
    EXPECT_EQ(R.Violations[0].PC, Hijack[0].Violations[0].PC);
    EXPECT_EQ(R.Violations[0].Detail, Hijack[0].Violations[0].Detail);
  }
  EXPECT_GT(Hijack[0].Dbi.LinksFollowed + Hijack[0].Dbi.IblHits, 0u)
      << "vacuous: the hot loop never exercised the linked fast path";
}

} // namespace
