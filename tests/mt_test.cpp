//===- tests/mt_test.cpp - Multi-threaded guest + engine tests -------------===//
///
/// \file
/// End-to-end coverage for multi-threaded guests on the concurrent DBI
/// engine (ctest label: mt — also the label the JZ_TSAN stage runs):
///
///  - the CWE-362 workloads (racing malloc/free, racing dlopen, planted
///    cross-thread UAF) complete with checksums identical to the native
///    cooperative scheduler;
///  - the Jlibc mutex (CAS + futex) provides real mutual exclusion;
///  - JASan reports the planted cross-thread use-after-free with the same
///    violation tuple (code, PC, message) multi-threaded and under the
///    JZ_MAX_GUEST_THREADS=1 kill-switch;
///  - the kill-switch run is byte-identical to the default single-thread
///    behavior (the seed differential).
///
//===----------------------------------------------------------------------===//

#include "TestWorkloads.h"

#include "core/JanitizerDynamic.h"
#include "dbi/NullClient.h"
#include "jasan/JASan.h"
#include "workloads/SpecProfiles.h"
#include "workloads/WorkloadGen.h"

#include <cstdlib>
#include <gtest/gtest.h>

using namespace janitizer;
using namespace janitizer::testutil;

namespace {

/// Scoped environment override (unset on destruction), so one test's
/// kill-switch cannot leak into the next.
class ScopedEnv {
public:
  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    setenv(Name, Value, 1);
  }
  ~ScopedEnv() { unsetenv(Name); }

private:
  const char *Name;
};

struct EngineRun {
  RunResult R;
  std::string Output;
};

/// Runs \p W under the concurrent engine with the null client.
EngineRun runEngine(const WorkloadBuild &W) {
  Process P(W.Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  Error Err = P.loadProgram(W.ExeName);
  EXPECT_FALSE(static_cast<bool>(Err)) << Err.message();
  EngineRun Out;
  Out.R = E.run();
  Out.Output = P.output();
  return Out;
}

/// (code, pc, message) — the schedule-independent part of a violation.
/// Detail (the faulting address) depends on allocation interleaving.
std::vector<std::tuple<uint8_t, uint64_t, std::string>>
tupleOf(const std::vector<Violation> &Vs) {
  std::vector<std::tuple<uint8_t, uint64_t, std::string>> T;
  for (const Violation &V : Vs)
    T.emplace_back(V.Code, V.PC, V.What);
  std::sort(T.begin(), T.end());
  return T;
}

} // namespace

//===--------------------------------------------------------------------===//
// Racing workloads complete and match the native cooperative scheduler.
//===--------------------------------------------------------------------===//

TEST(MtWorkload, RaceAllocEngineMatchesNative) {
  MtWorkloadOptions O;
  O.Workers = 4;
  auto W = buildMtWorkload(MtWorkloadKind::RaceAlloc, O);
  ASSERT_TRUE(static_cast<bool>(W)) << W.message();
  std::string Native = nativeReference(*W);
  ASSERT_FALSE(Native.empty());
  EngineRun E = runEngine(*W);
  ASSERT_EQ(E.R.St, RunResult::Status::Exited) << E.R.FaultMsg;
  EXPECT_EQ(E.R.ExitCode, 0);
  EXPECT_EQ(E.Output, Native);
}

TEST(MtWorkload, RaceDlopenEngineMatchesNative) {
  MtWorkloadOptions O;
  O.Workers = 4;
  auto W = buildMtWorkload(MtWorkloadKind::RaceDlopen, O);
  ASSERT_TRUE(static_cast<bool>(W)) << W.message();
  std::string Native = nativeReference(*W);
  ASSERT_FALSE(Native.empty());
  EngineRun E = runEngine(*W);
  ASSERT_EQ(E.R.St, RunResult::Status::Exited) << E.R.FaultMsg;
  EXPECT_EQ(E.Output, Native);
}

TEST(MtWorkload, RepeatedRunsDeterministicChecksum) {
  MtWorkloadOptions O;
  O.Workers = 3;
  O.Iters = 8;
  auto W = buildMtWorkload(MtWorkloadKind::RaceAlloc, O);
  ASSERT_TRUE(static_cast<bool>(W)) << W.message();
  std::string First = runEngine(*W).Output;
  ASSERT_FALSE(First.empty());
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(runEngine(*W).Output, First) << "run " << I;
}

//===--------------------------------------------------------------------===//
// The Jlibc mutex veneer (CAS + futex) provides real mutual exclusion.
//===--------------------------------------------------------------------===//

TEST(MtWorkload, MutexCounterExact) {
  constexpr unsigned Threads = 4;
  constexpr unsigned Incs = 200;
  AsmBuilder B;
  B.line(".module mtcnt");
  B.line(".entry main");
  B.line(".needed libjz.so");
  B.line(".extern thread_create");
  B.line(".extern thread_join");
  B.line(".extern mutex_lock");
  B.line(".extern mutex_unlock");
  B.line(".extern print_u64");
  B.section("bss");
  B.line("counter: .zero 8");
  B.line("lock: .zero 8");
  B.fmt("tids: .zero %u", Threads * 8);
  B.section("text");
  B.func("incworker");
  B.label("incworker");
  B.line("push r9");
  B.line("movi r9, 0");
  B.label("iw_loop");
  B.line("la r0, lock");
  B.line("call mutex_lock");
  B.line("la r5, counter");
  B.line("ld8 r6, [r5]");
  B.line("addi r6, 1");
  B.line("st8 [r5], r6");
  B.line("la r0, lock");
  B.line("call mutex_unlock");
  B.line("addi r9, 1");
  B.fmt("cmpi r9, %u", Incs);
  B.line("jl iw_loop");
  B.line("movi r0, 0");
  B.line("pop r9");
  B.line("ret");
  B.endfunc();
  B.func("main", /*Exported=*/true);
  B.line("main:");
  B.line("movi r12, 0");
  B.label("m_spawn");
  B.line("la r0, incworker");
  B.line("mov r1, r12");
  B.line("call thread_create");
  B.line("la r5, tids");
  B.line("st8 [r5 + r12*8], r0");
  B.line("addi r12, 1");
  B.fmt("cmpi r12, %u", Threads);
  B.line("jl m_spawn");
  B.line("movi r12, 0");
  B.label("m_join");
  B.line("la r5, tids");
  B.line("ld8 r0, [r5 + r12*8]");
  B.line("cmpi r0, -1");
  B.line("jne m_dojoin");
  B.line("call incworker");
  B.line("jmp m_next");
  B.label("m_dojoin");
  B.line("call thread_join");
  B.label("m_next");
  B.line("addi r12, 1");
  B.fmt("cmpi r12, %u", Threads);
  B.line("jl m_join");
  B.line("la r5, counter");
  B.line("ld8 r0, [r5]");
  B.line("call print_u64");
  B.line("movi r0, 0");
  B.line("syscall 0");
  B.endfunc();

  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  Store.add(mustAssemble(B.str()));
  WorkloadBuild W;
  W.Store = std::move(Store);
  W.ExeName = "mtcnt";
  EngineRun E = runEngine(W);
  ASSERT_EQ(E.R.St, RunResult::Status::Exited) << E.R.FaultMsg;
  EXPECT_EQ(E.Output, std::to_string(Threads * Incs));
}

//===--------------------------------------------------------------------===//
// A guest futex deadlock faults with a structured diagnostic — the host
// must never hang on a guest that wedges itself.
//===--------------------------------------------------------------------===//

TEST(MtWorkload, FutexDeadlockFaultsWithDiagnostic) {
  // Main takes the lock and never releases it, then joins a worker that
  // blocks acquiring it: worker is futex-blocked, main is join-blocked,
  // no thread can ever run again.
  AsmBuilder B;
  B.line(".module mtdead");
  B.line(".entry main");
  B.line(".needed libjz.so");
  B.line(".extern thread_create");
  B.line(".extern thread_join");
  B.line(".extern mutex_lock");
  B.section("bss");
  B.line("lock: .zero 8");
  B.section("text");
  B.func("stuckworker");
  B.label("stuckworker");
  B.line("la r0, lock");
  B.line("call mutex_lock"); // held by main forever
  B.line("movi r0, 0");
  B.line("ret");
  B.endfunc();
  B.func("main", /*Exported=*/true);
  B.line("main:");
  B.line("la r0, lock");
  B.line("call mutex_lock");
  B.line("la r0, stuckworker");
  B.line("movi r1, 0");
  B.line("call thread_create");
  B.line("call thread_join"); // r0 = worker tid from thread_create
  B.line("movi r0, 0");
  B.line("syscall 0");
  B.endfunc();

  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  Store.add(mustAssemble(B.str()));
  WorkloadBuild W;
  W.Store = std::move(Store);
  W.ExeName = "mtdead";
  EngineRun E = runEngine(W);
  ASSERT_EQ(E.R.St, RunResult::Status::Faulted)
      << "a wedged guest must fault, not hang";
  EXPECT_NE(E.R.FaultMsg.find("deadlock:"), std::string::npos)
      << E.R.FaultMsg;
  // The diagnostic names every blocked thread with tid, PC, and what it
  // blocks on: the worker's futex word and main's joined tid.
  EXPECT_NE(E.R.FaultMsg.find("futex@"), std::string::npos) << E.R.FaultMsg;
  EXPECT_NE(E.R.FaultMsg.find("join(tid="), std::string::npos)
      << E.R.FaultMsg;
  EXPECT_NE(E.R.FaultMsg.find("tid="), std::string::npos) << E.R.FaultMsg;
  EXPECT_NE(E.R.FaultMsg.find("pc=0x"), std::string::npos) << E.R.FaultMsg;
}

//===--------------------------------------------------------------------===//
// JASan detects the planted cross-thread UAF deterministically.
//===--------------------------------------------------------------------===//

namespace {

JanitizerRun runUafUnderJasan(unsigned Workers) {
  MtWorkloadOptions O;
  O.Workers = Workers;
  auto W = buildMtWorkload(MtWorkloadKind::PlantedUaf, O);
  EXPECT_TRUE(static_cast<bool>(W)) << W.message();
  RuleStore NoRules;
  JASanTool Tool; // AbortOnViolation=false: record and continue
  return runUnderJanitizer(W->Store, W->ExeName, Tool, NoRules, 1ull << 31);
}

} // namespace

TEST(MtJasan, PlantedCrossThreadUafDetected) {
  // 4 churn workers + the freer + main: 4+ concurrent host threads.
  JanitizerRun R = runUafUnderJasan(4);
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;

  // Both the write and the readback of the freed chunk must land in
  // poisoned shadow.
  ASSERT_GE(R.Violations.size(), 2u);
  for (const Violation &V : R.Violations)
    EXPECT_NE(V.What.find("use-after-free"), std::string::npos) << V.What;

  // The checksum still matches the native (uninstrumented) reference —
  // record-and-continue must not perturb execution.
  MtWorkloadOptions O;
  O.Workers = 4;
  auto W = buildMtWorkload(MtWorkloadKind::PlantedUaf, O);
  ASSERT_TRUE(static_cast<bool>(W)) << W.message();
  EXPECT_EQ(R.Output, nativeReference(*W));
}

TEST(MtJasan, UafTupleIdenticalUnderKillSwitch) {
  // The violation tuple (code, PC, message) must not depend on how many
  // host threads executed the program: the planted race is ordered by the
  // futex handshake, not by the schedule.
  JanitizerRun Mt = runUafUnderJasan(4);
  ASSERT_EQ(Mt.Result.St, RunResult::Status::Exited) << Mt.Result.FaultMsg;

  ScopedEnv Env("JZ_MAX_GUEST_THREADS", "1");
  JanitizerRun St = runUafUnderJasan(4);
  ASSERT_EQ(St.Result.St, RunResult::Status::Exited) << St.Result.FaultMsg;

  EXPECT_EQ(tupleOf(Mt.Violations), tupleOf(St.Violations));
  EXPECT_EQ(Mt.Output, St.Output);
}

TEST(MtJasan, SeededSchedulesAllDetect) {
  // The JZ_MT_SEED knob perturbs the cooperative scheduler; the handshake
  // must force the free-before-use ordering under every seed.
  std::vector<std::tuple<uint8_t, uint64_t, std::string>> First;
  for (const char *Seed : {"1", "7", "12345"}) {
    ScopedEnv Env("JZ_MT_SEED", Seed);
    JanitizerRun R = runUafUnderJasan(2);
    ASSERT_EQ(R.Result.St, RunResult::Status::Exited)
        << "seed " << Seed << ": " << R.Result.FaultMsg;
    ASSERT_GE(R.Violations.size(), 2u) << "seed " << Seed;
    auto T = tupleOf(R.Violations);
    if (First.empty())
      First = T;
    else
      EXPECT_EQ(T, First) << "seed " << Seed;
  }
}

//===--------------------------------------------------------------------===//
// Kill-switch differential: JZ_MAX_GUEST_THREADS=1 is byte-identical.
//===--------------------------------------------------------------------===//

TEST(MtDifferential, KillSwitchByteIdenticalOnSingleThreadedWorkload) {
  // A single-threaded workload must not observe the MT machinery at all:
  // same output bytes, same retired instructions, same cycles with and
  // without the kill-switch.
  BenchProfile P = specProfiles()[0];
  auto W = buildWorkload(P, {});
  ASSERT_TRUE(static_cast<bool>(W)) << W.message();

  EngineRun Default = runEngine(*W);
  ASSERT_EQ(Default.R.St, RunResult::Status::Exited) << Default.R.FaultMsg;

  ScopedEnv Env("JZ_MAX_GUEST_THREADS", "1");
  EngineRun Killed = runEngine(*W);
  ASSERT_EQ(Killed.R.St, RunResult::Status::Exited) << Killed.R.FaultMsg;

  EXPECT_EQ(Default.Output, Killed.Output);
  EXPECT_EQ(Default.R.ExitCode, Killed.R.ExitCode);
  EXPECT_EQ(Default.R.Retired, Killed.R.Retired);
  EXPECT_EQ(Default.R.Cycles, Killed.R.Cycles);
}

TEST(MtDifferential, KillSwitchInlineFallbackSameChecksum) {
  // With thread_create disabled the workload runs every worker inline on
  // the main thread — and must print the same checksum.
  MtWorkloadOptions O;
  O.Workers = 3;
  O.Iters = 8;
  auto W = buildMtWorkload(MtWorkloadKind::RaceAlloc, O);
  ASSERT_TRUE(static_cast<bool>(W)) << W.message();

  EngineRun Mt = runEngine(*W);
  ASSERT_EQ(Mt.R.St, RunResult::Status::Exited) << Mt.R.FaultMsg;

  ScopedEnv Env("JZ_MAX_GUEST_THREADS", "1");
  EngineRun St = runEngine(*W);
  ASSERT_EQ(St.R.St, RunResult::Status::Exited) << St.R.FaultMsg;
  EXPECT_EQ(Mt.Output, St.Output);
}
