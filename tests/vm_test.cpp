//===- tests/vm_test.cpp - Assembler + loader + interpreter integration ---===//

#include "jasm/Assembler.h"
#include "vm/Process.h"
#include "vm/Syscalls.h"

#include <gtest/gtest.h>

using namespace janitizer;

namespace {

/// Assembles a module or fails the test with the assembler diagnostic.
Module mustAssemble(const std::string &Src) {
  auto M = assembleModule(Src);
  if (!M) {
    ADD_FAILURE() << M.message();
    return Module();
  }
  return *M;
}

TEST(Assembler, MinimalExe) {
  Module M = mustAssemble(R"(
    .module tiny
    .entry main
    .func main
    main:
      movi r0, 41
      addi r0, 1
      syscall 0
    .endfunc
  )");
  EXPECT_EQ(M.Name, "tiny");
  EXPECT_FALSE(M.IsPIC);
  EXPECT_EQ(M.LinkBase, layout::NonPicBase);
  const Symbol *S = M.findSymbol("main");
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->IsFunction);
  EXPECT_EQ(S->Value, M.Entry);
  EXPECT_EQ(S->Size, 6u + 6u + 2u);
}

TEST(Assembler, ReportsLineOnError) {
  auto M = assembleModule("nop\nbadinsn r1\n");
  ASSERT_FALSE(static_cast<bool>(M));
  EXPECT_NE(M.message().find("line 2"), std::string::npos);
}

TEST(Assembler, RejectsAbsInPic) {
  auto M = assembleModule(R"(
    .pic
    .section data
    v: .word8 7
    .section text
    .func f
    f:
      movq r0, =v
      ret
    .endfunc
  )");
  EXPECT_FALSE(static_cast<bool>(M));
}

TEST(VM, RunTinyProgram) {
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module tiny
    .entry main
    .func main
    main:
      movi r0, 41
      addi r0, 1
      syscall 0
    .endfunc
  )"));
  Process P(Store);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("tiny")));
  RunResult R = P.runNative();
  EXPECT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 42);
  EXPECT_GT(R.Cycles, 0u);
}

TEST(VM, LoopsAndMemory) {
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module loops
    .entry main
    .section bss
    buf: .zero 800
    .section text
    .func main
    main:
      movi r1, 0          ; i
      la r2, buf
    fill:
      st8 [r2 + r1*8], r1
      addi r1, 1
      cmpi r1, 100
      jl fill
      movi r1, 0
      movi r0, 0
    sum:
      ld8 r3, [r2 + r1*8]
      add r0, r3
      addi r1, 1
      cmpi r1, 100
      jl sum
      syscall 0           ; exit(sum) = 4950
    .endfunc
  )"));
  Process P(Store);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("loops")));
  RunResult R = P.runNative();
  EXPECT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 4950);
}

TEST(VM, WriteSyscall) {
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module hello
    .entry main
    .section rodata
    msg: .string "hi there"
    .section text
    .func main
    main:
      la r0, msg
      movi r1, 8
      syscall 1
      movi r0, 0
      syscall 0
    .endfunc
  )"));
  Process P(Store);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("hello")));
  RunResult R = P.runNative();
  EXPECT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(P.output(), "hi there");
}

/// Shared library with PLT lazy binding, PIC data access and init section.
TEST(VM, SharedLibraryCallAndInit) {
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module libadd.so
    .pic
    .shared
    .section data
    counter: .word8 0
    .section init
    init_start:
      la r6, counter
      movi r7, 7
      st8 [r6], r7
      ret
    .section text
    .global add3
    .func add3
    add3:
      la r6, counter
      ld8 r6, [r6]     ; 7 from the initializer
      add r0, r1
      add r0, r2
      add r0, r6
      ret
    .endfunc
  )"));
  Store.add(mustAssemble(R"(
    .module prog
    .entry main
    .needed libadd.so
    .extern add3
    .func main
    main:
      movi r0, 10
      movi r1, 20
      movi r2, 5
      call add3        ; via PLT, lazily bound: 10+20+5+7 = 42
      ; call again: second call goes straight through the patched GOT
      mov r3, r0
      movi r0, 0
      movi r1, 0
      movi r2, 0
      call add3        ; 0+0+0+7 = 7
      add r0, r3       ; 49
      syscall 0
    .endfunc
  )"));
  Process P(Store);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  const LoadedModule *Lib = P.moduleByName("libadd.so");
  ASSERT_NE(Lib, nullptr);
  EXPECT_NE(Lib->Slide, 0);
  RunResult R = P.runNative();
  EXPECT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 49);
}

TEST(VM, IndirectCallThroughTable) {
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module itab
    .entry main
    .section rodata
    table:
      .quad fn_a
      .quad fn_b
    .section text
    .func fn_a
    fn_a:
      movi r0, 100
      ret
    .endfunc
    .func fn_b
    fn_b:
      movi r0, 200
      ret
    .endfunc
    .func main
    main:
      movi r5, 1
      la r6, table
      ld8 r7, [r6 + r5*8]
      callr r7          ; fn_b
      mov r8, r0
      movi r5, 0
      callm [r6 + r5*8] ; fn_a
      add r0, r8        ; 300
      syscall 0
    .endfunc
  )"));
  Process P(Store);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("itab")));
  RunResult R = P.runNative();
  EXPECT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 300);
}

TEST(VM, DlopenDlsym) {
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module plugin.so
    .pic
    .shared
    .global work
    .func work
    work:
      movi r0, 77
      ret
    .endfunc
  )"));
  Store.add(mustAssemble(R"(
    .module host
    .entry main
    .section rodata
    pname: .string "plugin.so"
    wname: .string "work"
    .func main
    main:
      la r0, pname
      syscall 4         ; dlopen
      cmpi r0, 0
      je fail
      la r1, wname
      syscall 5         ; dlsym
      cmpi r0, 0
      je fail
      callr r0
      syscall 0
    fail:
      movi r0, 255
      syscall 0
    .endfunc
  )"));
  Process P(Store);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("host")));
  RunResult R = P.runNative();
  EXPECT_EQ(R.ExitCode, 77);
  EXPECT_EQ(P.modules().size(), 2u);
}

TEST(VM, JitGeneratedCode) {
  // The program writes a tiny function (movi r0, 55; ret) into heap memory,
  // maps it executable, and calls it.
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module jit
    .entry main
    .func main
    main:
      movi r0, 64
      syscall 2          ; sbrk(64) -> r0 = buffer
      mov r9, r0
      ; movi r0, 55  ==  opcode 0x04, reg 0x00, imm32 55
      movi r1, 0x0004
      st2 [r9], r1
      movi r1, 55
      st4 [r9 + 2], r1
      ; ret == 0x45
      movi r1, 0x45
      st1 [r9 + 6], r1
      mov r0, r9
      movi r1, 7
      syscall 3          ; map code
      callr r9
      syscall 0          ; exit(55)
    .endfunc
  )"));
  Process P(Store);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("jit")));
  RunResult R = P.runNative();
  EXPECT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 55);
}

TEST(VM, StackCanaryConvention) {
  // The TP register holds the canary; a function spills and checks it.
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module canary
    .entry main
    .func main
    main:
      subi sp, 32
      mov r1, tp
      st8 [sp + 24], r1      ; store canary
      movi r2, 5
      st8 [sp], r2           ; locals
      ld8 r1, [sp + 24]
      mov r3, tp
      cmp r1, r3
      jne smashed
      addi sp, 32
      ld8 r0, [sp - 32]      ; 5
      syscall 0
    smashed:
      trap 0
    .endfunc
  )"));
  Process P(Store);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("canary")));
  RunResult R = P.runNative();
  EXPECT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 5);
}

TEST(VM, TrapReported) {
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module trapper
    .entry main
    .func main
    main:
      trap 0
    .endfunc
  )"));
  Process P(Store);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("trapper")));
  RunResult R = P.runNative();
  EXPECT_EQ(R.St, RunResult::Status::Trapped);
  EXPECT_EQ(R.TrapCode, 0);
}

TEST(VM, DivByZeroFaults) {
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module div0
    .entry main
    .func main
    main:
      movi r0, 1
      movi r1, 0
      div r0, r1
      syscall 0
    .endfunc
  )"));
  Process P(Store);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("div0")));
  RunResult R = P.runNative();
  EXPECT_EQ(R.St, RunResult::Status::Faulted);
}

TEST(VM, ModuleSerializationRoundTrip) {
  Module M = mustAssemble(R"(
    .module rt.so
    .pic
    .shared
    .needed other.so
    .extern helper
    .global entry1
    .func entry1
    entry1:
      call helper
      ret
    .endfunc
  )");
  std::vector<uint8_t> Blob = M.serialize();
  auto M2 = Module::deserialize(Blob);
  ASSERT_TRUE(static_cast<bool>(M2));
  EXPECT_EQ(M2->Name, M.Name);
  EXPECT_EQ(M2->IsPIC, M.IsPIC);
  EXPECT_EQ(M2->Needed, M.Needed);
  EXPECT_EQ(M2->Plt.size(), 1u);
  EXPECT_EQ(M2->Sections.size(), M.Sections.size());
  for (size_t I = 0; I < M.Sections.size(); ++I)
    EXPECT_EQ(M2->Sections[I].Bytes, M.Sections[I].Bytes);
}

TEST(VM, CyclesAccumulateDeterministically) {
  auto Run = [] {
    ModuleStore Store;
    auto M = assembleModule(R"(
      .module cyc
      .entry main
      .func main
      main:
        movi r1, 0
      l:
        addi r1, 1
        cmpi r1, 1000
        jl l
        movi r0, 0
        syscall 0
      .endfunc
    )");
    Process P(Store);
    Store.add(*M);
    Process P2(Store);
    P2.loadProgram("cyc");
    return P2.runNative().Cycles;
  };
  uint64_t A = Run();
  uint64_t B = Run();
  EXPECT_EQ(A, B);
  EXPECT_GT(A, 3000u);
}

} // namespace
