//===- tests/fault_injection_test.cpp - Failure-model tests ----------------===//
///
/// Exercises the fault-injection framework (support/FaultInjector.h) and
/// the degrade-don't-die contract across the static→rules→dynamic
/// pipeline (DESIGN.md §5c). For every fault point: the run completes,
/// the affected module is quarantined to the dynamic fallback path, the
/// DegradationReport names it, and planted JASan/JCFI violations inside
/// the degraded module are still detected. With zero faults armed, rule
/// files are byte-identical to an untouched analyzer's.
///
//===----------------------------------------------------------------------===//

#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"
#include "jasm/Assembler.h"
#include "jcfi/JCFI.h"
#include "runtime/Jlibc.h"
#include "support/FaultInjector.h"
#include "support/ThreadPool.h"

#include "TestWorkloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>

using namespace janitizer;
using testutil::freshCacheDir;
using testutil::HeapOverflowProg;
using testutil::mustAssemble;
using testutil::ruleBytes;

namespace {

/// Every fixture starts and ends fully disarmed, so an inherited JZ_FAULTS
/// (e.g. check.sh's fault-matrix stage) cannot leak into assertions about
/// the clean state.
class FaultInjection : public ::testing::Test {
protected:
  void SetUp() override { FaultInjector::instance().disarmAll(); }
  void TearDown() override { FaultInjector::instance().disarmAll(); }
};

using FaultTriggers = FaultInjection;
using FaultSpecs = FaultInjection;
using ErrorModel = FaultInjection;
using PoolFaults = FaultInjection;
using PipelineDegradation = FaultInjection;

//===--------------------------------------------------------------------===//
// Trigger semantics
//===--------------------------------------------------------------------===//

std::vector<bool> fireSequence(const char *Point, unsigned Hits) {
  std::vector<bool> Out;
  for (unsigned I = 0; I < Hits; ++I)
    Out.push_back(FaultInjector::shouldFail(Point));
  return Out;
}

TEST_F(FaultTriggers, DisarmedNeverFires) {
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_FALSE(FaultInjector::shouldFail("static.analyze"));
}

TEST_F(FaultTriggers, AlwaysFiresEveryHit) {
  FaultInjector::instance().arm("static.analyze", FaultTrigger::always());
  EXPECT_TRUE(FaultInjector::armed());
  EXPECT_EQ(fireSequence("static.analyze", 3),
            (std::vector<bool>{true, true, true}));
}

TEST_F(FaultTriggers, OnceFiresFirstHitOnly) {
  FaultInjector::instance().arm("rules.parse", FaultTrigger::once());
  EXPECT_EQ(fireSequence("rules.parse", 3),
            (std::vector<bool>{true, false, false}));
}

TEST_F(FaultTriggers, NthHitFiresExactlyOnce) {
  FaultInjector::instance().arm("cache.rename", FaultTrigger::nthHit(3));
  EXPECT_EQ(fireSequence("cache.rename", 5),
            (std::vector<bool>{false, false, true, false, false}));
}

TEST_F(FaultTriggers, EveryNFiresPeriodically) {
  FaultInjector::instance().arm("pool.task", FaultTrigger::everyN(2));
  EXPECT_EQ(fireSequence("pool.task", 6),
            (std::vector<bool>{false, true, false, true, false, true}));
}

TEST_F(FaultTriggers, ProbabilityIsSeededAndDeterministic) {
  auto Draw = [&](uint64_t Seed) {
    FaultInjector::instance().disarmAll();
    FaultInjector::instance().arm("cache.read.corrupt",
                                  FaultTrigger::probability(0.5, Seed));
    return fireSequence("cache.read.corrupt", 64);
  };
  std::vector<bool> A = Draw(7), B = Draw(7), C = Draw(8);
  EXPECT_EQ(A, B) << "same seed must replay the same firing sequence";
  EXPECT_NE(A, C) << "different seeds should diverge";
  // p=0 and p=1 are degenerate Bernoullis.
  FaultInjector::instance().disarmAll();
  FaultInjector::instance().arm("x", FaultTrigger::probability(0.0));
  EXPECT_EQ(fireSequence("x", 16), std::vector<bool>(16, false));
  FaultInjector::instance().disarmAll();
  FaultInjector::instance().arm("x", FaultTrigger::probability(1.0));
  EXPECT_EQ(fireSequence("x", 16), std::vector<bool>(16, true));
}

TEST_F(FaultTriggers, StatsCountHitsAndFires) {
  FaultInjector::instance().arm("static.budget", FaultTrigger::everyN(2));
  (void)fireSequence("static.budget", 4);
  auto Stats = FaultInjector::instance().stats();
  ASSERT_EQ(Stats.size(), 1u);
  EXPECT_EQ(Stats[0].first, "static.budget");
  EXPECT_EQ(Stats[0].second.Hits, 4u);
  EXPECT_EQ(Stats[0].second.Fires, 2u);
}

TEST_F(FaultTriggers, DisarmAllClearsTheGate) {
  FaultInjector::instance().arm("static.analyze");
  ASSERT_TRUE(FaultInjector::armed());
  FaultInjector::instance().disarmAll();
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_FALSE(FaultInjector::instance().anyArmed());
}

//===--------------------------------------------------------------------===//
// JZ_FAULTS spec parsing
//===--------------------------------------------------------------------===//

TEST_F(FaultSpecs, ParsesMultiPointSpec) {
  Error E = FaultInjector::instance().configure(
      "static.analyze:hit=2,cache.read.corrupt:p=0.5:seed=7,pool.task");
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_TRUE(FaultInjector::armed());
  auto Stats = FaultInjector::instance().stats();
  ASSERT_EQ(Stats.size(), 3u); // name-sorted
  EXPECT_EQ(Stats[0].first, "cache.read.corrupt");
  EXPECT_EQ(Stats[1].first, "pool.task");
  EXPECT_EQ(Stats[2].first, "static.analyze");
}

TEST_F(FaultSpecs, RejectsMalformedTriggers) {
  EXPECT_TRUE(
      static_cast<bool>(FaultInjector::instance().configure("p:hit=0")));
  EXPECT_TRUE(
      static_cast<bool>(FaultInjector::instance().configure("p:p=1.5")));
  EXPECT_TRUE(
      static_cast<bool>(FaultInjector::instance().configure("p:bogus")));
  EXPECT_TRUE(static_cast<bool>(FaultInjector::instance().configure(":once")));
}

TEST_F(FaultSpecs, KnownPointListCoversThePipeline) {
  const std::vector<const char *> &Known = knownFaultPoints();
  for (const char *Must :
       {"static.analyze", "static.budget", "pool.task", "rules.parse",
        "cache.read.corrupt", "cache.write.enospc", "cache.rename",
        "dynamic.moduleload", "dynamic.rules.validate"}) {
    bool Found = false;
    for (const char *K : Known)
      Found = Found || std::string(K) == Must;
    EXPECT_TRUE(Found) << "missing fault point " << Must;
  }
}

//===--------------------------------------------------------------------===//
// Error / ErrorOr model (satellite: ctor ambiguity, context, severity)
//===--------------------------------------------------------------------===//

TEST_F(ErrorModel, WithContextChainsAndPreservesSeverity) {
  Error E = makeError("disk full", Severity::Fatal)
                .withContext("writing entry")
                .withContext("rule cache");
  EXPECT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.message(), "rule cache: writing entry: disk full");
  EXPECT_EQ(E.severity(), Severity::Fatal);
  EXPECT_TRUE(E.isFatal());
  EXPECT_FALSE(static_cast<bool>(Error::success().withContext("ignored")));
}

TEST_F(ErrorModel, ErrorOrOfStringIsNotAmbiguous) {
  // ErrorOr<std::string>: both std::string and Error are constructible
  // from string-ish things; the constrained value constructor must route
  // an Error to the failure state and everything else to the value state.
  ErrorOr<std::string> Ok1("a value");            // const char*
  ErrorOr<std::string> Ok2(std::string("value")); // std::string rvalue
  ErrorOr<std::string> Bad(makeError("boom"));
  EXPECT_TRUE(static_cast<bool>(Ok1));
  EXPECT_TRUE(static_cast<bool>(Ok2));
  EXPECT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(*Ok1, "a value");
  EXPECT_EQ(Bad.message(), "boom");
  EXPECT_EQ(Ok2.takeValue(), "value");
}

TEST_F(ErrorModel, ErrorPolicyClassifiesBySeverity) {
  EXPECT_EQ(ErrorPolicy::classify(Error::success()), FaultResponse::Ignore);
  EXPECT_EQ(ErrorPolicy::classify(makeError("w", Severity::Warning)),
            FaultResponse::Ignore);
  EXPECT_EQ(ErrorPolicy::classify(makeError("r")), FaultResponse::Degrade);
  EXPECT_EQ(ErrorPolicy::classify(makeError("f", Severity::Fatal)),
            FaultResponse::Propagate);
}

//===--------------------------------------------------------------------===//
// ThreadPool failure model
//===--------------------------------------------------------------------===//

TEST_F(PoolFaults, DroppedTasksAreCountedNotFatal) {
  FaultInjector::instance().arm("pool.task", FaultTrigger::everyN(2));
  ThreadPool Pool(2);
  std::atomic<unsigned> Ran{0};
  for (unsigned I = 0; I < 8; ++I)
    Pool.submit([&Ran] { ++Ran; });
  Pool.wait();
  EXPECT_EQ(Pool.droppedCount(), 4u);
  EXPECT_EQ(Ran.load(), 4u);
}

TEST_F(PoolFaults, ThrowingTaskIsSwallowedAndCounted) {
  ThreadPool Pool(1); // inline mode: an escaped exception would be fatal
  std::atomic<unsigned> Ran{0};
  Pool.submit([] { throw std::runtime_error("task died"); });
  Pool.submit([&Ran] { ++Ran; });
  Pool.wait();
  EXPECT_EQ(Pool.droppedCount(), 1u);
  EXPECT_EQ(Ran.load(), 1u);
}

//===--------------------------------------------------------------------===//
// Pipeline degradation, end to end
//===--------------------------------------------------------------------===//

/// Planted JASan heap overflow: `ld8 [r0 + 32]` one past a 32-byte
/// allocation. The access lives in `prog`, so when `prog` degrades the
/// *fallback* instrumentation must still catch it.
// HeapOverflowProg (planted redzone read) lives in TestWorkloads.h so the
// differential and golden tests pin the same workload.

struct JasanFaultHarness {
  ModuleStore Store;
  RuleStore Rules;
  StaticAnalyzer SA;

  explicit JasanFaultHarness(StaticAnalyzerOptions AOpts = {}) : SA(AOpts) {
    Store.add(cantFail(buildJlibc()));
    Store.add(mustAssemble(HeapOverflowProg));
    JASanTool StaticTool;
    Error E = SA.analyzeProgram(Store, "prog", StaticTool, Rules);
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  }

  JanitizerRun run() {
    JASanTool Tool;
    return runUnderJanitizer(Store, "prog", Tool, Rules, 100'000'000);
  }
};

/// Asserts the degrade-don't-die contract on a JASan run where `prog` is
/// expected to be degraded: the run completes, prog's blocks take the
/// dynamic path, the report names prog, and the planted overflow is still
/// detected by the fallback instrumentation.
void expectDegradedButDetecting(JanitizerRun R, const char *ExpectStage) {
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  ASSERT_EQ(R.Violations.size(), 1u)
      << "fallback instrumentation must still detect the planted overflow";
  EXPECT_EQ(R.Violations[0].What, "heap-redzone");
  EXPECT_GT(R.Coverage.DynamicBlocks, 0u)
      << "degraded module's blocks must be counted as dynamic";
  EXPECT_TRUE(R.Degradation.contains("prog"))
      << "degradation report must name the quarantined module";
  bool StageSeen = false;
  for (const DegradationEvent &E : R.Degradation.Events)
    StageSeen = StageSeen || E.Stage == ExpectStage;
  EXPECT_TRUE(StageSeen) << "expected a '" << ExpectStage << "' event";
  bool ProgDegraded = false;
  for (const CoverageStats::ModuleRuleInfo &MI : R.Coverage.Modules)
    if (MI.Name == "prog") {
      ProgDegraded = MI.Degraded;
      EXPECT_FALSE(MI.DegradeCause.empty());
    }
  EXPECT_TRUE(ProgDegraded)
      << "prog's ModuleRuleInfo entry must carry the degraded flag";
}

TEST_F(PipelineDegradation, StaticAnalyzeFaultQuarantinesModule) {
  // Modules are analyzed name-sorted: libjz.so first, prog second.
  FaultInjector::instance().arm("static.analyze", FaultTrigger::nthHit(2));
  JasanFaultHarness H;
  EXPECT_EQ(H.SA.stats().ModulesDegraded, 1u);
  EXPECT_TRUE(H.SA.stats().Degradation.contains("prog"));
  JanitizerRun R = H.run();
  expectDegradedButDetecting(std::move(R), "static-analysis");
}

TEST_F(PipelineDegradation, StaticBudgetFaultDegradesToEmptyRules) {
  FaultInjector::instance().arm("static.budget", FaultTrigger::nthHit(2));
  JasanFaultHarness H;
  EXPECT_EQ(H.SA.stats().ModulesDegraded, 1u);
  const RuleFile *RF = H.Rules.find("prog", "jasan");
  ASSERT_NE(RF, nullptr);
  EXPECT_TRUE(RF->Degraded);
  EXPECT_TRUE(RF->Rules.empty())
      << "budget exhaustion before the tool pass must not emit no-ops";
  expectDegradedButDetecting(H.run(), "static-analysis");
}

TEST_F(PipelineDegradation, RealStepBudgetDegradesOversizedModule) {
  // A real (non-injected) budget small enough that no module fits: both
  // degrade, everything falls back dynamically, detection still works.
  StaticAnalyzerOptions AOpts;
  AOpts.ModuleStepBudget = 1;
  JasanFaultHarness H(AOpts);
  EXPECT_EQ(H.SA.stats().ModulesDegraded, 2u);
  expectDegradedButDetecting(H.run(), "static-analysis");
}

TEST_F(PipelineDegradation, PoolTaskDropQuarantinesModule) {
  FaultInjector::instance().arm("pool.task", FaultTrigger::nthHit(2));
  JasanFaultHarness H;
  EXPECT_EQ(H.SA.stats().ModulesDegraded, 1u);
  EXPECT_TRUE(H.SA.stats().Degradation.contains("prog"));
  expectDegradedButDetecting(H.run(), "static-analysis");
}

TEST_F(PipelineDegradation, ModuleLoadFaultQuarantinesAtRuntime) {
  JasanFaultHarness H; // clean static analysis
  ASSERT_EQ(H.SA.stats().ModulesDegraded, 0u);
  // Load order is load-time order: libjz.so loads before prog? The exe
  // loads first, then its dependencies; quarantine whichever load is
  // first plus the second to cover both without ordering assumptions.
  FaultInjector::instance().arm("dynamic.moduleload",
                                FaultTrigger::always());
  expectDegradedButDetecting(H.run(), "module-load");
}

TEST_F(PipelineDegradation, ValidationFaultEmitsDegradedModuleEntry) {
  JasanFaultHarness H;
  FaultInjector::instance().arm("dynamic.rules.validate",
                                FaultTrigger::always());
  JanitizerRun R = H.run();
  // Satellite: a module whose rule file fails validation must still get a
  // ModuleRuleInfo entry, flagged degraded.
  ASSERT_FALSE(R.Coverage.Modules.empty());
  for (const CoverageStats::ModuleRuleInfo &MI : R.Coverage.Modules) {
    EXPECT_TRUE(MI.Degraded) << MI.Name;
    EXPECT_EQ(MI.Blocks, 0u) << "no rule table may be installed";
  }
  expectDegradedButDetecting(std::move(R), "module-load");
}

TEST_F(PipelineDegradation, RealValidationFailureQuarantines) {
  // Not injected: a rule file carrying an invalid rule id fails
  // validateForLoad and the module is quarantined.
  JasanFaultHarness H;
  RuleFile Bad = *H.Rules.find("prog", "jasan");
  RewriteRule Bogus;
  Bogus.Id = static_cast<RuleId>(0x7777); // out of range
  Bad.Rules.push_back(Bogus);
  RuleStore Tampered;
  Tampered.add(std::move(Bad));
  Tampered.add(*H.Rules.find("libjz.so", "jasan"));
  JASanTool Tool;
  JanitizerRun R =
      runUnderJanitizer(H.Store, "prog", Tool, Tampered, 100'000'000);
  ASSERT_EQ(R.Result.St, RunResult::Status::Exited) << R.Result.FaultMsg;
  EXPECT_TRUE(R.Degradation.contains("prog"));
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "heap-redzone");
}

TEST_F(PipelineDegradation, JcfiStillDetectsHijackInDegradedModule) {
  // JCFI forward-edge hijack planted in prog; prog degraded statically.
  FaultInjector::instance().arm("static.analyze", FaultTrigger::nthHit(2));
  ModuleStore Store;
  RuleStore Rules;
  JcfiDatabase Db;
  JCFIOptions Opts;
  Opts.AbortOnViolation = true;
  Store.add(cantFail(buildJlibc()));
  Store.add(mustAssemble(R"(
    .module prog
    .entry main
    .needed libjz.so
    .func helper
    helper:
      movi r0, 1
      ret
    .endfunc
    .func main
    main:
      la r1, helper
      addi r1, 2         ; mid-function, not an entry
      callr r1
      movi r0, 0
      syscall 0
    .endfunc
  )"));
  StaticAnalyzer SA;
  JCFITool StaticTool(Db, Opts);
  StaticTool.setStaticOutput(&Db);
  Error E = SA.analyzeProgram(Store, "prog", StaticTool, Rules);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_TRUE(SA.stats().Degradation.contains("prog"));
  FaultInjector::instance().disarmAll();
  JCFITool Tool(Db, Opts);
  JanitizerRun R = runUnderJanitizer(Store, "prog", Tool, Rules, 100'000'000);
  EXPECT_EQ(R.Result.St, RunResult::Status::Trapped);
  ASSERT_GE(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].What, "cfi-icall");
  EXPECT_TRUE(R.Degradation.contains("prog"));
}

//===--------------------------------------------------------------------===//
// Cache-layer faults: recover by re-analysis, never degrade the run
//===--------------------------------------------------------------------===//

struct CacheFixture {
  ModuleStore Store;
  std::map<std::string, std::vector<uint8_t>> Reference;
  std::string CacheDir;

  explicit CacheFixture(const std::string &Name)
      : CacheDir(freshCacheDir(Name)) {
    Store.add(cantFail(buildJlibc()));
    Store.add(mustAssemble(HeapOverflowProg));
    // Fault-free cold run: the reference bytes and a warm cache.
    RuleStore Rules;
    StaticAnalyzerOptions AOpts;
    AOpts.CacheDir = CacheDir;
    StaticAnalyzer SA(AOpts);
    JASanTool Tool;
    Error E = SA.analyzeProgram(Store, "prog", Tool, Rules);
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
    Reference = ruleBytes(Store, Rules, "jasan");
  }

  StaticAnalyzerStats rerun(std::map<std::string, std::vector<uint8_t>> *Out) {
    RuleStore Rules;
    StaticAnalyzerOptions AOpts;
    AOpts.CacheDir = CacheDir;
    StaticAnalyzer SA(AOpts);
    JASanTool Tool;
    Error E = SA.analyzeProgram(Store, "prog", Tool, Rules);
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
    if (Out)
      *Out = ruleBytes(Store, Rules, "jasan");
    return SA.stats();
  }
};

TEST_F(PipelineDegradation, CorruptCacheEntryEvictsAndReanalyzes) {
  CacheFixture F("corrupt");
  FaultInjector::instance().arm("cache.read.corrupt", FaultTrigger::always());
  std::map<std::string, std::vector<uint8_t>> Got;
  StaticAnalyzerStats S = F.rerun(&Got);
  EXPECT_EQ(S.CacheHits, 0u);
  EXPECT_GE(S.CacheEvictions, 2u) << "bit-rotted entries must be evicted";
  EXPECT_EQ(S.ModulesDegraded, 0u) << "re-analysis recovers full coverage";
  EXPECT_EQ(Got, F.Reference) << "recovered rules must be byte-identical";
}

TEST_F(PipelineDegradation, RuleParseFaultEvictsAndReanalyzes) {
  CacheFixture F("parse");
  FaultInjector::instance().arm("rules.parse", FaultTrigger::always());
  std::map<std::string, std::vector<uint8_t>> Got;
  StaticAnalyzerStats S = F.rerun(&Got);
  EXPECT_EQ(S.CacheHits, 0u);
  EXPECT_GE(S.CacheEvictions, 2u);
  EXPECT_EQ(S.ModulesDegraded, 0u);
  EXPECT_EQ(Got, F.Reference);
}

TEST_F(PipelineDegradation, EnospcWriteLeavesNoEntryAndNoGarbage) {
  FaultInjector::instance().arm("cache.write.enospc", FaultTrigger::always());
  CacheFixture F("enospc"); // cold run writes under the fault
  FaultInjector::instance().disarmAll();
  StaticAnalyzerStats S = F.rerun(nullptr);
  EXPECT_EQ(S.CacheHits, 0u) << "short-written entries must not be published";
  for (const auto &Ent : std::filesystem::directory_iterator(F.CacheDir))
    EXPECT_EQ(Ent.path().extension(), ".jrc")
        << "failed writes must not leave temp files: " << Ent.path();
}

TEST_F(PipelineDegradation, RenameFaultLeavesNoEntryAndNoGarbage) {
  FaultInjector::instance().arm("cache.rename", FaultTrigger::always());
  CacheFixture F("rename");
  FaultInjector::instance().disarmAll();
  StaticAnalyzerStats S = F.rerun(nullptr);
  EXPECT_EQ(S.CacheHits, 0u);
  for (const auto &Ent : std::filesystem::directory_iterator(F.CacheDir))
    EXPECT_EQ(Ent.path().extension(), ".jrc") << Ent.path();
}

//===--------------------------------------------------------------------===//
// Zero faults: byte-identical rules, degraded results never cached
//===--------------------------------------------------------------------===//

TEST_F(PipelineDegradation, ZeroFaultsYieldsByteIdenticalRules) {
  // Arm-and-disarm must leave no residue: rule files produced after a
  // fault plan is torn down are byte-identical to a never-armed run.
  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  Store.add(mustAssemble(HeapOverflowProg));
  auto Analyze = [&Store] {
    RuleStore Rules;
    StaticAnalyzer SA;
    JASanTool Tool;
    Error E = SA.analyzeProgram(Store, "prog", Tool, Rules);
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
    return ruleBytes(Store, Rules, "jasan");
  };
  auto Before = Analyze();
  {
    ScopedFaultPlan Plan({{"static.analyze", FaultTrigger::always()},
                          {"cache.rename", FaultTrigger::always()}});
    EXPECT_TRUE(FaultInjector::armed());
  }
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_EQ(Analyze(), Before);
}

TEST_F(PipelineDegradation, DegradedRuleFilesAreNeverCached) {
  std::string Dir = freshCacheDir("nodegraded");
  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  Store.add(mustAssemble(HeapOverflowProg));
  FaultInjector::instance().arm("static.analyze", FaultTrigger::always());
  {
    RuleStore Rules;
    StaticAnalyzerOptions AOpts;
    AOpts.CacheDir = Dir;
    StaticAnalyzer SA(AOpts);
    JASanTool Tool;
    Error E = SA.analyzeProgram(Store, "prog", Tool, Rules);
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
    EXPECT_EQ(SA.stats().ModulesDegraded, 2u);
  }
  FaultInjector::instance().disarmAll();
  // The degraded run must not have populated the cache: the healthy run
  // re-analyzes and regains full coverage.
  RuleStore Rules;
  StaticAnalyzerOptions AOpts;
  AOpts.CacheDir = Dir;
  StaticAnalyzer SA(AOpts);
  JASanTool Tool;
  Error E = SA.analyzeProgram(Store, "prog", Tool, Rules);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_EQ(SA.stats().CacheHits, 0u)
      << "degraded rule files must never be served from the cache";
  EXPECT_EQ(SA.stats().ModulesDegraded, 0u);
}

TEST_F(PipelineDegradation, MissingModuleIsFatalNotDegraded) {
  // The one Propagate case: a module absent from the store voids the
  // dependency closure itself; there is no unit to quarantine.
  ModuleStore Store;
  Module Prog = mustAssemble(HeapOverflowProg); // .needed libjz.so, not added
  Store.add(Prog);
  RuleStore Rules;
  StaticAnalyzer SA;
  JASanTool Tool;
  Error E = SA.analyzeProgram(Store, "prog", Tool, Rules);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_TRUE(E.isFatal());
}

} // namespace
