//===- tests/dbi_test.cpp - Dynamic binary modifier tests -----------------===//

#include "dbi/Dbi.h"
#include "dbi/NullClient.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"
#include "rules/RewriteRules.h"

#include <gtest/gtest.h>

using namespace janitizer;

namespace {

Module mustAssemble(const std::string &Src) {
  auto M = assembleModule(Src);
  if (!M) {
    ADD_FAILURE() << M.message();
    return Module();
  }
  return *M;
}

ModuleStore storeWith(const std::string &ExeSrc, bool WithLibc = true) {
  ModuleStore Store;
  if (WithLibc)
    Store.add(cantFail(buildJlibc()));
  Store.add(mustAssemble(ExeSrc));
  return Store;
}

const char *QsortProg = R"(
  .module prog
  .entry main
  .needed libjz.so
  .extern qsort
  .section data
  arr:
    .word8 9
    .word8 3
    .word8 7
    .word8 1
  .section text
  .func cmp_asc
  cmp_asc:
    sub r0, r1
    ret
  .endfunc
  .func main
  main:
    la r0, arr
    movi r1, 4
    movi r2, 8
    la r3, cmp_asc
    call qsort
    la r5, arr
    ld8 r0, [r5]
    muli r0, 10
    ld8 r6, [r5 + 24]
    add r0, r6         ; 10*1 + 9 = 19
    syscall 0
  .endfunc
)";

TEST(Dbi, NullClientPreservesSemantics) {
  // Same program natively and under the null client: identical results,
  // higher cycles under the DBI.
  ModuleStore Store = storeWith(QsortProg);

  Process Native(Store);
  ASSERT_FALSE(static_cast<bool>(Native.loadProgram("prog")));
  RunResult NR = Native.runNative();
  ASSERT_EQ(NR.St, RunResult::Status::Exited);
  EXPECT_EQ(NR.ExitCode, 19);

  Process Inst(Store);
  NullClient Tool;
  DbiEngine E(Inst, Tool);
  ASSERT_FALSE(static_cast<bool>(Inst.loadProgram("prog")));
  RunResult IR = E.run();
  ASSERT_EQ(IR.St, RunResult::Status::Exited);
  EXPECT_EQ(IR.ExitCode, 19);
  EXPECT_EQ(IR.Retired, NR.Retired) << "null client must not change the "
                                       "retired application instructions";
  EXPECT_GT(IR.Cycles, NR.Cycles) << "DBI overhead must be visible";
  EXPECT_GT(E.stats().BlocksBuilt, 5u);
  EXPECT_GT(E.stats().IndirectLookups, 0u) << "qsort callback + returns";
}

TEST(Dbi, BlocksAreReused) {
  ModuleStore Store = storeWith(R"(
    .module prog
    .entry main
    .func main
    main:
      movi r1, 0
    loop:
      addi r1, 1
      cmpi r1, 100
      jl loop
      movi r0, 7
      syscall 0
    .endfunc
  )", /*WithLibc=*/false);
  Process P(Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  RunResult R = E.run();
  ASSERT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 7);
  // The loop body executes 100 times but is built once.
  EXPECT_LT(E.stats().BlocksBuilt, 10u);
  EXPECT_GT(E.stats().BlocksExecuted, 100u);
}

TEST(Dbi, JitCodeIsTranslatedAndFlushed) {
  ModuleStore Store = storeWith(R"(
    .module jit
    .entry main
    .func main
    main:
      movi r0, 64
      syscall 2
      mov r9, r0
      movi r1, 0x0004   ; movi r0, 55
      st2 [r9], r1
      movi r1, 55
      st4 [r9 + 2], r1
      movi r1, 0x45     ; ret
      st1 [r9 + 6], r1
      mov r0, r9
      movi r1, 7
      syscall 3
      callr r9
      mov r8, r0
      ; rewrite the JIT region: movi r0, 99 ; ret
      movi r1, 99
      st4 [r9 + 2], r1
      mov r0, r9
      movi r1, 7
      syscall 3          ; remap -> DBI must flush the stale translation
      callr r9
      add r0, r8         ; 55 + 99 = 154
      syscall 0
    .endfunc
  )", /*WithLibc=*/false);
  Process P(Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("jit")));
  RunResult R = E.run();
  ASSERT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 154) << "stale JIT translation not flushed";
}

/// A tool that inlines a memory-access counter using meta-instructions,
/// carefully saving/restoring the scratch register and flags — validates
/// that inline instrumentation cannot perturb application state.
class CountingTool : public DbiTool {
public:
  uint64_t CounterAddr;
  explicit CountingTool(uint64_t CounterAddr) : CounterAddr(CounterAddr) {}

  std::string name() const override { return "count"; }

  void instrumentBlock(DbiEngine &E, CacheBlock &Block, BlockBuilder &B,
                       const std::vector<DecodedInstrRT> &Instrs) override {
    for (const DecodedInstrRT &DI : Instrs) {
      if (isDataMemAccess(DI.I.Op)) {
        // push r1; pushf; r1 = [counter]; r1 += 1; [counter] = r1;
        // popf; pop r1
        Instruction Push;
        Push.Op = Opcode::PUSH;
        Push.Rd = Reg::R1;
        B.meta(Push);
        Instruction Pf;
        Pf.Op = Opcode::PUSHF;
        B.meta(Pf);
        Instruction Ld;
        Ld.Op = Opcode::LD8;
        Ld.Rd = Reg::R1;
        Ld.Mem.Disp = static_cast<int32_t>(CounterAddr);
        B.meta(Ld);
        Instruction Add;
        Add.Op = Opcode::ADDI;
        Add.Rd = Reg::R1;
        Add.Imm = 1;
        B.meta(Add);
        Instruction St;
        St.Op = Opcode::ST8;
        St.Rd = Reg::R1;
        St.Mem.Disp = static_cast<int32_t>(CounterAddr);
        B.meta(St);
        Instruction Po;
        Po.Op = Opcode::POPF;
        B.meta(Po);
        Instruction Pop;
        Pop.Op = Opcode::POP;
        Pop.Rd = Reg::R1;
        B.meta(Pop);
      }
      B.app(DI.I, DI.Addr);
    }
  }
};

TEST(Dbi, InlineMetaInstrumentationIsTransparent) {
  // 100 iterations, two data accesses per iteration. The counter lives in
  // scratch guest memory outside the app's footprint.
  constexpr uint64_t CounterAddr = 0x300000;
  ModuleStore Store = storeWith(R"(
    .module prog
    .entry main
    .section bss
    buf: .zero 800
    .section text
    .func main
    main:
      la r2, buf
      movi r1, 0
    loop:
      st8 [r2 + r1*8], r1
      ld8 r3, [r2 + r1*8]
      addi r1, 1
      cmpi r1, 100
      jl loop
      mov r0, r3        ; 99
      syscall 0
    .endfunc
  )", /*WithLibc=*/false);
  Process P(Store);
  CountingTool Tool(CounterAddr);
  DbiEngine E(P, Tool);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  RunResult R = E.run();
  ASSERT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 99) << "instrumentation perturbed the application";
  EXPECT_EQ(P.M.Mem.read64(CounterAddr), 200u);
}

/// A tool that uses meta-branches: traps when a store writes the value 13.
class ValueWatchTool : public DbiTool {
public:
  std::string name() const override { return "watch13"; }
  bool SawTrap = false;

  void instrumentBlock(DbiEngine &E, CacheBlock &Block, BlockBuilder &B,
                       const std::vector<DecodedInstrRT> &Instrs) override {
    for (const DecodedInstrRT &DI : Instrs) {
      if (isStore(DI.I.Op)) {
        Instruction Pf;
        Pf.Op = Opcode::PUSHF;
        B.meta(Pf);
        Instruction Cmp;
        Cmp.Op = Opcode::CMPI;
        Cmp.Rd = DI.I.Rd; // the stored register
        Cmp.Imm = 13;
        B.meta(Cmp);
        size_t Br = B.metaBranch(Opcode::JNE);
        Instruction Trap;
        Trap.Op = Opcode::TRAP;
        Trap.Imm = static_cast<int64_t>(TrapCode::BaselineViolation);
        B.meta(Trap);
        B.bindToNext(Br);
        Instruction Po;
        Po.Op = Opcode::POPF;
        B.meta(Po);
      }
      B.app(DI.I, DI.Addr);
    }
  }

  HookAction onTrap(DbiEngine &E, uint8_t Code, uint64_t PC) override {
    SawTrap = true;
    E.recordViolation(Code, PC, 0, "store of 13");
    return HookAction::Violation;
  }
};

TEST(Dbi, MetaBranchesAndTraps) {
  ModuleStore Store = storeWith(R"(
    .module prog
    .entry main
    .section bss
    cell: .zero 8
    .section text
    .func main
    main:
      la r2, cell
      movi r1, 12
      st8 [r2], r1
      movi r1, 13
      st8 [r2], r1      ; watched value -> violation
      movi r1, 14
      st8 [r2], r1
      movi r0, 0
      syscall 0
    .endfunc
  )", /*WithLibc=*/false);
  Process P(Store);
  ValueWatchTool Tool;
  DbiEngine E(P, Tool);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  RunResult R = E.run();
  ASSERT_EQ(R.St, RunResult::Status::Exited) << "violation is non-fatal";
  EXPECT_TRUE(Tool.SawTrap);
  ASSERT_EQ(E.violations().size(), 1u);
}

/// Allocator-interposition: replace 'malloc' at dispatch.
class InterposeTool : public NullClient {
public:
  uint64_t MallocAddr = 0;
  unsigned Interposed = 0;

  bool interceptTarget(DbiEngine &E, uint64_t Target) override {
    if (Target != MallocAddr || !MallocAddr)
      return false;
    ++Interposed;
    Machine &M = E.machine();
    // Emulate: return a fixed scratch buffer.
    M.reg(Reg::R0) = 0x310000;
    M.PC = M.pop64(); // consume the return address
    E.charge(50);
    return true;
  }
};

TEST(Dbi, TargetInterposition) {
  ModuleStore Store = storeWith(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .func main
    main:
      movi r0, 32
      call malloc
      movi r1, 0x310000
      cmp r0, r1
      jne bad
      movi r0, 1
      syscall 0
    bad:
      movi r0, 2
      syscall 0
    .endfunc
  )");
  Process P(Store);
  InterposeTool Tool;
  DbiEngine E(P, Tool);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  Tool.MallocAddr = P.resolveSymbol("malloc");
  ASSERT_NE(Tool.MallocAddr, 0u);
  RunResult R = E.run();
  ASSERT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_EQ(Tool.Interposed, 1u);
}

TEST(Dbi, DlopenUnderDbiNotifiesTool) {
  class LoadWatch : public NullClient {
  public:
    std::vector<std::string> Loads;
    void onModuleLoad(DbiEngine &E, const LoadedModule &LM) override {
      Loads.push_back(LM.Mod->Name);
    }
  };
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module plugin.so
    .pic
    .shared
    .global work
    .func work
    work:
      movi r0, 31
      ret
    .endfunc
  )"));
  Store.add(mustAssemble(R"(
    .module host
    .entry main
    .section rodata
    pname: .string "plugin.so"
    wname: .string "work"
    .func main
    main:
      la r0, pname
      syscall 4
      la r1, wname
      syscall 5
      callr r0
      syscall 0
    .endfunc
  )"));
  Process P(Store);
  LoadWatch Tool;
  DbiEngine E(P, Tool);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("host")));
  // host is loaded before the engine observes? No: observer registered at
  // engine construction, before loadProgram.
  RunResult R = E.run();
  ASSERT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 31);
  ASSERT_EQ(Tool.Loads.size(), 2u);
  EXPECT_EQ(Tool.Loads[0], "host");
  EXPECT_EQ(Tool.Loads[1], "plugin.so");
}

TEST(Dbi, DlcloseUnloadsAndReloadWorks) {
  class LoadWatch : public NullClient {
  public:
    std::vector<std::string> Loads;
    std::vector<std::string> Unloads;
    std::vector<uint64_t> PluginBases;
    void onModuleLoad(DbiEngine &E, const LoadedModule &LM) override {
      Loads.push_back(LM.Mod->Name);
      if (LM.Mod->Name == "plugin.so")
        PluginBases.push_back(LM.LoadBase);
    }
    void onModuleUnload(DbiEngine &E, const LoadedModule &LM) override {
      Unloads.push_back(LM.Mod->Name);
    }
  };
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module plugin.so
    .pic
    .shared
    .global work
    .func work
    work:
      movi r0, 31
      ret
    .endfunc
  )"));
  Store.add(mustAssemble(R"(
    .module host
    .entry main
    .section rodata
    pname: .string "plugin.so"
    wname: .string "work"
    .func main
    main:
      la r0, pname
      syscall 4          ; dlopen -> handle
      mov r8, r0
      la r1, wname
      syscall 5          ; dlsym -> work
      callr r0
      mov r9, r0         ; 31
      mov r0, r8
      syscall 8          ; dlclose -> 0
      add r9, r0
      la r0, pname
      syscall 4          ; dlopen again: fresh mapping
      mov r8, r0
      la r1, wname
      syscall 5
      callr r0
      add r9, r0         ; + 31 = 62
      mov r0, r9
      syscall 0
    .endfunc
  )"));
  Process P(Store);
  LoadWatch Tool;
  DbiEngine E(P, Tool);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("host")));
  RunResult R = E.run();
  ASSERT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 62);
  ASSERT_EQ(Tool.Loads.size(), 3u);
  EXPECT_EQ(Tool.Loads[1], "plugin.so");
  EXPECT_EQ(Tool.Loads[2], "plugin.so");
  ASSERT_EQ(Tool.Unloads.size(), 1u);
  EXPECT_EQ(Tool.Unloads[0], "plugin.so");
  // The re-dlopen mapped the plugin afresh (new region, new id).
  ASSERT_EQ(Tool.PluginBases.size(), 2u);
  EXPECT_NE(Tool.PluginBases[0], Tool.PluginBases[1]);
  EXPECT_EQ(P.moduleByName("plugin.so")->LoadBase, Tool.PluginBases[1]);
}

TEST(Dbi, UnloadRejectsExecutablesAndUnknownModules) {
  ModuleStore Store = storeWith(R"(
    .module prog
    .entry main
    .func main
    main:
      movi r0, 0
      syscall 0
    .endfunc
  )");
  Process P(Store);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  EXPECT_TRUE(static_cast<bool>(P.unloadModule("prog")))
      << "executables must not be dlclosable";
  EXPECT_TRUE(static_cast<bool>(P.unloadModule("missing.so")));
}

TEST(Dbi, FlushRangeEvictsSpanningBlocks) {
  // Regression (ISSUE 5): flushRange used to evict only blocks whose
  // *head* lay in the range. Remapping just the tail bytes of a JIT block
  // (here: the movi immediate, not the block head) left the stale
  // translation live, so the second call kept returning the old value.
  ModuleStore Store = storeWith(R"(
    .module jit
    .entry main
    .func main
    main:
      movi r0, 64
      syscall 2
      mov r9, r0
      movi r1, 0x0004   ; movi r0, 55
      st2 [r9], r1
      movi r1, 55
      st4 [r9 + 2], r1
      movi r1, 0x45     ; ret
      st1 [r9 + 6], r1
      mov r0, r9
      movi r1, 7
      syscall 3
      callr r9
      mov r8, r0         ; 55
      ; patch only the immediate: movi r0, 99
      movi r1, 99
      st4 [r9 + 2], r1
      mov r0, r9
      addi r0, 2
      movi r1, 4
      syscall 3          ; remap [r9+2, r9+6): spans the block, not its head
      callr r9
      add r0, r8         ; 55 + 99 = 154
      syscall 0
    .endfunc
  )", /*WithLibc=*/false);
  Process P(Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("jit")));
  RunResult R = E.run();
  ASSERT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 154)
      << "block spanning the remapped range survived the flush";
}

class TrapPcTool : public DbiTool {
public:
  std::string name() const override { return "trap-pc"; }
  uint64_t BlockHead = 0;
  uint64_t StoreAddr = 0;
  uint64_t TrapPC = 0;

  void instrumentBlock(DbiEngine &E, CacheBlock &Block, BlockBuilder &B,
                       const std::vector<DecodedInstrRT> &Instrs) override {
    for (const DecodedInstrRT &DI : Instrs) {
      if (isStore(DI.I.Op)) {
        BlockHead = Instrs.front().Addr;
        StoreAddr = DI.Addr;
        // Guard emitted *before* the store it checks, like JASan's
        // shadow checks: trap when the stored value is 13.
        Instruction Pf;
        Pf.Op = Opcode::PUSHF;
        B.meta(Pf);
        Instruction Cmp;
        Cmp.Op = Opcode::CMPI;
        Cmp.Rd = DI.I.Rd;
        Cmp.Imm = 13;
        B.meta(Cmp);
        size_t Br = B.metaBranch(Opcode::JNE);
        Instruction Trap;
        Trap.Op = Opcode::TRAP;
        Trap.Imm = static_cast<int64_t>(TrapCode::BaselineViolation);
        B.meta(Trap);
        B.bindToNext(Br);
        Instruction Po;
        Po.Op = Opcode::POPF;
        B.meta(Po);
      }
      B.app(DI.I, DI.Addr);
    }
  }

  HookAction onTrap(DbiEngine &E, uint8_t Code, uint64_t PC) override {
    TrapPC = PC;
    return HookAction::Violation;
  }
};

TEST(Dbi, MetaTrapReportsGuardedInstruction) {
  // Regression (ISSUE 5): meta-instruction traps used to report the
  // block-head PC to onTrap; the violation must be attributed to the
  // application instruction the check guards.
  ModuleStore Store = storeWith(R"(
    .module prog
    .entry main
    .section bss
    cell: .zero 8
    .section text
    .func main
    main:
      la r2, cell
      movi r1, 12
      xor r3, r3
      movi r1, 13
      st8 [r2], r1      ; watched store, several instructions past the head
      movi r0, 0
      syscall 0
    .endfunc
  )", /*WithLibc=*/false);
  Process P(Store);
  TrapPcTool Tool;
  DbiEngine E(P, Tool);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  RunResult R = E.run();
  ASSERT_EQ(R.St, RunResult::Status::Exited);
  ASSERT_NE(Tool.TrapPC, 0u) << "guard never fired";
  EXPECT_EQ(Tool.TrapPC, Tool.StoreAddr)
      << "trap attributed to the wrong instruction";
  EXPECT_NE(Tool.TrapPC, Tool.BlockHead)
      << "trap still reports the block head";
}

class LateInterposeTool : public NullClient {
public:
  uint64_t HelperAddr = 0;
  unsigned Interposed = 0;

  void onModuleLoad(DbiEngine &E, const LoadedModule &LM) override {
    // Models late symbol resolution (JASan resolving the allocator):
    // the interposition target becomes known only once the plugin loads,
    // long after helper's block was built, linked and traced.
    if (LM.Mod->Name == "plugin.so")
      HelperAddr = E.process().resolveSymbol("helper");
  }
  bool interceptTarget(DbiEngine &E, uint64_t Target) override {
    if (!HelperAddr || Target != HelperAddr)
      return false;
    ++Interposed;
    Machine &M = E.machine();
    M.reg(Reg::R0) = M.reg(Reg::R0) + 1; // replacement adds 1, not 5
    M.PC = M.pop64();
    return true;
  }
  bool isInterposedTarget(DbiEngine &E, uint64_t Target) override {
    return HelperAddr && Target == HelperAddr;
  }
};

TEST(Dbi, InterposedTargetIsNeverLinkedPast) {
  // Phase 1 runs helper hot (its block is built, linked and stitched into
  // a trace). The dlopen then arms interposition on helper. Phase 2 must
  // intercept *every* call: stale links/traces into helper must be torn
  // down by the module-load generation bump, and no new link may form to
  // an interposed target even though its block is still in the cache.
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module plugin.so
    .pic
    .shared
    .global work
    .func work
    work:
      movi r0, 0
      ret
    .endfunc
  )"));
  Store.add(mustAssemble(R"(
    .module host
    .entry main
    .section rodata
    pname: .string "plugin.so"
    .section text
    .global helper
    .func helper
    helper:
      addi r0, 5
      ret
    .endfunc
    .func main
    main:
      movi r10, 0
      movi r11, 0
    loop1:
      mov r0, r10
      call helper        ; real helper: +5 per call
      mov r10, r0
      addi r11, 1
      cmpi r11, 20
      jl loop1
      la r0, pname
      syscall 4          ; dlopen arms the interposition
      movi r11, 0
    loop2:
      mov r0, r10
      call helper        ; must be intercepted now: +1 per call
      mov r10, r0
      addi r11, 1
      cmpi r11, 20
      jl loop2
      mov r0, r10
      syscall 0
    .endfunc
  )"));
  Process P(Store);
  LateInterposeTool Tool;
  DbiEngine E(P, Tool);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("host")));
  RunResult R = E.run();
  ASSERT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 120) << "some calls reached the real helper: "
                                "interposition was linked past";
  EXPECT_EQ(Tool.Interposed, 20u);
  EXPECT_GT(E.stats().LinksFollowed, 0u) << "phase 1 never linked";
}

TEST(Dbi, LinksAndTracesPreserveSemantics) {
  // The same program with and without JZ_NO_LINK: identical execution,
  // fewer dispatcher entries, and the fast-path counters engage only in
  // the linked run.
  ModuleStore Store = storeWith(QsortProg);
  auto RunWith = [&](bool NoLink, DbiStats &S) {
    if (NoLink)
      setenv("JZ_NO_LINK", "1", 1);
    Process P(Store);
    NullClient Tool;
    DbiEngine E(P, Tool);
    unsetenv("JZ_NO_LINK");
    EXPECT_FALSE(static_cast<bool>(P.loadProgram("prog")));
    RunResult R = E.run();
    S = E.stats();
    return R;
  };
  unsetenv("JZ_NO_LINK");
  unsetenv("JZ_NO_TRACE");
  DbiStats Linked, Unlinked;
  RunResult LR = RunWith(false, Linked);
  RunResult UR = RunWith(true, Unlinked);
  ASSERT_EQ(LR.St, RunResult::Status::Exited);
  ASSERT_EQ(UR.St, RunResult::Status::Exited);
  EXPECT_EQ(LR.ExitCode, UR.ExitCode);
  EXPECT_EQ(LR.Retired, UR.Retired)
      << "linking must not change the retired instruction stream";
  EXPECT_GT(Linked.LinksFollowed + Linked.IblHits, 0u);
  EXPECT_EQ(Unlinked.LinksFollowed, 0u);
  EXPECT_EQ(Unlinked.IblHits, 0u);
  EXPECT_LT(Linked.DispatchEntries, Unlinked.DispatchEntries);
  EXPECT_LE(LR.Cycles, UR.Cycles) << "linking must not cost guest cycles";
}

TEST(RuleFiles, SerializeAndAdjust) {
  RuleFile RF;
  RF.ModuleName = "m.so";
  RF.ToolName = "jasan";
  RewriteRule R1;
  R1.Id = RuleId::AsanCheck;
  R1.BBAddr = 0x100;
  R1.InstrAddr = 0x108;
  R1.Data[0] = 0xFF;
  RewriteRule R2;
  R2.Id = RuleId::NoOp;
  R2.BBAddr = 0x200;
  R2.InstrAddr = 0x200;
  RF.Rules = {R1, R2};

  auto Blob = RF.serialize();
  auto RF2 = RuleFile::deserialize(Blob);
  ASSERT_TRUE(static_cast<bool>(RF2));
  EXPECT_EQ(RF2->ModuleName, "m.so");
  EXPECT_EQ(RF2->Rules.size(), 2u);
  EXPECT_EQ(RF2->Rules[0].Id, RuleId::AsanCheck);
  EXPECT_EQ(RF2->Rules[0].Data[0], 0xFFu);

  // PIC adjustment: slide 0x1000000.
  RuleTable T(*RF2, 0x1000000);
  EXPECT_EQ(T.blockCount(), 2u);
  EXPECT_EQ(T.ruleCount(), 2u);
  const auto *Rules = T.lookup(0x1000100);
  ASSERT_NE(Rules, nullptr);
  EXPECT_EQ((*Rules)[0].InstrAddr, 0x1000108u);
  EXPECT_EQ(T.lookup(0x100), nullptr) << "unadjusted address must miss";
}

TEST(RuleFiles, StoreLookup) {
  RuleStore Store;
  RuleFile A;
  A.ModuleName = "a.so";
  A.ToolName = "jasan";
  Store.add(A);
  RuleFile B;
  B.ModuleName = "a.so";
  B.ToolName = "jcfi";
  Store.add(B);
  EXPECT_NE(Store.find("a.so", "jasan"), nullptr);
  EXPECT_NE(Store.find("a.so", "jcfi"), nullptr);
  EXPECT_EQ(Store.find("b.so", "jasan"), nullptr);
  EXPECT_EQ(Store.find("a.so", "other"), nullptr);
}

} // namespace
