//===- tests/jit_test.cpp - Template-JIT tier verification ----------------===//
///
/// \file
/// The jit tier's own test binary (DESIGN.md §5i), label unit+jit so the
/// JZ_JIT_CHECK=1 stage of scripts/check.sh can run it in isolation:
///
///  - the host emitter self-test (reference encodings);
///  - a seeded property sweep: random straight-line soup over the full
///    JISA opcode table, run once on the interpreter (JZ_NO_JIT) and once
///    on stencils (threshold 1), comparing the *complete* final machine
///    state — every register, every flag, PC, cycles, retired, and the
///    whole data buffer the soup scribbled on;
///  - tier-down regressions: kill-switch fallback, arena exhaustion,
///    self-modifying guests evicting stencils, interposed allocator
///    targets, and snapshot round trips that must restore cold (jitted
///    code never travels through a state file).
///
//===----------------------------------------------------------------------===//

#include "core/JanitizerDynamic.h"
#include "core/StaticAnalyzer.h"
#include "dbi/Dbi.h"
#include "dbi/Jit.h"
#include "dbi/NullClient.h"
#include "jasan/JASan.h"
#include "jasm/X64Emitter.h"
#include "runtime/Jlibc.h"
#include "vm/StateFile.h"

#include "TestWorkloads.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

using namespace janitizer;
using testutil::addProgramWithJlibc;
using testutil::CanaryFrameProg;
using testutil::HeapOverflowProg;
using testutil::mustAssemble;

namespace {

/// Scoped environment variable: set on construction, unset on scope exit,
/// so an ASSERT bailing out of a test cannot leak jit configuration into
/// the next one.
struct EnvGuard {
  std::string Name;
  EnvGuard(const char *N, const char *V) : Name(N) { setenv(N, V, 1); }
  ~EnvGuard() { unsetenv(Name.c_str()); }
  EnvGuard(const EnvGuard &) = delete;
  EnvGuard &operator=(const EnvGuard &) = delete;
};

//===--------------------------------------------------------------------===//
// Host emitter
//===--------------------------------------------------------------------===//

TEST(Jit, EmitterSelfTestPasses) {
  EXPECT_TRUE(x64::emitterSelfTest());
}

TEST(Jit, HostSupportMatchesArena) {
  // hostSupported() may only claim support when the arena can actually
  // map executable pages on this host.
  if (jit::hostSupported()) {
    EXPECT_TRUE(ExecArena::supported());
  }
}

//===--------------------------------------------------------------------===//
// Seeded property sweep: stencils vs the interpreter
//===--------------------------------------------------------------------===//

/// Generates random-but-safe straight-line "soup" over the full JISA
/// opcode table: every ALU op (reg/reg and reg/imm), multiplies, guarded
/// divides, all load/store widths, lea, balanced push/pop and pushf/popf
/// groups, pushq, cas, nops and short forward conditional skips — wrapped
/// in a four-iteration loop so blocks re-enter.  Memory indices are
/// masked into a private 4 KiB buffer; sp/tp and the loop counter are
/// never touched by the soup.
std::string soupProgram(uint64_t Seed) {
  SplitMix64 Rng(Seed);
  AsmBuilder B;
  B.line(".module soup");
  B.line(".entry main");
  B.line(".global buf");
  B.line(".section bss");
  B.line("buf: .zero 4096");
  B.line(".section text");
  B.line(".func main");
  B.line("main:");
  for (unsigned R = 0; R < 8; ++R)
    B.fmt("movq r%u, %lld", R, static_cast<long long>(Rng.next()));
  B.line("la r10, buf");
  B.line("movi r12, 0");
  B.line("m_top:");
  static const char *RROps[] = {"add", "sub", "and", "or",  "xor", "shl",
                                "shr", "mul", "cmp", "test", "mov"};
  static const char *RIOps[] = {"addi", "subi", "andi", "ori",  "xori",
                                "shli", "shri", "muli", "cmpi", "testi"};
  static const unsigned Widths[] = {1, 2, 4, 8};
  static const char *CCs[] = {"je", "jne", "jl", "jle",
                              "jg", "jge", "jb", "jae"};
  unsigned N = 40 + unsigned(Rng.below(60));
  unsigned NextLbl = 0;
  for (unsigned K = 0; K < N; ++K) {
    unsigned A = unsigned(Rng.below(8)), C = unsigned(Rng.below(8));
    switch (Rng.below(12)) {
    case 0: // reg/reg ALU
      B.fmt("%s r%u, r%u", RROps[Rng.below(11)], A, C);
      break;
    case 1: { // reg/imm ALU; shift immediates stay in [0,63]
      unsigned Op = unsigned(Rng.below(10));
      long long Imm = (RIOps[Op][0] == 's' && RIOps[Op][2] != 'b')
                          ? static_cast<long long>(Rng.below(64))
                          : static_cast<long long>(int32_t(Rng.next()));
      B.fmt("%s r%u, %lld", RIOps[Op], A, Imm);
      break;
    }
    case 2: // guarded divide: divisor forced odd, never zero
      B.fmt("ori r%u, 1", C);
      B.fmt("div r%u, r%u", A, C);
      break;
    case 3: // full-width immediate move
      B.fmt("movq r%u, %lld", A, static_cast<long long>(Rng.next()));
      break;
    case 4: // load, index masked into the buffer
      B.fmt("andi r%u, 255", C);
      B.fmt("ld%u r%u, [r10 + r%u*8]", Widths[Rng.below(4)], A, C);
      break;
    case 5: // store, same masking
      B.fmt("andi r%u, 255", C);
      B.fmt("st%u [r10 + r%u*8], r%u", Widths[Rng.below(4)], C, A);
      break;
    case 6: // address arithmetic
      B.fmt("lea r%u, [r10 + r%u*4]", A, C);
      break;
    case 7: // flags round-trip a flag-clobbering op
      B.line("pushf");
      B.fmt("addi r%u, 1", A);
      B.line("popf");
      break;
    case 8: // balanced stack traffic (push and pop may differ)
      B.fmt("push r%u", A);
      B.fmt("xori r%u, 81", A);
      B.fmt("pop r%u", C);
      break;
    case 9: // 64-bit immediate push
      B.fmt("pushq %lld", static_cast<long long>(Rng.next()));
      B.fmt("pop r%u", A);
      break;
    case 10: { // cas on an aligned private slot
      unsigned Slot = 8 * unsigned(Rng.below(16));
      B.fmt("cas r%u, r%u, [r10 + %u]", A, C, Slot);
      break;
    }
    default: { // forward conditional skip over a couple of ALU ops
      B.fmt("cmpi r%u, %lld", A, static_cast<long long>(Rng.below(100)));
      B.fmt("%s s_%u", CCs[Rng.below(8)], NextLbl);
      B.fmt("xori r%u, 37", C);
      B.fmt("addi r%u, 5", A);
      B.fmt("s_%u:", NextLbl);
      ++NextLbl;
      break;
    }
    }
  }
  B.line("addi r12, 1");
  B.line("cmpi r12, 4");
  B.line("jl m_top");
  B.line("mov r11, r0");
  B.line("movi r0, 0");
  B.line("syscall 0");
  B.line(".endfunc");
  return B.str();
}

/// Everything observable about a finished soup run.
struct SoupState {
  RunResult R;
  std::array<uint64_t, NumRegs> Regs{};
  bool ZF = false, SF = false, CF = false, OF = false;
  uint64_t PC = 0;
  std::vector<uint8_t> Buf;
  DbiStats Stats;
};

SoupState runSoup(const ModuleStore &Store, bool WithJit) {
  EnvGuard Thresh("JZ_JIT_THRESHOLD", "1");
  std::optional<EnvGuard> Kill;
  if (!WithJit)
    Kill.emplace("JZ_NO_JIT", "1");
  Process P(Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  EXPECT_EQ(E.jitEnabled(), WithJit && jit::hostSupported());
  EXPECT_FALSE(static_cast<bool>(P.loadProgram("soup")));
  SoupState S;
  S.R = E.run(20'000'000);
  for (unsigned I = 0; I < NumRegs; ++I)
    S.Regs[I] = P.M.R[I];
  S.ZF = P.M.ZF;
  S.SF = P.M.SF;
  S.CF = P.M.CF;
  S.OF = P.M.OF;
  S.PC = P.M.PC;
  S.Buf = P.M.Mem.readBytes(P.resolveSymbol("buf"), 4096);
  S.Stats = E.stats();
  return S;
}

TEST(Jit, PropertyStencilsMatchInterpreter) {
  if (!jit::hostSupported())
    GTEST_SKIP() << "no jit tier on this host";
  uint64_t JitExecsTotal = 0;
  for (uint64_t Seed = 1; Seed <= 24; ++Seed) {
    ModuleStore Store;
    Store.add(mustAssemble(soupProgram(Seed * 0x9E3779B9u + 7)));
    SoupState Interp = runSoup(Store, /*WithJit=*/false);
    SoupState Jit = runSoup(Store, /*WithJit=*/true);
    ASSERT_EQ(Jit.R.St, Interp.R.St)
        << "seed " << Seed << ": " << Jit.R.FaultMsg << " / "
        << Interp.R.FaultMsg;
    EXPECT_EQ(Jit.R.ExitCode, Interp.R.ExitCode) << "seed " << Seed;
    EXPECT_EQ(Jit.R.Retired, Interp.R.Retired) << "seed " << Seed;
    EXPECT_EQ(Jit.R.Cycles, Interp.R.Cycles) << "seed " << Seed;
    for (unsigned I = 0; I < NumRegs; ++I)
      EXPECT_EQ(Jit.Regs[I], Interp.Regs[I])
          << "seed " << Seed << ": register r" << I;
    EXPECT_EQ(Jit.ZF, Interp.ZF) << "seed " << Seed;
    EXPECT_EQ(Jit.SF, Interp.SF) << "seed " << Seed;
    EXPECT_EQ(Jit.CF, Interp.CF) << "seed " << Seed;
    EXPECT_EQ(Jit.OF, Interp.OF) << "seed " << Seed;
    EXPECT_EQ(Jit.PC, Interp.PC) << "seed " << Seed;
    EXPECT_EQ(Jit.Buf, Interp.Buf)
        << "seed " << Seed << ": guest memory diverged";
    EXPECT_EQ(Interp.Stats.JitExecs, 0u) << "seed " << Seed;
    JitExecsTotal += Jit.Stats.JitExecs;
  }
  EXPECT_GT(JitExecsTotal, 0u)
      << "property sweep is vacuous: no soup block ever ran on a stencil";
}

//===--------------------------------------------------------------------===//
// Tier-down regressions
//===--------------------------------------------------------------------===//

TEST(Jit, KillSwitchFallsBackCleanly) {
  ModuleStore Store;
  Store.add(mustAssemble(soupProgram(99)));
  EnvGuard Kill("JZ_NO_JIT", "1");
  EnvGuard Thresh("JZ_JIT_THRESHOLD", "1");
  Process P(Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  EXPECT_FALSE(E.jitEnabled());
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("soup")));
  RunResult R = E.run(20'000'000);
  EXPECT_EQ(R.St, RunResult::Status::Exited) << R.FaultMsg;
  EXPECT_EQ(E.stats().JitCompiled, 0u);
  EXPECT_EQ(E.stats().JitExecs, 0u);
  EXPECT_EQ(E.stats().JitArenaBytes, 0u);
}

TEST(Jit, CostModelSwitchDisablesTier) {
  // Baseline cost models that model interpreting translators must be able
  // to opt out without the environment's help.
  ModuleStore Store;
  Store.add(mustAssemble(soupProgram(99)));
  EnvGuard Thresh("JZ_JIT_THRESHOLD", "1");
  Process P(Store);
  NullClient Tool;
  DbiCostModel Costs;
  Costs.JitBlocks = false;
  DbiEngine E(P, Tool, Costs);
  EXPECT_FALSE(E.jitEnabled());
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("soup")));
  RunResult R = E.run(20'000'000);
  EXPECT_EQ(R.St, RunResult::Status::Exited) << R.FaultMsg;
  EXPECT_EQ(E.stats().JitExecs, 0u);
}

TEST(Jit, ArenaExhaustionDegradesToInterpreter) {
  if (!jit::hostSupported())
    GTEST_SKIP() << "no jit tier on this host";
  // A 64-byte arena cannot hold any stencil: every compilation is refused,
  // the refusal is sticky, and the run still completes on the interpreter.
  ModuleStore Store;
  Store.add(mustAssemble(soupProgram(7)));
  EnvGuard Thresh("JZ_JIT_THRESHOLD", "1");
  EnvGuard Cap("JZ_JIT_ARENA_MAX", "64");
  Process P(Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  EXPECT_TRUE(E.jitEnabled());
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("soup")));
  RunResult R = E.run(20'000'000);
  EXPECT_EQ(R.St, RunResult::Status::Exited) << R.FaultMsg;
  EXPECT_EQ(E.stats().JitCompiled, 0u);
  EXPECT_EQ(E.stats().JitExecs, 0u);
  EXPECT_GT(E.stats().JitRefused, 0u)
      << "exhaustion must be visible as refusals, not silent";
}

TEST(Jit, SelfModifyingGuestEvictsStencils) {
  if (!jit::hostSupported())
    GTEST_SKIP() << "no jit tier on this host";
  // The guest writes code, calls it (the stencil for it gets built at
  // threshold 1), rewrites it and remaps (syscall 3) — flushRange must
  // evict the stale stencil along with the block, or the second call
  // returns 55 again instead of 99.
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module smc
    .entry main
    .func main
    main:
      movi r0, 64
      syscall 2
      mov r9, r0
      movi r1, 0x0004   ; movi r0, 55
      st2 [r9], r1
      movi r1, 55
      st4 [r9 + 2], r1
      movi r1, 0x45     ; ret
      st1 [r9 + 6], r1
      mov r0, r9
      movi r1, 7
      syscall 3
      callr r9
      mov r8, r0
      movi r1, 99
      st4 [r9 + 2], r1
      mov r0, r9
      movi r1, 7
      syscall 3          ; remap: stencil + block must be flushed
      callr r9
      add r0, r8         ; 55 + 99 = 154
      syscall 0
    .endfunc
  )"));
  EnvGuard Thresh("JZ_JIT_THRESHOLD", "1");
  Process P(Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("smc")));
  RunResult R = E.run(20'000'000);
  ASSERT_EQ(R.St, RunResult::Status::Exited) << R.FaultMsg;
  EXPECT_EQ(R.ExitCode, 154) << "stale stencil survived the flush";
  EXPECT_GT(E.stats().JitExecs, 0u) << "vacuous: nothing ran on a stencil";
}

TEST(Jit, InterposedAllocatorsStillIntercepted) {
  if (!jit::hostSupported())
    GTEST_SKIP() << "no jit tier on this host";
  // JASan interposes the allocator entry points; the jit tier must not
  // carry a call *past* the interposition check.  With the threshold at 1
  // the block containing the malloc call is jitted, and the planted
  // redzone read must still be caught.
  EnvGuard Thresh("JZ_JIT_THRESHOLD", "1");
  ModuleStore Store;
  addProgramWithJlibc(Store, HeapOverflowProg);
  RuleStore Rules;
  StaticAnalyzer SA;
  JASanTool StaticTool;
  ASSERT_FALSE(
      static_cast<bool>(SA.analyzeProgram(Store, "prog", StaticTool, Rules)));
  JASanTool Tool;
  JanitizerRun Run = runUnderJanitizer(Store, "prog", Tool, Rules, 100'000'000);
  ASSERT_EQ(Run.Result.St, RunResult::Status::Exited) << Run.Result.FaultMsg;
  ASSERT_EQ(Run.Violations.size(), 1u);
  EXPECT_EQ(Run.Violations[0].What, "heap-redzone");
  EXPECT_GT(Run.Dbi.JitExecs, 0u) << "vacuous: nothing ran on a stencil";
}

//===--------------------------------------------------------------------===//
// Snapshots restore cold
//===--------------------------------------------------------------------===//

TEST(Jit, SnapshotRoundTripRestoresCold) {
  if (!jit::hostSupported())
    GTEST_SKIP() << "no jit tier on this host";
  EnvGuard Thresh("JZ_JIT_THRESHOLD", "1");
  ModuleStore Store;
  addProgramWithJlibc(Store, CanaryFrameProg);

  // Uninterrupted reference, jit on.
  RunResult Ref;
  std::string RefOut;
  {
    Process P(Store);
    NullClient Tool;
    DbiEngine E(P, Tool);
    ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
    Ref = E.run(20'000'000);
    ASSERT_EQ(Ref.St, RunResult::Status::Exited) << Ref.FaultMsg;
    RefOut = P.output();
  }

  // Interrupted half: stop at a cooperative checkpoint while stencils are
  // hot, then capture.  The state file must carry no jitted code.
  Process P1(Store);
  NullClient T1;
  DbiEngine E1(P1, T1);
  ASSERT_FALSE(static_cast<bool>(P1.loadProgram("prog")));
  RunBudget B1;
  B1.CheckpointAfterSteps = 300;
  RunResult R1 = E1.run(B1);
  ASSERT_EQ(R1.St, RunResult::Status::StepLimit)
      << "checkpoint must interrupt mid-run";
  EXPECT_GT(E1.stats().JitExecs, 0u)
      << "stencils must be hot at the capture point for this test to bite";
  std::vector<uint8_t> Blob = StateFile::capture(P1);

  // Resume twice from the same blob: once with the jit tier enabled (it
  // restores cold and re-tiers) and once with it killed.  Both must
  // finish byte-identically to the uninterrupted reference.
  for (bool WithJit : {true, false}) {
    std::optional<EnvGuard> Kill;
    if (!WithJit)
      Kill.emplace("JZ_NO_JIT", "1");
    Process P2(Store);
    NullClient T2;
    DbiEngine E2(P2, T2);
    ASSERT_FALSE(static_cast<bool>(StateFile::restore(P2, Blob)));
    RunResult R2 = E2.run(RunBudget());
    ASSERT_EQ(R2.St, RunResult::Status::Exited)
        << (WithJit ? "jit" : "no-jit") << ": " << R2.FaultMsg;
    EXPECT_EQ(R2.ExitCode, Ref.ExitCode);
    EXPECT_EQ(P2.output(), RefOut)
        << "output must be byte-identical across the seam";
    // The retired counter travels through the state file, so the resumed
    // run's final count must land exactly on the uninterrupted one — step
    // accounting across the seam is exact, jit tier or not.
    EXPECT_EQ(R2.Retired, Ref.Retired)
        << (WithJit ? "jit" : "no-jit")
        << ": retired counts must match exactly across the seam";
    if (WithJit)
      EXPECT_GT(E2.stats().JitCompiled, 0u)
          << "the restored engine starts cold and must re-tier";
    else
      EXPECT_EQ(E2.stats().JitExecs, 0u);
  }
}

} // namespace
