//===- tests/machine_test.cpp - Interpreter semantics ----------------------===//
///
/// Architectural unit tests for the interpreter: ALU results and flag
/// settings, conditional branch predicates, stack engine, effective
/// addresses and the cycle model.
///
//===----------------------------------------------------------------------===//

#include "vm/Machine.h"
#include "vm/Syscalls.h"

#include <gtest/gtest.h>

using namespace janitizer;

namespace {

Instruction rr(Opcode Op, Reg Rd, Reg Rs) {
  Instruction I;
  I.Op = Op;
  I.Rd = Rd;
  I.Rs = Rs;
  I.Size = 2;
  return I;
}

Instruction ri(Opcode Op, Reg Rd, int64_t Imm) {
  Instruction I;
  I.Op = Op;
  I.Rd = Rd;
  I.Imm = Imm;
  I.Size = 6;
  return I;
}

struct AluCase {
  Opcode Op;
  uint64_t A, B;
  uint64_t Want;
  bool ZF, SF, CF, OF;
};

class AluSemantics : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSemantics, ResultAndFlags) {
  const AluCase &C = GetParam();
  Machine M;
  M.reg(Reg::R1) = C.A;
  M.reg(Reg::R2) = C.B;
  ExecResult R = M.execute(rr(C.Op, Reg::R1, Reg::R2), 0);
  ASSERT_EQ(R.K, ExecResult::Kind::Fallthrough);
  bool Writeback = C.Op != Opcode::CMP && C.Op != Opcode::TEST;
  EXPECT_EQ(M.reg(Reg::R1), Writeback ? C.Want : C.A);
  EXPECT_EQ(M.ZF, C.ZF) << "ZF";
  EXPECT_EQ(M.SF, C.SF) << "SF";
  EXPECT_EQ(M.CF, C.CF) << "CF";
  EXPECT_EQ(M.OF, C.OF) << "OF";
}

constexpr uint64_t Min64 = 0x8000000000000000ull;
constexpr uint64_t NegOne = ~0ull;

INSTANTIATE_TEST_SUITE_P(
    Cases, AluSemantics,
    ::testing::Values(
        // ADD: carries and signed overflow.
        AluCase{Opcode::ADD, 1, 2, 3, false, false, false, false},
        AluCase{Opcode::ADD, NegOne, 1, 0, true, false, true, false},
        AluCase{Opcode::ADD, Min64 - 1, 1, Min64, false, true, false, true},
        AluCase{Opcode::ADD, Min64, Min64, 0, true, false, true, true},
        // SUB: borrow and signed overflow.
        AluCase{Opcode::SUB, 5, 7, NegOne - 1, false, true, true, false},
        AluCase{Opcode::SUB, 7, 7, 0, true, false, false, false},
        AluCase{Opcode::SUB, Min64, 1, Min64 - 1, false, false, false, true},
        // CMP mirrors SUB without writeback (checked via Writeback above).
        AluCase{Opcode::CMP, 3, 9, 0, false, true, true, false},
        // Logic clears CF/OF.
        AluCase{Opcode::AND, 0xF0, 0x0F, 0, true, false, false, false},
        AluCase{Opcode::OR, 0xF0, 0x0F, 0xFF, false, false, false, false},
        AluCase{Opcode::XOR, NegOne, NegOne, 0, true, false, false, false},
        AluCase{Opcode::TEST, 0xF0, 0x10, 0xF0, false, false, false, false},
        // Shifts: CF is the last bit shifted out.
        AluCase{Opcode::SHL, 0x3, 63, Min64, false, true, true, false},
        AluCase{Opcode::SHR, 0x5, 1, 0x2, false, false, true, false},
        AluCase{Opcode::SHR, 0x4, 1, 0x2, false, false, false, false},
        // MUL: CF/OF indicate a high half.
        AluCase{Opcode::MUL, 1ull << 33, 1ull << 33, 0, true, false, true,
                true},
        AluCase{Opcode::MUL, 3, 4, 12, false, false, false, false},
        // DIV.
        AluCase{Opcode::DIV, 17, 5, 3, false, false, false, false}));

TEST(Machine, DivByZeroFaults) {
  Machine M;
  M.reg(Reg::R1) = 10;
  M.reg(Reg::R2) = 0;
  ExecResult R = M.execute(rr(Opcode::DIV, Reg::R1, Reg::R2), 0);
  EXPECT_EQ(R.K, ExecResult::Kind::Fault);
}

struct JccCase {
  Opcode Op;
  uint64_t A, B; // compared first
  bool Taken;
};

class BranchPredicates : public ::testing::TestWithParam<JccCase> {};

TEST_P(BranchPredicates, TakenMatchesComparison) {
  const JccCase &C = GetParam();
  Machine M;
  M.reg(Reg::R1) = C.A;
  M.reg(Reg::R2) = C.B;
  M.execute(rr(Opcode::CMP, Reg::R1, Reg::R2), 0);
  Instruction J;
  J.Op = C.Op;
  J.Imm = 10;
  J.Size = 5;
  ExecResult R = M.execute(J, 100);
  if (C.Taken) {
    EXPECT_EQ(R.K, ExecResult::Kind::Branch);
    EXPECT_EQ(R.Target, 100u + 5 + 10);
  } else {
    EXPECT_EQ(R.K, ExecResult::Kind::Fallthrough);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BranchPredicates,
    ::testing::Values(
        JccCase{Opcode::JE, 5, 5, true}, JccCase{Opcode::JE, 5, 6, false},
        JccCase{Opcode::JNE, 5, 6, true}, JccCase{Opcode::JNE, 5, 5, false},
        // Signed comparisons: -1 < 1 signed, but huge unsigned.
        JccCase{Opcode::JL, NegOne, 1, true},
        JccCase{Opcode::JL, 1, NegOne, false},
        JccCase{Opcode::JLE, 5, 5, true},
        JccCase{Opcode::JG, 1, NegOne, true},
        JccCase{Opcode::JGE, 5, 5, true},
        JccCase{Opcode::JGE, NegOne, 0, false},
        // Unsigned comparisons: the mirror image.
        JccCase{Opcode::JB, 1, NegOne, true},
        JccCase{Opcode::JB, NegOne, 1, false},
        JccCase{Opcode::JAE, NegOne, 1, true},
        JccCase{Opcode::JAE, 1, 1, true},
        // Signed overflow corner: Min64 < 1 must hold under JL.
        JccCase{Opcode::JL, Min64, 1, true}));

TEST(Machine, PushPopAndFlagsRoundTrip) {
  Machine M;
  M.reg(Reg::SP) = 0x7000;
  M.reg(Reg::R3) = 0x1234;
  Instruction Push;
  Push.Op = Opcode::PUSH;
  Push.Rd = Reg::R3;
  Push.Size = 2;
  M.execute(Push, 0);
  EXPECT_EQ(M.reg(Reg::SP), 0x7000u - 8);
  EXPECT_EQ(M.Mem.read64(0x7000 - 8), 0x1234u);

  // Dirty all flags, save them, clobber, restore.
  M.execute(rr(Opcode::SUB, Reg::R3, Reg::R3), 0); // ZF=1
  Instruction Pf;
  Pf.Op = Opcode::PUSHF;
  Pf.Size = 1;
  M.execute(Pf, 0);
  M.execute(ri(Opcode::CMPI, Reg::R3, 5), 0); // ZF=0, SF=1
  EXPECT_FALSE(M.ZF);
  Instruction Po;
  Po.Op = Opcode::POPF;
  Po.Size = 1;
  M.execute(Po, 0);
  EXPECT_TRUE(M.ZF) << "POPF must restore saved flags";

  Instruction Pop;
  Pop.Op = Opcode::POP;
  Pop.Rd = Reg::R4;
  Pop.Size = 2;
  M.execute(Pop, 0);
  EXPECT_EQ(M.reg(Reg::R4), 0x1234u);
  EXPECT_EQ(M.reg(Reg::SP), 0x7000u);
}

TEST(Machine, EffectiveAddressForms) {
  Machine M;
  M.reg(Reg::R1) = 0x1000;
  M.reg(Reg::R2) = 4;
  MemOperand Mem;
  Mem.HasBase = true;
  Mem.Base = Reg::R1;
  Mem.HasIndex = true;
  Mem.Index = Reg::R2;
  Mem.ScaleLog2 = 3;
  Mem.Disp = -16;
  EXPECT_EQ(M.effectiveAddr(Mem, 0, 0), 0x1000u + 32 - 16);

  MemOperand Pc;
  Pc.PCRel = true;
  Pc.Disp = 0x40;
  EXPECT_EQ(M.effectiveAddr(Pc, 0x2000, 8), 0x2000u + 8 + 0x40);

  MemOperand Abs;
  Abs.Disp = 0x500;
  EXPECT_EQ(M.effectiveAddr(Abs, 0, 0), 0x500u);
}

TEST(Machine, CallPushesOriginalReturnAddress) {
  // Central DBI invariant: the pushed return address derives from the
  // instruction's *original* PC, not wherever the copy executes.
  Machine M;
  M.reg(Reg::SP) = 0x7000;
  Instruction Call;
  Call.Op = Opcode::CALL;
  Call.Imm = 0x100;
  Call.Size = 5;
  ExecResult R = M.execute(Call, 0x400010);
  EXPECT_EQ(R.K, ExecResult::Kind::Call);
  EXPECT_EQ(R.Target, 0x400010u + 5 + 0x100);
  EXPECT_EQ(M.Mem.read64(M.reg(Reg::SP)), 0x400010u + 5);
}

TEST(Machine, RetToSentinelExits) {
  Machine M;
  M.reg(Reg::SP) = 0x7000;
  M.push64(layout::ExitSentinel);
  Instruction Ret;
  Ret.Op = Opcode::RET;
  Ret.Size = 1;
  EXPECT_EQ(M.execute(Ret, 0).K, ExecResult::Kind::Exited);
}

TEST(Machine, CycleChargesAreDeterministic) {
  Machine M;
  uint64_t C0 = M.Cycles;
  M.execute(ri(Opcode::ADDI, Reg::R1, 1), 0);
  uint64_t AluCost = M.Cycles - C0;
  EXPECT_EQ(AluCost, cost::Base);

  Instruction Ld;
  Ld.Op = Opcode::LD8;
  Ld.Rd = Reg::R2;
  Ld.Mem.Disp = 0x100;
  Ld.Size = 8;
  C0 = M.Cycles;
  M.execute(Ld, 0);
  EXPECT_EQ(M.Cycles - C0, cost::Base + cost::MemAccess);

  C0 = M.Cycles;
  M.execute(rr(Opcode::MUL, Reg::R1, Reg::R2), 0);
  EXPECT_EQ(M.Cycles - C0, cost::Base + cost::MulDiv);
}

TEST(Machine, ShadowAddrMapping) {
  EXPECT_EQ(shadowAddr(0), layout::ShadowBase);
  EXPECT_EQ(shadowAddr(8), layout::ShadowBase + 1);
  EXPECT_EQ(shadowAddr(15), layout::ShadowBase + 1);
  EXPECT_EQ(shadowAddr(layout::HeapBase),
            layout::ShadowBase + (layout::HeapBase >> 3));
  // The shadow of the whole app space fits below ShadowEnd.
  EXPECT_LE(shadowAddr(layout::AppSpaceEnd - 1), layout::ShadowEnd);
}

} // namespace
