//===- tests/integration_test.cpp - Whole-stack tool matrix ---------------===//
///
/// Runs representative benchmarks under every tool configuration of the
/// evaluation and checks each one against the native checksum — the same
/// validation the benchmark harness applies, surfaced as tests.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "TestWorkloads.h"

#include <gtest/gtest.h>

using namespace janitizer;
using namespace janitizer::bench;
using testutil::prepared;

namespace {

struct ToolCase {
  const char *Bench;
  const char *Tool;
  ConfigResult (*Run)(const PreparedWorkload &);
  bool ExpectOk;
};

ConfigResult doNull(const PreparedWorkload &PW) { return runNullClient(PW); }
ConfigResult doJasanDyn(const PreparedWorkload &PW) {
  return runJasanDyn(PW);
}
ConfigResult doJasanHybrid(const PreparedWorkload &PW) {
  return runJasanHybrid(PW, true);
}
ConfigResult doJasanBase(const PreparedWorkload &PW) {
  return runJasanHybrid(PW, false);
}
ConfigResult doValgrind(const PreparedWorkload &PW) {
  return runValgrindCfg(PW);
}
ConfigResult doRetro(const PreparedWorkload &PW) {
  return runRetroWriteCfg(PW);
}
ConfigResult doJcfiDyn(const PreparedWorkload &PW) { return runJcfiDyn(PW); }
ConfigResult doJcfiHybrid(const PreparedWorkload &PW) {
  return runJcfiHybrid(PW);
}
ConfigResult doBinCfi(const PreparedWorkload &PW) { return runBinCfiCfg(PW); }
ConfigResult doLockdownS(const PreparedWorkload &PW) {
  return runLockdownCfg(PW, true);
}
ConfigResult doLockdownW(const PreparedWorkload &PW) {
  return runLockdownCfg(PW, false);
}

class ToolMatrix : public ::testing::TestWithParam<ToolCase> {};

TEST_P(ToolMatrix, ChecksumPreservedOrExpectedFailure) {
  const ToolCase &C = GetParam();
  ConfigResult R = C.Run(prepared(C.Bench));
  EXPECT_EQ(R.Ok, C.ExpectOk) << C.Bench << "/" << C.Tool << ": " << R.Note;
  if (R.Ok) {
    EXPECT_GE(R.Slowdown, 1.0) << "instrumentation cannot be free";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ToolMatrix,
    ::testing::Values(
        // bzip2: plain C — everything works.
        ToolCase{"bzip2", "null", doNull, true},
        ToolCase{"bzip2", "jasan_dyn", doJasanDyn, true},
        ToolCase{"bzip2", "jasan_hybrid", doJasanHybrid, true},
        ToolCase{"bzip2", "jasan_base", doJasanBase, true},
        ToolCase{"bzip2", "valgrind", doValgrind, true},
        ToolCase{"bzip2", "retrowrite", doRetro, true},
        ToolCase{"bzip2", "jcfi_dyn", doJcfiDyn, true},
        ToolCase{"bzip2", "jcfi_hybrid", doJcfiHybrid, true},
        ToolCase{"bzip2", "bincfi", doBinCfi, true},
        ToolCase{"bzip2", "lockdown_s", doLockdownS, true},
        ToolCase{"bzip2", "lockdown_w", doLockdownW, true},
        // h264ref: qsort callbacks — everything *runs*, Lockdown-S only
        // reports (perf unaffected).
        ToolCase{"h264ref", "jasan_hybrid", doJasanHybrid, true},
        ToolCase{"h264ref", "jcfi_hybrid", doJcfiHybrid, true},
        ToolCase{"h264ref", "lockdown_s", doLockdownS, true},
        // omnetpp: C++ with nonlocal unwinding — Lockdown dies, JCFI and
        // RetroWrite-refusal behave per the paper.
        ToolCase{"omnetpp", "jcfi_hybrid", doJcfiHybrid, true},
        ToolCase{"omnetpp", "lockdown_s", doLockdownS, false},
        ToolCase{"omnetpp", "retrowrite", doRetro, false},
        ToolCase{"omnetpp", "bincfi", doBinCfi, true},
        // gamess: Fortran with data islands — BinCFI breaks, Janitizer
        // fine.
        ToolCase{"gamess", "jasan_hybrid", doJasanHybrid, true},
        ToolCase{"gamess", "jcfi_hybrid", doJcfiHybrid, true},
        ToolCase{"gamess", "bincfi", doBinCfi, false},
        ToolCase{"gamess", "retrowrite", doRetro, false},
        // cactusADM: nearly everything dynamic (plugin + JIT).
        ToolCase{"cactusADM", "jasan_hybrid", doJasanHybrid, true},
        ToolCase{"cactusADM", "jcfi_hybrid", doJcfiHybrid, true},
        ToolCase{"cactusADM", "valgrind", doValgrind, true},
        // lbm: tiny kernel with a JIT stub.
        ToolCase{"lbm", "jasan_hybrid", doJasanHybrid, true},
        ToolCase{"lbm", "retrowrite", doRetro, true},
        ToolCase{"lbm", "bincfi", doBinCfi, true}),
    [](const ::testing::TestParamInfo<ToolCase> &Info) {
      return std::string(Info.param.Bench) + "_" + Info.param.Tool;
    });

TEST(Integration, HybridOrderingHolds) {
  // The headline ordering on a memory-heavy benchmark:
  //   native < null < JASan-hybrid <= JASan-base < JASan-dyn < Valgrind.
  const PreparedWorkload &PW = prepared("hmmer");
  ConfigResult Null = runNullClient(PW);
  ConfigResult Hybrid = runJasanHybrid(PW, true);
  ConfigResult Base = runJasanHybrid(PW, false);
  ConfigResult Dyn = runJasanDyn(PW);
  ConfigResult Val = runValgrindCfg(PW);
  ASSERT_TRUE(Null.Ok && Hybrid.Ok && Base.Ok && Dyn.Ok && Val.Ok);
  EXPECT_LT(Null.Slowdown, Hybrid.Slowdown);
  EXPECT_LE(Hybrid.Slowdown, Base.Slowdown);
  EXPECT_LT(Base.Slowdown, Dyn.Slowdown);
  EXPECT_LT(Dyn.Slowdown, Val.Slowdown);
}

TEST(Integration, JcfiOrderingHolds) {
  //   null < forward-only <= full JCFI-hybrid <= JCFI-dyn.
  const PreparedWorkload &PW = prepared("gobmk");
  ConfigResult Null = runNullClient(PW);
  ConfigResult Fwd = runJcfiHybrid(PW, true, false);
  ConfigResult Full = runJcfiHybrid(PW, true, true);
  ConfigResult Dyn = runJcfiDyn(PW);
  ASSERT_TRUE(Null.Ok && Fwd.Ok && Full.Ok && Dyn.Ok);
  EXPECT_LT(Null.Slowdown, Fwd.Slowdown);
  EXPECT_LE(Fwd.Slowdown, Full.Slowdown);
  EXPECT_LE(Full.Slowdown, Dyn.Slowdown);
}

} // namespace
