//===- tests/trace_test.cpp - Trace spans and metrics registry ------------===//
///
/// Unit tests for the observability subsystem (support/Trace.h,
/// support/Metrics.h, DESIGN.md §5d):
///  - disarmed span sites record nothing and never evaluate their
///    argument expressions;
///  - spans nest correctly on every thread of a ThreadPool fan-out;
///  - the exported Chrome trace_event JSON is well-formed and round-trips
///    escaped argument values;
///  - histogram log2 bucket boundaries are exact;
///  - the metrics registry iterates deterministically in name order;
///  - a coarse disarmed-overhead smoke bound (the precise contract is
///    certified by bench/microbench_trace).
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace janitizer;

namespace {

/// Every test starts and ends with the collector disarmed and empty, so
/// neither an inherited JZ_TRACE nor a sibling test leaks events in.
class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    TraceCollector::instance().stop();
    TraceCollector::instance().clear();
  }
  void TearDown() override {
    TraceCollector::instance().stop();
    TraceCollector::instance().clear();
  }
};

using MetricsTest = TraceTest;

//===--------------------------------------------------------------------===//
// Disarmed behaviour
//===--------------------------------------------------------------------===//

TEST_F(TraceTest, DisarmedSiteRecordsNothingAndSkipsArgEvaluation) {
  ASSERT_FALSE(TraceCollector::armed());
  int Evaluated = 0;
  auto Expensive = [&] {
    ++Evaluated;
    return std::string("value");
  };
  {
    JZ_TRACE_SPAN("test.disarmed", {{"k", Expensive()}});
    JZ_TRACE_INSTANT("test.disarmedInstant", {{"k", Expensive()}});
  }
  EXPECT_EQ(Evaluated, 0) << "disarmed sites must not evaluate arguments";
  EXPECT_EQ(TraceCollector::instance().eventCount(), 0u);

  TraceCollector::instance().start();
  {
    JZ_TRACE_SPAN("test.armed", {{"k", Expensive()}});
    JZ_TRACE_INSTANT("test.armedInstant", {{"k", Expensive()}});
  }
  TraceCollector::instance().stop();
  EXPECT_EQ(Evaluated, 2);
  EXPECT_EQ(TraceCollector::instance().eventCount(), 2u);
}

TEST_F(TraceTest, DisarmedOverheadSmoke) {
  // The precise ≤2% / one-branch contract is certified by
  // bench/microbench_trace; here we only pin "no events, no drops, not
  // absurdly slow" so a unit run catches a site that accidentally arms.
  constexpr uint64_t Iters = 1'000'000;
  auto T0 = std::chrono::steady_clock::now();
  for (uint64_t I = 0; I < Iters; ++I) {
    JZ_TRACE_SPAN("test.hot");
  }
  auto T1 = std::chrono::steady_clock::now();
  double NsPer =
      std::chrono::duration<double, std::nano>(T1 - T0).count() / Iters;
  EXPECT_EQ(TraceCollector::instance().eventCount(), 0u);
  EXPECT_EQ(TraceCollector::instance().droppedCount(), 0u);
  // One branch on a relaxed load: single-digit ns even under sanitizers;
  // 1 µs would mean the site is doing armed work.
  EXPECT_LT(NsPer, 1000.0);
}

//===--------------------------------------------------------------------===//
// Span nesting across pool threads
//===--------------------------------------------------------------------===//

TEST_F(TraceTest, SpansNestPerThreadAcrossPoolWorkers) {
  TraceCollector &C = TraceCollector::instance();
  C.start();

  constexpr unsigned Workers = 4;
  ThreadPool Pool(Workers);
  ASSERT_EQ(Pool.threadCount(), Workers);
  // One task per worker, rendezvous inside the task body: every task must
  // land on a distinct worker thread, so the snapshot provably contains
  // spans from Workers different tids.
  std::atomic<unsigned> Started{0};
  for (unsigned I = 0; I < Workers; ++I) {
    Pool.submit([&Started] {
      JZ_TRACE_SPAN("test.outer");
      Started.fetch_add(1);
      while (Started.load() < Workers)
        std::this_thread::yield();
      {
        JZ_TRACE_SPAN("test.inner", {{"phase", "nested"}});
      }
    });
  }
  Pool.wait();
  C.stop();

  std::vector<TraceEvent> Events = C.snapshot();
  std::map<uint32_t, std::vector<const TraceEvent *>> Outer;
  std::vector<const TraceEvent *> Inner;
  std::set<uint32_t> OuterTids;
  for (const TraceEvent &E : Events) {
    if (std::string(E.Name) == "test.outer") {
      Outer[E.Tid].push_back(&E);
      OuterTids.insert(E.Tid);
    } else if (std::string(E.Name) == "test.inner") {
      Inner.push_back(&E);
    }
  }
  EXPECT_EQ(OuterTids.size(), Workers)
      << "rendezvoused tasks must trace from distinct worker threads";
  ASSERT_EQ(Inner.size(), Workers);
  for (const TraceEvent *In : Inner) {
    ASSERT_EQ(Outer.count(In->Tid), 1u)
        << "inner span on a thread with no outer span";
    bool Enclosed = false;
    for (const TraceEvent *Out : Outer[In->Tid])
      Enclosed = Enclosed || (Out->StartNs <= In->StartNs &&
                              In->EndNs <= Out->EndNs);
    EXPECT_TRUE(Enclosed) << "inner span not enclosed by its outer span";
    ASSERT_EQ(In->Args.size(), 1u);
    EXPECT_STREQ(In->Args[0].Key, "phase");
    EXPECT_EQ(In->Args[0].Value, "nested");
  }
  // The pool's own instrumentation wraps each task in a pool.task span
  // that must enclose the task body's outer span.
  for (uint32_t Tid : OuterTids) {
    bool PoolEncloses = false;
    for (const TraceEvent &E : Events)
      if (std::string(E.Name) == "pool.task" && E.Tid == Tid)
        for (const TraceEvent *Out : Outer[Tid])
          PoolEncloses = PoolEncloses || (E.StartNs <= Out->StartNs &&
                                          Out->EndNs <= E.EndNs);
    EXPECT_TRUE(PoolEncloses) << "pool.task span missing on tid " << Tid;
  }
}

TEST_F(TraceTest, SnapshotIsDeterministicallySorted) {
  TraceCollector &C = TraceCollector::instance();
  C.start();
  {
    JZ_TRACE_SPAN("test.b");
  }
  {
    JZ_TRACE_SPAN("test.a");
  }
  JZ_TRACE_INSTANT("test.mark");
  C.stop();
  std::vector<TraceEvent> Events = C.snapshot();
  ASSERT_EQ(Events.size(), 3u);
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_LE(Events[I - 1].StartNs, Events[I].StartNs);
  // Instant events carry zero duration.
  for (const TraceEvent &E : Events) {
    if (std::string(E.Name) == "test.mark") {
      EXPECT_EQ(E.StartNs, E.EndNs);
    }
  }
}

//===--------------------------------------------------------------------===//
// JSON export
//===--------------------------------------------------------------------===//

TEST_F(TraceTest, ChromeJsonIsWellFormedAndRoundTripsEscapes) {
  TraceCollector &C = TraceCollector::instance();
  C.start();
  std::string Nasty = "quote\" slash\\ newline\n tab\t ctrl\x01 end";
  {
    JZ_TRACE_SPAN("static.testPhase", {{"module", Nasty}});
  }
  JZ_TRACE_INSTANT("jasan.testMark", {{"kind", "heap-redzone"}});
  C.stop();

  std::string S = C.toJson();
  ErrorOr<JsonValue> RootOr = parseJson(S);
  ASSERT_TRUE(bool(RootOr)) << "trace JSON failed to parse:\n" << S;
  JsonValue Root = RootOr.takeValue();
  ASSERT_TRUE(Root.isObject());
  const JsonValue *Events = Root.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->K, JsonValue::Kind::Array);
  ASSERT_EQ(Events->Items.size(), 2u);

  bool SawSpan = false, SawInstant = false;
  for (const JsonValue &E : Events->Items) {
    ASSERT_TRUE(E.isObject());
    // Mandatory Chrome trace_event fields.
    for (const char *Key : {"name", "cat", "ph", "ts", "pid", "tid"})
      EXPECT_NE(E.find(Key), nullptr) << "missing field " << Key;
    const JsonValue *Ph = E.find("ph");
    ASSERT_NE(Ph, nullptr);
    if (E.find("name")->Str == "static.testPhase") {
      SawSpan = true;
      EXPECT_EQ(Ph->Str, "X");
      EXPECT_NE(E.find("dur"), nullptr) << "complete events carry dur";
      EXPECT_EQ(E.find("cat")->Str, "static")
          << "category must be the layer prefix";
      const JsonValue *Args = E.find("args");
      ASSERT_NE(Args, nullptr);
      const JsonValue *Mod = Args->find("module");
      ASSERT_NE(Mod, nullptr);
      EXPECT_EQ(Mod->Str, Nasty) << "escaped arg value must round-trip";
    } else if (E.find("name")->Str == "jasan.testMark") {
      SawInstant = true;
      EXPECT_EQ(Ph->Str, "i");
      EXPECT_EQ(E.find("cat")->Str, "jasan");
    }
  }
  EXPECT_TRUE(SawSpan);
  EXPECT_TRUE(SawInstant);
}

TEST_F(MetricsTest, MetricsJsonIsWellFormed) {
  MetricsRegistry &R = MetricsRegistry::instance();
  R.counter("jz.test.json_counter").set(42);
  R.gauge("jz.test.json_gauge").set(-7);
  R.histogram("jz.test.json_hist").observe(5);
  std::string S = R.toJson();
  ErrorOr<JsonValue> RootOr = parseJson(S);
  ASSERT_TRUE(bool(RootOr)) << "metrics JSON failed to parse:\n" << S;
  JsonValue Root = RootOr.takeValue();
  ASSERT_TRUE(Root.isObject());
  const JsonValue *Ctr = Root.find("jz.test.json_counter");
  ASSERT_NE(Ctr, nullptr);
  EXPECT_EQ(Ctr->Num, 42.0);
  const JsonValue *G = Root.find("jz.test.json_gauge");
  ASSERT_NE(G, nullptr);
  EXPECT_EQ(G->Num, -7.0);
  const JsonValue *H = Root.find("jz.test.json_hist");
  ASSERT_NE(H, nullptr);
  ASSERT_TRUE(H->isObject());
  EXPECT_NE(H->find("count"), nullptr);
  EXPECT_NE(H->find("sum"), nullptr);
  EXPECT_NE(H->find("buckets"), nullptr);
}

TEST_F(MetricsTest, MetricsJsonEscapesHostileNames) {
  // Nothing restricts metric names to clean identifiers: a tool may label
  // a metric with a module path or other externally-derived string. The
  // JSON export must escape per RFC 8259 — quotes, backslashes and
  // control bytes in a name previously produced unparseable output.
  MetricsRegistry &R = MetricsRegistry::instance();
  std::string Hostile = "jz.test.\"evil\\path\"\nwith\tctrl\x01:end";
  R.counter(Hostile).set(9);
  std::string S = R.toJson();
  ErrorOr<JsonValue> RootOr = parseJson(S);
  ASSERT_TRUE(bool(RootOr))
      << "metrics JSON with hostile name failed to parse:\n" << S;
  const JsonValue *Ctr = RootOr->find(Hostile);
  ASSERT_NE(Ctr, nullptr) << "hostile name must round-trip exactly";
  EXPECT_EQ(Ctr->Num, 9.0);
}

//===--------------------------------------------------------------------===//
// support/Json parser
//===--------------------------------------------------------------------===//

TEST(JsonSupport, EscapeRoundTripsEveryByteClass) {
  std::string S;
  for (int C = 0; C < 256; ++C)
    S.push_back(static_cast<char>(C));
  std::string Doc;
  Doc += "[";
  appendJsonString(Doc, S);
  Doc += "]";
  ErrorOr<JsonValue> V = parseJson(Doc);
  ASSERT_TRUE(bool(V)) << V.message();
  ASSERT_EQ(V->Items.size(), 1u);
  EXPECT_EQ(V->Items[0].Str, S);
}

TEST(JsonSupport, ParserAcceptsTheBasics) {
  ErrorOr<JsonValue> V =
      parseJson("{\"a\": [1, -2.5, true, false, null, \"s\"], \"b\": {}}");
  ASSERT_TRUE(bool(V)) << V.message();
  const JsonValue *A = V->find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->Items.size(), 6u);
  EXPECT_EQ(A->Items[0].Num, 1.0);
  EXPECT_EQ(A->Items[1].Num, -2.5);
  EXPECT_TRUE(A->Items[2].B);
  EXPECT_FALSE(A->Items[3].B);
  EXPECT_EQ(A->Items[4].K, JsonValue::Kind::Null);
  EXPECT_EQ(A->Items[5].Str, "s");
  const JsonValue *B = V->find("b");
  ASSERT_NE(B, nullptr);
  EXPECT_TRUE(B->isObject());
  EXPECT_TRUE(B->Members.empty());
}

TEST(JsonSupport, ParserRejectsMalformedInput) {
  for (const char *Bad :
       {"", "{", "[1,", "{\"a\":}", "1 2", "\"unterminated",
        "\"bad \\q escape\"", "\"trunc \\u00\"", "\"raw \x01 ctrl\"",
        "{'single': 1}"})
    EXPECT_FALSE(bool(parseJson(Bad))) << "accepted malformed: " << Bad;
}

//===--------------------------------------------------------------------===//
// Histogram bucket algebra
//===--------------------------------------------------------------------===//

TEST(HistogramBuckets, Log2BoundariesAreExact) {
  // bucket 0: value == 0; bucket k>=1: [2^(k-1), 2^k).
  EXPECT_EQ(Histogram::bucketFor(0), 0u);
  EXPECT_EQ(Histogram::bucketFor(1), 1u);
  EXPECT_EQ(Histogram::bucketFor(2), 2u);
  EXPECT_EQ(Histogram::bucketFor(3), 2u);
  EXPECT_EQ(Histogram::bucketFor(4), 3u);
  EXPECT_EQ(Histogram::bucketFor(7), 3u);
  EXPECT_EQ(Histogram::bucketFor(8), 4u);
  EXPECT_EQ(Histogram::bucketFor(UINT64_MAX), 64u);
  // Every bucket's own bounds map back into it.
  for (size_t K = 1; K < Histogram::NumBuckets; ++K) {
    EXPECT_EQ(Histogram::bucketFor(Histogram::bucketLo(K)), K) << K;
    EXPECT_EQ(Histogram::bucketFor(Histogram::bucketHi(K)), K) << K;
  }
}

TEST(HistogramBuckets, ObserveCountsSumAndBuckets) {
  Histogram H;
  for (uint64_t V : {0ull, 1ull, 2ull, 3ull, 4ull, 1000ull})
    H.observe(V);
  EXPECT_EQ(H.count(), 6u);
  EXPECT_EQ(H.sum(), 1010u);
  EXPECT_EQ(H.bucketCount(0), 1u);  // {0}
  EXPECT_EQ(H.bucketCount(1), 1u);  // {1}
  EXPECT_EQ(H.bucketCount(2), 2u);  // {2, 3}
  EXPECT_EQ(H.bucketCount(3), 1u);  // {4}
  EXPECT_EQ(H.bucketCount(10), 1u); // {1000} in [512, 1024)
}

//===--------------------------------------------------------------------===//
// Registry determinism
//===--------------------------------------------------------------------===//

TEST_F(MetricsTest, RegistryIteratesInNameOrderRegardlessOfRegistration) {
  MetricsRegistry &R = MetricsRegistry::instance();
  // Deliberately scrambled registration order.
  R.counter("jz.test.z_last").set(3);
  R.gauge("jz.test.a_first").set(1);
  R.counter("jz.test.m_middle").set(2);

  std::vector<MetricsRegistry::Snapshot> Snap = R.snapshot();
  std::vector<std::string> Names;
  for (const MetricsRegistry::Snapshot &S : Snap)
    Names.push_back(S.Name);
  EXPECT_TRUE(std::is_sorted(Names.begin(), Names.end()))
      << "snapshot must be name-sorted";
  // Identical output across calls — nothing about iteration depends on
  // insertion order or hashing.
  EXPECT_EQ(R.toText(), R.toText());
  EXPECT_EQ(R.toJson(), R.toJson());
}

TEST_F(MetricsTest, SetSemanticsMakePublishingIdempotent) {
  MetricsRegistry &R = MetricsRegistry::instance();
  Counter &C = R.counter("jz.test.idempotent");
  // A published view mirrors an external tally with set(): publishing
  // twice (e.g. per-run publishMetrics called again) must not double.
  C.set(17);
  C.set(17);
  EXPECT_EQ(C.value(), 17u);
  // Live counters accumulate.
  C.inc(3);
  EXPECT_EQ(C.value(), 20u);
}

TEST_F(MetricsTest, ResetZeroesButKeepsEntries) {
  MetricsRegistry &R = MetricsRegistry::instance();
  R.counter("jz.test.reset_counter").inc(5);
  R.histogram("jz.test.reset_hist").observe(9);
  size_t Before = R.size();
  R.reset();
  EXPECT_EQ(R.size(), Before) << "reset must not unregister metrics";
  EXPECT_EQ(R.counter("jz.test.reset_counter").value(), 0u);
  EXPECT_EQ(R.histogram("jz.test.reset_hist").count(), 0u);
}

} // namespace
