//===- tests/aot_rewrite_test.cpp - AOT tier differential + fallback ------===//
///
/// The contract of the AOT static-rewriting tier (DESIGN.md §5j), as
/// differential tests against the hybrid DBI tier:
///
///  - a fully analyzed program runs natively with *zero* DBI dispatch
///    entries and byte-identical output and violation tuples;
///  - a module rewritten without rules (all tier-enter stubs) degrades to
///    the DBI tier and still reproduces the hybrid run exactly;
///  - register-computed targets that land in vacated original code hit the
///    no-exec carpet and re-enter the DBI tier instead of executing stale
///    bytes.
///
//===----------------------------------------------------------------------===//

#include "core/JanitizerDynamic.h"
#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"
#include "jasm/Assembler.h"
#include "rewrite/AotRewriter.h"
#include "rewrite/AotRunner.h"
#include "runtime/Jlibc.h"
#include "vm/Process.h"
#include "workloads/RewriterTorture.h"
#include "workloads/WorkloadGen.h"

#include <gtest/gtest.h>

using namespace janitizer;

namespace {

Module mustAssemble(const std::string &Src) {
  auto M = assembleModule(Src);
  if (!M) {
    ADD_FAILURE() << M.message();
    return Module();
  }
  return *M;
}

/// A program whose only indirect control flow goes through data-held
/// pointer slots (a rodata jump table and a data function-pointer table —
/// both remapped by the rewriter's pointer scan), plus a planted heap
/// overflow one word past a 24-byte allocation. Fully analyzable, so the
/// AOT rewrite must run it without a single DBI dispatch entry while
/// reporting the same violation the hybrid tier does.
const char *DiffProgram = R"(
  .module prog
  .entry main
  .needed libjz.so
  .extern malloc
  .extern free
  .extern print_u64
  .section rodata
  jt:
    .quad case0
    .quad case1
  .section data
  ftable:
    .quad op_a
    .quad op_b
  .section text
  .func op_a
  op_a:
    addi r0, 2
    ret
  .endfunc
  .func op_b
  op_b:
    muli r0, 3
    ret
  .endfunc
  .func dispatch
  dispatch:
    andi r0, 1
    la r1, jt
    jmpm [r1 + r0*8]
  case0:
    movi r0, 100
    jmp dend
  case1:
    movi r0, 200
  dend:
    ret
  .endfunc
  .func main
  main:
    movi r0, 24
    call malloc
    mov r9, r0
    movi r1, 41
    st8 [r9], r1
    movi r1, 7
    st8 [r9 + 24], r1    ; heap overflow: one word past the allocation
    ld8 r0, [r9]
    call print_u64
    la r5, ftable
    ld8 r6, [r5 + 8]
    movi r0, 4
    callr r6             ; op_b via data-held pointer: 12
    call print_u64
    movi r0, 1
    call dispatch        ; rodata jump table: 200
    call print_u64
    mov r0, r9
    call free
    movi r0, 0
    syscall 0
  .endfunc
)";

struct DiffFixture {
  ModuleStore Store;
  RuleStore Rules;
  JanitizerRun Hybrid;

  DiffFixture() {
    Store.add(cantFail(buildJlibc()));
    Store.add(mustAssemble(DiffProgram));
    StaticAnalyzer SA;
    JASanTool StaticTool;
    Error AE = SA.analyzeProgram(Store, "prog", StaticTool, Rules, {});
    EXPECT_FALSE(static_cast<bool>(AE)) << AE.message();
    JASanTool HybridTool;
    Hybrid = runUnderJanitizer(Store, "prog", HybridTool, Rules);
    EXPECT_EQ(Hybrid.Result.St, RunResult::Status::Exited)
        << Hybrid.Result.FaultMsg;
    EXPECT_GE(Hybrid.Violations.size(), 1u)
        << "the planted overflow must fire in the hybrid reference run";
  }
};

void expectSameViolations(const std::vector<Violation> &Hybrid,
                          const std::vector<Violation> &Aot) {
  ASSERT_EQ(Hybrid.size(), Aot.size());
  for (size_t I = 0; I < Hybrid.size(); ++I) {
    EXPECT_EQ(Hybrid[I].Code, Aot[I].Code) << "tuple " << I;
    EXPECT_EQ(Hybrid[I].PC, Aot[I].PC)
        << "tuple " << I << ": both tiers must report original addresses";
    EXPECT_EQ(Hybrid[I].Detail, Aot[I].Detail) << "tuple " << I;
    EXPECT_EQ(Hybrid[I].What, Aot[I].What) << "tuple " << I;
  }
}

TEST(AotRewrite, FullCoverageMatchesHybridWithZeroDispatch) {
  DiffFixture F;

  ModuleStore Rewritten;
  AotManifest Manifest;
  ASSERT_FALSE(static_cast<bool>(aotRewriteProgram(
      F.Store, "prog", F.Rules, "jasan", Rewritten, Manifest)));
  ASSERT_TRUE(Manifest.find("prog") != nullptr);
  EXPECT_TRUE(Manifest.find("prog")->HadRules);

  JASanTool Tool;
  AotRun A = runUnderJanitizerAot(Rewritten, "prog", Tool, F.Rules, Manifest);
  ASSERT_EQ(A.Result.St, RunResult::Status::Exited) << A.Result.FaultMsg;
  EXPECT_EQ(A.Output, F.Hybrid.Output);
  expectSameViolations(F.Hybrid.Violations, A.Violations);

  // The zero-dispatch gate: every block executed natively; the only
  // native-to-runtime transitions are allocator interpositions.
  EXPECT_EQ(A.Dbi.DispatchEntries, 0u);
  EXPECT_EQ(A.DbiLegs, 0u);
  EXPECT_EQ(A.VacatedEnters, 0u);
  EXPECT_GE(A.Intercepts, 2u) << "malloc + free interpose from native code";
}

TEST(AotRewrite, AllStubbedModuleFallsBackToDbiIdentically) {
  DiffFixture F;

  // Rewrite with an *empty* rule store: every block of every module gets a
  // tier-enter stub. Run under the full rules — the DBI fallback tier
  // attaches them to the retained original code, so the run must still be
  // indistinguishable from the hybrid reference.
  RuleStore Empty;
  ModuleStore Rewritten;
  AotManifest Manifest;
  ASSERT_FALSE(static_cast<bool>(aotRewriteProgram(
      F.Store, "prog", Empty, "jasan", Rewritten, Manifest)));
  ASSERT_TRUE(Manifest.find("prog") != nullptr);
  EXPECT_FALSE(Manifest.find("prog")->HadRules);
  EXPECT_EQ(Manifest.find("prog")->CoveredBlocks, 0u);

  JASanTool Tool;
  AotRun A = runUnderJanitizerAot(Rewritten, "prog", Tool, F.Rules, Manifest);
  ASSERT_EQ(A.Result.St, RunResult::Status::Exited) << A.Result.FaultMsg;
  EXPECT_EQ(A.Output, F.Hybrid.Output);
  expectSameViolations(F.Hybrid.Violations, A.Violations);
  EXPECT_GT(A.TierEnters, 0u) << "stubs must route execution to the DBI tier";
  EXPECT_GT(A.DbiLegs, 0u);
  EXPECT_GT(A.Dbi.DispatchEntries, 0u);
}

TEST(AotRewrite, ComputedGotoEntersDbiThroughVacatedExecCarpet) {
  // The computed-goto torture case materializes branch targets with
  // load-base arithmetic the pointer scan cannot see; the rewritten
  // program must reach them through the no-exec carpet (VacatedExec ->
  // DBI), never by executing the stale original bytes.
  auto WB = buildTortureWorkload(TortureKind::ComputedGoto);
  ASSERT_TRUE(static_cast<bool>(WB)) << WB.message();
  RunResult NR;
  std::string Ref = nativeReference(*WB, &NR);

  RuleStore Rules;
  StaticAnalyzer SA;
  JASanTool StaticTool;
  Error AE =
      SA.analyzeProgram(WB->Store, WB->ExeName, StaticTool, Rules, {});
  (void)AE; // partial coverage degrades, never refuses

  ModuleStore Rewritten;
  AotManifest Manifest;
  ASSERT_FALSE(static_cast<bool>(aotRewriteProgram(
      WB->Store, WB->ExeName, Rules, "jasan", Rewritten, Manifest)));

  JASanTool Tool;
  AotRun A =
      runUnderJanitizerAot(Rewritten, WB->ExeName, Tool, Rules, Manifest);
  ASSERT_EQ(A.Result.St, RunResult::Status::Exited) << A.Result.FaultMsg;
  EXPECT_EQ(A.Output, Ref) << "carpet fallback must preserve behaviour";
  EXPECT_GT(A.VacatedEnters, 0u)
      << "the computed targets must have entered via the carpet";
  EXPECT_TRUE(A.Violations.empty());
}

TEST(AotRewrite, NoExecCarpetTrapsTheNativeInterpreter) {
  // The Process-level primitive underneath the fallback: a PC inside a
  // no-exec range ends the native run as Trapped/VacatedExec at exactly
  // that PC, without executing the covered instruction.
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      movi r0, 5
      syscall 0
    .endfunc
  )"));

  Process Plain(Store);
  ASSERT_FALSE(static_cast<bool>(Plain.loadProgram("m")));
  RunResult Free = Plain.runNative(1'000'000);
  ASSERT_EQ(Free.St, RunResult::Status::Exited) << Free.FaultMsg;
  EXPECT_EQ(Free.ExitCode, 5);

  Process P(Store);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("m")));
  const LoadedModule *LM = P.moduleByName("m");
  ASSERT_NE(LM, nullptr);
  uint64_t RtEntry = LM->toRuntime(Store.find("m")->Entry);
  P.setNoExecRanges({{RtEntry, RtEntry + 4}});
  RunResult R = P.runNative(1'000'000);
  ASSERT_EQ(R.St, RunResult::Status::Trapped) << R.FaultMsg;
  EXPECT_EQ(static_cast<TrapCode>(R.TrapCode), TrapCode::VacatedExec);
  EXPECT_EQ(R.TrapPC, RtEntry);
}

} // namespace
