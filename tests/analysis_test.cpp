//===- tests/analysis_test.cpp - Static analysis tests --------------------===//

#include "analysis/Canary.h"
#include "analysis/CodeScan.h"
#include "analysis/DefUse.h"
#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"

#include <gtest/gtest.h>

using namespace janitizer;

namespace {

Module mustAssemble(const std::string &Src) {
  auto M = assembleModule(Src);
  if (!M) {
    ADD_FAILURE() << M.message();
    return Module();
  }
  return *M;
}

uint64_t symVA(const Module &M, const char *Name) {
  const Symbol *S = M.findSymbol(Name);
  EXPECT_NE(S, nullptr) << Name;
  return S ? S->Value : 0;
}

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

TEST(Liveness, DeadAfterLastUse) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      movi r1, 5
      mov r2, r1         ; last use of r1
    point:
      movi r3, 7
      mov r0, r2
      ret
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  LivenessInfo LV = computeLiveness(CFG);
  uint64_t Point = symVA(M, "point");
  LiveState S = LV.at(Point);
  EXPECT_FALSE(S.Regs & regBit(Reg::R1)) << "r1 should be dead after last use";
  EXPECT_TRUE(S.Regs & regBit(Reg::R2)) << "r2 is used later";
  EXPECT_FALSE(S.Regs & regBit(Reg::R3)) << "r3 is defined, not used";
  uint16_t Free = LV.freeRegsAt(Point);
  EXPECT_TRUE(Free & regBit(Reg::R1));
  EXPECT_FALSE(Free & regBit(Reg::SP)) << "SP is never scratch";
  EXPECT_FALSE(Free & regBit(Reg::TP)) << "TP is never scratch";
}

TEST(Liveness, FlagsLiveBetweenCmpAndJcc) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      cmpi r0, 3
    mid:
      mov r1, r2        ; flags live across this point
      je out
      movi r0, 1
    out:
      ret
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  LivenessInfo LV = computeLiveness(CFG);
  EXPECT_TRUE(LV.at(symVA(M, "mid")).Flags);
  EXPECT_FALSE(LV.at(M.Entry).Flags) << "cmpi redefines flags";
  EXPECT_FALSE(LV.at(symVA(M, "out")).Flags);
}

TEST(Liveness, ConservativeAtIndirectBranches) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      la r1, main
    point:
      jmpr r1
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  LivenessInfo LV = computeLiveness(CFG);
  LiveState S = LV.at(symVA(M, "point"));
  EXPECT_TRUE(S.Flags) << "flags assumed live at indirect CTIs (§3.3.2)";
  EXPECT_EQ(LV.freeRegsAt(symVA(M, "point")), 0u);
}

TEST(Liveness, CalleeSavedLiveAtReturn) {
  Module M = mustAssemble(R"(
    .module m
    .entry f
    .func f
    f:
      movi r9, 1         ; callee-saved: stays live to the return
      movi r5, 2         ; caller-saved: dead at return
    point:
      ret
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  LivenessInfo LV = computeLiveness(CFG);
  LiveState S = LV.at(symVA(M, "point"));
  EXPECT_TRUE(S.Regs & regBit(Reg::R9));
  EXPECT_FALSE(S.Regs & regBit(Reg::R5));
}

TEST(Liveness, IpaRaInterProceduralFix) {
  // leaf() does not touch r7. The caller keeps a value in caller-saved r7
  // across the call (gcc -O2 ipa-ra style). Intra-procedural liveness in
  // leaf believes r7 is free at 'inside'; the inter-procedural extension
  // must mark it live (§4.1.2).
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func leaf
    leaf:
      movi r0, 1
    inside:
      addi r0, 1
      ret
    .endfunc
    .func main
    main:
      movi r7, 42
      call leaf
      add r0, r7        ; r7 live across the call
      syscall 0
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  uint64_t Inside = symVA(M, "inside");

  LivenessInfo Naive = computeLiveness(CFG, {.InterProcedural = false});
  EXPECT_TRUE(Naive.freeRegsAt(Inside) & regBit(Reg::R7))
      << "intra-procedural analysis believes r7 is free (the unsound case)";

  LivenessInfo Fixed = computeLiveness(CFG, {.InterProcedural = true});
  EXPECT_FALSE(Fixed.freeRegsAt(Inside) & regBit(Reg::R7))
      << "inter-procedural extension must keep r7 live inside leaf";
}

TEST(Liveness, ConventionBreakerDetected) {
  Module M = cantFail(buildJfortran());
  ModuleCFG CFG = buildCFG(M);
  LivenessInfo LV = computeLiveness(CFG);
  const Symbol *S = M.findSymbol("fast_scale");
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(LV.ConventionBreakers.count(S->Value))
      << "fast_scale clobbers callee-saved r9 without saving";
  const Symbol *Q = M.findSymbol("stencil3");
  ASSERT_NE(Q, nullptr);
  EXPECT_FALSE(LV.ConventionBreakers.count(Q->Value));
}

TEST(Liveness, UnknownAddressIsConservative) {
  Module M = mustAssemble(".module m\n.entry main\n.func main\nmain:\n ret\n.endfunc\n");
  ModuleCFG CFG = buildCFG(M);
  LivenessInfo LV = computeLiveness(CFG);
  EXPECT_EQ(LV.freeRegsAt(0xDEAD), 0u);
  EXPECT_TRUE(LV.at(0xDEAD).Flags);
}

//===----------------------------------------------------------------------===//
// Loops / SCEV
//===----------------------------------------------------------------------===//

TEST(Loops, DetectsCanonicalLoop) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      la r2, buf
      movi r1, 0
    loop:
      st8 [r2 + r1*8], r1
      addi r1, 1
      cmpi r1, 100
      jl loop
      syscall 0
    .endfunc
    .section bss
    buf: .zero 800
  )");
  ModuleCFG CFG = buildCFG(M);
  LoopAnalysis LA = analyzeLoops(CFG);
  ASSERT_EQ(LA.Loops.size(), 1u);
  const NaturalLoop &L = LA.Loops[0];
  EXPECT_EQ(L.Header, symVA(M, "loop"));
  EXPECT_EQ(L.Header, L.Latch);
  EXPECT_NE(L.Preheader, 0u);
  EXPECT_FALSE(L.HasCalls);
  const InductionVar &IV = LA.Inductions[0];
  ASSERT_TRUE(IV.Valid);
  EXPECT_EQ(IV.IV, Reg::R1);
  EXPECT_EQ(IV.Init, 0);
  EXPECT_EQ(IV.Step, 1);
  EXPECT_EQ(IV.Bound, 100);
  // The store is iterator-strided: elidable with endpoints 0 and 99*8.
  ASSERT_EQ(LA.Elidable.size(), 1u);
  EXPECT_EQ(LA.Elidable[0].K, ElidableAccess::Kind::IteratorStrided);
  EXPECT_EQ(LA.Elidable[0].LastDisp, 99 * 8);
  EXPECT_EQ(LA.Elidable[0].AccessSize, 8u);
}

TEST(Loops, LoopInvariantAccessElidable) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      la r2, cell
      movi r1, 0
    loop:
      ld8 r3, [r2]       ; loop-invariant address
      add r3, r1
      st8 [r2], r3
      addi r1, 1
      cmpi r1, 50
      jl loop
      syscall 0
    .endfunc
    .section bss
    cell: .zero 8
  )");
  ModuleCFG CFG = buildCFG(M);
  LoopAnalysis LA = analyzeLoops(CFG);
  ASSERT_EQ(LA.Loops.size(), 1u);
  // Both the load and the store of [r2] are invariant.
  unsigned Invariant = 0;
  for (const ElidableAccess &EA : LA.Elidable)
    if (EA.K == ElidableAccess::Kind::LoopInvariant)
      ++Invariant;
  EXPECT_EQ(Invariant, 2u);
}

TEST(Loops, CallsInLoopBlockEliding) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func helper
    helper:
      ret
    .endfunc
    .func main
    main:
      la r9, buf
      movi r10, 0
    loop:
      st8 [r9 + r10*8], r10
      call helper           ; shadow state may change: no eliding
      addi r10, 1
      cmpi r10, 10
      jl loop
      syscall 0
    .endfunc
    .section bss
    buf: .zero 80
  )");
  ModuleCFG CFG = buildCFG(M);
  LoopAnalysis LA = analyzeLoops(CFG);
  ASSERT_GE(LA.Loops.size(), 1u);
  bool LoopWithCallsFound = false;
  for (const NaturalLoop &L : LA.Loops)
    if (L.HasCalls)
      LoopWithCallsFound = true;
  EXPECT_TRUE(LoopWithCallsFound);
  EXPECT_TRUE(LA.Elidable.empty());
}

TEST(Loops, NonUnitStrideNotElided) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      la r2, buf
      movi r1, 0
    loop:
      st8 [r2 + r1*8], r1
      addi r1, 2          ; stride 2: footprint has holes
      cmpi r1, 100
      jl loop
      syscall 0
    .endfunc
    .section bss
    buf: .zero 800
  )");
  ModuleCFG CFG = buildCFG(M);
  LoopAnalysis LA = analyzeLoops(CFG);
  ASSERT_EQ(LA.Loops.size(), 1u);
  EXPECT_TRUE(LA.Elidable.empty());
}

//===----------------------------------------------------------------------===//
// Canary analysis
//===----------------------------------------------------------------------===//

TEST(Canary, DetectsSpillAndCheck) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      subi sp, 32
      mov r1, tp
      st8 [sp + 24], r1
      movi r2, 5
      st8 [sp], r2
      ld8 r1, [sp + 24]
      cmp r1, tp
      jne fail
      addi sp, 32
      movi r0, 0
      syscall 0
    fail:
      trap 0
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  CanaryAnalysis CA = analyzeCanaries(CFG);
  ASSERT_EQ(CA.Sites.size(), 1u);
  const CanarySite &S = CA.Sites[0];
  EXPECT_EQ(S.FuncEntry, M.Entry);
  EXPECT_EQ(S.SlotOffset, 24);
  ASSERT_EQ(S.CheckLoads.size(), 1u);
  EXPECT_GT(S.CheckLoads[0], S.StoreInstr);
}

TEST(Canary, OffsetNormalizationAcrossPushes) {
  // Pushes between the spill and the reload change SP; the analysis must
  // still match the reload to the same frame slot.
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      subi sp, 16
      mov r1, tp
      st8 [sp + 8], r1
      push r9
      push r10
      ld8 r2, [sp + 24]   ; same slot: 8 + 16 bytes of pushes
      cmp r2, tp
      jne fail
      pop r10
      pop r9
      addi sp, 16
      movi r0, 0
      syscall 0
    fail:
      trap 0
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  CanaryAnalysis CA = analyzeCanaries(CFG);
  ASSERT_EQ(CA.Sites.size(), 1u);
  EXPECT_EQ(CA.Sites[0].CheckLoads.size(), 1u);
}

TEST(Canary, NoFalsePositiveOnOrdinarySpills) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      subi sp, 16
      movi r1, 7
      st8 [sp + 8], r1
      ld8 r0, [sp + 8]
      addi sp, 16
      syscall 0
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  CanaryAnalysis CA = analyzeCanaries(CFG);
  EXPECT_TRUE(CA.Sites.empty());
}

TEST(Canary, RuntimeLibraryProtectedFunctions) {
  Module M = cantFail(buildJlibc());
  ModuleCFG CFG = buildCFG(M);
  CanaryAnalysis CA = analyzeCanaries(CFG);
  // qsort and print_u64 are canary protected.
  std::set<uint64_t> Protected;
  for (const CanarySite &S : CA.Sites)
    Protected.insert(S.FuncEntry);
  EXPECT_TRUE(Protected.count(symVA(M, "qsort")));
  EXPECT_TRUE(Protected.count(symVA(M, "print_u64")));
  EXPECT_FALSE(Protected.count(symVA(M, "memcpy")));
}

TEST(Canary, FrameSizes) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      subi sp, 48
      push r9
      movi r0, 0
      pop r9
      addi sp, 48
      syscall 0
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  CanaryAnalysis CA = analyzeCanaries(CFG);
  ASSERT_TRUE(CA.Stack.FrameSize.count(M.Entry));
  EXPECT_EQ(CA.Stack.FrameSize[M.Entry], 56);
}

//===----------------------------------------------------------------------===//
// Code-pointer scanning
//===----------------------------------------------------------------------===//

TEST(CodeScan, FindsTableEntriesNonPic) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .section rodata
    table:
      .quad fa
      .quad fb
    .section text
    .func fa
    fa:
      ret
    .endfunc
    .func fb
    fb:
      ret
    .endfunc
    .func main
    main:
      la r1, table
      callm [r1]
      syscall 0
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  std::set<uint64_t> Taken = addressTakenFunctions(M, CFG);
  EXPECT_TRUE(Taken.count(symVA(M, "fa")));
  EXPECT_TRUE(Taken.count(symVA(M, "fb")));
  EXPECT_FALSE(Taken.count(symVA(M, "main")))
      << "main's address is taken nowhere";
}

TEST(CodeScan, FindsImmediateMaterializedPointers) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func cb
    cb:
      ret
    .endfunc
    .func main
    main:
      movq r3, =cb      ; address exists only as a code immediate
      callr r3
      syscall 0
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  std::set<uint64_t> Taken = addressTakenFunctions(M, CFG);
  EXPECT_TRUE(Taken.count(symVA(M, "cb")));
  // The Lockdown-style data-section-only heuristic misses it.
  std::set<uint64_t> DataOnly = scanDataSectionsForCodePointers(M);
  EXPECT_FALSE(DataOnly.count(symVA(M, "cb")))
      << "data-only heuristic should miss code immediates (§6.2.2)";
}

TEST(CodeScan, PicLeaTargetsFound) {
  Module M = mustAssemble(R"(
    .module m.so
    .pic
    .shared
    .global run
    .func cb
    cb:
      ret
    .endfunc
    .func run
    run:
      la r3, cb          ; pc-relative LEA in PIC code: no literal bytes
      callr r3
      ret
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  std::set<uint64_t> Taken = addressTakenFunctions(M, CFG);
  EXPECT_TRUE(Taken.count(symVA(M, "cb")))
      << "cross-block analysis must find pc-relative address-taking";
  std::set<uint64_t> DataOnly = scanDataSectionsForCodePointers(M);
  EXPECT_FALSE(DataOnly.count(symVA(M, "cb")));
}

//===----------------------------------------------------------------------===//
// Def-use chains
//===----------------------------------------------------------------------===//

TEST(DefUse, BlockLocalChain) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      movi r1, 5
      mov r2, r1
    use:
      add r2, r1
      ret
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  const CfgFunction *F = CFG.functionAt(M.Entry);
  ASSERT_NE(F, nullptr);
  DefUseChains DU = computeDefUse(CFG, *F);
  uint64_t Use = symVA(M, "use");
  auto &DefsR1 = DU.reachingDefs(Use, Reg::R1);
  ASSERT_EQ(DefsR1.size(), 1u);
  EXPECT_EQ(DefsR1[0], M.Entry);
}

TEST(DefUse, MergesOverDiamond) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      cmpi r0, 0
      je b
    a:
      movi r1, 1
      jmp join
    b:
      movi r1, 2
    join:
      mov r2, r1
      ret
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  const CfgFunction *F = CFG.functionAt(M.Entry);
  ASSERT_NE(F, nullptr);
  DefUseChains DU = computeDefUse(CFG, *F);
  auto &Defs = DU.reachingDefs(symVA(M, "join"), Reg::R1);
  EXPECT_EQ(Defs.size(), 2u) << "both arms' definitions reach the join";
}

TEST(DefUse, TraceValueSourcesTransitive) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      movi r1, 5
      mov r2, r1
      mov r3, r2
    use:
      mov r0, r3
      ret
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  const CfgFunction *F = CFG.functionAt(M.Entry);
  ASSERT_NE(F, nullptr);
  DefUseChains DU = computeDefUse(CFG, *F);
  std::vector<uint64_t> Sources =
      traceValueSources(CFG, DU, symVA(M, "use"), Reg::R3);
  // Should include all three defining moves transitively.
  EXPECT_EQ(Sources.size(), 3u);
}

} // namespace
