//===- tests/static_analyzer_test.cpp - Analysis pipeline tests -----------===//
///
/// Covers the parallel/cached analyzeProgram pipeline: no-op rule
/// deduplication, dependency traversal through skipped modules,
/// thread-count determinism, warm-cache behaviour and cache-corruption
/// recovery.
///
//===----------------------------------------------------------------------===//

#include "core/StaticAnalyzer.h"
#include "jasan/JASan.h"
#include "jasm/Assembler.h"
#include "jcfi/JCFI.h"
#include "runtime/Jlibc.h"
#include "workloads/WorkloadGen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>

using namespace janitizer;

namespace {

Module mustAssemble(const std::string &Src) {
  auto M = assembleModule(Src);
  if (!M) {
    ADD_FAILURE() << M.message();
    return Module();
  }
  return *M;
}

/// A fresh, empty per-test cache directory under gtest's temp root.
std::string freshCacheDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "jz-rulecache-" + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

/// Serialized rule file per module name, for byte-level comparisons.
std::map<std::string, std::vector<uint8_t>>
ruleBytes(const ModuleStore &Store, const RuleStore &Rules,
          const std::string &Tool) {
  std::map<std::string, std::vector<uint8_t>> Out;
  for (const Module *M : Store.all())
    if (const RuleFile *RF = Rules.find(M->Name, Tool))
      Out[M->Name] = RF->serialize();
  return Out;
}

//===--------------------------------------------------------------------===//
// No-op rule deduplication
//===--------------------------------------------------------------------===//

TEST(StaticAnalyzer, NoBlockCarriesBothRealAndNoOpRule) {
  // Memory accesses make JASan emit real rules for some blocks; the other
  // blocks get the "statically inspected" no-op marker. No block may have
  // both — the real rules' BBAddr entries already mark the block as seen.
  Module Prog = mustAssemble(R"(
    .module prog
    .entry main
    .section data
    v: .word8 9
    .section text
    .func main
    main:
      la r6, v
      ld8 r7, [r6]      ; real AsanCheck rule in this block
      cmpi r7, 9
      jne out
      addi r7, 1
    out:
      movi r0, 0
      syscall 0
    .endfunc
  )");
  StaticAnalyzer SA;
  JASanTool Tool;
  RuleFile RF = cantFail(SA.analyzeModule(Prog, Tool));

  std::set<uint64_t> RealBlocks, NoOpBlocks;
  for (const RewriteRule &R : RF.Rules)
    (R.Id == RuleId::NoOp ? NoOpBlocks : RealBlocks).insert(R.BBAddr);
  ASSERT_FALSE(RealBlocks.empty()) << "expected real rules from the load";
  ASSERT_FALSE(NoOpBlocks.empty()) << "expected no-op-marked blocks";
  for (uint64_t A : NoOpBlocks)
    EXPECT_FALSE(RealBlocks.count(A))
        << "block " << std::hex << A << " has both a real rule and a no-op";
  EXPECT_EQ(SA.stats().NoOpRules, NoOpBlocks.size());
}

//===--------------------------------------------------------------------===//
// Skipped-module dependency traversal
//===--------------------------------------------------------------------===//

TEST(StaticAnalyzer, DepsOfSkippedModulesAreStillAnalyzed) {
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module libb.so
    .pic
    .shared
    .global bwork
    .func bwork
    bwork:
      movi r0, 5
      ret
    .endfunc
  )"));
  Store.add(mustAssemble(R"(
    .module liba.so
    .pic
    .shared
    .needed libb.so
    .extern bwork
    .global awork
    .func awork
    awork:
      call bwork
      ret
    .endfunc
  )"));
  Store.add(mustAssemble(R"(
    .module prog
    .entry main
    .needed liba.so
    .extern awork
    .func main
    main:
      call awork
      syscall 0
    .endfunc
  )"));

  StaticAnalyzer SA;
  JASanTool Tool;
  RuleStore Rules;
  Error E = SA.analyzeProgram(Store, "prog", Tool, Rules, {"liba.so"});
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();

  // liba.so is skipped (dlopen-only model) but its dependency libb.so is
  // an ordinary shared object and must have a rule file.
  EXPECT_NE(Rules.find("prog", "jasan"), nullptr);
  EXPECT_EQ(Rules.find("liba.so", "jasan"), nullptr);
  EXPECT_NE(Rules.find("libb.so", "jasan"), nullptr)
      << "dependency reachable only through a skipped module was lost";
  EXPECT_EQ(SA.stats().ModulesSkipped, 1u);
  EXPECT_EQ(SA.stats().ModulesAnalyzed, 2u);
}

TEST(StaticAnalyzer, SkippedNameAbsentFromStoreIsNotAnError) {
  // SkipModules models dlopen-only names that the static view of the
  // filesystem may not even contain.
  ModuleStore Store;
  Store.add(mustAssemble(R"(
    .module prog
    .entry main
    .func main
    main:
      syscall 0
    .endfunc
  )"));
  StaticAnalyzer SA;
  JASanTool Tool;
  RuleStore Rules;
  Error E = SA.analyzeProgram(Store, "prog", Tool, Rules, {"ghost.so"});
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  // An unskipped missing module is still an error.
  RuleStore Rules2;
  StaticAnalyzer SA2;
  Module Broken = mustAssemble(R"(
    .module broken
    .entry main
    .needed missing.so
    .func main
    main:
      syscall 0
    .endfunc
  )");
  Store.add(Broken);
  Error E2 = SA2.analyzeProgram(Store, "broken", Tool, Rules2);
  EXPECT_TRUE(static_cast<bool>(E2));
}

//===--------------------------------------------------------------------===//
// Thread-count determinism
//===--------------------------------------------------------------------===//

class ThreadDeterminism : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadDeterminism, RuleFilesAreByteIdentical) {
  // A real multi-module closure: workload executable + libjz.so (+
  // libjfortran/plugins depending on profile).
  WorkloadOptions Opts;
  Opts.WorkScale = 1;
  WorkloadBuild W = cantFail(buildWorkload(*findProfile("gcc"), Opts));

  auto AnalyzeWith = [&](unsigned Jobs) {
    StaticAnalyzerOptions AO;
    AO.Jobs = Jobs;
    StaticAnalyzer SA(AO);
    JASanTool Tool;
    RuleStore Rules;
    Error E = SA.analyzeProgram(W.Store, W.ExeName, Tool, Rules, W.DlopenOnly);
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
    return ruleBytes(W.Store, Rules, "jasan");
  };

  auto Ref = AnalyzeWith(1);
  ASSERT_GE(Ref.size(), 2u) << "closure should span several modules";
  auto Got = AnalyzeWith(GetParam());
  ASSERT_EQ(Got.size(), Ref.size());
  for (const auto &[Name, Bytes] : Ref)
    EXPECT_EQ(Got[Name], Bytes) << Name << " differs at " << GetParam()
                                << " threads";
}

INSTANTIATE_TEST_SUITE_P(Jobs, ThreadDeterminism,
                         ::testing::Values(1u, 2u, 8u));

//===--------------------------------------------------------------------===//
// Persistent rule cache
//===--------------------------------------------------------------------===//

TEST(RuleCacheTest, WarmRunAnalyzesNothingAndMatchesByteForByte) {
  WorkloadOptions WOpts;
  WOpts.WorkScale = 1;
  WorkloadBuild W = cantFail(buildWorkload(*findProfile("perlbench"), WOpts));

  // Uncached reference.
  StaticAnalyzer RefSA;
  JASanTool Tool;
  RuleStore RefRules;
  ASSERT_FALSE(static_cast<bool>(
      RefSA.analyzeProgram(W.Store, W.ExeName, Tool, RefRules, W.DlopenOnly)));
  auto Ref = ruleBytes(W.Store, RefRules, "jasan");

  StaticAnalyzerOptions AO;
  AO.Jobs = 2;
  AO.CacheDir = freshCacheDir("warm");

  // Cold: everything misses, gets analyzed and persisted.
  StaticAnalyzer Cold(AO);
  RuleStore ColdRules;
  ASSERT_FALSE(static_cast<bool>(
      Cold.analyzeProgram(W.Store, W.ExeName, Tool, ColdRules, W.DlopenOnly)));
  EXPECT_EQ(Cold.stats().CacheHits, 0u);
  EXPECT_EQ(Cold.stats().CacheMisses, Cold.stats().ModulesAnalyzed);
  EXPECT_GT(Cold.stats().ModulesAnalyzed, 0u);
  EXPECT_EQ(ruleBytes(W.Store, ColdRules, "jasan"), Ref);

  // Warm: zero analyzeModule calls, byte-identical rule files.
  StaticAnalyzer Warm(AO);
  RuleStore WarmRules;
  ASSERT_FALSE(static_cast<bool>(
      Warm.analyzeProgram(W.Store, W.ExeName, Tool, WarmRules, W.DlopenOnly)));
  EXPECT_EQ(Warm.stats().ModulesAnalyzed, 0u);
  EXPECT_EQ(Warm.stats().CacheMisses, 0u);
  EXPECT_EQ(Warm.stats().CacheHits, Cold.stats().ModulesAnalyzed);
  EXPECT_EQ(ruleBytes(W.Store, WarmRules, "jasan"), Ref);

  std::filesystem::remove_all(AO.CacheDir);
}

TEST(RuleCacheTest, CorruptEntriesAreEvictedAndReanalyzed) {
  WorkloadOptions WOpts;
  WOpts.WorkScale = 1;
  WorkloadBuild W = cantFail(buildWorkload(*findProfile("perlbench"), WOpts));

  StaticAnalyzerOptions AO;
  AO.CacheDir = freshCacheDir("corrupt");
  JASanTool Tool;

  StaticAnalyzer Cold(AO);
  RuleStore ColdRules;
  ASSERT_FALSE(static_cast<bool>(
      Cold.analyzeProgram(W.Store, W.ExeName, Tool, ColdRules, W.DlopenOnly)));
  auto Ref = ruleBytes(W.Store, ColdRules, "jasan");

  // Corrupt every entry a different way: truncate the first, bit-flip the
  // last byte (payload) of the second, wreck the magic of the rest.
  std::vector<std::filesystem::path> Entries;
  for (const auto &DE : std::filesystem::directory_iterator(AO.CacheDir))
    if (DE.path().extension() == ".jrc")
      Entries.push_back(DE.path());
  std::sort(Entries.begin(), Entries.end());
  ASSERT_GE(Entries.size(), 2u);
  for (size_t I = 0; I < Entries.size(); ++I) {
    std::fstream F(Entries[I],
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(F.is_open());
    if (I == 0) {
      F.close();
      std::filesystem::resize_file(Entries[I],
                                   std::filesystem::file_size(Entries[I]) / 2);
    } else if (I == 1) {
      F.seekg(0, std::ios::end);
      auto Size = F.tellg();
      F.seekg(static_cast<std::streamoff>(Size) - 1);
      char C = 0;
      F.get(C);
      F.seekp(static_cast<std::streamoff>(Size) - 1);
      F.put(static_cast<char>(C ^ 0x40));
    } else {
      F.seekp(0);
      F.put('X');
    }
  }

  // Every corrupt entry is discarded (evicted) and re-analyzed; the
  // result is still byte-identical to the reference — bad cache bytes
  // never reach a rule table.
  StaticAnalyzer Again(AO);
  RuleStore AgainRules;
  ASSERT_FALSE(static_cast<bool>(Again.analyzeProgram(
      W.Store, W.ExeName, Tool, AgainRules, W.DlopenOnly)));
  EXPECT_EQ(Again.stats().CacheEvictions, Entries.size());
  EXPECT_EQ(Again.stats().CacheHits, 0u);
  EXPECT_EQ(Again.stats().ModulesAnalyzed, Entries.size());
  EXPECT_EQ(ruleBytes(W.Store, AgainRules, "jasan"), Ref);

  // The rewritten entries serve the next run.
  StaticAnalyzer Healed(AO);
  RuleStore HealedRules;
  ASSERT_FALSE(static_cast<bool>(Healed.analyzeProgram(
      W.Store, W.ExeName, Tool, HealedRules, W.DlopenOnly)));
  EXPECT_EQ(Healed.stats().ModulesAnalyzed, 0u);
  EXPECT_EQ(ruleBytes(W.Store, HealedRules, "jasan"), Ref);

  std::filesystem::remove_all(AO.CacheDir);
}

TEST(RuleCacheTest, ImpureStaticPassBypassesCache) {
  // JCFI with a static-output database has side effects a cached rule
  // file cannot replay: both runs must analyze, and both must fill the
  // database.
  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  Store.add(mustAssemble(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .func helper
    helper:
      ret
    .endfunc
    .func main
    main:
      la r6, helper
      callr r6
      syscall 0
    .endfunc
  )"));

  StaticAnalyzerOptions AO;
  AO.CacheDir = freshCacheDir("impure");

  for (int Round = 0; Round < 2; ++Round) {
    JcfiDatabase Db;
    JCFITool Tool(Db);
    Tool.setStaticOutput(&Db);
    StaticAnalyzer SA(AO);
    RuleStore Rules;
    ASSERT_FALSE(static_cast<bool>(
        SA.analyzeProgram(Store, "prog", Tool, Rules)));
    EXPECT_GT(SA.stats().ModulesAnalyzed, 0u) << "round " << Round;
    EXPECT_EQ(SA.stats().CacheHits, 0u) << "round " << Round;
    EXPECT_NE(Db.find("prog"), nullptr)
        << "static target info missing in round " << Round;
  }
  std::filesystem::remove_all(AO.CacheDir);
}

//===--------------------------------------------------------------------===//
// Preliminary-CFG reuse
//===--------------------------------------------------------------------===//

TEST(StaticAnalyzer, PrelimCfgReusedWhenScanFindsNoRoots) {
  // Straight-line code with no address-taken functions or jump tables:
  // the code-pointer scan yields no extra roots and the preliminary CFG
  // serves as the final one.
  Module Prog = mustAssemble(R"(
    .module prog
    .entry main
    .func main
    main:
      movi r0, 3
      addi r0, 4
      syscall 0
    .endfunc
  )");
  StaticAnalyzer SA;
  JASanTool Tool;
  (void)SA.analyzeModule(Prog, Tool);
  EXPECT_EQ(SA.stats().PrelimCfgReused, 1u);
}

} // namespace
