//===- tests/runtime_test.cpp - Guest runtime library behaviour -----------===//

#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"
#include "vm/Process.h"

#include <gtest/gtest.h>

using namespace janitizer;

namespace {

Module mustAssemble(const std::string &Src) {
  auto M = assembleModule(Src);
  if (!M) {
    ADD_FAILURE() << M.message();
    return Module();
  }
  return *M;
}

RunResult runProgram(const std::string &ExeSrc, std::string *Out = nullptr,
                     bool WithFortran = false) {
  ModuleStore Store;
  Store.add(cantFail(buildJlibc()));
  if (WithFortran)
    Store.add(cantFail(buildJfortran()));
  Store.add(mustAssemble(ExeSrc));
  Process P(Store);
  Error E = P.loadProgram("prog");
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  RunResult R = P.runNative(200'000'000);
  if (Out)
    *Out = P.output();
  return R;
}

TEST(Jlibc, BuildsAndExports) {
  Module M = cantFail(buildJlibc());
  EXPECT_TRUE(M.IsPIC);
  EXPECT_TRUE(M.IsSharedObject);
  for (const char *Sym : {"malloc", "free", "memset", "memcpy", "memmove",
                          "strlen", "qsort", "print_u64", "print_str", "exit",
                          "__stack_chk_fail", "calloc", "realloc",
                          "thread_create", "thread_join", "thread_exit",
                          "mutex_init", "mutex_lock", "mutex_unlock"}) {
    const Symbol *S = M.findExported(Sym);
    EXPECT_NE(S, nullptr) << Sym;
    if (S) {
      EXPECT_TRUE(S->IsFunction) << Sym;
    }
  }
  // Has an init section for the loader startup path.
  ASSERT_NE(M.section(SectionKind::Init), nullptr);
}

TEST(Jlibc, MallocFreeReuse) {
  RunResult R = runProgram(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern free
    .func main
    main:
      movi r0, 64
      call malloc
      mov r9, r0          ; first allocation
      call free           ; free(r0 = first)
      ; Wait: free takes the pointer in r0; malloc returned it there.
      movi r0, 64
      call malloc         ; should reuse the freed chunk (first fit)
      cmp r0, r9
      jne different
      movi r0, 1
      syscall 0
    different:
      movi r0, 2
      syscall 0
    .endfunc
  )");
  EXPECT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 1) << "freed chunk was not reused";
}

TEST(Jlibc, ReallocSemantics) {
  // The C contract end-to-end: realloc(NULL, n) mallocs, growth and
  // shrink preserve min(old, new) bytes, realloc(p, 0) frees and
  // returns NULL.
  RunResult R = runProgram(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern realloc
    .func main
    main:
      movi r0, 0
      movi r1, 24
      call realloc        ; realloc(NULL, 24) == malloc(24)
      cmpi r0, 0
      je fail
      mov r9, r0
      movi r5, 77
      st8 [r9], r5
      movi r6, 13
      st8 [r9 + 16], r6
      mov r0, r9
      movi r1, 200
      call realloc        ; grow: contents must be preserved
      mov r10, r0
      ld8 r5, [r10]
      cmpi r5, 77
      jne fail
      ld8 r6, [r10 + 16]
      cmpi r6, 13
      jne fail
      mov r0, r10
      movi r1, 8
      call realloc        ; shrink: leading bytes preserved
      mov r11, r0
      ld8 r5, [r11]
      cmpi r5, 77
      jne fail
      mov r0, r11
      movi r1, 0
      call realloc        ; realloc(p, 0) frees, returns NULL
      cmpi r0, 0
      jne fail
      movi r0, 42
      syscall 0
    fail:
      movi r0, 1
      syscall 0
    .endfunc
  )");
  EXPECT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(Jlibc, MemsetMemcpyStrlen) {
  std::string Out;
  RunResult R = runProgram(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern memset
    .extern memcpy
    .extern strlen
    .extern print_str
    .section rodata
    msg: .string "hello"
    .func main
    main:
      movi r0, 32
      call malloc
      mov r9, r0
      la r1, msg
      movi r2, 6
      mov r0, r9
      call memcpy
      mov r0, r9
      call print_str
      mov r0, r9
      call strlen          ; 5
      syscall 0
    .endfunc
  )", &Out);
  EXPECT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 5);
  EXPECT_EQ(Out, "hello");
}

TEST(Jlibc, MemmoveOverlapBothDirections) {
  // realloc migrates data with memmove because first-fit reuse can hand
  // back overlapping memory; this is the regression test that the copy
  // really is overlap-safe in both directions. A forward byte loop
  // (memcpy's) would turn the dst-above-src move into 1 2 3 4 1 2 3 4...
  RunResult R = runProgram(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern memmove
    .func main
    main:
      push r9
      movi r0, 64
      call malloc
      mov r9, r0
      movi r5, 0          ; p[i] = i + 1 for i in [0, 10)
    init:
      cmpi r5, 10
      je init_done
      mov r6, r5
      addi r6, 1
      st1 [r9 + r5], r6
      addi r5, 1
      jmp init
    init_done:
      mov r0, r9          ; memmove(p + 4, p, 10): dst overlaps src above
      addi r0, 4
      mov r1, r9
      movi r2, 10
      call memmove
      ld1 r5, [r9 + 4]    ; first moved byte
      cmpi r5, 1
      jne fail
      ld1 r5, [r9 + 8]    ; inside the overlap: clobbered by a fwd copy
      cmpi r5, 5
      jne fail
      ld1 r5, [r9 + 13]   ; last moved byte
      cmpi r5, 10
      jne fail
      ld1 r5, [r9]        ; prefix untouched
      cmpi r5, 1
      jne fail
      mov r0, r9          ; memmove(p, p + 4, 10): dst overlaps src below
      mov r1, r9
      addi r1, 4
      movi r2, 10
      call memmove
      ld1 r5, [r9]
      cmpi r5, 1
      jne fail
      ld1 r5, [r9 + 4]
      cmpi r5, 5
      jne fail
      ld1 r5, [r9 + 9]
      cmpi r5, 10
      jne fail
      pop r9
      movi r0, 42
      syscall 0
    fail:
      pop r9
      movi r0, 1
      syscall 0
    .endfunc
  )");
  EXPECT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(Jlibc, PrintU64) {
  std::string Out;
  RunResult R = runProgram(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern print_u64
    .func main
    main:
      movi r0, 987654
      call print_u64
      movi r0, 0
      call print_u64
      movi r0, 0
      syscall 0
    .endfunc
  )", &Out);
  EXPECT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(Out, "9876540");
}

TEST(Jlibc, QsortWithAppCallback) {
  // The comparison callback lives in the (non-PIC) application and is
  // passed by address to libjz's qsort — the cross-module callback pattern.
  std::string Out;
  RunResult R = runProgram(R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern qsort
    .extern print_u64
    .section data
    arr:
      .word8 5
      .word8 1
      .word8 4
      .word8 2
      .word8 3
    .func cmp_asc
    cmp_asc:
      sub r0, r1
      ret
    .endfunc
    .func main
    main:
      la r0, arr
      movi r1, 5
      movi r2, 8
      la r3, cmp_asc
      call qsort
      movi r9, 0
    ploop:
      la r5, arr
      ld8 r0, [r5 + r9*8]
      call print_u64
      addi r9, 1
      cmpi r9, 5
      jl ploop
      movi r0, 0
      syscall 0
    .endfunc
  )", &Out);
  EXPECT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(Out, "12345");
}

TEST(Jfortran, VsumScaledConventionBreaking) {
  RunResult R = runProgram(R"(
    .module prog
    .entry main
    .needed libjz.so
    .needed libjfortran.so
    .extern vsum_scaled
    .section data
    v:
      .word8 1
      .word8 2
      .word8 3
    .func main
    main:
      la r0, v
      movi r1, 3
      call vsum_scaled   ; 4*(1+2+3) = 24
      syscall 0
    .endfunc
  )", nullptr, /*WithFortran=*/true);
  EXPECT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 24);
}

TEST(Jfortran, MidFunctionCallTarget) {
  RunResult R = runProgram(R"(
    .module prog
    .entry main
    .needed libjz.so
    .needed libjfortran.so
    .extern kernel_entry
    .section data
    v:
      .word8 10
      .word8 20
      .word8 12
    .func main
    main:
      la r0, v
      movi r1, 3
      call kernel_entry  ; sums via a call into the middle of kernel_core
      syscall 0
    .endfunc
  )", nullptr, /*WithFortran=*/true);
  EXPECT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(Jfortran, NoDataIslandsInSharedLibrary) {
  // In-code constant pools live in the gamess/zeusmp executables (the
  // BinCFI failure cases), not the shared runtime libraries.
  Module M = cantFail(buildJfortran());
  EXPECT_TRUE(M.Islands.empty());
}

TEST(Jfortran, Stencil) {
  RunResult R = runProgram(R"(
    .module prog
    .entry main
    .needed libjz.so
    .needed libjfortran.so
    .extern stencil3
    .section data
    v:
      .word8 1
      .word8 2
      .word8 3
      .word8 4
    out: .zero 32
    .func main
    main:
      la r0, v
      movi r1, 4
      la r2, out
      call stencil3
      la r2, out
      ld8 r0, [r2 + 8]    ; 1+2+3 = 6
      ld8 r1, [r2 + 16]   ; 2+3+4 = 9
      add r0, r1          ; 15
      syscall 0
    .endfunc
  )", nullptr, /*WithFortran=*/true);
  EXPECT_EQ(R.St, RunResult::Status::Exited);
  EXPECT_EQ(R.ExitCode, 15);
}

} // namespace
