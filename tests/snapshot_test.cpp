//===- tests/snapshot_test.cpp - Snapshot/restore + watchdog tests ---------===//
///
/// \file
/// The guest-resilience subsystem (DESIGN.md §5h), ctest labels
/// unit+snapshot (the JZ_SNAPSHOT_CHECK=1 stage of scripts/check.sh runs
/// the snapshot label):
///
///  - StateFile round trips: a run interrupted at a checkpoint, captured,
///    restored into a fresh process/engine/tool, and resumed must produce
///    byte-identical output and identical violation tuples versus an
///    uninterrupted run — for JASan, JCFI and the Valgrind baseline, and
///    for an MT workload under the JZ_MAX_GUEST_THREADS=1 kill-switch;
///  - corrupt, truncated or version-skewed state files are rejected with
///    a clean error and evicted from disk (cold start, never an abort);
///  - the snapshot.* fault points degrade gracefully;
///  - execution watchdogs: runaway-loop guests terminate within the
///    cycle/wall budget as Status::Faulted with a structured
///    "watchdog: ..." diagnostic;
///  - malformed tool-state blobs are rejected, never crash.
///
//===----------------------------------------------------------------------===//

#include "TestWorkloads.h"

#include "baselines/ValgrindASan.h"
#include "core/JanitizerDynamic.h"
#include "dbi/NullClient.h"
#include "jasan/JASan.h"
#include "jcfi/JCFI.h"
#include "support/FaultInjector.h"
#include "support/Metrics.h"
#include "vm/StateFile.h"
#include "workloads/WorkloadGen.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>

using namespace janitizer;
using namespace janitizer::testutil;

namespace {

class ScopedEnv {
public:
  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    setenv(Name, Value, 1);
  }
  ~ScopedEnv() { unsetenv(Name); }

private:
  const char *Name;
};

std::string freshStatePath(const std::string &Tag) {
  std::string Path = ::testing::TempDir() + "jz-snap-" + Tag + ".state";
  std::filesystem::remove(Path);
  return Path;
}

/// The full violation tuple: snapshot/restore is single-threaded here, so
/// even the Detail address must reproduce exactly.
std::vector<std::tuple<uint8_t, uint64_t, uint64_t, std::string>>
fullTuples(const std::vector<Violation> &Vs) {
  std::vector<std::tuple<uint8_t, uint64_t, uint64_t, std::string>> T;
  for (const Violation &V : Vs)
    T.emplace_back(V.Code, V.PC, V.Detail, V.What);
  std::sort(T.begin(), T.end());
  return T;
}

uint64_t snapCounter(const char *Name) {
  return MetricsRegistry::instance().counter(Name).value();
}

/// Interrupt-capture-restore-resume under Janitizer with \p T1 / \p T2
/// (two fresh instances of the same technique) and compare against the
/// uninterrupted \p Ref run.
void roundTripUnderJanitizer(const std::string &Prog, SecurityTool &RefTool,
                             SecurityTool &T1, SecurityTool &T2,
                             uint64_t CheckpointSteps, const char *Tag) {
  ModuleStore Store;
  addProgramWithJlibc(Store, Prog);
  RuleStore NoRules;

  JanitizerRun Ref = runUnderJanitizer(Store, "prog", RefTool, NoRules);
  ASSERT_EQ(Ref.Result.St, RunResult::Status::Exited) << Ref.Result.FaultMsg;

  // Interrupted half: run to the cooperative checkpoint and capture.
  Process P1(Store);
  JanitizerDynamic D1(T1, NoRules);
  DbiEngine E1(P1, D1);
  Error LoadErr = P1.loadProgram("prog");
  ASSERT_FALSE(static_cast<bool>(LoadErr)) << LoadErr.message();
  RunBudget B1;
  B1.CheckpointAfterSteps = CheckpointSteps;
  RunResult R1 = E1.run(B1);
  ASSERT_EQ(R1.St, RunResult::Status::StepLimit)
      << Tag << ": checkpoint must interrupt mid-run (raise the step count "
      << "if the workload finished first)";

  std::vector<ToolStateImage> Imgs;
  Imgs.push_back({D1.name(), D1.captureState()});
  std::vector<uint8_t> Blob = StateFile::capture(P1, Imgs);

  // Disk round trip through the hardened reader.
  std::string Path = freshStatePath(Tag);
  Error WErr = StateFile::writeFile(Path, Blob);
  ASSERT_FALSE(static_cast<bool>(WErr)) << WErr.message();
  ErrorOr<std::vector<uint8_t>> Back = StateFile::readFile(Path);
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
  ASSERT_EQ(*Back, Blob);

  // Resumed half: fresh process, engine and tool instance.
  Process P2(Store);
  JanitizerDynamic D2(T2, NoRules);
  DbiEngine E2(P2, D2);
  std::vector<ToolStateImage> OutImgs;
  Error RErr = StateFile::restore(P2, *Back, &OutImgs);
  ASSERT_FALSE(static_cast<bool>(RErr)) << RErr.message();
  ASSERT_EQ(OutImgs.size(), 1u);
  ASSERT_EQ(OutImgs[0].Name, D2.name());
  Error TErr = D2.restoreState(OutImgs[0].Bytes);
  ASSERT_FALSE(static_cast<bool>(TErr)) << TErr.message();

  RunBudget B2;
  RunResult R2 = E2.run(B2);
  EXPECT_EQ(R2.St, RunResult::Status::Exited) << Tag << ": " << R2.FaultMsg;
  EXPECT_EQ(R2.ExitCode, Ref.Result.ExitCode) << Tag;
  EXPECT_EQ(P2.output(), Ref.Output) << Tag << ": output must be "
                                     << "byte-identical across the seam";

  std::vector<Violation> Combined = E1.violations();
  Combined.insert(Combined.end(), E2.violations().begin(),
                  E2.violations().end());
  EXPECT_EQ(fullTuples(Combined), fullTuples(Ref.Violations)) << Tag;
  std::filesystem::remove(Path);
}

/// The runaway guest: an unconditional self-loop that never exits.
ModuleStore runawayStore() {
  AsmBuilder B;
  B.line(".module spin");
  B.line(".entry main");
  B.func("main", /*Exported=*/true);
  B.line("main:");
  B.line("movi r0, 0");
  B.label("loop");
  B.line("addi r0, 1");
  B.line("jmp loop");
  B.endfunc();
  ModuleStore Store;
  Store.add(mustAssemble(B.str()));
  return Store;
}

} // namespace

//===--------------------------------------------------------------------===//
// StateFile format hardening
//===--------------------------------------------------------------------===//

TEST(StateFile, ValidateRejectsCorruption) {
  ModuleStore Store;
  addProgramWithJlibc(Store, CanaryFrameProg);
  Process P(Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  Error LoadErr = P.loadProgram("prog");
  ASSERT_FALSE(static_cast<bool>(LoadErr)) << LoadErr.message();

  std::vector<uint8_t> Blob = StateFile::capture(P);
  EXPECT_FALSE(static_cast<bool>(StateFile::validate(Blob)));

  std::vector<uint8_t> BadMagic = Blob;
  BadMagic[0] ^= 0xFF;
  EXPECT_TRUE(static_cast<bool>(StateFile::validate(BadMagic)));

  std::vector<uint8_t> BadVersion = Blob;
  BadVersion[4] ^= 0xFF;
  EXPECT_TRUE(static_cast<bool>(StateFile::validate(BadVersion)));

  std::vector<uint8_t> FlippedPayload = Blob;
  FlippedPayload[Blob.size() / 2] ^= 0x01;
  EXPECT_TRUE(static_cast<bool>(StateFile::validate(FlippedPayload)))
      << "payload flip must fail the checksum";

  std::vector<uint8_t> Truncated(Blob.begin(),
                                 Blob.begin() + Blob.size() / 2);
  EXPECT_TRUE(static_cast<bool>(StateFile::validate(Truncated)));
  EXPECT_TRUE(static_cast<bool>(StateFile::validate({})));

  // A hostile blob must also fail restore cleanly, leaving no footprint.
  Process P2(Store);
  Error RErr = StateFile::restore(P2, FlippedPayload);
  EXPECT_TRUE(static_cast<bool>(RErr));
}

TEST(StateFile, CaptureRestoreCountersTick) {
  ModuleStore Store;
  addProgramWithJlibc(Store, CanaryFrameProg);
  Process P(Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  uint64_t Caps = snapCounter("jz.snapshot.captures");
  uint64_t Rests = snapCounter("jz.snapshot.restores");
  std::vector<uint8_t> Blob = StateFile::capture(P);
  EXPECT_EQ(snapCounter("jz.snapshot.captures"), Caps + 1);
  Process P2(Store);
  NullClient Tool2;
  DbiEngine E2(P2, Tool2);
  ASSERT_FALSE(static_cast<bool>(StateFile::restore(P2, Blob)));
  EXPECT_EQ(snapCounter("jz.snapshot.restores"), Rests + 1);
}

//===--------------------------------------------------------------------===//
// Snapshot differentials: interrupted+restored == uninterrupted.
//===--------------------------------------------------------------------===//

TEST(SnapshotDifferential, JasanHeapOverflowRoundTrip) {
  // The checkpoint lands before the redzone access, so the restored
  // allocator metadata — not the live one — must catch the overflow.
  JASanTool Ref, T1, T2;
  roundTripUnderJanitizer(HeapOverflowProg, Ref, T1, T2,
                          /*CheckpointSteps=*/8, "jasan");
}

TEST(SnapshotDifferential, JcfiCanaryFrameRoundTrip) {
  // Mid-run the shadow stack holds live return addresses; they must
  // travel through the state file or every post-restore RET misfires.
  JcfiDatabase Db1, Db2, Db3;
  JCFITool Ref(Db1), T1(Db2), T2(Db3);
  roundTripUnderJanitizer(CanaryFrameProg, Ref, T1, T2,
                          /*CheckpointSteps=*/150, "jcfi");
}

TEST(SnapshotDifferential, ValgrindBaselineRoundTrip) {
  ModuleStore Store;
  addProgramWithJlibc(Store, HeapOverflowProg);

  BaselineRun Ref = runUnderValgrind(Store, "prog");
  ASSERT_EQ(Ref.Result.St, RunResult::Status::Exited) << Ref.Result.FaultMsg;

  Process P1(Store);
  ValgrindASanTool T1;
  DbiEngine E1(P1, T1, valgrindCostModel());
  ASSERT_FALSE(static_cast<bool>(P1.loadProgram("prog")));
  RunBudget B1;
  B1.CheckpointAfterSteps = 8;
  RunResult R1 = E1.run(B1);
  ASSERT_EQ(R1.St, RunResult::Status::StepLimit);

  std::vector<ToolStateImage> Imgs;
  Imgs.push_back({T1.name(), T1.captureState()});
  std::vector<uint8_t> Blob = StateFile::capture(P1, Imgs);

  Process P2(Store);
  ValgrindASanTool T2;
  DbiEngine E2(P2, T2, valgrindCostModel());
  std::vector<ToolStateImage> OutImgs;
  ASSERT_FALSE(static_cast<bool>(StateFile::restore(P2, Blob, &OutImgs)));
  ASSERT_EQ(OutImgs.size(), 1u);
  ASSERT_FALSE(static_cast<bool>(T2.restoreState(OutImgs[0].Bytes)));
  RunResult R2 = E2.run(RunBudget{});
  EXPECT_EQ(R2.St, RunResult::Status::Exited) << R2.FaultMsg;
  EXPECT_EQ(R2.ExitCode, Ref.Result.ExitCode);
  EXPECT_EQ(P2.output(), Ref.Output);

  std::vector<Violation> Combined = E1.violations();
  Combined.insert(Combined.end(), E2.violations().begin(),
                  E2.violations().end());
  EXPECT_EQ(fullTuples(Combined), fullTuples(Ref.Violations));
}

TEST(SnapshotDifferential, MtWorkloadKillSwitchRoundTrip) {
  // Snapshots of multi-threaded guests are supported for single-thread
  // execution (mid-block sibling stops are not resumable), so the MT
  // workload runs under the documented kill-switch.
  ScopedEnv KillSwitch("JZ_MAX_GUEST_THREADS", "1");
  MtWorkloadOptions O;
  O.Workers = 3;
  auto W = buildMtWorkload(MtWorkloadKind::RaceAlloc, O);
  ASSERT_TRUE(static_cast<bool>(W)) << W.message();

  // Uninterrupted reference.
  std::string RefOutput;
  int RefExit = 0;
  {
    Process P(W->Store);
    NullClient Tool;
    DbiEngine E(P, Tool);
    ASSERT_FALSE(static_cast<bool>(P.loadProgram(W->ExeName)));
    RunResult R = E.run();
    ASSERT_EQ(R.St, RunResult::Status::Exited) << R.FaultMsg;
    RefOutput = P.output();
    RefExit = R.ExitCode;
  }
  ASSERT_FALSE(RefOutput.empty());

  Process P1(W->Store);
  NullClient T1;
  DbiEngine E1(P1, T1);
  ASSERT_FALSE(static_cast<bool>(P1.loadProgram(W->ExeName)));
  RunBudget B1;
  B1.CheckpointAfterSteps = 300;
  RunResult R1 = E1.run(B1);
  ASSERT_EQ(R1.St, RunResult::Status::StepLimit);

  std::vector<uint8_t> Blob = StateFile::capture(P1);

  Process P2(W->Store);
  NullClient T2;
  DbiEngine E2(P2, T2);
  ASSERT_FALSE(static_cast<bool>(StateFile::restore(P2, Blob)));
  RunResult R2 = E2.run(RunBudget{});
  EXPECT_EQ(R2.St, RunResult::Status::Exited) << R2.FaultMsg;
  EXPECT_EQ(R2.ExitCode, RefExit);
  EXPECT_EQ(P2.output(), RefOutput);
}

//===--------------------------------------------------------------------===//
// State-file fault injection: degrade to cold start, never abort.
//===--------------------------------------------------------------------===//

namespace {

std::vector<uint8_t> capturedBlob(const ModuleStore &Store) {
  Process P(Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  EXPECT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  return StateFile::capture(P);
}

} // namespace

TEST(SnapshotFaults, WriteEnospcReturnsErrorWithoutPartialFile) {
  ModuleStore Store;
  addProgramWithJlibc(Store, CanaryFrameProg);
  std::vector<uint8_t> Blob = capturedBlob(Store);
  std::string Path = freshStatePath("enospc");
  ScopedFaultPlan Plan({{"snapshot.write.enospc", FaultTrigger::always()}});
  Error E = StateFile::writeFile(Path, Blob);
  EXPECT_TRUE(static_cast<bool>(E));
  EXPECT_FALSE(std::filesystem::exists(Path))
      << "a failed publish must not leave a partial state file";
}

TEST(SnapshotFaults, ReadCorruptionEvictsAndDegrades) {
  ModuleStore Store;
  addProgramWithJlibc(Store, CanaryFrameProg);
  std::vector<uint8_t> Blob = capturedBlob(Store);

  for (const char *Point : {"snapshot.read.corrupt",
                            "snapshot.read.truncated"}) {
    std::string Path = freshStatePath(std::string("evict-") +
                                      (Point + std::strlen("snapshot.read.")));
    ASSERT_FALSE(static_cast<bool>(StateFile::writeFile(Path, Blob)));
    uint64_t Evicted = snapCounter("jz.snapshot.corrupt_evicted");
    {
      ScopedFaultPlan Plan({{Point, FaultTrigger::always()}});
      ErrorOr<std::vector<uint8_t>> R = StateFile::readFile(Path);
      EXPECT_FALSE(static_cast<bool>(R)) << Point;
      if (!R) {
        EXPECT_NE(R.takeError().message().find("evicted"), std::string::npos)
            << Point;
      }
    }
    EXPECT_FALSE(std::filesystem::exists(Path))
        << Point << ": a rejected state file must be evicted from disk";
    EXPECT_EQ(snapCounter("jz.snapshot.corrupt_evicted"), Evicted + 1)
        << Point;
  }
}

TEST(SnapshotFaults, OnDiskBitRotEvictedWithoutFaultInjection) {
  ModuleStore Store;
  addProgramWithJlibc(Store, CanaryFrameProg);
  std::vector<uint8_t> Blob = capturedBlob(Store);
  std::string Path = freshStatePath("bitrot");
  ASSERT_FALSE(static_cast<bool>(StateFile::writeFile(Path, Blob)));

  // Rot one payload byte on disk behind the writer's back.
  {
    FILE *F = std::fopen(Path.c_str(), "r+b");
    ASSERT_NE(F, nullptr);
    ASSERT_EQ(std::fseek(F, static_cast<long>(Blob.size() / 2), SEEK_SET), 0);
    int C = std::fgetc(F);
    ASSERT_NE(C, EOF);
    ASSERT_EQ(std::fseek(F, -1, SEEK_CUR), 0);
    std::fputc(C ^ 0x20, F);
    std::fclose(F);
  }
  ErrorOr<std::vector<uint8_t>> R = StateFile::readFile(Path);
  EXPECT_FALSE(static_cast<bool>(R));
  EXPECT_FALSE(std::filesystem::exists(Path));
}

//===--------------------------------------------------------------------===//
// Execution watchdogs: a hostile guest never hangs the host.
//===--------------------------------------------------------------------===//

TEST(Watchdog, RunawayLoopTripsCycleBudget) {
  ModuleStore Store = runawayStore();
  Process P(Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("spin")));
  RunBudget B;
  B.MaxCycles = 50000;
  B.MaxSteps = 1ull << 24; // backstop so a broken watchdog still ends
  RunResult R = E.run(B);
  ASSERT_EQ(R.St, RunResult::Status::Faulted)
      << "runaway loop must trip the cycle watchdog";
  EXPECT_NE(R.FaultMsg.find("watchdog: cycle budget"), std::string::npos)
      << R.FaultMsg;
  EXPECT_NE(R.FaultMsg.find("tid="), std::string::npos) << R.FaultMsg;
  EXPECT_NE(R.FaultMsg.find("pc=0x"), std::string::npos) << R.FaultMsg;
}

TEST(Watchdog, RunawayLoopTripsWallClockBudget) {
  ModuleStore Store = runawayStore();
  Process P(Store);
  NullClient Tool;
  DbiEngine E(P, Tool);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("spin")));
  RunBudget B;
  B.MaxWallMs = 25;
  B.MaxSteps = 1ull << 30; // far beyond what 25 ms can execute
  RunResult R = E.run(B);
  ASSERT_EQ(R.St, RunResult::Status::Faulted)
      << "runaway loop must trip the wall-clock watchdog";
  EXPECT_NE(R.FaultMsg.find("watchdog: wall-clock budget"), std::string::npos)
      << R.FaultMsg;
}

TEST(Watchdog, BudgetFromEnv) {
  ScopedEnv S1("JZ_MAX_GUEST_STEPS", "1234");
  ScopedEnv S2("JZ_MAX_GUEST_CYCLES", "99");
  ScopedEnv S3("JZ_MAX_WALL_MS", "7");
  RunBudget B = RunBudget::fromEnv();
  EXPECT_EQ(B.MaxSteps, 1234u);
  EXPECT_EQ(B.MaxCycles, 99u);
  EXPECT_EQ(B.MaxWallMs, 7u);
}

TEST(Watchdog, WellBehavedGuestUnaffectedByBudgets) {
  ModuleStore Store;
  addProgramWithJlibc(Store, CanaryFrameProg);
  JASanTool Ref;
  RuleStore NoRules;
  JanitizerRun Plain = runUnderJanitizer(Store, "prog", Ref, NoRules);
  ASSERT_EQ(Plain.Result.St, RunResult::Status::Exited);

  Process P(Store);
  JASanTool T;
  JanitizerDynamic D(T, NoRules);
  DbiEngine E(P, D);
  ASSERT_FALSE(static_cast<bool>(P.loadProgram("prog")));
  RunBudget B;
  B.MaxCycles = 1ull << 40;
  B.MaxWallMs = 60000;
  RunResult R = E.run(B);
  EXPECT_EQ(R.St, RunResult::Status::Exited) << R.FaultMsg;
  EXPECT_EQ(R.ExitCode, Plain.Result.ExitCode);
  EXPECT_EQ(P.output(), Plain.Output);
}

//===--------------------------------------------------------------------===//
// Tool-state blobs are untrusted input too.
//===--------------------------------------------------------------------===//

TEST(ToolState, MalformedBlobsRejectedCleanly) {
  JASanTool Jasan;
  EXPECT_TRUE(static_cast<bool>(Jasan.restoreState({1, 2, 3})));
  EXPECT_FALSE(static_cast<bool>(Jasan.restoreState({})));

  JcfiDatabase Db;
  JCFITool Jcfi(Db);
  EXPECT_TRUE(static_cast<bool>(Jcfi.restoreState({0xFF, 0xFF})));
  EXPECT_FALSE(static_cast<bool>(Jcfi.restoreState({})));

  // Round trip of real blobs through a second instance must succeed.
  JASanTool Jasan2;
  EXPECT_FALSE(static_cast<bool>(Jasan2.restoreState(Jasan.captureState())));
  JcfiDatabase Db2;
  JCFITool Jcfi2(Db2);
  EXPECT_FALSE(static_cast<bool>(Jcfi2.restoreState(Jcfi.captureState())));
}
