//===- tests/cfg_test.cpp - Control-flow recovery tests -------------------===//

#include "cfg/CFG.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"

#include <gtest/gtest.h>

using namespace janitizer;

namespace {

Module mustAssemble(const std::string &Src) {
  auto M = assembleModule(Src);
  if (!M) {
    ADD_FAILURE() << M.message();
    return Module();
  }
  return *M;
}

TEST(CFG, StraightLineSingleBlock) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      movi r0, 1
      addi r0, 2
      syscall 0
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  ASSERT_EQ(CFG.Blocks.size(), 1u);
  const BasicBlock &BB = CFG.Blocks.begin()->second;
  EXPECT_EQ(BB.Instrs.size(), 3u);
  EXPECT_EQ(BB.Term, CTIKind::None); // syscall does not end a block; the
                                     // block ends at undecodable bytes
  EXPECT_EQ(CFG.Functions.size(), 1u);
  EXPECT_EQ(CFG.Functions[0].Name, "main");
}

TEST(CFG, DiamondControlFlow) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      cmpi r0, 0
      je else_part
      movi r1, 1
      jmp join
    else_part:
      movi r1, 2
    join:
      mov r0, r1
      syscall 0
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  EXPECT_EQ(CFG.Blocks.size(), 4u);
  const BasicBlock *Entry = CFG.blockAt(M.Entry);
  ASSERT_NE(Entry, nullptr);
  EXPECT_EQ(Entry->Term, CTIKind::CondJump);
  ASSERT_EQ(Entry->Succs.size(), 2u);
  // The join block has two predecessors.
  const Symbol *Join = M.findSymbol("join");
  ASSERT_NE(Join, nullptr);
  const BasicBlock *JoinBB = CFG.blockAt(Join->Value);
  ASSERT_NE(JoinBB, nullptr);
  EXPECT_EQ(JoinBB->Preds.size(), 2u);
}

TEST(CFG, BlockSplittingOnBackwardTarget) {
  // A loop whose back edge targets the middle of the initial block.
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      movi r1, 0
    loop:
      addi r1, 1
      cmpi r1, 10
      jl loop
      syscall 0
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  const Symbol *Loop = M.findSymbol("loop");
  ASSERT_NE(Loop, nullptr);
  const BasicBlock *LoopBB = CFG.blockAt(Loop->Value);
  ASSERT_NE(LoopBB, nullptr) << "back-edge target did not become a block";
  // main block falls through into loop.
  const BasicBlock *Entry = CFG.blockAt(M.Entry);
  ASSERT_NE(Entry, nullptr);
  ASSERT_EQ(Entry->Succs.size(), 1u);
  EXPECT_EQ(Entry->Succs[0], Loop->Value);
  // The loop block's taken successor is itself.
  EXPECT_NE(std::find(LoopBB->Succs.begin(), LoopBB->Succs.end(),
                      Loop->Value),
            LoopBB->Succs.end());
}

TEST(CFG, CallTargetsBecomeFunctions) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func helper
    helper:
      movi r0, 9
      ret
    .endfunc
    .func main
    main:
      call helper
      syscall 0
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  const Symbol *H = M.findSymbol("helper");
  ASSERT_NE(H, nullptr);
  EXPECT_TRUE(CFG.isFunctionEntry(H->Value));
  const BasicBlock *MainBB = CFG.blockAt(M.Entry);
  ASSERT_NE(MainBB, nullptr);
  EXPECT_EQ(MainBB->Term, CTIKind::DirectCall);
  EXPECT_EQ(MainBB->CallTarget, H->Value);
  // The call's fall-through is an intra-function edge, not a call edge.
  ASSERT_EQ(MainBB->Succs.size(), 1u);
  const BasicBlock *Fall = CFG.blockAt(MainBB->Succs[0]);
  ASSERT_NE(Fall, nullptr);
  EXPECT_EQ(Fall->FuncIdx, MainBB->FuncIdx);
}

TEST(CFG, PltAndInitSectionsCovered) {
  // §3.3.1: control-flow recovery must include .plt and .init.
  Module M = cantFail(buildJlibc());
  ModuleCFG CFG = buildCFG(M);
  const Section *Init = M.section(SectionKind::Init);
  ASSERT_NE(Init, nullptr);
  EXPECT_NE(CFG.blockAt(Init->Addr), nullptr);

  // jlibc has no PLT (no imports), so check a module that does.
  Module P = mustAssemble(R"(
    .module uses_plt
    .entry main
    .extern malloc
    .func main
    main:
      movi r0, 8
      call malloc
      syscall 0
    .endfunc
  )");
  ASSERT_FALSE(P.Plt.empty());
  ModuleCFG PCFG = buildCFG(P);
  // plt0 (the resolver trampoline) and the stub are both covered.
  const Section *Plt = P.section(SectionKind::Plt);
  ASSERT_NE(Plt, nullptr);
  EXPECT_NE(PCFG.blockAt(Plt->Addr), nullptr);
  EXPECT_NE(PCFG.blockAt(P.Plt[0].StubVA), nullptr);
  EXPECT_NE(PCFG.blockAt(P.Plt[0].LazyVA), nullptr);
  // The plt0 block ends in the lazy-binding RET (§4.2.3 special case).
  const BasicBlock *Plt0 = PCFG.blockAt(Plt->Addr);
  EXPECT_EQ(Plt0->Term, CTIKind::Return);
}

TEST(CFG, DataIslandNotDisassembled) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      movi r0, 3
      syscall 0
    .endfunc
    .island 16 3
    .func after
    after:
      movi r0, 4
      ret
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  ASSERT_EQ(M.Islands.size(), 1u);
  uint64_t IslandAddr = M.Islands[0].Addr;
  // No decoded instruction may start inside the island.
  for (const auto &[_, BB] : CFG.Blocks)
    for (const DecodedInstr &DI : BB.Instrs)
      EXPECT_FALSE(M.inDataIsland(DI.Addr))
          << "instruction decoded inside a data island";
  // ... but the function after the island is still found via its symbol.
  const Symbol *After = M.findSymbol("after");
  ASSERT_NE(After, nullptr);
  EXPECT_GT(After->Value, IslandAddr);
  EXPECT_TRUE(CFG.isFunctionEntry(After->Value));
}

TEST(CFG, IndirectJumpHasNoStaticSuccessors) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      la r1, main
      jmpr r1
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  const BasicBlock *BB = CFG.blockAt(M.Entry);
  ASSERT_NE(BB, nullptr);
  EXPECT_EQ(BB->Term, CTIKind::IndirectJump);
  EXPECT_TRUE(BB->Succs.empty());
}

TEST(CFG, ExtraRootsDiscoverHiddenCode) {
  // A function reachable only through an indirect call is invisible to
  // plain recursive descent but discovered when passed as an extra root
  // (the code-pointer-scan hand-off).
  Module M = mustAssemble(R"(
    .module m
    .stripped
    .entry main
    .global main
    .func hidden
    hidden:
      movi r0, 123
      ret
    .endfunc
    .func main
    main:
      movq r9, =hidden
      callr r9
      syscall 0
    .endfunc
  )");
  // Stripped module: 'hidden' has no symbol.
  EXPECT_EQ(M.findSymbol("hidden"), nullptr);
  ModuleCFG Plain = buildCFG(M);
  uint64_t HiddenVA = 0;
  // Recover the address from the movq immediate.
  for (const auto &[_, BB] : Plain.Blocks)
    for (const DecodedInstr &DI : BB.Instrs)
      if (DI.I.Op == Opcode::MOV_RI64)
        HiddenVA = static_cast<uint64_t>(DI.I.Imm);
  ASSERT_NE(HiddenVA, 0u);
  EXPECT_EQ(Plain.blockAt(HiddenVA), nullptr)
      << "hidden function should not be discovered without extra roots";

  CFGBuildOptions Opts;
  Opts.ExtraRoots.push_back(HiddenVA);
  ModuleCFG Extended = buildCFG(M, Opts);
  EXPECT_NE(Extended.blockAt(HiddenVA), nullptr);
}

TEST(CFG, InstructionBoundaryQueries) {
  Module M = mustAssemble(R"(
    .module m
    .entry main
    .func main
    main:
      movi r0, 1
      addi r0, 2
      syscall 0
    .endfunc
  )");
  ModuleCFG CFG = buildCFG(M);
  EXPECT_TRUE(CFG.isInstructionBoundary(M.Entry));
  EXPECT_TRUE(CFG.isInstructionBoundary(M.Entry + 6));
  EXPECT_FALSE(CFG.isInstructionBoundary(M.Entry + 1));
  EXPECT_FALSE(CFG.isInstructionBoundary(M.Entry + 5));
  EXPECT_EQ(CFG.instructionCount(), 3u);
}

TEST(CFG, WholeRuntimeLibraryDisassembles) {
  Module M = cantFail(buildJlibc());
  ModuleCFG CFG = buildCFG(M);
  // Every exported function has a CFG function with at least one block.
  for (const Symbol &S : M.Symbols) {
    if (!S.IsFunction || !S.Exported)
      continue;
    const CfgFunction *F = CFG.functionAt(S.Value);
    ASSERT_NE(F, nullptr) << S.Name;
    EXPECT_FALSE(F->Blocks.empty()) << S.Name;
    EXPECT_TRUE(F->FromSymbol) << S.Name;
  }
  EXPECT_GT(CFG.instructionCount(), 100u);
}

} // namespace
