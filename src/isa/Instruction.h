//===- isa/Instruction.h - Decoded JISA instruction representation --------===//
///
/// \file
/// The decoded instruction form shared by the assembler, the VM interpreter,
/// the static analyzer and the dynamic modifier.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_ISA_INSTRUCTION_H
#define JANITIZER_ISA_INSTRUCTION_H

#include "isa/Opcodes.h"
#include "isa/Registers.h"

#include <cstdint>

namespace janitizer {

/// A base + index*scale + disp memory operand, optionally PC-relative
/// (address of the next instruction + disp), as used for PIC code.
struct MemOperand {
  Reg Base = Reg::R0;
  Reg Index = Reg::R0;
  uint8_t ScaleLog2 = 0; ///< index is shifted left by this (0..3)
  bool HasBase = false;
  bool HasIndex = false;
  bool PCRel = false;
  int32_t Disp = 0;

  bool operator==(const MemOperand &O) const = default;
};

/// A decoded instruction. Fields not used by the opcode are left
/// zero-initialized; \p Size is the encoded length in bytes.
struct Instruction {
  Opcode Op = Opcode::NOP;
  Reg Rd = Reg::R0;   ///< destination (or source for stores / PUSH)
  Reg Rs = Reg::R0;   ///< second register operand
  int64_t Imm = 0;    ///< immediate / branch displacement / syscall number
  MemOperand Mem;
  uint8_t Size = 0;

  bool operator==(const Instruction &O) const {
    return Op == O.Op && Rd == O.Rd && Rs == O.Rs && Imm == O.Imm &&
           Mem == O.Mem;
  }

  /// For direct branches/calls at address \p Addr, the absolute target.
  uint64_t branchTarget(uint64_t Addr) const {
    return Addr + Size + static_cast<uint64_t>(Imm);
  }
};

/// Bitmask of registers read by \p I (architectural reads only; the stack
/// pointer is included for push/pop/call/ret).
uint16_t regsRead(const Instruction &I);

/// Bitmask of registers written by \p I.
uint16_t regsWritten(const Instruction &I);

} // namespace janitizer

#endif // JANITIZER_ISA_INSTRUCTION_H
