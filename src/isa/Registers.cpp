//===- isa/Registers.cpp --------------------------------------------------==//

#include "isa/Registers.h"

#include <cstring>

using namespace janitizer;

static const char *const RegNames[NumRegs] = {
    "r0", "r1", "r2",  "r3",  "r4",  "r5",  "r6", "r7",
    "r8", "r9", "r10", "r11", "r12", "r13", "sp", "tp"};

const char *janitizer::regName(Reg R) {
  return RegNames[static_cast<unsigned>(R)];
}

bool janitizer::parseRegName(const char *Name, Reg &Out) {
  for (unsigned I = 0; I < NumRegs; ++I) {
    if (std::strcmp(Name, RegNames[I]) == 0) {
      Out = static_cast<Reg>(I);
      return true;
    }
  }
  // "fp" aliases r13.
  if (std::strcmp(Name, "fp") == 0) {
    Out = FP;
    return true;
  }
  return false;
}
