//===- isa/Encoding.h - JISA binary encoder and decoder -------------------===//
///
/// \file
/// Binary encoding of JISA instructions. Encodings are variable length
/// (1..10 bytes); see isa/Opcodes.h for the rationale.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_ISA_ENCODING_H
#define JANITIZER_ISA_ENCODING_H

#include "isa/Instruction.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace janitizer {

/// Appends the encoding of \p I to \p Out and returns its length in bytes.
/// Also fixes up I.Size.
unsigned encode(Instruction &I, std::vector<uint8_t> &Out);

/// Returns the encoded length of \p I without emitting it.
unsigned encodedLength(const Instruction &I);

/// Decodes one instruction from [P, P+Avail). Returns false on truncated or
/// invalid encodings. On success fills \p Out (including Out.Size).
bool decode(const uint8_t *P, size_t Avail, Instruction &Out);

/// Offsets (from the start of the encoding) of patchable fields, used by the
/// assembler/linker for relocations.
/// \returns the byte offset of the 32-bit displacement of the memory
/// operand, or of the rel32 of a direct branch/call; ~0u when \p Op has
/// neither.
unsigned disp32Offset(Opcode Op);

/// Byte offset of the 64-bit immediate of MOV_RI64 / PUSHI64; ~0u otherwise.
unsigned imm64Offset(Opcode Op);

} // namespace janitizer

#endif // JANITIZER_ISA_ENCODING_H
