//===- isa/Registers.h - JISA register file definition --------------------===//
///
/// \file
/// The JISA register file: 16 64-bit general registers. By convention R0-R5
/// carry arguments and R0 the return value; R0-R8 are caller-saved; R9-R13
/// are callee-saved (R13 doubles as the frame pointer); SP is the stack
/// pointer and TP is the thread pointer that holds the stack-canary value
/// (the analogue of x86-64 %fs:0x28).
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_ISA_REGISTERS_H
#define JANITIZER_ISA_REGISTERS_H

#include <cstdint>

namespace janitizer {

enum class Reg : uint8_t {
  R0 = 0,
  R1,
  R2,
  R3,
  R4,
  R5,
  R6,
  R7,
  R8,
  R9,
  R10,
  R11,
  R12,
  R13,
  SP = 14,
  TP = 15,
};

constexpr unsigned NumRegs = 16;

/// Frame-pointer alias.
constexpr Reg FP = Reg::R13;

/// Returns the canonical lower-case register name ("r0".."r13", "sp", "tp").
const char *regName(Reg R);

/// Parses a register name; returns false if \p Name is not a register.
bool parseRegName(const char *Name, Reg &Out);

/// Bitmask helpers for register sets.
inline uint16_t regBit(Reg R) { return static_cast<uint16_t>(1u << static_cast<unsigned>(R)); }

/// Caller-saved registers (R0..R8) as a bitmask.
constexpr uint16_t CallerSavedMask = 0x01FF;

/// Callee-saved registers (R9..R13) as a bitmask.
constexpr uint16_t CalleeSavedMask = 0x3E00;

/// Argument registers R0..R5.
constexpr uint16_t ArgRegMask = 0x003F;

} // namespace janitizer

#endif // JANITIZER_ISA_REGISTERS_H
