//===- isa/Encoding.cpp ---------------------------------------------------==//

#include "isa/Encoding.h"

#include "support/Endian.h"
#include "support/Error.h"

using namespace janitizer;

namespace {

/// Operand layout classes keyed by opcode.
enum class Layout {
  None,       ///< [op]                          len 1
  RegReg,     ///< [op][rd<<4|rs]                len 2
  RegImm64,   ///< [op][rd][imm64]               len 10
  RegImm32,   ///< [op][rd][imm32]               len 6
  RegMem,     ///< [op][rd][mem6]                len 8
  Rel32,      ///< [op][rel32]                   len 5
  Reg,        ///< [op][reg]                     len 2
  Mem,        ///< [op][mem6]                    len 7
  Imm8,       ///< [op][imm8]                    len 2
  Imm64,      ///< [op][imm64]                   len 9
  RegRegMem,  ///< [op][rd<<4|rs][mem6]          len 8
};

Layout layoutOf(Opcode Op) {
  switch (Op) {
  case Opcode::NOP:
  case Opcode::HLT:
  case Opcode::PUSHF:
  case Opcode::POPF:
  case Opcode::RET:
    return Layout::None;
  case Opcode::MOV_RR:
  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::SHL:
  case Opcode::SHR:
  case Opcode::MUL:
  case Opcode::DIV:
  case Opcode::CMP:
  case Opcode::TEST:
    return Layout::RegReg;
  case Opcode::MOV_RI64:
    return Layout::RegImm64;
  case Opcode::MOV_RI32:
  case Opcode::ADDI:
  case Opcode::SUBI:
  case Opcode::ANDI:
  case Opcode::ORI:
  case Opcode::XORI:
  case Opcode::SHLI:
  case Opcode::SHRI:
  case Opcode::MULI:
  case Opcode::CMPI:
  case Opcode::TESTI:
    return Layout::RegImm32;
  case Opcode::LEA:
  case Opcode::LD1:
  case Opcode::LD2:
  case Opcode::LD4:
  case Opcode::LD8:
  case Opcode::ST1:
  case Opcode::ST2:
  case Opcode::ST4:
  case Opcode::ST8:
    return Layout::RegMem;
  case Opcode::JMP:
  case Opcode::JE:
  case Opcode::JNE:
  case Opcode::JL:
  case Opcode::JLE:
  case Opcode::JG:
  case Opcode::JGE:
  case Opcode::JB:
  case Opcode::JAE:
  case Opcode::CALL:
    return Layout::Rel32;
  case Opcode::CALLR:
  case Opcode::JMPR:
  case Opcode::PUSH:
  case Opcode::POP:
    return Layout::Reg;
  case Opcode::CALLM:
  case Opcode::JMPM:
    return Layout::Mem;
  case Opcode::SYSCALL:
  case Opcode::TRAP:
    return Layout::Imm8;
  case Opcode::PUSHI64:
    return Layout::Imm64;
  case Opcode::CAS:
    return Layout::RegRegMem;
  }
  JZ_UNREACHABLE("unknown opcode");
}

unsigned layoutLength(Layout L) {
  switch (L) {
  case Layout::None: return 1;
  case Layout::RegReg: return 2;
  case Layout::RegImm64: return 10;
  case Layout::RegImm32: return 6;
  case Layout::RegMem: return 8;
  case Layout::Rel32: return 5;
  case Layout::Reg: return 2;
  case Layout::Mem: return 7;
  case Layout::Imm8: return 2;
  case Layout::Imm64: return 9;
  case Layout::RegRegMem: return 8;
  }
  JZ_UNREACHABLE("unknown layout");
}

constexpr uint8_t MemFlagScaleMask = 0x03;
constexpr uint8_t MemFlagHasIndex = 0x04;
constexpr uint8_t MemFlagPCRel = 0x08;
constexpr uint8_t MemFlagHasBase = 0x10;

void encodeMem(const MemOperand &M, std::vector<uint8_t> &Out) {
  Out.push_back(static_cast<uint8_t>(
      (static_cast<unsigned>(M.Base) << 4) | static_cast<unsigned>(M.Index)));
  uint8_t Flags = M.ScaleLog2 & MemFlagScaleMask;
  if (M.HasIndex)
    Flags |= MemFlagHasIndex;
  if (M.PCRel)
    Flags |= MemFlagPCRel;
  if (M.HasBase)
    Flags |= MemFlagHasBase;
  Out.push_back(Flags);
  writeLE32(Out, static_cast<uint32_t>(M.Disp));
}

void decodeMem(const uint8_t *P, MemOperand &M) {
  M.Base = static_cast<Reg>(P[0] >> 4);
  M.Index = static_cast<Reg>(P[0] & 0x0F);
  uint8_t Flags = P[1];
  M.ScaleLog2 = Flags & MemFlagScaleMask;
  M.HasIndex = (Flags & MemFlagHasIndex) != 0;
  M.PCRel = (Flags & MemFlagPCRel) != 0;
  M.HasBase = (Flags & MemFlagHasBase) != 0;
  M.Disp = static_cast<int32_t>(readLE32(P + 2));
}

} // namespace

unsigned janitizer::encodedLength(const Instruction &I) {
  return layoutLength(layoutOf(I.Op));
}

unsigned janitizer::encode(Instruction &I, std::vector<uint8_t> &Out) {
  Layout L = layoutOf(I.Op);
  Out.push_back(static_cast<uint8_t>(I.Op));
  switch (L) {
  case Layout::None:
    break;
  case Layout::RegReg:
    Out.push_back(static_cast<uint8_t>((static_cast<unsigned>(I.Rd) << 4) |
                                       static_cast<unsigned>(I.Rs)));
    break;
  case Layout::RegImm64:
    Out.push_back(static_cast<uint8_t>(I.Rd));
    writeLE64(Out, static_cast<uint64_t>(I.Imm));
    break;
  case Layout::RegImm32:
    Out.push_back(static_cast<uint8_t>(I.Rd));
    writeLE32(Out, static_cast<uint32_t>(I.Imm));
    break;
  case Layout::RegMem:
    Out.push_back(static_cast<uint8_t>(I.Rd));
    encodeMem(I.Mem, Out);
    break;
  case Layout::Rel32:
    writeLE32(Out, static_cast<uint32_t>(I.Imm));
    break;
  case Layout::Reg:
    Out.push_back(static_cast<uint8_t>(I.Rd));
    break;
  case Layout::Mem:
    encodeMem(I.Mem, Out);
    break;
  case Layout::Imm8:
    Out.push_back(static_cast<uint8_t>(I.Imm));
    break;
  case Layout::Imm64:
    writeLE64(Out, static_cast<uint64_t>(I.Imm));
    break;
  case Layout::RegRegMem:
    Out.push_back(static_cast<uint8_t>((static_cast<unsigned>(I.Rd) << 4) |
                                       static_cast<unsigned>(I.Rs)));
    encodeMem(I.Mem, Out);
    break;
  }
  I.Size = static_cast<uint8_t>(layoutLength(L));
  return I.Size;
}

bool janitizer::decode(const uint8_t *P, size_t Avail, Instruction &Out) {
  if (Avail == 0 || !isValidOpcode(P[0]))
    return false;
  Opcode Op = static_cast<Opcode>(P[0]);
  Layout L = layoutOf(Op);
  unsigned Len = layoutLength(L);
  if (Avail < Len)
    return false;
  Out = Instruction();
  Out.Op = Op;
  Out.Size = static_cast<uint8_t>(Len);
  switch (L) {
  case Layout::None:
    break;
  case Layout::RegReg:
    Out.Rd = static_cast<Reg>(P[1] >> 4);
    Out.Rs = static_cast<Reg>(P[1] & 0x0F);
    break;
  case Layout::RegImm64:
    if ((P[1] & 0xF0) != 0)
      return false;
    Out.Rd = static_cast<Reg>(P[1]);
    Out.Imm = static_cast<int64_t>(readLE64(P + 2));
    break;
  case Layout::RegImm32:
    if ((P[1] & 0xF0) != 0)
      return false;
    Out.Rd = static_cast<Reg>(P[1]);
    Out.Imm = static_cast<int32_t>(readLE32(P + 2));
    break;
  case Layout::RegMem:
    if ((P[1] & 0xF0) != 0)
      return false;
    Out.Rd = static_cast<Reg>(P[1]);
    decodeMem(P + 2, Out.Mem);
    break;
  case Layout::Rel32:
    Out.Imm = static_cast<int32_t>(readLE32(P + 1));
    break;
  case Layout::Reg:
    if ((P[1] & 0xF0) != 0)
      return false;
    Out.Rd = static_cast<Reg>(P[1]);
    break;
  case Layout::Mem:
    decodeMem(P + 1, Out.Mem);
    break;
  case Layout::Imm8:
    Out.Imm = P[1];
    break;
  case Layout::Imm64:
    Out.Imm = static_cast<int64_t>(readLE64(P + 1));
    break;
  case Layout::RegRegMem:
    Out.Rd = static_cast<Reg>(P[1] >> 4);
    Out.Rs = static_cast<Reg>(P[1] & 0x0F);
    decodeMem(P + 2, Out.Mem);
    break;
  }
  return true;
}

unsigned janitizer::disp32Offset(Opcode Op) {
  switch (layoutOf(Op)) {
  case Layout::Rel32:
    return 1;
  case Layout::RegMem:
  case Layout::RegRegMem:
    return 4; // op, rd(/rs), membyte0, membyte1, disp...
  case Layout::Mem:
    return 3; // op, membyte0, membyte1, disp...
  default:
    return ~0u;
  }
}

unsigned janitizer::imm64Offset(Opcode Op) {
  switch (layoutOf(Op)) {
  case Layout::RegImm64:
    return 2;
  case Layout::Imm64:
    return 1;
  default:
    return ~0u;
  }
}
