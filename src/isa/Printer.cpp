//===- isa/Printer.cpp ----------------------------------------------------==//

#include "isa/Printer.h"

#include "support/Format.h"

using namespace janitizer;

std::string janitizer::printMemOperand(const MemOperand &M) {
  std::string S = "[";
  bool First = true;
  if (M.PCRel) {
    S += "pc";
    First = false;
  }
  if (M.HasBase) {
    if (!First)
      S += " + ";
    S += regName(M.Base);
    First = false;
  }
  if (M.HasIndex) {
    if (!First)
      S += " + ";
    S += regName(M.Index);
    if (M.ScaleLog2 != 0)
      S += formatString("*%u", 1u << M.ScaleLog2);
    First = false;
  }
  if (M.Disp != 0 || First) {
    if (!First)
      S += M.Disp < 0 ? " - " : " + ";
    int64_t D = M.Disp;
    if (!First && D < 0)
      D = -D;
    S += formatString("%lld", static_cast<long long>(D));
  }
  S += "]";
  return S;
}

std::string janitizer::printInstruction(const Instruction &I) {
  const char *Name = opcodeName(I.Op);
  switch (I.Op) {
  case Opcode::NOP:
  case Opcode::HLT:
  case Opcode::PUSHF:
  case Opcode::POPF:
  case Opcode::RET:
    return Name;
  case Opcode::MOV_RR:
  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::SHL:
  case Opcode::SHR:
  case Opcode::MUL:
  case Opcode::DIV:
  case Opcode::CMP:
  case Opcode::TEST:
    return formatString("%s %s, %s", Name, regName(I.Rd), regName(I.Rs));
  case Opcode::MOV_RI64:
  case Opcode::MOV_RI32:
  case Opcode::ADDI:
  case Opcode::SUBI:
  case Opcode::ANDI:
  case Opcode::ORI:
  case Opcode::XORI:
  case Opcode::SHLI:
  case Opcode::SHRI:
  case Opcode::MULI:
  case Opcode::CMPI:
  case Opcode::TESTI:
    return formatString("%s %s, %lld", Name, regName(I.Rd),
                        static_cast<long long>(I.Imm));
  case Opcode::LEA:
  case Opcode::LD1:
  case Opcode::LD2:
  case Opcode::LD4:
  case Opcode::LD8:
    return formatString("%s %s, %s", Name, regName(I.Rd),
                        printMemOperand(I.Mem).c_str());
  case Opcode::ST1:
  case Opcode::ST2:
  case Opcode::ST4:
  case Opcode::ST8:
    return formatString("%s %s, %s", Name, printMemOperand(I.Mem).c_str(),
                        regName(I.Rd));
  case Opcode::JMP:
  case Opcode::JE:
  case Opcode::JNE:
  case Opcode::JL:
  case Opcode::JLE:
  case Opcode::JG:
  case Opcode::JGE:
  case Opcode::JB:
  case Opcode::JAE:
  case Opcode::CALL:
    return formatString("%s %+lld", Name, static_cast<long long>(I.Imm));
  case Opcode::CALLR:
  case Opcode::JMPR:
  case Opcode::PUSH:
  case Opcode::POP:
    return formatString("%s %s", Name, regName(I.Rd));
  case Opcode::CALLM:
  case Opcode::JMPM:
    return formatString("%s %s", Name, printMemOperand(I.Mem).c_str());
  case Opcode::SYSCALL:
  case Opcode::TRAP:
    return formatString("%s %lld", Name, static_cast<long long>(I.Imm));
  case Opcode::PUSHI64:
    return formatString("%s %lld", Name, static_cast<long long>(I.Imm));
  case Opcode::CAS:
    return formatString("%s %s, %s, %s", Name, regName(I.Rd), regName(I.Rs),
                        printMemOperand(I.Mem).c_str());
  }
  return Name;
}
