//===- isa/Opcodes.h - JISA opcode set and static properties --------------===//
///
/// \file
/// JISA is a variable-length-encoded 64-bit ISA with x86-style arithmetic
/// flags. Variable-length encoding is deliberate: it keeps the distinction
/// between "any byte", "instruction boundary" and "function boundary"
/// meaningful for the CFI target-reduction (AIR) experiments, exactly as on
/// x86-64 in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_ISA_OPCODES_H
#define JANITIZER_ISA_OPCODES_H

#include <cstdint>

namespace janitizer {

enum class Opcode : uint8_t {
  // Misc.
  NOP = 0x00,
  HLT = 0x01,
  // Data movement.
  MOV_RR = 0x02,  ///< rd = rs
  MOV_RI64 = 0x03,///< rd = imm64
  MOV_RI32 = 0x04,///< rd = sext(imm32)
  LEA = 0x05,     ///< rd = effective address (never sets flags)
  LD1 = 0x06,     ///< rd = zext(*mem, 1 byte)
  LD2 = 0x07,
  LD4 = 0x08,
  LD8 = 0x09,
  ST1 = 0x0A,     ///< *mem = rs (1 byte)
  ST2 = 0x0B,
  ST4 = 0x0C,
  ST8 = 0x0D,
  PUSHF = 0x0E,   ///< push arithmetic flags
  POPF = 0x0F,    ///< pop arithmetic flags
  // ALU register-register (all

  // write the full arithmetic-flag set).
  ADD = 0x10,
  SUB = 0x11,
  AND = 0x12,
  OR = 0x13,
  XOR = 0x14,
  SHL = 0x15,
  SHR = 0x16,
  MUL = 0x17,
  DIV = 0x18,
  CMP = 0x19,     ///< SUB without writeback
  TEST = 0x1A,    ///< AND without writeback
  // ALU register-immediate32 counterparts.
  ADDI = 0x20,
  SUBI = 0x21,
  ANDI = 0x22,
  ORI = 0x23,
  XORI = 0x24,
  SHLI = 0x25,
  SHRI = 0x26,
  MULI = 0x27,
  CMPI = 0x28,
  TESTI = 0x29,
  // Control transfer.
  JMP = 0x30,     ///< pc-relative direct jump
  JE = 0x31,
  JNE = 0x32,
  JL = 0x33,
  JLE = 0x34,
  JG = 0x35,
  JGE = 0x36,
  JB = 0x37,      ///< unsigned below (CF)
  JAE = 0x38,     ///< unsigned above-or-equal (!CF)
  CALL = 0x40,    ///< pc-relative direct call (pushes return address)
  CALLR = 0x41,   ///< indirect call through register
  CALLM = 0x42,   ///< indirect call through memory
  JMPR = 0x43,    ///< indirect jump through register
  JMPM = 0x44,    ///< indirect jump through memory
  RET = 0x45,     ///< pop return address and jump
  PUSH = 0x46,
  POP = 0x47,
  SYSCALL = 0x48, ///< guest->host service call, number in the operand byte
  PUSHI64 = 0x49, ///< push imm64 (used by PLT lazy-binding stubs)
  TRAP = 0x4A,    ///< raise a VM event (tool-inserted violation reports)
  CAS = 0x4B,     ///< atomic: if *mem == rd then *mem = rs, ZF=1; rd = old
};

/// Classification of control-transfer instructions.
enum class CTIKind : uint8_t {
  None,
  DirectJump,
  CondJump,
  DirectCall,
  IndirectCall, ///< CALLR / CALLM
  IndirectJump, ///< JMPR / JMPM
  Return,
  Halt,
  Trap,
};

/// Returns the mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// Returns true if \p Op denotes a valid opcode byte.
bool isValidOpcode(uint8_t Byte);

/// Control-transfer classification (syscalls are not CTIs).
CTIKind ctiKind(Opcode Op);

/// True for any instruction that ends a basic block.
inline bool isTerminator(Opcode Op) { return ctiKind(Op) != CTIKind::None; }

/// True if the instruction reads guest memory (loads; CALLM/JMPM read their
/// target slot; POP/POPF/RET read the stack).
bool readsMemory(Opcode Op);

/// True if the instruction writes guest memory (stores; PUSH-family and CALL
/// write the stack).
bool writesMemory(Opcode Op);

/// True if the instruction is a plain data load or store (LD*/ST*) — the
/// class a memory sanitizer instruments. Stack push/pop and control flow are
/// excluded, matching ASan, which does not check stack engine traffic.
bool isDataMemAccess(Opcode Op);

/// Size in bytes accessed by LD*/ST*; 0 otherwise.
unsigned memAccessSize(Opcode Op);

/// True if \p Op is a store (ST1..ST8).
bool isStore(Opcode Op);

/// True if executing \p Op overwrites the arithmetic flags.
bool writesFlags(Opcode Op);

/// True if executing \p Op observes the arithmetic flags.
bool readsFlags(Opcode Op);

/// True if the encoding carries a memory operand.
bool hasMemOperand(Opcode Op);

/// How the template-JIT tier lowers an opcode (DESIGN.md §5i).
enum class JitStencil : uint8_t {
  Inline, ///< emitted as a host-x64 stencil, no helper round trip
  Helper, ///< routed through a C++ helper (fault ordering / host services)
};

/// Stencil classification for the template-JIT. Helper opcodes are the
/// ones whose interpreter semantics involve host services (SYSCALL), event
/// plumbing (TRAP), multi-step atomics (CAS), or fault-before-result
/// ordering that a flat stencil cannot replicate (DIV).
JitStencil jitStencil(Opcode Op);

} // namespace janitizer

#endif // JANITIZER_ISA_OPCODES_H
