//===- isa/Opcodes.cpp ----------------------------------------------------==//

#include "isa/Opcodes.h"

#include "support/Error.h"

using namespace janitizer;

const char *janitizer::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::NOP: return "nop";
  case Opcode::HLT: return "hlt";
  case Opcode::MOV_RR: return "mov";
  case Opcode::MOV_RI64: return "movq";
  case Opcode::MOV_RI32: return "movi";
  case Opcode::LEA: return "lea";
  case Opcode::LD1: return "ld1";
  case Opcode::LD2: return "ld2";
  case Opcode::LD4: return "ld4";
  case Opcode::LD8: return "ld8";
  case Opcode::ST1: return "st1";
  case Opcode::ST2: return "st2";
  case Opcode::ST4: return "st4";
  case Opcode::ST8: return "st8";
  case Opcode::PUSHF: return "pushf";
  case Opcode::POPF: return "popf";
  case Opcode::ADD: return "add";
  case Opcode::SUB: return "sub";
  case Opcode::AND: return "and";
  case Opcode::OR: return "or";
  case Opcode::XOR: return "xor";
  case Opcode::SHL: return "shl";
  case Opcode::SHR: return "shr";
  case Opcode::MUL: return "mul";
  case Opcode::DIV: return "div";
  case Opcode::CMP: return "cmp";
  case Opcode::TEST: return "test";
  case Opcode::ADDI: return "addi";
  case Opcode::SUBI: return "subi";
  case Opcode::ANDI: return "andi";
  case Opcode::ORI: return "ori";
  case Opcode::XORI: return "xori";
  case Opcode::SHLI: return "shli";
  case Opcode::SHRI: return "shri";
  case Opcode::MULI: return "muli";
  case Opcode::CMPI: return "cmpi";
  case Opcode::TESTI: return "testi";
  case Opcode::JMP: return "jmp";
  case Opcode::JE: return "je";
  case Opcode::JNE: return "jne";
  case Opcode::JL: return "jl";
  case Opcode::JLE: return "jle";
  case Opcode::JG: return "jg";
  case Opcode::JGE: return "jge";
  case Opcode::JB: return "jb";
  case Opcode::JAE: return "jae";
  case Opcode::CALL: return "call";
  case Opcode::CALLR: return "callr";
  case Opcode::CALLM: return "callm";
  case Opcode::JMPR: return "jmpr";
  case Opcode::JMPM: return "jmpm";
  case Opcode::RET: return "ret";
  case Opcode::PUSH: return "push";
  case Opcode::POP: return "pop";
  case Opcode::SYSCALL: return "syscall";
  case Opcode::PUSHI64: return "pushq";
  case Opcode::TRAP: return "trap";
  case Opcode::CAS: return "cas";
  }
  JZ_UNREACHABLE("unknown opcode");
}

bool janitizer::isValidOpcode(uint8_t Byte) {
  if (Byte <= 0x0F)
    return true;
  if (Byte >= 0x10 && Byte <= 0x1A)
    return true;
  if (Byte >= 0x20 && Byte <= 0x29)
    return true;
  if (Byte >= 0x30 && Byte <= 0x38)
    return true;
  if (Byte >= 0x40 && Byte <= 0x4B)
    return true;
  return false;
}

CTIKind janitizer::ctiKind(Opcode Op) {
  switch (Op) {
  case Opcode::JMP:
    return CTIKind::DirectJump;
  case Opcode::JE:
  case Opcode::JNE:
  case Opcode::JL:
  case Opcode::JLE:
  case Opcode::JG:
  case Opcode::JGE:
  case Opcode::JB:
  case Opcode::JAE:
    return CTIKind::CondJump;
  case Opcode::CALL:
    return CTIKind::DirectCall;
  case Opcode::CALLR:
  case Opcode::CALLM:
    return CTIKind::IndirectCall;
  case Opcode::JMPR:
  case Opcode::JMPM:
    return CTIKind::IndirectJump;
  case Opcode::RET:
    return CTIKind::Return;
  case Opcode::HLT:
    return CTIKind::Halt;
  case Opcode::TRAP:
    return CTIKind::Trap;
  default:
    return CTIKind::None;
  }
}

bool janitizer::readsMemory(Opcode Op) {
  switch (Op) {
  case Opcode::LD1:
  case Opcode::LD2:
  case Opcode::LD4:
  case Opcode::LD8:
  case Opcode::CALLM:
  case Opcode::JMPM:
  case Opcode::POP:
  case Opcode::POPF:
  case Opcode::RET:
  case Opcode::CAS:
    return true;
  default:
    return false;
  }
}

bool janitizer::writesMemory(Opcode Op) {
  switch (Op) {
  case Opcode::ST1:
  case Opcode::ST2:
  case Opcode::ST4:
  case Opcode::ST8:
  case Opcode::PUSH:
  case Opcode::PUSHF:
  case Opcode::PUSHI64:
  case Opcode::CALL:
  case Opcode::CALLR:
  case Opcode::CALLM:
  case Opcode::CAS:
    return true;
  default:
    return false;
  }
}

bool janitizer::isDataMemAccess(Opcode Op) { return memAccessSize(Op) != 0; }

unsigned janitizer::memAccessSize(Opcode Op) {
  switch (Op) {
  case Opcode::LD1:
  case Opcode::ST1:
    return 1;
  case Opcode::LD2:
  case Opcode::ST2:
    return 2;
  case Opcode::LD4:
  case Opcode::ST4:
    return 4;
  case Opcode::LD8:
  case Opcode::ST8:
  case Opcode::CAS: // reads and conditionally writes one 64-bit word
    return 8;
  default:
    return 0;
  }
}

bool janitizer::isStore(Opcode Op) {
  switch (Op) {
  case Opcode::ST1:
  case Opcode::ST2:
  case Opcode::ST4:
  case Opcode::ST8:
    return true;
  default:
    return false;
  }
}

bool janitizer::writesFlags(Opcode Op) {
  uint8_t B = static_cast<uint8_t>(Op);
  if (B >= 0x10 && B <= 0x29)
    return true; // All ALU forms define the whole flag set.
  return Op == Opcode::POPF || Op == Opcode::CAS;
}

bool janitizer::readsFlags(Opcode Op) {
  if (ctiKind(Op) == CTIKind::CondJump)
    return true;
  return Op == Opcode::PUSHF;
}

bool janitizer::hasMemOperand(Opcode Op) {
  switch (Op) {
  case Opcode::LEA:
  case Opcode::LD1:
  case Opcode::LD2:
  case Opcode::LD4:
  case Opcode::LD8:
  case Opcode::ST1:
  case Opcode::ST2:
  case Opcode::ST4:
  case Opcode::ST8:
  case Opcode::CALLM:
  case Opcode::JMPM:
  case Opcode::CAS:
    return true;
  default:
    return false;
  }
}

janitizer::JitStencil janitizer::jitStencil(Opcode Op) {
  switch (Op) {
  case Opcode::SYSCALL: // host service dispatch
  case Opcode::TRAP:    // VM event plumbing into the tool
  case Opcode::CAS:     // multi-step atomic against guest memory
  case Opcode::DIV:     // charges cycles before the divide-by-zero fault
    return JitStencil::Helper;
  default:
    return JitStencil::Inline;
  }
}
