//===- isa/Instruction.cpp ------------------------------------------------==//

#include "isa/Instruction.h"

using namespace janitizer;

static uint16_t memRegs(const MemOperand &M) {
  uint16_t Mask = 0;
  if (M.HasBase)
    Mask |= regBit(M.Base);
  if (M.HasIndex)
    Mask |= regBit(M.Index);
  return Mask;
}

uint16_t janitizer::regsRead(const Instruction &I) {
  uint16_t Mask = 0;
  switch (I.Op) {
  case Opcode::MOV_RR:
    Mask |= regBit(I.Rs);
    break;
  case Opcode::LEA:
  case Opcode::LD1:
  case Opcode::LD2:
  case Opcode::LD4:
  case Opcode::LD8:
    Mask |= memRegs(I.Mem);
    break;
  case Opcode::ST1:
  case Opcode::ST2:
  case Opcode::ST4:
  case Opcode::ST8:
    Mask |= memRegs(I.Mem) | regBit(I.Rd); // Rd is the stored value.
    break;
  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::SHL:
  case Opcode::SHR:
  case Opcode::MUL:
  case Opcode::DIV:
  case Opcode::CMP:
  case Opcode::TEST:
    Mask |= regBit(I.Rd) | regBit(I.Rs);
    break;
  case Opcode::ADDI:
  case Opcode::SUBI:
  case Opcode::ANDI:
  case Opcode::ORI:
  case Opcode::XORI:
  case Opcode::SHLI:
  case Opcode::SHRI:
  case Opcode::MULI:
  case Opcode::CMPI:
  case Opcode::TESTI:
    Mask |= regBit(I.Rd);
    break;
  case Opcode::CALLR:
  case Opcode::JMPR:
    Mask |= regBit(I.Rd);
    break;
  case Opcode::CALLM:
  case Opcode::JMPM:
    Mask |= memRegs(I.Mem);
    break;
  case Opcode::CAS:
    // Rd is the comparand, Rs the replacement value.
    Mask |= memRegs(I.Mem) | regBit(I.Rd) | regBit(I.Rs);
    break;
  case Opcode::PUSH:
    Mask |= regBit(I.Rd);
    break;
  case Opcode::SYSCALL:
    // Syscalls may read the whole argument register set.
    Mask |= ArgRegMask;
    break;
  default:
    break;
  }
  // Stack engine traffic reads SP.
  switch (I.Op) {
  case Opcode::PUSH:
  case Opcode::POP:
  case Opcode::PUSHF:
  case Opcode::POPF:
  case Opcode::PUSHI64:
  case Opcode::CALL:
  case Opcode::CALLR:
  case Opcode::CALLM:
  case Opcode::RET:
    Mask |= regBit(Reg::SP);
    break;
  default:
    break;
  }
  return Mask;
}

uint16_t janitizer::regsWritten(const Instruction &I) {
  uint16_t Mask = 0;
  switch (I.Op) {
  case Opcode::MOV_RR:
  case Opcode::MOV_RI64:
  case Opcode::MOV_RI32:
  case Opcode::LEA:
  case Opcode::LD1:
  case Opcode::LD2:
  case Opcode::LD4:
  case Opcode::LD8:
  case Opcode::POP:
    Mask |= regBit(I.Rd);
    break;
  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::SHL:
  case Opcode::SHR:
  case Opcode::MUL:
  case Opcode::DIV:
  case Opcode::ADDI:
  case Opcode::SUBI:
  case Opcode::ANDI:
  case Opcode::ORI:
  case Opcode::XORI:
  case Opcode::SHLI:
  case Opcode::SHRI:
  case Opcode::MULI:
    Mask |= regBit(I.Rd);
    break;
  case Opcode::SYSCALL:
    Mask |= regBit(Reg::R0); // Result register.
    break;
  case Opcode::CAS:
    Mask |= regBit(I.Rd); // Receives the old memory value.
    break;
  default:
    break;
  }
  switch (I.Op) {
  case Opcode::PUSH:
  case Opcode::POP:
  case Opcode::PUSHF:
  case Opcode::POPF:
  case Opcode::PUSHI64:
  case Opcode::CALL:
  case Opcode::CALLR:
  case Opcode::CALLM:
  case Opcode::RET:
    Mask |= regBit(Reg::SP);
    break;
  default:
    break;
  }
  return Mask;
}
