//===- isa/Printer.h - Textual disassembly of JISA instructions -----------===//
///
/// \file
/// Renders decoded instructions in the same syntax the assembler accepts, so
/// print->parse round-trips are exact.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_ISA_PRINTER_H
#define JANITIZER_ISA_PRINTER_H

#include "isa/Instruction.h"

#include <string>

namespace janitizer {

/// Renders \p I as assembly text (no address prefix).
std::string printInstruction(const Instruction &I);

/// Renders a memory operand, e.g. "[r1 + r2*8 + 16]" or "[pc + 0x40]".
std::string printMemOperand(const MemOperand &M);

} // namespace janitizer

#endif // JANITIZER_ISA_PRINTER_H
