//===- baselines/BinCFI.cpp -----------------------------------------------==//

#include "baselines/BinCFI.h"

#include "analysis/CodeScan.h"
#include "support/Endian.h"
#include "support/Format.h"

#include <set>

using namespace janitizer;

namespace {

SeqInstr sPush(Reg R) {
  SeqInstr S;
  S.I.Op = Opcode::PUSH;
  S.I.Rd = R;
  return S;
}
SeqInstr sPop(Reg R) {
  SeqInstr S;
  S.I.Op = Opcode::POP;
  S.I.Rd = R;
  return S;
}
SeqInstr sOp(Opcode Op) {
  SeqInstr S;
  S.I.Op = Op;
  return S;
}
SeqInstr sRI(Opcode Op, Reg R, int64_t Imm) {
  SeqInstr S;
  S.I.Op = Op;
  S.I.Rd = R;
  S.I.Imm = Imm;
  return S;
}
SeqInstr sMov(Reg Rd, Reg Rs) {
  SeqInstr S;
  S.I.Op = Opcode::MOV_RR;
  S.I.Rd = Rd;
  S.I.Rs = Rs;
  return S;
}

class BinCfiClient : public RewriteClient {
public:
  explicit BinCfiClient(const Module &Mod) : Mod(Mod) {
    // Span/bitmap sizing must happen before layout; generously
    // overestimate (the exact extent lands in the metadata slot and
    // bounds all bitmap reads).
    SpanEstimate = (Mod.linkEnd() - Mod.LinkBase) * 12 + 0x10000;
    ModuleCFG Empty;
    WindowHits = scanForCodePointers(Mod, Empty).WindowHits;
  }

  DisasmMode disasmMode() const override { return DisasmMode::LinearSweep; }

  InsertSeq instrumentBefore(const Module &M, const Instruction &I,
                             uint64_t OldAddr) override {
    Boundaries.insert(OldAddr);
    if (PendingCallSucc) {
      CallSucc.insert(OldAddr);
      PendingCallSucc = false;
    }
    CTIKind K = ctiKind(I.Op);
    if (K == CTIKind::DirectCall || K == CTIKind::IndirectCall)
      PendingCallSucc = true;

    switch (K) {
    case CTIKind::IndirectCall:
    case CTIKind::IndirectJump:
      return checkSeq(I, /*RetBitmap=*/false);
    case CTIKind::Return:
      return checkSeq(I, /*RetBitmap=*/true);
    default:
      return {};
    }
  }

  unsigned extraSectionCount() const override { return 3; }

  uint64_t extraSectionSize(unsigned Idx, const Module &M) override {
    if (Idx == 0)
      return 16; // [module base][exact span]
    return (SpanEstimate + 7) / 8;
  }

  std::vector<ExtraReloc> extraRelocs(const Module &M) override {
    return {{0, 0, static_cast<int64_t>(M.LinkBase)}};
  }

  std::vector<uint8_t>
  buildExtraSection(unsigned Idx, const Module &OldMod, const Module &NewMod,
                    const std::map<uint64_t, uint64_t> &OldToNew) override {
    uint64_t Span = NewMod.linkEnd() - NewMod.LinkBase;
    if (Span > SpanEstimate)
      Span = SpanEstimate;
    if (Idx == 0) {
      std::vector<uint8_t> Buf(16, 0);
      patchLE64(Buf, 8, Span);
      return Buf;
    }
    std::vector<uint8_t> Bitmap((SpanEstimate + 7) / 8, 0);
    auto SetBit = [&](uint64_t OldVA) {
      auto It = OldToNew.find(OldVA);
      if (It == OldToNew.end())
        return;
      uint64_t Off = It->second - NewMod.LinkBase;
      if (Off / 8 < Bitmap.size())
        Bitmap[Off / 8] |= static_cast<uint8_t>(1u << (Off % 8));
    };
    if (Idx == 1) {
      // Forward targets: scan hits at instruction boundaries, plus
      // function symbols.
      for (uint64_t V : WindowHits)
        if (Boundaries.count(V))
          SetBit(V);
      for (const Symbol &S : OldMod.Symbols)
        if (S.IsFunction)
          SetBit(S.Value);
      // PLT stubs stay at their original addresses and are legal targets.
      for (const PltEntry &P : OldMod.Plt) {
        uint64_t Off = P.StubVA - NewMod.LinkBase;
        if (Off / 8 < Bitmap.size())
          Bitmap[Off / 8] |= static_cast<uint8_t>(1u << (Off % 8));
      }
    } else {
      // Return targets: any call-preceded instruction.
      for (uint64_t V : CallSucc)
        SetBit(V);
    }
    return Bitmap;
  }

private:
  InsertSeq checkSeq(const Instruction &I, bool RetBitmap) {
    // Scratch: three registers not used by the CTI operand.
    uint16_t Banned = regBit(Reg::SP) | regBit(Reg::TP);
    if (I.Op == Opcode::CALLR || I.Op == Opcode::JMPR)
      Banned |= regBit(I.Rd);
    if (I.Op == Opcode::CALLM || I.Op == Opcode::JMPM) {
      if (I.Mem.HasBase)
        Banned |= regBit(I.Mem.Base);
      if (I.Mem.HasIndex)
        Banned |= regBit(I.Mem.Index);
    }
    Reg S[3];
    unsigned Found = 0;
    for (unsigned R = 0; R < 14 && Found < 3; ++R)
      if (!(Banned & (1u << R)))
        S[Found++] = static_cast<Reg>(R);
    Reg S0 = S[0], S1 = S[1], S2 = S[2];

    InsertSeq Seq;
    Seq.push_back(sPush(S0));
    Seq.push_back(sPush(S1));
    Seq.push_back(sPush(S2));
    Seq.push_back(sOp(Opcode::PUSHF));
    constexpr unsigned Pushed = 4;

    // Target into S0.
    switch (I.Op) {
    case Opcode::CALLR:
    case Opcode::JMPR:
      Seq.push_back(sMov(S0, I.Rd));
      break;
    case Opcode::CALLM:
    case Opcode::JMPM: {
      SeqInstr Lea;
      Lea.I.Op = Opcode::LEA;
      Lea.I.Rd = S0;
      Lea.I.Mem = I.Mem;
      if ((I.Mem.HasBase && I.Mem.Base == Reg::SP) ||
          (I.Mem.HasIndex && I.Mem.Index == Reg::SP))
        Lea.I.Mem.Disp += static_cast<int32_t>(8 * Pushed);
      Seq.push_back(Lea);
      SeqInstr Ld;
      Ld.I.Op = Opcode::LD8;
      Ld.I.Rd = S0;
      Ld.I.Mem.HasBase = true;
      Ld.I.Mem.Base = S0;
      Seq.push_back(Ld);
      break;
    }
    case Opcode::RET: {
      SeqInstr Ld;
      Ld.I.Op = Opcode::LD8;
      Ld.I.Rd = S0;
      Ld.I.Mem.HasBase = true;
      Ld.I.Mem.Base = Reg::SP;
      Ld.I.Mem.Disp = 8 * Pushed;
      Seq.push_back(Ld);
      break;
    }
    default:
      break;
    }

    // Module base and exact span from the metadata slot.
    auto MetaLoad = [&](Reg Rd, int32_t Off) {
      SeqInstr Ld;
      Ld.I.Op = Opcode::LD8;
      Ld.I.Rd = Rd;
      Ld.I.Mem.Disp = Off;
      Ld.ExtraSectionIdx = 0;
      Ld.PcRelExtra = Mod.IsPIC;
      return Ld;
    };
    Seq.push_back(MetaLoad(S1, 0)); // load base
    {
      SeqInstr Sub;
      Sub.I.Op = Opcode::SUB;
      Sub.I.Rd = S0;
      Sub.I.Rs = S1;
      Seq.push_back(Sub);
    }
    Seq.push_back(MetaLoad(S1, 8)); // span
    {
      SeqInstr Cmp;
      Cmp.I.Op = Opcode::CMP;
      Cmp.I.Rd = S0;
      Cmp.I.Rs = S1;
      Seq.push_back(Cmp);
    }
    size_t OutOfModule = Seq.size();
    Seq.push_back(sOp(Opcode::JAE)); // leaving the module: allowed

    Seq.push_back(sMov(S1, S0));
    Seq.push_back(sRI(Opcode::SHRI, S1, 3));
    {
      SeqInstr Ld;
      Ld.I.Op = Opcode::LD1;
      Ld.I.Rd = S1;
      Ld.I.Mem.HasIndex = true;
      Ld.I.Mem.Index = S1;
      Ld.ExtraSectionIdx = RetBitmap ? 2 : 1;
      Ld.PcRelExtra = Mod.IsPIC;
      if (!Mod.IsPIC)
        Ld.I.Mem.Disp = 0; // absolute base patched from the extra section
      Seq.push_back(Ld);
    }
    Seq.push_back(sMov(S2, S0));
    Seq.push_back(sRI(Opcode::ANDI, S2, 7));
    {
      SeqInstr Shr;
      Shr.I.Op = Opcode::SHR;
      Shr.I.Rd = S1;
      Shr.I.Rs = S2;
      Seq.push_back(Shr);
    }
    Seq.push_back(sRI(Opcode::TESTI, S1, 1));
    size_t BitSet = Seq.size();
    Seq.push_back(sOp(Opcode::JNE));
    Seq.push_back(sRI(Opcode::TRAP, Reg::R0,
                      static_cast<int64_t>(TrapCode::CfiViolation)));
    size_t Restores = Seq.size();
    Seq.push_back(sOp(Opcode::POPF));
    Seq.push_back(sPop(S2));
    Seq.push_back(sPop(S1));
    Seq.push_back(sPop(S0));
    Seq[OutOfModule].JumpToSeqIdx = static_cast<int32_t>(Restores);
    Seq[BitSet].JumpToSeqIdx = static_cast<int32_t>(Restores);
    return Seq;
  }

  const Module &Mod;
  uint64_t SpanEstimate = 0;
  std::set<uint64_t> WindowHits;
  std::set<uint64_t> Boundaries;
  std::set<uint64_t> CallSucc;
  bool PendingCallSucc = false;
};

} // namespace

ErrorOr<RewriteResult> janitizer::binCfiModule(const Module &Mod) {
  BinCfiClient Client(Mod);
  return rewriteModule(Mod, Client);
}

Error janitizer::binCfiProgram(const ModuleStore &Store,
                               const std::string &ExeName, ModuleStore &Out) {
  std::vector<std::string> Work = {ExeName};
  std::set<std::string> Seen;
  while (!Work.empty()) {
    std::string Name = Work.back();
    Work.pop_back();
    if (!Seen.insert(Name).second)
      continue;
    const Module *Mod = Store.find(Name);
    if (!Mod)
      return makeError(formatString("module '%s' not found", Name.c_str()));
    for (const std::string &Dep : Mod->Needed)
      Work.push_back(Dep);
    auto RW = binCfiModule(*Mod);
    if (!RW)
      return RW.takeError();
    Out.add(std::move(RW->NewMod));
  }
  return Error::success();
}

AirResult janitizer::binCfiStaticAir(const std::vector<const Module *> &Mods) {
  AirResult Out;
  uint64_t S = 0;
  struct PerMod {
    const Module *Mod;
    ModuleCFG CFG;
    uint64_t FwdTargets = 0;
    uint64_t RetTargets = 0;
    uint64_t Sites = 0;
    uint64_t RetSites = 0;
  };
  std::vector<PerMod> Infos;
  for (const Module *Mod : Mods) {
    PerMod PM{Mod, buildCFG(*Mod)};
    S += Mod->codeSize();
    std::set<uint64_t> Hits = scanForCodePointers(*Mod, PM.CFG).WindowHits;
    for (uint64_t V : Hits)
      if (PM.CFG.isInstructionBoundary(V))
        ++PM.FwdTargets;
    for (const Symbol &Sym : Mod->Symbols)
      if (Sym.IsFunction)
        ++PM.FwdTargets;
    for (const auto &[_, BB] : PM.CFG.Blocks) {
      for (const DecodedInstr &DI : BB.Instrs) {
        switch (ctiKind(DI.I.Op)) {
        case CTIKind::IndirectCall:
        case CTIKind::IndirectJump:
          ++PM.Sites;
          break;
        case CTIKind::Return:
          ++PM.RetSites;
          break;
        case CTIKind::DirectCall:
          ++PM.RetTargets; // the following instruction is call-preceded
          break;
        default:
          break;
        }
      }
      if (BB.Term == CTIKind::IndirectCall)
        ++PM.RetTargets;
    }
    Infos.push_back(std::move(PM));
  }
  if (!S)
    return Out;
  Out.CodeBytes = S;
  // Call-preceded instructions anywhere are valid return targets under
  // BinCFI (cross-module returns are always allowed).
  uint64_t AllRetTargets = 0;
  for (const PerMod &PM : Infos)
    AllRetTargets += PM.RetTargets;

  double Sum = 0.0;
  uint64_t N = 0;
  for (const PerMod &PM : Infos) {
    // Forward: own scan hits plus every other module's exported surface
    // (cross-module transfers are unrestricted; approximate their target
    // set by the other modules' scan targets too).
    uint64_t Fwd = PM.FwdTargets;
    for (const PerMod &Other : Infos)
      if (&Other != &PM)
        Fwd += Other.FwdTargets;
    for (uint64_t K = 0; K < PM.Sites; ++K) {
      Sum += 1.0 - std::min<double>(Fwd, S) / S;
      ++N;
    }
    for (uint64_t K = 0; K < PM.RetSites; ++K) {
      Sum += 1.0 - std::min<double>(AllRetTargets, S) / S;
      ++N;
    }
  }
  Out.Sites = N;
  Out.Air = N ? Sum / N : 0.0;
  return Out;
}
