//===- baselines/StaticRewriter.h - Offline binary rewriting engine -------===//
///
/// \file
/// The static-only rewriting substrate the RetroWrite- and BinCFI-style
/// baselines are built on. It disassembles a module's executable sections
/// (recursive descent with full-coverage requirement, or BinCFI-style
/// linear sweep with one-byte resynchronization), lets a client insert
/// instruction sequences around each instruction, lays the instrumented
/// code out at fresh addresses, and fixes up:
///
///  - direct branch/call rel32s through the old->new address map
///    (unmapped targets are routed to a trap stub — the fate of a binary
///    whose disassembly was wrong);
///  - pc-relative memory operands (data targets keep their absolute
///    addresses; rewritten-code targets are remapped);
///  - 64-bit code-address immediates (symbolization heuristic, used in
///    the non-PIC sweep mode: any immediate that equals a decoded
///    instruction address is remapped — undecidable in general, which is
///    the §2.1 unsoundness);
///  - dynamic relocations, symbols and the entry point;
///  - 8-byte data words that look like code pointers (sweep mode only;
///    the PIC mode relies purely on relocations, which is exactly what
///    makes RetroWrite sound on PIC-only inputs).
///
/// Inserted sequences may reference client "extra sections" (shadow
/// tables, bitmaps) whose addresses are assigned during layout, via
/// displacement fixups.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_BASELINES_STATICREWRITER_H
#define JANITIZER_BASELINES_STATICREWRITER_H

#include "cfg/CFG.h"
#include "jelf/Module.h"
#include "support/Error.h"

#include <functional>
#include <map>
#include <vector>

namespace janitizer {

/// One instruction of an inserted sequence.
struct SeqInstr {
  Instruction I;
  /// For branches inside the sequence: index of the SeqInstr to target
  /// (may equal the sequence size, meaning "just after the sequence").
  int32_t JumpToSeqIdx = -1;
  /// When >= 0: add the base address of client extra section
  /// ExtraSectionIdx to the memory displacement at encode time.
  int32_t ExtraSectionIdx = -1;
  /// When true with ExtraSectionIdx: make the operand pc-relative to the
  /// extra section instead of absolute (for PIC modules).
  bool PcRelExtra = false;
  /// When true: encode the memory operand pc-relative to AbsTarget (a
  /// link-time VA), so the referenced address slides with the module. Used
  /// by the AOT client to keep address-carrying instrumentation constants
  /// (faulting-PC stashes, operand-target computations) correct in PIC
  /// modules, where an absolute immediate would go stale under a load
  /// slide.
  bool PcRelToAbs = false;
  uint64_t AbsTarget = 0;
  /// When >= 0: this instruction is a planted trap whose semantics live in
  /// an out-of-band manifest. The rewriter calls
  /// RewriteClient::placeTrapSite with this id and the instruction's final
  /// VA during encoding, so the client can record the site.
  int32_t TrapSiteId = -1;
};

using InsertSeq = std::vector<SeqInstr>;

enum class DisasmMode : uint8_t {
  Recursive,   ///< CFG-based; refuses on coverage gaps (RetroWrite)
  LinearSweep, ///< front-to-back with 1-byte resync (BinCFI)
  /// Janitizer-AOT (DESIGN.md §5j): the analyzer's CFG recipe decides
  /// what is code, the client's coversBlock() decides which blocks are
  /// statically proven and get laid out, and everything else — unproven
  /// blocks, coverage gaps, forced interposition entries — becomes a
  /// per-site TRAP(TierEnter) stub carrying the original PC, so execution
  /// degrades to the DBI tier instead of the rewrite being refused.
  RuleGuided,
};

/// Size in bytes of one tier-enter stub: a 2-byte TRAP(TierEnter)
/// followed by the 8-byte little-endian original (link-time) PC.
constexpr uint64_t TierStubSize = 10;

class RewriteClient {
public:
  virtual ~RewriteClient() = default;

  virtual DisasmMode disasmMode() const = 0;

  /// Sequence to insert before (and after) the instruction at \p OldAddr.
  virtual InsertSeq instrumentBefore(const Module &Mod, const Instruction &I,
                                     uint64_t OldAddr) {
    return {};
  }
  virtual InsertSeq instrumentAfter(const Module &Mod, const Instruction &I,
                                    uint64_t OldAddr) {
    return {};
  }

  /// Number of extra data sections the client wants.
  virtual unsigned extraSectionCount() const { return 0; }

  /// Builds the contents of extra section \p Idx once layout is final.
  /// \p OldToNew maps old instruction addresses to new ones; \p NewMod is
  /// the module under construction (sections already placed, extra
  /// sections already sized via extraSectionSize and located at their
  /// final addresses).
  virtual std::vector<uint8_t>
  buildExtraSection(unsigned Idx, const Module &OldMod, const Module &NewMod,
                    const std::map<uint64_t, uint64_t> &OldToNew) {
    return {};
  }

  /// Size in bytes of extra section \p Idx (must be known before layout).
  virtual uint64_t extraSectionSize(unsigned Idx, const Module &OldMod) {
    return 0;
  }

  /// Dynamic relocations to add to the rewritten module (e.g. a slot that
  /// receives the module's load base). Sites are relative to extra
  /// sections: (sectionIdx, offset, addend is a link VA).
  struct ExtraReloc {
    unsigned SectionIdx;
    uint64_t Offset;
    int64_t Addend;
  };
  virtual std::vector<ExtraReloc> extraRelocs(const Module &OldMod) {
    return {};
  }

  // --- RuleGuided mode only ----------------------------------------------

  /// True when the block starting at link VA \p BlockAddr is statically
  /// proven (has a rule-file entry) and may be laid out natively. Blocks
  /// answering false get a tier-enter stub instead.
  virtual bool coversBlock(uint64_t BlockAddr) const { return false; }

  /// Link VAs that must get a tier-enter stub even when covered —
  /// interposition sites (the sanitizer allocator entry points) whose
  /// calls must keep trapping out of native code on every visit.
  virtual std::vector<uint64_t> forceTrapEntries(const Module &OldMod) {
    return {};
  }

  /// Called during encoding for every SeqInstr carrying a TrapSiteId:
  /// \p TrapVA is the trap instruction's final link VA, \p NewI the
  /// already-remapped application instruction it guards, at \p NewAppAddr
  /// (original address \p OldAppAddr). The client records the site in its
  /// manifest.
  virtual void placeTrapSite(int32_t SiteId, uint64_t TrapVA,
                             const Instruction &NewI, uint64_t NewAppAddr,
                             uint64_t OldAppAddr) {}
};

struct RewriteResult {
  Module NewMod;
  std::map<uint64_t, uint64_t> OldToNew;
  /// New VA of the trap stub unmapped branch targets are routed to.
  uint64_t TrapStubVA = 0;
  /// Instruction count of the rewritten sections.
  size_t Instructions = 0;
  /// True when the sweep desynchronized somewhere (decoded through bytes
  /// that resynchronization had to skip) — a red flag the real tool would
  /// not see.
  bool SweepResynced = false;
  /// RuleGuided mode: stub VA -> original (link) PC for every per-site
  /// tier-enter stub planted for unproven/forced block heads.
  std::map<uint64_t, uint64_t> TierEnterStubs;
  /// RuleGuided mode: basic blocks laid out natively.
  size_t CoveredBlocks = 0;
  /// The fresh region everything the rewriter emitted lives in (link VAs,
  /// [start, end)): rewritten code, stubs and extra sections. The AOT
  /// runner's tier-exit predicate tests against this range.
  uint64_t NewRegionStart = 0;
  uint64_t NewRegionEnd = 0;
};

/// Rewrites \p Mod with \p Client. Fails (recursive mode) when coverage or
/// symbolization requirements are not met.
ErrorOr<RewriteResult> rewriteModule(const Module &Mod, RewriteClient &Client);

} // namespace janitizer

#endif // JANITIZER_BASELINES_STATICREWRITER_H
