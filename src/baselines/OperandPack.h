//===- baselines/OperandPack.h - Operand encoding for check hooks ---------===//
///
/// \file
/// Packs a memory operand (or register) into a hook payload word so a host
/// check can re-evaluate the address against machine state right before
/// the instruction executes.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_BASELINES_OPERANDPACK_H
#define JANITIZER_BASELINES_OPERANDPACK_H

#include "isa/Instruction.h"
#include "vm/Machine.h"

namespace janitizer {

/// Pack layout: [0:3]=base, [4:7]=index, [8:9]=scale, [10]=hasBase,
/// [11]=hasIndex, [12]=pcrel, [13]=isReg, [16:19]=reg, [24:31]=instr size,
/// [32:63]=disp.
inline uint64_t packOperand(const MemOperand &M, unsigned InstrSize) {
  return static_cast<uint64_t>(M.Base) |
         (static_cast<uint64_t>(M.Index) << 4) |
         (static_cast<uint64_t>(M.ScaleLog2) << 8) |
         (M.HasBase ? 1ull << 10 : 0) | (M.HasIndex ? 1ull << 11 : 0) |
         (M.PCRel ? 1ull << 12 : 0) |
         (static_cast<uint64_t>(InstrSize) << 24) |
         (static_cast<uint64_t>(static_cast<uint32_t>(M.Disp)) << 32);
}

inline uint64_t packRegOperand(Reg R) {
  return (1ull << 13) | (static_cast<uint64_t>(R) << 16);
}

/// Evaluates a packed operand: register value, or effective address of the
/// memory operand for the instruction at \p InstrAddr.
inline uint64_t evalPackedOperand(const Machine &M, uint64_t Packed,
                                  uint64_t InstrAddr) {
  if (Packed & (1ull << 13))
    return M.reg(static_cast<Reg>((Packed >> 16) & 0xF));
  MemOperand Mem;
  Mem.Base = static_cast<Reg>(Packed & 0xF);
  Mem.Index = static_cast<Reg>((Packed >> 4) & 0xF);
  Mem.ScaleLog2 = static_cast<uint8_t>((Packed >> 8) & 3);
  Mem.HasBase = (Packed >> 10) & 1;
  Mem.HasIndex = (Packed >> 11) & 1;
  Mem.PCRel = (Packed >> 12) & 1;
  unsigned Size = static_cast<unsigned>((Packed >> 24) & 0xFF);
  Mem.Disp = static_cast<int32_t>(static_cast<uint32_t>(Packed >> 32));
  return M.effectiveAddr(Mem, InstrAddr, Size);
}

/// Reads the 64-bit memory slot a packed memory operand designates (for
/// CALLM/JMPM targets).
inline uint64_t readPackedTargetSlot(const Machine &M, uint64_t Packed,
                                     uint64_t InstrAddr) {
  return M.Mem.read64(evalPackedOperand(M, Packed, InstrAddr));
}

} // namespace janitizer

#endif // JANITIZER_BASELINES_OPERANDPACK_H
