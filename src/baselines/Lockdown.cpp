//===- baselines/Lockdown.cpp ---------------------------------------------==//

#include "baselines/Lockdown.h"

#include "analysis/CodeScan.h"
#include "baselines/OperandPack.h"
#include "support/Format.h"

#include <algorithm>

using namespace janitizer;

void LockdownTool::onModuleLoad(DbiEngine &E, const LoadedModule &LM) {
  RtModule RM;
  RM.LM = &LM;
  LoadedCodeBytes += LM.Mod->codeSize();
  for (const Symbol &S : LM.Mod->Symbols) {
    if (S.IsFunction) {
      RM.FuncEntries.insert(LM.toRuntime(S.Value));
      RM.FuncSpans[LM.toRuntime(S.Value)] =
          LM.toRuntime(S.Value + std::max<uint64_t>(S.Size, 1));
    }
    if (S.Exported)
      RM.ExportsByAddr[LM.toRuntime(S.Value)] = S.Name;
  }
  for (const std::string &I : LM.Mod->ImportedSymbols)
    RM.Imports.insert(I);
  if (const Section *Plt = LM.Mod->section(SectionKind::Plt)) {
    RM.PltStart = LM.toRuntime(Plt->Addr);
    RM.PltEnd = RM.PltStart + Plt->size();
  }
  // The callback heuristic: code pointers materialized in data sections
  // are accepted as inter-module targets. This is Lockdown's 4-byte
  // sliding window over non-code sections — pointers that exist only as
  // code immediates are missed (§6.2.2).
  for (uint64_t V : scanDataSectionsForCodePointers(*LM.Mod))
    RM.DataScannedPointers.insert(LM.toRuntime(V));
  // Modules arriving after execution began came through dlopen; Lockdown
  // wraps dlsym, so their exports are legal targets without an import.
  RM.Dlopened = RunStarted;
  E.charge(LM.Mod->codeSize() / 4); // paid on every run: no offline phase
  Modules[LM.Id] = std::move(RM);
}

void LockdownTool::onCodeMapped(DbiEngine &E, uint64_t Addr, uint64_t Len) {
  JitRegions.push_back({Addr, Len});
  LoadedCodeBytes += Len;
}

const LockdownTool::RtModule *LockdownTool::moduleFor(uint64_t A) const {
  for (const auto &[_, RM] : Modules)
    if (RM.LM->containsRuntime(A))
      return &RM;
  return nullptr;
}

void LockdownTool::instrumentBlock(DbiEngine &E, CacheBlock &Block,
                                   BlockBuilder &B,
                                   const std::vector<DecodedInstrRT> &Instrs) {
  RunStarted = true;
  for (const DecodedInstrRT &DI : Instrs) {
    switch (ctiKind(DI.I.Op)) {
    case CTIKind::DirectCall:
      B.inlineHook(HookPushRet, DI.Addr + DI.I.Size, DI.Addr, 3);
      break;
    case CTIKind::IndirectCall: {
      uint64_t Packed = DI.I.Op == Opcode::CALLR
                            ? packRegOperand(DI.I.Rd)
                            : packOperand(DI.I.Mem, DI.I.Size);
      B.inlineHook(HookCheckCall, Packed, DI.Addr, 10);
      B.inlineHook(HookPushRet, DI.Addr + DI.I.Size, DI.Addr, 3);
      break;
    }
    case CTIKind::IndirectJump: {
      uint64_t Packed = DI.I.Op == Opcode::JMPR
                            ? packRegOperand(DI.I.Rd)
                            : packOperand(DI.I.Mem, DI.I.Size);
      B.inlineHook(HookCheckJump, Packed, DI.Addr, 10);
      break;
    }
    case CTIKind::Return: {
      bool LazyRet = false;
      if (const RtModule *RM = moduleFor(DI.Addr))
        LazyRet = RM->inPlt(DI.Addr);
      B.inlineHook(LazyRet ? HookLazyRet : HookCheckRet, 0, DI.Addr,
                   LazyRet ? 10 : 6);
      break;
    }
    default:
      break;
    }
    B.app(DI.I, DI.Addr);
  }
}

bool LockdownTool::checkCall(uint64_t From, uint64_t Target,
                             uint64_t &Allowed) const {
  const RtModule *FromMod = moduleFor(From);
  const RtModule *TgtMod = moduleFor(Target);
  if (!TgtMod) {
    // Dynamic code: Lockdown allows transfers into JIT regions it has
    // observed being mapped.
    for (auto [Addr, Len] : JitRegions)
      if (Target >= Addr && Target < Addr + Len) {
        Allowed = Len;
        return true;
      }
    Allowed = 1;
    return false;
  }
  if (FromMod == TgtMod) {
    Allowed = TgtMod->FuncEntries.size();
    return TgtMod->FuncEntries.count(Target) != 0;
  }
  if (Opts.StrongPolicy) {
    Allowed = TgtMod->ExportsByAddr.size() +
              TgtMod->DataScannedPointers.size();
    auto It = TgtMod->ExportsByAddr.find(Target);
    if (It != TgtMod->ExportsByAddr.end() && FromMod &&
        (FromMod->Imports.count(It->second) || TgtMod->Dlopened))
      return true;
    // Heuristic: pointers found in the destination module's data.
    return TgtMod->DataScannedPointers.count(Target) != 0;
  }
  // Weak policy: exports or any code byte of the destination module.
  Allowed = TgtMod->LM->Mod->codeSize();
  return TgtMod->ExportsByAddr.count(Target) ||
         TgtMod->LM->Mod->isCodeAddress(TgtMod->LM->toLink(Target));
}

void LockdownTool::violation(DbiEngine &E, const char *Kind, uint64_t From,
                             uint64_t Target) {
  E.recordViolation(static_cast<uint8_t>(TrapCode::CfiViolation), From,
                    Target, formatString("lockdown-%s", Kind));
}

HookAction LockdownTool::onHook(DbiEngine &E, const CacheOp &Op) {
  Machine &M = E.machine();
  uint64_t InstrAddr = Op.HookData[1];
  auto RecordSite = [&](CTIKind K, uint64_t Allowed) {
    if (SeenSites.insert(InstrAddr).second)
      ExecutedSites.push_back({InstrAddr, K, Allowed});
  };

  switch (Op.HookId) {
  case HookPushRet:
    ShadowStack.push_back(Op.HookData[0]);
    return HookAction::Continue;

  case HookCheckRet: {
    uint64_t Actual = M.Mem.read64(M.reg(Reg::SP));
    RecordSite(CTIKind::Return, 1);
    if (!ShadowStack.empty() && ShadowStack.back() == Actual) {
      ShadowStack.pop_back();
      return HookAction::Continue;
    }
    if (ShadowStack.empty() && Actual == layout::ExitSentinel)
      return HookAction::Continue;
    // No resynchronization: Lockdown treats a mismatch as an internal
    // inconsistency and gives up.
    StackBroken = true;
    violation(E, "shadow-stack", InstrAddr, Actual);
    return HookAction::Abort;
  }

  case HookCheckCall: {
    uint64_t Target;
    if (Op.HookData[0] & (1ull << 13))
      Target = evalPackedOperand(M, Op.HookData[0], InstrAddr);
    else
      Target = readPackedTargetSlot(M, Op.HookData[0], InstrAddr);
    uint64_t Allowed = 0;
    bool Ok = checkCall(InstrAddr, Target, Allowed);
    RecordSite(CTIKind::IndirectCall, Allowed);
    if (Ok)
      return HookAction::Continue;
    violation(E, "icall", InstrAddr, Target);
    return Opts.AbortOnViolation ? HookAction::Abort : HookAction::Violation;
  }

  case HookCheckJump: {
    uint64_t Target;
    if (Op.HookData[0] & (1ull << 13))
      Target = evalPackedOperand(M, Op.HookData[0], InstrAddr);
    else
      Target = readPackedTargetSlot(M, Op.HookData[0], InstrAddr);
    const RtModule *FromMod = moduleFor(InstrAddr);
    uint64_t Allowed = 1;
    bool Ok = false;
    if (FromMod && FromMod->inPlt(InstrAddr)) {
      // PLT transfer: lazy stub or inter-module call edge.
      if (FromMod->inPlt(Target)) {
        Allowed = FromMod->PltEnd - FromMod->PltStart;
        Ok = true;
      } else {
        Ok = checkCall(InstrAddr, Target, Allowed);
      }
    } else if (FromMod) {
      // Byte-granular same-function policy via the closest symbol.
      auto It = FromMod->FuncSpans.upper_bound(InstrAddr);
      if (It != FromMod->FuncSpans.begin()) {
        --It;
        Allowed = It->second - It->first;
        Ok = Target >= It->first && Target < It->second;
      }
      if (!Ok && FromMod->FuncEntries.count(Target)) {
        Allowed += FromMod->FuncEntries.size();
        Ok = true;
      }
    } else {
      for (auto [Addr, Len] : JitRegions)
        if (InstrAddr >= Addr && InstrAddr < Addr + Len) {
          Allowed = Len;
          Ok = Target >= Addr && Target < Addr + Len;
        }
    }
    RecordSite(CTIKind::IndirectJump, Allowed);
    if (Ok)
      return HookAction::Continue;
    violation(E, "ijump", InstrAddr, Target);
    return Opts.AbortOnViolation ? HookAction::Abort : HookAction::Violation;
  }

  case HookLazyRet: {
    uint64_t Target = M.Mem.read64(M.reg(Reg::SP));
    uint64_t Allowed = 0;
    bool Ok = checkCall(InstrAddr, Target, Allowed);
    RecordSite(CTIKind::IndirectCall, Allowed);
    if (Ok)
      return HookAction::Continue;
    violation(E, "lazy-bind", InstrAddr, Target);
    return Opts.AbortOnViolation ? HookAction::Abort : HookAction::Violation;
  }

  default:
    return HookAction::Continue;
  }
}

AirResult janitizer::lockdownDynamicAir(const LockdownTool &Tool) {
  AirResult Out;
  uint64_t S = Tool.loadedCodeBytes();
  if (!S)
    return Out;
  Out.CodeBytes = S;
  double Sum = 0.0;
  for (const ExecutedSite &Site : Tool.executedSites()) {
    double T = std::min<double>(Site.AllowedTargets, S);
    Sum += 1.0 - T / S;
    ++Out.Sites;
  }
  Out.Air = Out.Sites ? Sum / Out.Sites : 0.0;
  return Out;
}

LockdownRun janitizer::runUnderLockdown(const ModuleStore &Store,
                                        const std::string &ExeName,
                                        LockdownOptions Opts,
                                        uint64_t MaxSteps) {
  LockdownRun Out;
  Process P(Store);
  LockdownTool Tool(Opts);
  DbiEngine E(P, Tool, lockdownCostModel());
  Error Err = P.loadProgram(ExeName);
  if (Err) {
    Out.Result.St = RunResult::Status::Faulted;
    Out.Result.FaultMsg = Err.message();
    return Out;
  }
  Out.Result = E.run(MaxSteps);
  Out.Violations = E.violations();
  Out.Air = lockdownDynamicAir(Tool);
  Out.StackInconsistency = Tool.stackInconsistency();
  Out.Cycles = Out.Result.Cycles;
  Out.Output = P.output();
  return Out;
}
