//===- baselines/BinCFI.h - Static CFI via linear-sweep rewriting ---------===//
///
/// \file
/// BinCFI-style static CFI (Zhang & Sekar): linear-sweep disassembly with
/// symbolization, rewriting the binary to check indirect transfers against
/// per-module validity bitmaps:
///
///  - indirect calls and jumps may target any 4-byte-window scan hit that
///    falls on an instruction boundary (no function-boundary refinement —
///    the weaker forward policy);
///  - returns may target any call-preceded instruction (no shadow stack —
///    the weaker backward policy);
///  - transfers leaving the module are always allowed.
///
/// Code-data ambiguity is not decidable for a sweep: modules with data
/// islands in code sections desynchronize the disassembly, and the
/// rewritten binary is broken (branches into mis-decoded code land in a
/// trap stub) — the gamess/zeusmp "did not run" cases of §6.2.1.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_BASELINES_BINCFI_H
#define JANITIZER_BASELINES_BINCFI_H

#include "baselines/StaticRewriter.h"
#include "jcfi/Air.h"
#include "vm/Process.h"

namespace janitizer {

/// Rewrites one module with BinCFI instrumentation. Always "succeeds" —
/// the sweep cannot tell when it was wrong; SweepResynced in the result
/// flags what the tool itself would not notice.
ErrorOr<RewriteResult> binCfiModule(const Module &Mod);

/// Rewrites the executable and its dependency closure into \p Out.
Error binCfiProgram(const ModuleStore &Store, const std::string &ExeName,
                    ModuleStore &Out);

/// Static AIR of the BinCFI policy over a whole program.
AirResult binCfiStaticAir(const std::vector<const Module *> &Mods);

} // namespace janitizer

#endif // JANITIZER_BASELINES_BINCFI_H
