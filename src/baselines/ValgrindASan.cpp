//===- baselines/ValgrindASan.cpp -----------------------------------------==//

#include "baselines/ValgrindASan.h"

#include "baselines/OperandPack.h"
#include "jasan/Shadow.h"

using namespace janitizer;

namespace {
enum : uint32_t { HookMemCheck = 1 };
} // namespace

void ValgrindASanTool::onModuleLoad(DbiEngine &E, const LoadedModule &LM) {
  Process &P = E.process();
  if (!MallocAddr)
    MallocAddr = P.resolveSymbol("malloc");
  if (!FreeAddr)
    FreeAddr = P.resolveSymbol("free");
  if (!CallocAddr)
    CallocAddr = P.resolveSymbol("calloc");
  if (!ReallocAddr)
    ReallocAddr = P.resolveSymbol("realloc");
}

void ValgrindASanTool::instrumentBlock(
    DbiEngine &E, CacheBlock &Block, BlockBuilder &B,
    const std::vector<DecodedInstrRT> &Instrs) {
  for (const DecodedInstrRT &DI : Instrs) {
    unsigned Size = memAccessSize(DI.I.Op);
    if (Size) {
      uint64_t SizeLog2 = Size == 1 ? 0 : Size == 2 ? 1 : Size == 4 ? 2 : 3;
      // Inline (JITed) A-bit + V-bit check: ~15 cycles of generated code.
      B.inlineHook(HookMemCheck,
                   packOperand(DI.I.Mem, DI.I.Size) | (SizeLog2 << 14),
                   DI.Addr, 15);
    }
    B.app(DI.I, DI.Addr);
  }
}

HookAction ValgrindASanTool::onHook(DbiEngine &E, const CacheOp &Op) {
  if (Op.HookId != HookMemCheck)
    return HookAction::Continue;
  Machine &M = E.machine();
  uint64_t Packed = Op.HookData[0];
  unsigned Size = 1u << ((Packed >> 14) & 0x3);
  uint64_t Addr = evalPackedOperand(M, Packed, Op.HookData[1]);
  ShadowManager Shadow(M.Mem);
  if (Shadow.isInvalidAccess(Addr, Size)) {
    uint8_t Sv = Shadow.shadowByte(Addr);
    const char *Kind = Sv == shadowval::HeapFreed ? "heap-use-after-free"
                       : Sv == shadowval::HeapRedzone ? "heap-redzone"
                                                      : "partial-oob";
    E.recordViolation(static_cast<uint8_t>(TrapCode::AsanViolation),
                      Op.HookData[1], Addr, Kind);
    return HookAction::Violation;
  }
  return HookAction::Continue;
}

bool ValgrindASanTool::interceptTarget(DbiEngine &E, uint64_t Target) {
  if (!Target || (Target != MallocAddr && Target != FreeAddr &&
                  Target != CallocAddr && Target != ReallocAddr))
    return false;
  Machine &M = E.machine();
  Process &P = E.process();
  E.charge(80); // Memcheck's allocator bookkeeping
  if (Target == MallocAddr) {
    M.reg(Reg::R0) = Alloc.allocate(P, M.reg(Reg::R0));
  } else if (Target == CallocAddr) {
    // Same calloc contract as JASan: a 64-bit product wrap must return
    // NULL, never under-allocate.
    uint64_t N = M.reg(Reg::R0);
    uint64_t Size = M.reg(Reg::R1);
    if (Size != 0 && N > UINT64_MAX / Size) {
      M.reg(Reg::R0) = 0;
    } else {
      uint64_t Bytes = N * Size;
      uint64_t User = Alloc.allocate(P, Bytes);
      P.M.Mem.fill(User, Bytes, 0);
      M.reg(Reg::R0) = User;
    }
  } else if (Target == ReallocAddr) {
    bool Invalid = false;
    uint64_t NewAddr =
        Alloc.reallocate(P, M.reg(Reg::R0), M.reg(Reg::R1), Invalid);
    if (Invalid)
      E.recordViolation(static_cast<uint8_t>(TrapCode::AsanViolation),
                        M.PC, M.reg(Reg::R0), "invalid-realloc");
    M.reg(Reg::R0) = NewAddr;
  } else {
    if (!Alloc.deallocate(P, M.reg(Reg::R0)))
      E.recordViolation(static_cast<uint8_t>(TrapCode::AsanViolation),
                        M.PC, M.reg(Reg::R0), "invalid-free");
  }
  M.PC = M.pop64();
  return true;
}

BaselineRun janitizer::runUnderValgrind(const ModuleStore &Store,
                                        const std::string &ExeName,
                                        uint64_t MaxSteps) {
  BaselineRun Out;
  Process P(Store);
  ValgrindASanTool Tool;
  DbiEngine E(P, Tool, valgrindCostModel());
  Error Err = P.loadProgram(ExeName);
  if (Err) {
    Out.Result.St = RunResult::Status::Faulted;
    Out.Result.FaultMsg = Err.message();
    return Out;
  }
  Out.Result = E.run(MaxSteps);
  Out.Violations = E.violations();
  Out.Dbi = E.stats();
  Out.Output = P.output();
  return Out;
}
