//===- baselines/StaticRewriter.cpp ---------------------------------------==//

#include "baselines/StaticRewriter.h"

#include "analysis/CodeScan.h"
#include "isa/Encoding.h"
#include "support/Endian.h"
#include "support/Format.h"

#include <algorithm>

using namespace janitizer;

namespace {

struct WorkItem {
  Instruction I;
  uint64_t OldAddr = 0;
  InsertSeq Before;
  InsertSeq After;
  uint64_t NewAddr = 0; ///< of the original instruction
  uint64_t NewSeqStart = 0;
};

uint64_t seqLength(const InsertSeq &Seq) {
  uint64_t Len = 0;
  for (const SeqInstr &SI : Seq)
    Len += encodedLength(SI.I);
  return Len;
}

/// Encodes \p Seq at \p BaseVA, resolving intra-sequence branches and
/// extra-section displacement fixups.
void encodeSeq(const InsertSeq &Seq, uint64_t BaseVA,
               const std::vector<uint64_t> &ExtraBases,
               std::vector<uint8_t> &Out) {
  // Per-item offsets.
  std::vector<uint64_t> Off(Seq.size() + 1, 0);
  for (size_t K = 0; K < Seq.size(); ++K)
    Off[K + 1] = Off[K] + encodedLength(Seq[K].I);
  for (size_t K = 0; K < Seq.size(); ++K) {
    Instruction I = Seq[K].I;
    if (Seq[K].JumpToSeqIdx >= 0) {
      uint64_t Target = Off[static_cast<size_t>(Seq[K].JumpToSeqIdx)];
      I.Imm = static_cast<int64_t>(Target) -
              static_cast<int64_t>(Off[K] + encodedLength(I));
    }
    if (Seq[K].ExtraSectionIdx >= 0) {
      uint64_t Base = ExtraBases[static_cast<size_t>(Seq[K].ExtraSectionIdx)];
      if (Seq[K].PcRelExtra) {
        I.Mem.PCRel = true;
        uint64_t InstrVA = BaseVA + Off[K];
        I.Mem.Disp = static_cast<int32_t>(
            static_cast<int64_t>(Base + static_cast<uint32_t>(I.Mem.Disp)) -
            static_cast<int64_t>(InstrVA + encodedLength(I)));
      } else {
        I.Mem.Disp =
            static_cast<int32_t>(Base + static_cast<uint32_t>(I.Mem.Disp));
      }
    }
    encode(I, Out);
  }
}

} // namespace

ErrorOr<RewriteResult> janitizer::rewriteModule(const Module &Mod,
                                                RewriteClient &Client) {
  RewriteResult Res;
  const DisasmMode Mode = Client.disasmMode();

  // Sections to rewrite, in address order.
  std::vector<const Section *> Rewritten;
  for (const Section &S : Mod.Sections)
    if (S.Kind == SectionKind::Init || S.Kind == SectionKind::Text ||
        S.Kind == SectionKind::Fini)
      Rewritten.push_back(&S);
  std::sort(Rewritten.begin(), Rewritten.end(),
            [](const Section *A, const Section *B) { return A->Addr < B->Addr; });

  // --- disassembly --------------------------------------------------------
  // Per rewritten section: the ordered instruction list.
  std::map<const Section *, std::vector<WorkItem>> Items;

  if (Mode == DisasmMode::Recursive) {
    // Relocation-guided discovery: code-directed rebase addends (jump
    // tables) and code constants act as roots — RetroWrite's
    // symbolization. Requires complete tiling of each section.
    ModuleCFG Prelim = buildCFG(Mod);
    CodeScanResult Scan = scanForCodePointers(Mod, Prelim);
    CFGBuildOptions Opts;
    for (uint64_t VA : Scan.CodeConstants)
      Opts.ExtraRoots.push_back(VA);
    for (const Relocation &R : Mod.DynRelocs)
      if (R.Kind == RelocKind::Rebase64 &&
          Mod.isCodeAddress(static_cast<uint64_t>(R.Addend)))
        Opts.ExtraRoots.push_back(static_cast<uint64_t>(R.Addend));
    ModuleCFG CFG = buildCFG(Mod, Opts);

    std::map<uint64_t, Instruction> ByAddr;
    for (const auto &[_, BB] : CFG.Blocks)
      for (const DecodedInstr &DI : BB.Instrs)
        ByAddr.emplace(DI.Addr, DI.I);

    for (const Section *S : Rewritten) {
      uint64_t Cur = S->Addr;
      uint64_t End = S->Addr + S->Bytes.size();
      auto &List = Items[S];
      while (Cur < End) {
        auto It = ByAddr.find(Cur);
        if (It == ByAddr.end())
          return makeError(formatString(
              "module '%s': no sound disassembly at 0x%llx "
              "(coverage gap; cannot rewrite)",
              Mod.Name.c_str(), static_cast<unsigned long long>(Cur)));
        WorkItem W;
        W.I = It->second;
        W.OldAddr = Cur;
        List.push_back(std::move(W));
        Cur += It->second.Size;
      }
    }
  } else {
    // Linear sweep with one-byte resynchronization.
    for (const Section *S : Rewritten) {
      uint64_t Cur = S->Addr;
      uint64_t End = S->Addr + S->Bytes.size();
      auto &List = Items[S];
      while (Cur < End) {
        Instruction I;
        uint64_t Off = Cur - S->Addr;
        if (!decode(S->Bytes.data() + Off, S->Bytes.size() - Off, I)) {
          ++Cur;
          Res.SweepResynced = true;
          continue;
        }
        WorkItem W;
        W.I = I;
        W.OldAddr = Cur;
        List.push_back(std::move(W));
        Cur += I.Size;
      }
    }
  }

  // --- instrumentation ----------------------------------------------------
  for (auto &[S, List] : Items)
    for (WorkItem &W : List) {
      W.Before = Client.instrumentBefore(Mod, W.I, W.OldAddr);
      W.After = Client.instrumentAfter(Mod, W.I, W.OldAddr);
      ++Res.Instructions;
    }

  // --- layout -------------------------------------------------------------
  uint64_t NewBase = (Mod.linkEnd() + 0xFFF) & ~0xFFFull;
  uint64_t VA = NewBase;
  std::map<const Section *, uint64_t> NewSecStart;
  for (const Section *S : Rewritten) {
    VA = (VA + 15) & ~15ull;
    NewSecStart[S] = VA;
    for (WorkItem &W : Items[S]) {
      W.NewSeqStart = VA;
      VA += seqLength(W.Before);
      W.NewAddr = VA;
      Res.OldToNew[W.OldAddr] = W.NewAddr;
      VA += W.I.Size;
      VA += seqLength(W.After);
    }
  }
  // Trap stub for unresolvable branch targets.
  Res.TrapStubVA = VA;
  VA += 2; // TRAP is 2 bytes
  uint64_t NewCodeEnd = VA;

  // Extra sections.
  std::vector<uint64_t> ExtraBases;
  std::vector<uint64_t> ExtraSizes;
  for (unsigned EI = 0; EI < Client.extraSectionCount(); ++EI) {
    VA = (VA + 15) & ~15ull;
    ExtraBases.push_back(VA);
    uint64_t Size = Client.extraSectionSize(EI, Mod);
    ExtraSizes.push_back(Size);
    VA += Size;
  }

  // --- build the new module ----------------------------------------------
  Module New;
  New.Name = Mod.Name;
  New.IsPIC = Mod.IsPIC;
  New.IsSharedObject = Mod.IsSharedObject;
  New.HasEHMetadata = Mod.HasEHMetadata;
  New.HasFullSymbols = Mod.HasFullSymbols;
  New.LinkBase = Mod.LinkBase;
  New.Needed = Mod.Needed;
  New.ImportedSymbols = Mod.ImportedSymbols;
  New.Plt = Mod.Plt;

  // Keep non-rewritten sections as they are.
  for (const Section &S : Mod.Sections) {
    bool IsRewritten =
        std::find(Rewritten.begin(), Rewritten.end(), &S) != Rewritten.end();
    if (!IsRewritten)
      New.Sections.push_back(S);
  }

  auto MapAddr = [&](uint64_t Old) -> uint64_t {
    auto It = Res.OldToNew.find(Old);
    return It == Res.OldToNew.end() ? 0 : It->second;
  };

  // Encode rewritten sections.
  for (const Section *S : Rewritten) {
    Section NS;
    NS.Kind = S->Kind;
    NS.Addr = NewSecStart[S];
    for (WorkItem &W : Items[S]) {
      encodeSeq(W.Before, W.NewSeqStart, ExtraBases, NS.Bytes);

      Instruction I = W.I;
      // Direct branches and calls.
      if (ctiKind(I.Op) == CTIKind::DirectJump ||
          ctiKind(I.Op) == CTIKind::CondJump ||
          ctiKind(I.Op) == CTIKind::DirectCall) {
        uint64_t OldTarget = I.branchTarget(W.OldAddr);
        uint64_t NewTarget = MapAddr(OldTarget);
        if (!NewTarget) {
          const Section *TS = Mod.sectionAt(OldTarget);
          bool TargetRewritten =
              TS && std::find(Rewritten.begin(), Rewritten.end(), TS) !=
                        Rewritten.end();
          if (TargetRewritten) {
            if (Mode == DisasmMode::Recursive)
              return makeError(formatString(
                  "module '%s': direct branch to unmapped 0x%llx",
                  Mod.Name.c_str(),
                  static_cast<unsigned long long>(OldTarget)));
            NewTarget = Res.TrapStubVA; // sweep mode: broken binary
          } else {
            NewTarget = OldTarget; // e.g. into the (unmoved) PLT
          }
        }
        I.Imm = static_cast<int64_t>(NewTarget) -
                static_cast<int64_t>(W.NewAddr + I.Size);
      } else if (hasMemOperand(I.Op) && I.Mem.PCRel) {
        // Keep the absolute target; remap if it pointed into moved code.
        uint64_t OldTarget =
            W.OldAddr + I.Size +
            static_cast<uint64_t>(static_cast<int64_t>(I.Mem.Disp));
        uint64_t NewTarget = MapAddr(OldTarget);
        if (!NewTarget)
          NewTarget = OldTarget;
        I.Mem.Disp = static_cast<int32_t>(
            static_cast<int64_t>(NewTarget) -
            static_cast<int64_t>(W.NewAddr + I.Size));
      } else if (I.Op == Opcode::MOV_RI64 || I.Op == Opcode::PUSHI64) {
        // Symbolization heuristic for code-address immediates.
        uint64_t NewTarget = MapAddr(static_cast<uint64_t>(I.Imm));
        if (NewTarget)
          I.Imm = static_cast<int64_t>(NewTarget);
      }
      encode(I, NS.Bytes);

      encodeSeq(W.After, W.NewAddr + W.I.Size, ExtraBases, NS.Bytes);
    }
    // Sections share the flat new region; emit the trap stub after the
    // last one.
    New.Sections.push_back(std::move(NS));
  }
  {
    Section Stub;
    Stub.Kind = SectionKind::Text;
    Stub.Addr = Res.TrapStubVA;
    Instruction Trap;
    Trap.Op = Opcode::TRAP;
    Trap.Imm = 0;
    encode(Trap, Stub.Bytes);
    New.Sections.push_back(std::move(Stub));
  }
  (void)NewCodeEnd;

  // Extra sections.
  for (unsigned EI = 0; EI < ExtraBases.size(); ++EI) {
    Section ES;
    ES.Kind = SectionKind::Data;
    ES.Addr = ExtraBases[EI];
    ES.Bytes.resize(ExtraSizes[EI], 0);
    New.Sections.push_back(std::move(ES));
  }

  // Symbols.
  for (const Symbol &Sym : Mod.Symbols) {
    Symbol NS = Sym;
    if (uint64_t NV = MapAddr(Sym.Value)) {
      NS.Value = NV;
      if (uint64_t NE = MapAddr(Sym.Value + Sym.Size))
        NS.Size = NE - NV;
    }
    New.Symbols.push_back(std::move(NS));
  }
  if (uint64_t NE = MapAddr(Mod.Entry))
    New.Entry = NE;
  else
    New.Entry = Mod.Entry;

  // Dynamic relocations: remap rebase addends into moved code.
  for (const Relocation &R : Mod.DynRelocs) {
    Relocation NR = R;
    if (R.Kind == RelocKind::Rebase64)
      if (uint64_t NV = MapAddr(static_cast<uint64_t>(R.Addend)))
        NR.Addend = static_cast<int64_t>(NV);
    New.DynRelocs.push_back(std::move(NR));
  }
  // Client relocs into extra sections.
  for (const RewriteClient::ExtraReloc &ER : Client.extraRelocs(Mod)) {
    Relocation NR;
    NR.Kind = RelocKind::Rebase64;
    NR.Site = ExtraBases[ER.SectionIdx] + ER.Offset;
    NR.Addend = ER.Addend;
    New.DynRelocs.push_back(std::move(NR));
  }

  // Sweep mode: scan writable/read-only data for 8-byte code pointers and
  // remap them (BinCFI's heuristic; the recursive mode relies purely on
  // relocations).
  if (Mode == DisasmMode::LinearSweep) {
    for (Section &S : New.Sections) {
      if (S.Kind != SectionKind::Rodata && S.Kind != SectionKind::Data)
        continue;
      // Slide byte-wise (tables need not be aligned); skip past a patched
      // slot so its bytes are not reinterpreted mid-pointer.
      for (uint64_t Off = 0; Off + 8 <= S.Bytes.size();) {
        uint64_t V = readLE64(S.Bytes.data() + Off);
        if (uint64_t NV = MapAddr(V)) {
          patchLE64(S.Bytes, Off, NV);
          Off += 8;
        } else {
          ++Off;
        }
      }
    }
  }

  // Fill extra sections now that everything is placed.
  for (unsigned EI = 0; EI < ExtraBases.size(); ++EI) {
    std::vector<uint8_t> Content =
        Client.buildExtraSection(EI, Mod, New, Res.OldToNew);
    for (Section &S : New.Sections)
      if (S.Addr == ExtraBases[EI] && S.Kind == SectionKind::Data) {
        Content.resize(ExtraSizes[EI], 0);
        S.Bytes = std::move(Content);
        break;
      }
  }

  Res.NewMod = std::move(New);
  return Res;
}
