//===- baselines/StaticRewriter.cpp ---------------------------------------==//

#include "baselines/StaticRewriter.h"

#include "analysis/CodeScan.h"
#include "isa/Encoding.h"
#include "support/Endian.h"
#include "support/Format.h"
#include "vm/Syscalls.h"

#include <algorithm>
#include <set>

using namespace janitizer;

namespace {

struct WorkItem {
  Instruction I;
  uint64_t OldAddr = 0;
  InsertSeq Before;
  InsertSeq After;
  uint64_t NewAddr = 0; ///< of the original instruction
  uint64_t NewSeqStart = 0;
  /// RuleGuided: covered blocks are laid out non-contiguously, so a block
  /// whose terminator can fall through (or whose call returns into the
  /// instruction after it) ends with a synthetic JMP to the remapped
  /// continuation address.
  bool SynthJump = false;
  uint64_t SynthJumpTarget = 0;
};

uint64_t seqLength(const InsertSeq &Seq) {
  uint64_t Len = 0;
  for (const SeqInstr &SI : Seq)
    Len += encodedLength(SI.I);
  return Len;
}

using SiteCallback = std::function<void(int32_t, uint64_t)>;

/// Encodes \p Seq at \p BaseVA, resolving intra-sequence branches and
/// extra-section displacement fixups. \p OnSite, when given, is invoked
/// with (TrapSiteId, instruction VA) for every item carrying a site id.
void encodeSeq(const InsertSeq &Seq, uint64_t BaseVA,
               const std::vector<uint64_t> &ExtraBases,
               std::vector<uint8_t> &Out,
               const SiteCallback *OnSite = nullptr) {
  // Per-item offsets.
  std::vector<uint64_t> Off(Seq.size() + 1, 0);
  for (size_t K = 0; K < Seq.size(); ++K)
    Off[K + 1] = Off[K] + encodedLength(Seq[K].I);
  for (size_t K = 0; K < Seq.size(); ++K) {
    Instruction I = Seq[K].I;
    if (Seq[K].JumpToSeqIdx >= 0) {
      uint64_t Target = Off[static_cast<size_t>(Seq[K].JumpToSeqIdx)];
      I.Imm = static_cast<int64_t>(Target) -
              static_cast<int64_t>(Off[K] + encodedLength(I));
    }
    if (Seq[K].ExtraSectionIdx >= 0) {
      uint64_t Base = ExtraBases[static_cast<size_t>(Seq[K].ExtraSectionIdx)];
      if (Seq[K].PcRelExtra) {
        I.Mem.PCRel = true;
        uint64_t InstrVA = BaseVA + Off[K];
        I.Mem.Disp = static_cast<int32_t>(
            static_cast<int64_t>(Base + static_cast<uint32_t>(I.Mem.Disp)) -
            static_cast<int64_t>(InstrVA + encodedLength(I)));
      } else {
        I.Mem.Disp =
            static_cast<int32_t>(Base + static_cast<uint32_t>(I.Mem.Disp));
      }
    }
    if (Seq[K].PcRelToAbs) {
      // Re-express the operand pc-relative to a link-time VA so the
      // referenced address slides with the module.
      I.Mem.PCRel = true;
      I.Mem.HasBase = false;
      I.Mem.HasIndex = false;
      I.Mem.ScaleLog2 = 0;
      uint64_t InstrVA = BaseVA + Off[K];
      I.Mem.Disp = static_cast<int32_t>(
          static_cast<int64_t>(Seq[K].AbsTarget) -
          static_cast<int64_t>(InstrVA + encodedLength(I)));
    }
    if (Seq[K].TrapSiteId >= 0 && OnSite)
      (*OnSite)(Seq[K].TrapSiteId, BaseVA + Off[K]);
    encode(I, Out);
  }
}

/// True when a block ending with \p Term can reach the code immediately
/// after it (plain fall-through, cond-branch fall-through, or a call whose
/// callee returns to the next instruction).
bool canFallThrough(CTIKind Term) {
  return Term == CTIKind::None || Term == CTIKind::CondJump ||
         Term == CTIKind::DirectCall || Term == CTIKind::IndirectCall ||
         Term == CTIKind::Trap;
}

} // namespace

ErrorOr<RewriteResult> janitizer::rewriteModule(const Module &Mod,
                                                RewriteClient &Client) {
  RewriteResult Res;
  const DisasmMode Mode = Client.disasmMode();

  // Sections to rewrite, in address order.
  std::vector<const Section *> Rewritten;
  for (const Section &S : Mod.Sections)
    if (S.Kind == SectionKind::Init || S.Kind == SectionKind::Text ||
        S.Kind == SectionKind::Fini)
      Rewritten.push_back(&S);
  std::sort(Rewritten.begin(), Rewritten.end(),
            [](const Section *A, const Section *B) { return A->Addr < B->Addr; });

  auto InRewritten = [&](uint64_t A) {
    for (const Section *S : Rewritten)
      if (A >= S->Addr && A < S->Addr + S->Bytes.size())
        return true;
    return false;
  };

  // --- disassembly --------------------------------------------------------
  // Per rewritten section: the ordered instruction list.
  std::map<const Section *, std::vector<WorkItem>> Items;
  // RuleGuided: block heads that get a tier-enter stub instead of native
  // layout.
  std::set<uint64_t> StubHeads;

  if (Mode == DisasmMode::Recursive) {
    // Relocation-guided discovery: code-directed rebase addends (jump
    // tables) and code constants act as roots — RetroWrite's
    // symbolization. Requires complete tiling of each section.
    ModuleCFG Prelim = buildCFG(Mod);
    CodeScanResult Scan = scanForCodePointers(Mod, Prelim);
    CFGBuildOptions Opts;
    for (uint64_t VA : Scan.CodeConstants)
      Opts.ExtraRoots.push_back(VA);
    for (const Relocation &R : Mod.DynRelocs)
      if (R.Kind == RelocKind::Rebase64 &&
          Mod.isCodeAddress(static_cast<uint64_t>(R.Addend)))
        Opts.ExtraRoots.push_back(static_cast<uint64_t>(R.Addend));
    ModuleCFG CFG = buildCFG(Mod, Opts);

    std::map<uint64_t, Instruction> ByAddr;
    for (const auto &[_, BB] : CFG.Blocks)
      for (const DecodedInstr &DI : BB.Instrs)
        ByAddr.emplace(DI.Addr, DI.I);

    for (const Section *S : Rewritten) {
      uint64_t Cur = S->Addr;
      uint64_t End = S->Addr + S->Bytes.size();
      auto &List = Items[S];
      while (Cur < End) {
        auto It = ByAddr.find(Cur);
        if (It == ByAddr.end())
          return makeError(formatString(
              "module '%s': no sound disassembly at 0x%llx "
              "(coverage gap; cannot rewrite)",
              Mod.Name.c_str(), static_cast<unsigned long long>(Cur)));
        WorkItem W;
        W.I = It->second;
        W.OldAddr = Cur;
        List.push_back(std::move(W));
        Cur += It->second.Size;
      }
    }
  } else if (Mode == DisasmMode::RuleGuided) {
    // The analyzer's exact CFG recipe (StaticAnalyzer::analyzeModule):
    // preliminary CFG, code-pointer scan, extended rebuild with the scan's
    // constants and window hits as extra roots. Reproducing it here keeps
    // the block-head set aligned with the rule files the client consults
    // in coversBlock().
    ModuleCFG Prelim = buildCFG(Mod);
    CodeScanResult Scan = scanForCodePointers(Mod, Prelim);
    CFGBuildOptions Opts;
    for (uint64_t VA : Scan.CodeConstants)
      Opts.ExtraRoots.push_back(VA);
    for (uint64_t VA : Scan.WindowHits)
      Opts.ExtraRoots.push_back(VA);
    ModuleCFG CFG =
        Opts.ExtraRoots.empty() ? std::move(Prelim) : buildCFG(Mod, Opts);

    std::set<uint64_t> Forced;
    for (uint64_t F : Client.forceTrapEntries(Mod))
      if (InRewritten(F))
        Forced.insert(F);

    std::set<uint64_t> LaidOut;
    for (const auto &[Head, BB] : CFG.Blocks) {
      (void)BB;
      if (InRewritten(Head) && !Forced.count(Head) && Client.coversBlock(Head))
        LaidOut.insert(Head);
    }

    // Everything else becomes a stub: unproven heads, forced entries, and
    // any transfer target of laid-out code that is not itself laid out
    // (fall-through edges included — the new layout is not contiguous).
    for (const auto &[Head, BB] : CFG.Blocks) {
      (void)BB;
      if (InRewritten(Head) && !LaidOut.count(Head))
        StubHeads.insert(Head);
    }
    // Forced entries stub unconditionally — a forced address that is not
    // a CFG block head (e.g. an interposed symbol the CFG never reached)
    // would otherwise be left unmapped and its symbol would dangle.
    StubHeads.insert(Forced.begin(), Forced.end());
    // The loader transfers to each Init/Fini *section start*, but the
    // rewritten section begins at its first laid-out item, which under
    // partial coverage need not be the init head. Keep the head mapped
    // (laid out or stubbed) so a kind-preserving thunk section can route
    // the loader to it.
    for (const Section *S : Rewritten)
      if ((S->Kind == SectionKind::Init || S->Kind == SectionKind::Fini) &&
          !S->Bytes.empty() && !LaidOut.count(S->Addr))
        StubHeads.insert(S->Addr);
    for (const auto &[Head, BB] : CFG.Blocks) {
      if (!LaidOut.count(Head))
        continue;
      auto Need = [&](uint64_t T) {
        if (T && InRewritten(T) && !LaidOut.count(T))
          StubHeads.insert(T);
      };
      for (uint64_t Succ : BB.Succs)
        Need(Succ);
      Need(BB.CallTarget);
      if (canFallThrough(BB.Term))
        Need(BB.End);
    }

    for (const Section *S : Rewritten) {
      auto &List = Items[S];
      auto Lo = LaidOut.lower_bound(S->Addr);
      auto Hi = LaidOut.lower_bound(S->Addr + S->Bytes.size());
      for (auto It = Lo; It != Hi; ++It) {
        const BasicBlock &BB = CFG.Blocks.at(*It);
        for (const DecodedInstr &DI : BB.Instrs) {
          WorkItem W;
          W.I = DI.I;
          W.OldAddr = DI.Addr;
          List.push_back(std::move(W));
        }
        ++Res.CoveredBlocks;
        if (canFallThrough(BB.Term)) {
          List.back().SynthJump = true;
          List.back().SynthJumpTarget = BB.End;
        }
      }
    }
  } else {
    // Linear sweep with one-byte resynchronization.
    for (const Section *S : Rewritten) {
      uint64_t Cur = S->Addr;
      uint64_t End = S->Addr + S->Bytes.size();
      auto &List = Items[S];
      while (Cur < End) {
        Instruction I;
        uint64_t Off = Cur - S->Addr;
        if (!decode(S->Bytes.data() + Off, S->Bytes.size() - Off, I)) {
          ++Cur;
          Res.SweepResynced = true;
          continue;
        }
        WorkItem W;
        W.I = I;
        W.OldAddr = Cur;
        List.push_back(std::move(W));
        Cur += I.Size;
      }
    }
  }

  // --- instrumentation ----------------------------------------------------
  for (auto &[S, List] : Items)
    for (WorkItem &W : List) {
      W.Before = Client.instrumentBefore(Mod, W.I, W.OldAddr);
      W.After = Client.instrumentAfter(Mod, W.I, W.OldAddr);
      ++Res.Instructions;
    }

  // --- layout -------------------------------------------------------------
  uint64_t NewBase = (Mod.linkEnd() + 0xFFF) & ~0xFFFull;
  uint64_t VA = NewBase;
  // RuleGuided maps old addresses to the *start of the Before sequence*:
  // every transfer that lands on an old address must run the checks
  // guarding the instruction, not skip them.
  const bool MapToSeqStart = Mode == DisasmMode::RuleGuided;
  Instruction SynthJ;
  SynthJ.Op = Opcode::JMP;
  const uint64_t SynthJmpLen = encodedLength(SynthJ);
  // Old address -> end of its new extent (instruction + After sequence +
  // synthetic jump), for recomputing symbol sizes in the new layout.
  std::map<uint64_t, uint64_t> OldToNewEnd;
  std::map<const Section *, uint64_t> NewSecStart;
  // RuleGuided: per Init/Fini section, the VA of its loader-entry thunk.
  std::map<const Section *, uint64_t> ThunkVA;
  for (const Section *S : Rewritten) {
    VA = (VA + 15) & ~15ull;
    NewSecStart[S] = VA;
    for (WorkItem &W : Items[S]) {
      W.NewSeqStart = VA;
      VA += seqLength(W.Before);
      W.NewAddr = VA;
      // emplace: with overlapping decode streams (RuleGuided) the first
      // laid-out copy of an address wins the mapping.
      Res.OldToNew.emplace(W.OldAddr, MapToSeqStart ? W.NewSeqStart : W.NewAddr);
      VA += W.I.Size;
      VA += seqLength(W.After);
      if (W.SynthJump)
        VA += SynthJmpLen;
      OldToNewEnd.emplace(W.OldAddr, VA);
    }
  }
  // Trap stub for unresolvable branch targets.
  Res.TrapStubVA = VA;
  VA += 2; // TRAP is 2 bytes
  if (Mode == DisasmMode::RuleGuided) {
    // Per-site tier-enter stubs, contiguous after the shared trap stub.
    for (uint64_t Head : StubHeads) {
      if (Res.OldToNew.count(Head))
        continue; // an overlapping laid-out decode already claimed it
      Res.OldToNew[Head] = VA;
      Res.TierEnterStubs[VA] = Head;
      VA += TierStubSize;
    }
    // Loader-entry thunks: the rewritten Init/Fini bodies are re-kinded to
    // Text (their start is the first laid-out item, not the init head);
    // each gets a one-JMP section of the *original* kind whose start the
    // loader calls, jumping to the mapped head.
    for (const Section *S : Rewritten)
      if ((S->Kind == SectionKind::Init || S->Kind == SectionKind::Fini) &&
          !S->Bytes.empty()) {
        ThunkVA[S] = VA;
        VA += SynthJmpLen;
      }
  }
  uint64_t NewCodeEnd = VA;

  // Extra sections.
  std::vector<uint64_t> ExtraBases;
  std::vector<uint64_t> ExtraSizes;
  for (unsigned EI = 0; EI < Client.extraSectionCount(); ++EI) {
    VA = (VA + 15) & ~15ull;
    ExtraBases.push_back(VA);
    uint64_t Size = Client.extraSectionSize(EI, Mod);
    ExtraSizes.push_back(Size);
    VA += Size;
  }
  Res.NewRegionStart = NewBase;
  Res.NewRegionEnd = VA;

  // --- build the new module ----------------------------------------------
  Module New;
  New.Name = Mod.Name;
  New.IsPIC = Mod.IsPIC;
  New.IsSharedObject = Mod.IsSharedObject;
  New.HasEHMetadata = Mod.HasEHMetadata;
  New.HasFullSymbols = Mod.HasFullSymbols;
  New.LinkBase = Mod.LinkBase;
  New.Needed = Mod.Needed;
  New.ImportedSymbols = Mod.ImportedSymbols;
  New.Plt = Mod.Plt;

  // Keep non-rewritten sections as they are.
  for (const Section &S : Mod.Sections) {
    bool IsRewritten =
        std::find(Rewritten.begin(), Rewritten.end(), &S) != Rewritten.end();
    if (!IsRewritten)
      New.Sections.push_back(S);
  }

  auto MapAddr = [&](uint64_t Old) -> uint64_t {
    auto It = Res.OldToNew.find(Old);
    return It == Res.OldToNew.end() ? 0 : It->second;
  };

  // Resolves an old-layout branch target to the new layout. Unmapped
  // targets inside rewritten sections are a disassembly failure: recursive
  // mode has already refused by now (complete tiling), RuleGuided plants a
  // stub for every reachable head so a miss is an internal error, and the
  // sweep silently routes to the trap stub (a broken binary — BinCFI's
  // fate on bad resync).
  auto ResolveBranch = [&](uint64_t OldTarget) -> ErrorOr<uint64_t> {
    if (uint64_t NewTarget = MapAddr(OldTarget))
      return NewTarget;
    if (!InRewritten(OldTarget))
      return OldTarget; // e.g. into the (unmoved) PLT
    if (Mode == DisasmMode::LinearSweep)
      return Res.TrapStubVA;
    return makeError(formatString(
        "module '%s': direct branch to unmapped 0x%llx", Mod.Name.c_str(),
        static_cast<unsigned long long>(OldTarget)));
  };

  // Encode rewritten sections.
  for (const Section *S : Rewritten) {
    Section NS;
    // A section with a loader-entry thunk carries its original kind on the
    // thunk instead; the relocated body is plain text.
    NS.Kind = ThunkVA.count(S) ? SectionKind::Text : S->Kind;
    NS.Addr = NewSecStart[S];
    for (WorkItem &W : Items[S]) {
      // Remap the application instruction first, so trap-site callbacks
      // fired while encoding the sequences see its final operands.
      Instruction I = W.I;
      // Direct branches and calls.
      if (ctiKind(I.Op) == CTIKind::DirectJump ||
          ctiKind(I.Op) == CTIKind::CondJump ||
          ctiKind(I.Op) == CTIKind::DirectCall) {
        ErrorOr<uint64_t> NewTarget = ResolveBranch(I.branchTarget(W.OldAddr));
        if (!NewTarget)
          return NewTarget.takeError();
        I.Imm = static_cast<int64_t>(*NewTarget) -
                static_cast<int64_t>(W.NewAddr + I.Size);
      } else if (hasMemOperand(I.Op) && I.Mem.PCRel) {
        // Keep the absolute target; remap if it pointed into moved code.
        // RuleGuided deliberately does NOT remap: a register-materialized
        // code address may be an arithmetic base (entry+offset tricks the
        // symbolization heuristic cannot prove), so it keeps pointing at
        // the *original* address — intact bytes under the no-exec carpet,
        // which re-enters the DBI tier on use instead of computing into
        // the middle of relocated code.
        uint64_t OldTarget =
            W.OldAddr + I.Size +
            static_cast<uint64_t>(static_cast<int64_t>(I.Mem.Disp));
        uint64_t NewTarget =
            Mode == DisasmMode::RuleGuided ? 0 : MapAddr(OldTarget);
        if (!NewTarget)
          NewTarget = OldTarget;
        I.Mem.Disp = static_cast<int32_t>(
            static_cast<int64_t>(NewTarget) -
            static_cast<int64_t>(W.NewAddr + I.Size));
      } else if ((I.Op == Opcode::MOV_RI64 || I.Op == Opcode::PUSHI64) &&
                 Mode != DisasmMode::RuleGuided) {
        // Symbolization heuristic for code-address immediates (unsound on
        // data that happens to match; RuleGuided leaves immediates alone
        // for the same carpet-fallback reason as above).
        uint64_t NewTarget = MapAddr(static_cast<uint64_t>(I.Imm));
        if (NewTarget)
          I.Imm = static_cast<int64_t>(NewTarget);
      }

      SiteCallback OnSite = [&](int32_t SiteId, uint64_t TrapVA) {
        Client.placeTrapSite(SiteId, TrapVA, I, W.NewAddr, W.OldAddr);
      };
      encodeSeq(W.Before, W.NewSeqStart, ExtraBases, NS.Bytes, &OnSite);
      encode(I, NS.Bytes);
      encodeSeq(W.After, W.NewAddr + W.I.Size, ExtraBases, NS.Bytes, &OnSite);
      if (W.SynthJump) {
        ErrorOr<uint64_t> NewTarget = ResolveBranch(W.SynthJumpTarget);
        if (!NewTarget)
          return NewTarget.takeError();
        uint64_t JmpVA = W.NewAddr + W.I.Size + seqLength(W.After);
        Instruction J = SynthJ;
        J.Imm = static_cast<int64_t>(*NewTarget) -
                static_cast<int64_t>(JmpVA + SynthJmpLen);
        encode(J, NS.Bytes);
      }
    }
    // Sections share the flat new region; emit the trap stub after the
    // last one.
    New.Sections.push_back(std::move(NS));
  }
  {
    Section Stub;
    Stub.Kind = SectionKind::Text;
    Stub.Addr = Res.TrapStubVA;
    Instruction Trap;
    Trap.Op = Opcode::TRAP;
    Trap.Imm = 0;
    encode(Trap, Stub.Bytes);
    // RuleGuided: the per-site stubs follow, contiguous, in ascending VA
    // order (map iteration matches layout order). Each is a
    // TRAP(TierEnter) plus the 8-byte little-endian original PC the DBI
    // tier should resume at.
    for (const auto &[StubVA, OrigPC] : Res.TierEnterStubs) {
      (void)StubVA;
      Instruction T;
      T.Op = Opcode::TRAP;
      T.Imm = static_cast<int64_t>(TrapCode::TierEnter);
      encode(T, Stub.Bytes);
      for (unsigned B = 0; B < 8; ++B)
        Stub.Bytes.push_back(static_cast<uint8_t>(OrigPC >> (8 * B)));
    }
    New.Sections.push_back(std::move(Stub));
  }
  // Loader-entry thunks for re-kinded Init/Fini sections.
  for (const Section *S : Rewritten) {
    auto It = ThunkVA.find(S);
    if (It == ThunkVA.end())
      continue;
    Section TS;
    TS.Kind = S->Kind;
    TS.Addr = It->second;
    Instruction J = SynthJ;
    J.Imm = static_cast<int64_t>(MapAddr(S->Addr)) -
            static_cast<int64_t>(It->second + SynthJmpLen);
    encode(J, TS.Bytes);
    New.Sections.push_back(std::move(TS));
  }
  (void)NewCodeEnd;

  // Extra sections.
  for (unsigned EI = 0; EI < ExtraBases.size(); ++EI) {
    Section ES;
    ES.Kind = SectionKind::Data;
    ES.Addr = ExtraBases[EI];
    ES.Bytes.resize(ExtraSizes[EI], 0);
    New.Sections.push_back(std::move(ES));
  }

  // Symbols. A remapped value must never keep the old-layout size: the new
  // extent of the symbol's range is a different length (instrumentation,
  // stubs), and pairing the new value with the stale size makes the symbol
  // span unrelated code — load-time consumers (the CFI target-set builder)
  // would silently admit wrong targets.
  for (const Symbol &Sym : Mod.Symbols) {
    Symbol NS = Sym;
    if (uint64_t NV = MapAddr(Sym.Value)) {
      NS.Value = NV;
      uint64_t NewEnd = NV;
      if (Res.TierEnterStubs.count(NV)) {
        NewEnd = NV + TierStubSize;
      } else if (Sym.Size) {
        uint64_t NE = Mode == DisasmMode::RuleGuided
                          ? 0 // non-contiguous layout; use the extent map
                          : MapAddr(Sym.Value + Sym.Size);
        if (NE && NE > NV) {
          NewEnd = NE;
        } else {
          // End address unmapped (gap, or one-past-section): take the new
          // extent of the last laid-out instruction inside the old range,
          // clamping to an empty symbol when nothing of the range
          // survived.
          auto It = OldToNewEnd.upper_bound(Sym.Value + Sym.Size - 1);
          if (It != OldToNewEnd.begin()) {
            --It;
            if (It->first >= Sym.Value && It->second > NV)
              NewEnd = It->second;
          }
        }
      }
      NS.Size = NewEnd - NV;
    }
    New.Symbols.push_back(std::move(NS));
  }
  // Entry point. Link VA 0 is a legal PIC entry, so consult the map
  // directly instead of treating a zero MapAddr result as "no entry".
  auto EntryIt = Res.OldToNew.find(Mod.Entry);
  if (EntryIt != Res.OldToNew.end()) {
    New.Entry = EntryIt->second;
  } else if (!Mod.IsSharedObject && InRewritten(Mod.Entry)) {
    return makeError(formatString(
        "module '%s': entry point 0x%llx has no address in the rewritten "
        "layout (falling back to the original entry would jump into the "
        "vacated region)",
        Mod.Name.c_str(), static_cast<unsigned long long>(Mod.Entry)));
  } else {
    New.Entry = Mod.Entry; // outside the rewritten sections, or unused
  }

  // Dynamic relocations: remap rebase addends into moved code.
  for (const Relocation &R : Mod.DynRelocs) {
    Relocation NR = R;
    if (R.Kind == RelocKind::Rebase64)
      if (uint64_t NV = MapAddr(static_cast<uint64_t>(R.Addend)))
        NR.Addend = static_cast<int64_t>(NV);
    New.DynRelocs.push_back(std::move(NR));
  }
  // Client relocs into extra sections.
  for (const RewriteClient::ExtraReloc &ER : Client.extraRelocs(Mod)) {
    Relocation NR;
    NR.Kind = RelocKind::Rebase64;
    NR.Site = ExtraBases[ER.SectionIdx] + ER.Offset;
    NR.Addend = ER.Addend;
    New.DynRelocs.push_back(std::move(NR));
  }

  // Scan writable/read-only data for 8-byte code pointers and remap them
  // (BinCFI's heuristic; the recursive mode relies purely on relocations).
  // RuleGuided needs the same scan: jump tables and function-pointer
  // tables must land on the remapped heads (laid-out code or tier-enter
  // stubs), never in the vacated region.
  if (Mode == DisasmMode::LinearSweep || Mode == DisasmMode::RuleGuided) {
    for (Section &S : New.Sections) {
      if (S.Kind != SectionKind::Rodata && S.Kind != SectionKind::Data)
        continue;
      // Slide byte-wise (tables need not be aligned); skip past a patched
      // slot so its bytes are not reinterpreted mid-pointer.
      for (uint64_t Off = 0; Off + 8 <= S.Bytes.size();) {
        uint64_t V = readLE64(S.Bytes.data() + Off);
        if (uint64_t NV = MapAddr(V)) {
          patchLE64(S.Bytes, Off, NV);
          Off += 8;
        } else {
          ++Off;
        }
      }
    }
  }

  // Fill extra sections now that everything is placed. The declared size
  // reserved the address range during layout; content that outgrew it
  // cannot be truncated — the lost tail is live metadata (shadow bytes,
  // CFI bitmaps) and the binary would be silently wrong.
  for (unsigned EI = 0; EI < ExtraBases.size(); ++EI) {
    std::vector<uint8_t> Content =
        Client.buildExtraSection(EI, Mod, New, Res.OldToNew);
    if (Content.size() > ExtraSizes[EI])
      return makeError(formatString(
          "module '%s': extra section %u content is %zu bytes but was "
          "declared %llu (refusing to truncate)",
          Mod.Name.c_str(), EI, Content.size(),
          static_cast<unsigned long long>(ExtraSizes[EI])));
    for (Section &S : New.Sections)
      if (S.Addr == ExtraBases[EI] && S.Kind == SectionKind::Data) {
        Content.resize(ExtraSizes[EI], 0);
        S.Bytes = std::move(Content);
        break;
      }
  }

  // RuleGuided keeps the original executable bytes, demoted to read-only
  // data, at their old addresses: the DBI fallback tier translates the
  // *original* code when a tier-enter stub fires. Appended after the
  // data-pointer scan so the scan cannot patch the retained bytes.
  if (Mode == DisasmMode::RuleGuided)
    for (const Section *S : Rewritten) {
      Section Keep = *S;
      Keep.Kind = SectionKind::Rodata;
      New.Sections.push_back(std::move(Keep));
    }

  Res.NewMod = std::move(New);
  return Res;
}
