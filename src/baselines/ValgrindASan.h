//===- baselines/ValgrindASan.h - Dynamic-only memory checker -------------===//
///
/// \file
/// A Valgrind/Memcheck-class baseline: dynamic-only binary instrumentation
/// with no static analysis at all. Every load and store of every block is
/// checked; the translator is heavyweight (IR-based), modeled by a cost
/// profile with high per-instruction and per-indirect-transfer charges.
/// Its allocator uses 16-byte red zones (Memcheck's default), smaller than
/// JASan's — long-stride overflows that leap the red zone into an adjacent
/// allocation go undetected, one of the false-negative classes in the
/// paper's Juliet study. It has no concept of stack canaries, so
/// heap-to-stack overflows are missed entirely.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_BASELINES_VALGRINDASAN_H
#define JANITIZER_BASELINES_VALGRINDASAN_H

#include "dbi/Dbi.h"
#include "jasan/Allocator.h"

namespace janitizer {

/// Cost profile of the heavyweight translator. Valgrind's IR pipeline
/// re-enters its scheduler on every superblock transition — no direct
/// linking, no trace stitching.
inline DbiCostModel valgrindCostModel() {
  DbiCostModel C;
  C.TranslationPerInstr = 260;
  C.IndirectLookup = 18;
  C.CleanCallBase = 35;
  C.PerAppInstr = 6; // V-bit propagation work on every instruction
  C.LinkBlocks = false;
  C.BuildTraces = false;
  C.JitBlocks = false; // the modeled translator interprets its IR
  return C;
}

class ValgrindASanTool : public DbiTool {
public:
  explicit ValgrindASanTool() : Alloc(/*RedzoneBytes=*/16) {}

  std::string name() const override { return "valgrind-asan"; }

  void onModuleLoad(DbiEngine &E, const LoadedModule &LM) override;
  void instrumentBlock(DbiEngine &E, CacheBlock &Block, BlockBuilder &B,
                       const std::vector<DecodedInstrRT> &Instrs) override;
  bool interceptTarget(DbiEngine &E, uint64_t Target) override;
  bool isInterposedTarget(DbiEngine &E, uint64_t Target) override {
    return Target && (Target == MallocAddr || Target == FreeAddr ||
                      Target == CallocAddr || Target == ReallocAddr);
  }
  HookAction onHook(DbiEngine &E, const CacheOp &Op) override;

  RedzoneAllocator &allocator() { return Alloc; }

  /// Snapshot plumbing: only the allocator state travels; interposition
  /// addresses re-resolve during module-load replay.
  std::vector<uint8_t> captureState() override { return Alloc.serializeState(); }
  Error restoreState(const std::vector<uint8_t> &Bytes) override {
    return Bytes.empty() ? Error::success() : Alloc.deserializeState(Bytes);
  }

private:
  RedzoneAllocator Alloc;
  uint64_t MallocAddr = 0;
  uint64_t FreeAddr = 0;
  uint64_t CallocAddr = 0;
  uint64_t ReallocAddr = 0;
};

/// Runs \p ExeName under the Valgrind-style checker; returns the result
/// and leaves violations in the engine stats of \p Out.
struct BaselineRun {
  RunResult Result;
  std::vector<Violation> Violations;
  DbiStats Dbi;
  std::string Output;
};

BaselineRun runUnderValgrind(const ModuleStore &Store,
                             const std::string &ExeName,
                             uint64_t MaxSteps = 1ull << 32);

} // namespace janitizer

#endif // JANITIZER_BASELINES_VALGRINDASAN_H
