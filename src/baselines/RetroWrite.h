//===- baselines/RetroWrite.h - Static-only binary ASan (RetroWrite) ------===//
///
/// \file
/// RetroWrite-style static rewriting (§2.1): sound reassembly is possible
/// only when symbolization is decidable, i.e. for position-independent
/// modules whose code references are all pc-relative and whose data-held
/// code pointers all carry relocations. Accordingly:
///
///  - non-PIC modules are refused;
///  - modules with C++ exception-handling metadata are refused;
///  - coverage gaps in relocation-guided recursive disassembly (data
///    islands, undiscovered code) are refused.
///
/// Eligible modules get inline ASan checks (with *intra-procedural*
/// liveness, like the original) and canary poisoning; the rewritten
/// program links against a guest sanitizer runtime, libasan_rt.so, that
/// interposes malloc/free/calloc with red-zoned versions — the LD_PRELOAD
/// analogue. Rewritten programs run natively: no run-time translation
/// overhead, but also no coverage of dynamically loaded or generated code.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_BASELINES_RETROWRITE_H
#define JANITIZER_BASELINES_RETROWRITE_H

#include "baselines/StaticRewriter.h"
#include "vm/Process.h"

namespace janitizer {

/// The guest sanitizer runtime (exports malloc/free/calloc with red
/// zones and shadow poisoning, all in guest code).
Module buildAsanRuntime();

/// Rewrites one module with inline ASan instrumentation.
ErrorOr<RewriteResult> retroWriteModule(const Module &Mod);

/// Rewrites \p ExeName and its whole dependency closure from \p Store into
/// \p Out (which also receives libasan_rt.so and any unrewritten support
/// modules). Fails if any module in the closure is ineligible.
Error retroWriteProgram(const ModuleStore &Store, const std::string &ExeName,
                        ModuleStore &Out);

} // namespace janitizer

#endif // JANITIZER_BASELINES_RETROWRITE_H
