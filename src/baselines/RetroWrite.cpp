//===- baselines/RetroWrite.cpp -------------------------------------------==//

#include "baselines/RetroWrite.h"

#include "analysis/Canary.h"
#include "analysis/Liveness.h"
#include "jasan/JASan.h" // planScratch
#include "jasan/Shadow.h"
#include "jasm/Assembler.h"
#include "support/Format.h"

#include <set>

using namespace janitizer;

namespace {

SeqInstr sPush(Reg R) {
  SeqInstr S;
  S.I.Op = Opcode::PUSH;
  S.I.Rd = R;
  return S;
}
SeqInstr sPop(Reg R) {
  SeqInstr S;
  S.I.Op = Opcode::POP;
  S.I.Rd = R;
  return S;
}
SeqInstr sOp(Opcode Op) {
  SeqInstr S;
  S.I.Op = Op;
  return S;
}
SeqInstr sRI(Opcode Op, Reg R, int64_t Imm) {
  SeqInstr S;
  S.I.Op = Op;
  S.I.Rd = R;
  S.I.Imm = Imm;
  return S;
}
SeqInstr sMov(Reg Rd, Reg Rs) {
  SeqInstr S;
  S.I.Op = Opcode::MOV_RR;
  S.I.Rd = Rd;
  S.I.Rs = Rs;
  return S;
}

/// Builds the inline shadow-check sequence (the static-rewriting analogue
/// of JASan's emitShadowCheck; aborts at the first violation, as ASan
/// does).
InsertSeq shadowCheckSeq(const MemOperand &Mem, unsigned Size,
                         uint64_t OldAddr, unsigned InstrSize,
                         const ScratchPlan &Plan) {
  InsertSeq Seq;
  Reg S0 = Plan.S0, S1 = Plan.S1;
  unsigned Pushed = 0;
  if (Plan.SaveS0) {
    Seq.push_back(sPush(S0));
    ++Pushed;
  }
  if (Plan.SaveS1) {
    Seq.push_back(sPush(S1));
    ++Pushed;
  }
  if (Plan.SaveFlags) {
    Seq.push_back(sOp(Opcode::PUSHF));
    ++Pushed;
  }

  if (Mem.PCRel) {
    // Data addresses do not move; the absolute target is a constant.
    uint64_t Abs = OldAddr + InstrSize +
                   static_cast<uint64_t>(static_cast<int64_t>(Mem.Disp));
    Seq.push_back(sRI(Opcode::MOV_RI64, S0, static_cast<int64_t>(Abs)));
  } else {
    SeqInstr Lea;
    Lea.I.Op = Opcode::LEA;
    Lea.I.Rd = S0;
    Lea.I.Mem = Mem;
    if ((Mem.HasBase && Mem.Base == Reg::SP) ||
        (Mem.HasIndex && Mem.Index == Reg::SP))
      Lea.I.Mem.Disp += static_cast<int32_t>(8 * Pushed);
    Seq.push_back(Lea);
  }
  Seq.push_back(sMov(S1, S0));
  Seq.push_back(sRI(Opcode::SHRI, S1, 3));
  {
    SeqInstr Ld;
    Ld.I.Op = Opcode::LD1;
    Ld.I.Rd = S1;
    Ld.I.Mem.HasBase = true;
    Ld.I.Mem.Base = S1;
    Ld.I.Mem.Disp = static_cast<int32_t>(layout::ShadowBase);
    Seq.push_back(Ld);
  }
  Seq.push_back(sRI(Opcode::TESTI, S1, 0xFF));
  size_t FastOk = Seq.size();
  Seq.push_back(sOp(Opcode::JE)); // -> restores
  Seq.push_back(sRI(Opcode::CMPI, S1, 0x80));
  size_t PoisonBr = Seq.size();
  Seq.push_back(sOp(Opcode::JAE)); // -> trap
  Seq.push_back(sRI(Opcode::ANDI, S0, 7));
  Seq.push_back(sRI(Opcode::ADDI, S0, static_cast<int64_t>(Size) - 1));
  {
    SeqInstr Cmp;
    Cmp.I.Op = Opcode::CMP;
    Cmp.I.Rd = S0;
    Cmp.I.Rs = S1;
    Seq.push_back(Cmp);
  }
  size_t SlowOk = Seq.size();
  Seq.push_back(sOp(Opcode::JB)); // -> restores
  size_t TrapIdx = Seq.size();
  Seq.push_back(sRI(Opcode::TRAP, Reg::R0,
                    static_cast<int64_t>(TrapCode::AsanViolation)));
  size_t RestoresIdx = Seq.size();
  if (Plan.SaveFlags)
    Seq.push_back(sOp(Opcode::POPF));
  if (Plan.SaveS1)
    Seq.push_back(sPop(S1));
  if (Plan.SaveS0)
    Seq.push_back(sPop(S0));
  Seq[FastOk].JumpToSeqIdx = static_cast<int32_t>(RestoresIdx);
  Seq[PoisonBr].JumpToSeqIdx = static_cast<int32_t>(TrapIdx);
  Seq[SlowOk].JumpToSeqIdx = static_cast<int32_t>(RestoresIdx);
  return Seq;
}

/// Canary-slot shadow write sequence.
InsertSeq canaryShadowSeq(const MemOperand &SlotOperand, uint8_t Value,
                          const ScratchPlan &Plan) {
  InsertSeq Seq;
  Reg S0 = Plan.S0, S1 = Plan.S1;
  unsigned Pushed = 0;
  if (Plan.SaveS0) {
    Seq.push_back(sPush(S0));
    ++Pushed;
  }
  if (Plan.SaveS1) {
    Seq.push_back(sPush(S1));
    ++Pushed;
  }
  if (Plan.SaveFlags) {
    Seq.push_back(sOp(Opcode::PUSHF));
    ++Pushed;
  }
  SeqInstr Lea;
  Lea.I.Op = Opcode::LEA;
  Lea.I.Rd = S0;
  Lea.I.Mem = SlotOperand;
  if (SlotOperand.HasBase && SlotOperand.Base == Reg::SP)
    Lea.I.Mem.Disp += static_cast<int32_t>(8 * Pushed);
  Seq.push_back(Lea);
  Seq.push_back(sRI(Opcode::SHRI, S0, 3));
  Seq.push_back(sRI(Opcode::MOV_RI32, S1, Value));
  SeqInstr St;
  St.I.Op = Opcode::ST1;
  St.I.Rd = S1;
  St.I.Mem.HasBase = true;
  St.I.Mem.Base = S0;
  St.I.Mem.Disp = static_cast<int32_t>(layout::ShadowBase);
  Seq.push_back(St);
  if (Plan.SaveFlags)
    Seq.push_back(sOp(Opcode::POPF));
  if (Plan.SaveS1)
    Seq.push_back(sPop(S1));
  if (Plan.SaveS0)
    Seq.push_back(sPop(S0));
  return Seq;
}

/// Appends \p Src to \p Dst, rebasing Src's intra-sequence branch indices.
void appendSeq(InsertSeq &Dst, const InsertSeq &Src) {
  int32_t Base = static_cast<int32_t>(Dst.size());
  for (SeqInstr SI : Src) {
    if (SI.JumpToSeqIdx >= 0)
      SI.JumpToSeqIdx += Base;
    Dst.push_back(std::move(SI));
  }
}

uint16_t memOperandRegs(const MemOperand &M) {
  uint16_t Mask = 0;
  if (M.HasBase)
    Mask |= regBit(M.Base);
  if (M.HasIndex)
    Mask |= regBit(M.Index);
  return Mask;
}

class RetroWriteClient : public RewriteClient {
public:
  explicit RetroWriteClient(const Module &Mod) {
    CFG = buildCFG(Mod);
    // Intra-procedural liveness only, like the original (§6.1 footnote).
    Liveness = computeLiveness(CFG, {.InterProcedural = false});
    Canaries = analyzeCanaries(CFG);
    for (const CanarySite &CS : Canaries.Sites) {
      PoisonAt.insert(CS.StoreInstr);
      for (uint64_t L : CS.CheckLoads)
        UnpoisonAt.insert(L);
    }
  }

  DisasmMode disasmMode() const override { return DisasmMode::Recursive; }

  InsertSeq instrumentBefore(const Module &Mod, const Instruction &I,
                             uint64_t OldAddr) override {
    InsertSeq Seq;
    if (UnpoisonAt.count(OldAddr)) {
      ScratchPlan Plan = planScratch(Liveness.freeRegsAt(OldAddr),
                                     Liveness.at(OldAddr).Flags,
                                     memOperandRegs(I.Mem), false);
      appendSeq(Seq, canaryShadowSeq(I.Mem, shadowval::Addressable, Plan));
    }
    unsigned Size = memAccessSize(I.Op);
    if (Size) {
      ScratchPlan Plan = planScratch(Liveness.freeRegsAt(OldAddr),
                                     Liveness.at(OldAddr).Flags,
                                     memOperandRegs(I.Mem), false);
      appendSeq(Seq, shadowCheckSeq(I.Mem, Size, OldAddr, I.Size, Plan));
    }
    return Seq;
  }

  InsertSeq instrumentAfter(const Module &Mod, const Instruction &I,
                            uint64_t OldAddr) override {
    if (!PoisonAt.count(OldAddr))
      return {};
    ScratchPlan Plan = planScratch(Liveness.freeRegsAt(OldAddr),
                                   Liveness.at(OldAddr).Flags,
                                   memOperandRegs(I.Mem), false);
    return canaryShadowSeq(I.Mem, shadowval::StackCanary, Plan);
  }

private:
  ModuleCFG CFG;
  LivenessInfo Liveness;
  CanaryAnalysis Canaries;
  std::set<uint64_t> PoisonAt;
  std::set<uint64_t> UnpoisonAt;
};

} // namespace

ErrorOr<RewriteResult> janitizer::retroWriteModule(const Module &Mod) {
  if (!Mod.IsPIC)
    return makeError(formatString(
        "retrowrite: module '%s' is not position independent",
        Mod.Name.c_str()));
  if (Mod.HasEHMetadata)
    return makeError(formatString(
        "retrowrite: module '%s' carries C++ exception metadata",
        Mod.Name.c_str()));
  RetroWriteClient Client(Mod);
  return rewriteModule(Mod, Client);
}

Error janitizer::retroWriteProgram(const ModuleStore &Store,
                                   const std::string &ExeName,
                                   ModuleStore &Out) {
  std::vector<std::string> Work = {ExeName};
  std::set<std::string> Seen;
  bool First = true;
  while (!Work.empty()) {
    std::string Name = Work.back();
    Work.pop_back();
    if (!Seen.insert(Name).second)
      continue;
    const Module *Mod = Store.find(Name);
    if (!Mod)
      return makeError(formatString("module '%s' not found", Name.c_str()));
    for (const std::string &Dep : Mod->Needed)
      Work.push_back(Dep);
    auto RW = retroWriteModule(*Mod);
    if (!RW)
      return RW.takeError();
    Module NewMod = std::move(RW->NewMod);
    if (First) {
      // The LD_PRELOAD analogue: the runtime's allocator resolves first.
      NewMod.Needed.insert(NewMod.Needed.begin(), "libasan_rt.so");
      First = false;
    }
    Out.add(std::move(NewMod));
  }
  Out.add(buildAsanRuntime());
  return Error::success();
}

Module janitizer::buildAsanRuntime() {
  auto M = assembleModule(R"(
    .module libasan_rt.so
    .pic
    .shared

    .section text

    ; malloc(r0 = size) -> red-zoned allocation with poisoned shadow.
    ; Chunk layout: [64-byte red zone | user (16-rounded) | >=64-byte red
    ; zone]; the user size is recorded just below the user pointer.
    .global malloc
    .func malloc
    malloc:
      push r9
      push r10
      push r11
      mov r9, r0          ; requested size
      addi r0, 15
      andi r0, -16
      mov r10, r0         ; rounded
      addi r0, 128
      syscall 2           ; sbrk
      mov r11, r0         ; chunk base
      ; left red zone: 8 shadow bytes of 0xFA
      mov r5, r11
      shri r5, 3
      movi r6, 0
      movi r7, 0xFA
    rz1:
      st1 [r5 + r6 + 536870912], r7
      addi r6, 1
      cmpi r6, 8
      jl rz1
      ; unpoison the user area precisely
      mov r5, r11
      addi r5, 64
      shri r5, 3          ; first user granule
      mov r6, r9
      shri r6, 3          ; full granules
      movi r7, 0
      movi r8, 0
    un1:
      cmp r8, r6
      jae un_done
      st1 [r5 + r8 + 536870912], r7
      addi r8, 1
      jmp un1
    un_done:
      mov r7, r9
      andi r7, 7
      cmpi r7, 0
      je tailrz
      st1 [r5 + r8 + 536870912], r7
      addi r8, 1
    tailrz:
      ; poison the rest of the chunk
      mov r6, r11
      addi r6, 128
      add r6, r10
      shri r6, 3          ; end granule (exclusive)
      add r8, r5          ; current granule
      movi r7, 0xFA
    tz1:
      cmp r8, r6
      jae tz_done
      st1 [r8 + 536870912], r7
      addi r8, 1
      jmp tz1
    tz_done:
      mov r0, r11
      addi r0, 64         ; user pointer
      st8 [r11 + 56], r9  ; size record inside the left red zone
      pop r11
      pop r10
      pop r9
      ret
    .endfunc

    ; free(r0): poison the whole user area as freed (quarantine: never
    ; reused, catching use-after-free).
    .global free
    .func free
    free:
      cmpi r0, 0
      je f_done
      ld8 r6, [r0 - 8]    ; recorded size
      mov r7, r0
      shri r7, 3
      add r6, r0
      addi r6, 7
      shri r6, 3
      movi r8, 0xFD
    f_loop:
      cmp r7, r6
      jae f_done
      st1 [r7 + 536870912], r8
      addi r7, 1
      jmp f_loop
    f_done:
      ret
    .endfunc

    ; calloc(r0 = n, r1 = size): zeroed red-zoned allocation.
    .global calloc
    .func calloc
    calloc:
      mul r0, r1
      push r9
      mov r9, r0
      call malloc
      movi r5, 0
      movi r6, 0
    c_loop:
      cmp r5, r9
      jae c_done
      st1 [r0 + r5], r6
      addi r5, 1
      jmp c_loop
    c_done:
      pop r9
      ret
    .endfunc
  )");
  if (!M)
    JZ_UNREACHABLE(M.message().c_str());
  return *M;
}
