//===- baselines/Lockdown.h - Dynamic-only CFI (Lockdown) ------------------===//
///
/// \file
/// Reimplementation of Lockdown's policy (Payer et al.): a dynamic-only
/// CFI scheme running in its own lean DBT.
///
///  - Strong policy: inter-module indirect calls are allowed only when the
///    target is exported by the destination module *and* imported by the
///    source module, extended by a load-time heuristic that scans data
///    sections for code pointers. Callback targets whose addresses exist
///    only as code immediates or pc-relative LEAs are missed — the
///    false-positive cases of §6.2.2 (qsort comparators in h264ref,
///    cactusADM, gcc).
///  - Weak policy: inter-module calls may additionally target any code
///    byte of the destination module (no false positives, lower AIR).
///  - Intra-module calls: function-symbol entries.
///  - Indirect jumps: any byte of the enclosing function, identified by
///    the closest symbol (footnote 15's byte-granular policy).
///  - Returns: precise shadow stack. Lockdown's stack has no
///    resynchronization: a mismatch aborts the run — which is how the
///    omnetpp/dealII-style nonlocal unwinding breaks it.
///
/// Load-time data scanning is charged on every run (no offline phase).
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_BASELINES_LOCKDOWN_H
#define JANITIZER_BASELINES_LOCKDOWN_H

#include "dbi/Dbi.h"
#include "jcfi/Air.h"

#include <map>
#include <set>

namespace janitizer {

struct LockdownOptions {
  bool StrongPolicy = true;
  /// Record violations and continue (for the soundness study) instead of
  /// aborting.
  bool AbortOnViolation = false;
};

/// Lockdown's custom DBT is leaner than DynamoRIO.
inline DbiCostModel lockdownCostModel() {
  DbiCostModel C;
  C.TranslationPerInstr = 28;
  C.IndirectLookup = 5;
  return C;
}

class LockdownTool : public DbiTool {
public:
  explicit LockdownTool(LockdownOptions Opts = {}) : Opts(Opts) {}

  std::string name() const override { return "lockdown"; }

  void onModuleLoad(DbiEngine &E, const LoadedModule &LM) override;
  void onCodeMapped(DbiEngine &E, uint64_t Addr, uint64_t Len) override;
  void instrumentBlock(DbiEngine &E, CacheBlock &Block, BlockBuilder &B,
                       const std::vector<DecodedInstrRT> &Instrs) override;
  HookAction onHook(DbiEngine &E, const CacheOp &Op) override;

  const std::vector<ExecutedSite> &executedSites() const {
    return ExecutedSites;
  }
  uint64_t loadedCodeBytes() const { return LoadedCodeBytes; }
  /// True when the run died from a shadow-stack inconsistency (the
  /// cannot-run failure mode).
  bool stackInconsistency() const { return StackBroken; }

private:
  struct RtModule {
    const LoadedModule *LM = nullptr;
    std::set<uint64_t> FuncEntries; ///< function symbols (runtime)
    std::map<uint64_t, uint64_t> FuncSpans;
    std::map<uint64_t, std::string> ExportsByAddr;
    std::set<std::string> Imports;
    std::set<uint64_t> DataScannedPointers; ///< the callback heuristic
    bool Dlopened = false; ///< loaded at run time (dlsym targets wrapped)
    uint64_t PltStart = 0, PltEnd = 0;
    bool inPlt(uint64_t A) const { return A >= PltStart && A < PltEnd; }
  };

  enum HookId : uint32_t {
    HookPushRet = 1,
    HookCheckRet = 2,
    HookCheckCall = 3,
    HookCheckJump = 4,
    HookLazyRet = 5,
  };

  const RtModule *moduleFor(uint64_t A) const;
  bool checkCall(uint64_t From, uint64_t Target, uint64_t &Allowed) const;
  void violation(DbiEngine &E, const char *Kind, uint64_t From,
                 uint64_t Target);

  LockdownOptions Opts;
  std::map<unsigned, RtModule> Modules;
  std::vector<std::pair<uint64_t, uint64_t>> JitRegions;
  std::vector<uint64_t> ShadowStack;
  std::vector<ExecutedSite> ExecutedSites;
  std::set<uint64_t> SeenSites;
  uint64_t LoadedCodeBytes = 0;
  bool StackBroken = false;
  bool RunStarted = false;
};

/// AIR over the executed sites of a finished Lockdown run.
AirResult lockdownDynamicAir(const LockdownTool &Tool);

struct LockdownRun {
  RunResult Result;
  std::vector<Violation> Violations;
  AirResult Air;
  bool StackInconsistency = false;
  uint64_t Cycles = 0;
  std::string Output;
};

LockdownRun runUnderLockdown(const ModuleStore &Store,
                             const std::string &ExeName,
                             LockdownOptions Opts = {},
                             uint64_t MaxSteps = 1ull << 32);

} // namespace janitizer

#endif // JANITIZER_BASELINES_LOCKDOWN_H
