//===- cfg/CFG.h - Control-flow recovery for JELF modules -----------------===//
///
/// \file
/// Builds basic blocks, edges and a function partition for one module.
/// Following the paper (§3.3.1), control-flow construction covers *all*
/// executable sections — .text, .plt, .init and .fini — and does not skip
/// functions without loops or blocks unreachable from their function entry.
///
/// Discovery is recursive-descent from a root set (entry point, symbol
/// table, exported symbols, PLT stubs, .init/.fini, plus any extra roots
/// the caller supplies, e.g. code-pointer scan results). Code reachable
/// only through indirect control flow that no root covers is *not*
/// discovered — that is the honest gap the dynamic modifier's fallback
/// analysis exists to close (§3.4.3), and what Figure 14 measures.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_CFG_CFG_H
#define JANITIZER_CFG_CFG_H

#include "isa/Instruction.h"
#include "jelf/Module.h"
#include "support/Error.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace janitizer {

/// A decoded instruction pinned at its link-time address.
struct DecodedInstr {
  Instruction I;
  uint64_t Addr = 0;

  uint64_t end() const { return Addr + I.Size; }
};

/// A basic block: straight-line code ending at a CTI (or at the start of
/// another block).
struct BasicBlock {
  uint64_t Start = 0;
  uint64_t End = 0; ///< exclusive
  std::vector<DecodedInstr> Instrs;
  /// Statically known successor block addresses (branch targets and
  /// fall-throughs; excludes call targets, which are function roots).
  std::vector<uint64_t> Succs;
  /// Predecessor block addresses.
  std::vector<uint64_t> Preds;
  CTIKind Term = CTIKind::None; ///< kind of the terminating CTI (None if the
                                ///< block falls through into another block)
  /// Direct call target if the block ends in a direct call, else 0.
  uint64_t CallTarget = 0;
  /// Index into ModuleCFG::Functions, or ~0u if unassigned.
  unsigned FuncIdx = ~0u;

  const DecodedInstr &terminator() const { return Instrs.back(); }
  bool endsInIndirect() const {
    return Term == CTIKind::IndirectCall || Term == CTIKind::IndirectJump;
  }
};

/// A function: an entry block plus every block reachable from it through
/// intra-procedural edges.
struct CfgFunction {
  std::string Name; ///< symbol name or synthesized "func_<addr>"
  uint64_t Entry = 0;
  std::vector<uint64_t> Blocks; ///< block start addresses, entry first
  bool FromSymbol = false;      ///< entry came from the symbol table
  /// Synthesized owner for blocks reachable only from non-entry extra
  /// roots; not a real function boundary.
  bool Synthetic = false;
};

/// The recovered control-flow structure of one module (link-time
/// addresses throughout).
class ModuleCFG {
public:
  const Module *Mod = nullptr;
  std::map<uint64_t, BasicBlock> Blocks; ///< keyed by start address
  std::vector<CfgFunction> Functions;

  /// Returns the block starting at \p Addr, or nullptr.
  const BasicBlock *blockAt(uint64_t Addr) const {
    auto It = Blocks.find(Addr);
    return It == Blocks.end() ? nullptr : &It->second;
  }

  /// Returns the block *containing* \p Addr, or nullptr.
  const BasicBlock *blockContaining(uint64_t Addr) const;

  /// Returns the function with entry \p Addr, or nullptr.
  const CfgFunction *functionAt(uint64_t Addr) const;

  /// True if \p Addr is a discovered function entry.
  bool isFunctionEntry(uint64_t Addr) const {
    return functionAt(Addr) != nullptr;
  }

  /// True if \p Addr is the start of any decoded instruction.
  bool isInstructionBoundary(uint64_t Addr) const;

  /// Total decoded instructions.
  size_t instructionCount() const;
};

struct CFGBuildOptions {
  /// Additional discovery roots (e.g. from the code-pointer scan).
  std::vector<uint64_t> ExtraRoots;
};

/// Builds the CFG of \p Mod. Never fails outright: undecodable paths are
/// simply not explored (they stay for the dynamic fallback).
ModuleCFG buildCFG(const Module &Mod, const CFGBuildOptions &Opts = {});

} // namespace janitizer

#endif // JANITIZER_CFG_CFG_H
