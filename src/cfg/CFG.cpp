//===- cfg/CFG.cpp --------------------------------------------------------==//

#include "cfg/CFG.h"

#include "isa/Encoding.h"
#include "support/Format.h"

#include <algorithm>
#include <deque>
#include <set>

using namespace janitizer;

const BasicBlock *ModuleCFG::blockContaining(uint64_t Addr) const {
  auto It = Blocks.upper_bound(Addr);
  if (It == Blocks.begin())
    return nullptr;
  --It;
  return Addr < It->second.End ? &It->second : nullptr;
}

const CfgFunction *ModuleCFG::functionAt(uint64_t Addr) const {
  for (const CfgFunction &F : Functions)
    if (F.Entry == Addr)
      return &F;
  return nullptr;
}

bool ModuleCFG::isInstructionBoundary(uint64_t Addr) const {
  const BasicBlock *BB = blockContaining(Addr);
  if (!BB)
    return false;
  for (const DecodedInstr &DI : BB->Instrs)
    if (DI.Addr == Addr)
      return true;
  return false;
}

size_t ModuleCFG::instructionCount() const {
  size_t N = 0;
  for (const auto &[_, BB] : Blocks)
    N += BB.Instrs.size();
  return N;
}

namespace {

/// Incremental CFG builder: recursive-descent over the module's executable
/// sections with block splitting.
class Builder {
public:
  Builder(const Module &Mod, const CFGBuildOptions &Opts)
      : Mod(Mod), Opts(Opts) {}

  ModuleCFG run();

private:
  bool decodeAt(uint64_t VA, Instruction &I) const;
  void explore(uint64_t VA);
  void splitAt(uint64_t VA);
  std::vector<uint64_t> collectRoots(bool IncludeExtra) const;
  void partitionFunctions(ModuleCFG &CFG,
                          const std::vector<uint64_t> &FuncRoots);

  const Module &Mod;
  const CFGBuildOptions &Opts;
  std::map<uint64_t, BasicBlock> Blocks;
  std::deque<uint64_t> Work;
  std::set<uint64_t> Queued;
};

bool Builder::decodeAt(uint64_t VA, Instruction &I) const {
  const Section *S = Mod.sectionAt(VA);
  if (!S || !isExecutableSection(S->Kind))
    return false;
  uint64_t Off = VA - S->Addr;
  if (Off >= S->Bytes.size())
    return false;
  return decode(S->Bytes.data() + Off, S->Bytes.size() - Off, I);
}

/// Splits the block containing \p VA so a block starts exactly at \p VA.
void Builder::splitAt(uint64_t VA) {
  auto It = Blocks.upper_bound(VA);
  if (It == Blocks.begin())
    return;
  --It;
  BasicBlock &Old = It->second;
  if (VA <= Old.Start || VA >= Old.End)
    return;
  // Find the instruction boundary; if VA is mid-instruction this is
  // overlapping code — leave it alone (will form its own block).
  auto Split = std::find_if(Old.Instrs.begin(), Old.Instrs.end(),
                            [&](const DecodedInstr &DI) {
                              return DI.Addr == VA;
                            });
  if (Split == Old.Instrs.end())
    return;
  BasicBlock New;
  New.Start = VA;
  New.End = Old.End;
  New.Instrs.assign(Split, Old.Instrs.end());
  New.Succs = std::move(Old.Succs);
  New.Term = Old.Term;
  New.CallTarget = Old.CallTarget;
  Old.Instrs.erase(Split, Old.Instrs.end());
  Old.End = VA;
  Old.Succs.clear();
  Old.Succs.push_back(VA); // fall-through edge
  Old.Term = CTIKind::None;
  Old.CallTarget = 0;
  Blocks[VA] = std::move(New);
}

void Builder::explore(uint64_t VA) {
  // Already the start of a block?
  if (Blocks.count(VA))
    return;
  // Inside an existing block? Split it.
  auto Prev = Blocks.upper_bound(VA);
  if (Prev != Blocks.begin()) {
    auto It = std::prev(Prev);
    if (VA > It->second.Start && VA < It->second.End) {
      splitAt(VA);
      if (Blocks.count(VA))
        return;
      // Mid-instruction target: fall through and decode an overlapping
      // block (binary code allows this; the interpreter would too).
    }
  }

  BasicBlock BB;
  BB.Start = VA;
  uint64_t PC = VA;
  while (true) {
    // Stop if we run into the start of an already-known block.
    if (PC != VA && Blocks.count(PC)) {
      BB.End = PC;
      BB.Term = CTIKind::None;
      BB.Succs.push_back(PC);
      break;
    }
    Instruction I;
    if (!decodeAt(PC, I)) {
      // Undecodable or out of section: end the block here (may be empty).
      BB.End = PC;
      break;
    }
    BB.Instrs.push_back({I, PC});
    uint64_t Next = PC + I.Size;
    CTIKind K = ctiKind(I.Op);
    if (K == CTIKind::None) {
      PC = Next;
      continue;
    }
    BB.End = Next;
    BB.Term = K;
    switch (K) {
    case CTIKind::DirectJump:
      BB.Succs.push_back(I.branchTarget(PC));
      break;
    case CTIKind::CondJump:
      BB.Succs.push_back(I.branchTarget(PC));
      BB.Succs.push_back(Next);
      break;
    case CTIKind::DirectCall:
      BB.CallTarget = I.branchTarget(PC);
      BB.Succs.push_back(Next); // the call returns
      break;
    case CTIKind::IndirectCall:
      BB.Succs.push_back(Next);
      break;
    case CTIKind::IndirectJump:
    case CTIKind::Return:
    case CTIKind::Halt:
    case CTIKind::Trap:
      break;
    default:
      break;
    }
    break;
  }
  if (BB.Instrs.empty())
    return;
  uint64_t Start = BB.Start;
  std::vector<uint64_t> Succs = BB.Succs;
  uint64_t CallTarget = BB.CallTarget;
  Blocks[Start] = std::move(BB);
  for (uint64_t S : Succs)
    if (!Queued.count(S)) {
      Queued.insert(S);
      Work.push_back(S);
    }
  if (CallTarget && !Queued.count(CallTarget)) {
    Queued.insert(CallTarget);
    Work.push_back(CallTarget);
  }
}

std::vector<uint64_t> Builder::collectRoots(bool IncludeExtra) const {
  std::vector<uint64_t> Roots;
  auto Add = [&](uint64_t VA) {
    if (Mod.isCodeAddress(VA) &&
        std::find(Roots.begin(), Roots.end(), VA) == Roots.end())
      Roots.push_back(VA);
  };
  if (Mod.Entry)
    Add(Mod.Entry);
  for (const Symbol &S : Mod.Symbols)
    if (S.IsFunction || S.Exported)
      Add(S.Value);
  for (const PltEntry &P : Mod.Plt) {
    Add(P.StubVA);
    Add(P.LazyVA);
  }
  // .init/.fini/.plt section starts (plt0 lives at the .plt start).
  for (const Section &S : Mod.Sections)
    if (S.Kind == SectionKind::Init || S.Kind == SectionKind::Fini ||
        S.Kind == SectionKind::Plt)
      if (S.size() > 0)
        Add(S.Addr);
  if (IncludeExtra)
    for (uint64_t R : Opts.ExtraRoots)
      Add(R);
  return Roots;
}

void Builder::partitionFunctions(ModuleCFG &CFG,
                                 const std::vector<uint64_t> &FuncRoots) {
  // Function entries: symbol-table functions, exported symbols, direct call
  // targets, the module entry and PLT stubs.
  std::set<uint64_t> Entries(FuncRoots.begin(), FuncRoots.end());
  for (const auto &[_, BB] : CFG.Blocks)
    if (BB.CallTarget && CFG.Blocks.count(BB.CallTarget))
      Entries.insert(BB.CallTarget);

  for (uint64_t Entry : Entries) {
    if (!CFG.Blocks.count(Entry))
      continue;
    CfgFunction F;
    F.Entry = Entry;
    const Symbol *Sym = nullptr;
    for (const Symbol &S : Mod.Symbols)
      if (S.IsFunction && S.Value == Entry)
        Sym = &S;
    F.FromSymbol = Sym != nullptr;
    F.Name = Sym ? Sym->Name
                 : formatString("func_%llx",
                                static_cast<unsigned long long>(Entry));
    CFG.Functions.push_back(std::move(F));
  }

  // Assign blocks: BFS from each entry across intra-procedural edges,
  // stopping at other function entries (tail calls). First owner wins;
  // blocks shared between functions stay with their first discoverer.
  for (unsigned FI = 0; FI < CFG.Functions.size(); ++FI) {
    CfgFunction &F = CFG.Functions[FI];
    std::deque<uint64_t> Q = {F.Entry};
    while (!Q.empty()) {
      uint64_t A = Q.front();
      Q.pop_front();
      auto It = CFG.Blocks.find(A);
      if (It == CFG.Blocks.end())
        continue;
      BasicBlock &BB = It->second;
      if (BB.FuncIdx != ~0u)
        continue;
      if (A != F.Entry && Entries.count(A))
        continue; // another function's entry (tail-call target)
      BB.FuncIdx = FI;
      F.Blocks.push_back(A);
      for (uint64_t S : BB.Succs)
        Q.push_back(S);
    }
  }

  // Orphan blocks (reachable only via extra roots that are not function
  // entries) get singleton ownership so analyses still see them, matching
  // the paper's requirement to analyze blocks unreachable from entry nodes.
  for (auto &[Addr, BB] : CFG.Blocks) {
    if (BB.FuncIdx != ~0u)
      continue;
    CfgFunction F;
    F.Entry = Addr;
    F.Name = formatString("orphan_%llx", static_cast<unsigned long long>(Addr));
    F.Synthetic = true;
    F.Blocks.push_back(Addr);
    BB.FuncIdx = static_cast<unsigned>(CFG.Functions.size());
    CFG.Functions.push_back(std::move(F));
  }
}

ModuleCFG Builder::run() {
  std::vector<uint64_t> Roots = collectRoots(/*IncludeExtra=*/true);
  for (uint64_t R : Roots)
    if (!Queued.count(R)) {
      Queued.insert(R);
      Work.push_back(R);
    }
  while (!Work.empty()) {
    uint64_t VA = Work.front();
    Work.pop_front();
    explore(VA);
  }

  ModuleCFG CFG;
  CFG.Mod = &Mod;
  CFG.Blocks = std::move(Blocks);

  // Predecessor lists.
  for (auto &[Addr, BB] : CFG.Blocks)
    for (uint64_t S : BB.Succs)
      if (auto It = CFG.Blocks.find(S); It != CFG.Blocks.end())
        It->second.Preds.push_back(Addr);

  // Extra (discovery) roots explore code but do not define function
  // boundaries; blocks only they reach become synthetic orphans.
  partitionFunctions(CFG, collectRoots(/*IncludeExtra=*/false));
  return CFG;
}

} // namespace

ModuleCFG janitizer::buildCFG(const Module &Mod, const CFGBuildOptions &Opts) {
  Builder B(Mod, Opts);
  return B.run();
}
