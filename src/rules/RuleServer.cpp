//===- rules/RuleServer.cpp -----------------------------------------------==//

#include "rules/RuleServer.h"

#include "rules/RewriteRules.h"
#include "support/FaultInjector.h"
#include "support/Format.h"
#include "support/Metrics.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace janitizer;
using namespace janitizer::ruleproto;

namespace {

/// Poll interval for loops that must notice Stopping promptly without
/// busy-waiting.
constexpr int PollMs = 100;

Error makeSockaddr(const std::string &Path, sockaddr_un &Addr) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return makeError(formatString("socket path too long (%zu bytes): %s",
                                  Path.size(), Path.c_str()));
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
  return Error::success();
}

} // namespace

Error RuleServer::start(const RuleServerOptions &StartOpts) {
  if (Running.load())
    return makeError("rule server already running");
  Opts = StartOpts;
  if (Opts.Shards == 0)
    Opts.Shards = 1;

  ShardsVec.clear();
  for (unsigned I = 0; I < Opts.Shards; ++I) {
    auto S = std::make_unique<Shard>();
    if (!Opts.DiskDir.empty())
      S->Disk = std::make_unique<RuleCache>(
          formatString("%s/shard-%u", Opts.DiskDir.c_str(), I));
    ShardsVec.push_back(std::move(S));
  }

  sockaddr_un Addr;
  if (Error E = makeSockaddr(Opts.SocketPath, Addr))
    return E;
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return makeError(formatString("socket: %s", std::strerror(errno)));
  // A stale socket file from a dead daemon would make bind fail; remove
  // it — a live daemon would still hold the listening socket, and its
  // clients keep their established connections.
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Error E = makeError(formatString("bind %s: %s", Opts.SocketPath.c_str(),
                                     std::strerror(errno)));
    ::close(ListenFd);
    ListenFd = -1;
    return E;
  }
  if (::listen(ListenFd, 64) < 0) {
    Error E = makeError(formatString("listen: %s", std::strerror(errno)));
    ::close(ListenFd);
    ListenFd = -1;
    return E;
  }

  Stopping.store(false);
  Running.store(true, std::memory_order_release);
  AcceptThread = std::thread([this] { acceptLoop(); });
  return Error::success();
}

void RuleServer::stop() {
  if (!Running.exchange(false))
    return;
  Stopping.store(true);
  if (AcceptThread.joinable())
    AcceptThread.join();
  std::vector<std::thread> Conns;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    Conns.swap(ConnThreads);
  }
  for (std::thread &T : Conns)
    if (T.joinable())
      T.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  ::unlink(Opts.SocketPath.c_str());
}

size_t RuleServer::entryCount() const {
  size_t N = 0;
  for (const auto &S : ShardsVec) {
    std::lock_guard<std::mutex> Lock(S->Mu);
    N += S->Entries.size();
  }
  return N;
}

bool RuleServer::publishLocal(uint64_t ModuleHash, const std::string &Tool,
                              const std::vector<uint8_t> &Bytes) {
  ErrorOr<RuleFile> RF = RuleFile::deserialize(Bytes);
  if (!RF)
    return false;
  Shard &S = shardFor(ModuleHash);
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Entries[{ModuleHash, Tool}] = Bytes;
  if (S.Disk)
    S.Disk->store(ModuleHash, Tool, *RF);
  return true;
}

void RuleServer::acceptLoop() {
  while (!Stopping.load(std::memory_order_acquire)) {
    pollfd Pfd{ListenFd, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, PollMs);
    if (Ready <= 0)
      continue; // timeout or EINTR: re-check Stopping
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    if (FaultInjector::shouldFail("ruled.accept")) {
      // A daemon refusing connections: the client sees an immediate
      // close and must degrade to local analysis.
      ::close(Fd);
      continue;
    }
    Stats.Connections.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(ConnMu);
    ConnThreads.emplace_back([this, Fd] { serveConnection(Fd); });
  }
}

void RuleServer::serveConnection(int Fd) {
  while (!Stopping.load(std::memory_order_acquire)) {
    pollfd Pfd{Fd, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, PollMs);
    if (Ready < 0 && errno != EINTR)
      break;
    if (Ready <= 0)
      continue;
    ErrorOr<std::vector<uint8_t>> Frame = readFrame(Fd);
    if (!Frame)
      break; // I/O error: drop the connection
    if (Frame->empty())
      break; // clean EOF
    ErrorOr<RuleRequest> Req = decodeRuleRequest(*Frame);
    if (!Req) {
      // A malformed request is a protocol breach, not a transient
      // condition: close rather than guess at framing.
      Stats.BadRequests.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    RuleResponse Resp = handle(*Req);
    if (Error E = writeFrame(Fd, encodeRuleResponse(Resp)))
      break;
  }
  ::close(Fd);
}

RuleResponse RuleServer::handle(const RuleRequest &Req) {
  RuleResponse Resp;
  Resp.Entries.reserve(Req.Entries.size());
  MetricsRegistry &MR = MetricsRegistry::instance();
  for (const RuleRequestEntry &E : Req.Entries) {
    RuleResponseEntry R;
    Shard &S = shardFor(E.ModuleHash);
    if (Req.Op == Opcode::Fetch) {
      Stats.Fetches.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> Lock(S.Mu);
      auto It = S.Entries.find({E.ModuleHash, E.Tool});
      if (It != S.Entries.end()) {
        R.St = Status::Hit;
        R.Bytes = It->second;
      } else if (S.Disk) {
        // Lazily rehydrate from the shard's disk backing (a restarted
        // daemon serving a warm on-disk store).
        if (std::optional<RuleFile> RF = S.Disk->lookup(E.ModuleHash,
                                                        E.Tool)) {
          R.St = Status::Hit;
          R.Bytes = RF->serialize();
          S.Entries[{E.ModuleHash, E.Tool}] = R.Bytes;
        }
      }
      if (R.St == Status::Hit) {
        Stats.Hits.fetch_add(1, std::memory_order_relaxed);
        MR.counter("jz.ruled.hits").inc();
      } else {
        Stats.Misses.fetch_add(1, std::memory_order_relaxed);
        MR.counter("jz.ruled.misses").inc();
      }
    } else {
      Stats.Publishes.fetch_add(1, std::memory_order_relaxed);
      // Validate before installing: the server only ever serves bytes
      // that round-trip the hardened deserializer. (Degraded rule files
      // are screened out by the *client* — the Degraded flag is not
      // serialized, so it cannot be checked here.)
      ErrorOr<RuleFile> RF = RuleFile::deserialize(E.Bytes);
      if (RF) {
        R.St = Status::Hit; // accepted
        std::lock_guard<std::mutex> Lock(S.Mu);
        S.Entries[{E.ModuleHash, E.Tool}] = E.Bytes;
        if (S.Disk)
          S.Disk->store(E.ModuleHash, E.Tool, *RF);
        MR.counter("jz.ruled.publishes").inc();
      } else {
        Stats.Rejects.fetch_add(1, std::memory_order_relaxed);
        MR.counter("jz.ruled.rejects").inc();
      }
    }
    Resp.Entries.push_back(std::move(R));
  }
  return Resp;
}
