//===- rules/RuleServer.h - In-process rule daemon core --------------------===//
///
/// \file
/// The serving core of jz-ruled (DESIGN.md §5f): a unix-domain-socket
/// server handing pre-analyzed rule files to a fleet of guest processes.
/// One module is analyzed once per *fleet*; every other process fetches
/// the finished rule file in one round trip instead of re-running the
/// static analyzer.
///
/// The store is sharded by module content hash: each shard owns its own
/// mutex, in-memory map, and (optionally) an on-disk RuleCache subtree,
/// so concurrent fetches from a wave of clients only contend when they
/// address the same shard. Published payloads are validated with the
/// hardened RuleFile::deserialize before they are accepted — a client
/// cannot poison the fleet with bytes the loader would reject.
///
/// Embeddable: tools (jz-ruled, jz-fleet) and tests run the server
/// in-process on a background thread; start() binds and returns, stop()
/// joins every connection thread. Fault point `ruled.accept` drops fresh
/// connections at accept time, which clients must survive by falling
/// back to local analysis.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_RULES_RULESERVER_H
#define JANITIZER_RULES_RULESERVER_H

#include "rules/RuleCache.h"
#include "rules/RuleProtocol.h"
#include "support/Error.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace janitizer {

struct RuleServerOptions {
  std::string SocketPath;
  /// Number of independent store shards (>= 1).
  unsigned Shards = 8;
  /// When non-empty, each shard persists through a RuleCache under
  /// `<DiskDir>/shard-<i>`, so a restarted daemon reloads its store
  /// lazily from disk.
  std::string DiskDir;
};

struct RuleServerStats {
  std::atomic<uint64_t> Connections{0};
  std::atomic<uint64_t> Fetches{0};
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Publishes{0};
  std::atomic<uint64_t> Rejects{0};
  std::atomic<uint64_t> BadRequests{0};
};

class RuleServer {
public:
  RuleServer() = default;
  ~RuleServer() { stop(); }
  RuleServer(const RuleServer &) = delete;
  RuleServer &operator=(const RuleServer &) = delete;

  /// Binds the socket, spawns the accept thread, returns. Fails if the
  /// path cannot be bound.
  Error start(const RuleServerOptions &Opts);

  /// Stops accepting, closes every connection, joins all threads, and
  /// unlinks the socket. Idempotent.
  void stop();

  bool running() const { return Running.load(std::memory_order_acquire); }
  const RuleServerStats &stats() const { return Stats; }

  /// Total in-memory entries across shards (test observability).
  size_t entryCount() const;

  /// Direct store access for pre-seeding (the warm-server benchmark
  /// config) without a socket round trip. Returns false when \p Bytes is
  /// not a valid serialized RuleFile.
  bool publishLocal(uint64_t ModuleHash, const std::string &Tool,
                    const std::vector<uint8_t> &Bytes);

private:
  struct Shard {
    mutable std::mutex Mu;
    std::map<std::pair<uint64_t, std::string>, std::vector<uint8_t>> Entries;
    std::unique_ptr<RuleCache> Disk;
  };

  Shard &shardFor(uint64_t ModuleHash) {
    return *ShardsVec[ModuleHash % ShardsVec.size()];
  }

  void acceptLoop();
  void serveConnection(int Fd);
  RuleResponse handle(const RuleRequest &Req);

  RuleServerOptions Opts;
  std::vector<std::unique_ptr<Shard>> ShardsVec;
  RuleServerStats Stats;

  int ListenFd = -1;
  std::atomic<bool> Running{false};
  std::atomic<bool> Stopping{false};
  std::thread AcceptThread;
  std::mutex ConnMu;
  std::vector<std::thread> ConnThreads;
};

} // namespace janitizer

#endif // JANITIZER_RULES_RULESERVER_H
