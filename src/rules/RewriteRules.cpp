//===- rules/RewriteRules.cpp ---------------------------------------------==//

#include "rules/RewriteRules.h"

#include "support/Endian.h"
#include "support/Error.h"
#include "support/FaultInjector.h"
#include "support/Format.h"

using namespace janitizer;

const char *janitizer::ruleIdName(RuleId Id) {
  switch (Id) {
  case RuleId::NoOp: return "NO_OP";
  case RuleId::AsanCheck: return "MEM_ACCESS";
  case RuleId::AsanElide: return "MEM_SAFE";
  case RuleId::AsanHoistedCheck: return "MEM_HOISTED";
  case RuleId::AsanPoisonCanary: return "POISON_CANARY";
  case RuleId::AsanUnpoisonCanary: return "UNPOISON_CANARY";
  case RuleId::CfiCheckCall: return "CFI_ICALL";
  case RuleId::CfiCheckJump: return "CFI_IJUMP";
  case RuleId::CfiCheckReturn: return "CFI_RET";
  case RuleId::CfiPushRet: return "CFI_PUSH_RET";
  case RuleId::CfiLazyBindRet: return "CFI_LAZY_RET";
  }
  return "UNKNOWN";
}

namespace {
constexpr uint32_t RuleMagic = 0x4C55524A; // "JRUL"
} // namespace

std::vector<uint8_t> RuleFile::serialize() const {
  std::vector<uint8_t> Buf;
  writeLE32(Buf, RuleMagic);
  writeLE32(Buf, static_cast<uint32_t>(ModuleName.size()));
  Buf.insert(Buf.end(), ModuleName.begin(), ModuleName.end());
  writeLE32(Buf, static_cast<uint32_t>(ToolName.size()));
  Buf.insert(Buf.end(), ToolName.begin(), ToolName.end());
  writeLE32(Buf, static_cast<uint32_t>(Rules.size()));
  for (const RewriteRule &R : Rules) {
    writeLE16(Buf, static_cast<uint16_t>(R.Id));
    writeLE64(Buf, R.BBAddr);
    writeLE64(Buf, R.InstrAddr);
    for (uint64_t D : R.Data)
      writeLE64(Buf, D);
  }
  return Buf;
}

ErrorOr<RuleFile> RuleFile::deserialize(const std::vector<uint8_t> &Blob) {
  if (FaultInjector::shouldFail("rules.parse"))
    return makeError("injected fault: rules.parse");
  size_t Pos = 0;
  auto Avail = [&](size_t N) { return Pos + N <= Blob.size(); };
  if (!Avail(4) || readLE32(Blob.data()) != RuleMagic)
    return makeError("bad rule-file magic");
  Pos = 4;
  RuleFile RF;
  auto ReadStr = [&](std::string &S) {
    if (!Avail(4))
      return false;
    uint32_t Len = readLE32(Blob.data() + Pos);
    Pos += 4;
    if (!Avail(Len))
      return false;
    S.assign(reinterpret_cast<const char *>(Blob.data() + Pos), Len);
    Pos += Len;
    return true;
  };
  if (!ReadStr(RF.ModuleName) || !ReadStr(RF.ToolName))
    return makeError("truncated rule file header");
  if (!Avail(4))
    return makeError("truncated rule count");
  uint32_t N = readLE32(Blob.data() + Pos);
  Pos += 4;
  for (uint32_t I = 0; I < N; ++I) {
    if (!Avail(2 + 8 * 6))
      return makeError("truncated rule record");
    RewriteRule R;
    uint16_t RawId = readLE16(Blob.data() + Pos);
    if (!isValidRuleId(RawId))
      return makeError(formatString("invalid rule id %u in rule %u",
                                    static_cast<unsigned>(RawId),
                                    static_cast<unsigned>(I)));
    R.Id = static_cast<RuleId>(RawId);
    Pos += 2;
    R.BBAddr = readLE64(Blob.data() + Pos);
    Pos += 8;
    R.InstrAddr = readLE64(Blob.data() + Pos);
    Pos += 8;
    for (uint64_t &D : R.Data) {
      D = readLE64(Blob.data() + Pos);
      Pos += 8;
    }
    RF.Rules.push_back(R);
  }
  return RF;
}

Error RuleFile::validateForLoad(const std::string &ModName,
                                const std::string &Tool) const {
  if (FaultInjector::shouldFail("dynamic.rules.validate"))
    return makeError("injected fault: dynamic.rules.validate");
  if (ModuleName != ModName)
    return makeError(formatString(
        "rule file names module '%s' but is attached to '%s'",
        ModuleName.c_str(), ModName.c_str()));
  if (ToolName != Tool)
    return makeError(formatString(
        "rule file was produced by tool '%s', expected '%s'",
        ToolName.c_str(), Tool.c_str()));
  for (const RewriteRule &R : Rules)
    if (!isValidRuleId(static_cast<uint16_t>(R.Id)))
      return makeError(formatString("rule carries invalid id %u",
                                    static_cast<unsigned>(R.Id)));
  return Error::success();
}

RuleTable::RuleTable(const RuleFile &File, int64_t Slide) {
  for (const RewriteRule &R : File.Rules) {
    RewriteRule Adj = R;
    Adj.BBAddr = static_cast<uint64_t>(static_cast<int64_t>(R.BBAddr) + Slide);
    Adj.InstrAddr =
        static_cast<uint64_t>(static_cast<int64_t>(R.InstrAddr) + Slide);
    ByBlock[Adj.BBAddr].push_back(Adj);
    if (Adj.Id != RuleId::NoOp)
      ByInstr[Adj.InstrAddr].push_back(Adj);
    ++NumRules;
  }
}
