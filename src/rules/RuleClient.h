//===- rules/RuleClient.h - Guest-side rule-server client ------------------===//
///
/// \file
/// The client tier of the rule service (DESIGN.md §5f). The static
/// pipeline probes it after the local on-disk cache and before running
/// its own analysis: a warm server turns a cold process start into a
/// batched fetch instead of a full static analysis.
///
/// Failure discipline: the server is an optimization, never a
/// correctness dependency. Connect failure (daemon absent), timeouts,
/// mid-conversation death and protocol breaches all surface as ordinary
/// fetch errors. Transient faults are ridden out with a capped,
/// jittered exponential backoff: each attempt reconnects the socket
/// from scratch, so a daemon restart or a dropped connection mid-batch
/// costs a short delay, not a degraded run. Only after MaxAttempts
/// consecutive failures does the client mark itself dead, and every
/// later call fails fast without touching the socket — a permanently
/// gone daemon costs a fleet one bounded backoff sequence per process,
/// not one per module. The jitter is deterministic per (socket path,
/// attempt), keeping fleet runs reproducible while desynchronizing
/// clients that share a daemon. Fault points `ruled.write` and
/// `ruled.read` inject transport failure on the two halves of a round
/// trip; a `ruled.accept` fault on the server side surfaces here as a
/// closed connection. All three are retried the same way.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_RULES_RULECLIENT_H
#define JANITIZER_RULES_RULECLIENT_H

#include "rules/RewriteRules.h"
#include "support/Error.h"

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace janitizer {

struct RuleClientOptions {
  std::string SocketPath;
  /// Per-syscall send/receive timeout. A wedged daemon delays a client
  /// by at most ~2 timeouts (request + response) per attempt.
  unsigned TimeoutMs = 2000;
  /// Connection/transport attempts per round trip before the client
  /// writes itself off. Each retry reconnects from scratch.
  unsigned MaxAttempts = 5;
  /// Backoff before retry k (1-based) is
  /// min(BackoffBaseMs << (k-1), BackoffCapMs) plus jitter in [0, that).
  unsigned BackoffBaseMs = 2;
  unsigned BackoffCapMs = 50;
};

struct RuleClientStats {
  uint64_t Hits = 0;      ///< slots served by the server
  uint64_t Misses = 0;    ///< slots the server did not have
  uint64_t Published = 0; ///< rule files accepted by the server
  uint64_t Errors = 0;    ///< transport/protocol failures
};

/// A (module content hash, tool name) slot key — the same key the
/// RuleCache uses.
using RuleKey = std::pair<uint64_t, std::string>;

class RuleClient {
public:
  explicit RuleClient(RuleClientOptions Opts) : Opts(std::move(Opts)) {}
  ~RuleClient() { disconnect(); }
  RuleClient(const RuleClient &) = delete;
  RuleClient &operator=(const RuleClient &) = delete;

  /// True once a transport failure has written the client off; every
  /// subsequent call fails fast without touching the socket.
  bool dead() const { return Dead; }

  /// Batched lookup. The result is parallel to \p Keys: a present
  /// optional is a validated RuleFile served by the daemon, nullopt is a
  /// server miss. A transport/protocol failure returns an error (and the
  /// caller falls back to local analysis for ALL keys).
  ErrorOr<std::vector<std::optional<RuleFile>>>
  fetch(const std::vector<RuleKey> &Keys);

  /// Batched publish of freshly analyzed rule files. Best-effort: errors
  /// are returned for observability but the caller's pipeline must not
  /// depend on them.
  Error publish(const std::vector<std::pair<RuleKey, const RuleFile *>> &Files);

  const RuleClientStats &stats() const { return Stats; }

private:
  Error connect();
  void disconnect();
  /// One request/response round trip; transient failures retry with
  /// capped exponential backoff + jitter (reconnecting each time) until
  /// Opts.MaxAttempts, then the client is marked dead.
  ErrorOr<std::vector<uint8_t>> roundTrip(const std::vector<uint8_t> &Payload);

  RuleClientOptions Opts;
  RuleClientStats Stats;
  int Fd = -1;
  bool Dead = false;
};

} // namespace janitizer

#endif // JANITIZER_RULES_RULECLIENT_H
