//===- rules/RuleProtocol.cpp ---------------------------------------------==//

#include "rules/RuleProtocol.h"

#include "rules/RewriteRules.h"
#include "support/Endian.h"
#include "support/Format.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

using namespace janitizer;
using namespace janitizer::ruleproto;

//===----------------------------------------------------------------------===//
// Payload encoding
//===----------------------------------------------------------------------===//

std::vector<uint8_t> janitizer::encodeRuleRequest(const RuleRequest &Req) {
  std::vector<uint8_t> Buf;
  writeLE32(Buf, RequestMagic);
  writeLE32(Buf, RuleFormatVersion);
  writeLE16(Buf, static_cast<uint16_t>(Req.Op));
  writeLE16(Buf, static_cast<uint16_t>(Req.Entries.size()));
  for (const RuleRequestEntry &E : Req.Entries) {
    writeLE64(Buf, E.ModuleHash);
    writeLE16(Buf, static_cast<uint16_t>(E.Tool.size()));
    Buf.insert(Buf.end(), E.Tool.begin(), E.Tool.end());
    if (Req.Op == Opcode::Publish) {
      writeLE32(Buf, static_cast<uint32_t>(E.Bytes.size()));
      Buf.insert(Buf.end(), E.Bytes.begin(), E.Bytes.end());
    }
  }
  return Buf;
}

ErrorOr<RuleRequest> janitizer::decodeRuleRequest(
    const std::vector<uint8_t> &Payload) {
  size_t Pos = 0;
  auto Avail = [&](size_t N) { return Pos + N <= Payload.size(); };
  if (!Avail(12))
    return makeError("rule request: truncated header");
  if (readLE32(Payload.data()) != RequestMagic)
    return makeError("rule request: bad magic");
  uint32_t Version = readLE32(Payload.data() + 4);
  if (Version != RuleFormatVersion)
    return makeError(formatString(
        "rule request: format version skew (peer v%u, ours v%u)", Version,
        RuleFormatVersion));
  RuleRequest Req;
  uint16_t OpRaw = readLE16(Payload.data() + 8);
  if (OpRaw != static_cast<uint16_t>(Opcode::Fetch) &&
      OpRaw != static_cast<uint16_t>(Opcode::Publish))
    return makeError(formatString("rule request: unknown opcode %u", OpRaw));
  Req.Op = static_cast<Opcode>(OpRaw);
  uint16_t Count = readLE16(Payload.data() + 10);
  Pos = 12;
  Req.Entries.reserve(Count);
  for (uint16_t I = 0; I < Count; ++I) {
    RuleRequestEntry E;
    if (!Avail(10))
      return makeError("rule request: truncated entry");
    E.ModuleHash = readLE64(Payload.data() + Pos);
    uint16_t ToolLen = readLE16(Payload.data() + Pos + 8);
    Pos += 10;
    if (!Avail(ToolLen))
      return makeError("rule request: truncated tool name");
    E.Tool.assign(reinterpret_cast<const char *>(Payload.data() + Pos),
                  ToolLen);
    Pos += ToolLen;
    if (Req.Op == Opcode::Publish) {
      if (!Avail(4))
        return makeError("rule request: truncated payload length");
      uint32_t Len = readLE32(Payload.data() + Pos);
      Pos += 4;
      if (Len > MaxFrameBytes || !Avail(Len))
        return makeError("rule request: truncated rule payload");
      E.Bytes.assign(Payload.begin() + Pos, Payload.begin() + Pos + Len);
      Pos += Len;
    }
    Req.Entries.push_back(std::move(E));
  }
  if (Pos != Payload.size())
    return makeError("rule request: trailing bytes");
  return Req;
}

std::vector<uint8_t> janitizer::encodeRuleResponse(const RuleResponse &Resp) {
  std::vector<uint8_t> Buf;
  writeLE32(Buf, ResponseMagic);
  writeLE32(Buf, RuleFormatVersion);
  writeLE16(Buf, static_cast<uint16_t>(Resp.Entries.size()));
  for (const RuleResponseEntry &E : Resp.Entries) {
    Buf.push_back(static_cast<uint8_t>(E.St));
    if (E.St == Status::Hit) {
      writeLE32(Buf, static_cast<uint32_t>(E.Bytes.size()));
      Buf.insert(Buf.end(), E.Bytes.begin(), E.Bytes.end());
    }
  }
  return Buf;
}

ErrorOr<RuleResponse> janitizer::decodeRuleResponse(
    const std::vector<uint8_t> &Payload) {
  size_t Pos = 0;
  auto Avail = [&](size_t N) { return Pos + N <= Payload.size(); };
  if (!Avail(10))
    return makeError("rule response: truncated header");
  if (readLE32(Payload.data()) != ResponseMagic)
    return makeError("rule response: bad magic");
  uint32_t Version = readLE32(Payload.data() + 4);
  if (Version != RuleFormatVersion)
    return makeError(formatString(
        "rule response: format version skew (peer v%u, ours v%u)", Version,
        RuleFormatVersion));
  uint16_t Count = readLE16(Payload.data() + 8);
  Pos = 10;
  RuleResponse Resp;
  Resp.Entries.reserve(Count);
  for (uint16_t I = 0; I < Count; ++I) {
    RuleResponseEntry E;
    if (!Avail(1))
      return makeError("rule response: truncated entry");
    uint8_t St = Payload[Pos++];
    if (St > static_cast<uint8_t>(Status::Hit))
      return makeError(formatString("rule response: unknown status %u", St));
    E.St = static_cast<Status>(St);
    if (E.St == Status::Hit) {
      if (!Avail(4))
        return makeError("rule response: truncated payload length");
      uint32_t Len = readLE32(Payload.data() + Pos);
      Pos += 4;
      if (Len > MaxFrameBytes || !Avail(Len))
        return makeError("rule response: truncated rule payload");
      E.Bytes.assign(Payload.begin() + Pos, Payload.begin() + Pos + Len);
      Pos += Len;
    }
    Resp.Entries.push_back(std::move(E));
  }
  if (Pos != Payload.size())
    return makeError("rule response: trailing bytes");
  return Resp;
}

//===----------------------------------------------------------------------===//
// Framed socket I/O
//===----------------------------------------------------------------------===//

namespace {

/// Writes exactly \p Len bytes, restarting on EINTR. MSG_NOSIGNAL: a
/// daemon that closed the connection (death, ruled.accept fault) must
/// surface as EPIPE — an ordinary degradable error — not SIGPIPE.
Error writeAll(int Fd, const uint8_t *Data, size_t Len) {
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::send(Fd, Data + Off, Len - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return makeError(formatString("rule socket write: %s",
                                    std::strerror(errno)));
    }
    if (N == 0)
      return makeError("rule socket write: peer closed");
    Off += static_cast<size_t>(N);
  }
  return Error::success();
}

/// Reads exactly \p Len bytes. \p AtStart distinguishes a clean EOF on
/// the first byte (peer closed between frames) from a mid-frame close.
ErrorOr<bool> readAll(int Fd, uint8_t *Data, size_t Len, bool AtStart) {
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::read(Fd, Data + Off, Len - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return makeError(formatString("rule socket read: %s",
                                    std::strerror(errno)));
    }
    if (N == 0) {
      if (AtStart && Off == 0)
        return false; // clean EOF
      return makeError("rule socket read: truncated frame");
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

Error janitizer::writeFrame(int Fd, const std::vector<uint8_t> &Payload) {
  if (Payload.size() > MaxFrameBytes)
    return makeError("rule frame exceeds size cap");
  uint8_t Hdr[4];
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I < 4; ++I)
    Hdr[I] = static_cast<uint8_t>(Len >> (8 * I));
  if (Error E = writeAll(Fd, Hdr, sizeof(Hdr)))
    return E;
  return writeAll(Fd, Payload.data(), Payload.size());
}

ErrorOr<std::vector<uint8_t>> janitizer::readFrame(int Fd) {
  uint8_t Hdr[4];
  ErrorOr<bool> Got = readAll(Fd, Hdr, sizeof(Hdr), /*AtStart=*/true);
  if (!Got)
    return Got.takeError();
  if (!*Got)
    return std::vector<uint8_t>{}; // clean EOF
  uint32_t Len = readLE32(Hdr);
  if (Len == 0 || Len > MaxFrameBytes)
    return makeError(formatString("rule frame: bad length %u", Len));
  std::vector<uint8_t> Payload(Len);
  ErrorOr<bool> Body = readAll(Fd, Payload.data(), Len, /*AtStart=*/false);
  if (!Body)
    return Body.takeError();
  return Payload;
}
