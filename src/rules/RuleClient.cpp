//===- rules/RuleClient.cpp -----------------------------------------------==//

#include "rules/RuleClient.h"

#include "rules/RuleProtocol.h"
#include "support/FaultInjector.h"
#include "support/Format.h"
#include "support/Hash.h"
#include "support/Metrics.h"
#include "support/Random.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

using namespace janitizer;
using namespace janitizer::ruleproto;

Error RuleClient::connect() {
  if (Fd >= 0)
    return Error::success();
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path))
    return makeError("rule client: socket path too long");
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(), Opts.SocketPath.size());
  int NewFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (NewFd < 0)
    return makeError(formatString("rule client socket: %s",
                                  std::strerror(errno)));
  timeval Tv;
  Tv.tv_sec = Opts.TimeoutMs / 1000;
  Tv.tv_usec = static_cast<long>(Opts.TimeoutMs % 1000) * 1000;
  ::setsockopt(NewFd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  ::setsockopt(NewFd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
  if (::connect(NewFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Error E = makeError(formatString("rule client connect %s: %s",
                                     Opts.SocketPath.c_str(),
                                     std::strerror(errno)));
    ::close(NewFd);
    return E;
  }
  Fd = NewFd;
  return Error::success();
}

void RuleClient::disconnect() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

ErrorOr<std::vector<uint8_t>>
RuleClient::roundTrip(const std::vector<uint8_t> &Payload) {
  if (Dead)
    return makeError("rule client: marked dead after earlier failure");
  // Capped exponential backoff with deterministic jitter: attempt k
  // sleeps min(Base << (k-1), Cap) + jitter before reconnecting. The
  // jitter is seeded from (socket path, attempt) so a fleet sharing one
  // daemon desynchronizes its retries without losing reproducibility.
  const unsigned MaxAttempts = std::max(1u, Opts.MaxAttempts);
  Error Last = Error::success();
  for (unsigned Attempt = 0; Attempt < MaxAttempts; ++Attempt) {
    if (Attempt > 0) {
      uint64_t Shift = std::min<uint64_t>(Attempt - 1, 16);
      uint64_t DelayMs = std::min<uint64_t>(
          static_cast<uint64_t>(Opts.BackoffBaseMs) << Shift,
          Opts.BackoffCapMs);
      SplitMix64 Rng(hashString(Opts.SocketPath) + Attempt);
      if (DelayMs)
        DelayMs += Rng.next() % DelayMs;
      MetricsRegistry::instance().counter("jz.ruled.client.retries").inc();
      if (DelayMs)
        std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
    }
    if (Error E = connect()) {
      Last = std::move(E);
      continue;
    }
    auto Send = [&]() -> Error {
      if (FaultInjector::shouldFail("ruled.write"))
        return makeError("injected fault: ruled.write");
      return writeFrame(Fd, Payload);
    };
    if (Error E = Send()) {
      Last = std::move(E);
      disconnect();
      continue;
    }
    auto Recv = [&]() -> ErrorOr<std::vector<uint8_t>> {
      if (FaultInjector::shouldFail("ruled.read"))
        return makeError("injected fault: ruled.read");
      return readFrame(Fd);
    };
    ErrorOr<std::vector<uint8_t>> Resp = Recv();
    if (!Resp) {
      Last = Resp.takeError();
      disconnect();
      continue;
    }
    if (Resp->empty()) { // server closed on us (e.g. ruled.accept fault)
      Last = makeError("rule client: server closed connection");
      disconnect();
      continue;
    }
    return Resp;
  }
  Dead = true;
  ++Stats.Errors;
  MetricsRegistry::instance().counter("jz.ruled.client.errors").inc();
  disconnect();
  return Last.withContext("rule server unavailable, degrading to local "
                          "analysis");
}

ErrorOr<std::vector<std::optional<RuleFile>>>
RuleClient::fetch(const std::vector<RuleKey> &Keys) {
  std::vector<std::optional<RuleFile>> Out(Keys.size());
  if (Keys.empty())
    return Out;

  RuleRequest Req;
  Req.Op = Opcode::Fetch;
  Req.Entries.reserve(Keys.size());
  for (const RuleKey &K : Keys) {
    RuleRequestEntry E;
    E.ModuleHash = K.first;
    E.Tool = K.second;
    Req.Entries.push_back(std::move(E));
  }

  ErrorOr<std::vector<uint8_t>> Raw = roundTrip(encodeRuleRequest(Req));
  if (!Raw)
    return Raw.takeError();
  ErrorOr<RuleResponse> Resp = decodeRuleResponse(*Raw);
  if (!Resp) {
    Dead = true;
    ++Stats.Errors;
    return Resp.takeError();
  }
  if (Resp->Entries.size() != Keys.size()) {
    Dead = true;
    ++Stats.Errors;
    return makeError(formatString(
        "rule response entry count %zu does not match request %zu",
        Resp->Entries.size(), Keys.size()));
  }

  MetricsRegistry &MR = MetricsRegistry::instance();
  for (size_t I = 0; I < Keys.size(); ++I) {
    const RuleResponseEntry &E = Resp->Entries[I];
    if (E.St != Status::Hit) {
      ++Stats.Misses;
      MR.counter("jz.ruled.client.misses").inc();
      continue;
    }
    // Server bytes go through the same hardened deserializer as cache
    // and loader input; a bad payload degrades to a miss, not a crash.
    ErrorOr<RuleFile> RF = RuleFile::deserialize(E.Bytes);
    if (!RF || RF->ToolName != Keys[I].second) {
      ++Stats.Errors;
      MR.counter("jz.ruled.client.errors").inc();
      continue;
    }
    ++Stats.Hits;
    MR.counter("jz.ruled.client.hits").inc();
    Out[I] = RF.takeValue();
  }
  return Out;
}

Error RuleClient::publish(
    const std::vector<std::pair<RuleKey, const RuleFile *>> &Files) {
  if (Files.empty())
    return Error::success();
  RuleRequest Req;
  Req.Op = Opcode::Publish;
  Req.Entries.reserve(Files.size());
  for (const auto &[Key, RF] : Files) {
    // Degraded rule files never leave the process. The Degraded flag is
    // deliberately not serialized (RewriteRules.h), so the wire cannot
    // carry it — the guard must sit on the sending side, mirroring
    // RuleCache::store.
    if (RF->Degraded)
      continue;
    RuleRequestEntry E;
    E.ModuleHash = Key.first;
    E.Tool = Key.second;
    E.Bytes = RF->serialize();
    Req.Entries.push_back(std::move(E));
  }
  if (Req.Entries.empty())
    return Error::success();
  ErrorOr<std::vector<uint8_t>> Raw = roundTrip(encodeRuleRequest(Req));
  if (!Raw)
    return Raw.takeError();
  ErrorOr<RuleResponse> Resp = decodeRuleResponse(*Raw);
  if (!Resp) {
    Dead = true;
    ++Stats.Errors;
    return Resp.takeError();
  }
  MetricsRegistry &MR = MetricsRegistry::instance();
  for (const RuleResponseEntry &E : Resp->Entries)
    if (E.St == Status::Hit) {
      ++Stats.Published;
      MR.counter("jz.ruled.client.published").inc();
    }
  return Error::success();
}
