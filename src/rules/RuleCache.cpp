//===- rules/RuleCache.cpp ------------------------------------------------==//

#include "rules/RuleCache.h"

#include "support/Endian.h"
#include "support/FaultInjector.h"
#include "support/Format.h"
#include "support/Hash.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cctype>
#include <filesystem>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace janitizer;

namespace {

constexpr uint32_t CacheMagic = 0x43525A4A; // "JZRC"
constexpr size_t EnvelopeBytes = 4 + 4 + 4 + 8; // magic, version, len, hash

/// Tool names are short identifiers ("jasan", "jcfi"), but they come from
/// plug-ins; keep filenames safe regardless.
std::string sanitize(const std::string &S) {
  std::string Out;
  for (char C : S)
    Out.push_back(std::isalnum(static_cast<unsigned char>(C)) ? C : '_');
  return Out;
}

uint64_t processId() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<uint64_t>(::getpid());
#else
  return 0;
#endif
}

} // namespace

RuleCache::RuleCache(std::string Dir) : Dir(std::move(Dir)) {
  if (this->Dir.empty())
    return;
  std::error_code EC;
  std::filesystem::create_directories(this->Dir, EC);
  if (EC)
    this->Dir.clear(); // unusable directory: behave as disabled
}

std::string RuleCache::entryPath(uint64_t ModuleHash,
                                 const std::string &ToolName) const {
  return Dir + "/" +
         formatString("%s-%016llx-v%u.jrc", sanitize(ToolName).c_str(),
                      static_cast<unsigned long long>(ModuleHash),
                      RuleFormatVersion);
}

std::optional<RuleFile> RuleCache::lookup(uint64_t ModuleHash,
                                          const std::string &ToolName) {
  if (!enabled())
    return std::nullopt;
  JZ_TRACE_SPAN_VAR(Span, "cache.read", {{"tool", ToolName}});
  std::string Path = entryPath(ModuleHash, ToolName);
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    ++Stats.Misses;
    MetricsRegistry::instance().counter("jz.cache.misses").inc();
    Span.arg("outcome", "miss");
    return std::nullopt;
  }
  std::vector<uint8_t> Blob((std::istreambuf_iterator<char>(In)),
                            std::istreambuf_iterator<char>());
  In.close();

  // Fault point: a bit rots in the stored entry. The flip lands in the
  // payload, so the *real* hash-mismatch eviction path below handles it.
  if (!Blob.empty() && FaultInjector::shouldFail("cache.read.corrupt"))
    Blob[Blob.size() / 2] ^= 0x01;

  // Anything wrong with the entry — short envelope, bad magic, stale
  // version, truncated or over-long payload, payload-hash mismatch, or a
  // payload the hardened deserializer rejects — evicts it.
  auto Evict = [&]() -> std::optional<RuleFile> {
    std::error_code EC;
    std::filesystem::remove(Path, EC);
    ++Stats.Evictions;
    ++Stats.Misses;
    MetricsRegistry::instance().counter("jz.cache.evictions").inc();
    MetricsRegistry::instance().counter("jz.cache.misses").inc();
    JZ_TRACE_INSTANT("cache.evict", {{"tool", ToolName}});
    Span.arg("outcome", "evict");
    return std::nullopt;
  };

  if (Blob.size() < EnvelopeBytes)
    return Evict();
  if (readLE32(Blob.data()) != CacheMagic)
    return Evict();
  if (readLE32(Blob.data() + 4) != RuleFormatVersion)
    return Evict();
  uint32_t PayloadLen = readLE32(Blob.data() + 8);
  if (Blob.size() != EnvelopeBytes + static_cast<size_t>(PayloadLen))
    return Evict();
  uint64_t WantHash = readLE64(Blob.data() + 12);
  std::vector<uint8_t> Payload(Blob.begin() + EnvelopeBytes, Blob.end());
  if (hashBytes(Payload) != WantHash)
    return Evict();
  ErrorOr<RuleFile> RF = RuleFile::deserialize(Payload);
  if (!RF)
    return Evict();
  if (RF->ToolName != ToolName)
    return Evict();
  ++Stats.Hits;
  MetricsRegistry::instance().counter("jz.cache.hits").inc();
  Span.arg("outcome", "hit");
  return *RF;
}

void RuleCache::store(uint64_t ModuleHash, const std::string &ToolName,
                      const RuleFile &RF) {
  // A degraded file is a transient artifact of this run's faults; caching
  // it would freeze the coverage loss into every future run.
  if (!enabled() || RF.Degraded)
    return;
  JZ_TRACE_SPAN("cache.write", {{"tool", ToolName}, {"module", RF.ModuleName}});
  std::vector<uint8_t> Payload = RF.serialize();
  std::vector<uint8_t> Blob;
  Blob.reserve(EnvelopeBytes + Payload.size());
  writeLE32(Blob, CacheMagic);
  writeLE32(Blob, RuleFormatVersion);
  writeLE32(Blob, static_cast<uint32_t>(Payload.size()));
  writeLE64(Blob, hashBytes(Payload));
  Blob.insert(Blob.end(), Payload.begin(), Payload.end());

  std::string Final = entryPath(ModuleHash, ToolName);
  // Unique temp name per writer, then atomic rename: concurrent analyzers
  // race benignly (last rename wins, both wrote identical bytes) and a
  // crash mid-write never leaves a torn file under the final name.
  std::string Tmp =
      Final + formatString(".tmp.%llu",
                           static_cast<unsigned long long>(processId()));
  // Fault point: the filesystem fills up mid-write (ENOSPC model) — the
  // entry is written short. Mirror a real short write, then take the
  // abort-and-clean-up path below.
  size_t WriteLen = Blob.size();
  bool ShortWrite = FaultInjector::shouldFail("cache.write.enospc");
  if (ShortWrite)
    WriteLen /= 2;
  bool Written = false;
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (Out) {
      Out.write(reinterpret_cast<const char *>(Blob.data()),
                static_cast<std::streamsize>(WriteLen));
      Written = static_cast<bool>(Out) && !ShortWrite;
    }
  }
  std::error_code EC;
  if (!Written) {
    // A failed or short write must not leave the temp file behind: a
    // full disk would otherwise accumulate garbage it can never shed.
    std::filesystem::remove(Tmp, EC);
    return;
  }
  // Fault point: the publish step fails (rename returning e.g. EIO).
  if (FaultInjector::shouldFail("cache.rename")) {
    std::filesystem::remove(Tmp, EC);
    return;
  }
  std::filesystem::rename(Tmp, Final, EC);
  if (EC)
    std::filesystem::remove(Tmp, EC);
}
