//===- rules/RuleCache.h - Persistent rule-file cache ---------------------===//
///
/// \file
/// On-disk cache of analyzed rule files, realizing the paper's headline
/// practicality claim (§3.3.1): a module is analyzed *once* and its rule
/// file reused by every program that loads it — including across process
/// invocations, which the in-memory RuleStore cannot do.
///
/// Key: (content hash of the serialized module, tool name,
/// RuleFormatVersion). The content hash makes invalidation automatic —
/// any change to the module's bytes, symbols or dependencies changes its
/// serialized form and misses the cache.
///
/// Entries are written to a temporary file and atomically renamed into
/// place, so a crashed or concurrent writer can never leave a torn entry
/// under the final name. On read, the envelope (magic, version, payload
/// length) and the payload (hardened RuleFile::deserialize) are fully
/// validated; anything suspect is deleted and counted as an eviction —
/// a corrupt cache entry is re-analyzed, never trusted.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_RULES_RULECACHE_H
#define JANITIZER_RULES_RULECACHE_H

#include "rules/RewriteRules.h"

#include <cstdint>
#include <optional>
#include <string>

namespace janitizer {

struct RuleCacheStats {
  size_t Hits = 0;
  size_t Misses = 0;
  /// Entries discarded as corrupt, truncated or version-mismatched.
  size_t Evictions = 0;
};

class RuleCache {
public:
  /// Opens (creating if needed) the cache directory \p Dir. An empty
  /// \p Dir disables the cache: lookup() always misses, store() is a
  /// no-op.
  explicit RuleCache(std::string Dir);

  bool enabled() const { return !Dir.empty(); }
  const std::string &directory() const { return Dir; }

  /// Returns the cached rule file for (\p ModuleHash, \p ToolName), or
  /// nullopt on miss / invalid entry.
  std::optional<RuleFile> lookup(uint64_t ModuleHash,
                                 const std::string &ToolName);

  /// Persists \p RF under (\p ModuleHash, \p ToolName) with an atomic
  /// rename. Failures are silent (the cache is an optimization, never a
  /// correctness dependency).
  void store(uint64_t ModuleHash, const std::string &ToolName,
             const RuleFile &RF);

  const RuleCacheStats &stats() const { return Stats; }

  /// The on-disk path an entry would use (exposed for corruption tests).
  std::string entryPath(uint64_t ModuleHash, const std::string &ToolName) const;

private:
  std::string Dir;
  RuleCacheStats Stats;
};

} // namespace janitizer

#endif // JANITIZER_RULES_RULECACHE_H
