//===- rules/RuleProtocol.h - Rule-server wire protocol --------------------===//
///
/// \file
/// The wire protocol between guest processes and the rule daemon
/// (jz-ruled), DESIGN.md §5f. One analysis machine serves pre-analyzed
/// rule files to an entire fleet, so each module is analyzed once
/// *per fleet*, not once per process.
///
/// Framing: every message is a 4-byte little-endian payload length
/// followed by the payload, capped at MaxFrameBytes — a corrupt or
/// hostile length can never cause an unbounded allocation. Payloads
/// carry their own magic ("JZRQ" requests, "JZRP" responses) and the
/// sender's RuleFormatVersion; a version-skewed peer is detected before
/// any rule bytes are interpreted.
///
/// Requests are batched: a client sends every (module hash, tool) slot
/// it needs in one Fetch, and publishes every freshly analyzed rule file
/// in one Publish. Entries are content-addressed by the same key as the
/// on-disk RuleCache — (module content hash, tool name,
/// RuleFormatVersion) — so server responses are valid cache entries and
/// vice versa.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_RULES_RULEPROTOCOL_H
#define JANITIZER_RULES_RULEPROTOCOL_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace janitizer {

namespace ruleproto {

/// Hard ceiling on a frame payload. Large enough for a batch of rule
/// files for any real program (rule files are tens of KiB), small enough
/// that a garbage length prefix cannot OOM the peer.
constexpr uint32_t MaxFrameBytes = 64u << 20;

constexpr uint32_t RequestMagic = 0x5152'5A4Au;  // "JZRQ" LE
constexpr uint32_t ResponseMagic = 0x5052'5A4Au; // "JZRP" LE

enum class Opcode : uint16_t {
  Fetch = 1,   ///< look up rule files; response has per-entry hit/miss
  Publish = 2, ///< install freshly analyzed rule files on the server
};

enum class Status : uint8_t {
  Miss = 0, ///< Fetch: not on the server. Publish: rejected (invalid).
  Hit = 1,  ///< Fetch: bytes follow. Publish: accepted.
};

} // namespace ruleproto

/// One slot of a batched request. Bytes is empty for Fetch entries and
/// carries the serialized RuleFile for Publish entries.
struct RuleRequestEntry {
  uint64_t ModuleHash = 0;
  std::string Tool;
  std::vector<uint8_t> Bytes;
};

struct RuleRequest {
  ruleproto::Opcode Op = ruleproto::Opcode::Fetch;
  std::vector<RuleRequestEntry> Entries;
};

/// One slot of a response, parallel to the request's entries.
struct RuleResponseEntry {
  ruleproto::Status St = ruleproto::Status::Miss;
  std::vector<uint8_t> Bytes; ///< serialized RuleFile on a Fetch hit
};

struct RuleResponse {
  std::vector<RuleResponseEntry> Entries;
};

/// Payload (de)serialization. Encoders cannot fail; decoders validate
/// magic, version, counts and lengths and are safe on hostile input.
std::vector<uint8_t> encodeRuleRequest(const RuleRequest &Req);
ErrorOr<RuleRequest> decodeRuleRequest(const std::vector<uint8_t> &Payload);
std::vector<uint8_t> encodeRuleResponse(const RuleResponse &Resp);
ErrorOr<RuleResponse> decodeRuleResponse(const std::vector<uint8_t> &Payload);

/// Blocking framed I/O on a connected socket (or any fd). Both honor the
/// fd's SO_RCVTIMEO/SO_SNDTIMEO; a timeout surfaces as an error. readFrame
/// distinguishes clean EOF (peer closed between frames) by returning an
/// empty payload with no error.
Error writeFrame(int Fd, const std::vector<uint8_t> &Payload);
ErrorOr<std::vector<uint8_t>> readFrame(int Fd);

} // namespace janitizer

#endif // JANITIZER_RULES_RULEPROTOCOL_H
