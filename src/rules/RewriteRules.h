//===- rules/RewriteRules.h - Static->dynamic rewrite rules ---------------===//
///
/// \file
/// The rewrite rule is Janitizer's interface between the static analyzer
/// and the dynamic modifier (paper Figure 3):
///
///     | RuleID | BB Addr | Instr Addr | Data1 | Data2 | Data3 | Data4 |
///
/// Rules are recorded in a separate file per binary module and loaded at
/// run time with the module; a shared library analyzed once serves every
/// executable that maps it (§3.3.1). Addresses inside rules are link-time
/// VAs; at load time they are adjusted by the module's slide before being
/// inserted into the module's hash table (§3.4.2). No Data field ever
/// carries an absolute address, so only BBAddr/InstrAddr need adjustment.
///
/// No-op rules (§3.3.4) mark statically inspected blocks that need no
/// transformation, letting the dynamic modifier distinguish "statically
/// proven safe" from "never seen statically".
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_RULES_REWRITERULES_H
#define JANITIZER_RULES_REWRITERULES_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace janitizer {

enum class RuleId : uint16_t {
  /// Statically inspected; no transformation needed.
  NoOp = 0,

  // --- JASan (memory sanitizer) rules ---
  /// Instrument this load/store with a shadow check.
  /// Data1 = free-register mask at the site, Data2 = flags-live bit,
  /// Data3 = conservative bit (save/restore everything regardless).
  AsanCheck = 1,
  /// Access statically proven safe; place as-is (distinct from NoOp so
  /// coverage accounting can distinguish "analyzed, elided").
  AsanElide = 2,
  /// Hoisted check in a loop preheader: verify [base + Data2] and
  /// [base + Data3] (first/last footprint displacement) of size Data4
  /// before the anchor instruction. Data1 = packed operand info.
  AsanHoistedCheck = 3,
  /// Poison the canary slot right after this instruction.
  /// Data1 = signed slot offset from SP (at that point), Data2 = size.
  AsanPoisonCanary = 4,
  /// Unpoison the canary slot right before this instruction (epilogue
  /// reload). Data1 = signed slot offset from SP, Data2 = size.
  AsanUnpoisonCanary = 5,

  // --- JCFI (control-flow integrity) rules ---
  /// Verify the indirect call target against the valid-target set.
  CfiCheckCall = 6,
  /// Verify the indirect jump target (same-function / jump-table /
  /// same-module function entries).
  CfiCheckJump = 7,
  /// Verify the return address against the shadow stack.
  CfiCheckReturn = 8,
  /// Push the return address onto the shadow stack (any call).
  CfiPushRet = 9,
  /// The PLT lazy-binding RET (§4.2.3): verify as a *forward* edge.
  CfiLazyBindRet = 10,
};

/// The largest raw value that names a real RuleId. Rule files are produced
/// by a separate (possibly newer or corrupted) static analyzer, so the
/// loader must validate ids instead of casting blindly: an out-of-range id
/// would otherwise construct a bogus enum value that downstream switches
/// silently ignore.
constexpr uint16_t MaxRuleIdValue =
    static_cast<uint16_t>(RuleId::CfiLazyBindRet);

inline bool isValidRuleId(uint16_t Raw) { return Raw <= MaxRuleIdValue; }

/// Version of the serialized rule format. Part of the persistent
/// rule-cache key: bump it whenever the rule encoding or the meaning of
/// any rule id / Data field changes, so stale cache entries from an older
/// analyzer are discarded instead of being misinterpreted.
constexpr uint32_t RuleFormatVersion = 1;

const char *ruleIdName(RuleId Id);

struct RewriteRule {
  RuleId Id = RuleId::NoOp;
  uint64_t BBAddr = 0;
  uint64_t InstrAddr = 0;
  uint64_t Data[4] = {0, 0, 0, 0};
};

/// The per-module rule file emitted by the static analyzer.
class RuleFile {
public:
  std::string ModuleName;
  std::string ToolName; ///< which security technique produced the rules

  /// Degradation marker (failure model, DESIGN.md §5c): set when static
  /// analysis could not fully cover the module — an analysis error, an
  /// exhausted per-module budget, a dropped analysis task. The file may
  /// then cover only part of the module (or nothing): blocks without an
  /// entry simply take the per-block dynamic fallback path, so a degraded
  /// file loses coverage, never soundness. Not serialized — a degraded
  /// result is transient and must never be persisted to the rule cache.
  bool Degraded = false;
  std::string DegradeReason;

  std::vector<RewriteRule> Rules;

  std::vector<uint8_t> serialize() const;
  static ErrorOr<RuleFile> deserialize(const std::vector<uint8_t> &Blob);

  /// Load-time sanity check against the module the file is being attached
  /// to. Rule files come from a separate process (or a cache, or a future
  /// remote store), so the dynamic modifier re-validates before building a
  /// rule table; a failure quarantines the module to the dynamic path
  /// instead of trusting suspect rules.
  Error validateForLoad(const std::string &ModName,
                        const std::string &Tool) const;
};

/// The dynamic modifier's per-module hash table: rules keyed by *run-time*
/// address, adjusted by the module slide at load time (§3.4.2, Figure 5).
/// One table serves both dispatch granularities:
///
///  - block queries ("was this block head statically inspected? what are
///    its rules?") via lookup()/containsBlock(), keyed by BBAddr — these
///    include no-op rules, so a hit means "statically seen";
///  - instruction queries ("what transformations apply at this site?") via
///    rulesForInstr(), keyed by InstrAddr — no-op rules carry no per-site
///    transformation and are excluded.
class RuleTable {
public:
  RuleTable() = default;

  /// Builds the table from \p File, adjusting addresses by \p Slide.
  RuleTable(const RuleFile &File, int64_t Slide);

  /// All rules for the block at run-time address \p BBAddr (nullptr if the
  /// block was never seen statically).
  const std::vector<RewriteRule> *lookup(uint64_t BBAddr) const {
    auto It = ByBlock.find(BBAddr);
    return It == ByBlock.end() ? nullptr : &It->second;
  }

  /// True if \p BBAddr is the run-time start of a statically inspected
  /// basic block (a no-op rule counts: "proven, leave as is").
  bool containsBlock(uint64_t BBAddr) const {
    return ByBlock.find(BBAddr) != ByBlock.end();
  }

  /// The non-no-op rules attached to the instruction at run-time address
  /// \p InstrAddr (nullptr when none).
  const std::vector<RewriteRule> *rulesForInstr(uint64_t InstrAddr) const {
    auto It = ByInstr.find(InstrAddr);
    return It == ByInstr.end() ? nullptr : &It->second;
  }

  size_t blockCount() const { return ByBlock.size(); }
  size_t instrSiteCount() const { return ByInstr.size(); }
  size_t ruleCount() const { return NumRules; }

private:
  std::unordered_map<uint64_t, std::vector<RewriteRule>> ByBlock;
  /// Non-no-op rules re-keyed by run-time instruction address.
  std::unordered_map<uint64_t, std::vector<RewriteRule>> ByInstr;
  size_t NumRules = 0;
};

/// A "rule filesystem": per-module rule files keyed by (module, tool),
/// standing in for the rule files written next to each binary.
class RuleStore {
public:
  void add(RuleFile File) {
    Files[key(File.ModuleName, File.ToolName)] = std::move(File);
  }
  const RuleFile *find(const std::string &ModuleName,
                       const std::string &ToolName) const {
    auto It = Files.find(key(ModuleName, ToolName));
    return It == Files.end() ? nullptr : &It->second;
  }

private:
  static std::string key(const std::string &ModuleName,
                         const std::string &ToolName) {
    return ModuleName + '\n' + ToolName;
  }

private:
  std::unordered_map<std::string, RuleFile> Files;
};

} // namespace janitizer

#endif // JANITIZER_RULES_REWRITERULES_H
