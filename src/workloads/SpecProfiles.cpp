//===- workloads/SpecProfiles.cpp -----------------------------------------==//

#include "workloads/SpecProfiles.h"

using namespace janitizer;

namespace {

std::vector<BenchProfile> makeProfiles() {
  using L = BenchProfile::SrcLang;
  std::vector<BenchProfile> Ps;
  auto Add = [&](BenchProfile P) { Ps.push_back(std::move(P)); };

  // Integer suite.
  // perlbench: interpreter — call/branch heavy, moderate memory.
  Add({.Name = "perlbench", .Lang = L::C, .Funcs = 6, .OuterIters = 8,
       .InnerIters = 40, .StridedMemOps = 2, .ChasedMemOps = 2, .AluOps = 5,
       .IndirectCalls = 6, .DispatchCalls = 6, .HelperCalls = 8,
       .HeapOps = 4, .UsesJit = true});
  // bzip2: compression — memory streaming.
  Add({.Name = "bzip2", .Lang = L::C, .Funcs = 4, .OuterIters = 10,
       .InnerIters = 64, .StridedMemOps = 4, .ChasedMemOps = 1, .AluOps = 5,
       .IndirectCalls = 1, .DispatchCalls = 2, .HelperCalls = 3,
       .HeapOps = 2});
  // gcc: compiler — very call/indirect heavy, uses qsort callbacks.
  Add({.Name = "gcc", .Lang = L::C, .Funcs = 8, .OuterIters = 6,
       .InnerIters = 32, .StridedMemOps = 2, .ChasedMemOps = 2, .AluOps = 4,
       .IndirectCalls = 8, .DispatchCalls = 6, .HelperCalls = 10,
       .HeapOps = 6, .UsesQsortCallback = true, .PluginWorkPercent = 10});
  // mcf: pointer chasing over a sparse graph.
  Add({.Name = "mcf", .Lang = L::C, .Funcs = 3, .OuterIters = 10,
       .InnerIters = 72, .StridedMemOps = 1, .ChasedMemOps = 4, .AluOps = 2,
       .IndirectCalls = 1, .DispatchCalls = 1, .HelperCalls = 2,
       .HeapOps = 3});
  // gobmk: game tree — branchy, call heavy.
  Add({.Name = "gobmk", .Lang = L::C, .Funcs = 6, .OuterIters = 8,
       .InnerIters = 36, .StridedMemOps = 2, .ChasedMemOps = 1, .AluOps = 6,
       .IndirectCalls = 4, .DispatchCalls = 5, .HelperCalls = 8,
       .HeapOps = 2});
  // hmmer: dynamic programming — dense strided memory.
  Add({.Name = "hmmer", .Lang = L::C, .Funcs = 3, .OuterIters = 10,
       .InnerIters = 80, .StridedMemOps = 5, .ChasedMemOps = 0, .AluOps = 6,
       .IndirectCalls = 1, .DispatchCalls = 1, .HelperCalls = 2,
       .HeapOps = 1});
  // sjeng: chess — branchy integer code.
  Add({.Name = "sjeng", .Lang = L::C, .Funcs = 5, .OuterIters = 8,
       .InnerIters = 40, .StridedMemOps = 2, .ChasedMemOps = 1, .AluOps = 7,
       .IndirectCalls = 3, .DispatchCalls = 4, .HelperCalls = 6,
       .HeapOps = 1});
  // libquantum: simple hot loop, strided.
  Add({.Name = "libquantum", .Lang = L::C, .Funcs = 2, .OuterIters = 12,
       .InnerIters = 96, .StridedMemOps = 3, .ChasedMemOps = 0, .AluOps = 4,
       .IndirectCalls = 0, .DispatchCalls = 1, .HelperCalls = 1,
       .HeapOps = 1});
  // h264ref: video codec — memory heavy + qsort callbacks (§6.2.2).
  Add({.Name = "h264ref", .Lang = L::C, .Funcs = 5, .OuterIters = 8,
       .InnerIters = 64, .StridedMemOps = 4, .ChasedMemOps = 1, .AluOps = 6,
       .IndirectCalls = 4, .DispatchCalls = 3, .HelperCalls = 5,
       .HeapOps = 2, .UsesQsortCallback = true});
  // omnetpp: C++ discrete-event simulator — indirect heavy, nonlocal
  // unwinding (breaks Lockdown).
  Add({.Name = "omnetpp", .Lang = L::Cxx, .Funcs = 6, .OuterIters = 8,
       .InnerIters = 32, .StridedMemOps = 2, .ChasedMemOps = 2, .AluOps = 3,
       .IndirectCalls = 8, .DispatchCalls = 4, .HelperCalls = 8,
       .HeapOps = 6, .NonlocalUnwind = true});
  // astar: C++ path finding.
  Add({.Name = "astar", .Lang = L::Cxx, .Funcs = 4, .OuterIters = 10,
       .InnerIters = 56, .StridedMemOps = 3, .ChasedMemOps = 2, .AluOps = 4,
       .IndirectCalls = 2, .DispatchCalls = 2, .HelperCalls = 4,
       .HeapOps = 3});
  // xalancbmk: C++ XSLT — virtual-call dense.
  Add({.Name = "xalancbmk", .Lang = L::Cxx, .Funcs = 8, .OuterIters = 6,
       .InnerIters = 32, .StridedMemOps = 2, .ChasedMemOps = 1, .AluOps = 3,
       .IndirectCalls = 10, .DispatchCalls = 5, .HelperCalls = 8,
       .HeapOps = 6, .PluginWorkPercent = 8});

  // Floating-point suite (modeled with integer kernels of matching shape).
  // bwaves: Fortran stencil.
  Add({.Name = "bwaves", .Lang = L::Fortran, .Funcs = 3, .OuterIters = 10,
       .InnerIters = 96, .StridedMemOps = 5, .ChasedMemOps = 0, .AluOps = 6,
       .IndirectCalls = 0, .DispatchCalls = 1, .HelperCalls = 2,
       .HeapOps = 1});
  // gamess: Fortran with in-code constant pools (breaks BinCFI).
  Add({.Name = "gamess", .Lang = L::Fortran, .Funcs = 6, .OuterIters = 7,
       .InnerIters = 48, .StridedMemOps = 3, .ChasedMemOps = 1, .AluOps = 6,
       .IndirectCalls = 2, .DispatchCalls = 3, .HelperCalls = 6,
       .HeapOps = 2, .DataIslands = true});
  // milc: lattice QCD — memory bandwidth bound.
  Add({.Name = "milc", .Lang = L::C, .Funcs = 3, .OuterIters = 10,
       .InnerIters = 88, .StridedMemOps = 6, .ChasedMemOps = 0, .AluOps = 5,
       .IndirectCalls = 1, .DispatchCalls = 1, .HelperCalls = 2,
       .HeapOps = 2});
  // zeusmp: Fortran, constant pools like gamess.
  Add({.Name = "zeusmp", .Lang = L::Fortran, .Funcs = 4, .OuterIters = 9,
       .InnerIters = 64, .StridedMemOps = 4, .ChasedMemOps = 0, .AluOps = 6,
       .IndirectCalls = 1, .DispatchCalls = 2, .HelperCalls = 3,
       .HeapOps = 1, .DataIslands = true});
  // gromacs: C/Fortran mixed.
  Add({.Name = "gromacs", .Lang = L::Fortran, .Funcs = 4, .OuterIters = 9,
       .InnerIters = 64, .StridedMemOps = 4, .ChasedMemOps = 1, .AluOps = 7,
       .IndirectCalls = 1, .DispatchCalls = 2, .HelperCalls = 4,
       .HeapOps = 1});
  // cactusADM: the dynamic-code outlier — nearly all work in a dlopened
  // solver plugin plus a JIT kernel (92.4% dynamic blocks in Figure 14);
  // also uses qsort callbacks (§6.2.2 false positives).
  Add({.Name = "cactusADM", .Lang = L::Fortran, .Funcs = 1, .OuterIters = 8,
       .InnerIters = 12, .StridedMemOps = 2, .ChasedMemOps = 0, .AluOps = 2,
       .IndirectCalls = 1, .DispatchCalls = 0, .HelperCalls = 1,
       .HeapOps = 1, .UsesQsortCallback = true, .PluginWorkPercent = 100,
       .PluginFuncs = 10, .UsesJit = true});
  // leslie3d: Fortran stencil.
  Add({.Name = "leslie3d", .Lang = L::Fortran, .Funcs = 3, .OuterIters = 10,
       .InnerIters = 80, .StridedMemOps = 5, .ChasedMemOps = 0, .AluOps = 6,
       .IndirectCalls = 0, .DispatchCalls = 1, .HelperCalls = 2,
       .HeapOps = 1});
  // namd: C++ molecular dynamics — compute dense.
  Add({.Name = "namd", .Lang = L::Cxx, .Funcs = 4, .OuterIters = 10,
       .InnerIters = 72, .StridedMemOps = 3, .ChasedMemOps = 0, .AluOps = 9,
       .IndirectCalls = 1, .DispatchCalls = 1, .HelperCalls = 3,
       .HeapOps = 1});
  // dealII: C++ FEM — indirect heavy, nonlocal unwinding.
  Add({.Name = "dealII", .Lang = L::Cxx, .Funcs = 6, .OuterIters = 8,
       .InnerIters = 40, .StridedMemOps = 3, .ChasedMemOps = 1, .AluOps = 4,
       .IndirectCalls = 6, .DispatchCalls = 4, .HelperCalls = 7,
       .HeapOps = 4, .NonlocalUnwind = true});
  // soplex: C++ LP solver.
  Add({.Name = "soplex", .Lang = L::Cxx, .Funcs = 5, .OuterIters = 9,
       .InnerIters = 48, .StridedMemOps = 3, .ChasedMemOps = 1, .AluOps = 4,
       .IndirectCalls = 3, .DispatchCalls = 2, .HelperCalls = 4,
       .HeapOps = 3});
  // povray: C++ ray tracer — call heavy.
  Add({.Name = "povray", .Lang = L::Cxx, .Funcs = 6, .OuterIters = 8,
       .InnerIters = 40, .StridedMemOps = 2, .ChasedMemOps = 1, .AluOps = 6,
       .IndirectCalls = 5, .DispatchCalls = 3, .HelperCalls = 8,
       .HeapOps = 3});
  // calculix: C/Fortran mixed.
  Add({.Name = "calculix", .Lang = L::Fortran, .Funcs = 4, .OuterIters = 9,
       .InnerIters = 56, .StridedMemOps = 4, .ChasedMemOps = 1, .AluOps = 6,
       .IndirectCalls = 1, .DispatchCalls = 2, .HelperCalls = 4,
       .HeapOps = 2});
  // GemsFDTD: Fortran stencil.
  Add({.Name = "GemsFDTD", .Lang = L::Fortran, .Funcs = 3, .OuterIters = 10,
       .InnerIters = 80, .StridedMemOps = 5, .ChasedMemOps = 0, .AluOps = 5,
       .IndirectCalls = 0, .DispatchCalls = 1, .HelperCalls = 2,
       .HeapOps = 1});
  // tonto: Fortran quantum chemistry.
  Add({.Name = "tonto", .Lang = L::Fortran, .Funcs = 5, .OuterIters = 8,
       .InnerIters = 48, .StridedMemOps = 3, .ChasedMemOps = 1, .AluOps = 6,
       .IndirectCalls = 2, .DispatchCalls = 2, .HelperCalls = 5,
       .HeapOps = 2});
  // lbm: tiny kernel; its only dynamic code is a two-block JIT stub
  // (Figure 14's 18.7%-from-two-blocks note).
  Add({.Name = "lbm", .Lang = L::C, .Funcs = 1, .OuterIters = 12,
       .InnerIters = 128, .StridedMemOps = 6, .ChasedMemOps = 0, .AluOps = 4,
       .IndirectCalls = 0, .DispatchCalls = 0, .HelperCalls = 1,
       .HeapOps = 1, .UsesJit = true});
  // sphinx3: speech recognition — memory + call mix.
  Add({.Name = "sphinx3", .Lang = L::C, .Funcs = 4, .OuterIters = 9,
       .InnerIters = 64, .StridedMemOps = 4, .ChasedMemOps = 1, .AluOps = 5,
       .IndirectCalls = 2, .DispatchCalls = 2, .HelperCalls = 4,
       .HeapOps = 3});
  return Ps;
}

} // namespace

const std::vector<BenchProfile> &janitizer::specProfiles() {
  static const std::vector<BenchProfile> Profiles = makeProfiles();
  return Profiles;
}

const BenchProfile *janitizer::findProfile(const std::string &Name) {
  for (const BenchProfile &P : specProfiles())
    if (P.Name == Name)
      return &P;
  return nullptr;
}
