//===- workloads/WorkloadGen.h - Synthetic benchmark generator ------------===//
///
/// \file
/// Generates a complete runnable program (executable + libraries +
/// optional dlopen plugin) from a BenchProfile. All code flows through the
/// regular assembler, so generated benchmarks are ordinary JELF modules.
///
/// Program structure:
///  - arrays in .bss (strided kernels), a pointer-chase ring, a function-
///    pointer table in .data (visible to data-scanning heuristics), and a
///    switch dispatcher driven by a jump table (.quad entries for C/C++;
///    base-plus-offset32 computed goto for Fortran, the construct
///    relocation-guided symbolization cannot see);
///  - per-profile kernels: strided (SCEV-elidable) plus pointer-chasing
///    memory operations, some with canary-protected frames;
///  - optional qsort callbacks, nonlocal unwinding, dlopened plugin work
///    and a small JIT kernel;
///  - the checksum is printed at exit, so any instrumented run can be
///    validated against the native run.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_WORKLOADS_WORKLOADGEN_H
#define JANITIZER_WORKLOADS_WORKLOADGEN_H

#include "support/Error.h"
#include "vm/Process.h"
#include "workloads/SpecProfiles.h"

namespace janitizer {

struct WorkloadBuild {
  ModuleStore Store;
  std::string ExeName;
  /// Modules loaded only via dlopen — invisible to the ldd-style static
  /// dependency walk (pass as SkipModules to StaticAnalyzer).
  std::vector<std::string> DlopenOnly;
};

struct WorkloadOptions {
  /// Build the executable as position-independent (for the RetroWrite
  /// comparison).
  bool PicExe = false;
  /// Multiplies every profile's OuterIters (amortizes translation cost
  /// like a long-running SPEC input would).
  unsigned WorkScale = 8;
};

/// Builds the workload for \p Profile. Deterministic for fixed inputs. The
/// generated sources are internal, so an assembly failure indicates a
/// generator or assembler regression; it propagates as an Error (with the
/// failing module named in the context chain) instead of aborting.
ErrorOr<WorkloadBuild> buildWorkload(const BenchProfile &Profile,
                                     const WorkloadOptions &Opts = {});

/// Runs the workload natively and returns its printed checksum (empty on
/// failure). Used as the correctness reference for instrumented runs.
std::string nativeReference(const WorkloadBuild &W, RunResult *Out = nullptr);

/// CWE-362-shaped multi-threaded workloads built on the Jlibc threading
/// veneers (thread_create/thread_join + futex handshakes). Every kind
/// prints a deterministic checksum regardless of interleaving, and every
/// kind degrades gracefully under JZ_MAX_GUEST_THREADS=1: when
/// thread_create fails the main thread runs the worker body inline, so the
/// checksum (and any planted violation) is identical single-threaded.
enum class MtWorkloadKind {
  /// Workers race malloc/free on the shared guest heap while computing on
  /// private state (racing heap metadata, serialized by Jlibc's heap
  /// mutex).
  RaceAlloc,
  /// Like RaceAlloc, but the main thread dlopens and calls a plugin while
  /// the workers execute — module load (and its code-cache flush) racing
  /// against concurrent dispatch.
  RaceDlopen,
  /// RaceAlloc churn plus a planted cross-thread heap use-after-free: the
  /// main thread allocates, a dedicated freer thread frees, and the main
  /// thread then writes and reads the chunk. A futex handshake forces the
  /// free to happen strictly before the use on every schedule, so JASan
  /// must report it deterministically under any JZ_MT_SEED. The freed
  /// chunk is smaller than any churn request, so first-fit never recycles
  /// it and the native checksum stays deterministic too.
  PlantedUaf,
};

struct MtWorkloadOptions {
  /// Spawned guest threads (the main thread only spawns/joins, so host
  /// parallelism equals this number). PlantedUaf adds its freer thread on
  /// top.
  unsigned Workers = 4;
  /// Per-worker outer iterations (one malloc/free pair each).
  unsigned Iters = 16;
  /// Inner ALU iterations per outer iteration — compute off the heap
  /// lock, which is what actually scales with threads.
  unsigned ComputeIters = 64;
};

/// Builds one multi-threaded workload. Deterministic for fixed options.
ErrorOr<WorkloadBuild> buildMtWorkload(MtWorkloadKind Kind,
                                       const MtWorkloadOptions &Opts = {});

} // namespace janitizer

#endif // JANITIZER_WORKLOADS_WORKLOADGEN_H
