//===- workloads/JulietGen.cpp --------------------------------------------==//

#include "workloads/JulietGen.h"

#include "support/Format.h"

using namespace janitizer;

namespace {

std::string header() {
  return R"(
    .module prog
    .entry main
    .needed libjz.so
    .extern malloc
    .extern free
  )";
}

/// Heap destination, loop copy of CopyLen bytes into a DstSize-byte
/// allocation (byte-wise, like the Juliet memcpy-loop variants).
std::string heapToHeap(unsigned DstSize, unsigned CopyLen) {
  return header() + formatString(R"(
    .func main
    main:
      movi r0, %u
      call malloc
      mov r9, r0          ; src
      movi r0, %u
      call malloc
      mov r10, r0         ; dst
      movi r5, 0
    copy:
      ld1 r6, [r9 + r5]
      st1 [r10 + r5], r6
      addi r5, 1
      cmpi r5, %u
      jl copy
      movi r0, 0
      syscall 0
    .endfunc
  )",
                                 CopyLen + 16, DstSize, CopyLen);
}

/// Stack source copied into a heap destination.
std::string stackToHeap(unsigned DstSize, unsigned CopyLen) {
  return header() + formatString(R"(
    .func main
    main:
      subi sp, 96
      movi r0, %u
      call malloc
      mov r10, r0         ; dst
      movi r5, 0
    fill:
      st1 [sp + r5], r5
      addi r5, 1
      cmpi r5, 64
      jl fill
      movi r5, 0
    copy:
      ld1 r6, [sp + r5]
      st1 [r10 + r5], r6
      addi r5, 1
      cmpi r5, %u
      jl copy
      addi sp, 96
      movi r0, 0
      syscall 0
    .endfunc
  )",
                                 DstSize, CopyLen);
}

/// Heap source copied over a canary-protected stack buffer of BufSize
/// bytes; CopyLen > BufSize tramples the adjacent slot and the canary.
std::string heapToStack(unsigned BufSize, unsigned CopyLen) {
  // Frame: [0 .. BufSize) buffer, [BufSize .. BufSize+8) adjacent local,
  // [BufSize+8 .. BufSize+16) canary.
  unsigned Frame = BufSize + 32;
  unsigned CanaryOff = BufSize + 8;
  return header() + formatString(R"(
    .func main
    main:
      subi sp, %u
      mov r1, tp
      st8 [sp + %u], r1    ; canary above the buffer
      movi r0, %u
      call malloc
      mov r9, r0           ; heap src
      movi r5, 0
    copy:
      ld1 r6, [r9 + r5]
      st1 [sp + r5], r6
      addi r5, 1
      cmpi r5, %u
      jl copy
      ld8 r1, [sp + %u]
      cmp r1, tp
      jne smashed
      addi sp, %u
      movi r0, 0
      syscall 0
    smashed:
      movi r0, 9
      syscall 0
    .endfunc
  )",
                                 Frame, CanaryOff, CopyLen + 16, CopyLen,
                                 CanaryOff, Frame);
}

/// Two adjacent allocations; a store at Offset past the first one. With
/// Offset = 64, Valgrind's 16-byte red zone is leapt into the second
/// allocation's valid bytes, while JASan's 64-byte red zone catches it.
std::string heapLongStride(unsigned Size, unsigned Offset) {
  return header() + formatString(R"(
    .func main
    main:
      movi r0, %u
      call malloc
      mov r9, r0
      movi r0, %u
      call malloc
      movi r1, 7
      st8 [r9 + %u], r1
      movi r0, 0
      syscall 0
    .endfunc
  )",
                                 Size, Size, Offset);
}

} // namespace

std::vector<JulietCase> janitizer::julietCwe122Suite() {
  std::vector<JulietCase> Cases;
  JulietCounts Counts;

  // Heap-to-heap: vary destination size; the bad variant copies 1..16
  // bytes past the end.
  for (unsigned I = 0; I < Counts.HeapToHeap; ++I) {
    unsigned Dst = 16 + (I % 12) * 8;
    unsigned Over = 1 + (I % 16);
    JulietCase C;
    C.Name = formatString("CWE122_heap_to_heap_%03u", I);
    C.Kind = JulietCase::Family::HeapToHeap;
    C.ExpectedViolations = 1;
    C.GoodSource = heapToHeap(Dst, Dst);
    C.BadSource = heapToHeap(Dst, Dst + Over);
    Cases.push_back(std::move(C));
  }

  // Stack-to-heap.
  for (unsigned I = 0; I < Counts.StackToHeap; ++I) {
    unsigned Dst = 16 + (I % 7) * 8; // <= 64, the stack source size
    unsigned Over = 1 + (I % 8);
    JulietCase C;
    C.Name = formatString("CWE122_stack_to_heap_%03u", I);
    C.Kind = JulietCase::Family::StackToHeap;
    C.ExpectedViolations = 1;
    C.GoodSource = stackToHeap(Dst, Dst);
    C.BadSource = stackToHeap(Dst, Dst + Over);
    Cases.push_back(std::move(C));
  }

  // Heap-to-stack: two real violations (adjacent local + canary); only
  // the canary write is observable to JASan, nothing to Valgrind.
  for (unsigned I = 0; I < Counts.HeapToStack; ++I) {
    unsigned Buf = 16 + (I % 6) * 8;
    JulietCase C;
    C.Name = formatString("CWE122_heap_to_stack_%03u", I);
    C.Kind = JulietCase::Family::HeapToStack;
    C.ExpectedViolations = 2;
    C.GoodSource = heapToStack(Buf, Buf);
    C.BadSource = heapToStack(Buf, Buf + 16); // through the canary granule
    Cases.push_back(std::move(C));
  }

  // Heap long stride. Sizes are chosen so that under the Valgrind
  // allocator (16-byte red zones) the +64 store lands inside the *second*
  // allocation's valid bytes — sizes rounding to 32 satisfy
  // roundedSize + 48 <= 80 < 2*roundedSize + 48.
  for (unsigned I = 0; I < Counts.HeapLongStride; ++I) {
    unsigned Size = 24 + (I % 2) * 8;
    JulietCase C;
    C.Name = formatString("CWE122_heap_stride_%03u", I);
    C.Kind = JulietCase::Family::HeapLongStride;
    C.ExpectedViolations = 1;
    C.GoodSource = heapLongStride(Size, Size - 8);
    C.BadSource = heapLongStride(Size, 64);
    Cases.push_back(std::move(C));
  }

  return Cases;
}
