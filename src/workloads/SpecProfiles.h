//===- workloads/SpecProfiles.h - SPEC CPU2006-like benchmark profiles ----===//
///
/// \file
/// Behaviour profiles for the 27 synthetic benchmarks that stand in for
/// SPEC CPU2006 (see DESIGN.md §2). Each profile fixes the densities that
/// determine overhead shape — memory operations, call depth, indirect
/// control flow — plus the structural attributes the paper's evaluation
/// keys on:
///
///  - Lang drives RetroWrite eligibility (C++ modules carry EH metadata;
///    Fortran programs use offset-table computed gotos that relocation
///    -guided symbolization cannot discover, and link libjfortran);
///  - UsesQsortCallback marks the three benchmarks whose stack/register-
///    passed comparators produce Lockdown false positives (§6.2.2);
///  - NonlocalUnwind marks the two benchmarks whose longjmp-style control
///    flow breaks Lockdown's shadow stack (omnetpp, dealII);
///  - DataIslands marks the two whose in-code constant pools break
///    BinCFI's linear sweep (gamess, zeusmp);
///  - Plugin/Jit fractions control how much executed code is visible only
///    dynamically (Figure 14: cactusADM 92.4%, lbm two blocks, mean 4.4%).
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_WORKLOADS_SPECPROFILES_H
#define JANITIZER_WORKLOADS_SPECPROFILES_H

#include <string>
#include <vector>

namespace janitizer {

struct BenchProfile {
  std::string Name;
  enum class SrcLang { C, Cxx, Fortran } Lang = SrcLang::C;

  // Kernel shape: each of Funcs generated kernels loops InnerIters times;
  // main loops OuterIters times over all kernels.
  unsigned Funcs = 4;
  unsigned OuterIters = 8;
  unsigned InnerIters = 64;
  /// Array loads+stores per inner iteration (strided, SCEV-analyzable).
  unsigned StridedMemOps = 2;
  /// Pointer-chasing loads per inner iteration (never elidable).
  unsigned ChasedMemOps = 1;
  /// Plain ALU operations per inner iteration.
  unsigned AluOps = 4;

  // Control-flow character, per outer iteration.
  unsigned IndirectCalls = 2; ///< through the function-pointer table
  unsigned DispatchCalls = 2; ///< switch via jump table (indirect jumps)
  unsigned HelperCalls = 4;   ///< extra direct call/return pairs
  unsigned HeapOps = 2;       ///< malloc/free pairs

  // Structural attributes.
  bool UsesQsortCallback = false;
  bool NonlocalUnwind = false;
  bool DataIslands = false;
  /// Work executed inside a dlopened plugin (invisible to ldd/static
  /// analysis): fraction of outer iterations that call into it [0..100].
  unsigned PluginWorkPercent = 0;
  /// Size of the plugin work loop (to scale its block count).
  unsigned PluginFuncs = 2;
  /// Emit a small JIT kernel and call it each outer iteration.
  bool UsesJit = false;

  bool isC() const { return Lang == SrcLang::C; }
  bool usesFortranLib() const { return Lang == SrcLang::Fortran; }
};

/// The 28 benchmark profiles, in the paper's figure order.
const std::vector<BenchProfile> &specProfiles();

/// Looks a profile up by name (nullptr if unknown).
const BenchProfile *findProfile(const std::string &Name);

} // namespace janitizer

#endif // JANITIZER_WORKLOADS_SPECPROFILES_H
