//===- workloads/WorkloadGen.cpp ------------------------------------------==//

#include "workloads/WorkloadGen.h"

#include "isa/Encoding.h"
#include "jasm/AsmBuilder.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"
#include "support/Endian.h"
#include "support/Error.h"
#include "support/Random.h"

using namespace janitizer;

namespace {

constexpr unsigned ArraySlots = 128;
constexpr unsigned ChainSlots = 64;

/// Emits one compute kernel: a counted loop of strided/chased/ALU ops,
/// optionally canary protected. Call-heavy profiles also make a leaf call
/// per iteration (SPEC-like call/return density, which is what backward-
/// edge CFI costs scale with).
void emitKernel(AsmBuilder &B, const BenchProfile &P, unsigned Idx,
                SplitMix64 &Rng) {
  bool Canary = (Idx % 2) == 1;
  std::string L = formatString("k%u", Idx);
  B.func(formatString("kern_%u", Idx));
  B.label(formatString("kern_%u", Idx));
  if (Canary) {
    B.line("subi sp, 32");
    B.line("mov r6, tp");
    B.line("st8 [sp + 24], r6");
  }
  // High register pressure, like compiled hot loops: r0 (seed), r2/r3
  // (bases), r5 (chase cursor), r6/r7 (loop-carried constants) and r4
  // (accumulator) all stay live across the memory operations, leaving the
  // instrumentation little free scratch state.
  B.line("la r2, arrA");
  B.line("la r3, arrB");
  B.line("la r5, chain");
  B.line("mov r4, r0");
  B.line("movi r6, 3");
  B.line("movi r1, 0");
  B.label(L + "_loop");
  // Deferred compare: the branch consuming these flags sits after the
  // memory operations (compilers schedule exactly like this), so the
  // arithmetic flags are live across every check site — the situation
  // §3.3.2's flag-liveness analysis exists for.
  B.line("cmpi r4, 4096");
  // Irregular index, computed once and live across all memory operations:
  // data-dependent accesses are not SCEV-analyzable (most real code is
  // not provably in bounds).
  B.line("mov r7, r1");
  B.line("xori r7, 1");
  // One extra strided access beyond the profile baseline keeps the
  // memory-operation density in SPEC's range (~35-45% of instructions).
  for (unsigned K = 0; K < P.StridedMemOps + 1; ++K) {
    if (K % 3 == 2) {
      B.line("ld8 r8, [r2 + r7*8]");
      B.line("add r4, r8");
    } else if (K % 2 == 0) {
      B.line("ld8 r8, [r2 + r1*8]"); // the SCEV-elidable fraction
      B.line("add r4, r8");
    } else {
      B.line("st8 [r3 + r7*8], r4");
    }
  }
  for (unsigned K = 0; K < P.ChasedMemOps; ++K)
    B.line("ld8 r5, [r5]");
  for (unsigned K = 0; K < P.AluOps; ++K) {
    switch (Rng.below(5)) {
    case 0: B.line("add r4, r6"); break;
    case 1: B.line("xor r4, r7"); break; // keeps r7 live past the stores
    case 2: B.line("muli r4, 3"); break;
    case 3: B.line("shri r4, 1"); break;
    default: B.line("add r4, r1"); break;
    }
  }
  std::string SkipL = L + "_noclip";
  B.fmt("jb %s", SkipL.c_str());
  B.line("shri r4, 2"); // clip the accumulator
  B.label(SkipL);
  if (P.HelperCalls >= 4)
    B.line("call knop"); // per-iteration call/return pair
  B.line("add r4, r0"); // the seed stays live through the whole loop
  B.line("addi r1, 1");
  B.fmt("cmpi r1, %u", P.InnerIters);
  B.fmt("jl %s_loop", L.c_str());
  B.line("mov r0, r4");
  if (Canary) {
    B.line("ld8 r6, [sp + 24]");
    B.line("cmp r6, tp");
    B.fmt("jne %s_smash", L.c_str());
    B.line("addi sp, 32");
    B.line("ret");
    B.label(L + "_smash");
    B.line("call __stack_chk_fail");
  } else {
    B.line("ret");
  }
  B.endfunc();
}

/// Encodes the tiny JIT kernel the program will materialize at run time:
///   cmpi r0, 50 ; jl skip ; addi r0, 13 ; skip: addi r0, 1 ; ret
std::vector<uint8_t> jitKernelBytes() {
  std::vector<uint8_t> Code;
  Instruction Cmp;
  Cmp.Op = Opcode::CMPI;
  Cmp.Rd = Reg::R0;
  Cmp.Imm = 50;
  encode(Cmp, Code);
  Instruction Jl;
  Jl.Op = Opcode::JL;
  Jl.Imm = 6; // over the addi
  encode(Jl, Code);
  Instruction Add;
  Add.Op = Opcode::ADDI;
  Add.Rd = Reg::R0;
  Add.Imm = 13;
  encode(Add, Code);
  Instruction Add2;
  Add2.Op = Opcode::ADDI;
  Add2.Rd = Reg::R0;
  Add2.Imm = 1;
  encode(Add2, Code);
  Instruction Ret;
  Ret.Op = Opcode::RET;
  encode(Ret, Code);
  while (Code.size() % 8)
    Code.push_back(static_cast<uint8_t>(Opcode::NOP));
  return Code;
}

/// Emits guest code that writes \p Bytes to the buffer in r11 (clobbers
/// r1).
void emitByteStores(AsmBuilder &B, const std::vector<uint8_t> &Bytes) {
  for (size_t Off = 0; Off < Bytes.size(); Off += 8) {
    uint64_t Word = 0;
    for (unsigned K = 0; K < 8; ++K)
      Word |= static_cast<uint64_t>(Bytes[Off + K]) << (8 * K);
    B.fmt("movq r1, %lld", static_cast<long long>(Word));
    B.fmt("st8 [r11 + %zu], r1", Off);
  }
}

/// Builds the dlopen plugin for profiles with dynamic-only work. The
/// block fan-out scales the number of basic blocks only the dynamic
/// modifier ever sees.
ErrorOr<Module> makePlugin(const BenchProfile &P) {
  AsmBuilder B;
  B.fmt(".module %s_plugin.so", P.Name.c_str());
  B.line(".pic");
  B.line(".shared");
  B.section("bss");
  B.line("pbuf: .zero 512");
  B.section("text");

  unsigned Fanout = P.PluginWorkPercent >= 100 ? 24 : 4;
  for (unsigned F = 0; F < P.PluginFuncs; ++F) {
    std::string Name = formatString("pk_%u", F);
    B.func(Name);
    B.label(Name);
    B.line("la r2, pbuf");
    B.line("movi r1, 0");
    B.label(Name + "_loop");
    // A branchy case chain: every arm is its own basic block, inflating
    // the dynamically-discovered block count (the cactusADM shape).
    B.line("mov r3, r0");
    B.line("add r3, r1");
    B.fmt("andi r3, %u", Fanout - 1);
    for (unsigned C = 0; C + 1 < Fanout; ++C) {
      B.fmt("cmpi r3, %u", C);
      B.fmt("jne %s_c%u", Name.c_str(), C);
      B.fmt("addi r0, %u", C + 1);
      B.fmt("jmp %s_cont", Name.c_str());
      B.label(formatString("%s_c%u", Name.c_str(), C));
    }
    B.fmt("addi r0, %u", Fanout);
    B.label(Name + "_cont");
    B.line("ld8 r4, [r2 + r1*8]");
    B.line("add r4, r0");
    B.line("st8 [r2 + r1*8], r4");
    B.line("addi r1, 1");
    B.fmt("cmpi r1, %u", P.PluginWorkPercent >= 100 ? 16u : 8u);
    B.fmt("jl %s_loop", Name.c_str());
    B.line("ret");
    B.endfunc();
  }

  B.line(".global plugin_work");
  B.func("plugin_work");
  B.label("plugin_work");
  B.line("push r9");
  B.line("push r10");
  B.line("mov r9, r0");
  B.line("movi r10, 0");
  for (unsigned F = 0; F < P.PluginFuncs; ++F) {
    B.line("mov r0, r9");
    B.fmt("call pk_%u", F);
    B.line("add r10, r0");
  }
  B.line("mov r0, r10");
  B.line("pop r10");
  B.line("pop r9");
  B.line("ret");
  B.endfunc();

  ErrorOr<Module> M = assembleModule(B.str());
  if (!M)
    return M.takeError().withContext(
        formatString("assembling plugin for profile '%s'", P.Name.c_str()));
  return M;
}

} // namespace

ErrorOr<WorkloadBuild> janitizer::buildWorkload(const BenchProfile &P,
                                                const WorkloadOptions &Opts) {
  WorkloadBuild W;
  W.ExeName = P.Name;
  ErrorOr<Module> Libc = buildJlibc();
  if (!Libc)
    return Libc.takeError().withContext("building workload '" + P.Name + "'");
  W.Store.add(Libc.takeValue());
  if (P.usesFortranLib()) {
    ErrorOr<Module> Fortran = buildJfortran();
    if (!Fortran)
      return Fortran.takeError().withContext("building workload '" + P.Name +
                                             "'");
    W.Store.add(Fortran.takeValue());
  }
  if (P.PluginWorkPercent > 0) {
    ErrorOr<Module> Plugin = makePlugin(P);
    if (!Plugin)
      return Plugin.takeError().withContext("building workload '" + P.Name +
                                            "'");
    W.Store.add(Plugin.takeValue());
    W.DlopenOnly.push_back(P.Name + "_plugin.so");
  }

  SplitMix64 Rng(P.Name);
  unsigned Outer = P.OuterIters * Opts.WorkScale;
  bool Fortran = P.usesFortranLib();

  AsmBuilder B;
  B.fmt(".module %s", P.Name.c_str());
  if (Opts.PicExe)
    B.line(".pic");
  if (P.Lang == BenchProfile::SrcLang::Cxx)
    B.line(".ehmetadata");
  B.line(".entry main");
  B.line(".needed libjz.so");
  if (Fortran)
    B.line(".needed libjfortran.so");
  B.line(".extern malloc");
  B.line(".extern free");
  B.line(".extern qsort");
  B.line(".extern print_u64");
  B.line(".extern __stack_chk_fail");
  if (Fortran) {
    B.line(".extern stencil3");
    B.line(".extern vsum_scaled");
  }

  // --- data ----------------------------------------------------------------
  B.section("bss");
  B.fmt("arrA: .zero %u", ArraySlots * 8);
  B.fmt("arrB: .zero %u", ArraySlots * 8);
  B.fmt("chain: .zero %u", ChainSlots * 8);
  B.line("pluginslot: .zero 8");
  B.line("jitslot: .zero 8");
  B.line("qbuf: .zero 48");

  B.section("data");
  B.line("ftable:");
  for (unsigned K = 0; K < 4; ++K)
    B.fmt("  .quad op_%u", K);

  B.section("rodata");
  if (P.PluginWorkPercent > 0) {
    B.fmt("pname: .string \"%s_plugin.so\"", P.Name.c_str());
    B.line("wname: .string \"plugin_work\"");
  }
  bool OffsetGoto = Fortran && Opts.PicExe;
  if (OffsetGoto) {
    // PIC Fortran: computed-goto offset table — 4-byte module offsets,
    // invisible to relocation-based symbolization (the RetroWrite
    // refusal case; Janitizer's scan still finds them, §4.2.1).
    B.line("jt4:");
    for (unsigned K = 0; K < 4; ++K)
      B.fmt("  .offset32 d_case%u", K);
  } else {
    B.line("jt8:");
    for (unsigned K = 0; K < 4; ++K)
      B.fmt("  .quad d_case%u", K);
  }

  // --- code ------------------------------------------------------------------
  B.section("text");

  // Indirect-call targets.
  for (unsigned K = 0; K < 4; ++K) {
    B.func(formatString("op_%u", K));
    B.label(formatString("op_%u", K));
    B.fmt("addi r0, %u", K * 3 + 1);
    if (K % 2 == 0) {
      B.line("la r1, arrB");
      B.line("ld8 r1, [r1]");
      B.line("add r0, r1");
    }
    B.line("ret");
    B.endfunc();
  }

  // A pure leaf for in-loop call/return density (preserves all state).
  B.func("knop");
  B.label("knop");
  B.line("ret");
  B.endfunc();

  // Tiny leaf for direct-call density. It deliberately leaves r7 alone so
  // ipa-ra-style callers can keep values in caller-saved registers across
  // the call (§4.1.2).
  B.func("leaf");
  B.label("leaf");
  B.line("addi r0, 1");
  B.line("ret");
  B.endfunc();

  // Compute kernels.
  for (unsigned F = 0; F < P.Funcs; ++F)
    emitKernel(B, P, F, Rng);

  // Switch dispatcher.
  B.func("dispatch");
  B.label("dispatch");
  B.line("andi r0, 3");
  if (OffsetGoto) {
    B.line("la r1, jt4");
    B.line("ld4 r2, [r1 + r0*4]");
    B.line("la r3, __base__");
    B.line("add r2, r3");
    B.line("jmpr r2");
  } else {
    B.line("la r1, jt8");
    B.line("jmpm [r1 + r0*8]");
  }
  for (unsigned K = 0; K < 4; ++K) {
    B.label(formatString("d_case%u", K));
    B.fmt("movi r0, %u", K * 11 + 7);
    if (K < 3)
      B.line("jmp d_end");
  }
  B.label("d_end");
  B.line("ret");
  B.endfunc();

  if (P.DataIslands) {
    // In-code constant pool: desynchronizes linear-sweep disassembly.
    B.line(".island 24 5");
  }

  if (P.UsesQsortCallback) {
    // The comparator's address travels only through a register — exactly
    // what Lockdown's data-scanning heuristic misses (§6.2.2).
    B.func("cmpfn");
    B.label("cmpfn");
    B.line("sub r0, r1");
    B.line("ret");
    B.endfunc();
  }

  if (P.NonlocalUnwind) {
    // longjmp-style unwinding (breaks Lockdown's shadow stack; JCFI
    // resynchronizes). r13 holds the saved stack pointer.
    B.func("unw_inner");
    B.label("unw_inner");
    B.line("mov sp, r13");
    B.line("subi sp, 8");
    B.line("ret"); // straight back to unw_entry's caller frame
    B.endfunc();
    B.func("unw_outer");
    B.label("unw_outer");
    B.line("call unw_inner");
    B.line("trap 0");
    B.endfunc();
    B.func("do_unwind");
    B.label("do_unwind");
    B.line("mov r13, sp");
    B.line("call unw_outer");
    B.line("movi r0, 5");
    B.line("ret");
    B.endfunc();
  }

  // --- main ------------------------------------------------------------------
  B.func("main", /*Exported=*/true);
  B.line("main:");
  // Build the pointer-chase ring: chain[i] = &chain[(7i + 1) % N].
  B.line("movi r6, 0");
  B.label("m_chain");
  B.line("mov r7, r6");
  B.line("muli r7, 7");
  B.line("addi r7, 1");
  B.fmt("andi r7, %u", ChainSlots - 1);
  B.line("la r8, chain");
  B.line("lea r8, [r8 + r7*8]");
  B.line("la r5, chain");
  B.line("st8 [r5 + r6*8], r8");
  B.line("addi r6, 1");
  B.fmt("cmpi r6, %u", ChainSlots);
  B.line("jl m_chain");
  // Seed arrA.
  B.line("la r2, arrA");
  B.line("movi r6, 0");
  B.label("m_init");
  B.line("mov r7, r6");
  B.line("muli r7, 13");
  B.line("addi r7, 3");
  B.line("st8 [r2 + r6*8], r7");
  B.line("addi r6, 1");
  B.fmt("cmpi r6, %u", ArraySlots);
  B.line("jl m_init");

  if (P.PluginWorkPercent > 0) {
    B.line("la r0, pname");
    B.line("syscall 4"); // dlopen
    B.line("la r1, wname");
    B.line("syscall 5"); // dlsym
    B.line("la r1, pluginslot");
    B.line("st8 [r1], r0");
  }
  if (P.UsesJit) {
    std::vector<uint8_t> Jit = jitKernelBytes();
    B.fmt("movi r0, %zu", Jit.size());
    B.line("syscall 2"); // sbrk
    B.line("mov r11, r0");
    emitByteStores(B, Jit);
    B.line("mov r0, r11");
    B.fmt("movi r1, %zu", Jit.size());
    B.line("syscall 3"); // map as code
    B.line("la r1, jitslot");
    B.line("st8 [r1], r11");
  }

  B.line("movi r12, 0"); // outer counter
  B.line("movi r10, 0"); // checksum
  B.label("m_outer");

  // Kernels (one call each per outer iteration).
  for (unsigned F = 0; F < P.Funcs; ++F) {
    B.line("mov r0, r12");
    B.fmt("call kern_%u", F);
    B.line("add r10, r0");
  }
  // Direct-call density; keeps a live value in caller-saved r7 across the
  // leaf calls (the ipa-ra pattern §4.1.2 — leaf does not touch r7).
  if (P.HelperCalls) {
    B.line("movi r7, 17");
    for (unsigned K = 0; K < P.HelperCalls; ++K) {
      B.line("mov r0, r12");
      B.line("call leaf");
      B.line("add r0, r7");
      B.line("add r10, r0");
    }
  }
  // Indirect calls through the table.
  for (unsigned K = 0; K < P.IndirectCalls; ++K) {
    B.line("mov r6, r12");
    B.fmt("addi r6, %u", K);
    B.line("andi r6, 3");
    B.line("la r5, ftable");
    B.line("ld8 r7, [r5 + r6*8]");
    B.line("mov r0, r12");
    B.line("callr r7");
    B.line("add r10, r0");
  }
  // Switch dispatch (indirect jumps).
  for (unsigned K = 0; K < P.DispatchCalls; ++K) {
    B.line("mov r0, r12");
    B.fmt("addi r0, %u", K);
    B.line("call dispatch");
    B.line("add r10, r0");
  }
  // Heap traffic.
  for (unsigned K = 0; K < P.HeapOps; ++K) {
    B.fmt("movi r0, %u", 32 + K * 16);
    B.line("call malloc");
    B.line("mov r11, r0");
    B.line("movi r1, 7");
    B.line("st8 [r11 + 8], r1");
    B.line("ld8 r1, [r11 + 8]");
    B.line("add r10, r1");
    B.line("mov r0, r11");
    B.line("call free");
  }
  if (P.UsesQsortCallback) {
    // Fill and sort a small buffer with the register-passed comparator.
    B.line("la r5, qbuf");
    B.line("movi r6, 0");
    B.label("m_qfill");
    B.line("movi r7, 977");
    B.line("sub r7, r6");
    B.line("st8 [r5 + r6*8], r7");
    B.line("addi r6, 1");
    B.line("cmpi r6, 6");
    B.line("jl m_qfill");
    B.line("la r0, qbuf");
    B.line("movi r1, 6");
    B.line("movi r2, 8");
    B.line("la r3, cmpfn");
    B.line("call qsort");
    B.line("la r5, qbuf");
    B.line("ld8 r6, [r5]");
    B.line("add r10, r6");
  }
  if (Fortran) {
    B.line("la r0, arrA");
    B.line("movi r1, 32");
    B.line("la r2, arrB");
    B.line("call stencil3");
    B.line("la r0, arrA");
    B.line("movi r1, 8");
    B.line("call vsum_scaled"); // clobbers r9 by design
    B.line("add r10, r0");
  }
  if (P.PluginWorkPercent > 0) {
    unsigned Every =
        P.PluginWorkPercent >= 100 ? 1 : (100 + P.PluginWorkPercent - 1) /
                                             P.PluginWorkPercent;
    std::string Skip = B.uniqueLabel("m_noplug");
    if (Every > 1) {
      B.line("mov r6, r12");
      // Power-of-two-ish gating keeps it simple: call when the low bits
      // are zero.
      unsigned Mask = 1;
      while (Mask < Every)
        Mask <<= 1;
      B.fmt("andi r6, %u", Mask - 1);
      B.line("cmpi r6, 0");
      B.fmt("jne %s", Skip.c_str());
    }
    B.line("la r5, pluginslot");
    B.line("ld8 r7, [r5]");
    B.line("mov r0, r12");
    B.line("callr r7");
    B.line("add r10, r0");
    if (Every > 1)
      B.label(Skip);
  }
  if (P.UsesJit) {
    B.line("la r5, jitslot");
    B.line("ld8 r7, [r5]");
    B.line("mov r0, r12");
    B.line("callr r7");
    B.line("add r10, r0");
  }
  if (P.NonlocalUnwind) {
    B.line("call do_unwind");
    B.line("add r10, r0");
  }

  B.line("addi r12, 1");
  B.fmt("cmpi r12, %u", Outer);
  B.line("jl m_outer");

  B.line("mov r0, r10");
  B.line("call print_u64");
  B.line("movi r0, 0");
  B.line("syscall 0");
  B.endfunc();

  ErrorOr<Module> Exe = assembleModule(B.str());
  if (!Exe)
    return Exe.takeError().withContext(
        formatString("assembling executable for workload '%s'",
                     P.Name.c_str()));
  W.Store.add(Exe.takeValue());
  return W;
}

namespace {

/// Emits a futex-based "wait until [stage] == Want" loop. The kernel
/// re-checks the value under its thread lock, so a wake between our load
/// and the wait cannot be lost. Clobbers r0/r1/r2/r5/r6.
void emitWaitStage(AsmBuilder &B, const std::string &L, unsigned Want) {
  B.label(L);
  B.line("la r5, stage");
  B.line("ld8 r6, [r5]");
  B.fmt("cmpi r6, %u", Want);
  B.fmt("je %s_ok", L.c_str());
  B.line("la r0, stage");
  B.line("movi r1, 0"); // futex wait
  B.line("mov r2, r6"); // ...while the value is still what we read
  B.line("syscall 12");
  B.fmt("jmp %s", L.c_str());
  B.label(L + "_ok");
}

/// Emits "store Val to [stage] and futex-wake all waiters". Clobbers
/// r0/r1/r5/r6.
void emitSetStage(AsmBuilder &B, unsigned Val) {
  B.line("la r5, stage");
  B.fmt("movi r6, %u", Val);
  B.line("st8 [r5], r6");
  B.line("la r0, stage");
  B.line("movi r1, 1"); // futex wake
  B.line("syscall 12");
}

/// The dlopen plugin for MtWorkloadKind::RaceDlopen: a couple of small
/// functions so the load flushes traces and republishes the rule index
/// while worker threads are mid-dispatch.
ErrorOr<Module> makeMtPlugin() {
  AsmBuilder B;
  B.line(".module mt_plugin.so");
  B.line(".pic");
  B.line(".shared");
  B.section("text");
  B.func("mt_helper");
  B.label("mt_helper");
  B.line("addi r0, 3");
  B.line("ret");
  B.endfunc();
  B.line(".global mt_work");
  B.func("mt_work");
  B.label("mt_work");
  B.line("movi r5, 0");
  B.label("mtw_loop");
  B.line("call mt_helper");
  B.line("addi r5, 1");
  B.line("cmpi r5, 8");
  B.line("jl mtw_loop");
  B.line("muli r0, 2");
  B.line("addi r0, 5");
  B.line("ret");
  B.endfunc();
  ErrorOr<Module> M = assembleModule(B.str());
  if (!M)
    return M.takeError().withContext("assembling mt_plugin.so");
  return M;
}

} // namespace

ErrorOr<WorkloadBuild> janitizer::buildMtWorkload(MtWorkloadKind Kind,
                                                  const MtWorkloadOptions &O) {
  WorkloadBuild W;
  const char *Name = Kind == MtWorkloadKind::RaceAlloc    ? "mt_race_alloc"
                     : Kind == MtWorkloadKind::RaceDlopen ? "mt_race_dlopen"
                                                          : "mt_uaf";
  W.ExeName = Name;
  ErrorOr<Module> Libc = buildJlibc();
  if (!Libc)
    return Libc.takeError().withContext("building MT workload");
  W.Store.add(Libc.takeValue());
  if (Kind == MtWorkloadKind::RaceDlopen) {
    ErrorOr<Module> Plugin = makeMtPlugin();
    if (!Plugin)
      return Plugin.takeError().withContext("building MT workload");
    W.Store.add(Plugin.takeValue());
    W.DlopenOnly.push_back("mt_plugin.so");
  }

  bool Uaf = Kind == MtWorkloadKind::PlantedUaf;
  unsigned Spawned = O.Workers + (Uaf ? 1 : 0); // freer rides along

  AsmBuilder B;
  B.fmt(".module %s", Name);
  B.line(".entry main");
  B.line(".needed libjz.so");
  B.line(".extern malloc");
  B.line(".extern free");
  B.line(".extern thread_create");
  B.line(".extern thread_join");
  B.line(".extern print_u64");

  B.section("bss");
  B.fmt("tids: .zero %u", Spawned * 8);
  B.line("slot: .zero 8");
  B.line("stage: .zero 8");
  if (Kind == MtWorkloadKind::RaceDlopen) {
    B.section("rodata");
    B.line("pname: .string \"mt_plugin.so\"");
    B.line("wname: .string \"mt_work\"");
  }

  B.section("text");

  // worker(r0 = index): Iters rounds of { malloc, write, private compute,
  // read, free }. The churn sizes start at 64 bytes so the 16-byte UAF
  // chunk below can never satisfy a first-fit request.
  B.func("worker");
  B.label("worker");
  B.line("push r9");
  B.line("push r10");
  B.line("push r11");
  B.line("push r12");
  B.line("mov r9, r0");  // index
  B.line("movi r10, 0"); // sum
  B.line("movi r11, 0"); // outer counter
  B.label("w_outer");
  B.line("mov r0, r9");
  B.line("muli r0, 16");
  B.line("addi r0, 64");
  B.line("call malloc");
  B.line("mov r12, r0");
  B.line("mov r5, r9");
  B.line("addi r5, 7");
  B.line("st8 [r12 + 8], r5");
  // Private compute keeps host threads busy off the heap lock.
  B.line("movi r6, 0");
  B.line("movi r7, 0");
  B.label("w_inner");
  B.line("add r7, r9");
  B.line("xori r7, 13");
  B.line("addi r6, 1");
  B.fmt("cmpi r6, %u", O.ComputeIters);
  B.line("jl w_inner");
  B.line("andi r7, 255");
  B.line("add r10, r7");
  B.line("ld8 r6, [r12 + 8]");
  B.line("add r10, r6");
  B.line("mov r0, r12");
  B.line("call free");
  B.line("addi r11, 1");
  B.fmt("cmpi r11, %u", O.Iters);
  B.line("jl w_outer");
  B.line("mov r0, r10");
  B.line("pop r12");
  B.line("pop r11");
  B.line("pop r10");
  B.line("pop r9");
  B.line("ret");
  B.endfunc();

  if (Uaf) {
    // freer: waits for the main thread to publish the chunk, frees it,
    // then signals back. Returns a constant so the join sum stays fixed.
    B.func("freer");
    B.label("freer");
    emitWaitStage(B, "f_wait", 1);
    B.line("la r5, slot");
    B.line("ld8 r0, [r5]");
    B.line("call free");
    emitSetStage(B, 2);
    B.line("movi r0, 21");
    B.line("ret");
    B.endfunc();
  }

  // --- main ---
  B.func("main", /*Exported=*/true);
  B.line("main:");
  B.line("movi r12, 0");
  B.label("m_spawn");
  if (Uaf) {
    // Slot 0 spawns the freer; churn workers fill the rest.
    B.line("cmpi r12, 0");
    B.line("jne m_spawn_worker");
    B.line("la r0, freer");
    B.line("jmp m_spawn_go");
    B.label("m_spawn_worker");
    B.line("la r0, worker");
    B.label("m_spawn_go");
    B.line("mov r1, r12");
    B.line("subi r1, 1");
  } else {
    B.line("la r0, worker");
    B.line("mov r1, r12");
  }
  B.line("call thread_create");
  B.line("la r5, tids");
  B.line("st8 [r5 + r12*8], r0");
  B.line("addi r12, 1");
  B.fmt("cmpi r12, %u", Spawned);
  B.line("jl m_spawn");

  B.line("movi r10, 0"); // checksum

  if (Kind == MtWorkloadKind::RaceDlopen) {
    // Load the plugin while the workers are executing: the module load
    // flushes traces and invalidates links under every running thread.
    B.line("la r0, pname");
    B.line("syscall 4"); // dlopen
    B.line("la r1, wname");
    B.line("syscall 5"); // dlsym
    B.line("mov r7, r0");
    B.line("movi r0, 3");
    B.line("callr r7");
    B.line("add r10, r0");
  }

  if (Uaf) {
    // Plant the race: publish a 16-byte chunk, hand it to the freer, and
    // only touch it again once the freer has confirmed the free. The
    // handshake orders free -> use on every schedule.
    B.line("movi r0, 16");
    B.line("call malloc");
    B.line("mov r11, r0");
    B.line("la r5, slot");
    B.line("st8 [r5], r11");
    emitSetStage(B, 1);
  }

  // Join every spawned thread; on thread_create failure (~0 tid, e.g.
  // JZ_MAX_GUEST_THREADS=1) run the same body inline so the checksum —
  // and the planted violation — are identical single-threaded.
  B.line("movi r12, 0");
  B.label("m_join");
  B.line("la r5, tids");
  B.line("ld8 r0, [r5 + r12*8]");
  B.line("cmpi r0, -1");
  B.line("jne m_dojoin");
  if (Uaf) {
    B.line("cmpi r12, 0");
    B.line("jne m_inline_worker");
    B.line("call freer");
    B.line("jmp m_acc");
    B.label("m_inline_worker");
    B.line("mov r0, r12");
    B.line("subi r0, 1");
    B.line("call worker");
  } else {
    B.line("mov r0, r12");
    B.line("call worker");
  }
  B.line("jmp m_acc");
  B.label("m_dojoin");
  B.line("call thread_join");
  B.label("m_acc");
  B.line("add r10, r0");
  B.line("addi r12, 1");
  B.fmt("cmpi r12, %u", Spawned);
  B.line("jl m_join");

  if (Uaf) {
    emitWaitStage(B, "m_wait", 2);
    // The use-after-free: a write then a read of the freed chunk. Under
    // JASan both land in HeapFreed shadow; natively the 16-byte chunk is
    // never recycled (all churn requests are larger), so the readback is
    // the 77 just stored and the checksum stays deterministic.
    B.line("movi r6, 77");
    B.line("st8 [r11 + 8], r6");
    B.line("ld8 r6, [r11 + 8]");
    B.line("add r10, r6");
  }

  B.line("mov r0, r10");
  B.line("call print_u64");
  B.line("movi r0, 0");
  B.line("syscall 0");
  B.endfunc();

  ErrorOr<Module> Exe = assembleModule(B.str());
  if (!Exe)
    return Exe.takeError().withContext(
        formatString("assembling MT workload '%s'", Name));
  W.Store.add(Exe.takeValue());
  return W;
}

std::string janitizer::nativeReference(const WorkloadBuild &W,
                                       RunResult *Out) {
  Process P(W.Store);
  Error E = P.loadProgram(W.ExeName);
  if (E)
    return std::string();
  RunResult R = P.runNative(1ull << 31);
  if (Out)
    *Out = R;
  if (R.St != RunResult::Status::Exited)
    return std::string();
  return P.output();
}
