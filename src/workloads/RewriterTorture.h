//===- workloads/RewriterTorture.h - Static-rewriter torture cases --------===//
///
/// \file
/// Small position-independent executables built around the constructs that
/// historically break static binary rewriting (§6.2.1): code reachable at
/// two offsets via pointer arithmetic, data embedded in executable
/// sections, and base-plus-offset computed gotos whose tables hold module
/// offsets rather than relocatable addresses. Each case prints a
/// deterministic checksum, so a rewriter is scored purely on functional
/// correctness: the rewritten program either reproduces the native output
/// (correct), is refused up front (refused — honest), or produces a
/// different output / fails to finish (wrong — the silent-corruption
/// case).
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_WORKLOADS_REWRITERTORTURE_H
#define JANITIZER_WORKLOADS_REWRITERTORTURE_H

#include "workloads/WorkloadGen.h"

namespace janitizer {

enum class TortureKind {
  /// A function with a second, interior entry reached by `la` on the head
  /// plus an immediate byte offset (`callr head+OFF`). Any rewriter that
  /// inserts instrumentation between the two entries while repointing the
  /// `la` invalidates OFF and lands mid-instruction.
  OverlapEntry,
  /// A data island inside .text, read through a pc-relative `la`. Linear
  /// sweeps desynchronize on it (the island ends with the first byte of a
  /// long opcode); recursive tilers see an unexplained gap.
  DataInText,
  /// A computed goto through a table of 4-byte module *offsets* added to
  /// `__base__`. No 8-byte slot ever holds a code address, so data-scan
  /// symbolization has nothing to repoint and the stale offsets aim at the
  /// vacated original code.
  ComputedGoto,
};

const char *tortureKindName(TortureKind K);

/// Builds the torture executable for \p Kind (always PIC, so the
/// RetroWrite baseline participates). Deterministic.
ErrorOr<WorkloadBuild> buildTortureWorkload(TortureKind K);

} // namespace janitizer

#endif // JANITIZER_WORKLOADS_REWRITERTORTURE_H
