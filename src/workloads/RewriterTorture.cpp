//===- workloads/RewriterTorture.cpp --------------------------------------==//

#include "workloads/RewriterTorture.h"

#include "jasm/AsmBuilder.h"
#include "jasm/Assembler.h"
#include "runtime/Jlibc.h"

using namespace janitizer;

const char *janitizer::tortureKindName(TortureKind K) {
  switch (K) {
  case TortureKind::OverlapEntry: return "overlap-entry";
  case TortureKind::DataInText:   return "data-in-text";
  case TortureKind::ComputedGoto: return "computed-goto";
  }
  return "?";
}

namespace {

/// Emits the full executable source for \p K. \p OverlapOff is the byte
/// distance from `twoentry` to its interior entry `inner` (OverlapEntry
/// only); it is discovered by a probe assembly of this same source, which
/// is layout-stable because `twoentry` precedes the `addi` that encodes
/// the offset.
std::string emitTortureExe(TortureKind K, const std::string &Name,
                           uint64_t OverlapOff) {
  AsmBuilder B;
  B.fmt(".module %s", Name.c_str());
  B.line(".pic");
  B.line(".entry main");
  B.line(".needed libjz.so");
  B.line(".extern print_u64");

  B.section("bss");
  B.line("tbuf: .zero 64");

  if (K == TortureKind::ComputedGoto) {
    // Module offsets, not addresses: no 8-byte slot ever holds a code
    // pointer, so data-scan symbolization has nothing to repoint.
    B.section("rodata");
    B.line("jt4:");
    for (unsigned C = 0; C < 4; ++C)
      B.fmt("  .offset32 d_case%u", C);
  }

  B.section("text");

  switch (K) {
  case TortureKind::OverlapEntry:
    // Two entries into one code run. The memory access between them is
    // exactly what an inline sanitizer instruments, so any rewriter that
    // both repoints the `la` and grows the head invalidates the
    // immediate offset the caller adds.
    B.func("twoentry", /*Exported=*/true);
    B.label("twoentry");
    B.line("la r9, tbuf");
    B.line("ld8 r8, [r9]");
    B.line("add r0, r8");
    B.line("st8 [r9 + 8], r0");
    B.line(".global inner");
    B.label("inner");
    B.line("addi r0, 7");
    B.line("muli r0, 3");
    B.line("ret");
    B.endfunc();
    break;

  case TortureKind::DataInText:
    // A labelled island read through pc-relative addressing. The island
    // deliberately ends with the first byte of a long opcode, so a linear
    // sweep eats into `w_done`; a recursive tiler sees unexplained bytes.
    B.func("work", /*Exported=*/true);
    B.label("work");
    B.line("la r9, isl");
    B.line("ld8 r8, [r9]");
    B.line("add r0, r8");
    B.line("ld8 r8, [r9 + 8]");
    B.line("xor r0, r8");
    B.line("jmp w_done");
    B.label("isl");
    B.line(".island 24 5");
    B.label("w_done");
    B.line("shri r0, 1");
    B.line("ret");
    B.endfunc();
    break;

  case TortureKind::ComputedGoto:
    B.func("dispatch");
    B.label("dispatch");
    B.line("andi r0, 3");
    B.line("la r1, jt4");
    B.line("ld4 r2, [r1 + r0*4]");
    B.line("la r3, __base__");
    B.line("add r2, r3");
    B.line("jmpr r2");
    B.label("d_case0");
    B.line("addi r10, 1");
    B.line("jmp d_join");
    B.label("d_case1");
    B.line("addi r10, 5");
    B.line("jmp d_join");
    B.label("d_case2");
    B.line("muli r10, 3");
    B.line("jmp d_join");
    B.label("d_case3");
    B.line("addi r10, 9");
    B.label("d_join");
    B.line("mov r0, r10");
    B.line("ret");
    B.endfunc();
    break;
  }

  B.func("main", /*Exported=*/true);
  B.label("main");
  B.line("movi r10, 17");
  B.line("movi r12, 0");
  B.label("m_loop");
  switch (K) {
  case TortureKind::OverlapEntry:
    B.line("mov r0, r12");
    B.line("call twoentry"); // the ordinary entry
    B.line("add r10, r0");
    B.line("mov r0, r12");
    B.line("la r1, twoentry"); // the interior entry, head + offset
    B.fmt("addi r1, %llu", static_cast<unsigned long long>(OverlapOff));
    B.line("callr r1");
    B.line("add r10, r0");
    break;
  case TortureKind::DataInText:
    B.line("mov r0, r12");
    B.line("call work");
    B.line("add r10, r0");
    break;
  case TortureKind::ComputedGoto:
    B.line("mov r0, r12");
    B.line("call dispatch");
    break;
  }
  B.line("addi r12, 1");
  B.line("cmpi r12, 8");
  B.line("jl m_loop");
  B.line("mov r0, r10");
  B.line("call print_u64");
  B.line("movi r0, 0");
  B.line("syscall 0");
  B.endfunc();

  return B.str();
}

} // namespace

ErrorOr<WorkloadBuild> janitizer::buildTortureWorkload(TortureKind K) {
  std::string Name = formatString("torture_%s", tortureKindName(K));
  WorkloadBuild W;
  W.ExeName = Name;

  ErrorOr<Module> Libc = buildJlibc();
  if (!Libc)
    return Libc.takeError().withContext("building torture '" + Name + "'");
  W.Store.add(Libc.takeValue());

  uint64_t Off = 0;
  if (K == TortureKind::OverlapEntry) {
    // Probe pass: assemble once to measure the head→inner distance the
    // caller will encode as an immediate. `twoentry` precedes `main`, so
    // the distance is independent of the immediate's own encoding.
    ErrorOr<Module> Probe = assembleModule(emitTortureExe(K, Name, 0));
    if (!Probe)
      return Probe.takeError().withContext("probing torture '" + Name + "'");
    const Symbol *Head = Probe->findSymbol("twoentry");
    const Symbol *Inner = Probe->findSymbol("inner");
    if (!Head || !Inner || Inner->Value <= Head->Value)
      return makeError("torture '" + Name + "': probe symbols missing");
    Off = Inner->Value - Head->Value;
  }

  ErrorOr<Module> Exe = assembleModule(emitTortureExe(K, Name, Off));
  if (!Exe)
    return Exe.takeError().withContext("assembling torture '" + Name + "'");
  W.Store.add(Exe.takeValue());
  return W;
}
