//===- workloads/JulietGen.h - NIST Juliet CWE-122-style suite ------------===//
///
/// \file
/// Generates the heap-buffer-overflow test suite used for the paper's
/// Figure 10 accounting: 624 cases, each with a well-behaving (good) and a
/// violating (bad) variant. Four families reproduce the paper's
/// detection/miss structure:
///
///  - HeapToHeap (252): loop copy overruns a heap destination into its
///    red zone — detected by both tools;
///  - StackToHeap (252): stack-sourced copy overruns a heap destination —
///    detected by both tools;
///  - HeapToStack (96): heap-sourced copy overruns a stack buffer; two
///    distinct violations exist (the adjacent-variable overwrite and the
///    canary-slot write). JASan reports only the canary — fewer than
///    actual, a false negative; Valgrind reports nothing;
///  - HeapLongStride (24): a 64-byte-offset store leaps Valgrind's
///    16-byte red zone into the next allocation but lands in JASan's
///    64-byte red zone — JASan-only detection.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_WORKLOADS_JULIETGEN_H
#define JANITIZER_WORKLOADS_JULIETGEN_H

#include "jelf/Module.h"

#include <string>
#include <vector>

namespace janitizer {

struct JulietCase {
  enum class Family : uint8_t {
    HeapToHeap,
    StackToHeap,
    HeapToStack,
    HeapLongStride,
  };
  std::string Name;
  Family Kind = Family::HeapToHeap;
  /// Number of distinct violations present in the bad variant.
  unsigned ExpectedViolations = 1;
  /// Program sources (assembled on demand; exe module name is "prog").
  std::string GoodSource;
  std::string BadSource;
};

/// The full 624-case suite. Deterministic.
std::vector<JulietCase> julietCwe122Suite();

/// Convenience: the family counts (252/252/96/24).
struct JulietCounts {
  unsigned HeapToHeap = 252;
  unsigned StackToHeap = 252;
  unsigned HeapToStack = 96;
  unsigned HeapLongStride = 24;
  unsigned total() const {
    return HeapToHeap + StackToHeap + HeapToStack + HeapLongStride;
  }
};

} // namespace janitizer

#endif // JANITIZER_WORKLOADS_JULIETGEN_H
