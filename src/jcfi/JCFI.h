//===- jcfi/JCFI.h - Hybrid control-flow integrity for binaries ------------===//
///
/// \file
/// JCFI (§4.2): forward edges are validated against per-module hash tables
/// of valid targets; backward edges use a precise shadow stack.
///
/// Policy:
///  - Indirect calls: intra-module -> function entries of the module (plus
///    the mid-function allow list); inter-module -> exported symbols or
///    address-taken functions of the target module; JIT code -> region
///    entry points registered at MapCode time.
///  - Indirect jumps: within the enclosing function (at basic-block starts
///    when static info exists, any byte of the function otherwise), or a
///    function entry of the same module (tail calls).
///  - Returns: must match the shadow-stack top. The PLT lazy-binding RET
///    (§4.2.3) is instead verified as a forward edge.
///
/// For modules without static hints, load-time analysis scans the raw
/// binary; with full symbols, code pointers are filtered by function
/// addresses, otherwise a weaker Lockdown-like exported-symbol policy
/// applies (§4.2.2). Statically unseen blocks get the same checks from the
/// per-block dynamic fallback pass.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_JCFI_JCFI_H
#define JANITIZER_JCFI_JCFI_H

#include "core/JanitizerDynamic.h"
#include "core/SecurityTool.h"
#include "jcfi/TargetInfo.h"

#include <atomic>
#include <mutex>
#include <optional>
#include <shared_mutex>

namespace janitizer {

struct JCFIOptions {
  /// Stop the process on a CFI violation (production behaviour). The
  /// soundness experiments record and continue.
  bool AbortOnViolation = false;
  /// Disable the shadow stack (forward-edge-only configuration for the
  /// Figure 11 breakdown and the BinCFI-comparable measurement).
  bool BackwardEdges = true;
  /// Forward-edge checks (disable to measure shadow stack alone).
  bool ForwardEdges = true;
};

/// Per-site accounting for the dynamic AIR metric (Figure 12): every
/// executed indirect CTI site with the size of its allowed-target set.
struct ExecutedSite {
  uint64_t InstrAddr = 0;
  CTIKind Kind = CTIKind::None;
  uint64_t AllowedTargets = 0; ///< |T_j| in bytes of reachable targets
};

class JCFITool : public SecurityTool {
public:
  JCFITool(const JcfiDatabase &Db, JCFIOptions Opts = {})
      : Db(Db), Opts(Opts) {}

  std::string name() const override { return "jcfi"; }

  // Static plug-in pass: emits rules and fills \p StaticDb (the mutable
  // database the analyzer writes; the same object may serve as this
  // tool's read database in a later run).
  void runStaticPass(const StaticContext &Ctx, RuleFile &Out) override;

  /// The database the static pass writes into (defaults to none: static
  /// pass then only emits rules).
  void setStaticOutput(JcfiDatabase *DbOut) { StaticOut = DbOut; }

  /// With a static-output database attached the pass writes shared state
  /// that a cached rule file cannot replay, so it must be serialized and
  /// never served from the rule cache.
  bool staticPassIsPure() const override { return StaticOut == nullptr; }

  // Dynamic side.
  void instrumentWithRules(
      JanitizerDynamic &D, CacheBlock &Block, BlockBuilder &B,
      const std::vector<DecodedInstrRT> &Instrs,
      const std::unordered_map<uint64_t, std::vector<RewriteRule>> &InstrRules)
      override;
  void instrumentFallback(JanitizerDynamic &D, CacheBlock &Block,
                          BlockBuilder &B,
                          const std::vector<DecodedInstrRT> &Instrs) override;
  void onModuleLoad(JanitizerDynamic &D, const LoadedModule &LM) override;
  void onCodeMapped(JanitizerDynamic &D, uint64_t Addr, uint64_t Len) override;
  HookAction onHook(JanitizerDynamic &D, const CacheOp &Op) override;

  /// Stable once the run has finished; not for use while dispatcher
  /// threads are still executing.
  const std::vector<ExecutedSite> &executedSites() const {
    return ExecutedSites;
  }
  /// Residual shadow-stack depth summed across every guest thread (all
  /// zero after a balanced run).
  size_t shadowStackDepth() const {
    std::lock_guard<std::mutex> Lock(StackMtx);
    size_t N = 0;
    for (const auto &[_, SS] : ShadowStacks)
      N += SS.size();
    return N;
  }

  /// Total loaded code bytes (the S of the AIR formula).
  uint64_t loadedCodeBytes() const {
    return LoadedCodeBytes.load(std::memory_order_relaxed);
  }

  /// Snapshot plumbing: serializes per-thread shadow stacks, the JIT
  /// region/entry-point sets (onCodeMapped is not replayed on restore),
  /// the AIR site accounting and the code-byte tally. Per-module target
  /// state rebuilds from onModuleLoad replay.
  std::vector<uint8_t> captureState() override;
  Error restoreState(const std::vector<uint8_t> &Bytes) override;

private:
  /// Run-time (slide-adjusted) per-module target state.
  struct RtModule {
    const LoadedModule *LM = nullptr;
    std::set<uint64_t> FunctionEntries;
    std::map<uint64_t, uint64_t> FunctionSpans;
    std::set<uint64_t> AddressTaken;
    std::set<uint64_t> BlockStarts;
    std::set<uint64_t> MidFunctionAllow;
    std::set<uint64_t> Exports;
    /// Run-time bounds of the .plt section (0,0 when absent). Indirect
    /// jumps from here are PLT transfers, checked as inter-module calls.
    uint64_t PltStart = 0, PltEnd = 0;
    bool HasStaticInfo = false;
    bool HasFullSymbols = true;
    bool UsesBlockStarts = false; ///< instruction-boundary jump policy

    bool inPlt(uint64_t RuntimeAddr) const {
      return RuntimeAddr >= PltStart && RuntimeAddr < PltEnd;
    }
  };

  enum HookId : uint32_t {
    HookPushRet = 1,
    HookCheckRet = 2,
    HookCheckCall = 3,
    HookCheckJump = 4,
    HookLazyRet = 5,
  };

  /// Requires ModMtx (shared is enough): resolves \p RuntimeAddr to its
  /// run-time module state.
  const RtModule *moduleFor(uint64_t RuntimeAddr) const;
  uint64_t resolveCtiTarget(Machine &M, const Instruction &I,
                            uint64_t InstrAddr) const;
  /// Both check policies require ModMtx held (shared); hook dispatch takes
  /// it once around the whole check.
  bool checkCallTarget(JanitizerDynamic &D, uint64_t From, uint64_t Target,
                       uint64_t &AllowedCount) const;
  bool checkJumpTarget(JanitizerDynamic &D, uint64_t From, uint64_t Target,
                       uint64_t &AllowedCount) const;
  void violation(JanitizerDynamic &D, const char *Kind, uint64_t From,
                 uint64_t Target);
  void emitCtiChecks(JanitizerDynamic &D, BlockBuilder &B,
                     const DecodedInstrRT &DI, bool LazyRet);
  /// The calling guest thread's shadow stack. Each stack is only ever
  /// pushed/popped by its owning host thread; the lock covers map
  /// insertion (first use by a freshly spawned thread).
  std::vector<uint64_t> &shadowStackFor(uint32_t Tid) {
    std::lock_guard<std::mutex> Lock(StackMtx);
    return ShadowStacks[Tid]; // std::map: node-stable across inserts
  }

  const JcfiDatabase &Db;
  JCFIOptions Opts;
  JcfiDatabase *StaticOut = nullptr;
  /// Guards Modules/JitRegions/JitEntryPoints: written on module load /
  /// code map (rare, loader-serialized), read by every hook check.
  mutable std::shared_mutex ModMtx;
  std::map<unsigned, RtModule> Modules; ///< by module id
  std::vector<std::pair<uint64_t, uint64_t>> JitRegions;
  std::set<uint64_t> JitEntryPoints;
  /// Per-guest-thread shadow stacks (backward edges are a per-thread
  /// property; one global stack would interleave frames across threads
  /// and misfire on every context switch).
  mutable std::mutex StackMtx;
  std::map<uint32_t, std::vector<uint64_t>> ShadowStacks;
  mutable std::mutex SitesMtx; ///< guards ExecutedSites/SeenSites
  std::vector<ExecutedSite> ExecutedSites;
  std::set<uint64_t> SeenSites;
  std::atomic<uint64_t> LoadedCodeBytes{0};
  std::atomic<bool> FatalViolation{false};

  friend class JcfiAir;
};

/// Builds the static-analysis target info for one module (shared with the
/// static AIR computation and the baselines).
ModuleTargetInfo buildTargetInfo(const Module &Mod, const ModuleCFG &CFG);

} // namespace janitizer

#endif // JANITIZER_JCFI_JCFI_H
