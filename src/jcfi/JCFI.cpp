//===- jcfi/JCFI.cpp ------------------------------------------------------==//

#include "jcfi/JCFI.h"

#include "support/ByteReader.h"
#include "support/Endian.h"
#include "support/Format.h"
#include "support/Trace.h"

#include <algorithm>

using namespace janitizer;

//===----------------------------------------------------------------------===//
// Static target-info construction
//===----------------------------------------------------------------------===//

ModuleTargetInfo janitizer::buildTargetInfo(const Module &Mod,
                                            const ModuleCFG &CFG) {
  ModuleTargetInfo Info;
  for (const CfgFunction &F : CFG.Functions) {
    if (F.Synthetic)
      continue;
    Info.FunctionEntries.insert(F.Entry);
    // Prefer the symbol-table size (covers blocks reachable only through
    // unresolved indirect jumps, e.g. jump-table cases); fall back to the
    // recovered block extent.
    uint64_t End = F.Entry;
    if (const Symbol *Sym = Mod.functionContaining(F.Entry);
        Sym && Sym->Value == F.Entry && Sym->Size > 0)
      End = F.Entry + Sym->Size;
    for (uint64_t BA : F.Blocks)
      if (const BasicBlock *BB = CFG.blockAt(BA))
        End = std::max(End, BB->End);
    Info.FunctionSpans[F.Entry] = End;
  }
  for (const auto &[Addr, BB] : CFG.Blocks) {
    Info.BlockStarts.insert(Addr);
    if (BB.CallTarget && !Info.FunctionEntries.count(BB.CallTarget))
      Info.MidFunctionCallTargets.insert(BB.CallTarget);
  }
  Info.AddressTaken = addressTakenFunctions(Mod, CFG);
  return Info;
}

//===----------------------------------------------------------------------===//
// Static plug-in pass
//===----------------------------------------------------------------------===//

void JCFITool::runStaticPass(const StaticContext &Ctx, RuleFile &Out) {
  if (StaticOut)
    StaticOut->add(Ctx.Mod.Name, buildTargetInfo(Ctx.Mod, Ctx.CFG));

  const Section *Plt = Ctx.Mod.section(SectionKind::Plt);
  // Overlapping decodes (blocks reached from scan roots) can contain the
  // same instruction address more than once; each CTI gets its rules
  // exactly once.
  std::set<uint64_t> Emitted;
  for (const auto &[BBAddr, BB] : Ctx.CFG.Blocks) {
    for (const DecodedInstr &DI : BB.Instrs) {
      CTIKind K = ctiKind(DI.I.Op);
      if (K == CTIKind::None)
        continue;
      if (!Emitted.insert(DI.Addr).second)
        continue;
      RewriteRule R;
      R.BBAddr = BBAddr;
      R.InstrAddr = DI.Addr;
      switch (K) {
      case CTIKind::DirectCall:
        R.Id = RuleId::CfiPushRet;
        Out.Rules.push_back(R);
        break;
      case CTIKind::IndirectCall:
        R.Id = RuleId::CfiCheckCall;
        Out.Rules.push_back(R);
        R.Id = RuleId::CfiPushRet;
        Out.Rules.push_back(R);
        break;
      case CTIKind::IndirectJump:
        R.Id = RuleId::CfiCheckJump;
        Out.Rules.push_back(R);
        break;
      case CTIKind::Return:
        // The lazy-binding RET in the PLT is a forward edge (§4.2.3).
        R.Id = (Plt && Plt->contains(DI.Addr)) ? RuleId::CfiLazyBindRet
                                               : RuleId::CfiCheckReturn;
        Out.Rules.push_back(R);
        break;
      default:
        break;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Dynamic side: module state
//===----------------------------------------------------------------------===//

void JCFITool::onModuleLoad(JanitizerDynamic &D, const LoadedModule &LM) {
  // Built outside the module lock (the load-time scan can be heavy), then
  // published under it; hooks on sibling threads keep using the previous
  // state until the swap.
  RtModule RM;
  RM.LM = &LM;
  RM.HasFullSymbols = LM.Mod->HasFullSymbols;
  LoadedCodeBytes.fetch_add(LM.Mod->codeSize(), std::memory_order_relaxed);

  for (const Symbol &S : LM.Mod->Symbols)
    if (S.Exported && S.IsFunction)
      RM.Exports.insert(LM.toRuntime(S.Value));
  if (const Section *Plt = LM.Mod->section(SectionKind::Plt)) {
    RM.PltStart = LM.toRuntime(Plt->Addr);
    RM.PltEnd = RM.PltStart + Plt->size();
  }

  if (const ModuleTargetInfo *Info = Db.find(LM.Mod->Name)) {
    // Populate the run-time hash tables from the static hints, adjusted by
    // the load slide (§4.2.2).
    RM.HasStaticInfo = true;
    RM.UsesBlockStarts = true;
    for (uint64_t V : Info->FunctionEntries)
      RM.FunctionEntries.insert(LM.toRuntime(V));
    for (auto [Entry, End] : Info->FunctionSpans)
      RM.FunctionSpans[LM.toRuntime(Entry)] = LM.toRuntime(End);
    for (uint64_t V : Info->AddressTaken)
      RM.AddressTaken.insert(LM.toRuntime(V));
    for (uint64_t V : Info->BlockStarts)
      RM.BlockStarts.insert(LM.toRuntime(V));
    for (uint64_t V : Info->MidFunctionCallTargets)
      RM.MidFunctionAllow.insert(LM.toRuntime(V));
  } else {
    // Load-time analysis (§4.2.2): scan the raw binary; with a full symbol
    // table, filter code pointers by function addresses; otherwise fall
    // back to the weaker exported-symbol policy.
    D.engine().charge(LM.Mod->codeSize() / 4); // the scan itself
    if (LM.Mod->HasFullSymbols) {
      for (const Symbol &S : LM.Mod->Symbols)
        if (S.IsFunction) {
          RM.FunctionEntries.insert(LM.toRuntime(S.Value));
          RM.FunctionSpans[LM.toRuntime(S.Value)] =
              LM.toRuntime(S.Value + std::max<uint64_t>(S.Size, 1));
        }
      ModuleCFG CFG; // the raw scan does not need recovered control flow
      CodeScanResult Scan = scanForCodePointers(*LM.Mod, CFG);
      for (uint64_t V : Scan.WindowHits) {
        uint64_t RT = LM.toRuntime(V);
        if (RM.FunctionEntries.count(RT))
          RM.AddressTaken.insert(RT);
      }
    }
    // Stripped module: only exports; weak policy flags handled at check
    // time via HasFullSymbols.
  }
  std::unique_lock<std::shared_mutex> Lock(ModMtx);
  Modules[LM.Id] = std::move(RM);
}

void JCFITool::onCodeMapped(JanitizerDynamic &D, uint64_t Addr,
                            uint64_t Len) {
  std::unique_lock<std::shared_mutex> Lock(ModMtx);
  JitRegions.push_back({Addr, Len});
  JitEntryPoints.insert(Addr);
  LoadedCodeBytes.fetch_add(Len, std::memory_order_relaxed);
}

const JCFITool::RtModule *JCFITool::moduleFor(uint64_t RuntimeAddr) const {
  for (const auto &[_, RM] : Modules)
    if (RM.LM->containsRuntime(RuntimeAddr))
      return &RM;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Check policies
//===----------------------------------------------------------------------===//

bool JCFITool::checkCallTarget(JanitizerDynamic &D, uint64_t From,
                               uint64_t Target,
                               uint64_t &AllowedCount) const {
  const RtModule *FromMod = moduleFor(From);
  const RtModule *TgtMod = moduleFor(Target);

  if (!TgtMod) {
    // Dynamically generated code: entry points registered at MapCode.
    AllowedCount = JitEntryPoints.size();
    return JitEntryPoints.count(Target) != 0;
  }

  if (FromMod == TgtMod) {
    AllowedCount =
        TgtMod->FunctionEntries.size() + TgtMod->MidFunctionAllow.size();
    return TgtMod->FunctionEntries.count(Target) ||
           TgtMod->MidFunctionAllow.count(Target);
  }

  // Inter-module: exported symbols plus address-taken functions of the
  // destination module (the callback case, §4.2.3 / §6.2.2).
  if (!TgtMod->HasStaticInfo && !TgtMod->HasFullSymbols) {
    // Weak policy for stripped, statically unseen modules: exports or any
    // code byte (Lockdown's stripped-binary policy).
    AllowedCount = TgtMod->LM->Mod->codeSize();
    return TgtMod->Exports.count(Target) ||
           TgtMod->LM->Mod->isCodeAddress(TgtMod->LM->toLink(Target));
  }
  AllowedCount = TgtMod->Exports.size() + TgtMod->AddressTaken.size() +
                 TgtMod->MidFunctionAllow.size();
  return TgtMod->Exports.count(Target) ||
         TgtMod->AddressTaken.count(Target) ||
         TgtMod->MidFunctionAllow.count(Target);
}

bool JCFITool::checkJumpTarget(JanitizerDynamic &D, uint64_t From,
                               uint64_t Target,
                               uint64_t &AllowedCount) const {
  const RtModule *FromMod = moduleFor(From);
  if (FromMod && FromMod->inPlt(From)) {
    // PLT transfer: either into this module's own lazy-binding stubs, or
    // an inter-module call edge through the patched GOT slot.
    if (FromMod->inPlt(Target)) {
      AllowedCount = FromMod->PltEnd - FromMod->PltStart;
      return true;
    }
    return checkCallTarget(D, From, Target, AllowedCount);
  }
  if (!FromMod) {
    // Jump inside dynamically generated code: confined to its region.
    for (auto [Addr, Len] : JitRegions)
      if (From >= Addr && From < Addr + Len) {
        AllowedCount = Len;
        return Target >= Addr && Target < Addr + Len;
      }
    AllowedCount = 1;
    return false;
  }

  uint64_t Entry = 0, End = 0;
  bool HaveSpan = false;
  {
    auto It = FromMod->FunctionSpans.upper_bound(From);
    if (It != FromMod->FunctionSpans.begin()) {
      --It;
      if (From >= It->first && From < It->second) {
        Entry = It->first;
        End = It->second;
        HaveSpan = true;
      }
    }
  }

  if (HaveSpan && Target >= Entry && Target < End) {
    if (FromMod->UsesBlockStarts) {
      // Instruction-boundary refinement (footnote 15).
      AllowedCount = 0;
      for (auto It = FromMod->BlockStarts.lower_bound(Entry);
           It != FromMod->BlockStarts.end() && *It < End; ++It)
        ++AllowedCount;
      AllowedCount += FromMod->FunctionEntries.size();
      return FromMod->BlockStarts.count(Target) || Target == Entry;
    }
    AllowedCount = (End - Entry) + FromMod->FunctionEntries.size();
    return true;
  }

  // Tail call to a function entry of the same module.
  AllowedCount = FromMod->FunctionEntries.size() +
                 (HaveSpan ? End - Entry : 0);
  return FromMod->FunctionEntries.count(Target) != 0;
}

void JCFITool::violation(JanitizerDynamic &D, const char *Kind, uint64_t From,
                         uint64_t Target) {
  D.engine().recordViolation(
      static_cast<uint8_t>(TrapCode::CfiViolation), From, Target,
      formatString("cfi-%s", Kind));
  JZ_TRACE_INSTANT("jcfi.violation", {{"kind", Kind}});
  if (Opts.AbortOnViolation)
    FatalViolation.store(true, std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// Instrumentation
//===----------------------------------------------------------------------===//

namespace {

/// Operand packing for check hooks: the hook re-evaluates the CTI operand
/// against machine state just before the CTI runs.
uint64_t packCtiOperand(const Instruction &I) {
  if (I.Op == Opcode::CALLR || I.Op == Opcode::JMPR)
    return (1ull << 13) | (static_cast<uint64_t>(I.Rd) << 16);
  uint64_t V = static_cast<uint64_t>(I.Mem.Base) |
               (static_cast<uint64_t>(I.Mem.Index) << 4) |
               (static_cast<uint64_t>(I.Mem.ScaleLog2) << 8) |
               (I.Mem.HasBase ? 1ull << 10 : 0) |
               (I.Mem.HasIndex ? 1ull << 11 : 0) |
               (I.Mem.PCRel ? 1ull << 12 : 0) |
               (static_cast<uint64_t>(I.Size) << 24) |
               (static_cast<uint64_t>(static_cast<uint32_t>(I.Mem.Disp))
                << 32);
  return V;
}

/// Per-check inline-assembly cycle costs.
constexpr uint64_t CostPushRet = 3;
constexpr uint64_t CostCheckRet = 5;
constexpr uint64_t CostForwardCheck = 8;

} // namespace

uint64_t JCFITool::resolveCtiTarget(Machine &M, const Instruction &I,
                                    uint64_t InstrAddr) const {
  switch (I.Op) {
  case Opcode::CALLR:
  case Opcode::JMPR:
    return M.reg(I.Rd);
  case Opcode::CALLM:
  case Opcode::JMPM:
    return M.Mem.read64(M.effectiveAddr(I.Mem, InstrAddr, I.Size));
  case Opcode::RET:
    return M.Mem.read64(M.reg(Reg::SP));
  default:
    return 0;
  }
}

// Every edge check is emitted *into the block body, before the transfer
// executes*.  This is what makes the dispatcher's block linking, IBL
// inline cache and trace stitching (DESIGN.md §5e) transparent to JCFI: a
// transfer served from a link slot or an IBL hit still ran the check hooks
// of the block it exited, and a transfer *into* a linked block needs no
// entry-side check.  Nothing here may ever rely on re-entering the
// dispatcher between blocks.
void JCFITool::emitCtiChecks(JanitizerDynamic &D, BlockBuilder &B,
                             const DecodedInstrRT &DI, bool LazyRet) {
  switch (ctiKind(DI.I.Op)) {
  case CTIKind::DirectCall:
    if (Opts.BackwardEdges)
      B.inlineHook(HookPushRet, DI.Addr + DI.I.Size, DI.Addr, CostPushRet);
    break;
  case CTIKind::IndirectCall:
    if (Opts.ForwardEdges)
      B.inlineHook(HookCheckCall, packCtiOperand(DI.I), DI.Addr,
                   CostForwardCheck);
    if (Opts.BackwardEdges)
      B.inlineHook(HookPushRet, DI.Addr + DI.I.Size, DI.Addr, CostPushRet);
    break;
  case CTIKind::IndirectJump:
    if (Opts.ForwardEdges)
      B.inlineHook(HookCheckJump, packCtiOperand(DI.I), DI.Addr,
                   CostForwardCheck);
    break;
  case CTIKind::Return:
    if (LazyRet) {
      if (Opts.ForwardEdges)
        B.inlineHook(HookLazyRet, 0, DI.Addr, CostForwardCheck);
    } else if (Opts.BackwardEdges) {
      B.inlineHook(HookCheckRet, 0, DI.Addr, CostCheckRet);
    }
    break;
  default:
    break;
  }
}

void JCFITool::instrumentWithRules(
    JanitizerDynamic &D, CacheBlock &Block, BlockBuilder &B,
    const std::vector<DecodedInstrRT> &Instrs,
    const std::unordered_map<uint64_t, std::vector<RewriteRule>> &InstrRules) {
  for (const DecodedInstrRT &DI : Instrs) {
    auto It = InstrRules.find(DI.Addr);
    if (It != InstrRules.end()) {
      for (const RewriteRule &R : It->second) {
        switch (R.Id) {
        case RuleId::CfiPushRet:
          if (Opts.BackwardEdges)
            B.inlineHook(HookPushRet, DI.Addr + DI.I.Size, DI.Addr,
                         CostPushRet);
          break;
        case RuleId::CfiCheckCall:
          if (Opts.ForwardEdges)
            B.inlineHook(HookCheckCall, packCtiOperand(DI.I), DI.Addr,
                         CostForwardCheck);
          break;
        case RuleId::CfiCheckJump:
          if (Opts.ForwardEdges)
            B.inlineHook(HookCheckJump, packCtiOperand(DI.I), DI.Addr,
                         CostForwardCheck);
          break;
        case RuleId::CfiCheckReturn:
          if (Opts.BackwardEdges)
            B.inlineHook(HookCheckRet, 0, DI.Addr, CostCheckRet);
          break;
        case RuleId::CfiLazyBindRet:
          if (Opts.ForwardEdges)
            B.inlineHook(HookLazyRet, 0, DI.Addr, CostForwardCheck);
          break;
        default:
          break;
        }
      }
    }
    B.app(DI.I, DI.Addr);
  }
}

void JCFITool::instrumentFallback(JanitizerDynamic &D, CacheBlock &Block,
                                  BlockBuilder &B,
                                  const std::vector<DecodedInstrRT> &Instrs) {
  // Per-block fallback: identify indirect CTIs and attach checks
  // (§4.2.2). PLT lazy-binding RETs are recognized by section.
  for (const DecodedInstrRT &DI : Instrs) {
    bool LazyRet = false;
    if (DI.I.Op == Opcode::RET) {
      std::shared_lock<std::shared_mutex> Lock(ModMtx);
      if (const RtModule *RM = moduleFor(DI.Addr)) {
        const Section *S = RM->LM->Mod->sectionAt(RM->LM->toLink(DI.Addr));
        LazyRet = S && S->Kind == SectionKind::Plt;
      }
    }
    emitCtiChecks(D, B, DI, LazyRet);
    B.app(DI.I, DI.Addr);
  }
}

//===----------------------------------------------------------------------===//
// Hook execution
//===----------------------------------------------------------------------===//

HookAction JCFITool::onHook(JanitizerDynamic &D, const CacheOp &Op) {
  Machine &M = D.machine();
  uint64_t InstrAddr = Op.HookData[1];

  auto RecordSite = [&](CTIKind K, uint64_t Allowed) {
    std::lock_guard<std::mutex> Lock(SitesMtx);
    if (SeenSites.insert(InstrAddr).second)
      ExecutedSites.push_back({InstrAddr, K, Allowed});
  };

  auto Unpack = [&](uint64_t V) {
    Instruction I;
    if (V & (1ull << 13)) {
      I.Op = Opcode::CALLR;
      I.Rd = static_cast<Reg>((V >> 16) & 0xF);
      return I;
    }
    I.Op = Opcode::CALLM;
    I.Mem.Base = static_cast<Reg>(V & 0xF);
    I.Mem.Index = static_cast<Reg>((V >> 4) & 0xF);
    I.Mem.ScaleLog2 = static_cast<uint8_t>((V >> 8) & 3);
    I.Mem.HasBase = (V >> 10) & 1;
    I.Mem.HasIndex = (V >> 11) & 1;
    I.Mem.PCRel = (V >> 12) & 1;
    I.Size = static_cast<uint8_t>((V >> 24) & 0xFF);
    I.Mem.Disp = static_cast<int32_t>(static_cast<uint32_t>(V >> 32));
    return I;
  };

  auto Fatal = [&] {
    return FatalViolation.load(std::memory_order_acquire)
               ? HookAction::Abort
               : HookAction::Violation;
  };

  switch (Op.HookId) {
  case HookPushRet:
    shadowStackFor(M.Tid).push_back(Op.HookData[0]);
    return HookAction::Continue;

  case HookCheckRet: {
    JZ_TRACE_SPAN("jcfi.edgeCheck", {{"kind", "return"}});
    // The calling thread's own stack: returns must match the call depth
    // of the thread that made the calls.
    std::vector<uint64_t> &SS = shadowStackFor(M.Tid);
    uint64_t Actual = M.Mem.read64(M.reg(Reg::SP));
    RecordSite(CTIKind::Return, 1);
    if (!SS.empty() && SS.back() == Actual) {
      SS.pop_back();
      return HookAction::Continue;
    }
    // An empty stack legitimately returns to a bottom-of-stack sentinel:
    // the process trampoline's for the main thread, the thread-exit
    // sentinel for spawned guest threads.
    if (SS.empty() && (Actual == layout::ExitSentinel ||
                       Actual == layout::ThreadExitSentinel))
      return HookAction::Continue;
    // Resynchronize if the address exists deeper in the stack (longjmp
    // style unwinding would do this legitimately; anything else is a
    // violation).
    auto It = std::find(SS.rbegin(), SS.rend(), Actual);
    if (It != SS.rend()) {
      SS.erase(It.base() - 1, SS.end());
      return HookAction::Continue;
    }
    violation(D, "return", InstrAddr, Actual);
    return Fatal();
  }

  case HookCheckCall: {
    JZ_TRACE_SPAN("jcfi.edgeCheck", {{"kind", "icall"}});
    Instruction I = Unpack(Op.HookData[0]);
    uint64_t Target = resolveCtiTarget(M, I, InstrAddr);
    uint64_t Allowed = 0;
    bool Ok;
    {
      std::shared_lock<std::shared_mutex> Lock(ModMtx);
      Ok = checkCallTarget(D, InstrAddr, Target, Allowed);
    }
    RecordSite(CTIKind::IndirectCall, Allowed);
    if (Ok)
      return HookAction::Continue;
    violation(D, "icall", InstrAddr, Target);
    return Fatal();
  }

  case HookCheckJump: {
    JZ_TRACE_SPAN("jcfi.edgeCheck", {{"kind", "ijump"}});
    Instruction I = Unpack(Op.HookData[0]);
    I.Op = (Op.HookData[0] & (1ull << 13)) ? Opcode::JMPR : Opcode::JMPM;
    uint64_t Target = resolveCtiTarget(M, I, InstrAddr);
    uint64_t Allowed = 0;
    bool Ok;
    {
      std::shared_lock<std::shared_mutex> Lock(ModMtx);
      Ok = checkJumpTarget(D, InstrAddr, Target, Allowed);
    }
    RecordSite(CTIKind::IndirectJump, Allowed);
    if (Ok)
      return HookAction::Continue;
    violation(D, "ijump", InstrAddr, Target);
    return Fatal();
  }

  case HookLazyRet: {
    JZ_TRACE_SPAN("jcfi.edgeCheck", {{"kind", "lazy-bind"}});
    uint64_t Target = M.Mem.read64(M.reg(Reg::SP));
    uint64_t Allowed = 0;
    bool Ok;
    {
      std::shared_lock<std::shared_mutex> Lock(ModMtx);
      Ok = checkCallTarget(D, InstrAddr, Target, Allowed);
    }
    RecordSite(CTIKind::IndirectCall, Allowed);
    if (Ok)
      return HookAction::Continue;
    violation(D, "lazy-bind", InstrAddr, Target);
    return Fatal();
  }

  default:
    return HookAction::Continue;
  }
}

//===----------------------------------------------------------------------===//
// Snapshot state
//===----------------------------------------------------------------------===//

std::vector<uint8_t> JCFITool::captureState() {
  std::vector<uint8_t> B;
  {
    std::lock_guard<std::mutex> Lock(StackMtx);
    writeLE32(B, static_cast<uint32_t>(ShadowStacks.size()));
    for (const auto &[Tid, SS] : ShadowStacks) {
      writeLE32(B, Tid);
      writeLE32(B, static_cast<uint32_t>(SS.size()));
      for (uint64_t RA : SS)
        writeLE64(B, RA);
    }
  }
  {
    std::shared_lock<std::shared_mutex> Lock(ModMtx);
    writeLE32(B, static_cast<uint32_t>(JitRegions.size()));
    for (const auto &[Addr, Len] : JitRegions) {
      writeLE64(B, Addr);
      writeLE64(B, Len);
    }
    writeLE32(B, static_cast<uint32_t>(JitEntryPoints.size()));
    for (uint64_t EP : JitEntryPoints)
      writeLE64(B, EP);
  }
  {
    std::lock_guard<std::mutex> Lock(SitesMtx);
    writeLE32(B, static_cast<uint32_t>(ExecutedSites.size()));
    for (const ExecutedSite &S : ExecutedSites) {
      writeLE64(B, S.InstrAddr);
      B.push_back(static_cast<uint8_t>(S.Kind));
      writeLE64(B, S.AllowedTargets);
    }
    writeLE32(B, static_cast<uint32_t>(SeenSites.size()));
    for (uint64_t S : SeenSites)
      writeLE64(B, S);
  }
  writeLE64(B, LoadedCodeBytes.load(std::memory_order_relaxed));
  B.push_back(FatalViolation.load(std::memory_order_relaxed) ? 1 : 0);
  return B;
}

Error JCFITool::restoreState(const std::vector<uint8_t> &Bytes) {
  // An empty image means "no captured state": stay at cold start.
  if (Bytes.empty())
    return Error::success();
  ByteReader R(Bytes);
  std::map<uint32_t, std::vector<uint64_t>> NewStacks;
  uint32_t NStacks = R.u32();
  for (uint32_t I = 0; R.ok() && I < NStacks; ++I) {
    uint32_t Tid = R.u32();
    uint32_t Depth = R.u32();
    std::vector<uint64_t> SS;
    for (uint32_t J = 0; R.ok() && J < Depth; ++J)
      SS.push_back(R.u64());
    NewStacks[Tid] = std::move(SS);
  }
  std::vector<std::pair<uint64_t, uint64_t>> NewJit;
  uint32_t NJit = R.u32();
  for (uint32_t I = 0; R.ok() && I < NJit; ++I) {
    uint64_t Addr = R.u64();
    uint64_t Len = R.u64();
    NewJit.emplace_back(Addr, Len);
  }
  std::set<uint64_t> NewEntries;
  uint32_t NEntries = R.u32();
  for (uint32_t I = 0; R.ok() && I < NEntries; ++I)
    NewEntries.insert(R.u64());
  std::vector<ExecutedSite> NewSites;
  uint32_t NSites = R.u32();
  for (uint32_t I = 0; R.ok() && I < NSites; ++I) {
    ExecutedSite S;
    S.InstrAddr = R.u64();
    S.Kind = static_cast<CTIKind>(R.u8());
    S.AllowedTargets = R.u64();
    NewSites.push_back(S);
  }
  std::set<uint64_t> NewSeen;
  uint32_t NSeen = R.u32();
  for (uint32_t I = 0; R.ok() && I < NSeen; ++I)
    NewSeen.insert(R.u64());
  uint64_t NewCodeBytes = R.u64();
  bool NewFatal = R.u8() != 0;
  if (!R.ok())
    return makeError("truncated jcfi state blob");

  {
    std::lock_guard<std::mutex> Lock(StackMtx);
    ShadowStacks = std::move(NewStacks);
  }
  {
    std::unique_lock<std::shared_mutex> Lock(ModMtx);
    JitRegions = std::move(NewJit);
    JitEntryPoints = std::move(NewEntries);
  }
  {
    std::lock_guard<std::mutex> Lock(SitesMtx);
    ExecutedSites = std::move(NewSites);
    SeenSites = std::move(NewSeen);
  }
  LoadedCodeBytes.store(NewCodeBytes, std::memory_order_relaxed);
  FatalViolation.store(NewFatal, std::memory_order_relaxed);
  return Error::success();
}
