//===- jcfi/TargetInfo.h - Per-module CFI target-set database --------------===//
///
/// \file
/// The static analyzer's hints for JCFI (§4.2.1): per module, the set of
/// valid control-transfer targets, recorded at link-time VAs and adjusted
/// by the load slide when populated into the run-time hash tables (§4.2.2).
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_JCFI_TARGETINFO_H
#define JANITIZER_JCFI_TARGETINFO_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

namespace janitizer {

/// Link-time target information for one module.
struct ModuleTargetInfo {
  /// Entry addresses of all discovered functions.
  std::set<uint64_t> FunctionEntries;
  /// Function spans (entry -> end, exclusive) for same-function jump
  /// policies.
  std::map<uint64_t, uint64_t> FunctionSpans;
  /// Address-taken functions (4-byte-window scan refined by function
  /// boundaries plus code-constant analysis, §4.2.1).
  std::set<uint64_t> AddressTaken;
  /// Basic-block start addresses: the instruction-boundary refinement for
  /// indirect jumps (footnote 15: this is what static analysis buys over
  /// the byte-granular dynamic policy).
  std::set<uint64_t> BlockStarts;
  /// Direct-call targets that are not at detected function boundaries —
  /// the libgfortran-style allow list (§4.2.3).
  std::set<uint64_t> MidFunctionCallTargets;

  /// The enclosing function span of \p VA, if any.
  bool functionSpanContaining(uint64_t VA, uint64_t &Entry,
                              uint64_t &End) const {
    auto It = FunctionSpans.upper_bound(VA);
    if (It == FunctionSpans.begin())
      return false;
    --It;
    if (VA >= It->first && VA < It->second) {
      Entry = It->first;
      End = It->second;
      return true;
    }
    return false;
  }
};

/// "Files on disk" with the per-module target hints, keyed by module name.
class JcfiDatabase {
public:
  void add(const std::string &ModuleName, ModuleTargetInfo Info) {
    Infos[ModuleName] = std::move(Info);
  }
  const ModuleTargetInfo *find(const std::string &ModuleName) const {
    auto It = Infos.find(ModuleName);
    return It == Infos.end() ? nullptr : &It->second;
  }

private:
  std::unordered_map<std::string, ModuleTargetInfo> Infos;
};

} // namespace janitizer

#endif // JANITIZER_JCFI_TARGETINFO_H
