//===- jcfi/Air.h - Average Indirect-target Reduction metrics --------------===//
///
/// \file
/// AIR (§6.2.2): for n indirect CTI sites with allowed-target sets T_j
/// over S bytes of program code,
///
///     AIR = (1/n) * sum_j (1 - |T_j| / S)
///
/// With no CFI every code byte is targetable, giving AIR = 0. The static
/// variant (Figure 13) evaluates the policy offline over every indirect
/// CTI the static analyzer can see; the dynamic variant (Figure 12) is
/// computed at program termination over the sites actually executed.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_JCFI_AIR_H
#define JANITIZER_JCFI_AIR_H

#include "jcfi/JCFI.h"

#include <vector>

namespace janitizer {

struct AirResult {
  double Air = 0.0;       ///< in [0, 1]
  uint64_t Sites = 0;     ///< number of indirect CTI sites considered
  uint64_t CodeBytes = 0; ///< the S of the formula
};

/// Static AIR of the JCFI policy over a whole program (all modules).
AirResult jcfiStaticAir(const std::vector<const Module *> &Mods);

/// Dynamic AIR from a finished JCFI run.
AirResult jcfiDynamicAir(const JCFITool &Tool);

} // namespace janitizer

#endif // JANITIZER_JCFI_AIR_H
