//===- jcfi/Air.cpp -------------------------------------------------------==//

#include "jcfi/Air.h"

using namespace janitizer;

AirResult janitizer::jcfiStaticAir(const std::vector<const Module *> &Mods) {
  AirResult Out;
  struct PerMod {
    const Module *Mod;
    ModuleCFG CFG;
    ModuleTargetInfo Info;
  };
  std::vector<PerMod> Infos;
  uint64_t S = 0;
  for (const Module *Mod : Mods) {
    PerMod PM{Mod, buildCFG(*Mod), ModuleTargetInfo()};
    PM.Info = buildTargetInfo(*Mod, PM.CFG);
    S += Mod->codeSize();
    Infos.push_back(std::move(PM));
  }
  if (S == 0)
    return Out;
  Out.CodeBytes = S;

  // Cross-module callable targets per destination module: exports plus
  // address-taken.
  std::vector<uint64_t> InterCallable(Infos.size(), 0);
  for (size_t MI = 0; MI < Infos.size(); ++MI) {
    uint64_t N = Infos[MI].Info.AddressTaken.size() +
                 Infos[MI].Info.MidFunctionCallTargets.size();
    for (const Symbol &Sym : Infos[MI].Mod->Symbols)
      if (Sym.Exported && Sym.IsFunction)
        ++N;
    InterCallable[MI] = N;
  }

  double Sum = 0.0;
  uint64_t N = 0;
  for (size_t MI = 0; MI < Infos.size(); ++MI) {
    const PerMod &PM = Infos[MI];
    // Targets of an indirect call from this module: own function entries
    // plus every other module's inter-callable set.
    uint64_t CallTargets = PM.Info.FunctionEntries.size() +
                           PM.Info.MidFunctionCallTargets.size();
    for (size_t MJ = 0; MJ < Infos.size(); ++MJ)
      if (MJ != MI)
        CallTargets += InterCallable[MJ];

    for (const auto &[_, BB] : PM.CFG.Blocks) {
      for (const DecodedInstr &DI : BB.Instrs) {
        switch (ctiKind(DI.I.Op)) {
        case CTIKind::IndirectCall: {
          Sum += 1.0 - static_cast<double>(CallTargets) / S;
          ++N;
          break;
        }
        case CTIKind::IndirectJump: {
          // Same-function block starts plus same-module function entries.
          uint64_t T = PM.Info.FunctionEntries.size();
          uint64_t Entry = 0, End = 0;
          if (PM.Info.functionSpanContaining(DI.Addr, Entry, End))
            for (auto It = PM.Info.BlockStarts.lower_bound(Entry);
                 It != PM.Info.BlockStarts.end() && *It < End; ++It)
              ++T;
          Sum += 1.0 - static_cast<double>(T) / S;
          ++N;
          break;
        }
        case CTIKind::Return: {
          // Precise shadow stack: exactly one valid target.
          Sum += 1.0 - 1.0 / S;
          ++N;
          break;
        }
        default:
          break;
        }
      }
    }
  }
  Out.Sites = N;
  Out.Air = N ? Sum / N : 0.0;
  return Out;
}

AirResult janitizer::jcfiDynamicAir(const JCFITool &Tool) {
  AirResult Out;
  uint64_t S = Tool.loadedCodeBytes();
  if (S == 0)
    return Out;
  Out.CodeBytes = S;
  double Sum = 0.0;
  for (const ExecutedSite &Site : Tool.executedSites()) {
    double T = static_cast<double>(Site.AllowedTargets);
    if (T > S)
      T = S;
    Sum += 1.0 - T / S;
    ++Out.Sites;
  }
  Out.Air = Out.Sites ? Sum / Out.Sites : 0.0;
  return Out;
}
