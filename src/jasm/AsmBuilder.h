//===- jasm/AsmBuilder.h - Programmatic assembly emission -----------------===//
///
/// \file
/// A small convenience layer for generating assembly text programmatically.
/// The workload generator and the guest runtime library are built with it.
/// Emitting text (rather than encoding directly) keeps every generated
/// module flowing through the same assembler/linker path a hand-written
/// module uses.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_JASM_ASMBUILDER_H
#define JANITIZER_JASM_ASMBUILDER_H

#include "support/Format.h"

#include <string>
#include <vector>

namespace janitizer {

class AsmBuilder {
public:
  /// Appends a raw line.
  AsmBuilder &line(const std::string &L) {
    Lines.push_back(L);
    return *this;
  }

  /// Appends a printf-formatted line.
  template <typename... Ts> AsmBuilder &fmt(const char *F, Ts... Args) {
    Lines.push_back(formatString(F, Args...));
    return *this;
  }

  AsmBuilder &label(const std::string &Name) { return line(Name + ":"); }

  AsmBuilder &comment(const std::string &Text) { return line("; " + Text); }

  AsmBuilder &section(const std::string &Name) {
    return line(".section " + Name);
  }

  AsmBuilder &func(const std::string &Name, bool Exported = false) {
    if (Exported)
      line(".global " + Name);
    return line(".func " + Name);
  }

  AsmBuilder &endfunc() { return line(".endfunc"); }

  /// Returns the accumulated program text.
  std::string str() const {
    std::string Out;
    for (const std::string &L : Lines) {
      Out += L;
      Out += '\n';
    }
    return Out;
  }

  /// Returns a fresh unique label with the given prefix.
  std::string uniqueLabel(const std::string &Prefix) {
    return formatString("%s_%u", Prefix.c_str(), Counter++);
  }

private:
  std::vector<std::string> Lines;
  unsigned Counter = 0;
};

} // namespace janitizer

#endif // JANITIZER_JASM_ASMBUILDER_H
