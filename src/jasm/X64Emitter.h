//===- jasm/X64Emitter.h - Minimal host x86-64 machine-code emitter --------===//
///
/// \file
/// A small, direct x86-64 encoder used by the DBI engine's template-JIT
/// tier (DESIGN.md §5i). It covers exactly the instruction subset the
/// per-opcode stencils need: 64-bit moves and ALU ops between registers and
/// [base+disp] memory, shifts, one-operand MUL/DIV, SETcc/Jcc on the host
/// flags, absolute-immediate loads, calls through a register, and the
/// push/pop/ret scaffolding for the stencil prologue/epilogue.
///
/// Encoding notes:
///  - every multi-byte operation is REX.W (64-bit) unless the method name
///    says otherwise (store8 / store32 / cmp8 / movzx8);
///  - [base+disp] picks the shortest mod/rm form (disp0/disp8/disp32) and
///    handles the RSP/R12 SIB and RBP/R13 disp-required special cases;
///  - forward branches are emitted with a rel32 placeholder and patched
///    via patchRel32() once the target offset is known.
///
/// The emitter writes position-independent code: internal branches are
/// relative and external references go through movabs-immediate addresses,
/// so the byte buffer can be copied into an ExecArena span verbatim.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_JASM_X64EMITTER_H
#define JANITIZER_JASM_X64EMITTER_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace janitizer {
namespace x64 {

/// Host register numbers (hardware encoding).
enum HostReg : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// Host condition codes (the x86 cc nibble for 0F 9x / 0F 8x).
enum class Cond : uint8_t {
  B = 0x2,  ///< below (CF)
  AE = 0x3, ///< above-or-equal (!CF)
  E = 0x4,  ///< equal (ZF)
  NE = 0x5, ///< not equal (!ZF)
  S = 0x8,  ///< sign (SF)
  O = 0x0,  ///< overflow (OF)
  C = 0x2,  ///< carry, alias of B
};

/// Two-operand ALU selector: the index n in the 81 /n immediate form and
/// the base of the 0x01/0x03-family opcodes.
enum class Alu : uint8_t {
  Add = 0,
  Or = 1,
  And = 4,
  Sub = 5,
  Xor = 6,
  Cmp = 7,
};

class X64Emitter {
public:
  const std::vector<uint8_t> &bytes() const { return Buf; }
  size_t size() const { return Buf.size(); }
  /// Current offset — used as a label for backward branches.
  size_t here() const { return Buf.size(); }

  // --- raw emission -----------------------------------------------------
  void b(uint8_t V) { Buf.push_back(V); }
  void w32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void w64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  // --- moves ------------------------------------------------------------
  /// mov dst, src (64-bit).
  void movRR(HostReg D, HostReg S) {
    rex(1, S, D);
    b(0x89);
    modrmReg(S, D);
  }
  /// mov dst, [base+disp] (64-bit load).
  void movRM(HostReg D, HostReg Base, int32_t Disp) {
    rex(1, D, Base);
    b(0x8B);
    modrmMem(D, Base, Disp);
  }
  /// mov [base+disp], src (64-bit store).
  void movMR(HostReg Base, int32_t Disp, HostReg S) {
    rex(1, S, Base);
    b(0x89);
    modrmMem(S, Base, Disp);
  }
  /// mov dst, imm (smallest encoding; movabs when it must be).
  void movRI(HostReg D, uint64_t Imm) {
    if (Imm <= 0xFFFFFFFFull) {
      // 32-bit mov zero-extends.
      rex(0, 0, D, /*ForceIfB=*/true);
      b(static_cast<uint8_t>(0xB8 + (D & 7)));
      w32(static_cast<uint32_t>(Imm));
    } else if (fitsInt32(static_cast<int64_t>(Imm))) {
      rex(1, 0, D);
      b(0xC7);
      modrmReg(0, D);
      w32(static_cast<uint32_t>(Imm));
    } else {
      rex(1, 0, D);
      b(static_cast<uint8_t>(0xB8 + (D & 7)));
      w64(Imm);
    }
  }
  /// mov qword [base+disp], imm32 (sign-extended 64-bit store).
  void movMI32sx(HostReg Base, int32_t Disp, int32_t Imm) {
    rex(1, 0, Base);
    b(0xC7);
    modrmMem(0, Base, Disp);
    w32(static_cast<uint32_t>(Imm));
  }
  /// mov dword [base+disp], imm32 (32-bit store).
  void movMI32(HostReg Base, int32_t Disp, uint32_t Imm) {
    rex(0, 0, Base);
    b(0xC7);
    modrmMem(0, Base, Disp);
    w32(Imm);
  }
  /// mov byte [base+disp], imm8.
  void movMI8(HostReg Base, int32_t Disp, uint8_t Imm) {
    rex(0, 0, Base);
    b(0xC6);
    modrmMem(0, Base, Disp);
    b(Imm);
  }
  /// mov byte [base+disp], src8 (low byte of src).
  void movM8R(HostReg Base, int32_t Disp, HostReg S) {
    rex8(S, Base);
    b(0x88);
    modrmMem(S, Base, Disp);
  }
  /// movzx dst32, byte [base+disp] (zero-extends into the full register).
  void movzx8RM(HostReg D, HostReg Base, int32_t Disp) {
    rex(0, D, Base);
    b(0x0F);
    b(0xB6);
    modrmMem(D, Base, Disp);
  }

  // --- ALU --------------------------------------------------------------
  /// <alu> dst, src (64-bit reg-reg).
  void aluRR(Alu Op, HostReg D, HostReg S) {
    rex(1, S, D);
    b(static_cast<uint8_t>(static_cast<uint8_t>(Op) * 8 + 1));
    modrmReg(S, D);
  }
  /// <alu> dst, [base+disp].
  void aluRM(Alu Op, HostReg D, HostReg Base, int32_t Disp) {
    rex(1, D, Base);
    b(static_cast<uint8_t>(static_cast<uint8_t>(Op) * 8 + 3));
    modrmMem(D, Base, Disp);
  }
  /// <alu> dst32, imm32 (32-bit operation — helper return values arrive
  /// with undefined upper register halves, so compares must be 32-bit).
  void aluRI32(Alu Op, HostReg D, int32_t Imm) {
    rex(0, 0, D);
    b(0x81);
    modrmReg(static_cast<uint8_t>(Op), D);
    w32(static_cast<uint32_t>(Imm));
  }
  /// test a32, b32 (32-bit; same upper-half caveat as aluRI32).
  void testRR32(HostReg A, HostReg B2) {
    rex(0, B2, A);
    b(0x85);
    modrmReg(B2, A);
  }
  /// <alu> dst, imm32 (sign-extended).
  void aluRI(Alu Op, HostReg D, int32_t Imm) {
    rex(1, 0, D);
    b(0x81);
    modrmReg(static_cast<uint8_t>(Op), D);
    w32(static_cast<uint32_t>(Imm));
  }
  /// add qword [base+disp], imm32 (sign-extended).
  void aluMI(Alu Op, HostReg Base, int32_t Disp, int32_t Imm) {
    rex(1, 0, Base);
    b(0x81);
    modrmMem(static_cast<uint8_t>(Op), Base, Disp);
    w32(static_cast<uint32_t>(Imm));
  }
  /// inc qword [base+disp].
  void incM(HostReg Base, int32_t Disp) {
    rex(1, 0, Base);
    b(0xFF);
    modrmMem(0, Base, Disp);
  }
  /// test dst, src (64-bit).
  void testRR(HostReg A, HostReg B2) {
    rex(1, B2, A);
    b(0x85);
    modrmReg(B2, A);
  }
  /// test dst32, imm32 (32-bit form — no sign extension surprises).
  void testRI32(HostReg A, uint32_t Imm) {
    rex(0, 0, A);
    b(0xF7);
    modrmReg(0, A);
    w32(Imm);
  }
  /// cmp byte [base+disp], imm8.
  void cmpM8I(HostReg Base, int32_t Disp, uint8_t Imm) {
    rex(0, 0, Base);
    b(0x80);
    modrmMem(7, Base, Disp);
    b(Imm);
  }
  /// cmp dst, [base+disp] (64-bit).
  void cmpRM(HostReg D, HostReg Base, int32_t Disp) {
    aluRM(Alu::Cmp, D, Base, Disp);
  }
  /// cmp byte [reg], 0 — the dereferenced-flag probe (Done pointer).
  void cmpDeref8I(HostReg Base, uint8_t Imm) { cmpM8I(Base, 0, Imm); }

  // --- shifts / mul / div ----------------------------------------------
  /// shl/shr dst, imm (64-bit); Right selects shr.
  void shiftRI(HostReg D, uint8_t Count, bool Right) {
    rex(1, 0, D);
    b(0xC1);
    modrmReg(Right ? 5 : 4, D);
    b(Count);
  }
  /// shl/shr dst, cl (64-bit).
  void shiftRCl(HostReg D, bool Right) {
    rex(1, 0, D);
    b(0xD3);
    modrmReg(Right ? 5 : 4, D);
  }
  /// mul src (64-bit, rdx:rax = rax * src).
  void mulR(HostReg S) {
    rex(1, 0, S);
    b(0xF7);
    modrmReg(4, S);
  }
  /// div src (64-bit, rax = rdx:rax / src).
  void divR(HostReg S) {
    rex(1, 0, S);
    b(0xF7);
    modrmReg(6, S);
  }

  // --- lea --------------------------------------------------------------
  /// lea dst, [base + idx*2^scale] (no displacement).
  void leaRRscale(HostReg D, HostReg Base, HostReg Idx, uint8_t ScaleLog2) {
    assert(ScaleLog2 <= 3 && (Idx & 15) != RSP && "unencodable index");
    rexFull(1, D, Idx, Base);
    b(0x8D);
    b(static_cast<uint8_t>(0x04 | ((D & 7) << 3))); // mod=00 rm=100 (SIB)
    b(static_cast<uint8_t>((ScaleLog2 << 6) | ((Idx & 7) << 3) |
                           (Base & 7)));
    if ((Base & 7) == 5) { // RBP/R13 base needs mod=01 — use disp8 form
      Buf[Buf.size() - 2] |= 0x40;
      b(0x00);
    }
  }

  // --- setcc / branches / calls ----------------------------------------
  /// setcc byte [base+disp].
  void setccM(Cond C, HostReg Base, int32_t Disp) {
    rex(0, 0, Base);
    b(0x0F);
    b(static_cast<uint8_t>(0x90 + static_cast<uint8_t>(C)));
    modrmMem(0, Base, Disp);
  }
  /// jcc rel32 with a placeholder; returns the fixup position.
  size_t jcc(Cond C) {
    b(0x0F);
    b(static_cast<uint8_t>(0x80 + static_cast<uint8_t>(C)));
    size_t Pos = Buf.size();
    w32(0);
    return Pos;
  }
  /// jmp rel32 with a placeholder; returns the fixup position.
  size_t jmp() {
    b(0xE9);
    size_t Pos = Buf.size();
    w32(0);
    return Pos;
  }
  /// Patches the rel32 at \p Pos to land on \p Target (a buffer offset).
  void patchRel32(size_t Pos, size_t Target) {
    int64_t Rel = static_cast<int64_t>(Target) -
                  static_cast<int64_t>(Pos + 4);
    assert(fitsInt32(Rel) && "branch out of range");
    uint32_t V = static_cast<uint32_t>(static_cast<int32_t>(Rel));
    std::memcpy(&Buf[Pos], &V, 4);
  }
  /// Patches the rel32 at \p Pos to land on the current offset.
  void patchHere(size_t Pos) { patchRel32(Pos, here()); }
  /// call reg.
  void callR(HostReg T) {
    rex(0, 0, T, /*ForceIfB=*/true);
    b(0xFF);
    modrmReg(2, T);
  }

  // --- stack ------------------------------------------------------------
  void push(HostReg R) {
    rex(0, 0, R, /*ForceIfB=*/true);
    b(static_cast<uint8_t>(0x50 + (R & 7)));
  }
  void pop(HostReg R) {
    rex(0, 0, R, /*ForceIfB=*/true);
    b(static_cast<uint8_t>(0x58 + (R & 7)));
  }
  void ret() { b(0xC3); }

  static bool fitsInt32(int64_t V) {
    return V >= INT32_MIN && V <= INT32_MAX;
  }

private:
  std::vector<uint8_t> Buf;

  /// REX prefix for a reg/rm pair (no index). Emitted when any extension
  /// bit or the W bit is needed, or when \p ForceIfB wants the bare
  /// opcode-extension form (push/pop/call r8-r15).
  void rex(uint8_t W, uint8_t RegField, uint8_t RmField,
           bool ForceIfB = false) {
    uint8_t R = (RegField >> 3) & 1, B = (RmField >> 3) & 1;
    if (W || R || B || (ForceIfB && B))
      b(static_cast<uint8_t>(0x40 | (W << 3) | (R << 2) | B));
  }
  /// REX with an index register (SIB forms).
  void rexFull(uint8_t W, uint8_t RegField, uint8_t IdxField,
               uint8_t BaseField) {
    uint8_t R = (RegField >> 3) & 1, X = (IdxField >> 3) & 1,
            B = (BaseField >> 3) & 1;
    if (W || R || X || B)
      b(static_cast<uint8_t>(0x40 | (W << 3) | (R << 2) | (X << 1) | B));
  }
  /// REX for 8-bit register operands: SPL/BPL/SIL/DIL need a bare REX.
  void rex8(uint8_t RegField, uint8_t RmField) {
    uint8_t R = (RegField >> 3) & 1, B = (RmField >> 3) & 1;
    if (R || B || (RegField & 15) >= 4)
      b(static_cast<uint8_t>(0x40 | (R << 2) | B));
  }
  void modrmReg(uint8_t RegField, uint8_t RmField) {
    b(static_cast<uint8_t>(0xC0 | ((RegField & 7) << 3) | (RmField & 7)));
  }
  /// mod/rm (+ SIB when the base demands one) for [base+disp].
  void modrmMem(uint8_t RegField, HostReg Base, int32_t Disp) {
    uint8_t Rm = Base & 7;
    bool NeedSib = Rm == 4;            // RSP/R12
    bool NoDisp0 = Rm == 5;            // RBP/R13 require a displacement
    uint8_t Mod;
    if (Disp == 0 && !NoDisp0)
      Mod = 0;
    else if (Disp >= -128 && Disp <= 127)
      Mod = 1;
    else
      Mod = 2;
    b(static_cast<uint8_t>((Mod << 6) | ((RegField & 7) << 3) |
                           (NeedSib ? 4 : Rm)));
    if (NeedSib)
      b(0x24); // scale=0, index=none, base=rsp/r12
    if (Mod == 1)
      b(static_cast<uint8_t>(Disp));
    else if (Mod == 2)
      w32(static_cast<uint32_t>(Disp));
  }
};

/// Built-in encoder validation: assembles a fixed sequence and compares it
/// against independently assembled reference bytes. Returns true when every
/// encoding matches (run by the jit self-tests).
bool emitterSelfTest();

} // namespace x64
} // namespace janitizer

#endif // JANITIZER_JASM_X64EMITTER_H
