//===- jasm/Assembler.h - JISA module assembler ---------------------------===//
///
/// \file
/// Assembles a complete JELF module (executable or shared object) from
/// assembly text. The assembler is also the per-module linker: it lays out
/// sections, resolves local symbols, synthesizes the PLT and GOT for
/// imported functions/data, and records dynamic relocations for the
/// program loader. Cross-module binding happens at load time in the VM,
/// mirroring the ELF model the paper targets.
///
/// Directives:
///   .module NAME           module (file) name
///   .pic / .nopic          position independent (link base 0) or not
///   .shared                mark as shared object
///   .base ADDR             link base for non-PIC modules (default 0x400000)
///   .needed NAME           add a shared-object dependency
///   .stripped              drop non-exported symbols from the symbol table
///   .ehmetadata            mark module as carrying C++ EH metadata
///   .entry SYM             entry point
///   .section text|init|fini|rodata|data|bss
///   .global SYM            export SYM
///   .extern SYM            import SYM (calls are routed through the PLT)
///   .func NAME / .endfunc  delimit a function symbol
///   .byte B[,B...]         raw data bytes
///   .word4 V / .word8 V    little-endian constants
///   .quad SYM[+OFF]        8-byte pointer to SYM (dynamic reloc when needed)
///   .offset32 SYM          4-byte module-relative offset of SYM (PIC tables)
///   .zero N                N zero bytes (or BSS space)
///   .island N [SEED]       N bytes of non-code filler inside a code section
///   .string "..."          NUL-terminated string
///
/// Pseudo-instructions (expanded according to the module's PIC mode):
///   la rd, SYM             address of SYM: MOV_RI64 (non-PIC) / LEA pc-rel
///   gotld rd, SYM          load address of imported SYM from its GOT slot
///   call SYM               direct call; routed via PLT when SYM is imported
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_JASM_ASSEMBLER_H
#define JANITIZER_JASM_ASSEMBLER_H

#include "jelf/Module.h"
#include "support/Error.h"

#include <string>

namespace janitizer {

/// Assembles \p Source into a linked module. On failure the error message
/// contains the first offending line number.
ErrorOr<Module> assembleModule(const std::string &Source);

} // namespace janitizer

#endif // JANITIZER_JASM_ASSEMBLER_H
