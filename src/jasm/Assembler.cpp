//===- jasm/Assembler.cpp -------------------------------------------------==//

#include "jasm/Assembler.h"

#include "isa/Encoding.h"
#include "support/Endian.h"
#include "support/Format.h"
#include "support/Random.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <vector>

using namespace janitizer;

namespace {

/// How an item's operand refers to a symbol.
enum class RefKind : uint8_t {
  None,
  Branch,    ///< rel32 of a direct jump/call
  MemPCRel,  ///< pc-relative memory displacement
  MemAbs,    ///< absolute memory displacement (non-PIC only)
  AddrImm64, ///< 64-bit immediate holding a symbol address (non-PIC only)
  GotMem,    ///< memory displacement of the symbol's GOT slot
};

struct AsmInstr {
  Instruction I;
  RefKind Ref = RefKind::None;
  std::string Sym;
  int64_t SymAdd = 0;
  unsigned Line = 0;
};

/// One unit of data in a data (or code) section.
struct DataItem {
  std::vector<uint8_t> Bytes; ///< literal bytes (size is authoritative)
  enum class Kind : uint8_t {
    Literal,
    QuadSym,    ///< 8-byte pointer to Sym+Add
    Offset32Sym ///< 4-byte module-relative offset of Sym
  } K = Kind::Literal;
  std::string Sym;
  int64_t Add = 0;
  bool IsIsland = false;
  unsigned Line = 0;
};

struct Item {
  bool IsInstr = false;
  AsmInstr Instr;
  DataItem Data;
};

struct PendingFunc {
  std::string Name;
  SectionKind Sec;
  uint64_t StartOff;
  uint64_t EndOff = ~0ull;
};

struct SectionBuf {
  SectionKind Kind;
  std::vector<Item> Items;
  uint64_t BssSize = 0;
  uint64_t Addr = 0; ///< assigned at layout
};

class Assembler {
public:
  ErrorOr<Module> run(const std::string &Source);

private:
  // --- parsing -----------------------------------------------------------
  bool parseLine(std::string Line);
  bool parseDirective(const std::vector<std::string> &Tok,
                      const std::string &Line);
  bool parseInstruction(const std::string &Mnemonic,
                        std::vector<std::string> Ops);
  bool parseMem(const std::string &Text, MemOperand &M, RefKind &Ref,
                std::string &Sym, int64_t &Add);
  bool parseRegOp(const std::string &S, Reg &R);
  bool parseImm(const std::string &S, int64_t &V);
  bool error(const std::string &Msg);

  SectionBuf &cur() { return Secs[CurSection]; }
  void addInstr(AsmInstr AI);
  void addData(DataItem DI);

  // --- layout & encoding --------------------------------------------------
  bool layout();
  bool resolveAndEncode(Module &M);
  uint64_t itemSize(const Item &It) const;
  bool lookupSymbolVA(const std::string &Name, uint64_t &VA);

  // Sections in fixed emission order.
  std::map<SectionKind, SectionBuf> Secs;
  SectionKind CurSection = SectionKind::Text;

  // Symbols: label name -> (section, offset).
  struct LabelDef {
    SectionKind Sec;
    uint64_t Off;
  };
  std::map<std::string, LabelDef> Labels;
  std::vector<std::string> Exported;
  std::vector<std::string> Externs;
  std::vector<PendingFunc> Funcs;
  std::vector<std::string> FuncStack;

  // PLT / GOT bookkeeping: imported functions in first-use order, imported
  // data symbols in first-use order.
  std::vector<std::string> PltSyms;
  std::vector<std::string> GotDataSyms;

  // Module attributes.
  std::string ModName = "a.out";
  bool PIC = false;
  bool Shared = false;
  bool Stripped = false;
  bool EHMeta = false;
  uint64_t Base = 0x400000;
  std::string EntrySym;
  std::vector<std::string> Needed;

  // Layout results.
  std::map<SectionKind, uint64_t> SecAddr;
  std::map<std::string, uint64_t> PltStubVA;  // sym -> stub VA
  std::map<std::string, uint64_t> PltLazyVA;  // sym -> lazy stub VA
  std::map<std::string, uint64_t> GotSlotVA;  // sym -> slot VA
  uint64_t Plt0VA = 0;
  uint64_t PltSize = 0;
  uint64_t GotSize = 0;

  unsigned LineNo = 0;
  std::string ErrMsg;
};

std::vector<std::string> splitWS(const std::string &S) {
  std::vector<std::string> Out;
  std::istringstream In(S);
  std::string T;
  while (In >> T)
    Out.push_back(T);
  return Out;
}

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r\n");
  if (B == std::string::npos)
    return std::string();
  size_t E = S.find_last_not_of(" \t\r\n");
  return S.substr(B, E - B + 1);
}

bool isExtern(const std::vector<std::string> &Externs, const std::string &S) {
  return std::find(Externs.begin(), Externs.end(), S) != Externs.end();
}

bool Assembler::error(const std::string &Msg) {
  if (ErrMsg.empty())
    ErrMsg = formatString("line %u: %s", LineNo, Msg.c_str());
  return false;
}

bool Assembler::parseRegOp(const std::string &S, Reg &R) {
  if (!parseRegName(S.c_str(), R))
    return error(formatString("expected register, got '%s'", S.c_str()));
  return true;
}

bool Assembler::parseImm(const std::string &S, int64_t &V) {
  if (S.empty())
    return error("expected immediate");
  const char *P = S.c_str();
  char *End = nullptr;
  V = static_cast<int64_t>(std::strtoll(P, &End, 0));
  if (End == P || *End != '\0')
    return error(formatString("bad immediate '%s'", S.c_str()));
  return true;
}

void Assembler::addInstr(AsmInstr AI) {
  AI.Line = LineNo;
  Item It;
  It.IsInstr = true;
  It.Instr = std::move(AI);
  cur().Items.push_back(std::move(It));
}

void Assembler::addData(DataItem DI) {
  DI.Line = LineNo;
  Item It;
  It.Data = std::move(DI);
  cur().Items.push_back(std::move(It));
}

uint64_t Assembler::itemSize(const Item &It) const {
  if (It.IsInstr)
    return encodedLength(It.Instr.I);
  switch (It.Data.K) {
  case DataItem::Kind::Literal:
    return It.Data.Bytes.size();
  case DataItem::Kind::QuadSym:
    return 8;
  case DataItem::Kind::Offset32Sym:
    return 4;
  }
  return 0;
}

/// Parses a memory operand like "[r1 + r2*4 - 16]", "[pc + sym + 8]",
/// "[sym]", "[0x2000]".
bool Assembler::parseMem(const std::string &Text, MemOperand &M, RefKind &Ref,
                         std::string &Sym, int64_t &Add) {
  std::string S = trim(Text);
  if (S.size() < 2 || S.front() != '[' || S.back() != ']')
    return error(formatString("expected memory operand, got '%s'", S.c_str()));
  S = S.substr(1, S.size() - 2);

  // Tokenize into +/- separated terms.
  std::vector<std::pair<int, std::string>> Terms; // sign, text
  int Sign = 1;
  std::string Cur;
  auto Flush = [&]() {
    Cur = trim(Cur);
    if (!Cur.empty())
      Terms.push_back({Sign, Cur});
    Cur.clear();
  };
  for (char C : S) {
    if (C == '+') {
      Flush();
      Sign = 1;
    } else if (C == '-') {
      Flush();
      Sign = -1;
    } else {
      Cur += C;
    }
  }
  Flush();
  if (Terms.empty())
    return error("empty memory operand");

  M = MemOperand();
  Ref = RefKind::None;
  Sym.clear();
  Add = 0;
  bool SawSym = false;

  for (auto &[TSign, T] : Terms) {
    // pc marker
    if (T == "pc") {
      if (TSign < 0)
        return error("'pc' cannot be negated");
      M.PCRel = true;
      continue;
    }
    // reg or reg*scale
    size_t Star = T.find('*');
    std::string Head = Star == std::string::npos ? T : trim(T.substr(0, Star));
    Reg R;
    if (parseRegName(Head.c_str(), R)) {
      if (TSign < 0)
        return error("registers cannot be subtracted in memory operands");
      if (Star != std::string::npos) {
        int64_t Scale;
        if (!parseImm(trim(T.substr(Star + 1)), Scale))
          return false;
        if (Scale != 1 && Scale != 2 && Scale != 4 && Scale != 8)
          return error("scale must be 1, 2, 4 or 8");
        if (M.HasIndex)
          return error("multiple index registers");
        M.HasIndex = true;
        M.Index = R;
        M.ScaleLog2 = Scale == 1 ? 0 : Scale == 2 ? 1 : Scale == 4 ? 2 : 3;
      } else if (!M.HasBase) {
        M.HasBase = true;
        M.Base = R;
      } else if (!M.HasIndex) {
        M.HasIndex = true;
        M.Index = R;
        M.ScaleLog2 = 0;
      } else {
        return error("too many registers in memory operand");
      }
      continue;
    }
    // number
    if (std::isdigit(static_cast<unsigned char>(T[0]))) {
      int64_t V;
      if (!parseImm(T, V))
        return false;
      Add += TSign * V;
      continue;
    }
    // symbol
    if (SawSym)
      return error("multiple symbols in memory operand");
    if (TSign < 0)
      return error("symbols cannot be subtracted");
    SawSym = true;
    Sym = T;
  }

  if (SawSym) {
    if (M.PCRel)
      Ref = RefKind::MemPCRel;
    else if (!M.HasBase && !M.HasIndex)
      Ref = RefKind::MemAbs;
    else
      return error("symbol with base register requires 'pc'");
  } else {
    // Pure displacement.
    if (Add < INT32_MIN || Add > INT32_MAX)
      if (!M.HasBase && !M.HasIndex && !M.PCRel)
        return error("absolute displacement out of range");
    M.Disp = static_cast<int32_t>(Add);
    Add = 0;
  }
  return true;
}

bool Assembler::parseInstruction(const std::string &Mnemonic,
                                 std::vector<std::string> Ops) {
  auto NumOps = Ops.size();
  AsmInstr AI;
  Instruction &I = AI.I;

  auto Need = [&](size_t N) {
    if (NumOps != N)
      return error(formatString("'%s' expects %zu operand(s)",
                                Mnemonic.c_str(), N));
    return true;
  };

  // Zero-operand instructions.
  static const std::map<std::string, Opcode> NoOp = {
      {"nop", Opcode::NOP},     {"hlt", Opcode::HLT},
      {"pushf", Opcode::PUSHF}, {"popf", Opcode::POPF},
      {"ret", Opcode::RET},
  };
  if (auto It = NoOp.find(Mnemonic); It != NoOp.end()) {
    if (!Need(0))
      return false;
    I.Op = It->second;
    addInstr(AI);
    return true;
  }

  // reg,reg ALU + mov
  static const std::map<std::string, Opcode> RR = {
      {"mov", Opcode::MOV_RR}, {"add", Opcode::ADD},  {"sub", Opcode::SUB},
      {"and", Opcode::AND},    {"or", Opcode::OR},    {"xor", Opcode::XOR},
      {"shl", Opcode::SHL},    {"shr", Opcode::SHR},  {"mul", Opcode::MUL},
      {"div", Opcode::DIV},    {"cmp", Opcode::CMP},  {"test", Opcode::TEST},
  };
  if (auto It = RR.find(Mnemonic); It != RR.end()) {
    if (!Need(2) || !parseRegOp(Ops[0], I.Rd) || !parseRegOp(Ops[1], I.Rs))
      return false;
    I.Op = It->second;
    addInstr(AI);
    return true;
  }

  // reg,imm32 ALU + movi
  static const std::map<std::string, Opcode> RI = {
      {"movi", Opcode::MOV_RI32}, {"addi", Opcode::ADDI},
      {"subi", Opcode::SUBI},     {"andi", Opcode::ANDI},
      {"ori", Opcode::ORI},       {"xori", Opcode::XORI},
      {"shli", Opcode::SHLI},     {"shri", Opcode::SHRI},
      {"muli", Opcode::MULI},     {"cmpi", Opcode::CMPI},
      {"testi", Opcode::TESTI},
  };
  if (auto It = RI.find(Mnemonic); It != RI.end()) {
    if (!Need(2) || !parseRegOp(Ops[0], I.Rd) || !parseImm(Ops[1], I.Imm))
      return false;
    if (I.Imm < INT32_MIN || I.Imm > INT32_MAX)
      return error("immediate out of 32-bit range");
    I.Op = It->second;
    addInstr(AI);
    return true;
  }

  if (Mnemonic == "movq") {
    if (!Need(2) || !parseRegOp(Ops[0], I.Rd))
      return false;
    I.Op = Opcode::MOV_RI64;
    if (!Ops[1].empty() && Ops[1][0] == '=') {
      if (PIC)
        return error("movq =sym is not position independent; use 'la'");
      AI.Ref = RefKind::AddrImm64;
      AI.Sym = Ops[1].substr(1);
    } else if (!parseImm(Ops[1], I.Imm)) {
      return false;
    }
    addInstr(AI);
    return true;
  }

  if (Mnemonic == "la") {
    // Load address of a local symbol, PIC-aware.
    if (!Need(2) || !parseRegOp(Ops[0], I.Rd))
      return false;
    AI.Sym = Ops[1];
    if (PIC) {
      I.Op = Opcode::LEA;
      I.Mem.PCRel = true;
      AI.Ref = RefKind::MemPCRel;
    } else {
      I.Op = Opcode::MOV_RI64;
      AI.Ref = RefKind::AddrImm64;
    }
    addInstr(AI);
    return true;
  }

  if (Mnemonic == "gotld") {
    if (!Need(2) || !parseRegOp(Ops[0], I.Rd))
      return false;
    if (!isExtern(Externs, Ops[1]))
      return error(formatString("gotld target '%s' is not .extern",
                                Ops[1].c_str()));
    I.Op = Opcode::LD8;
    AI.Ref = RefKind::GotMem;
    AI.Sym = Ops[1];
    if (PIC)
      I.Mem.PCRel = true;
    if (std::find(GotDataSyms.begin(), GotDataSyms.end(), Ops[1]) ==
        GotDataSyms.end())
      GotDataSyms.push_back(Ops[1]);
    addInstr(AI);
    return true;
  }

  // Loads / stores / lea.
  static const std::map<std::string, Opcode> Loads = {
      {"ld1", Opcode::LD1}, {"ld2", Opcode::LD2}, {"ld4", Opcode::LD4},
      {"ld8", Opcode::LD8}, {"lea", Opcode::LEA},
  };
  if (auto It = Loads.find(Mnemonic); It != Loads.end()) {
    if (!Need(2) || !parseRegOp(Ops[0], I.Rd))
      return false;
    if (!parseMem(Ops[1], I.Mem, AI.Ref, AI.Sym, AI.SymAdd))
      return false;
    I.Op = It->second;
    addInstr(AI);
    return true;
  }
  static const std::map<std::string, Opcode> Stores = {
      {"st1", Opcode::ST1}, {"st2", Opcode::ST2}, {"st4", Opcode::ST4},
      {"st8", Opcode::ST8},
  };
  if (auto It = Stores.find(Mnemonic); It != Stores.end()) {
    if (!Need(2))
      return false;
    if (!parseMem(Ops[0], I.Mem, AI.Ref, AI.Sym, AI.SymAdd))
      return false;
    if (!parseRegOp(Ops[1], I.Rd))
      return false;
    I.Op = It->second;
    addInstr(AI);
    return true;
  }

  // Direct branches / calls.
  static const std::map<std::string, Opcode> Branches = {
      {"jmp", Opcode::JMP}, {"je", Opcode::JE},   {"jne", Opcode::JNE},
      {"jl", Opcode::JL},   {"jle", Opcode::JLE}, {"jg", Opcode::JG},
      {"jge", Opcode::JGE}, {"jb", Opcode::JB},   {"jae", Opcode::JAE},
      {"call", Opcode::CALL},
  };
  if (auto It = Branches.find(Mnemonic); It != Branches.end()) {
    if (!Need(1))
      return false;
    I.Op = It->second;
    AI.Ref = RefKind::Branch;
    AI.Sym = Ops[0];
    if (I.Op == Opcode::CALL && isExtern(Externs, Ops[0])) {
      // Route through the PLT.
      if (std::find(PltSyms.begin(), PltSyms.end(), Ops[0]) == PltSyms.end())
        PltSyms.push_back(Ops[0]);
      AI.Sym = Ops[0] + "@plt";
    } else if (I.Op != Opcode::CALL && isExtern(Externs, Ops[0])) {
      return error("direct jumps to imported symbols are not supported");
    }
    addInstr(AI);
    return true;
  }

  // Indirect control flow.
  if (Mnemonic == "callr" || Mnemonic == "jmpr") {
    if (!Need(1) || !parseRegOp(Ops[0], I.Rd))
      return false;
    I.Op = Mnemonic == "callr" ? Opcode::CALLR : Opcode::JMPR;
    addInstr(AI);
    return true;
  }
  if (Mnemonic == "callm" || Mnemonic == "jmpm") {
    if (!Need(1))
      return false;
    if (!parseMem(Ops[0], I.Mem, AI.Ref, AI.Sym, AI.SymAdd))
      return false;
    I.Op = Mnemonic == "callm" ? Opcode::CALLM : Opcode::JMPM;
    addInstr(AI);
    return true;
  }

  if (Mnemonic == "push" || Mnemonic == "pop") {
    if (!Need(1) || !parseRegOp(Ops[0], I.Rd))
      return false;
    I.Op = Mnemonic == "push" ? Opcode::PUSH : Opcode::POP;
    addInstr(AI);
    return true;
  }
  if (Mnemonic == "pushq") {
    if (!Need(1) || !parseImm(Ops[0], I.Imm))
      return false;
    I.Op = Opcode::PUSHI64;
    addInstr(AI);
    return true;
  }
  if (Mnemonic == "cas") {
    // cas rd, rs, [mem]: atomically swap *mem to rs if *mem == rd.
    if (!Need(3) || !parseRegOp(Ops[0], I.Rd) || !parseRegOp(Ops[1], I.Rs))
      return false;
    if (!parseMem(Ops[2], I.Mem, AI.Ref, AI.Sym, AI.SymAdd))
      return false;
    I.Op = Opcode::CAS;
    addInstr(AI);
    return true;
  }
  if (Mnemonic == "syscall" || Mnemonic == "trap") {
    if (!Need(1) || !parseImm(Ops[0], I.Imm))
      return false;
    if (I.Imm < 0 || I.Imm > 255)
      return error("syscall/trap number out of range");
    I.Op = Mnemonic == "syscall" ? Opcode::SYSCALL : Opcode::TRAP;
    addInstr(AI);
    return true;
  }

  return error(formatString("unknown mnemonic '%s'", Mnemonic.c_str()));
}

bool Assembler::parseDirective(const std::vector<std::string> &Tok,
                               const std::string &Line) {
  const std::string &D = Tok[0];
  auto Arg = [&](size_t I) -> std::string {
    return I < Tok.size() ? Tok[I] : std::string();
  };

  if (D == ".module") {
    ModName = Arg(1);
    return true;
  }
  if (D == ".pic") {
    PIC = true;
    Base = 0;
    return true;
  }
  if (D == ".nopic") {
    PIC = false;
    return true;
  }
  if (D == ".shared") {
    Shared = true;
    return true;
  }
  if (D == ".stripped") {
    Stripped = true;
    return true;
  }
  if (D == ".ehmetadata") {
    EHMeta = true;
    return true;
  }
  if (D == ".base") {
    int64_t V;
    if (!parseImm(Arg(1), V))
      return false;
    Base = static_cast<uint64_t>(V);
    return true;
  }
  if (D == ".needed") {
    Needed.push_back(Arg(1));
    return true;
  }
  if (D == ".entry") {
    EntrySym = Arg(1);
    return true;
  }
  if (D == ".section") {
    const std::string &S = Arg(1);
    if (S == "text")
      CurSection = SectionKind::Text;
    else if (S == "init")
      CurSection = SectionKind::Init;
    else if (S == "fini")
      CurSection = SectionKind::Fini;
    else if (S == "rodata")
      CurSection = SectionKind::Rodata;
    else if (S == "data")
      CurSection = SectionKind::Data;
    else if (S == "bss")
      CurSection = SectionKind::Bss;
    else
      return error(formatString("unknown section '%s'", S.c_str()));
    Secs[CurSection].Kind = CurSection;
    return true;
  }
  if (D == ".global") {
    Exported.push_back(Arg(1));
    return true;
  }
  if (D == ".extern") {
    if (std::find(Externs.begin(), Externs.end(), Arg(1)) == Externs.end())
      Externs.push_back(Arg(1));
    return true;
  }
  if (D == ".func") {
    PendingFunc F;
    F.Name = Arg(1);
    F.Sec = CurSection;
    uint64_t Off = 0;
    for (const Item &It : cur().Items)
      Off += itemSize(It);
    F.StartOff = Off;
    Labels[F.Name] = {CurSection, Off};
    FuncStack.push_back(F.Name);
    Funcs.push_back(F);
    return true;
  }
  if (D == ".endfunc") {
    if (FuncStack.empty())
      return error(".endfunc without .func");
    std::string Name = FuncStack.back();
    FuncStack.pop_back();
    uint64_t Off = 0;
    for (const Item &It : cur().Items)
      Off += itemSize(It);
    for (PendingFunc &F : Funcs)
      if (F.Name == Name)
        F.EndOff = Off;
    return true;
  }
  if (D == ".byte") {
    DataItem DI;
    // Re-split the remainder on commas.
    std::string Rest = trim(Line.substr(Line.find(".byte") + 5));
    std::istringstream In(Rest);
    std::string T;
    while (std::getline(In, T, ',')) {
      int64_t V;
      if (!parseImm(trim(T), V))
        return false;
      DI.Bytes.push_back(static_cast<uint8_t>(V));
    }
    addData(std::move(DI));
    return true;
  }
  if (D == ".word4" || D == ".word8") {
    int64_t V;
    if (!parseImm(Arg(1), V))
      return false;
    DataItem DI;
    if (D == ".word4")
      writeLE32(DI.Bytes, static_cast<uint32_t>(V));
    else
      writeLE64(DI.Bytes, static_cast<uint64_t>(V));
    addData(std::move(DI));
    return true;
  }
  if (D == ".quad") {
    DataItem DI;
    DI.K = DataItem::Kind::QuadSym;
    std::string S = Arg(1);
    size_t Plus = S.find('+');
    if (Plus != std::string::npos) {
      if (!parseImm(S.substr(Plus + 1), DI.Add))
        return false;
      S = S.substr(0, Plus);
    }
    DI.Sym = S;
    addData(std::move(DI));
    return true;
  }
  if (D == ".offset32") {
    DataItem DI;
    DI.K = DataItem::Kind::Offset32Sym;
    DI.Sym = Arg(1);
    addData(std::move(DI));
    return true;
  }
  if (D == ".zero") {
    int64_t N;
    if (!parseImm(Arg(1), N) || N < 0)
      return false;
    if (CurSection == SectionKind::Bss) {
      Secs[CurSection].Kind = CurSection;
      Secs[CurSection].BssSize += static_cast<uint64_t>(N);
      return true;
    }
    DataItem DI;
    DI.Bytes.assign(static_cast<size_t>(N), 0);
    addData(std::move(DI));
    return true;
  }
  if (D == ".island") {
    int64_t N;
    if (!parseImm(Arg(1), N) || N <= 0)
      return false;
    int64_t Seed = 1;
    if (Tok.size() > 2 && !parseImm(Arg(2), Seed))
      return false;
    DataItem DI;
    DI.IsIsland = true;
    SplitMix64 Rng(static_cast<uint64_t>(Seed));
    for (int64_t I = 0; I < N; ++I)
      DI.Bytes.push_back(static_cast<uint8_t>(Rng.next()));
    // Guarantee the island desynchronizes a linear sweep: end with the first
    // byte of a long instruction so the sweep eats into the following code.
    if (!DI.Bytes.empty())
      DI.Bytes.back() = static_cast<uint8_t>(Opcode::MOV_RI64);
    addData(std::move(DI));
    return true;
  }
  if (D == ".string") {
    size_t Q1 = Line.find('"');
    size_t Q2 = Line.rfind('"');
    if (Q1 == std::string::npos || Q2 <= Q1)
      return error("malformed .string");
    DataItem DI;
    for (size_t I = Q1 + 1; I < Q2; ++I) {
      char C = Line[I];
      if (C == '\\' && I + 1 < Q2) {
        ++I;
        C = Line[I] == 'n' ? '\n' : Line[I] == '0' ? '\0' : Line[I];
      }
      DI.Bytes.push_back(static_cast<uint8_t>(C));
    }
    DI.Bytes.push_back(0);
    addData(std::move(DI));
    return true;
  }
  return error(formatString("unknown directive '%s'", D.c_str()));
}

bool Assembler::parseLine(std::string Line) {
  // Strip comments.
  size_t Semi = Line.find(';');
  if (Semi != std::string::npos)
    Line = Line.substr(0, Semi);
  Line = trim(Line);
  if (Line.empty())
    return true;

  // Labels (possibly followed by an instruction on the same line).
  size_t Colon = Line.find(':');
  if (Colon != std::string::npos && Line.find('[') > Colon &&
      Line.find('"') > Colon) {
    std::string Name = trim(Line.substr(0, Colon));
    if (!Name.empty() &&
        Name.find_first_of(" \t") == std::string::npos) {
      uint64_t Off = 0;
      Secs[CurSection].Kind = CurSection;
      if (CurSection == SectionKind::Bss)
        Off = Secs[CurSection].BssSize;
      else
        for (const Item &It : cur().Items)
          Off += itemSize(It);
      auto Existing = Labels.find(Name);
      if (Existing != Labels.end()) {
        // A label already placed here by .func is fine; anything else is a
        // genuine duplicate.
        if (Existing->second.Sec != CurSection || Existing->second.Off != Off)
          return error(formatString("duplicate label '%s'", Name.c_str()));
      } else {
        Labels[Name] = {CurSection, Off};
      }
      Line = trim(Line.substr(Colon + 1));
      if (Line.empty())
        return true;
    }
  }

  if (Line[0] == '.') {
    std::vector<std::string> Tok = splitWS(Line);
    return parseDirective(Tok, Line);
  }

  // Instruction: mnemonic then comma-separated operands.
  size_t Sp = Line.find_first_of(" \t");
  std::string Mn = Sp == std::string::npos ? Line : Line.substr(0, Sp);
  std::string Rest = Sp == std::string::npos ? "" : trim(Line.substr(Sp + 1));
  std::vector<std::string> Ops;
  if (!Rest.empty()) {
    std::istringstream In(Rest);
    std::string T;
    while (std::getline(In, T, ','))
      Ops.push_back(trim(T));
  }
  return parseInstruction(Mn, std::move(Ops));
}

bool Assembler::layout() {
  // Section order: init, text, fini, plt, rodata, got, data, bss.
  static const SectionKind Order[] = {
      SectionKind::Init, SectionKind::Text,   SectionKind::Fini,
      SectionKind::Plt,  SectionKind::Rodata, SectionKind::Got,
      SectionKind::Data, SectionKind::Bss};

  // PLT: plt0 (syscall RESOLVE + ret = 3 bytes), then per entry:
  // 7 (jmpm) + 9 (pushq idx) + 5 (jmp plt0) = 21 bytes.
  PltSize = PltSyms.empty() ? 0 : 3 + 21 * PltSyms.size();
  GotSize = 8 * (PltSyms.size() + GotDataSyms.size());

  uint64_t VA = Base;
  auto Align = [&](uint64_t A) { VA = (VA + A - 1) & ~(A - 1); };
  for (SectionKind K : Order) {
    Align(16);
    if (K == SectionKind::Plt) {
      if (PltSize == 0)
        continue;
      SecAddr[K] = VA;
      Plt0VA = VA;
      uint64_t Stub = VA + 3;
      for (size_t I = 0; I < PltSyms.size(); ++I) {
        PltStubVA[PltSyms[I]] = Stub;
        PltLazyVA[PltSyms[I]] = Stub + 7;
        Stub += 21;
      }
      VA += PltSize;
      continue;
    }
    if (K == SectionKind::Got) {
      if (GotSize == 0)
        continue;
      SecAddr[K] = VA;
      uint64_t Slot = VA;
      for (const std::string &S : PltSyms) {
        GotSlotVA[S] = Slot;
        Slot += 8;
      }
      for (const std::string &S : GotDataSyms) {
        GotSlotVA[S] = Slot;
        Slot += 8;
      }
      VA += GotSize;
      continue;
    }
    auto It = Secs.find(K);
    if (It == Secs.end())
      continue;
    SectionBuf &SB = It->second;
    SB.Addr = VA;
    SecAddr[K] = VA;
    if (K == SectionKind::Bss) {
      VA += SB.BssSize;
      continue;
    }
    for (const Item &Item : SB.Items)
      VA += itemSize(Item);
  }
  return true;
}

bool Assembler::lookupSymbolVA(const std::string &Name, uint64_t &VA) {
  if (Name == "__base__") {
    VA = Base;
    return true;
  }
  if (Name.size() > 4 && Name.substr(Name.size() - 4) == "@plt") {
    auto It = PltStubVA.find(Name.substr(0, Name.size() - 4));
    if (It == PltStubVA.end())
      return false;
    VA = It->second;
    return true;
  }
  auto It = Labels.find(Name);
  if (It == Labels.end())
    return false;
  auto SA = SecAddr.find(It->second.Sec);
  if (SA == SecAddr.end())
    return false;
  VA = SA->second + It->second.Off;
  return true;
}

bool Assembler::resolveAndEncode(Module &M) {
  M.Name = ModName;
  M.IsPIC = PIC;
  M.IsSharedObject = Shared;
  M.HasEHMetadata = EHMeta;
  M.HasFullSymbols = !Stripped;
  M.LinkBase = Base;
  M.Needed = Needed;

  static const SectionKind Order[] = {
      SectionKind::Init, SectionKind::Text,   SectionKind::Fini,
      SectionKind::Plt,  SectionKind::Rodata, SectionKind::Got,
      SectionKind::Data, SectionKind::Bss};

  for (SectionKind K : Order) {
    if (K == SectionKind::Plt) {
      if (PltSize == 0)
        continue;
      Section S;
      S.Kind = K;
      S.Addr = Plt0VA;
      // plt0: syscall RESOLVE; ret  (the lazy-binding trampoline that
      // "calls" the resolved function with a return instruction, the ld.so
      // idiom from §4.2.3 of the paper).
      Instruction Sys;
      Sys.Op = Opcode::SYSCALL;
      Sys.Imm = 7; // SyscallNum::Resolve — kept in sync with vm/Syscalls.h
      encode(Sys, S.Bytes);
      Instruction Ret;
      Ret.Op = Opcode::RET;
      encode(Ret, S.Bytes);
      for (size_t Idx = 0; Idx < PltSyms.size(); ++Idx) {
        const std::string &Sym = PltSyms[Idx];
        uint64_t StubVA = PltStubVA[Sym];
        // jmpm [gotslot] — pc-relative for PIC, absolute otherwise.
        Instruction Jm;
        Jm.Op = Opcode::JMPM;
        if (PIC) {
          Jm.Mem.PCRel = true;
          Jm.Mem.Disp =
              static_cast<int32_t>(GotSlotVA[Sym] - (StubVA + 7));
        } else {
          Jm.Mem.Disp = static_cast<int32_t>(GotSlotVA[Sym]);
        }
        encode(Jm, S.Bytes);
        // pushq idx ; jmp plt0
        Instruction Pu;
        Pu.Op = Opcode::PUSHI64;
        Pu.Imm = static_cast<int64_t>(Idx);
        encode(Pu, S.Bytes);
        Instruction Jp;
        Jp.Op = Opcode::JMP;
        uint64_t JmpVA = StubVA + 7 + 9;
        Jp.Imm = static_cast<int64_t>(Plt0VA) -
                 static_cast<int64_t>(JmpVA + 5);
        encode(Jp, S.Bytes);
        // GOT slot initially points at the lazy stub: rebase reloc.
        Relocation R;
        R.Kind = RelocKind::Rebase64;
        R.Site = GotSlotVA[Sym];
        R.Addend = static_cast<int64_t>(PltLazyVA[Sym]);
        M.DynRelocs.push_back(R);
        M.Plt.push_back({Sym, StubVA, GotSlotVA[Sym], PltLazyVA[Sym]});
      }
      M.Sections.push_back(std::move(S));
      continue;
    }
    if (K == SectionKind::Got) {
      if (GotSize == 0)
        continue;
      Section S;
      S.Kind = K;
      S.Addr = SecAddr[K];
      S.Bytes.assign(GotSize, 0);
      for (const std::string &Sym : GotDataSyms) {
        Relocation R;
        R.Kind = RelocKind::SymAbs64;
        R.Site = GotSlotVA[Sym];
        R.SymbolName = Sym;
        M.DynRelocs.push_back(R);
      }
      M.Sections.push_back(std::move(S));
      continue;
    }
    auto SecIt = Secs.find(K);
    if (SecIt == Secs.end())
      continue;
    SectionBuf &SB = SecIt->second;
    Section S;
    S.Kind = K;
    S.Addr = SB.Addr;
    if (K == SectionKind::Bss) {
      S.BssSize = SB.BssSize;
      if (S.BssSize)
        M.Sections.push_back(std::move(S));
      continue;
    }
    uint64_t VA = SB.Addr;
    for (Item &It : SB.Items) {
      LineNo = It.IsInstr ? It.Instr.Line : It.Data.Line;
      uint64_t Size = itemSize(It);
      if (!It.IsInstr) {
        DataItem &DI = It.Data;
        switch (DI.K) {
        case DataItem::Kind::Literal:
          S.Bytes.insert(S.Bytes.end(), DI.Bytes.begin(), DI.Bytes.end());
          if (DI.IsIsland)
            M.Islands.push_back({VA, DI.Bytes.size()});
          break;
        case DataItem::Kind::QuadSym: {
          uint64_t SymVA = 0;
          bool Ext = isExtern(Externs, DI.Sym);
          if (!Ext && !lookupSymbolVA(DI.Sym, SymVA))
            return error(formatString("undefined symbol '%s'", DI.Sym.c_str()));
          if (Ext) {
            Relocation R;
            R.Kind = RelocKind::SymAbs64;
            R.Site = VA;
            R.SymbolName = DI.Sym;
            R.Addend = DI.Add;
            M.DynRelocs.push_back(R);
            writeLE64(S.Bytes, 0);
          } else if (PIC) {
            Relocation R;
            R.Kind = RelocKind::Rebase64;
            R.Site = VA;
            R.Addend = static_cast<int64_t>(SymVA) + DI.Add;
            M.DynRelocs.push_back(R);
            writeLE64(S.Bytes, SymVA + DI.Add);
          } else {
            writeLE64(S.Bytes, SymVA + DI.Add);
          }
          break;
        }
        case DataItem::Kind::Offset32Sym: {
          uint64_t SymVA = 0;
          if (!lookupSymbolVA(DI.Sym, SymVA))
            return error(formatString("undefined symbol '%s'", DI.Sym.c_str()));
          writeLE32(S.Bytes, static_cast<uint32_t>(SymVA - Base));
          break;
        }
        }
        VA += Size;
        continue;
      }

      AsmInstr &AI = It.Instr;
      Instruction &I = AI.I;
      switch (AI.Ref) {
      case RefKind::None:
        break;
      case RefKind::Branch: {
        uint64_t Target;
        if (!lookupSymbolVA(AI.Sym, Target))
          return error(formatString("undefined label '%s'", AI.Sym.c_str()));
        I.Imm = static_cast<int64_t>(Target) -
                static_cast<int64_t>(VA + Size);
        if (I.Imm < INT32_MIN || I.Imm > INT32_MAX)
          return error("branch out of range");
        break;
      }
      case RefKind::MemPCRel: {
        uint64_t Target;
        if (!lookupSymbolVA(AI.Sym, Target))
          return error(formatString("undefined symbol '%s'", AI.Sym.c_str()));
        int64_t D = static_cast<int64_t>(Target) + AI.SymAdd -
                    static_cast<int64_t>(VA + Size);
        if (D < INT32_MIN || D > INT32_MAX)
          return error("pc-relative displacement out of range");
        I.Mem.Disp = static_cast<int32_t>(D);
        break;
      }
      case RefKind::MemAbs: {
        if (PIC)
          return error("absolute memory operands are not position "
                       "independent; use [pc + sym]");
        uint64_t Target;
        if (!lookupSymbolVA(AI.Sym, Target))
          return error(formatString("undefined symbol '%s'", AI.Sym.c_str()));
        int64_t D = static_cast<int64_t>(Target) + AI.SymAdd;
        if (D < 0 || D > INT32_MAX)
          return error("absolute displacement out of range");
        I.Mem.Disp = static_cast<int32_t>(D);
        break;
      }
      case RefKind::AddrImm64: {
        uint64_t Target;
        if (!lookupSymbolVA(AI.Sym, Target))
          return error(formatString("undefined symbol '%s'", AI.Sym.c_str()));
        I.Imm = static_cast<int64_t>(Target);
        break;
      }
      case RefKind::GotMem: {
        auto GIt = GotSlotVA.find(AI.Sym);
        if (GIt == GotSlotVA.end())
          return error(formatString("no GOT slot for '%s'", AI.Sym.c_str()));
        if (PIC) {
          int64_t D = static_cast<int64_t>(GIt->second) -
                      static_cast<int64_t>(VA + Size);
          I.Mem.Disp = static_cast<int32_t>(D);
        } else {
          I.Mem.Disp = static_cast<int32_t>(GIt->second);
        }
        break;
      }
      }
      encode(I, S.Bytes);
      VA += Size;
    }
    M.Sections.push_back(std::move(S));
  }

  // Symbol table.
  for (const PendingFunc &F : Funcs) {
    Symbol Sym;
    Sym.Name = F.Name;
    Sym.Value = SecAddr[F.Sec] + F.StartOff;
    uint64_t End = F.EndOff == ~0ull ? F.StartOff : F.EndOff;
    Sym.Size = End - F.StartOff;
    Sym.IsFunction = true;
    Sym.Exported =
        std::find(Exported.begin(), Exported.end(), F.Name) != Exported.end();
    if (Stripped && !Sym.Exported)
      continue;
    M.Symbols.push_back(std::move(Sym));
  }
  // Non-function labels that are exported also enter the symbol table.
  for (const std::string &E : Exported) {
    if (M.findSymbol(E))
      continue;
    uint64_t VA;
    if (!lookupSymbolVA(E, VA))
      return error(formatString(".global of undefined symbol '%s'", E.c_str()));
    Symbol Sym;
    Sym.Name = E;
    Sym.Value = VA;
    Sym.Exported = true;
    M.Symbols.push_back(std::move(Sym));
  }
  // Data labels in the full symbol table (for analyses/tests).
  if (!Stripped) {
    for (const auto &[Name, Def] : Labels) {
      if (M.findSymbol(Name))
        continue;
      Symbol Sym;
      Sym.Name = Name;
      Sym.Value = SecAddr[Def.Sec] + Def.Off;
      M.Symbols.push_back(std::move(Sym));
    }
  }

  M.ImportedSymbols = Externs;

  if (!EntrySym.empty()) {
    uint64_t VA;
    if (!lookupSymbolVA(EntrySym, VA))
      return error(formatString("undefined entry symbol '%s'",
                                EntrySym.c_str()));
    M.Entry = VA;
  }
  return true;
}

ErrorOr<Module> Assembler::run(const std::string &Source) {
  Secs[SectionKind::Text].Kind = SectionKind::Text;
  std::istringstream In(Source);
  std::string Line;
  LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (!parseLine(Line))
      return makeError(ErrMsg);
  }
  if (!FuncStack.empty())
    return makeError(formatString("unterminated .func '%s'",
                                  FuncStack.back().c_str()));
  if (!layout())
    return makeError(ErrMsg);
  Module M;
  if (!resolveAndEncode(M))
    return makeError(ErrMsg);
  return M;
}

} // namespace

ErrorOr<Module> janitizer::assembleModule(const std::string &Source) {
  Assembler A;
  return A.run(Source);
}
