//===- jasm/X64Emitter.cpp - encoder validation ----------------------------==//

#include "jasm/X64Emitter.h"

namespace janitizer {
namespace x64 {

namespace {

/// One reference encoding: assemble via \p Fn, compare against hand-encoded
/// bytes from the Intel SDM tables.
template <typename Fn>
bool expectBytes(Fn &&Assemble, std::initializer_list<uint8_t> Want) {
  X64Emitter E;
  Assemble(E);
  if (E.size() != Want.size())
    return false;
  size_t I = 0;
  for (uint8_t W : Want)
    if (E.bytes()[I++] != W)
      return false;
  return true;
}

} // namespace

bool emitterSelfTest() {
  bool Ok = true;
  // Register-register / register-memory moves, including the REX.B
  // extension and both displacement widths.
  Ok &= expectBytes([](X64Emitter &E) { E.movRR(RAX, RBX); },
                    {0x48, 0x89, 0xD8});
  Ok &= expectBytes([](X64Emitter &E) { E.movRM(RCX, R15, 0x40); },
                    {0x49, 0x8B, 0x4F, 0x40});
  Ok &= expectBytes([](X64Emitter &E) { E.movRM(RAX, R15, 0x180); },
                    {0x49, 0x8B, 0x87, 0x80, 0x01, 0x00, 0x00});
  Ok &= expectBytes([](X64Emitter &E) { E.movMR(R14, 8, RAX); },
                    {0x49, 0x89, 0x46, 0x08});
  // The three movRI encodings: 32-bit zero-extending, sign-extended C7,
  // and full movabs.
  Ok &= expectBytes([](X64Emitter &E) { E.movRI(RAX, 0x1234); },
                    {0xB8, 0x34, 0x12, 0x00, 0x00});
  Ok &= expectBytes([](X64Emitter &E) { E.movRI(RCX, ~0ull); },
                    {0x48, 0xC7, 0xC1, 0xFF, 0xFF, 0xFF, 0xFF});
  Ok &= expectBytes([](X64Emitter &E) { E.movRI(R10, 0x123456789ull); },
                    {0x49, 0xBA, 0x89, 0x67, 0x45, 0x23, 0x01, 0x00, 0x00,
                     0x00});
  // Immediate stores (the PC / LastAppPC / exit-kind bookkeeping forms).
  Ok &= expectBytes([](X64Emitter &E) { E.movMI32sx(R15, 0x100, 5); },
                    {0x49, 0xC7, 0x87, 0x00, 0x01, 0x00, 0x00, 0x05, 0x00,
                     0x00, 0x00});
  Ok &= expectBytes([](X64Emitter &E) { E.movMI8(R15, 2, 1); },
                    {0x41, 0xC6, 0x47, 0x02, 0x01});
  Ok &= expectBytes([](X64Emitter &E) { E.movM8R(R14, 0x20, RCX); },
                    {0x41, 0x88, 0x4E, 0x20});
  Ok &= expectBytes([](X64Emitter &E) { E.movzx8RM(RAX, R15, 0x21); },
                    {0x41, 0x0F, 0xB6, 0x47, 0x21});
  // ALU.
  Ok &= expectBytes([](X64Emitter &E) { E.aluRR(Alu::Add, RAX, RCX); },
                    {0x48, 0x01, 0xC8});
  Ok &= expectBytes([](X64Emitter &E) { E.aluRM(Alu::Sub, RAX, R15, 0x10); },
                    {0x49, 0x2B, 0x47, 0x10});
  Ok &= expectBytes([](X64Emitter &E) { E.aluRI(Alu::Cmp, RDX, 100); },
                    {0x48, 0x81, 0xFA, 0x64, 0x00, 0x00, 0x00});
  Ok &= expectBytes([](X64Emitter &E) { E.aluRI32(Alu::Cmp, RAX, 1); },
                    {0x81, 0xF8, 0x01, 0x00, 0x00, 0x00});
  Ok &= expectBytes([](X64Emitter &E) { E.testRR32(RAX, RAX); },
                    {0x85, 0xC0});
  Ok &= expectBytes([](X64Emitter &E) { E.aluMI(Alu::Add, R15, 0x88, 3); },
                    {0x49, 0x81, 0x87, 0x88, 0x00, 0x00, 0x00, 0x03, 0x00,
                     0x00, 0x00});
  Ok &= expectBytes([](X64Emitter &E) { E.incM(R14, 0x30); },
                    {0x49, 0xFF, 0x46, 0x30});
  Ok &= expectBytes([](X64Emitter &E) { E.testRR(RAX, RAX); },
                    {0x48, 0x85, 0xC0});
  Ok &= expectBytes([](X64Emitter &E) { E.testRI32(RAX, 1023); },
                    {0xF7, 0xC0, 0xFF, 0x03, 0x00, 0x00});
  Ok &= expectBytes([](X64Emitter &E) { E.cmpM8I(RAX, 0, 0); },
                    {0x80, 0x38, 0x00});
  // Shifts / widening multiply / divide.
  Ok &= expectBytes([](X64Emitter &E) { E.shiftRI(RAX, 3, false); },
                    {0x48, 0xC1, 0xE0, 0x03});
  Ok &= expectBytes([](X64Emitter &E) { E.shiftRCl(RAX, true); },
                    {0x48, 0xD3, 0xE8});
  Ok &= expectBytes([](X64Emitter &E) { E.mulR(RCX); }, {0x48, 0xF7, 0xE1});
  Ok &= expectBytes([](X64Emitter &E) { E.divR(RCX); }, {0x48, 0xF7, 0xF1});
  // lea with a scaled index, including the RBP-base disp8 fixup.
  Ok &= expectBytes([](X64Emitter &E) { E.leaRRscale(RSI, RAX, RCX, 2); },
                    {0x48, 0x8D, 0x34, 0x88});
  Ok &= expectBytes([](X64Emitter &E) { E.leaRRscale(RAX, RBP, RCX, 0); },
                    {0x48, 0x8D, 0x44, 0x0D, 0x00});
  // setcc into the guest flag bytes.
  Ok &= expectBytes([](X64Emitter &E) { E.setccM(Cond::E, R14, 0x50); },
                    {0x41, 0x0F, 0x94, 0x46, 0x50});
  // Branch fixups: a forward jcc over one byte, then a backward jmp.
  Ok &= expectBytes(
      [](X64Emitter &E) {
        size_t Top = E.here();
        size_t F = E.jcc(Cond::NE);
        E.b(0x90);
        E.patchHere(F);
        size_t J = E.jmp();
        E.patchRel32(J, Top);
      },
      {0x0F, 0x85, 0x01, 0x00, 0x00, 0x00, 0x90, 0xE9, 0xF4, 0xFF, 0xFF,
       0xFF});
  // Calls / stack ops, with and without REX.B.
  Ok &= expectBytes([](X64Emitter &E) { E.callR(RAX); }, {0xFF, 0xD0});
  Ok &= expectBytes([](X64Emitter &E) { E.callR(R11); }, {0x41, 0xFF, 0xD3});
  Ok &= expectBytes([](X64Emitter &E) { E.push(RBX); }, {0x53});
  Ok &= expectBytes([](X64Emitter &E) { E.push(R15); }, {0x41, 0x57});
  Ok &= expectBytes([](X64Emitter &E) { E.pop(R15); }, {0x41, 0x5F});
  Ok &= expectBytes([](X64Emitter &E) { E.ret(); }, {0xC3});
  // mod/rm corner cases: RSP needs a SIB byte, RBP/R13 force a disp byte.
  Ok &= expectBytes([](X64Emitter &E) { E.movRM(RAX, RSP, 8); },
                    {0x48, 0x8B, 0x44, 0x24, 0x08});
  Ok &= expectBytes([](X64Emitter &E) { E.movRM(RAX, RBP, 0); },
                    {0x48, 0x8B, 0x45, 0x00});
  Ok &= expectBytes([](X64Emitter &E) { E.movRM(RAX, R13, 0); },
                    {0x49, 0x8B, 0x45, 0x00});
  return Ok;
}

} // namespace x64
} // namespace janitizer
