//===- support/Format.h - printf-style std::string formatting ------------===//
///
/// \file
/// String formatting helpers used by diagnostics, disassembly printing and
/// the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_SUPPORT_FORMAT_H
#define JANITIZER_SUPPORT_FORMAT_H

#include <string>

namespace janitizer {

/// Renders a printf-style format string into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace janitizer

#endif // JANITIZER_SUPPORT_FORMAT_H
