//===- support/Json.cpp ---------------------------------------------------==//

#include "support/Json.h"

#include "support/Format.h"

#include <cctype>
#include <cstdlib>

using namespace janitizer;

void janitizer::appendJsonEscaped(std::string &Out, const std::string &S) {
  for (char Ch : S) {
    unsigned char C = static_cast<unsigned char>(Ch);
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out.push_back(Ch);
    }
  }
}

std::string janitizer::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  appendJsonEscaped(Out, S);
  return Out;
}

void janitizer::appendJsonString(std::string &Out, const std::string &S) {
  Out.push_back('"');
  appendJsonEscaped(Out, S);
  Out.push_back('"');
}

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Members)
    if (Name == Key)
      return &V;
  return nullptr;
}

double JsonValue::numberOr(const std::string &Key, double Default) const {
  const JsonValue *V = find(Key);
  return V && V->K == Kind::Number ? V->Num : Default;
}

namespace {

class Parser {
public:
  explicit Parser(const std::string &S) : S(S) {}

  ErrorOr<JsonValue> run() {
    ErrorOr<JsonValue> V = value();
    if (!V)
      return V;
    skipWs();
    if (Pos != S.size())
      return fail("trailing garbage after document");
    return V;
  }

private:
  Error fail(const std::string &What) const {
    return makeError(formatString("JSON parse error at offset %zu: %s", Pos,
                                  What.c_str()));
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  ErrorOr<JsonValue> value() {
    skipWs();
    if (Pos >= S.size())
      return fail("unexpected end of input");
    char C = S[Pos];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"')
      return string();
    if (C == 't' || C == 'f')
      return boolean();
    if (C == 'n') {
      if (Error E = literal("null"))
        return E;
      return JsonValue{};
    }
    return number();
  }

  Error literal(const char *Lit) {
    for (const char *P = Lit; *P; ++P)
      if (Pos >= S.size() || S[Pos++] != *P)
        return fail(formatString("expected '%s'", Lit));
    return Error::success();
  }

  ErrorOr<JsonValue> boolean() {
    JsonValue V;
    V.K = JsonValue::Kind::Bool;
    if (S[Pos] == 't') {
      if (Error E = literal("true"))
        return E;
      V.B = true;
    } else {
      if (Error E = literal("false"))
        return E;
    }
    return V;
  }

  ErrorOr<JsonValue> number() {
    size_t Start = Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '-' || S[Pos] == '+' || S[Pos] == '.' ||
            S[Pos] == 'e' || S[Pos] == 'E'))
      ++Pos;
    if (Start == Pos)
      return fail("expected a value");
    JsonValue V;
    V.K = JsonValue::Kind::Number;
    V.Num = std::strtod(S.substr(Start, Pos - Start).c_str(), nullptr);
    return V;
  }

  ErrorOr<JsonValue> string() {
    JsonValue V;
    V.K = JsonValue::Kind::String;
    if (!eat('"'))
      return fail("expected '\"'");
    while (Pos < S.size() && S[Pos] != '"') {
      char C = S[Pos++];
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        V.Str += C;
        continue;
      }
      if (Pos >= S.size())
        return fail("truncated escape");
      char E = S[Pos++];
      switch (E) {
      case '"': V.Str += '"'; break;
      case '\\': V.Str += '\\'; break;
      case '/': V.Str += '/'; break;
      case 'b': V.Str += '\b'; break;
      case 'f': V.Str += '\f'; break;
      case 'n': V.Str += '\n'; break;
      case 'r': V.Str += '\r'; break;
      case 't': V.Str += '\t'; break;
      case 'u': {
        auto Hex4 = [&](unsigned &Out) -> bool {
          if (Pos + 4 > S.size())
            return false;
          for (size_t I = 0; I < 4; ++I)
            if (!std::isxdigit(static_cast<unsigned char>(S[Pos + I])))
              return false;
          Out = static_cast<unsigned>(
              std::strtoul(S.substr(Pos, 4).c_str(), nullptr, 16));
          Pos += 4;
          return true;
        };
        unsigned Code = 0;
        if (!Hex4(Code))
          return fail("malformed \\u escape");
        // RFC 8259 §7: code points above the BMP are written as a UTF-16
        // surrogate pair of \u escapes. Combine the pair into one code
        // point (a lone three-byte decode of each half would be CESU-8,
        // not UTF-8) and reject unpaired halves.
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          if (Pos + 2 > S.size() || S[Pos] != '\\' || S[Pos + 1] != 'u')
            return fail("unpaired high surrogate");
          Pos += 2;
          unsigned Low = 0;
          if (!Hex4(Low))
            return fail("malformed \\u escape");
          if (Low < 0xDC00 || Low > 0xDFFF)
            return fail("unpaired high surrogate");
          Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          return fail("unpaired low surrogate");
        }
        if (Code < 0x80) {
          V.Str += static_cast<char>(Code);
        } else if (Code < 0x800) {
          V.Str += static_cast<char>(0xC0 | (Code >> 6));
          V.Str += static_cast<char>(0x80 | (Code & 0x3F));
        } else if (Code < 0x10000) {
          V.Str += static_cast<char>(0xE0 | (Code >> 12));
          V.Str += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          V.Str += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          V.Str += static_cast<char>(0xF0 | (Code >> 18));
          V.Str += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
          V.Str += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          V.Str += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (!eat('"'))
      return fail("unterminated string");
    return V;
  }

  ErrorOr<JsonValue> array() {
    JsonValue V;
    V.K = JsonValue::Kind::Array;
    eat('[');
    skipWs();
    if (eat(']'))
      return V;
    while (true) {
      ErrorOr<JsonValue> Item = value();
      if (!Item)
        return Item;
      V.Items.push_back(Item.takeValue());
      if (eat(']'))
        break;
      if (!eat(','))
        return fail("expected ',' or ']'");
    }
    return V;
  }

  ErrorOr<JsonValue> object() {
    JsonValue V;
    V.K = JsonValue::Kind::Object;
    eat('{');
    skipWs();
    if (eat('}'))
      return V;
    while (true) {
      skipWs();
      ErrorOr<JsonValue> Key = string();
      if (!Key)
        return Key.takeError();
      if (!eat(':'))
        return fail("expected ':'");
      ErrorOr<JsonValue> Val = value();
      if (!Val)
        return Val;
      V.Members.emplace_back(Key->Str, Val.takeValue());
      if (eat('}'))
        break;
      if (!eat(','))
        return fail("expected ',' or '}'");
    }
    return V;
  }

  const std::string &S;
  size_t Pos = 0;
};

} // namespace

ErrorOr<JsonValue> janitizer::parseJson(const std::string &Text) {
  return Parser(Text).run();
}
