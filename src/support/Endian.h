//===- support/Endian.h - Little-endian byte buffer IO -------------------===//
///
/// \file
/// Helpers to read and write fixed-width little-endian integers from byte
/// buffers. Used by the JISA encoder/decoder and JELF serialization.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_SUPPORT_ENDIAN_H
#define JANITIZER_SUPPORT_ENDIAN_H

#include <cstdint>
#include <cstring>
#include <vector>

namespace janitizer {

inline void writeLE16(std::vector<uint8_t> &Buf, uint16_t V) {
  Buf.push_back(static_cast<uint8_t>(V));
  Buf.push_back(static_cast<uint8_t>(V >> 8));
}

inline void writeLE32(std::vector<uint8_t> &Buf, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

inline void writeLE64(std::vector<uint8_t> &Buf, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

inline uint16_t readLE16(const uint8_t *P) {
  return static_cast<uint16_t>(P[0] | (P[1] << 8));
}

inline uint32_t readLE32(const uint8_t *P) {
  return static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
         (static_cast<uint32_t>(P[2]) << 16) |
         (static_cast<uint32_t>(P[3]) << 24);
}

inline uint64_t readLE64(const uint8_t *P) {
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | P[I];
  return V;
}

/// Patches a 32-bit little-endian value at \p Offset in \p Buf.
inline void patchLE32(std::vector<uint8_t> &Buf, size_t Offset, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Buf[Offset + I] = static_cast<uint8_t>(V >> (8 * I));
}

/// Patches a 64-bit little-endian value at \p Offset in \p Buf.
inline void patchLE64(std::vector<uint8_t> &Buf, size_t Offset, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Buf[Offset + I] = static_cast<uint8_t>(V >> (8 * I));
}

} // namespace janitizer

#endif // JANITIZER_SUPPORT_ENDIAN_H
