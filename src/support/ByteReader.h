//===- support/ByteReader.h - Bounds-checked LE byte-stream reader ---------===//
///
/// \file
/// The hardened deserialization front end shared by every binary format in
/// the tree (JELF modules, rule files served over the wire, VM state
/// files): a cursor over an untrusted byte blob where every read is
/// bounds-checked and a single sticky failure flag replaces exceptions.
///
/// Idiom: read fields unconditionally, check `ok()` once per logical
/// record — and additionally once per loop iteration when a count field
/// drives the loop, so a hostile count can never allocate past the bytes
/// that actually follow:
///
///   uint32_t N = R.u32();
///   for (uint32_t I = 0; R.ok() && I < N; ++I) { ... }
///   if (!R.ok()) return makeError("truncated blob");
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_SUPPORT_BYTEREADER_H
#define JANITIZER_SUPPORT_BYTEREADER_H

#include "support/Endian.h"

#include <cstdint>
#include <string>
#include <vector>

namespace janitizer {

class ByteReader {
public:
  explicit ByteReader(const std::vector<uint8_t> &Blob) : Blob(Blob) {}

  bool ok() const { return !Failed; }
  /// Bytes not yet consumed (0 after a failure).
  size_t remaining() const { return Failed ? 0 : Blob.size() - Pos; }

  uint8_t u8() {
    if (Pos + 1 > Blob.size())
      return fail();
    return Blob[Pos++];
  }
  uint32_t u32() {
    if (Pos + 4 > Blob.size())
      return fail();
    uint32_t V = readLE32(Blob.data() + Pos);
    Pos += 4;
    return V;
  }
  uint64_t u64() {
    if (Pos + 8 > Blob.size())
      return fail();
    uint64_t V = readLE64(Blob.data() + Pos);
    Pos += 8;
    return V;
  }
  std::string str() {
    uint32_t Len = u32();
    if (Failed || Pos + Len > Blob.size()) {
      fail();
      return std::string();
    }
    std::string S(reinterpret_cast<const char *>(Blob.data() + Pos), Len);
    Pos += Len;
    return S;
  }
  std::vector<uint8_t> bytes() {
    uint32_t Len = u32();
    if (Failed || Pos + Len > Blob.size()) {
      fail();
      return {};
    }
    std::vector<uint8_t> V(Blob.begin() + Pos, Blob.begin() + Pos + Len);
    Pos += Len;
    return V;
  }
  /// Copies exactly \p Len raw bytes (no length prefix) into \p Out.
  void raw(uint8_t *Out, size_t Len) {
    if (Pos + Len > Blob.size()) {
      fail();
      return;
    }
    std::copy(Blob.begin() + Pos, Blob.begin() + Pos + Len, Out);
    Pos += Len;
  }

private:
  uint8_t fail() {
    Failed = true;
    return 0;
  }
  const std::vector<uint8_t> &Blob;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace janitizer

#endif // JANITIZER_SUPPORT_BYTEREADER_H
