//===- support/FaultInjector.cpp ------------------------------------------==//

#include "support/FaultInjector.h"

#include "support/Format.h"
#include "support/Random.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace janitizer;

std::atomic<bool> FaultInjector::ArmedFlag{false};

const std::vector<const char *> &janitizer::knownFaultPoints() {
  static const std::vector<const char *> Points = {
      "static.analyze",     "static.budget",
      "pool.task",          "rules.parse",
      "cache.read.corrupt", "cache.write.enospc",
      "cache.rename",       "dynamic.moduleload",
      "dynamic.rules.validate",
      "ruled.accept",       "ruled.read",
      "ruled.write",        "snapshot.write.enospc",
      "snapshot.read.corrupt", "snapshot.read.truncated",
  };
  return Points;
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector *FI = [] {
    auto *I = new FaultInjector();
    I->configureFromEnv();
    return I;
  }();
  return *FI;
}

namespace {
// Forces env configuration before main() in any binary that links a fault
// point (the reference to shouldFail pulls this object file in).
struct EnvInitializer {
  EnvInitializer() { FaultInjector::instance(); }
} TheEnvInitializer;
} // namespace

void FaultInjector::arm(const std::string &Point, FaultTrigger T) {
  std::lock_guard<std::mutex> Lock(Mu);
  ArmedPoint AP;
  AP.T = T;
  AP.RngState = T.Seed;
  Points[Point] = AP;
  ArmedFlag.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarmAll() {
  std::lock_guard<std::mutex> Lock(Mu);
  Points.clear();
  ArmedFlag.store(false, std::memory_order_relaxed);
}

bool FaultInjector::anyArmed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return !Points.empty();
}

std::vector<std::pair<std::string, FaultInjector::PointStats>>
FaultInjector::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, PointStats>> Out;
  Out.reserve(Points.size());
  for (const auto &[Name, AP] : Points)
    Out.emplace_back(Name, AP.S);
  std::sort(Out.begin(), Out.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  return Out;
}

bool FaultInjector::evaluate(const char *Point) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Points.find(Point);
  if (It == Points.end())
    return false;
  ArmedPoint &AP = It->second;
  ++AP.S.Hits;
  bool Fire = false;
  switch (AP.T.K) {
  case FaultTrigger::Kind::Always:
    Fire = true;
    break;
  case FaultTrigger::Kind::Once:
    Fire = AP.S.Fires == 0;
    break;
  case FaultTrigger::Kind::NthHit:
    Fire = AP.S.Hits == AP.T.N;
    break;
  case FaultTrigger::Kind::EveryN:
    Fire = AP.T.N != 0 && AP.S.Hits % AP.T.N == 0;
    break;
  case FaultTrigger::Kind::Probability: {
    SplitMix64 Rng(AP.RngState);
    uint64_t Draw = Rng.next();
    // Advance the per-point stream deterministically across hits.
    AP.RngState = Draw;
    // Map to [0,1): 53 high bits, the double-precision mantissa width.
    double U = static_cast<double>(Draw >> 11) * 0x1.0p-53;
    Fire = U < AP.T.P;
    break;
  }
  }
  if (Fire)
    ++AP.S.Fires;
  return Fire;
}

Error FaultInjector::configure(const std::string &Spec) {
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Entry = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() : Comma + 1;
    if (Entry.empty())
      continue;

    // Entry = point[:trigger[:trigger...]]
    std::vector<std::string> Fields;
    size_t FPos = 0;
    while (FPos <= Entry.size()) {
      size_t Colon = Entry.find(':', FPos);
      Fields.push_back(Entry.substr(
          FPos, Colon == std::string::npos ? std::string::npos : Colon - FPos));
      if (Colon == std::string::npos)
        break;
      FPos = Colon + 1;
    }
    const std::string &Point = Fields[0];
    if (Point.empty())
      return makeError("JZ_FAULTS: empty fault-point name in '" + Entry + "'");
    if (std::find_if(knownFaultPoints().begin(), knownFaultPoints().end(),
                     [&](const char *P) { return Point == P; }) ==
        knownFaultPoints().end())
      std::fprintf(stderr,
                   "warning: JZ_FAULTS names unknown fault point '%s'\n",
                   Point.c_str());

    FaultTrigger T;
    for (size_t I = 1; I < Fields.size(); ++I) {
      const std::string &F = Fields[I];
      auto NumArg = [&](const char *Key) -> std::optional<std::string> {
        std::string Prefix = std::string(Key) + "=";
        if (F.rfind(Prefix, 0) != 0)
          return std::nullopt;
        return F.substr(Prefix.size());
      };
      if (F == "always") {
        T.K = FaultTrigger::Kind::Always;
      } else if (F == "once") {
        T.K = FaultTrigger::Kind::Once;
      } else if (auto V = NumArg("hit")) {
        T.K = FaultTrigger::Kind::NthHit;
        T.N = std::strtoull(V->c_str(), nullptr, 10);
        if (!T.N)
          return makeError("JZ_FAULTS: hit= wants a positive integer in '" +
                           Entry + "'");
      } else if (auto V = NumArg("every")) {
        T.K = FaultTrigger::Kind::EveryN;
        T.N = std::strtoull(V->c_str(), nullptr, 10);
        if (!T.N)
          return makeError("JZ_FAULTS: every= wants a positive integer in '" +
                           Entry + "'");
      } else if (auto V = NumArg("p")) {
        T.K = FaultTrigger::Kind::Probability;
        char *End = nullptr;
        T.P = std::strtod(V->c_str(), &End);
        if (End == V->c_str() || T.P < 0.0 || T.P > 1.0)
          return makeError("JZ_FAULTS: p= wants a probability in [0,1] in '" +
                           Entry + "'");
      } else if (auto V = NumArg("seed")) {
        T.Seed = std::strtoull(V->c_str(), nullptr, 10);
      } else {
        return makeError("JZ_FAULTS: unknown trigger '" + F + "' in '" +
                         Entry + "'");
      }
    }
    arm(Point, T);
  }
  return Error::success();
}

void FaultInjector::configureFromEnv() {
  const char *Env = std::getenv("JZ_FAULTS");
  if (!Env || !*Env)
    return;
  if (Error E = configure(Env))
    std::fprintf(stderr, "warning: %s (entry skipped)\n", E.message().c_str());
}
