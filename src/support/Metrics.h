//===- support/Metrics.h - Typed metrics registry -------------------------===//
///
/// \file
/// A process-wide registry of named counters, gauges and histograms that
/// unifies the pipeline's ad-hoc stat structs (StaticAnalyzerStats,
/// CoverageStats, DbiStats, ThreadPool drop counts, DegradationReport
/// tallies) behind one uniform surface: `jz-bench --metrics` prints every
/// registered metric, `--metrics-json` serializes them for results/.
///
/// Naming scheme: `jz.<layer>.<name>` — jz.static.modules_analyzed,
/// jz.cache.hits, jz.dispatch.fallbacks, jz.pool.dropped_tasks, ... The
/// registry iterates in name order, so printed and serialized output is
/// deterministic.
///
/// Two usage modes:
///  - *Live* metrics on cold paths (cache reads, pool task drops) call
///    Counter::inc() directly; these are relaxed atomic adds.
///  - *Published views*: hot layers keep their existing local stat
///    structs (no new cost on the dispatch path) and mirror them into the
///    registry at end of run via publishMetrics() — Counter::set() gives
///    these snapshot semantics, so publishing twice does not double
///    count.
///
/// Histograms use fixed log2 buckets: bucket 0 counts zero-valued
/// samples; bucket k >= 1 counts values in [2^(k-1), 2^k). That makes
/// bucket boundaries stable across runs and trivially testable.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_SUPPORT_METRICS_H
#define JANITIZER_SUPPORT_METRICS_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace janitizer {

/// Monotonic count (events, items). set() exists for published views
/// that mirror an externally maintained tally.
class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  void set(uint64_t N) { V.store(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Point-in-time level (threads in use, modules live).
class Gauge {
public:
  void set(int64_t N) { V.store(N, std::memory_order_relaxed); }
  void add(int64_t N) { V.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Log2-bucketed histogram of uint64 samples.
///   bucket 0        : value == 0
///   bucket k (k>=1) : value in [2^(k-1), 2^k)
/// 64 value bits + the zero bucket = 65 buckets, always all present.
class Histogram {
public:
  static constexpr size_t NumBuckets = 65;

  static size_t bucketFor(uint64_t Value) {
    return static_cast<size_t>(std::bit_width(Value));
  }

  /// Inclusive lower bound of bucket \p I (0 for bucket 0, 2^(I-1) above).
  static uint64_t bucketLo(size_t I) {
    return I == 0 ? 0 : (uint64_t{1} << (I - 1));
  }
  /// Inclusive upper bound of bucket \p I. Bucket 64 covers the top half
  /// of the value range, up to UINT64_MAX (a 64-bit shift would be UB).
  static uint64_t bucketHi(size_t I) {
    if (I == 0)
      return 0;
    if (I >= 64)
      return UINT64_MAX;
    return (uint64_t{1} << I) - 1;
  }

  void observe(uint64_t Value) {
    Buckets[bucketFor(Value)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Value, std::memory_order_relaxed);
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t bucketCount(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Buckets[NumBuckets]{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
};

/// The process-wide registry. counter()/gauge()/histogram() get-or-create
/// by name and return a stable reference (entries are never removed, only
/// reset), so call sites may cache the pointer. Registering the same name
/// with two different kinds is a programming error and aborts.
class MetricsRegistry {
public:
  static MetricsRegistry &instance();

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  enum class Kind : uint8_t { Counter, Gauge, Histogram };

  struct Snapshot {
    std::string Name;
    Kind MetricKind;
    uint64_t CounterValue = 0;           ///< Kind::Counter
    int64_t GaugeValue = 0;              ///< Kind::Gauge
    uint64_t HistCount = 0, HistSum = 0; ///< Kind::Histogram
    std::vector<size_t> HistBucketIdx;   ///< indices of non-empty buckets
    std::vector<uint64_t> HistBuckets;   ///< counts, parallel to HistBucketIdx
  };

  /// All metrics in name order (deterministic).
  std::vector<Snapshot> snapshot() const;

  /// Human-readable table (one metric per line, name-sorted).
  std::string toText() const;

  /// JSON object {"jz.cache.hits": 12, ...}; histograms expand to an
  /// object with count/sum/buckets.
  std::string toJson() const;

  /// Zeroes every registered metric (tests; entries stay registered).
  void reset();

  size_t size() const;

private:
  MetricsRegistry() = default;

  struct Entry {
    Kind MetricKind;
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
  };

  Entry &getOrCreate(const std::string &Name, Kind K);

  mutable std::mutex Mu;
  // std::map: pointer-stable values and name-ordered iteration for free.
  std::map<std::string, Entry> Metrics;
};

} // namespace janitizer

#endif // JANITIZER_SUPPORT_METRICS_H
