//===- support/Json.h - RFC 8259 string escaping and a small parser -------===//
///
/// \file
/// The two JSON facilities every emitting and aggregating layer shares:
///
///  - jsonEscape()/appendJsonString(): RFC 8259 §7 string escaping, used
///    by every writer in the project (Chrome trace export, the metrics
///    registry, the fleet harness). Escaping lives in exactly one place
///    so no writer can re-grow the "identifiers never need escaping"
///    assumption that once made --metrics-json emit unparseable output
///    for metric names carrying quotes, backslashes or control bytes
///    (e.g. a module path used as a label).
///
///  - JsonValue/parseJson(): a small recursive-descent parser for the
///    JSON the project itself emits (objects, arrays, strings, numbers,
///    bools, null). The fleet harness uses it to aggregate per-worker
///    --metrics-json files; tests use it to assert real parsability of
///    exported traces and metrics instead of substring-matching writer
///    output. It is a strict parser: raw control characters in strings,
///    trailing garbage and malformed escapes are errors.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_SUPPORT_JSON_H
#define JANITIZER_SUPPORT_JSON_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace janitizer {

/// Appends \p S to \p Out with RFC 8259 escaping (quotes not included):
/// `"` `\` and the C0 control range are escaped, everything else is
/// passed through byte-for-byte (UTF-8 stays UTF-8).
void appendJsonEscaped(std::string &Out, const std::string &S);

/// Returns the escaped form of \p S (quotes not included).
std::string jsonEscape(const std::string &S);

/// Appends \p S as a complete JSON string token: opening quote, escaped
/// contents, closing quote.
void appendJsonString(std::string &Out, const std::string &S);

/// A parsed JSON value. Object members preserve source order (the
/// project's writers are deterministic and tests compare ordered output),
/// with linear-scan lookup — the documents involved are small.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Items;                          ///< Kind::Array
  std::vector<std::pair<std::string, JsonValue>> Members; ///< Kind::Object

  bool isObject() const { return K == Kind::Object; }
  bool isNumber() const { return K == Kind::Number; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue *find(const std::string &Key) const;

  /// The member's numeric value, or \p Default when absent / non-numeric.
  double numberOr(const std::string &Key, double Default) const;
};

/// Parses \p Text as one JSON document. Trailing non-whitespace, raw
/// control characters inside strings, unknown escapes and truncated input
/// are (Recoverable) errors naming the byte offset.
ErrorOr<JsonValue> parseJson(const std::string &Text);

} // namespace janitizer

#endif // JANITIZER_SUPPORT_JSON_H
