//===- support/Error.h - Lightweight recoverable-error types -------------===//
///
/// \file
/// Minimal error-handling utilities in the spirit of llvm::Error /
/// llvm::Expected, without the checked-flag machinery. Library code in this
/// project does not use exceptions; fallible operations return ErrorOr<T>
/// (or plain Error for void results) and callers branch on success.
///
/// Errors carry a severity so policy layers can decide between propagating
/// (Fatal: the whole operation is meaningless without this step) and
/// degrading (Recoverable: quarantine the affected unit and continue —
/// Janitizer's "degrade, never die" contract). withContext() prepends
/// call-site context while an error travels up, llvm-style:
///
///     return E.withContext("loading rules for " + Mod.Name);
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_SUPPORT_ERROR_H
#define JANITIZER_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>

namespace janitizer {

/// How bad a failure is — the input to ErrorPolicy decisions.
enum class Severity : uint8_t {
  /// Worth reporting, but the operation proceeded (e.g. a cache write
  /// that could not be persisted).
  Warning = 0,
  /// The affected unit (module, cache entry, task) is unusable but the
  /// surrounding run can continue without it. Default.
  Recoverable = 1,
  /// The whole operation cannot produce a meaningful result.
  Fatal = 2,
};

/// A recoverable error carrying a human-readable message. A
/// default-constructed Error represents success.
class Error {
public:
  Error() = default;
  explicit Error(std::string Msg, Severity S = Severity::Recoverable)
      : Msg(std::move(Msg)), Sev(S), Failed(true) {}

  /// Returns a success value.
  static Error success() { return Error(); }

  /// True if this represents a failure.
  explicit operator bool() const { return Failed; }

  /// The failure message; only meaningful when the error failed.
  const std::string &message() const { return Msg; }

  /// Severity of the failure; only meaningful when the error failed.
  Severity severity() const { return Sev; }
  bool isFatal() const { return Failed && Sev == Severity::Fatal; }

  /// Prepends call-site context to the message ("Ctx: inner message"),
  /// preserving severity. Chainable as the error travels up the stack.
  Error withContext(const std::string &Ctx) const & {
    if (!Failed)
      return Error();
    return Error(Ctx + ": " + Msg, Sev);
  }
  Error withContext(const std::string &Ctx) && {
    if (!Failed)
      return Error();
    Msg.insert(0, Ctx + ": ");
    return std::move(*this);
  }

  /// Returns the same error with severity \p S (raise or lower).
  Error withSeverity(Severity S) && {
    Sev = S;
    return std::move(*this);
  }

private:
  std::string Msg;
  Severity Sev = Severity::Recoverable;
  bool Failed = false;
};

/// Creates a failure Error with message \p Msg.
inline Error makeError(std::string Msg,
                       Severity S = Severity::Recoverable) {
  return Error(std::move(Msg), S);
}

/// Either a value of type T or an Error. Mirrors llvm::Expected in usage:
/// truthiness indicates success, operator* accesses the value, takeError()
/// retrieves the failure.
template <typename T> class ErrorOr {
public:
  /// Value constructor. Constrained so it never competes with the Error
  /// constructor: for a T constructible from many things (std::string and
  /// friends) an unconstrained ErrorOr(T) overload set is ambiguous or —
  /// worse — silently converts an Error into a success value.
  template <typename U = T,
            std::enable_if_t<
                std::is_constructible_v<T, U &&> &&
                    !std::is_same_v<std::remove_cv_t<std::remove_reference_t<U>>,
                                    Error> &&
                    !std::is_same_v<std::remove_cv_t<std::remove_reference_t<U>>,
                                    ErrorOr<T>>,
                int> = 0>
  ErrorOr(U &&Value) : Value(std::in_place, std::forward<U>(Value)) {}

  ErrorOr(Error Err) : Err(std::move(Err)) {
    assert(this->Err && "constructing ErrorOr from a success Error");
  }

  explicit operator bool() const { return Value.has_value(); }

  T &operator*() {
    assert(Value && "dereferencing failed ErrorOr");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing failed ErrorOr");
    return *Value;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Moves the value out of a successful result (avoids the copy that
  /// `T V = *Result;` would make).
  T takeValue() {
    assert(Value && "taking value of failed ErrorOr");
    return std::move(*Value);
  }

  /// Extracts the error from a failed result.
  Error takeError() { return std::move(Err); }

  /// The failure message ("" on success).
  const std::string &message() const { return Err.message(); }

private:
  std::optional<T> Value;
  Error Err;
};

/// Aborts with a diagnostic; used for unreachable code paths.
[[noreturn]] void reportUnreachable(const char *Msg, const char *File,
                                    int Line);

/// Prints \p Msg to stderr and exits with failure. For top-level callers
/// (tools, benches, test fixtures) consuming an ErrorOr from an operation
/// that cannot meaningfully fail for them — unlike JZ_UNREACHABLE this is
/// an orderly exit carrying the propagated message, not a crash.
[[noreturn]] void reportFatalError(const std::string &Msg);

/// Unwraps an ErrorOr whose failure the caller considers impossible;
/// reports a fatal error (with the propagated message) when it happens
/// anyway. The moral equivalent of llvm::cantFail.
template <typename T> T cantFail(ErrorOr<T> V, const char *Ctx = nullptr) {
  if (!V)
    reportFatalError(std::string(Ctx ? Ctx : "operation that cannot fail") +
                     " failed: " + V.message());
  return V.takeValue();
}

#define JZ_UNREACHABLE(MSG)                                                    \
  ::janitizer::reportUnreachable(MSG, __FILE__, __LINE__)

} // namespace janitizer

#endif // JANITIZER_SUPPORT_ERROR_H
