//===- support/Error.h - Lightweight recoverable-error types -------------===//
///
/// \file
/// Minimal error-handling utilities in the spirit of llvm::Error /
/// llvm::Expected, without the checked-flag machinery. Library code in this
/// project does not use exceptions; fallible operations return ErrorOr<T>
/// (or plain Error for void results) and callers branch on success.
///
//===----------------------------------------------------------------------===//

#ifndef JANITIZER_SUPPORT_ERROR_H
#define JANITIZER_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace janitizer {

/// A recoverable error carrying a human-readable message. A
/// default-constructed Error represents success.
class Error {
public:
  Error() = default;
  explicit Error(std::string Msg) : Msg(std::move(Msg)), Failed(true) {}

  /// Returns a success value.
  static Error success() { return Error(); }

  /// True if this represents a failure.
  explicit operator bool() const { return Failed; }

  /// The failure message; only meaningful when the error failed.
  const std::string &message() const { return Msg; }

private:
  std::string Msg;
  bool Failed = false;
};

/// Creates a failure Error with message \p Msg.
inline Error makeError(std::string Msg) { return Error(std::move(Msg)); }

/// Either a value of type T or an Error. Mirrors llvm::Expected in usage:
/// truthiness indicates success, operator* accesses the value, takeError()
/// retrieves the failure.
template <typename T> class ErrorOr {
public:
  ErrorOr(T Value) : Value(std::move(Value)) {}
  ErrorOr(Error Err) : Err(std::move(Err)) {
    assert(this->Err && "constructing ErrorOr from a success Error");
  }

  explicit operator bool() const { return Value.has_value(); }

  T &operator*() {
    assert(Value && "dereferencing failed ErrorOr");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing failed ErrorOr");
    return *Value;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Extracts the error from a failed result.
  Error takeError() { return std::move(Err); }

  /// The failure message ("" on success).
  const std::string &message() const { return Err.message(); }

private:
  std::optional<T> Value;
  Error Err;
};

/// Aborts with a diagnostic; used for unreachable code paths.
[[noreturn]] void reportUnreachable(const char *Msg, const char *File,
                                    int Line);

#define JZ_UNREACHABLE(MSG)                                                    \
  ::janitizer::reportUnreachable(MSG, __FILE__, __LINE__)

} // namespace janitizer

#endif // JANITIZER_SUPPORT_ERROR_H
